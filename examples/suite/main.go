// Suite: regenerate the paper's headline summary (Table 1) plus the
// traffic chart (Figure 12) on a chosen subset of the benchmark proxies.
//
//	go run ./examples/suite [bench,bench,...]
package main

import (
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"

	"grp/internal/campaign"
	"grp/internal/core"
	"grp/internal/workloads"
)

func main() {
	log.SetFlags(0)
	benches := []string{"wupwise", "equake", "ammp", "bzip2", "twolf"}
	if len(os.Args) > 1 {
		benches = strings.Split(os.Args[1], ",")
	}
	fmt.Printf("running %v at the small scale (%d configurations, %d workers)...\n\n",
		benches, len(benches)*len(core.AllSchemes()), runtime.GOMAXPROCS(0))

	// The campaign engine fans the (bench × scheme) cells out over a
	// worker pool; the reduced suite is byte-identical to a serial
	// core.RunSuite. (Caching is off so the example leaves no state.)
	suite, err := campaign.RunSuite(benches, nil,
		core.Options{Factor: workloads.Small}, campaign.Config{})
	if err != nil {
		log.Fatal(err)
	}
	_, t1, err := suite.Table1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t1)
	f12, err := suite.Figure12()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f12)
}
