// Quickstart: run one benchmark proxy under the paper's main schemes and
// print the headline comparison — speedup, traffic, coverage, accuracy.
//
//	go run ./examples/quickstart [bench]
package main

import (
	"fmt"
	"log"
	"os"

	"grp/internal/core"
	"grp/internal/stats"
	"grp/internal/workloads"
)

func main() {
	log.SetFlags(0)
	bench := "equake"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	spec, err := workloads.ByName(bench)
	if err != nil {
		log.Fatalf("quickstart: %v (have: %v)", err, workloads.Names())
	}

	opt := core.Options{Factor: workloads.Test}
	fmt.Printf("benchmark %s (%s)\n\n", spec.Name, spec.MissCause)

	base, err := core.Run(spec, core.NoPrefetch, opt)
	if err != nil {
		log.Fatal(err)
	}
	perfect, err := core.Run(spec, core.PerfectL2, opt)
	if err != nil {
		log.Fatal(err)
	}

	tb := &stats.Table{
		Headers: []string{"scheme", "IPC", "speedup", "traffic", "coverage%", "accuracy%", "gap from perfect L2 %"},
	}
	for _, sc := range []core.Scheme{core.NoPrefetch, core.StridePF, core.SRP, core.GRPFix, core.GRPVar} {
		r, err := core.Run(spec, sc, opt)
		if err != nil {
			log.Fatal(err)
		}
		tb.Add(sc.String(),
			stats.Fmt(r.IPC(), 3),
			stats.Fmt(core.Speedup(r, base), 3),
			stats.Fmt(core.TrafficIncrease(r, base), 2),
			stats.Fmt(core.Coverage(r, base), 1),
			stats.Fmt(r.Accuracy(), 1),
			stats.Fmt(core.GapFromPerfect(r, perfect), 1),
		)
	}
	fmt.Println(tb)
	fmt.Println("The GRP rows should match SRP's speedup at a fraction of its traffic;")
	fmt.Println("run with a different benchmark name to explore, e.g.:")
	fmt.Println("  go run ./examples/quickstart ammp")
}
