// Hint tour: walks through the paper's Table 2 — one minimal source
// snippet per hint class — and shows what the GRP compiler derives for
// each: the analysis annotations and the hint bits on the generated loads.
//
//	go run ./examples/hinttour
package main

import (
	"fmt"
	"log"

	"grp/internal/compiler"
	"grp/internal/isa"
	"grp/internal/lang"
	"grp/internal/mem"
)

type snippet struct {
	title  string
	source string // pseudo-C, for display
	prog   *lang.Program
}

func main() {
	log.SetFlags(0)
	for _, s := range snippets() {
		fmt.Printf("=== %s\n", s.title)
		fmt.Printf("source:\n%s\n", s.source)
		m := mem.New()
		prog, _, an, err := compiler.CompileWorkload(s.prog, m, compiler.PolicyDefault)
		if err != nil {
			log.Fatalf("%s: %v", s.title, err)
		}
		fmt.Printf("analysis:\n%s", an.Describe())
		fmt.Println("hinted loads:")
		for _, in := range prog.Instrs {
			if in.IsLoad() && in.Hint != isa.HintNone {
				fmt.Printf("\t%s\n", in)
			}
			if in.Op == isa.OpSetBound || in.Op == isa.OpPrefIndirect {
				fmt.Printf("\t%s\n", in)
			}
		}
		fmt.Println()
	}
}

func snippets() []snippet {
	var out []snippet

	// --- spatial: the classic array stream (Table 2 row 1) --------------
	a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{4096}}
	out = append(out, snippet{
		title:  "spatial",
		source: "  for (i = 0; i < 4096; i++)\n    s += a[i];\n",
		prog: &lang.Program{
			Name: "spatial", Arrays: []*lang.Array{a}, Scalars: []string{"i", "s"},
			Body: []lang.Stmt{&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(4096), Step: 1,
				Body: []lang.Stmt{&lang.Assign{Dst: lang.S("s"),
					Src: lang.B(lang.Add, lang.S("s"), lang.Ix(a, lang.S("i")))}}}},
		},
	})

	// --- size: a short loop gets a variable region (Table 2 row 2) ------
	v := &lang.Array{Name: "v", Elem: lang.I64, Dims: []int64{1 << 16}}
	out = append(out, snippet{
		title:  "size (variable region)",
		source: "  for (j = 0; j < 16; j++)   /* short burst */\n    s += v[j];\n",
		prog: &lang.Program{
			Name: "size", Arrays: []*lang.Array{v}, Scalars: []string{"j", "s"},
			Body: []lang.Stmt{&lang.For{Var: "j", Lo: lang.C(0), Hi: lang.C(16), Step: 1,
				Body: []lang.Stmt{&lang.Assign{Dst: lang.S("s"),
					Src: lang.B(lang.Add, lang.S("s"), lang.Ix(v, lang.S("j")))}}}},
		},
	})

	// --- indirect: a[b[i]] (Table 2 row 3, Section 4.3) -----------------
	b := &lang.Array{Name: "b", Elem: lang.I32, Dims: []int64{4096}}
	c := &lang.Array{Name: "c", Elem: lang.I64, Dims: []int64{1 << 16}}
	out = append(out, snippet{
		title:  "indirect",
		source: "  for (i = 0; i < 4096; i++)\n    s += c[b[i]];\n",
		prog: &lang.Program{
			Name: "indirect", Arrays: []*lang.Array{b, c}, Scalars: []string{"i", "s"},
			Body: []lang.Stmt{&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(4096), Step: 1,
				Body: []lang.Stmt{&lang.Assign{Dst: lang.S("s"),
					Src: lang.B(lang.Add, lang.S("s"), lang.Ix(c, lang.Ix(b, lang.S("i"))))}}}},
		},
	})

	// --- pointer: a struct with a pointer field used in the same loop ---
	st := lang.NewStruct("t", lang.Field{Name: "data", Type: lang.I64})
	st.Append("link", lang.PtrT{Elem: lang.I64})
	out = append(out, snippet{
		title:  "pointer",
		source: "  while (p) {\n    s += p->data;   /* struct t has pointer field link */\n    q  = p->link;\n    p  = 0;\n  }\n",
		prog: &lang.Program{
			Name: "pointer", Scalars: []string{"p", "q", "s"},
			Body: []lang.Stmt{&lang.While{Cond: lang.B(lang.Ne, lang.S("p"), lang.C(0)),
				Body: []lang.Stmt{
					&lang.Assign{Dst: lang.S("s"), Src: &lang.FieldRef{Ptr: lang.S("p"), Struct: st, Field: "data"}},
					&lang.Assign{Dst: lang.S("q"), Src: &lang.FieldRef{Ptr: lang.S("p"), Struct: st, Field: "link"}},
					&lang.Assign{Dst: lang.S("p"), Src: lang.C(0)},
				}}},
		},
	})

	// --- recursive pointer: p = p->next (Table 2 row 5, Figure 6) -------
	node := lang.NewStruct("node", lang.Field{Name: "f", Type: lang.I64})
	node.Append("next", lang.PtrT{Elem: node})
	out = append(out, snippet{
		title:  "recursive pointer",
		source: "  while (a) {\n    s += a->f;\n    a  = a->next;   /* next: struct node* */\n  }\n",
		prog: &lang.Program{
			Name: "recursive", Scalars: []string{"a", "s"},
			Body: []lang.Stmt{&lang.While{Cond: lang.B(lang.Ne, lang.S("a"), lang.C(0)),
				Body: []lang.Stmt{
					&lang.Assign{Dst: lang.S("s"), Src: &lang.FieldRef{Ptr: lang.S("a"), Struct: node, Field: "f"}},
					&lang.Assign{Dst: lang.S("a"), Src: &lang.FieldRef{Ptr: lang.S("a"), Struct: node, Field: "next"}},
				}}},
		},
	})

	// --- induction pointer: *p with p += c (Figure 5) -------------------
	out = append(out, snippet{
		title:  "induction pointer",
		source: "  for (; p < end; p += 16)\n    s += *p;\n",
		prog: &lang.Program{
			Name: "indptr", Scalars: []string{"p", "end", "s"},
			Body: []lang.Stmt{&lang.While{Cond: lang.B(lang.Lt, lang.S("p"), lang.S("end")),
				Body: []lang.Stmt{
					&lang.Assign{Dst: lang.S("s"), Src: lang.B(lang.Add, lang.S("s"),
						&lang.Deref{Ptr: lang.S("p"), Elem: lang.I64})},
					&lang.Assign{Dst: lang.S("p"), Src: lang.B(lang.Add, lang.S("p"), lang.C(16))},
				}}},
		},
	})
	return out
}
