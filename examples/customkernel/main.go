// Custom kernel: shows the full library workflow on a workload that is
// not part of the benchmark suite — a sparse matrix-vector product in CSR
// form, written in the mini source language, compiled with automatic hint
// analysis, and simulated under every prefetching scheme.
//
// CSR SpMV is a nice stress test because it mixes all three access kinds
// the paper's hints cover: unit-stride streams (row pointers and values),
// an indirect stream (column indices into x), and short bursts per row.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"grp/internal/compiler"
	"grp/internal/core"
	"grp/internal/cpu"
	"grp/internal/lang"
	"grp/internal/mem"
	"grp/internal/prefetch"
	"grp/internal/sim"
	"grp/internal/stats"
)

const (
	rows      = 4096
	nnzPerRow = 8
	nnz       = rows * nnzPerRow
	xLen      = 1 << 15
)

// buildSpMV constructs y[r] = Σ vals[k]·x[cols[k]] for k in
// [rowptr[r], rowptr[r+1]).
func buildSpMV() *lang.Program {
	rowptr := &lang.Array{Name: "rowptr", Elem: lang.I32, Dims: []int64{rows + 1}}
	cols := &lang.Array{Name: "cols", Elem: lang.I32, Dims: []int64{nnz}}
	vals := &lang.Array{Name: "vals", Elem: lang.I64, Dims: []int64{nnz}}
	x := &lang.Array{Name: "x", Elem: lang.I64, Dims: []int64{xLen}, Heap: true}
	y := &lang.Array{Name: "y", Elem: lang.I64, Dims: []int64{rows}}

	return &lang.Program{
		Name:    "spmv",
		Arrays:  []*lang.Array{rowptr, cols, vals, x, y},
		Scalars: []string{"r", "k", "lo", "hi", "acc"},
		Body: []lang.Stmt{
			&lang.For{Var: "r", Lo: lang.C(0), Hi: lang.C(rows), Step: 1, Body: []lang.Stmt{
				&lang.Assign{Dst: lang.S("lo"), Src: lang.Ix(rowptr, lang.S("r"))},
				&lang.Assign{Dst: lang.S("hi"), Src: lang.Ix(rowptr, lang.B(lang.Add, lang.S("r"), lang.C(1)))},
				&lang.Assign{Dst: lang.S("acc"), Src: lang.C(0)},
				&lang.For{Var: "k", Lo: lang.S("lo"), Hi: lang.S("hi"), Step: 1, Body: []lang.Stmt{
					&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
						lang.B(lang.Mul,
							lang.Ix(vals, lang.S("k")),
							lang.Ix(x, lang.Ix(cols, lang.S("k")))))},
				}},
				&lang.Assign{Dst: lang.Ix(y, lang.S("r")), Src: lang.S("acc")},
			}},
		},
	}
}

func initData(m *mem.Memory, lay *compiler.Layout) {
	seed := uint64(42)
	next := func() uint64 {
		seed ^= seed >> 12
		seed ^= seed << 25
		seed ^= seed >> 27
		return seed * 0x2545f4914f6cdd1d
	}
	for r := int64(0); r <= rows; r++ {
		m.Write32(lay.Addr["rowptr"]+uint64(r*4), uint32(r*nnzPerRow))
	}
	for k := int64(0); k < nnz; k++ {
		m.Write32(lay.Addr["cols"]+uint64(k*4), uint32(next()%xLen))
		m.Write64(lay.Addr["vals"]+uint64(k*8), next()>>48)
	}
	for i := int64(0); i < xLen; i++ {
		m.Write64(lay.Addr["x"]+uint64(i*8), next()>>48)
	}
}

func main() {
	log.SetFlags(0)
	prog := buildSpMV()

	fmt.Println("CSR sparse matrix-vector product under each prefetching scheme")
	fmt.Println()

	type scheme struct {
		name   string
		engine func(m *mem.Memory) prefetch.Engine
	}
	schemes := []scheme{
		{"base", func(*mem.Memory) prefetch.Engine { return prefetch.NewNull() }},
		{"stride", func(*mem.Memory) prefetch.Engine { return prefetch.NewStride(prefetch.DefaultStrideConfig()) }},
		{"srp", func(*mem.Memory) prefetch.Engine { return prefetch.NewSRP() }},
		{"grp/var", func(m *mem.Memory) prefetch.Engine { return prefetch.NewGRP(prefetch.DefaultGRPConfig(), m) }},
	}

	var baseCycles, baseTraffic float64
	tb := &stats.Table{Headers: []string{"scheme", "cycles", "IPC", "speedup", "traffic"}}
	for _, sc := range schemes {
		m := mem.New()
		compiled, lay, an, err := compiler.CompileWorkload(prog, m, compiler.PolicyDefault)
		if err != nil {
			log.Fatal(err)
		}
		if sc.name == "grp/var" {
			fmt.Printf("compiler analysis (GRP binary):\n%s\n", an.Describe())
		}
		initData(m, lay)

		ms, err := sim.NewMemSystem(sim.DefaultMemConfig(), sc.engine(m))
		if err != nil {
			log.Fatal(err)
		}
		cfg := cpu.Default()
		cfg.MaxInstrs = 600_000
		c, err := cpu.New(cfg, m, ms)
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run(compiled)
		if err != nil {
			log.Fatal(err)
		}
		ms.Drain()

		traffic := float64(ms.Dram.TrafficBytes())
		if sc.name == "base" {
			baseCycles, baseTraffic = float64(res.Cycles), traffic
		}
		tb.Add(sc.name,
			fmt.Sprint(res.Cycles),
			stats.Fmt(res.IPC(), 3),
			stats.Fmt(baseCycles/float64(res.Cycles), 3),
			stats.Fmt(traffic/baseTraffic, 2),
		)
	}
	fmt.Println(tb)
	fmt.Println("The compiler finds the indirect x[cols[k]] access (PREFI) and the")
	fmt.Println("streams over rowptr/cols/vals, so GRP delivers a solid speedup at")
	fmt.Println("essentially baseline traffic, while SRP buys extra speed by also")
	fmt.Println("prefetching regions around the scattered x accesses (+31% traffic).")
	fmt.Println("The same flow works for any kernel you express in the lang package;")
	fmt.Println("see also the core package facade used by the suite (internal/core).")
	_ = core.AllSchemes // documented entry point for suite-level runs
}
