// Campaign-engine baseline: how much wall-clock the parallel experiment
// engine buys over the serial suite path, and proof it stays bought.
//
//	go test -bench='BenchmarkSuite(Serial|Parallel)' -benchtime=1x
//	go test -run TestSuiteParallelSpeedup   (emits BENCH_campaign.json)
package grp

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"grp/internal/campaign"
	"grp/internal/core"
	"grp/internal/workloads"
)

// BenchmarkSuiteSerial is the pre-campaign reference: the full
// bench × scheme matrix simulated one cell at a time.
func BenchmarkSuiteSerial(b *testing.B) {
	opt := core.Options{Factor: benchFactor()}
	for i := 0; i < b.N; i++ {
		if _, err := core.RunSuite(nil, nil, opt); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(workloads.Names())*len(core.AllSchemes())), "cells")
}

// BenchmarkSuiteParallel runs the same matrix through the campaign engine
// at 1, 4, and NumCPU workers (caching off, so every cell simulates).
func BenchmarkSuiteParallel(b *testing.B) {
	jobsList := []int{1, 4, runtime.NumCPU()}
	if jobsList[2] == jobsList[1] || jobsList[2] == jobsList[0] {
		jobsList = jobsList[:2]
	}
	opt := core.Options{Factor: benchFactor()}
	for _, jobs := range jobsList {
		jobs := jobs
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := campaign.RunSuite(nil, nil, opt, campaign.Config{Jobs: jobs}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchCampaignReport is the artifact CI archives as BENCH_campaign.json.
type benchCampaignReport struct {
	Cells      int     `json:"cells"`
	Jobs       int     `json:"jobs"`
	NumCPU     int     `json:"num_cpu"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// TestSuiteParallelSpeedup times the full suite serially and through the
// engine at 4 workers, emits BENCH_campaign.json, and — on hardware with
// the cores to show it — asserts the engine delivers at least a 2×
// wall-clock win. On smaller machines the run still checks the engine
// completes and emits the artifact; only the ratio assertion is skipped.
func TestSuiteParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	opt := core.Options{Factor: workloads.Test}

	start := time.Now()
	if _, err := core.RunSuite(nil, nil, opt); err != nil {
		t.Fatal(err)
	}
	serial := time.Since(start)

	const jobs = 4
	start = time.Now()
	if _, err := campaign.RunSuite(nil, nil, opt, campaign.Config{Jobs: jobs}); err != nil {
		t.Fatal(err)
	}
	parallel := time.Since(start)

	rep := benchCampaignReport{
		Cells:      len(workloads.Names()) * len(core.AllSchemes()),
		Jobs:       jobs,
		NumCPU:     runtime.NumCPU(),
		SerialMS:   float64(serial.Microseconds()) / 1e3,
		ParallelMS: float64(parallel.Microseconds()) / 1e3,
		Speedup:    serial.Seconds() / parallel.Seconds(),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_campaign.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("suite: serial %.0fms, parallel(%d) %.0fms, speedup %.2fx on %d CPUs",
		rep.SerialMS, jobs, rep.ParallelMS, rep.Speedup, rep.NumCPU)

	if runtime.NumCPU() < jobs {
		t.Skipf("speedup assertion needs >= %d CPUs, have %d", jobs, runtime.NumCPU())
	}
	if rep.Speedup < 2 {
		t.Errorf("suite speedup at %d workers is %.2fx, want >= 2x", jobs, rep.Speedup)
	}
}
