package metrics

import (
	"fmt"
	"io"
)

// DefaultMaxSamples bounds the in-memory time series: when a run produces
// more samples than this, the sampler decimates (drops every other sample
// and doubles its interval), so arbitrarily long runs keep a bounded,
// evenly spaced series instead of growing without limit.
const DefaultMaxSamples = 8192

type watchedSeries struct {
	name   string
	probe  func() float64
	values []float64
}

// Sampler snapshots a set of probe-backed series every Interval cycles.
// Components drive it by calling Tick with the current simulated cycle;
// whenever a tick crosses an interval boundary one sample is recorded at
// that cycle. Under uneven cycle advancement (the simulator jumps time in
// bursts) at most one sample is recorded per Tick — the probes can only
// report present state, so replaying skipped boundaries would fabricate
// data — and the next boundary is realigned past the observed cycle, so
// consecutive samples are always at least Interval cycles apart.
//
// All series must be registered with Watch before the first Tick so every
// series has the same sample count.
type Sampler struct {
	interval   uint64
	next       uint64
	maxSamples int
	cycles     []uint64
	series     []watchedSeries
}

// NewSampler returns a sampler recording every interval cycles; interval 0
// defaults to 4096.
func NewSampler(interval uint64) *Sampler {
	if interval == 0 {
		interval = 4096
	}
	return &Sampler{interval: interval, next: interval, maxSamples: DefaultMaxSamples}
}

// SetMaxSamples overrides the decimation threshold (minimum 2).
func (s *Sampler) SetMaxSamples(n int) {
	if n < 2 {
		n = 2
	}
	s.maxSamples = n
}

// Interval returns the current sampling interval (it grows when the
// sampler decimates).
func (s *Sampler) Interval() uint64 { return s.interval }

// Watch adds a series. It panics if sampling has already begun: a series
// joining late would have fewer samples than its siblings and misalign the
// shared cycle axis.
func (s *Sampler) Watch(name string, probe func() float64) {
	if len(s.cycles) > 0 {
		panic(fmt.Sprintf("metrics: Watch(%q) after sampling began", name))
	}
	s.series = append(s.series, watchedSeries{name: name, probe: probe})
}

// Tick advances the sampler to cycle now, recording a sample if an
// interval boundary has been crossed. Safe on a nil receiver.
func (s *Sampler) Tick(now uint64) {
	if s == nil || now < s.next {
		return
	}
	s.cycles = append(s.cycles, now)
	for i := range s.series {
		w := &s.series[i]
		w.values = append(w.values, w.probe())
	}
	// Realign to the next boundary strictly after now, so a burst that
	// jumps several intervals yields one sample, not a backlog.
	s.next = now - now%s.interval + s.interval
	if s.next <= now {
		s.next += s.interval
	}
	if len(s.cycles) >= s.maxSamples {
		s.decimate()
	}
}

// decimate halves the series (keeping every other sample) and doubles the
// interval, preserving even spacing at half the resolution.
func (s *Sampler) decimate() {
	keep := (len(s.cycles) + 1) / 2
	for i := 0; i < keep; i++ {
		s.cycles[i] = s.cycles[2*i]
	}
	s.cycles = s.cycles[:keep]
	for j := range s.series {
		w := &s.series[j]
		for i := 0; i < keep; i++ {
			w.values[i] = w.values[2*i]
		}
		w.values = w.values[:keep]
	}
	s.interval *= 2
	if s.next < s.interval {
		s.next = s.interval
	}
}

// Len returns the number of samples recorded so far.
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	return len(s.cycles)
}

// SeriesNames returns the watched series names in registration order.
func (s *Sampler) SeriesNames() []string {
	out := make([]string, len(s.series))
	for i, w := range s.series {
		out[i] = w.name
	}
	return out
}

// Samples returns the cycle axis and the values of the named series; ok is
// false for an unknown name.
func (s *Sampler) Samples(name string) (cycles []uint64, values []float64, ok bool) {
	if s == nil {
		return nil, nil, false
	}
	for i := range s.series {
		if s.series[i].name == name {
			return s.cycles, s.series[i].values, true
		}
	}
	return nil, nil, false
}

// WriteCSV emits the full time series as CSV: a header row of
// "cycle,<series>..." followed by one row per sample.
func (s *Sampler) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	if _, err := io.WriteString(w, "cycle"); err != nil {
		return err
	}
	for _, ser := range s.series {
		if _, err := fmt.Fprintf(w, ",%s", ser.name); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for i, cyc := range s.cycles {
		if _, err := fmt.Fprintf(w, "%d", cyc); err != nil {
			return err
		}
		for _, ser := range s.series {
			if _, err := fmt.Fprintf(w, ",%g", ser.values[i]); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
