package metrics

import (
	"encoding/json"
	"io"
	"sort"
)

// Point is one time-series sample.
type Point struct {
	Cycle uint64  `json:"cycle"`
	Value float64 `json:"value"`
}

// SeriesSnapshot is one sampled series.
type SeriesSnapshot struct {
	Name    string  `json:"name"`
	Samples []Point `json:"samples"`
}

// HistogramSnapshot is a frozen histogram with extracted percentiles.
type HistogramSnapshot struct {
	Name   string    `json:"name"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Mean   float64   `json:"mean"`
	P50    float64   `json:"p50"`
	P90    float64   `json:"p90"`
	P99    float64   `json:"p99"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Snapshot is a frozen view of a registry and sampler, suitable for JSON
// export and for attaching to a run result after the simulation finishes.
type Snapshot struct {
	Counters       map[string]uint64   `json:"counters,omitempty"`
	Gauges         map[string]float64  `json:"gauges,omitempty"`
	Histograms     []HistogramSnapshot `json:"histograms,omitempty"`
	SampleInterval uint64              `json:"sample_interval,omitempty"`
	Series         []SeriesSnapshot    `json:"series,omitempty"`
}

// Snap freezes the registry and sampler (either may be nil) into a
// Snapshot. Gauge probes are invoked once, so a snapshot taken after the
// run captures final component state.
func Snap(r *Registry, s *Sampler) *Snapshot {
	snap := &Snapshot{
		Counters: map[string]uint64{},
		Gauges:   map[string]float64{},
	}
	if r != nil {
		r.mu.Lock()
		names := make([]string, 0, len(r.entries))
		for n := range r.entries {
			names = append(names, n)
		}
		r.mu.Unlock()
		// Sorted for deterministic JSON output of the histogram list.
		sort.Strings(names)
		for _, n := range names {
			r.mu.Lock()
			e := r.entries[n]
			r.mu.Unlock()
			switch e.kind {
			case KindCounter:
				snap.Counters[n] = e.c.Value()
			case KindGauge:
				snap.Gauges[n] = e.g.Value()
			case KindHistogram:
				h := e.h
				snap.Histograms = append(snap.Histograms, HistogramSnapshot{
					Name: n, Count: h.Count(), Sum: h.Sum(),
					Min: h.min, Max: h.max, Mean: h.Mean(),
					P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
					Bounds: append([]float64(nil), h.bounds...),
					Counts: append([]uint64(nil), h.counts...),
				})
			}
		}
	}
	if s != nil && s.Len() > 0 {
		snap.SampleInterval = s.Interval()
		for _, w := range s.series {
			ss := SeriesSnapshot{Name: w.name, Samples: make([]Point, len(s.cycles))}
			for i, cyc := range s.cycles {
				ss.Samples[i] = Point{Cycle: cyc, Value: w.values[i]}
			}
			snap.Series = append(snap.Series, ss)
		}
	}
	return snap
}

// Histogram returns the named histogram snapshot, or nil.
func (s *Snapshot) Histogram(name string) *HistogramSnapshot {
	if s == nil {
		return nil
	}
	for i := range s.Histograms {
		if s.Histograms[i].Name == name {
			return &s.Histograms[i]
		}
	}
	return nil
}

// GetSeries returns the named sampled series, or nil.
func (s *Snapshot) GetSeries(name string) *SeriesSnapshot {
	if s == nil {
		return nil
	}
	for i := range s.Series {
		if s.Series[i].Name == name {
			return &s.Series[i]
		}
	}
	return nil
}

// WriteJSON emits the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
