package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40})
	// Values on a bound land in that bound's bucket (v <= bound).
	for _, v := range []float64{1, 10} {
		h.Observe(v)
	}
	h.Observe(10.5) // (10,20]
	h.Observe(20)   // (10,20]
	h.Observe(39)   // (20,40]
	h.Observe(41)   // overflow
	h.Observe(1000) // overflow
	want := []uint64{2, 2, 1, 2}
	for i, w := range want {
		if h.counts[i] != w {
			t.Errorf("bucket %d: got %d, want %d", i, h.counts[i], w)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if h.min != 1 || h.max != 1000 {
		t.Errorf("min/max = %g/%g, want 1/1000", h.min, h.max)
	}
	if got := h.Sum(); got != 1+10+10.5+20+39+41+1000 {
		t.Errorf("sum = %g", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(LinearBuckets(10, 10, 10)) // 10,20,...,100
	// 100 uniform observations 1..100: p50 ≈ 50, p90 ≈ 90, p99 ≈ 99.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	for _, tc := range []struct {
		q, want, tol float64
	}{
		{0.50, 50, 5}, {0.90, 90, 5}, {0.99, 99, 5},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("Quantile(%g) = %g, want %g±%g", tc.q, got, tc.want, tc.tol)
		}
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %g, want min 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("Quantile(1) = %g, want max 100", got)
	}
}

func TestHistogramQuantileOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{10})
	for i := 0; i < 10; i++ {
		h.Observe(500)
	}
	if got := h.Quantile(0.99); got != 500 {
		t.Errorf("overflow quantile = %g, want 500 (max observed)", got)
	}
}

func TestHistogramEmptyAndNil(t *testing.T) {
	var h *Histogram
	h.Observe(5) // must not panic
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("nil histogram should report zeros")
	}
	h2 := NewHistogram([]float64{1})
	if h2.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(16, 2, 4)
	want := []float64{16, 32, 64, 128}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}

func TestRegistryNameCollision(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Counter("x"); err != nil {
		t.Fatalf("first Counter: %v", err)
	}
	if _, err := r.Counter("x"); err == nil {
		t.Error("duplicate counter name should error")
	}
	// Collisions across kinds are also rejected.
	if _, err := r.Gauge("x", func() float64 { return 0 }); err == nil {
		t.Error("gauge colliding with counter should error")
	} else if !strings.Contains(err.Error(), "counter") {
		t.Errorf("collision error should name the existing kind: %v", err)
	}
	if _, err := r.Histogram("x", []float64{1}); err == nil {
		t.Error("histogram colliding with counter should error")
	}
	if _, err := r.Counter(""); err == nil {
		t.Error("empty name should error")
	}
	if got := r.Names(); len(got) != 1 || got[0] != "x" {
		t.Errorf("Names = %v, want [x]", got)
	}
}

func TestSamplerIntervalEvenAdvance(t *testing.T) {
	s := NewSampler(100)
	var v float64
	s.Watch("v", func() float64 { return v })
	for now := uint64(1); now <= 1000; now++ {
		v = float64(now)
		s.Tick(now)
	}
	if s.Len() != 10 {
		t.Fatalf("samples = %d, want 10", s.Len())
	}
	cycles, values, ok := s.Samples("v")
	if !ok {
		t.Fatal("series v missing")
	}
	for i, c := range cycles {
		want := uint64(100 * (i + 1))
		if c != want {
			t.Errorf("sample %d at cycle %d, want %d", i, c, want)
		}
		if values[i] != float64(want) {
			t.Errorf("sample %d value %g, want %d", i, values[i], want)
		}
	}
}

func TestSamplerUnevenAdvance(t *testing.T) {
	s := NewSampler(100)
	s.Watch("v", func() float64 { return 1 })
	// A burst that jumps several boundaries records exactly one sample at
	// the observed cycle, and realigns to the next boundary after it.
	s.Tick(50)  // below first boundary: nothing
	s.Tick(473) // crosses 100,200,300,400: one sample at 473
	s.Tick(499) // before 500: nothing
	s.Tick(500) // boundary: sample
	s.Tick(500) // same cycle again: nothing (next realigned past 500)
	s.Tick(601) // crosses 600: sample
	if s.Len() != 3 {
		t.Fatalf("samples = %d, want 3", s.Len())
	}
	cycles, _, _ := s.Samples("v")
	want := []uint64{473, 500, 601}
	for i := range want {
		if cycles[i] != want[i] {
			t.Errorf("sample %d at cycle %d, want %d", i, cycles[i], want[i])
		}
	}
	// Samples are always >= interval apart only in boundary terms; the
	// recorded cycles must be strictly increasing.
	for i := 1; i < len(cycles); i++ {
		if cycles[i] <= cycles[i-1] {
			t.Errorf("cycles not strictly increasing: %v", cycles)
		}
	}
}

func TestSamplerDecimation(t *testing.T) {
	s := NewSampler(10)
	s.SetMaxSamples(8)
	s.Watch("v", func() float64 { return 2 })
	for now := uint64(10); now <= 2000; now += 10 {
		s.Tick(now)
	}
	if s.Len() >= 8 {
		t.Errorf("decimation failed: %d samples with cap 8", s.Len())
	}
	if s.Interval() <= 10 {
		t.Errorf("interval should have grown, still %d", s.Interval())
	}
	cycles, values, _ := s.Samples("v")
	for i := 1; i < len(cycles); i++ {
		if cycles[i] <= cycles[i-1] {
			t.Fatalf("cycles not increasing after decimation: %v", cycles)
		}
	}
	for _, v := range values {
		if v != 2 {
			t.Fatalf("values corrupted by decimation: %v", values)
		}
	}
}

func TestSamplerNilSafe(t *testing.T) {
	var s *Sampler
	s.Tick(100) // must not panic
	if s.Len() != 0 {
		t.Error("nil sampler Len should be 0")
	}
}

func TestSnapshotJSONAndCSV(t *testing.T) {
	r := NewRegistry()
	c := r.MustCounter("events")
	c.Add(41)
	c.Inc()
	r.MustGauge("occupancy", func() float64 { return 7.5 })
	h := r.MustHistogram("lat", ExponentialBuckets(16, 2, 8))
	h.Observe(20)
	h.Observe(300)

	s := NewSampler(100)
	x := 0.0
	s.Watch("x", func() float64 { x++; return x })
	s.Tick(100)
	s.Tick(200)

	snap := Snap(r, s)
	if snap.Counters["events"] != 42 {
		t.Errorf("counter = %d, want 42", snap.Counters["events"])
	}
	if snap.Gauges["occupancy"] != 7.5 {
		t.Errorf("gauge = %g, want 7.5", snap.Gauges["occupancy"])
	}
	hs := snap.Histogram("lat")
	if hs == nil || hs.Count != 2 {
		t.Fatalf("histogram snapshot missing or wrong: %+v", hs)
	}
	ser := snap.GetSeries("x")
	if ser == nil || len(ser.Samples) != 2 {
		t.Fatalf("series snapshot missing or wrong: %+v", ser)
	}
	if snap.GetSeries("nope") != nil {
		t.Error("unknown series should be nil")
	}

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["events"] != 42 || len(back.Series) != 1 {
		t.Errorf("round-trip mismatch: %+v", back)
	}

	var csv bytes.Buffer
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || lines[0] != "cycle,x" {
		t.Errorf("CSV output unexpected:\n%s", csv.String())
	}
}

func TestSnapshotNilInputs(t *testing.T) {
	snap := Snap(nil, nil)
	if snap == nil || len(snap.Series) != 0 {
		t.Error("Snap(nil,nil) should return an empty snapshot")
	}
	if snap.Histogram("x") != nil {
		t.Error("missing histogram should be nil")
	}
}

// TestHistogramQuantileEdgeCases is the table-driven sweep of the
// degenerate distributions the interpolating path used to mishandle:
// empty, a single sample, and all-equal samples (in interior and overflow
// buckets), across the full quantile range.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	bounds := []float64{4, 8, 16}
	cases := []struct {
		name    string
		samples []float64
		q       float64
		want    float64
	}{
		{"empty p50", nil, 0.5, 0},
		{"empty p0", nil, 0, 0},
		{"empty p100", nil, 1, 0},
		{"one sample p0", []float64{6}, 0, 6},
		{"one sample p50", []float64{6}, 0.5, 6},
		{"one sample p99", []float64{6}, 0.99, 6},
		{"one sample p100", []float64{6}, 1, 6},
		{"one sample at bound", []float64{8}, 0.5, 8},
		{"one sample overflow", []float64{100}, 0.5, 100},
		{"one sample zero", []float64{0}, 0.5, 0},
		{"all equal p25", []float64{7, 7, 7, 7}, 0.25, 7},
		{"all equal p50", []float64{7, 7, 7, 7}, 0.5, 7},
		{"all equal p99", []float64{7, 7, 7, 7}, 0.99, 7},
		{"all equal at bound", []float64{16, 16, 16}, 0.9, 16},
		{"all equal overflow", []float64{42, 42, 42}, 0.5, 42},
		{"two equal one bucket", []float64{5, 5}, 0.75, 5},
	}
	for _, tc := range cases {
		h := NewHistogram(bounds)
		for _, v := range tc.samples {
			h.Observe(v)
		}
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%g) = %g, want %g", tc.name, tc.q, got, tc.want)
		}
	}
}

// TestHistogramQuantileMonotonic: quantiles are nondecreasing in q and
// stay inside [min, max] for a spread distribution.
func TestHistogramQuantileMonotonic(t *testing.T) {
	h := NewHistogram(ExponentialBuckets(2, 2, 8))
	for _, v := range []float64{1, 3, 5, 9, 17, 33, 100, 300, 1000} {
		h.Observe(v)
	}
	prev := h.Quantile(0)
	for q := 0.05; q <= 1.0001; q += 0.05 {
		got := h.Quantile(q)
		if got < prev {
			t.Errorf("Quantile(%g) = %g < previous %g (not monotonic)", q, got, prev)
		}
		if got < 1 || got > 1000 {
			t.Errorf("Quantile(%g) = %g outside [min, max]", q, got)
		}
		prev = got
	}
}
