// Package metrics is the simulator's telemetry layer: a lightweight
// registry of named counters, gauges, and fixed-bucket histograms, plus a
// cycle-driven sampler that snapshots selected series into an in-memory
// time series (see sampler.go) and structured JSON/CSV exporters (see
// export.go).
//
// The design goal is zero cost on the simulator's hot path when telemetry
// is not attached: components hold nil pointers and guard instrumentation
// behind a single nil check, and Histogram.Observe is nil-safe so call
// sites need no guard of their own. Counters and histograms are plain
// (non-atomic) — the simulation is single-goroutine — while the registry
// itself is mutex-guarded so registration and snapshotting are safe from
// auxiliary goroutines (exporters, tests under -race).
package metrics

import (
	"fmt"
	"sort"
	"sync"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	v uint64
}

// Add increments the counter by n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a probe-backed instantaneous value: reading the gauge invokes
// the probe, so gauges always report live component state and cost nothing
// between reads.
type Gauge struct {
	probe func() float64
}

// Value invokes the probe. Safe on a nil receiver (returns 0).
func (g *Gauge) Value() float64 {
	if g == nil || g.probe == nil {
		return 0
	}
	return g.probe()
}

// Histogram is a fixed-bucket histogram. Bucket i counts observations v
// with bounds[i-1] < v <= bounds[i]; one implicit overflow bucket counts
// v > bounds[len-1]. Observation is allocation-free.
type Histogram struct {
	bounds []float64 // ascending upper bounds
	counts []uint64  // len(bounds)+1; last is overflow
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// It panics if bounds is empty or not strictly ascending (a bucket-layout
// bug is a programming error).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExponentialBuckets returns n ascending bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value. Safe on a nil receiver (no-op), so hot paths
// can call it unguarded when telemetry may be detached.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	// Linear scan: bucket counts are small (tens) and the common latencies
	// land in the first few buckets, so this beats binary search in
	// practice and keeps the path branch-predictable.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.counts)-1]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the arithmetic mean of observations, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket; observations in the overflow bucket report
// the maximum observed value. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// Degenerate distributions answer exactly, not by interpolation: one
	// sample (or all samples equal) has every quantile at that value.
	if h.count == 1 || h.min == h.max {
		return h.min
	}
	target := q * float64(h.count)
	var cum float64
	lower := h.min
	for i, b := range h.bounds {
		upper := b
		n := float64(h.counts[i])
		if cum+n >= target && n > 0 {
			if lower < h.min {
				lower = h.min
			}
			if upper > h.max {
				upper = h.max
			}
			frac := (target - cum) / n
			return lower + (upper-lower)*frac
		}
		cum += n
		lower = b
	}
	return h.max
}

// Kind distinguishes registry entries.
type Kind uint8

// Registry entry kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

type entry struct {
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry is a named collection of counters, gauges, and histograms.
// Registration rejects duplicate names regardless of kind: every series
// name identifies exactly one instrument, so exports cannot silently
// shadow one series with another.
type Registry struct {
	mu      sync.Mutex
	entries map[string]entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]entry)}
}

func (r *Registry) register(name string, e entry) error {
	if name == "" {
		return fmt.Errorf("metrics: empty series name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.entries[name]; ok {
		return fmt.Errorf("metrics: series %q already registered as %s", name, prev.kind)
	}
	r.entries[name] = e
	return nil
}

// Counter registers a new counter under name.
func (r *Registry) Counter(name string) (*Counter, error) {
	c := &Counter{}
	if err := r.register(name, entry{kind: KindCounter, c: c}); err != nil {
		return nil, err
	}
	return c, nil
}

// Gauge registers a probe-backed gauge under name.
func (r *Registry) Gauge(name string, probe func() float64) (*Gauge, error) {
	g := &Gauge{probe: probe}
	if err := r.register(name, entry{kind: KindGauge, g: g}); err != nil {
		return nil, err
	}
	return g, nil
}

// Histogram registers a fixed-bucket histogram under name.
func (r *Registry) Histogram(name string, bounds []float64) (*Histogram, error) {
	h := NewHistogram(bounds)
	if err := r.register(name, entry{kind: KindHistogram, h: h}); err != nil {
		return nil, err
	}
	return h, nil
}

// MustCounter is Counter but panics on collision; for wiring code where a
// duplicate name is a programming error.
func (r *Registry) MustCounter(name string) *Counter {
	c, err := r.Counter(name)
	if err != nil {
		panic(err)
	}
	return c
}

// MustGauge is Gauge but panics on collision.
func (r *Registry) MustGauge(name string, probe func() float64) *Gauge {
	g, err := r.Gauge(name, probe)
	if err != nil {
		panic(err)
	}
	return g
}

// MustHistogram is Histogram but panics on collision.
func (r *Registry) MustHistogram(name string, bounds []float64) *Histogram {
	h, err := r.Histogram(name, bounds)
	if err != nil {
		panic(err)
	}
	return h
}

// Names returns all registered series names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.entries))
	for n := range r.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// GetHistogram returns the histogram registered under name, or nil.
func (r *Registry) GetHistogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[name].h
}
