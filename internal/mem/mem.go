// Package mem provides the simulated flat physical memory backing the
// cache hierarchy, together with the heap range bookkeeping that the GRP
// pointer scanner's base-and-bounds test relies on (paper Section 3.2).
//
// Memory is sparse: pages are allocated lazily, so multi-gigabyte address
// spaces cost only what the workload touches. All values are little-endian.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// PageSize is the allocation granularity of the sparse backing store. It is
// also the paper's region size (4 KB), though the two are independent.
const PageSize = 4096

// Layout constants for the simulated address space. The heap begins well
// above the globals segment so the base-and-bounds pointer test never
// confuses small integers or global addresses with heap pointers.
const (
	// GlobalBase is where statically sized workload data (if any) begins.
	GlobalBase uint64 = 0x0001_0000
	// HeapBase is the bottom of the simulated heap.
	HeapBase uint64 = 0x1000_0000
)

// Memory is a sparse, page-granular byte-addressable store with a bump
// allocator and heap range tracking.
type Memory struct {
	pages map[uint64]*[PageSize]byte

	// Last-page cache: accesses are overwhelmingly sequential or looped,
	// so remembering the most recent page short-circuits the map lookup
	// on the hot Read/Write path. lastPage == nil means cold.
	lastPN   uint64
	lastPage *[PageSize]byte

	heapStart uint64
	heapBrk   uint64 // next free heap byte (bump pointer)
}

// New returns an empty memory whose heap begins at HeapBase.
func New() *Memory {
	return &Memory{
		pages:     make(map[uint64]*[PageSize]byte),
		heapStart: HeapBase,
		heapBrk:   HeapBase,
	}
}

// Alloc carves size bytes from the heap, aligned to align (a power of two,
// at least 1), and returns the base address. It is the simulated malloc:
// allocations are contiguous in allocation order, which reproduces the
// "regular layout ... and memory allocation patterns for pointer data
// structures" the paper observes make spatial prefetching effective even on
// pointer codes (Section 3.1).
func (m *Memory) Alloc(size uint64, align uint64) uint64 {
	if align == 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: Alloc align %d not a power of two", align))
	}
	base := (m.heapBrk + align - 1) &^ (align - 1)
	m.heapBrk = base + size
	return base
}

// HeapRange returns the [start, end) range of allocated heap bytes. The GRP
// pointer scanner treats any 8-byte value within this range as a candidate
// pointer.
func (m *Memory) HeapRange() (start, end uint64) { return m.heapStart, m.heapBrk }

// InHeap reports whether addr falls within the allocated heap, i.e. whether
// the hardware's base-and-bounds check would accept it as a pointer.
func (m *Memory) InHeap(addr uint64) bool { return addr >= m.heapStart && addr < m.heapBrk }

// HeapBytes returns the number of bytes allocated so far.
func (m *Memory) HeapBytes() uint64 { return m.heapBrk - m.heapStart }

func (m *Memory) page(addr uint64) *[PageSize]byte {
	pn := addr / PageSize
	if pn == m.lastPN && m.lastPage != nil {
		return m.lastPage
	}
	p := m.pages[pn]
	if p == nil {
		p = new([PageSize]byte)
		m.pages[pn] = p
	}
	m.lastPN, m.lastPage = pn, p
	return p
}

// ReadBytes copies len(dst) bytes starting at addr into dst.
func (m *Memory) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		p := m.page(addr)
		off := addr % PageSize
		n := copy(dst, p[off:])
		dst = dst[n:]
		addr += uint64(n)
	}
}

// WriteBytes copies src into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		p := m.page(addr)
		off := addr % PageSize
		n := copy(p[off:], src)
		src = src[n:]
		addr += uint64(n)
	}
}

// Read returns the size-byte little-endian value at addr. Size must be 1, 4
// or 8. Accesses may straddle page boundaries.
func (m *Memory) Read(addr uint64, size int) uint64 {
	var buf [8]byte
	switch size {
	case 1:
		return uint64(m.page(addr)[addr%PageSize])
	case 4:
		if addr%PageSize <= PageSize-4 {
			p := m.page(addr)
			return uint64(binary.LittleEndian.Uint32(p[addr%PageSize:]))
		}
		m.ReadBytes(addr, buf[:4])
		return uint64(binary.LittleEndian.Uint32(buf[:4]))
	case 8:
		if addr%PageSize <= PageSize-8 {
			p := m.page(addr)
			return binary.LittleEndian.Uint64(p[addr%PageSize:])
		}
		m.ReadBytes(addr, buf[:8])
		return binary.LittleEndian.Uint64(buf[:8])
	default:
		panic(fmt.Sprintf("mem: Read size %d", size))
	}
}

// Write stores the low size bytes of val at addr, little-endian.
func (m *Memory) Write(addr uint64, size int, val uint64) {
	var buf [8]byte
	switch size {
	case 1:
		m.page(addr)[addr%PageSize] = byte(val)
	case 4:
		if addr%PageSize <= PageSize-4 {
			p := m.page(addr)
			binary.LittleEndian.PutUint32(p[addr%PageSize:], uint32(val))
			return
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(val))
		m.WriteBytes(addr, buf[:4])
	case 8:
		if addr%PageSize <= PageSize-8 {
			p := m.page(addr)
			binary.LittleEndian.PutUint64(p[addr%PageSize:], val)
			return
		}
		binary.LittleEndian.PutUint64(buf[:8], val)
		m.WriteBytes(addr, buf[:8])
	default:
		panic(fmt.Sprintf("mem: Write size %d", size))
	}
}

// Read64 is shorthand for Read(addr, 8).
func (m *Memory) Read64(addr uint64) uint64 { return m.Read(addr, 8) }

// Write64 is shorthand for Write(addr, 8, val).
func (m *Memory) Write64(addr uint64, val uint64) { m.Write(addr, 8, val) }

// Read32 is shorthand for Read(addr, 4).
func (m *Memory) Read32(addr uint64) uint32 { return uint32(m.Read(addr, 4)) }

// Write32 is shorthand for Write(addr, 4, val).
func (m *Memory) Write32(addr uint64, val uint32) { m.Write(addr, 4, uint64(val)) }

// PagesTouched returns how many distinct pages have been materialized;
// useful in tests asserting sparseness.
func (m *Memory) PagesTouched() int { return len(m.pages) }

// Digest returns an FNV-1a-style hash of memory contents plus the heap
// bounds, folded a 64-bit word at a time (page contents are hashed as 512
// little-endian words, not 4096 bytes: the byte-serial multiply chain was
// a fixed per-cell cost visible in profiles). All-zero pages are
// excluded: reads materialize pages too (the GRP pointer scanner reads
// speculatively), so which zero pages exist depends on timing-layer
// behavior, while the *contents* of memory do not. The digest therefore
// captures exactly the architectural state, making it the memory half of
// the metamorphic fault-injection check.
func (m *Memory) Digest() uint64 {
	// Hash pages in page-number order for a deterministic result.
	pns := make([]uint64, 0, len(m.pages))
	for pn, p := range m.pages {
		if *p == ([PageSize]byte{}) {
			continue
		}
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h1 := func(v uint64) {
		h ^= v
		h *= prime64
	}
	h1(m.heapStart)
	h1(m.heapBrk)
	for _, pn := range pns {
		h1(pn)
		p := m.pages[pn]
		for off := 0; off < PageSize; off += 8 {
			h1(binary.LittleEndian.Uint64(p[off:]))
		}
	}
	return h
}
