package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteSizes(t *testing.T) {
	m := New()
	m.Write(100, 8, 0x1122334455667788)
	if got := m.Read(100, 8); got != 0x1122334455667788 {
		t.Errorf("Read64 = %#x", got)
	}
	// Little-endian sub-reads.
	if got := m.Read(100, 1); got != 0x88 {
		t.Errorf("Read1 = %#x, want 0x88", got)
	}
	if got := m.Read(100, 4); got != 0x55667788 {
		t.Errorf("Read4 = %#x, want 0x55667788", got)
	}
	m.Write(104, 4, 0xdeadbeef)
	if got := m.Read(100, 8); got != 0xdeadbeef55667788 {
		t.Errorf("mixed = %#x", got)
	}
}

func TestPageStraddle(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3)
	m.Write(addr, 8, 0xa1b2c3d4e5f60718)
	if got := m.Read(addr, 8); got != 0xa1b2c3d4e5f60718 {
		t.Errorf("straddling read = %#x", got)
	}
	addr4 := uint64(2*PageSize - 2)
	m.Write(addr4, 4, 0xcafef00d)
	if got := m.Read(addr4, 4); got != 0xcafef00d {
		t.Errorf("straddling 4-byte read = %#x", got)
	}
}

func TestReadWriteBytes(t *testing.T) {
	m := New()
	src := make([]byte, 3*PageSize)
	for i := range src {
		src[i] = byte(i * 7)
	}
	m.WriteBytes(500, src)
	dst := make([]byte, len(src))
	m.ReadBytes(500, dst)
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("byte %d: got %d want %d", i, dst[i], src[i])
		}
	}
}

func TestAllocAlignment(t *testing.T) {
	m := New()
	a := m.Alloc(10, 64)
	if a%64 != 0 {
		t.Errorf("Alloc not 64-aligned: %#x", a)
	}
	b := m.Alloc(1, 8)
	if b < a+10 {
		t.Errorf("allocations overlap: %#x after %#x+10", b, a)
	}
	c := m.Alloc(8, 4096)
	if c%4096 != 0 {
		t.Errorf("Alloc not page-aligned: %#x", c)
	}
}

func TestAllocBadAlign(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Alloc with non-power-of-two alignment should panic")
		}
	}()
	New().Alloc(8, 3)
}

func TestHeapRange(t *testing.T) {
	m := New()
	if m.InHeap(HeapBase) {
		t.Error("empty heap should contain nothing")
	}
	a := m.Alloc(100, 8)
	start, end := m.HeapRange()
	if start != HeapBase {
		t.Errorf("heap start = %#x", start)
	}
	if end != a+100 {
		t.Errorf("heap end = %#x, want %#x", end, a+100)
	}
	if !m.InHeap(a) || !m.InHeap(a+99) {
		t.Error("allocated bytes should be in heap")
	}
	if m.InHeap(a + 100) {
		t.Error("past-the-end should be outside heap")
	}
	if m.InHeap(GlobalBase) {
		t.Error("globals are not heap")
	}
	if m.HeapBytes() == 0 {
		t.Error("HeapBytes should be nonzero after Alloc")
	}
}

func TestSparseness(t *testing.T) {
	m := New()
	m.Write64(0, 1)
	m.Write64(1<<40, 2)
	if n := m.PagesTouched(); n != 2 {
		t.Errorf("PagesTouched = %d, want 2", n)
	}
	if m.Read64(1<<40) != 2 {
		t.Error("high-address value lost")
	}
	if m.Read64(1<<20) != 0 {
		t.Error("untouched memory should read zero")
	}
}

// TestQuickReadAfterWrite checks the fundamental memory property across
// random addresses and sizes, including page boundaries.
func TestQuickReadAfterWrite(t *testing.T) {
	m := New()
	sizes := []int{1, 4, 8}
	f := func(addrSeed uint32, val uint64, sizeIdx uint8) bool {
		// Bias addresses toward page boundaries.
		addr := uint64(addrSeed) % (8 * PageSize)
		if addrSeed%3 == 0 {
			addr = uint64(addrSeed%16) + PageSize - 8
		}
		size := sizes[int(sizeIdx)%len(sizes)]
		m.Write(addr, size, val)
		got := m.Read(addr, size)
		want := val
		switch size {
		case 1:
			want &= 0xff
		case 4:
			want &= 0xffffffff
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestHelpers32And64(t *testing.T) {
	m := New()
	m.Write32(64, 0x01020304)
	if m.Read32(64) != 0x01020304 {
		t.Error("Write32/Read32 mismatch")
	}
	m.Write64(128, 0xfeedfacecafebeef)
	if m.Read64(128) != 0xfeedfacecafebeef {
		t.Error("Write64/Read64 mismatch")
	}
}
