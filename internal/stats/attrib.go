package stats

import (
	"fmt"

	"grp/internal/attrib"
)

// This file renders the prefetch lifecycle attribution digest
// (internal/attrib) as tables, in the same Table shape as the paper
// exhibits so grptables and grpsim share one ascii/json/csv pipeline.

// AttribOutcomeTable renders the outcome taxonomy of one run: one row per
// class with its share of issued prefetches, plus the pre-issue decision
// counters that never reach the conservation sum.
func AttribOutcomeTable(title string, s *attrib.Summary) *Table {
	t := &Table{
		Title:   title,
		Headers: []string{"outcome", "count", "% of issued"},
	}
	if s == nil {
		return t
	}
	pct := func(n uint64) string {
		if s.Issued == 0 {
			return Fmt(0, 1)
		}
		return Fmt(100*float64(n)/float64(s.Issued), 1)
	}
	for c := 0; c < attrib.NumClasses; c++ {
		cl := attrib.Class(c)
		n := s.Counts.Get(cl)
		t.Add(cl.String(), fmt.Sprintf("%d", n), pct(n))
	}
	t.Add("issued (total)", fmt.Sprintf("%d", s.Issued), pct(s.Issued))
	t.Add("holds (busy channel)", fmt.Sprintf("%d", s.HoldsBusy), "")
	t.Add("drops (held, present)", fmt.Sprintf("%d", s.DropsHeldPresent), "")
	t.Add("drops (software)", fmt.Sprintf("%d", s.DropsSoftware), "")
	t.Add("victim re-misses", fmt.Sprintf("%d", s.VictimReMisses), "")
	return t
}

// attribGroupTable renders per-region or per-PC rows.
func attribGroupTable(title, keyHeader string, rows []attrib.GroupSummary, total int) *Table {
	t := &Table{
		Title: title,
		Headers: []string{keyHeader, "issued", "useful", "late", "evicted",
			"pollution", "redundant", "cancelled", "resident"},
	}
	for _, r := range rows {
		t.Add(fmt.Sprintf("%#x", r.Key),
			fmt.Sprintf("%d", r.Issued),
			fmt.Sprintf("%d", r.Counts.Useful),
			fmt.Sprintf("%d", r.Counts.Late),
			fmt.Sprintf("%d", r.Counts.EvictedUnused),
			fmt.Sprintf("%d", r.Counts.Pollution),
			fmt.Sprintf("%d", r.Counts.Redundant),
			fmt.Sprintf("%d", r.Counts.Cancelled),
			fmt.Sprintf("%d", r.Counts.ResidentUnused))
	}
	if omitted := total - len(rows); omitted > 0 {
		t.Add(fmt.Sprintf("(+%d more)", omitted), "", "", "", "", "", "", "", "")
	}
	return t
}

// AttribRegionTable renders the per-4KB-region breakdown (top rows by
// issue count; the cut is attrib.MaxGroups).
func AttribRegionTable(title string, s *attrib.Summary) *Table {
	if s == nil {
		return &Table{Title: title, Headers: []string{"region"}}
	}
	return attribGroupTable(title, "region", s.Regions, s.RegionsTotal)
}

// AttribPCTable renders the per-triggering-PC breakdown (PC 0 is the
// hardware-internal trigger).
func AttribPCTable(title string, s *attrib.Summary) *Table {
	if s == nil {
		return &Table{Title: title, Headers: []string{"pc"}}
	}
	return attribGroupTable(title, "pc", s.PCs, s.PCsTotal)
}
