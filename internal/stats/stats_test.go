package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("Geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean([]float64{5}); math.Abs(g-5) > 1e-12 {
		t.Errorf("Geomean(5) = %v", g)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
	// Non-positive values are ignored rather than poisoning the mean.
	if g := Geomean([]float64{0, -3, 4}); math.Abs(g-4) > 1e-12 {
		t.Errorf("Geomean with nonpositive = %v, want 4", g)
	}
}

// TestQuickGeomeanBetweenMinMax: the geometric mean of positives always
// lies between the minimum and maximum.
func TestQuickGeomeanBetweenMinMax(t *testing.T) {
	f := func(seed []uint16) bool {
		var xs []float64
		for _, v := range seed {
			xs = append(xs, 0.25+float64(v%1000))
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRatioPct(t *testing.T) {
	if Ratio(10, 4) != 2.5 || Ratio(1, 0) != 0 {
		t.Error("Ratio")
	}
	if math.Abs(Pct(120, 100)-20) > 1e-9 || Pct(1, 0) != 0 {
		t.Error("Pct")
	}
}

func TestFmt(t *testing.T) {
	if Fmt(3.14159, 2) != "3.14" {
		t.Error("Fmt")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tb.Add("alpha", "1.00")
	tb.Add("b", "12345.67")
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "alpha") {
		t.Errorf("missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2
		if len(lines) != 5 {
			t.Errorf("unexpected line count %d:\n%s", len(lines), s)
		}
	}
	// Right alignment: the numeric column's last characters line up.
	var hdr, row1, row2 string
	for i, l := range lines {
		switch i {
		case 1:
			hdr = l
		case 3:
			row1 = l
		case 4:
			row2 = l
		}
	}
	if len(row1) != len(row2) || len(hdr) == 0 {
		t.Errorf("columns not aligned:\n%s", s)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := &Table{Headers: []string{"a"}}
	tb.Add("x", "extra", "cells")
	s := tb.String()
	if !strings.Contains(s, "extra") || !strings.Contains(s, "cells") {
		t.Errorf("ragged rows should render: %s", s)
	}
}

func TestBarChart(t *testing.T) {
	c := &BarChart{Title: "demo", Series: []string{"a", "b"}, Width: 10}
	c.Add("row1", 1.0, 2.0)
	c.Add("row2", 0.5, 0.0)
	s := c.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "row1") {
		t.Errorf("chart missing content:\n%s", s)
	}
	// The max value gets the full width; a tiny nonzero value still gets
	// one tick; zero gets none.
	if !strings.Contains(s, strings.Repeat("█", 10)) {
		t.Errorf("max bar should be full width:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title + 2 rows × 2 series
		t.Errorf("line count = %d:\n%s", len(lines), s)
	}
}

func TestBarChartEmpty(t *testing.T) {
	c := &BarChart{}
	if c.String() != "" && len(c.String()) > 1 {
		t.Log("empty chart renders trivially") // tolerated; just no panic
	}
}
