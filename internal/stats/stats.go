// Package stats provides the derived metrics and table rendering used to
// reproduce the paper's evaluation: geometric means over benchmark suites,
// speedups, traffic ratios, coverage and accuracy, and fixed-width ASCII
// tables mirroring the paper's tables and figures.
package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// Geomean returns the geometric mean of xs, ignoring non-positive values
// (which would otherwise poison the product); it returns 0 for an empty or
// all-non-positive input.
func Geomean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Pct returns 100·(a/b − 1), the percentage by which a exceeds b; 0 when b
// is zero.
func Pct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * (a/b - 1)
}

// Table renders rows of columns in fixed-width ASCII with a header rule.
// Cells are right-aligned except the first column.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row; values are formatted with %v (use Fmt for floats).
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fmt formats a float at the given precision for table cells.
func Fmt(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// MarshalJSON implements json.Marshaler so the paper's exhibits can be
// emitted machine-readable (grptables -format json). Nil headers and rows
// marshal as empty arrays, never null.
func (t *Table) MarshalJSON() ([]byte, error) {
	headers, rows := t.Headers, t.Rows
	if headers == nil {
		headers = []string{}
	}
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.Title, headers, rows})
}

// WriteCSV emits the table as RFC-4180 CSV: the header row followed by
// the data rows. The title is not emitted — CSV consumers want columns
// only.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String implements fmt.Stringer.
func (t *Table) String() string {
	ncol := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for i, w := range widths {
		if i > 0 {
			total += 2
		}
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
