package stats

import (
	"strings"
	"testing"

	"grp/internal/attrib"
)

func sampleSummary() *attrib.Summary {
	return &attrib.Summary{
		Issued: 10,
		Counts: attrib.Counts{
			Useful: 4, Late: 2, EvictedUnused: 1, Pollution: 1,
			Redundant: 0, Cancelled: 1, ResidentUnused: 1,
		},
		HintsSeen: 12, HoldsBusy: 3, DropsHeldPresent: 1, DropsSoftware: 2,
		VictimReMisses: 1,
		Regions: []attrib.GroupSummary{
			{Key: 0x1000, Issued: 6, Counts: attrib.Counts{Useful: 4, Late: 2}},
			{Key: 0x2000, Issued: 4, Counts: attrib.Counts{EvictedUnused: 1,
				Pollution: 1, Cancelled: 1, ResidentUnused: 1}},
		},
		PCs: []attrib.GroupSummary{
			{Key: 0x40, Issued: 10, Counts: attrib.Counts{Useful: 4, Late: 2,
				EvictedUnused: 1, Pollution: 1, Cancelled: 1, ResidentUnused: 1}},
		},
		RegionsTotal: 5,
		PCsTotal:     1,
	}
}

func TestAttribOutcomeTable(t *testing.T) {
	tb := AttribOutcomeTable("outcomes", sampleSummary())
	out := tb.String()
	// One row per class, in Class order, plus the totals/decisions rows.
	for _, cl := range attrib.ClassNames() {
		if !strings.Contains(out, cl) {
			t.Errorf("table missing class row %q:\n%s", cl, out)
		}
	}
	for _, want := range []string{"issued (total)", "10", "40.0",
		"holds (busy channel)", "victim re-misses"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if len(tb.Rows) != attrib.NumClasses+5 {
		t.Errorf("got %d rows, want %d", len(tb.Rows), attrib.NumClasses+5)
	}
}

func TestAttribGroupTables(t *testing.T) {
	s := sampleSummary()
	rt := AttribRegionTable("regions", s)
	out := rt.String()
	for _, want := range []string{"0x1000", "0x2000", "(+3 more)"} {
		if !strings.Contains(out, want) {
			t.Errorf("region table missing %q:\n%s", want, out)
		}
	}
	pt := AttribPCTable("pcs", s)
	if !strings.Contains(pt.String(), "0x40") {
		t.Errorf("pc table missing trigger pc:\n%s", pt.String())
	}
	if strings.Contains(pt.String(), "more)") {
		t.Errorf("pc table shows an omission row with none omitted:\n%s", pt.String())
	}
}

func TestAttribTablesNilSummary(t *testing.T) {
	for _, tb := range []*Table{
		AttribOutcomeTable("t", nil),
		AttribRegionTable("t", nil),
		AttribPCTable("t", nil),
	} {
		if len(tb.Rows) != 0 {
			t.Errorf("nil summary produced rows: %+v", tb.Rows)
		}
		_ = tb.String() // must not panic
	}
}
