package stats

import (
	"fmt"
	"strings"
)

// BarChart renders grouped horizontal ASCII bars — the closest a terminal
// gets to the paper's figures. Each row has one bar per series, scaled to
// the chart's maximum value.
type BarChart struct {
	Title  string
	Series []string // bar names within each group, e.g. schemes
	Width  int      // bar width in characters (default 40)

	rows []chartRow
}

type chartRow struct {
	label  string
	values []float64
}

// Add appends a group (e.g. one benchmark) with one value per series.
func (c *BarChart) Add(label string, values ...float64) {
	c.rows = append(c.rows, chartRow{label: label, values: values})
}

// String implements fmt.Stringer.
func (c *BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 40
	}
	var max float64
	for _, r := range c.rows {
		for _, v := range r.values {
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		max = 1
	}
	labelW, seriesW := 0, 0
	for _, r := range c.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	for _, s := range c.Series {
		if len(s) > seriesW {
			seriesW = len(s)
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for _, r := range c.rows {
		for i, v := range r.values {
			label := ""
			if i == 0 {
				label = r.label
			}
			series := ""
			if i < len(c.Series) {
				series = c.Series[i]
			}
			n := int(v / max * float64(width))
			if n < 0 {
				n = 0
			}
			if v > 0 && n == 0 {
				n = 1
			}
			fmt.Fprintf(&b, "%-*s  %-*s |%s %.3g\n",
				labelW, label, seriesW, series, strings.Repeat("█", n), v)
		}
	}
	return b.String()
}
