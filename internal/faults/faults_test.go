package faults

import (
	"strings"
	"testing"

	"grp/internal/isa"
)

func TestZeroPlanInactive(t *testing.T) {
	var p Plan
	if p.Active() {
		t.Fatal("zero plan reports active")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("zero plan invalid: %v", err)
	}
	in := NewInjector(&p)
	for i := 0; i < 1000; i++ {
		if in.DropIssue() || in.CancelInflight() {
			t.Fatal("zero plan injected a fault")
		}
		if h := in.CorruptHint(isa.HintSpatial); h != isa.HintSpatial {
			t.Fatal("zero plan corrupted a hint")
		}
		if c := in.TruncateCoeff(5); c != 5 {
			t.Fatal("zero plan truncated a coefficient")
		}
		if lat, busy := in.DramFault(); lat != 0 || busy != 0 {
			t.Fatal("zero plan injected a DRAM fault")
		}
		if in.FillDelay() != 0 {
			t.Fatal("zero plan delayed a fill")
		}
	}
	if got := in.Counts().Total(); got != 0 {
		t.Fatalf("zero plan counted %d faults", got)
	}
}

func TestInjectorDeterministic(t *testing.T) {
	p, err := Parse("heavy,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]bool, Counts) {
		in := NewInjector(&p)
		var drops []bool
		for i := 0; i < 5000; i++ {
			drops = append(drops, in.DropIssue())
			in.CorruptHint(isa.HintSpatial)
			in.TruncateCoeff(uint8(i % 8))
			in.DramFault()
			in.FillDelay()
		}
		return drops, in.Counts()
	}
	d1, c1 := run()
	d2, c2 := run()
	if c1 != c2 {
		t.Fatalf("counts differ across identical runs: %v vs %v", c1, c2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("drop decision %d differs across identical runs", i)
		}
	}
	if c1.Total() == 0 {
		t.Fatal("heavy plan injected nothing over 5000 opportunities")
	}
}

func TestSeedChangesStream(t *testing.T) {
	stream := func(seed uint64) uint64 {
		in := NewInjector(&Plan{Seed: seed, DropIssue: 0.5})
		var n uint64
		for i := 0; i < 1000; i++ {
			if in.DropIssue() {
				n++
			}
		}
		return n
	}
	// Different seeds should (overwhelmingly) disagree on at least the
	// drop count; identical seeds must agree exactly.
	if stream(7) != stream(7) {
		t.Fatal("same seed produced different drop counts")
	}
	a, b := stream(7), stream(8)
	if a == 0 || a == 1000 {
		t.Fatalf("p=0.5 drop count degenerate: %d/1000", a)
	}
	_ = b // streams may coincide in count; determinism is the contract
}

func TestRollProbabilityBounds(t *testing.T) {
	in := NewInjector(&Plan{Seed: 3, DropIssue: 1.0})
	for i := 0; i < 100; i++ {
		if !in.DropIssue() {
			t.Fatal("p=1 failed to fire")
		}
	}
	in = NewInjector(&Plan{Seed: 3, DropIssue: 0.5})
	fired := 0
	for i := 0; i < 10000; i++ {
		if in.DropIssue() {
			fired++
		}
	}
	if fired < 4000 || fired > 6000 {
		t.Fatalf("p=0.5 fired %d/10000, far from expectation", fired)
	}
}

func TestTruncateCoeffShrinks(t *testing.T) {
	in := NewInjector(&Plan{Seed: 9, TruncateRegion: 1.0})
	for c := uint8(0); c <= 7; c++ {
		got := in.TruncateCoeff(c)
		if c == 0 {
			if got != 0 {
				t.Fatalf("truncate(0) = %d", got)
			}
			continue
		}
		if got >= c {
			t.Fatalf("truncate(%d) = %d, not strictly smaller", c, got)
		}
	}
}

func TestCorruptHintFlipsKnownBits(t *testing.T) {
	in := NewInjector(&Plan{Seed: 11, CorruptHint: 1.0})
	known := isa.HintSpatial | isa.HintPointer | isa.HintRecursive
	for i := 0; i < 200; i++ {
		h := in.CorruptHint(isa.HintSpatial)
		if h == isa.HintSpatial {
			t.Fatal("p=1 corruption left hint unchanged")
		}
		if h&^(known|isa.HintSpatial) != 0 {
			t.Fatalf("corruption introduced unknown bits: %#x", h)
		}
	}
}

func TestStolenSlotsLeavesOne(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, MSHRSteal: 100})
	if got := in.StolenSlots(8); got != 7 {
		t.Fatalf("StolenSlots(8) with steal=100: got %d, want 7", got)
	}
	in = NewInjector(&Plan{Seed: 1, MSHRSteal: 3})
	if got := in.StolenSlots(8); got != 3 {
		t.Fatalf("StolenSlots(8) with steal=3: got %d, want 3", got)
	}
	if got := in.StolenSlots(1); got != 0 {
		t.Fatalf("StolenSlots(1): got %d, want 0", got)
	}
}

func TestParsePresets(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := Parse(name)
		if err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if !p.Active() {
			t.Fatalf("preset %s is inactive", name)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", name, err)
		}
	}
	p, err := Parse("heavy,seed=99,drop=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 99 || p.DropIssue != 0.5 {
		t.Fatalf("preset refinement ignored: %+v", p)
	}
	if p.StuckBank != Presets()["heavy"].StuckBank {
		t.Fatal("preset refinement clobbered unrelated field")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"nonsense",
		"drop",            // not key=value
		"drop=2",          // probability out of range
		"drop=-0.1",       // negative
		"drop=NaN",        // NaN
		"seed=abc",        // not a number
		"wat=1",           // unknown key
		"degrade=0.5:0",   // zero fault cycles
		"mshr-steal=-2",   // negative steal
		"delay-fill=x:10", // bad probability
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestParseEmptyAndWhitespace(t *testing.T) {
	for _, spec := range []string{"", "  ", " drop=0.1 , seed=3 "} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if strings.TrimSpace(spec) == "" && p.Active() {
			t.Fatalf("Parse(%q) active", spec)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	specs := []string{
		"heavy", "light", "chaos",
		"drop=0.25,seed=17",
		"degrade=0.1:250,stuck-bank=0.05:500,mshr-steal=6",
		"delay-fill=0.2:80,corrupt-hint=0.01,cancel=0.3,truncate=0.5",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		q, err := Parse(p.String())
		if err != nil {
			t.Fatalf("reparse of %q (canonical %q): %v", spec, p.String(), err)
		}
		if q.String() != p.String() {
			t.Fatalf("round trip diverged: %q -> %q -> %q", spec, p.String(), q.String())
		}
		// Seed 0 and 1 are equivalent to the injector; normalize.
		p.Seed, q.Seed = max64(p.Seed, 1), max64(q.Seed, 1)
		if p != q {
			t.Fatalf("round trip plan differs: %+v vs %+v", p, q)
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
