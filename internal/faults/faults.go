// Package faults implements deterministic, seed-driven fault injection for
// the simulated memory hierarchy.
//
// GRP's central contract is that prefetching is purely speculative: a
// dropped, late, deprioritized, or outright cancelled region prefetch may
// cost cycles but must never change architectural results (paper Sections
// 3-4 — the access prioritizer exists precisely so prefetches can be
// starved safely). This package turns that safety argument into something
// the simulator can *prove* rather than assume: a Plan describes a set of
// timing- and hint-level perturbations, an Injector rolls them from a
// seeded PRNG, and the hierarchy's hook points apply them. Every fault is
// restricted by construction to the timing domain (latencies, queue
// occupancy, hint bits feeding the prefetch engines), so architectural
// results under any plan must be bit-identical to the fault-free run —
// the metamorphic property checked in internal/core.
//
// Determinism: the Injector uses a splitmix64 generator seeded from the
// Plan, and a fault kind consumes PRNG state only when its probability is
// nonzero, so the same plan over the same simulated event sequence always
// injects the same faults.
package faults

import (
	"fmt"
	"math"

	"grp/internal/isa"
)

// Plan describes which faults to inject and how hard. The zero value
// injects nothing. Probabilities are per opportunity (per prefetch pop,
// per DRAM access, per fill, per pump step).
type Plan struct {
	// Seed drives the injector's PRNG; 0 is treated as 1.
	Seed uint64

	// DropIssue is the probability that a prefetch candidate popped from
	// the engine is discarded instead of issued (a dropped issue).
	DropIssue float64
	// TruncateRegion is the probability that a spatial hint's region-size
	// coefficient is reduced, truncating the region the engine builds.
	TruncateRegion float64
	// CorruptHint is the probability that a miss's compiler hint kind is
	// corrupted (one of the spatial/pointer/recursive bits flipped) before
	// it reaches the prefetch engine.
	CorruptHint float64
	// DropHint is the probability that a miss's compiler hints are
	// stripped entirely before reaching the prefetch engine — the
	// "hints went missing" failure mode (broken toolchain, unannotated
	// library code). Guided engines see an unhinted miss stream.
	DropHint float64
	// CancelInflight is the probability, per prefetch-pump step, that one
	// in-flight prefetch (not yet merged with a demand) is cancelled.
	CancelInflight float64

	// DegradeChannel is the probability that a DRAM access suffers
	// DegradeCycles of extra latency (a degraded channel).
	DegradeChannel float64
	DegradeCycles  uint64
	// StuckBank is the probability that a DRAM access leaves its bank
	// stuck busy for StuckCycles beyond its normal row cycle.
	StuckBank   float64
	StuckCycles uint64

	// MSHRSteal virtually occupies this many L2 MSHR slots, modeling
	// exhaustion pressure (at least one slot is always left usable).
	MSHRSteal int
	// DelayFill is the probability that a fill's completion is delayed by
	// DelayFillCycles.
	DelayFill       float64
	DelayFillCycles uint64
}

// Active reports whether the plan injects any fault at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return p.DropIssue > 0 || p.TruncateRegion > 0 || p.CorruptHint > 0 ||
		p.DropHint > 0 || p.CancelInflight > 0 || p.DegradeChannel > 0 ||
		p.StuckBank > 0 || p.MSHRSteal > 0 || p.DelayFill > 0
}

// Validate checks the plan for internal consistency.
func (p *Plan) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"drop", p.DropIssue}, {"truncate", p.TruncateRegion},
		{"corrupt-hint", p.CorruptHint}, {"drop-hint", p.DropHint},
		{"cancel", p.CancelInflight},
		{"degrade", p.DegradeChannel}, {"stuck-bank", p.StuckBank},
		{"delay-fill", p.DelayFill},
	}
	for _, pr := range probs {
		if math.IsNaN(pr.v) || pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.MSHRSteal < 0 {
		return fmt.Errorf("faults: mshr-steal %d negative", p.MSHRSteal)
	}
	if p.DegradeChannel > 0 && p.DegradeCycles == 0 {
		return fmt.Errorf("faults: degrade probability set but degrade cycles zero")
	}
	if p.StuckBank > 0 && p.StuckCycles == 0 {
		return fmt.Errorf("faults: stuck-bank probability set but stuck cycles zero")
	}
	if p.DelayFill > 0 && p.DelayFillCycles == 0 {
		return fmt.Errorf("faults: delay-fill probability set but delay cycles zero")
	}
	const maxFaultCycles = 1 << 32 // keep faulted latencies finite-looking
	if p.DegradeCycles > maxFaultCycles || p.StuckCycles > maxFaultCycles || p.DelayFillCycles > maxFaultCycles {
		return fmt.Errorf("faults: fault latency exceeds %d cycles", uint64(maxFaultCycles))
	}
	return nil
}

// Counts reports how many faults of each kind actually fired during a run.
type Counts struct {
	Dropped        uint64 // prefetch issues discarded
	Truncated      uint64 // region coefficients reduced
	CorruptedHints uint64 // hint kinds flipped
	DroppedHints   uint64 // hint sets stripped entirely
	Degraded       uint64 // DRAM accesses with extra latency
	StuckBanks     uint64 // bank row cycles extended
	DelayedFills   uint64 // fills completed late
}

// Total sums all injected faults.
func (c Counts) Total() uint64 {
	return c.Dropped + c.Truncated + c.CorruptedHints + c.DroppedHints + c.Degraded + c.StuckBanks + c.DelayedFills
}

// String implements fmt.Stringer.
func (c Counts) String() string {
	return fmt.Sprintf("dropped=%d truncated=%d corrupted=%d hintless=%d degraded=%d stuck=%d delayed=%d",
		c.Dropped, c.Truncated, c.CorruptedHints, c.DroppedHints, c.Degraded, c.StuckBanks, c.DelayedFills)
}

// Injector rolls faults from a plan with a deterministic PRNG. It is not
// safe for concurrent use; the simulation is single-goroutine.
type Injector struct {
	plan   Plan
	state  uint64
	counts Counts
}

// NewInjector builds an injector for the plan (copied; later mutation of
// the plan does not affect the injector).
func NewInjector(p *Plan) *Injector {
	in := &Injector{plan: *p, state: p.Seed}
	if in.state == 0 {
		in.state = 1
	}
	return in
}

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Counts returns the faults injected so far.
func (in *Injector) Counts() Counts { return in.counts }

// next advances the splitmix64 generator.
func (in *Injector) next() uint64 {
	in.state += 0x9e3779b97f4a7c15
	z := in.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll returns true with probability p, consuming PRNG state only when the
// outcome is not forced (p <= 0), so fault kinds compose without shifting
// each other's random streams on and off.
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(in.next()>>11)/(1<<53) < p
}

// DropIssue reports whether the current prefetch candidate should be
// discarded instead of issued.
func (in *Injector) DropIssue() bool {
	if in.roll(in.plan.DropIssue) {
		in.counts.Dropped++
		return true
	}
	return false
}

// CorruptHint possibly flips one of the spatial/pointer/recursive hint
// bits. Hints only steer the prefetch engines, never functional execution,
// so corruption is timing-only by construction.
func (in *Injector) CorruptHint(h isa.Hint) isa.Hint {
	if !in.roll(in.plan.CorruptHint) {
		return h
	}
	in.counts.CorruptedHints++
	bits := []isa.Hint{isa.HintSpatial, isa.HintPointer, isa.HintRecursive}
	return h ^ bits[in.next()%uint64(len(bits))]
}

// DropHint possibly strips every hint bit from a miss, so guided engines
// see it unhinted. Like corruption, stripping is timing-only: hints never
// affect functional execution.
func (in *Injector) DropHint(h isa.Hint) isa.Hint {
	if h == 0 || !in.roll(in.plan.DropHint) {
		return h
	}
	in.counts.DroppedHints++
	return 0
}

// TruncateCoeff possibly reduces a region-size coefficient, truncating the
// region a variable-size engine would build. The result stays within the
// 3-bit encoding.
func (in *Injector) TruncateCoeff(c uint8) uint8 {
	if !in.roll(in.plan.TruncateRegion) {
		return c
	}
	in.counts.Truncated++
	if c == 0 {
		return 0
	}
	return uint8(in.next() % uint64(c)) // strictly smaller than c
}

// CancelInflight reports whether one in-flight prefetch should be
// cancelled at this pump step. The memory system counts actual
// cancellations (a roll may find nothing cancellable).
func (in *Injector) CancelInflight() bool {
	return in.roll(in.plan.CancelInflight)
}

// DramFault returns extra access latency (degraded channel) and extra bank
// busy time (stuck bank) for one DRAM access.
func (in *Injector) DramFault() (extraLatency, extraBankBusy uint64) {
	if in.roll(in.plan.DegradeChannel) {
		in.counts.Degraded++
		extraLatency = in.plan.DegradeCycles
	}
	if in.roll(in.plan.StuckBank) {
		in.counts.StuckBanks++
		extraBankBusy = in.plan.StuckCycles
	}
	return extraLatency, extraBankBusy
}

// StolenSlots returns how many of n MSHR slots are virtually occupied by
// fault pressure; at least one slot is always left usable.
func (in *Injector) StolenSlots(n int) int {
	s := in.plan.MSHRSteal
	if s >= n {
		s = n - 1
	}
	if s < 0 {
		s = 0
	}
	return s
}

// FillDelay returns extra cycles added to a fill's completion (zero when
// the roll misses).
func (in *Injector) FillDelay() uint64 {
	if in.roll(in.plan.DelayFill) {
		in.counts.DelayedFills++
		return in.plan.DelayFillCycles
	}
	return 0
}
