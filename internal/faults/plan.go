package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Plan spec grammar (the -faults flag):
//
//	spec    := preset | assigns
//	preset  := "light" | "heavy" | "chaos"  [ "," assigns ]
//	assigns := assign { "," assign }
//	assign  := key "=" value
//
// Keys:
//
//	seed=N              PRNG seed (default 1)
//	drop=P              drop prefetch issues with probability P
//	truncate=P          truncate region coefficients with probability P
//	corrupt-hint=P      corrupt hint kinds with probability P
//	drop-hint=P         strip a miss's hints entirely with probability P
//	cancel=P            cancel one in-flight prefetch per pump step with P
//	degrade=P:C         degrade DRAM channel: probability P, +C cycles
//	stuck-bank=P:C      stick a DRAM bank busy: probability P, +C cycles
//	mshr-steal=N        virtually occupy N L2 MSHR slots
//	delay-fill=P:C      delay fills: probability P, +C cycles
//
// A preset may be refined by trailing assignments, e.g. "heavy,seed=7".

// Presets returns the named preset plans, most gentle first.
func Presets() map[string]Plan {
	return map[string]Plan{
		"light": {
			Seed:      1,
			DropIssue: 0.01,
			DelayFill: 0.02, DelayFillCycles: 40,
			DegradeChannel: 0.01, DegradeCycles: 60,
		},
		"heavy": {
			Seed:      1,
			DropIssue: 0.10, TruncateRegion: 0.10, CorruptHint: 0.05,
			CancelInflight: 0.05,
			DegradeChannel: 0.10, DegradeCycles: 200,
			StuckBank: 0.05, StuckCycles: 400,
			MSHRSteal: 4,
			DelayFill: 0.10, DelayFillCycles: 120,
		},
		"chaos": {
			Seed:      1,
			DropIssue: 0.40, TruncateRegion: 0.40, CorruptHint: 0.30,
			CancelInflight: 0.30,
			DegradeChannel: 0.35, DegradeCycles: 900,
			StuckBank: 0.25, StuckCycles: 1500,
			MSHRSteal: 7,
			DelayFill: 0.35, DelayFillCycles: 700,
		},
	}
}

// PresetNames returns the preset names in deterministic order.
func PresetNames() []string {
	m := Presets()
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Parse builds a Plan from a spec string. An empty spec yields the inactive
// zero plan.
func Parse(spec string) (Plan, error) {
	var p Plan
	p.Seed = 1
	rest := strings.TrimSpace(spec)
	if rest == "" {
		return Plan{}, nil
	}
	// Optional leading preset.
	head := rest
	if i := strings.IndexByte(rest, ','); i >= 0 {
		head = rest[:i]
	}
	if preset, ok := Presets()[strings.TrimSpace(head)]; ok {
		p = preset
		rest = rest[len(head):]
		rest = strings.TrimPrefix(rest, ",")
	}
	for _, field := range strings.Split(rest, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: %q is not key=value (and not a preset: %s)",
				field, strings.Join(PresetNames(), ", "))
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 0, 64)
		case "drop":
			p.DropIssue, err = parseProb(val)
		case "truncate":
			p.TruncateRegion, err = parseProb(val)
		case "corrupt-hint":
			p.CorruptHint, err = parseProb(val)
		case "drop-hint":
			p.DropHint, err = parseProb(val)
		case "cancel":
			p.CancelInflight, err = parseProb(val)
		case "degrade":
			p.DegradeChannel, p.DegradeCycles, err = parseProbCycles(val)
		case "stuck-bank":
			p.StuckBank, p.StuckCycles, err = parseProbCycles(val)
		case "mshr-steal":
			var n int64
			n, err = strconv.ParseInt(val, 10, 32)
			p.MSHRSteal = int(n)
		case "delay-fill":
			p.DelayFill, p.DelayFillCycles, err = parseProbCycles(val)
		default:
			return Plan{}, fmt.Errorf("faults: unknown key %q (want seed, drop, truncate, corrupt-hint, drop-hint, cancel, degrade, stuck-bank, mshr-steal, delay-fill)", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("faults: bad value for %s: %v", key, err)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// String renders the plan in the spec grammar; Parse(p.String()) rebuilds
// an equal plan. The inactive zero plan renders as "".
func (p Plan) String() string {
	if !p.Active() {
		return ""
	}
	var parts []string
	add := func(s string) { parts = append(parts, s) }
	if p.Seed != 0 && p.Seed != 1 {
		add(fmt.Sprintf("seed=%d", p.Seed))
	}
	if p.DropIssue > 0 {
		add("drop=" + formatProb(p.DropIssue))
	}
	if p.TruncateRegion > 0 {
		add("truncate=" + formatProb(p.TruncateRegion))
	}
	if p.CorruptHint > 0 {
		add("corrupt-hint=" + formatProb(p.CorruptHint))
	}
	if p.DropHint > 0 {
		add("drop-hint=" + formatProb(p.DropHint))
	}
	if p.CancelInflight > 0 {
		add("cancel=" + formatProb(p.CancelInflight))
	}
	if p.DegradeChannel > 0 {
		add(fmt.Sprintf("degrade=%s:%d", formatProb(p.DegradeChannel), p.DegradeCycles))
	}
	if p.StuckBank > 0 {
		add(fmt.Sprintf("stuck-bank=%s:%d", formatProb(p.StuckBank), p.StuckCycles))
	}
	if p.MSHRSteal > 0 {
		add(fmt.Sprintf("mshr-steal=%d", p.MSHRSteal))
	}
	if p.DelayFill > 0 {
		add(fmt.Sprintf("delay-fill=%s:%d", formatProb(p.DelayFill), p.DelayFillCycles))
	}
	return strings.Join(parts, ",")
}

func parseProb(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || v < 0 || v > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", v)
	}
	return v, nil
}

// parseProbCycles parses "P:C" (probability, extra cycles) or a bare "P"
// with a default of 100 extra cycles.
func parseProbCycles(s string) (float64, uint64, error) {
	probStr, cycStr, hasCycles := strings.Cut(s, ":")
	prob, err := parseProb(probStr)
	if err != nil {
		return 0, 0, err
	}
	cycles := uint64(100)
	if hasCycles {
		cycles, err = strconv.ParseUint(strings.TrimSpace(cycStr), 10, 33)
		if err != nil {
			return 0, 0, err
		}
	}
	if prob > 0 && cycles == 0 {
		return 0, 0, fmt.Errorf("zero fault cycles with probability %v", prob)
	}
	return prob, cycles, nil
}

func formatProb(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
