package faults

import "testing"

// FuzzParsePlan checks that any spec Parse accepts renders to a canonical
// string that re-parses to the same canonical string (idempotent
// canonicalization), and that Parse never accepts an invalid plan.
func FuzzParsePlan(f *testing.F) {
	f.Add("")
	f.Add("light")
	f.Add("heavy,seed=42")
	f.Add("chaos,drop=0.9")
	f.Add("drop=0.25,truncate=0.1,corrupt-hint=0.05")
	f.Add("degrade=0.5:200,stuck-bank=0.25:400,mshr-steal=6,delay-fill=0.1:80")
	f.Add("seed=18446744073709551615")
	f.Add("cancel=1")
	f.Add("drop=1e-3")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return // rejected specs are out of scope
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted invalid plan: %v", spec, verr)
		}
		canon := p.String()
		q, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not re-parse: %v", canon, spec, err)
		}
		if q.String() != canon {
			t.Fatalf("canonicalization not idempotent: %q -> %q -> %q", spec, canon, q.String())
		}
	})
}
