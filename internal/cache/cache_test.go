package cache

import (
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{
		Name: "t", SizeBytes: 4096, Assoc: 4, BlockBytes: 64,
		HitLatency: 3, MSHRs: 4,
	} // 16 sets
}

func TestValidateConfig(t *testing.T) {
	bad := []Config{
		{Name: "zero"},
		{Name: "nonpow2block", SizeBytes: 4096, Assoc: 4, BlockBytes: 48},
		{Name: "nonpow2sets", SizeBytes: 3 * 64 * 4, Assoc: 4, BlockBytes: 64},
		{Name: "negmshr", SizeBytes: 4096, Assoc: 4, BlockBytes: 64, MSHRs: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.Name)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestHitMissFill(t *testing.T) {
	c := mustNew(t, testConfig())
	if hit, _ := c.Access(0x1000, false); hit {
		t.Fatal("cold cache should miss")
	}
	c.Fill(0x1000, false, false)
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Fatal("filled block should hit")
	}
	if hit, _ := c.Access(0x1038, false); !hit {
		t.Fatal("same block different offset should hit")
	}
	if hit, _ := c.Access(0x1040, false); hit {
		t.Fatal("next block should miss")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Hits != 2 || s.Misses != 2 || s.DemandFills != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// addrForSet builds the i-th distinct block address mapping to the same set.
func addrForSet(c *Cache, set, i int) uint64 {
	return uint64(set)*64 + uint64(i)*uint64(c.NumSets())*64
}

func TestLRUReplacement(t *testing.T) {
	c := mustNew(t, testConfig()) // 4-way
	// Fill 4 ways of set 0.
	for i := 0; i < 4; i++ {
		c.Fill(addrForSet(c, 0, i), false, false)
	}
	// Touch block 0 so block 1 becomes LRU.
	c.Access(addrForSet(c, 0, 0), false)
	// Fill a 5th block: should evict block 1.
	v, evicted := c.Fill(addrForSet(c, 0, 4), false, false)
	if !evicted || v.Addr != addrForSet(c, 0, 1) {
		t.Errorf("evicted %+v (%v), want block 1", v, evicted)
	}
	if hit, _ := c.Access(addrForSet(c, 0, 1), false); hit {
		t.Error("evicted block should miss")
	}
	if hit, _ := c.Access(addrForSet(c, 0, 0), false); !hit {
		t.Error("MRU block should still hit")
	}
}

func TestPrefetchInsertsAtLRU(t *testing.T) {
	c := mustNew(t, testConfig())
	// Fill 4 demand blocks.
	for i := 0; i < 4; i++ {
		c.Fill(addrForSet(c, 0, i), false, false)
	}
	// A prefetch fill replaces the LRU (block 0) and sits at LRU itself.
	v, ev := c.Fill(addrForSet(c, 0, 10), true, false)
	if !ev || v.Addr != addrForSet(c, 0, 0) {
		t.Fatalf("prefetch should evict current LRU, got %+v", v)
	}
	// A second prefetch replaces the first prefetch, not another demand
	// block: useless prefetches displace at most one way (Sec. 3.1).
	v, ev = c.Fill(addrForSet(c, 0, 11), true, false)
	if !ev || v.Addr != addrForSet(c, 0, 10) {
		t.Fatalf("second prefetch should evict first, got %+v", v)
	}
	if c.Stats().UselessPrefetches != 1 {
		t.Errorf("UselessPrefetches = %d, want 1", c.Stats().UselessPrefetches)
	}
	// Demand blocks 1..3 all survive.
	for i := 1; i < 4; i++ {
		if hit, _ := c.Access(addrForSet(c, 0, i), false); !hit {
			t.Errorf("demand block %d was displaced by prefetches", i)
		}
	}
}

func TestPrefetchPromotionOnDemandHit(t *testing.T) {
	c := mustNew(t, testConfig())
	c.Fill(0x2000, true, false)
	hit, wasPF := c.Access(0x2000, false)
	if !hit || !wasPF {
		t.Fatalf("demand hit on prefetched line: hit=%v wasPF=%v", hit, wasPF)
	}
	if c.Stats().UsefulPrefetches != 1 {
		t.Errorf("UsefulPrefetches = %d, want 1", c.Stats().UsefulPrefetches)
	}
	// The second hit is an ordinary hit.
	if _, wasPF := c.Access(0x2000, false); wasPF {
		t.Error("promotion should clear the prefetched mark")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := mustNew(t, testConfig())
	c.Fill(addrForSet(c, 3, 0), false, true) // dirty fill
	for i := 1; i <= 4; i++ {
		c.Fill(addrForSet(c, 3, i), false, false)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestWriteSetsDirty(t *testing.T) {
	c := mustNew(t, testConfig())
	c.Fill(addrForSet(c, 2, 0), false, false)
	c.Access(addrForSet(c, 2, 0), true) // write hit dirties the line
	for i := 1; i <= 4; i++ {
		c.Fill(addrForSet(c, 2, i), false, false)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestMarkDirty(t *testing.T) {
	c := mustNew(t, testConfig())
	if c.MarkDirty(0x3000) {
		t.Error("MarkDirty on absent block should report false")
	}
	c.Fill(0x3000, false, false)
	if !c.MarkDirty(0x3000) {
		t.Error("MarkDirty on present block should report true")
	}
	// Eviction must now write back.
	for i := 1; i <= 4; i++ {
		c.Fill(0x3000+uint64(i)*uint64(c.NumSets())*64, false, false)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestInvalidate(t *testing.T) {
	c := mustNew(t, testConfig())
	c.Fill(0x4000, false, true)
	dirty, present := c.Invalidate(0x4000)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v,%v), want dirty present", dirty, present)
	}
	if hit, _ := c.Access(0x4000, false); hit {
		t.Error("invalidated block should miss")
	}
	if _, present := c.Invalidate(0x9999000); present {
		t.Error("invalidate of absent block should report absent")
	}
}

func TestContainsDoesNotPerturb(t *testing.T) {
	c := mustNew(t, testConfig())
	for i := 0; i < 4; i++ {
		c.Fill(addrForSet(c, 1, i), false, false)
	}
	before := c.Stats()
	if !c.Contains(addrForSet(c, 1, 0)) || c.Contains(addrForSet(c, 1, 9)) {
		t.Error("Contains wrong")
	}
	if c.Stats() != before {
		t.Error("Contains must not touch statistics")
	}
	// LRU order unchanged: fill evicts block 0 (still LRU).
	v, _ := c.Fill(addrForSet(c, 1, 5), false, false)
	if v.Addr != addrForSet(c, 1, 0) {
		t.Errorf("Contains perturbed LRU: evicted %#x", v.Addr)
	}
}

func TestPerfectCache(t *testing.T) {
	cfg := testConfig()
	cfg.Perfect = true
	c := mustNew(t, cfg)
	if hit, _ := c.Access(0xabcdef, false); !hit {
		t.Error("perfect cache must always hit")
	}
	if !c.Contains(0x123456) {
		t.Error("perfect cache contains everything")
	}
	if _, ev := c.Fill(0x1, false, false); ev {
		t.Error("perfect cache fills are no-ops")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty miss rate should be 0")
	}
	s.Accesses, s.Misses = 200, 50
	if got := s.MissRate(); got != 25 {
		t.Errorf("MissRate = %v, want 25", got)
	}
}

// TestQuickFillThenContains: any filled block is Contains-visible until
// evicted; eviction victims are reconstructed correctly.
func TestQuickFillThenContains(t *testing.T) {
	c := mustNew(t, testConfig())
	live := map[uint64]bool{}
	f := func(blockSeed uint16, prefetch bool) bool {
		addr := uint64(blockSeed) * 64
		v, ev := c.Fill(addr, prefetch, false)
		live[addr&^63] = true
		if ev {
			delete(live, v.Addr)
		}
		if !c.Contains(addr) {
			return false
		}
		if ev && c.Contains(v.Addr) && v.Addr != addr&^63 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
	// Everything the model says is live must be present.
	for a := range live {
		if !c.Contains(a) {
			t.Errorf("block %#x should be cached", a)
		}
	}
}

func TestMSHRFile(t *testing.T) {
	m := NewMSHRFile(2)
	s1, i1 := m.Reserve(100)
	if s1 != 100 {
		t.Errorf("first reserve at %d, want 100", s1)
	}
	m.Complete(i1, 300)
	s2, i2 := m.Reserve(110)
	if s2 != 110 {
		t.Errorf("second reserve at %d, want 110", s2)
	}
	m.Complete(i2, 400)
	// Both slots busy: next reserve waits for the earliest completion.
	s3, i3 := m.Reserve(120)
	if s3 != 300 {
		t.Errorf("third reserve at %d, want 300", s3)
	}
	m.Complete(i3, 500)
	if m.Peak() != 2 {
		t.Errorf("Peak = %d, want 2", m.Peak())
	}
}

func TestMSHRFileUnlimited(t *testing.T) {
	m := NewMSHRFile(0)
	s, idx := m.Reserve(42)
	if s != 42 || idx != -1 {
		t.Errorf("unlimited MSHR reserve = (%d,%d)", s, idx)
	}
	m.Complete(idx, 100) // no-op, must not panic
}

func TestPrefetchInsertMRUAblation(t *testing.T) {
	cfg := testConfig()
	cfg.PrefetchInsertMRU = true
	c := mustNew(t, cfg)
	for i := 0; i < 4; i++ {
		c.Fill(addrForSet(c, 0, i), false, false)
	}
	// With MRU insertion, a second prefetch no longer replaces the first:
	// it evicts another demand block instead (the pollution the paper's
	// LRU insertion avoids).
	c.Fill(addrForSet(c, 0, 10), true, false)
	v, ev := c.Fill(addrForSet(c, 0, 11), true, false)
	if !ev || v.Addr == addrForSet(c, 0, 10) {
		t.Errorf("MRU-inserted prefetches should displace demand data, evicted %#x", v.Addr)
	}
}

// mustNew builds a cache from a config the test knows is valid.
func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFillTracked pins the no-op detection and the victim's prefetched
// mark, the two signals the attribution ledger consumes.
func TestFillTracked(t *testing.T) {
	c, _ := New(testConfig())

	if _, _, filled := c.FillTracked(0x1000, true, false); !filled {
		t.Fatal("first fill reported as no-op")
	}
	if _, _, filled := c.FillTracked(0x1000, true, false); filled {
		t.Fatal("refill of a present block not reported as no-op")
	}

	// The prefetch sits in the LRU slot, so the next fill to the same set
	// (16 sets: +0x400 aliases) victimizes it while still marked.
	v, evicted, filled := c.FillTracked(0x1400, false, false)
	if !filled {
		t.Fatal("demand fill reported as no-op")
	}
	if !evicted || v.Addr != 0x1000 {
		t.Fatalf("evicted=%v victim=%#x, want the LRU prefetch 0x1000", evicted, v.Addr)
	}
	if !v.Prefetched {
		t.Fatal("untouched prefetched victim lost its mark")
	}

	// A demand-referenced prefetch loses the mark before eviction.
	c2, _ := New(testConfig())
	c2.Fill(0x2000, true, false)
	c2.Access(0x2000, false)
	for i := 1; i <= 4; i++ {
		if v, evicted, _ := c2.FillTracked(uint64(0x2000+i*0x400), false, false); evicted {
			if v.Addr == 0x2000 && v.Prefetched {
				t.Fatal("demand-referenced prefetch victim still marked prefetched")
			}
		}
	}
}

// TestPerfectFillTracked: a perfect cache never fills.
func TestPerfectFillTracked(t *testing.T) {
	cfg := testConfig()
	cfg.Perfect = true
	c, _ := New(cfg)
	if _, evicted, filled := c.FillTracked(0x1000, true, false); evicted || filled {
		t.Fatal("perfect cache filled")
	}
}
