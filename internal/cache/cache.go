// Package cache implements the set-associative cache model used for both
// levels of the simulated hierarchy, including the two SRP/GRP-specific
// mechanisms from the paper: prefetched lines are inserted at the LRU
// position of their set (so useless prefetches can displace at most 1/n of
// the useful data in an n-way cache, Section 3.1), and a line is promoted
// to MRU only when the CPU references it explicitly.
package cache

import (
	"fmt"
	"strings"

	"grp/internal/metrics"
)

// Config describes one cache.
type Config struct {
	Name       string
	SizeBytes  int
	Assoc      int
	BlockBytes int
	HitLatency uint64 // cycles
	MSHRs      int    // outstanding misses supported

	// Perfect makes every access hit; used for the perfect-L1/L2 bars of
	// the paper's Figure 1.
	Perfect bool

	// PrefetchInsertMRU places prefetch fills at the MRU position instead
	// of the paper's LRU insertion — an ablation knob quantifying how much
	// the low-priority replacement policy protects demand data.
	PrefetchInsertMRU bool
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("cache %s: nonpositive geometry", c.Name)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache %s: block size %d not a power of two", c.Name, c.BlockBytes)
	}
	sets := c.SizeBytes / (c.Assoc * c.BlockBytes)
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a positive power of two", c.Name, sets)
	}
	if c.MSHRs < 0 {
		return fmt.Errorf("cache %s: negative MSHR count", c.Name)
	}
	return nil
}

// Stats accumulates cache event counts.
type Stats struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64

	DemandFills   uint64
	PrefetchFills uint64

	// UsefulPrefetches counts prefetched lines later referenced by a
	// demand access; UselessPrefetches counts prefetched lines evicted
	// untouched. Accuracy (paper Table 5) = useful / issued prefetches.
	UsefulPrefetches  uint64
	UselessPrefetches uint64

	Writebacks uint64
}

// MissRate returns misses/accesses in percent.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 100 * float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	valid      bool
	tag        uint64
	dirty      bool
	prefetched bool // filled by a prefetch and not yet demand-referenced
}

// Cache is a set-associative write-back, write-allocate cache with true-LRU
// replacement. Each set is an ordered window of the flat line array,
// index 0 = MRU, index assoc-1 = LRU. Storing every set contiguously in
// one backing array (instead of a slice-of-slices) drops a pointer chase
// from every probe on the simulator's hot path and keeps neighbouring
// sets on shared cache lines of the host.
type Cache struct {
	cfg      Config
	lines    []line
	nsets    int
	setMask  uint64
	blkShift uint
	stats    Stats
}

// ways returns set's MRU→LRU window of the flat line array.
func (c *Cache) ways(set uint64) []line {
	lo := int(set) * c.cfg.Assoc
	return c.lines[lo : lo+c.cfg.Assoc : lo+c.cfg.Assoc]
}

// New builds a cache from cfg, or reports why the configuration is
// invalid.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / (cfg.Assoc * cfg.BlockBytes)
	c := &Cache{
		cfg:     cfg,
		lines:   make([]line, nsets*cfg.Assoc),
		nsets:   nsets,
		setMask: uint64(nsets - 1),
	}
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		c.blkShift++
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// RegisterMetrics registers this cache's event counts as probe-backed
// gauges under "<name>." (the lowercased config name), so a registry
// snapshot taken at any point reports live cumulative state. It costs
// nothing on the access path: the probes read the stats struct only when
// sampled or snapshotted.
func (c *Cache) RegisterMetrics(reg *metrics.Registry) {
	p := strings.ToLower(c.cfg.Name) + "."
	reg.MustGauge(p+"accesses", func() float64 { return float64(c.stats.Accesses) })
	reg.MustGauge(p+"misses", func() float64 { return float64(c.stats.Misses) })
	reg.MustGauge(p+"miss_rate", func() float64 { return c.stats.MissRate() })
	reg.MustGauge(p+"demand_fills", func() float64 { return float64(c.stats.DemandFills) })
	reg.MustGauge(p+"prefetch_fills", func() float64 { return float64(c.stats.PrefetchFills) })
	reg.MustGauge(p+"useful_prefetches", func() float64 { return float64(c.stats.UsefulPrefetches) })
	reg.MustGauge(p+"useless_prefetches", func() float64 { return float64(c.stats.UselessPrefetches) })
	reg.MustGauge(p+"writebacks", func() float64 { return float64(c.stats.Writebacks) })
}

// Stats returns a snapshot of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// BlockAddr returns addr rounded down to its block base.
func (c *Cache) BlockAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.BlockBytes-1)
}

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	b := addr >> c.blkShift
	// The tag keeps the set bits: it is the full block number. That wastes
	// a few simulated-tag bits but makes reconstructing victim addresses
	// trivial and cannot alias.
	return b & c.setMask, b
}

// Contains reports whether the block holding addr is present, without
// touching LRU state or statistics. The SRP engine uses it to initialize
// region bit vectors to "blocks not already present in the L2" (Sec. 3.1).
func (c *Cache) Contains(addr uint64) bool {
	if c.cfg.Perfect {
		return true
	}
	set, tag := c.index(addr)
	ways := c.ways(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			return true
		}
	}
	return false
}

// Access performs a demand access. On a hit the line moves to MRU (and a
// prefetched line is counted useful and loses its prefetched mark;
// wasPrefetched reports that case so stream-based prefetchers can advance).
// On a miss nothing is filled: the caller is responsible for calling Fill
// when the data returns, which lets fill timing be modeled.
func (c *Cache) Access(addr uint64, write bool) (hit, wasPrefetched bool) {
	c.stats.Accesses++
	if c.cfg.Perfect {
		c.stats.Hits++
		return true, false
	}
	set, tag := c.index(addr)
	ways := c.ways(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.stats.Hits++
			ln := ways[i]
			if ln.prefetched {
				c.stats.UsefulPrefetches++
				ln.prefetched = false
				wasPrefetched = true
			}
			if write {
				ln.dirty = true
			}
			// Promote to MRU.
			copy(ways[1:i+1], ways[:i])
			ways[0] = ln
			return true, wasPrefetched
		}
	}
	c.stats.Misses++
	return false, false
}

// MarkDirty sets the dirty bit on the block containing addr if present,
// without touching LRU order or hit/miss statistics. It models a writeback
// from the level above landing in this cache. It reports whether the block
// was present.
func (c *Cache) MarkDirty(addr uint64) bool {
	if c.cfg.Perfect {
		return true
	}
	set, tag := c.index(addr)
	ways := c.ways(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].dirty = true
			return true
		}
	}
	return false
}

// Victim describes a block evicted by Fill. Prefetched reports that the
// victim still carried its prefetched mark — it was filled by a prefetch
// and evicted without ever being demand-referenced.
type Victim struct {
	Addr       uint64
	Dirty      bool
	Prefetched bool
}

// Fill inserts the block containing addr. Demand fills insert at MRU;
// prefetch fills insert at the LRU position. It returns the evicted block,
// if any. Filling a block already present is a no-op (it can happen when a
// demand fill races a prefetch fill; the line keeps its current state).
func (c *Cache) Fill(addr uint64, prefetch, dirty bool) (v Victim, evicted bool) {
	v, evicted, _ = c.FillTracked(addr, prefetch, dirty)
	return v, evicted
}

// FillTracked is Fill with the no-op case made visible: filled is false
// when the block was already present and nothing changed. The attribution
// ledger needs the distinction (a no-op prefetch fill is the redundant
// class); callers that don't can keep using Fill.
func (c *Cache) FillTracked(addr uint64, prefetch, dirty bool) (v Victim, evicted, filled bool) {
	if c.cfg.Perfect {
		return Victim{}, false, false
	}
	set, tag := c.index(addr)
	ways := c.ways(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			if dirty {
				ways[i].dirty = true
			}
			return Victim{}, false, false
		}
	}
	if prefetch {
		c.stats.PrefetchFills++
	} else {
		c.stats.DemandFills++
	}
	// The victim is always the current LRU line.
	lru := len(ways) - 1
	old := ways[lru]
	if old.valid {
		evicted = true
		v = Victim{Addr: c.reconstruct(set, old.tag), Dirty: old.dirty, Prefetched: old.prefetched}
		if old.dirty {
			c.stats.Writebacks++
		}
		if old.prefetched {
			c.stats.UselessPrefetches++
		}
	}
	nl := line{valid: true, tag: tag, dirty: dirty, prefetched: prefetch}
	if prefetch && !c.cfg.PrefetchInsertMRU {
		// Insert at LRU: the new line replaces the old LRU in place, and
		// will itself be the next victim unless the CPU references it.
		ways[lru] = nl
	} else {
		copy(ways[1:], ways[:lru])
		ways[0] = nl
	}
	return v, evicted, true
}

// Invalidate drops the block containing addr if present, returning whether
// it was dirty. Used by tests and by writeback handling.
func (c *Cache) Invalidate(addr uint64) (wasDirty, wasPresent bool) {
	set, tag := c.index(addr)
	ways := c.ways(set)
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			wasDirty = ways[i].dirty
			if ways[i].prefetched {
				c.stats.UselessPrefetches++
			}
			// Compact toward MRU, leaving the hole at LRU.
			copy(ways[i:], ways[i+1:])
			ways[len(ways)-1] = line{}
			return wasDirty, true
		}
	}
	return false, false
}

func (c *Cache) reconstruct(_, tag uint64) uint64 {
	// index() keeps the set bits inside the tag (the tag is the full block
	// number), so the tag alone reconstructs the block address.
	return tag << c.blkShift
}

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.nsets }

// WaysOf returns the block addresses currently valid in addr's set, MRU
// first. Intended for tests and debugging.
func (c *Cache) WaysOf(addr uint64) []uint64 {
	set, _ := c.index(addr)
	var out []uint64
	for _, w := range c.ways(set) {
		if w.valid {
			out = append(out, c.reconstruct(set, w.tag))
		}
	}
	return out
}
