package cache

// MSHRFile models a set of miss status holding registers analytically:
// each slot records the cycle at which it becomes free. A request that
// finds all slots busy is delayed until the earliest slot frees, which is
// how MSHR pressure turns into added latency in the timing model. Requests
// to a block that already has an outstanding miss should be merged by the
// caller (they do not consume a new slot), matching real MSHR semantics.
type MSHRFile struct {
	freeAt []uint64
	peak   int
	// stolen slots are virtually occupied by fault-injection pressure:
	// Reserve refuses to hand them out, shrinking the effective file and
	// turning MSHR exhaustion into added latency sooner. Timing-only.
	stolen int
}

// NewMSHRFile returns a file with n slots. n == 0 means unlimited (used by
// perfect caches).
func NewMSHRFile(n int) *MSHRFile {
	return &MSHRFile{freeAt: make([]uint64, n)}
}

// Reserve finds the slot that frees earliest and returns the cycle at which
// the new miss can begin service (max of now and that slot's free time)
// along with the slot index to pass to Complete. With zero slots it returns
// now and index -1.
func (m *MSHRFile) Reserve(now uint64) (start uint64, idx int) {
	if len(m.freeAt) == 0 {
		return now, -1
	}
	best := m.stolen
	for i := best + 1; i < len(m.freeAt); i++ {
		if m.freeAt[i] < m.freeAt[best] {
			best = i
		}
	}
	if m.freeAt[best] > now {
		now = m.freeAt[best]
	}
	busy := 0
	for _, f := range m.freeAt {
		if f > now {
			busy++
		}
	}
	if busy+1 > m.peak {
		m.peak = busy + 1
	}
	return now, best
}

// Complete marks slot idx busy until done. Passing idx -1 is a no-op.
func (m *MSHRFile) Complete(idx int, done uint64) {
	if idx < 0 {
		return
	}
	m.freeAt[idx] = done
}

// Peak returns the maximum number of simultaneously busy slots observed.
func (m *MSHRFile) Peak() int { return m.peak }

// SetPressure virtually occupies n slots (fault injection). At least one
// slot always stays usable; an unlimited file (0 slots) ignores pressure.
func (m *MSHRFile) SetPressure(n int) {
	if len(m.freeAt) == 0 || n < 0 {
		n = 0
	}
	if n >= len(m.freeAt) && len(m.freeAt) > 0 {
		n = len(m.freeAt) - 1
	}
	m.stolen = n
}

// Pressure returns the number of slots currently stolen by fault pressure.
func (m *MSHRFile) Pressure() int { return m.stolen }

// BusyAt returns how many slots are still busy at cycle now; the telemetry
// sampler probes it for the MSHR-occupancy time series.
func (m *MSHRFile) BusyAt(now uint64) int {
	busy := 0
	for _, f := range m.freeAt {
		if f > now {
			busy++
		}
	}
	return busy
}

// Size returns the number of slots (0 = unlimited).
func (m *MSHRFile) Size() int { return len(m.freeAt) }
