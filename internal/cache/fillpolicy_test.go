package cache

import (
	"reflect"
	"testing"
)

// oneSet builds a 1-set, 4-way, 64-byte-block cache so every block aliases
// into the same set and the full MRU→LRU order is observable via WaysOf.
func oneSet(t *testing.T, prefetchMRU bool) *Cache {
	t.Helper()
	c, err := New(Config{
		Name: "l2", SizeBytes: 4 * 64, Assoc: 4, BlockBytes: 64,
		PrefetchInsertMRU: prefetchMRU,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// blk returns the address of the i-th distinct block (all in set 0).
func blk(i int) uint64 { return uint64(i) * 64 }

// TestFillPolicy pins the paper's L2 replacement interaction (Section 3.4):
// prefetch fills enter at LRU so useless prefetches are the next victims,
// demand hits promote to MRU, and demand fills never evict demand data
// that was just filled.
func TestFillPolicy(t *testing.T) {
	steps := func(c *Cache, ops ...func(c *Cache)) {
		for _, op := range ops {
			op(c)
		}
	}
	demandFill := func(a uint64) func(*Cache) {
		return func(c *Cache) { c.Fill(a, false, false) }
	}
	prefetchFill := func(a uint64) func(*Cache) {
		return func(c *Cache) { c.Fill(a, true, false) }
	}
	access := func(a uint64) func(*Cache) {
		return func(c *Cache) { c.Access(a, false) }
	}

	cases := []struct {
		name        string
		prefetchMRU bool
		run         []func(*Cache)
		want        []uint64 // WaysOf order, MRU first
	}{
		{
			name: "prefetch fills insert at LRU",
			run: []func(*Cache){
				demandFill(blk(1)), demandFill(blk(2)), prefetchFill(blk(3)),
			},
			// The prefetch sits behind both demand lines even though it is
			// the most recent fill.
			want: []uint64{blk(2), blk(1), blk(3)},
		},
		{
			name: "demand hit promotes to MRU",
			run: []func(*Cache){
				demandFill(blk(1)), demandFill(blk(2)), demandFill(blk(3)),
				access(blk(1)),
			},
			want: []uint64{blk(1), blk(3), blk(2)},
		},
		{
			name: "demand hit on prefetched line promotes it over demand data",
			run: []func(*Cache){
				demandFill(blk(1)), prefetchFill(blk(2)), access(blk(2)),
			},
			want: []uint64{blk(2), blk(1)},
		},
		{
			name: "demand fill evicts the prefetch, not older demand data",
			run: []func(*Cache){
				// Three demand lines plus one prefetch fill the set.
				demandFill(blk(1)), demandFill(blk(2)), demandFill(blk(3)),
				prefetchFill(blk(4)),
				// The next demand fill victimizes the prefetch — the newest
				// fill in the set — and every demand line survives.
				demandFill(blk(5)),
			},
			want: []uint64{blk(5), blk(3), blk(2), blk(1)},
		},
		{
			name: "full set of demand data evicts in strict LRU order",
			run: []func(*Cache){
				demandFill(blk(1)), demandFill(blk(2)), demandFill(blk(3)),
				demandFill(blk(4)), demandFill(blk(5)),
			},
			want: []uint64{blk(5), blk(4), blk(3), blk(2)},
		},
		{
			name:        "MRU-insertion ablation puts prefetches in front",
			prefetchMRU: true,
			run: []func(*Cache){
				demandFill(blk(1)), demandFill(blk(2)), prefetchFill(blk(3)),
			},
			want: []uint64{blk(3), blk(2), blk(1)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := oneSet(t, tc.prefetchMRU)
			steps(c, tc.run...)
			if got := c.WaysOf(0); !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("set order (MRU first) = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestFillPolicyStats pins the useless-prefetch accounting tied to LRU
// insertion: a prefetch evicted before any demand reference counts useless,
// one referenced first counts useful.
func TestFillPolicyStats(t *testing.T) {
	c := oneSet(t, false)
	c.Fill(blk(1), true, false) // prefetch, never referenced
	c.Fill(blk(2), false, false)
	c.Fill(blk(3), false, false)
	c.Fill(blk(4), false, false)
	c.Fill(blk(5), false, false) // evicts blk(1): useless
	if st := c.Stats(); st.UselessPrefetches != 1 || st.UsefulPrefetches != 0 {
		t.Fatalf("useless=%d useful=%d, want 1/0", st.UselessPrefetches, st.UsefulPrefetches)
	}

	c = oneSet(t, false)
	c.Fill(blk(1), true, false)
	c.Access(blk(1), false) // referenced: useful, loses prefetched mark
	c.Fill(blk(2), false, false)
	c.Fill(blk(3), false, false)
	c.Fill(blk(4), false, false)
	c.Fill(blk(5), false, false)
	if st := c.Stats(); st.UsefulPrefetches != 1 || st.UselessPrefetches != 0 {
		t.Fatalf("useful=%d useless=%d, want 1/0", st.UsefulPrefetches, st.UselessPrefetches)
	}
}
