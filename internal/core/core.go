// Package core is the public face of the GRP reproduction: it wires
// workloads, the compiler, the core model, the memory hierarchy and the
// prefetch engines into runnable configurations matching the paper's
// evaluated schemes, and exposes one driver per paper table and figure.
package core

import (
	"context"
	"fmt"

	"grp/internal/attrib"
	"grp/internal/cache"
	"grp/internal/compiler"
	"grp/internal/cpu"
	"grp/internal/dram"
	"grp/internal/faults"
	"grp/internal/isa"
	"grp/internal/mem"
	"grp/internal/metrics"
	"grp/internal/prefetch"
	"grp/internal/sim"
	"grp/internal/trace"
	"grp/internal/workloads"
)

// Scheme identifies one evaluated configuration.
type Scheme int

// The schemes of the paper's evaluation (Section 5).
const (
	// NoPrefetch is the baseline memory system.
	NoPrefetch Scheme = iota
	// PerfectL1 makes every L1 access hit (Figure 1's upper bound).
	PerfectL1
	// PerfectL2 makes every L2 access hit (the gap reference point).
	PerfectL2
	// StridePF is Sherwood-style predictor-directed stream buffers.
	StridePF
	// SRP is scheduled region prefetching without compiler hints.
	SRP
	// GRPFix is guided region prefetching with fixed 4 KB regions.
	GRPFix
	// GRPVar is guided region prefetching with variable-size regions.
	GRPVar
	// PointerOnly is the pure hardware pointer prefetcher (Figure 9).
	PointerOnly
	// SoftwarePF is classic Mowry-style software prefetching: the
	// compiler inserts PREF instructions ahead of spatial loads and no
	// hardware prefetcher runs. It is not one of the paper's evaluated
	// schemes (Section 2 explains why it cannot cover L2 latencies); it
	// is provided as the comparison foil and is not part of AllSchemes.
	SoftwarePF
	// GHB is a pure-hardware Global History Buffer prefetcher in the
	// PC/DC (per-PC index, delta correlation) organization — the modern
	// hardware baseline the paper's stride engine predates.
	GHB
	// GRPAdaptive is GRP/Var wrapped in a 5-state aggressiveness ladder:
	// region size, pointer fan-out, chase depth, and queue capacity adapt
	// each epoch to measured accuracy/coverage/lateness.
	GRPAdaptive
)

var schemeNames = map[Scheme]string{
	NoPrefetch: "base", PerfectL1: "perfectL1", PerfectL2: "perfectL2",
	StridePF: "stride", SRP: "srp", GRPFix: "grp/fix", GRPVar: "grp/var",
	PointerOnly: "ptr", SoftwarePF: "swpf", GHB: "ghb", GRPAdaptive: "grp-adaptive",
}

// String implements fmt.Stringer.
func (s Scheme) String() string {
	if n, ok := schemeNames[s]; ok {
		return n
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// SchemeByName resolves a scheme name as printed by String.
func SchemeByName(name string) (Scheme, error) {
	for s, n := range schemeNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("core: unknown scheme %q", name)
}

// AllSchemes lists every scheme in presentation order.
func AllSchemes() []Scheme {
	return []Scheme{NoPrefetch, PerfectL1, PerfectL2, StridePF, GHB, SRP, GRPFix, GRPVar, GRPAdaptive, PointerOnly}
}

// Options configures a run.
type Options struct {
	// Factor scales workload sizes (workloads.Test for unit tests,
	// workloads.Full for the paper tables).
	Factor workloads.Factor
	// Policy is the compiler's spatial-marking policy (Section 5.4).
	Policy compiler.Policy
	// Mem overrides the memory configuration; zero value uses the paper's.
	Mem *sim.MemConfig
	// CPU overrides the core configuration; zero value uses the paper's.
	CPU *cpu.Config
	// MaxInstrs overrides the workload's instruction budget when nonzero.
	MaxInstrs uint64
	// DisablePrioritizer runs prefetches at demand priority (ablation).
	DisablePrioritizer bool
	// PrefetchInsertMRU inserts prefetch fills at MRU instead of the
	// paper's LRU position (ablation).
	PrefetchInsertMRU bool
	// SRPFIFO issues prefetch regions oldest-first instead of the
	// hardware's LIFO scheduling (ablation; SRP scheme only).
	SRPFIFO bool
	// SRPRegionBlocks overrides the SRP region size in blocks when
	// nonzero (ablation; power of two ≤ 64).
	SRPRegionBlocks int
	// RecursionDepth overrides GRP's recursive chase depth when nonzero.
	RecursionDepth uint8
	// OpenPageFirst enables the paper's open-page-first prefetch issue
	// optimization (off by default, matching the main evaluation).
	OpenPageFirst bool
	// Metrics enables the telemetry layer: a per-run registry of
	// counters/gauges/latency histograms plus the cycle-driven sampler,
	// snapshotted into Result.Metrics after the run. Off by default; a
	// run without it pays no instrumentation cost.
	Metrics bool
	// SampleInterval is the sampler period in cycles when Metrics is set
	// (0 uses the sampler default of 4096).
	SampleInterval uint64
	// Timeline, when non-nil, receives per-event spans (demand misses,
	// prefetch lifetimes, DRAM bank activity) for Perfetto export.
	Timeline *trace.Timeline
	// Attrib attaches the prefetch lifecycle attribution ledger: every
	// issued prefetch is followed to a terminal outcome class and the
	// digest lands in Result.Attrib. Run fails if the ledger's
	// conservation invariant does not hold at drain. Ignored by the
	// legacy engine (Result.Attrib stays nil).
	Attrib bool
	// Faults, when non-nil and active, arms deterministic fault injection
	// across the hierarchy (see internal/faults). Faults perturb timing
	// only; Result.ArchDigest is identical to the fault-free run.
	Faults *faults.Plan
	// CheckInvariants turns on the periodic memory-system invariant
	// checker (every InvariantEvery accesses, default 4096, plus once at
	// drain). A violation aborts the run with a diagnostic dump.
	CheckInvariants bool
	// InvariantEvery is the checker period in accesses (0 = default).
	InvariantEvery uint64
	// Watchdog overrides the forward-progress watchdog thresholds; nil
	// uses the defaults. The watchdog is always armed.
	Watchdog *sim.WatchdogConfig
	// TamperPrefetchFill, when non-nil, is called with the functional
	// memory and the block address of every prefetch fill as it lands in
	// the L2. It exists solely so the conformance harness can model a
	// broken prefetch data path (a known-bad mutation its differential
	// check must catch). Never set outside tests; runs with it set bypass
	// the campaign result cache's semantics, so the cache key records it.
	TamperPrefetchFill func(m *mem.Memory, block uint64)
	// LegacyEngine runs the pre-overhaul hot path: sim.LegacyMemSystem
	// (container/heap arrival queue, map-backed in-flight table) and the
	// map-based CPU slot tables. It is cycle-identical to the default
	// engine by construction and exists only as the reference for the
	// golden snapshots, the conformance timing-equivalence mode, and the
	// hot-path speedup benchmark baseline.
	LegacyEngine bool
	// Cancel, when non-nil, is polled from the CPU commit loop (every few
	// thousand instructions); a non-nil return aborts the run with that
	// error. The campaign engine wires a context's Err here for per-cell
	// deadlines and graceful shutdown. Cancellation only ever stops a run
	// early — it cannot change a completed run's results — so it is
	// invisible to the campaign cache key.
	Cancel func() error
	// CoRun, when non-empty, runs the cell multi-core: the cell's bench
	// on core 0 and each listed workload on its own additional core, all
	// over one shared L2 and DRAM (see RunCoRun). The cell's Result is
	// core 0's per-core view with the cross-core context in Result.CoRun.
	// Part of the campaign cache key (spec axis "corun").
	CoRun []string
}

// Validate checks the run options: any overridden CPU, cache, or DRAM
// configuration and the fault plan must be internally consistent. Run
// calls it; drivers may call it earlier for friendlier errors.
func (o *Options) Validate() error {
	if o.CPU != nil {
		if err := o.CPU.Validate(); err != nil {
			return err
		}
	}
	if o.Mem != nil {
		if err := o.Mem.L1.Validate(); err != nil {
			return err
		}
		if err := o.Mem.L2.Validate(); err != nil {
			return err
		}
		if err := o.Mem.DRAM.Validate(); err != nil {
			return err
		}
	}
	if o.Faults != nil {
		if err := o.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Result captures everything measured in one run.
type Result struct {
	Bench  string
	Scheme Scheme

	CPU  cpu.Result
	L1   cache.Stats
	L2   cache.Stats
	Mem  sim.MemStats
	Dram dram.Stats
	PF   prefetch.Stats

	// TrafficBytes is total memory traffic (demand + prefetch +
	// writeback transfers).
	TrafficBytes uint64
	// Hints is the static hint census of the compiled binary (Table 3).
	Hints isa.HintCounts
	// Metrics is the end-of-run telemetry snapshot (nil unless
	// Options.Metrics was set).
	Metrics *metrics.Snapshot
	// ArchDigest fingerprints the run's architectural results: final
	// registers, functional memory contents, and timing-independent
	// instruction counts. Prefetching is purely speculative, so the
	// digest must not vary across schemes' timing behavior under fault
	// injection — the metamorphic property the fault harness checks.
	ArchDigest uint64
	// MemDigest is the raw functional memory digest (mem.Digest) after
	// the run. Unlike ArchDigest it involves no registers or counters, so
	// it is directly comparable with an interpreter run over the same
	// placed-and-initialized memory — the conformance oracle check.
	MemDigest uint64
	// FaultCounts reports injected faults (zero without a fault plan).
	FaultCounts faults.Counts
	// Attrib is the prefetch lifecycle attribution digest (nil unless
	// Options.Attrib was set on the current engine).
	Attrib *attrib.Summary `json:",omitempty"`
	// CoRun is the cross-core context of a co-run cell (nil on solo runs).
	CoRun *CoRunInfo `json:",omitempty"`
}

// IPC returns committed instructions per cycle.
func (r *Result) IPC() float64 { return r.CPU.IPC() }

// Accuracy returns the fraction (percent) of issued prefetches that were
// demand-referenced, counting late (in-flight) references as useful, as
// the paper's Table 5 accuracy metric does.
func (r *Result) Accuracy() float64 { return accuracy(r.L2, r.Mem) }

// memSystem is the surface Run drives, satisfied by both engine
// generations (*sim.MemSystem and *sim.LegacyMemSystem), so the
// LegacyEngine option swaps the whole hot path without duplicating the
// run wiring.
type memSystem interface {
	cpu.MemoryTiming
	SetPrioritizer(on bool)
	SetFaults(inj *faults.Injector)
	SetWatchdog(cfg sim.WatchdogConfig) *sim.Watchdog
	EnableInvariantChecks(every uint64)
	SetFillTamper(fn func(block uint64))
	AttachTelemetry(reg *metrics.Registry, smp *metrics.Sampler, tl *trace.Timeline)
	AttachLedger(l *attrib.Ledger)
	Drain()
	Stats() sim.MemStats
	FaultCounts() faults.Counts
	Hierarchy() (l1, l2 *cache.Cache, dc *dram.Controller)
}

// Run simulates one benchmark under one scheme.
func Run(spec *workloads.Spec, scheme Scheme, opt Options) (*Result, error) {
	if err := opt.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(opt.CoRun) > 0 {
		return runCoRunCell(spec, scheme, opt)
	}
	built := spec.Build(opt.Factor)
	m := mem.New()

	var cgOpts compiler.CodegenOptions
	if scheme == SoftwarePF {
		cgOpts.SoftwarePrefetch = true
	}
	prog, layout, _, err := compiler.CompileWorkloadOpts(built.Prog, m, opt.Policy, cgOpts)
	if err != nil {
		return nil, fmt.Errorf("core: compiling %s: %w", spec.Name, err)
	}
	built.Init(m, layout)

	memCfg := sim.DefaultMemConfig()
	if opt.Mem != nil {
		memCfg = *opt.Mem
	}
	switch scheme {
	case PerfectL1:
		memCfg.L1.Perfect = true
	case PerfectL2:
		memCfg.L2.Perfect = true
	}
	if opt.PrefetchInsertMRU {
		memCfg.L2.PrefetchInsertMRU = true
	}
	if opt.OpenPageFirst {
		memCfg.OpenPageFirst = true
	}

	engine := engineFor(scheme, spec, m, opt)
	var ms memSystem
	if opt.LegacyEngine {
		lms, lerr := sim.NewLegacyMemSystem(memCfg, engine)
		ms, err = lms, lerr
	} else {
		nms, nerr := sim.NewMemSystem(memCfg, engine)
		ms, err = nms, nerr
	}
	if err != nil {
		return nil, fmt.Errorf("core: building memory system: %w", err)
	}
	if opt.DisablePrioritizer {
		ms.SetPrioritizer(false)
	}
	// Faults are armed before telemetry so the sinks observe the wrapped
	// engine; the watchdog is always on (its defaults never fire on a
	// healthy run).
	if opt.Faults.Active() {
		ms.SetFaults(faults.NewInjector(opt.Faults))
	}
	wdCfg := sim.WatchdogConfig{}
	if opt.Watchdog != nil {
		wdCfg = *opt.Watchdog
	}
	ms.SetWatchdog(wdCfg)
	if opt.CheckInvariants {
		ms.EnableInvariantChecks(opt.InvariantEvery)
	}
	if opt.TamperPrefetchFill != nil {
		ms.SetFillTamper(func(block uint64) { opt.TamperPrefetchFill(m, block) })
	}

	var reg *metrics.Registry
	var smp *metrics.Sampler
	if opt.Metrics {
		reg = metrics.NewRegistry()
		smp = metrics.NewSampler(opt.SampleInterval)
	}
	if reg != nil || opt.Timeline != nil {
		ms.AttachTelemetry(reg, smp, opt.Timeline)
	}
	var ledger *attrib.Ledger
	if opt.Attrib && !opt.LegacyEngine {
		ledger = attrib.NewLedger()
		ms.AttachLedger(ledger)
	}

	cpuCfg := cpu.Default()
	if opt.CPU != nil {
		cpuCfg = *opt.CPU
	}
	cpuCfg.LegacyScheduler = opt.LegacyEngine
	cpuCfg.MaxInstrs = built.MaxInstrs
	if opt.MaxInstrs != 0 {
		cpuCfg.MaxInstrs = opt.MaxInstrs
	}
	cpuCfg.Cancel = opt.Cancel

	c, err := cpu.New(cpuCfg, m, ms)
	if err != nil {
		return nil, fmt.Errorf("core: building core: %w", err)
	}
	if reg != nil {
		c.RegisterMetrics(reg)
		// IPC joins the sampler's series; the probes fire from inside the
		// memory system, so they see the core's live commit progress.
		smp.Watch("cpu.ipc", func() float64 {
			i, cy := c.Progress()
			if cy == 0 {
				return 0
			}
			return float64(i) / float64(cy)
		})
	}
	// Watchdog and invariant aborts surface from deep inside the timing
	// pump as typed panics; convert them back into errors here.
	cres, err := func() (r cpu.Result, err error) {
		defer sim.RecoverAbort(&err)
		r, err = c.Run(prog)
		if err == nil {
			ms.Drain()
		}
		return r, err
	}()
	if err != nil {
		return nil, fmt.Errorf("core: running %s/%s: %w", spec.Name, scheme, err)
	}

	var snap *metrics.Snapshot
	if reg != nil {
		snap = metrics.Snap(reg, smp)
	}

	var attribSummary *attrib.Summary
	if ledger != nil {
		ledger.Finalize()
		if cerr := ledger.CheckConservation(); cerr != nil {
			return nil, fmt.Errorf("core: running %s/%s: %w", spec.Name, scheme, cerr)
		}
		attribSummary = ledger.Summarize()
		// The memory system is done with it (the run drained above), so
		// hand the slab and tables to the next cell.
		ms.AttachLedger(nil)
		ledger.Recycle()
	}

	md := m.Digest()
	l1, l2, dc := ms.Hierarchy()
	return &Result{
		Bench:        spec.Name,
		Scheme:       scheme,
		CPU:          cres,
		L1:           l1.Stats(),
		L2:           l2.Stats(),
		Mem:          ms.Stats(),
		Dram:         dc.Stats(),
		PF:           engine.Stats(),
		TrafficBytes: dc.TrafficBytes(),
		Hints:        prog.CountHints(),
		Metrics:      snap,
		ArchDigest:   archDigest(c, cres, md),
		MemDigest:    md,
		FaultCounts:  ms.FaultCounts(),
		Attrib:       attribSummary,
	}, nil
}

// archDigest fingerprints the architectural outcome of a run: the final
// register file, the functional memory digest, and the timing-independent
// instruction counts. Cycle counts and cache/DRAM statistics are
// deliberately excluded — they are exactly what faults may perturb.
func archDigest(c *cpu.Core, cres cpu.Result, memDigest uint64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, r := range c.Regs() {
		mix(r)
	}
	mix(memDigest)
	mix(cres.Instrs)
	mix(cres.Loads)
	mix(cres.Stores)
	mix(cres.Branches)
	mix(cres.Mispredicts)
	if cres.Halted {
		mix(1)
	} else {
		mix(0)
	}
	return h
}

func engineFor(scheme Scheme, spec *workloads.Spec, m *mem.Memory, opt Options) prefetch.Engine {
	switch scheme {
	case StridePF:
		return prefetch.NewStride(prefetch.DefaultStrideConfig())
	case SRP:
		e := prefetch.NewSRP()
		e.FIFO = opt.SRPFIFO
		if opt.SRPRegionBlocks != 0 {
			e.RegionBlocks = opt.SRPRegionBlocks
		}
		return e
	case GRPFix, GRPVar:
		cfg := prefetch.DefaultGRPConfig()
		cfg.Variable = scheme == GRPVar
		cfg.RecursionDepth = grpDepth(spec, opt)
		return prefetch.NewGRP(cfg, m)
	case GRPAdaptive:
		cfg := prefetch.DefaultGRPConfig()
		cfg.RecursionDepth = grpDepth(spec, opt)
		return prefetch.NewAdaptiveGRP(cfg, m)
	case GHB:
		return prefetch.NewGHB(prefetch.DefaultGHBConfig())
	case PointerOnly:
		return prefetch.NewPointerOnly(m, grpDepth(spec, opt))
	default:
		return prefetch.NewNull()
	}
}

// grpDepth returns the recursive chase depth: the paper uses 6, except 3
// for mcf "to make simulation tractable" (footnote 2).
func grpDepth(spec *workloads.Spec, opt Options) uint8 {
	if opt.RecursionDepth != 0 {
		return opt.RecursionDepth
	}
	if spec.Name == "mcf" {
		return 3
	}
	return 6
}

// Suite holds results for a set of benchmarks across schemes, shared by
// the per-table experiment drivers so each (bench, scheme) pair simulates
// once.
type Suite struct {
	Opt     Options
	Benches []string
	results map[string]map[Scheme]*Result
}

// Cell identifies one (bench, scheme) simulation of a suite grid.
type Cell struct {
	Bench  string
	Scheme Scheme
}

// SuiteCells enumerates the bench × scheme grid in canonical order:
// benches outer (presentation order), schemes inner. Every suite reducer
// consumes results in exactly this order, which is what lets a parallel
// runner produce output byte-identical to the serial path.
func SuiteCells(benches []string, schemes []Scheme) []Cell {
	cells := make([]Cell, 0, len(benches)*len(schemes))
	for _, b := range benches {
		for _, sc := range schemes {
			cells = append(cells, Cell{Bench: b, Scheme: sc})
		}
	}
	return cells
}

// CellRunner executes a suite grid under shared options and returns
// results positionally: results[i] belongs to cells[i]. RunCells is the
// serial reference implementation; internal/campaign provides the
// parallel, cached one. A cancelled ctx stops the grid between cells
// (and, via Options.Cancel, inside one).
type CellRunner func(ctx context.Context, cells []Cell, opt Options) ([]*Result, error)

// RunCells is the serial CellRunner: it simulates each cell in order.
func RunCells(ctx context.Context, cells []Cell, opt Options) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil && opt.Cancel == nil {
		opt.Cancel = ctx.Err
	}
	out := make([]*Result, len(cells))
	for i, c := range cells {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		spec, err := workloads.ByName(c.Bench)
		if err != nil {
			return nil, err
		}
		r, err := Run(spec, c.Scheme, opt)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// NewSuite returns an empty suite shell for the given benches; runners
// fill it with Put.
func NewSuite(benches []string, opt Options) *Suite {
	return &Suite{Opt: opt, Benches: benches, results: map[string]map[Scheme]*Result{}}
}

// Put stores a result under its (bench, scheme) cell.
func (s *Suite) Put(r *Result) {
	m := s.results[r.Bench]
	if m == nil {
		m = map[Scheme]*Result{}
		s.results[r.Bench] = m
	}
	m[r.Scheme] = r
}

// RunSuiteWith simulates the grid through the given runner and reduces
// the results in canonical cell order — the single ordering code path
// shared by the serial and campaign-engine suite paths. A nil benches
// runs every workload; a nil schemes runs all of them.
func RunSuiteWith(ctx context.Context, benches []string, schemes []Scheme, opt Options, run CellRunner) (*Suite, error) {
	if benches == nil {
		benches = workloads.Names()
	}
	if schemes == nil {
		schemes = AllSchemes()
	}
	cells := SuiteCells(benches, schemes)
	rs, err := run(ctx, cells, opt)
	if err != nil {
		return nil, err
	}
	if len(rs) != len(cells) {
		return nil, fmt.Errorf("core: runner returned %d results for %d cells", len(rs), len(cells))
	}
	s := NewSuite(benches, opt)
	for i, c := range cells {
		if rs[i] == nil {
			return nil, fmt.Errorf("core: runner returned no result for %s/%s", c.Bench, c.Scheme)
		}
		s.Put(rs[i])
	}
	return s, nil
}

// RunSuite simulates the given benchmarks under the given schemes through
// the serial reference runner.
func RunSuite(benches []string, schemes []Scheme, opt Options) (*Suite, error) {
	return RunSuiteWith(context.Background(), benches, schemes, opt, RunCells)
}

// Get returns the result for (bench, scheme), or nil if it was not run.
func (s *Suite) Get(bench string, sc Scheme) *Result {
	m := s.results[bench]
	if m == nil {
		return nil
	}
	return m[sc]
}

// Included reports whether the benchmark participates in timing results
// (crafty is excluded, matching the paper's Section 5.1).
func Included(bench string) bool {
	sp, err := workloads.ByName(bench)
	return err == nil && !sp.Exclude
}

// TimedBenches filters s.Benches to those included in timing results.
func (s *Suite) TimedBenches() []string {
	var out []string
	for _, b := range s.Benches {
		if Included(b) {
			out = append(out, b)
		}
	}
	return out
}
