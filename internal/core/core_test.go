package core

import (
	"testing"

	"grp/internal/workloads"
)

// TestAllWorkloadsRunAllSchemes is the pipeline smoke test: every workload
// must compile, initialize, and simulate to completion under every scheme.
func TestAllWorkloadsRunAllSchemes(t *testing.T) {
	opt := Options{Factor: workloads.Test}
	for _, spec := range workloads.All() {
		for _, sc := range AllSchemes() {
			r, err := Run(spec, sc, opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", spec.Name, sc, err)
			}
			if r.CPU.Instrs == 0 || r.CPU.Cycles == 0 {
				t.Errorf("%s/%s: empty result %+v", spec.Name, sc, r.CPU)
			}
		}
	}
}

// TestSchemeOrdering checks the paper's headline ordering on a streaming
// workload: perfectL2 >= SRP/GRP > base, and SRP traffic >= GRP traffic.
func TestSchemeOrdering(t *testing.T) {
	opt := Options{Factor: workloads.Test}
	spec, err := workloads.ByName("wupwise")
	if err != nil {
		t.Fatal(err)
	}
	get := func(sc Scheme) *Result {
		r, err := Run(spec, sc, opt)
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		return r
	}
	base := get(NoPrefetch)
	perf := get(PerfectL2)
	srp := get(SRP)
	grp := get(GRPVar)
	t.Logf("base=%d perf=%d srp=%d grp=%d cycles", base.CPU.Cycles, perf.CPU.Cycles, srp.CPU.Cycles, grp.CPU.Cycles)
	t.Logf("traffic base=%d srp=%d grp=%d", base.TrafficBytes, srp.TrafficBytes, grp.TrafficBytes)
	t.Logf("grp hints: %+v", grp.Hints)
	if perf.CPU.Cycles >= base.CPU.Cycles {
		t.Errorf("perfect L2 (%d) not faster than base (%d)", perf.CPU.Cycles, base.CPU.Cycles)
	}
	if srp.CPU.Cycles >= base.CPU.Cycles {
		t.Errorf("SRP (%d) not faster than base (%d)", srp.CPU.Cycles, base.CPU.Cycles)
	}
	if grp.CPU.Cycles >= base.CPU.Cycles {
		t.Errorf("GRP (%d) not faster than base (%d)", grp.CPU.Cycles, base.CPU.Cycles)
	}
	if grp.Hints.Spatial == 0 {
		t.Errorf("wupwise should have spatial hints, got %+v", grp.Hints)
	}
}
