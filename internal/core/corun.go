// Co-run mode: N cores, each running its own workload, over one shared
// L2 and DRAM (sim.CoRunSystem). Surfaced two ways: RunCoRun for the
// multi-result driver (grpsim -corun), and Options.CoRun for the
// campaign grid, where a cell's result is core 0's view of the co-run
// with the cross-core context attached.
package core

import (
	"fmt"

	"grp/internal/attrib"
	"grp/internal/compiler"
	"grp/internal/cpu"
	"grp/internal/isa"
	"grp/internal/mem"
	"grp/internal/prefetch"
	"grp/internal/sim"
	"grp/internal/workloads"
)

// CoRunInfo is the cross-core context attached to each per-core Result
// of a co-run.
type CoRunInfo struct {
	// NCores is the co-run width; Core is this result's core id.
	NCores int `json:"n_cores"`
	Core   int `json:"core"`
	// Benches lists every core's workload, indexed by core id.
	Benches []string `json:"benches"`
	// AggTrafficBytes is total traffic on the shared DRAM across all
	// cores (each Result.TrafficBytes also reports this shared total;
	// per-core traffic is not separable at the controller).
	AggTrafficBytes uint64 `json:"agg_traffic_bytes"`
	// PollutionCaused counts this core's prefetch fills that evicted
	// another core's valid demand-resident line from the shared L2;
	// PollutionSuffered counts this core's lines so evicted.
	PollutionCaused   uint64 `json:"pollution_caused"`
	PollutionSuffered uint64 `json:"pollution_suffered"`
}

// CoRunResult is the outcome of one co-run: one Result per core (same
// scheme everywhere, workloads per Benches order) plus the aggregates.
type CoRunResult struct {
	// Results holds core i's view at index i. Shared-resource fields
	// (L2, Dram, TrafficBytes) are the shared totals in every entry;
	// L1, Mem, CPU, PF and Attrib are genuinely per-core.
	Results []*Result
	// AggTrafficBytes is the shared controller's total traffic.
	AggTrafficBytes uint64
	// SoloCycles/Slowdown are filled by ComputeSlowdowns: core i's solo
	// cycle count under the same scheme and options, and its co-run
	// slowdown factor corunCycles/soloCycles.
	SoloCycles []uint64
	Slowdown   []float64
}

// validateCoRun rejects option combinations the co-run engine does not
// support. Fault injection, telemetry, timelines, the legacy engine and
// the fill tamper hook are all single-core instruments; everything else
// (ablations, attribution, invariant checking, watchdog, cancellation)
// carries over.
func validateCoRun(opt Options) error {
	switch {
	case opt.Faults.Active():
		return fmt.Errorf("core: co-run does not support fault injection")
	case opt.Metrics:
		return fmt.Errorf("core: co-run does not support the telemetry layer")
	case opt.Timeline != nil:
		return fmt.Errorf("core: co-run does not support timeline capture")
	case opt.LegacyEngine:
		return fmt.Errorf("core: co-run does not support the legacy engine")
	case opt.TamperPrefetchFill != nil:
		return fmt.Errorf("core: co-run does not support the fill tamper hook")
	}
	return nil
}

// RunCoRun simulates len(benches) cores, each running one benchmark
// under the given scheme, over a shared L2 and DRAM. Each core keeps a
// private functional memory, compiled program, L1, prefetch engine, L2
// MSHR partition and prefetch budget; contention happens at the shared
// L2 capacity and DRAM channels. Threads interleave deterministically —
// each step commits one instruction on the core whose last commit is
// furthest behind (ties to the lower core id) — so a co-run is exactly
// reproducible at any host parallelism. With one benchmark the run is
// cycle-identical to Run (the conformance equivalence battery holds the
// two engines to that).
func RunCoRun(benches []string, scheme Scheme, opt Options) (*CoRunResult, error) {
	specs := make([]*workloads.Spec, len(benches))
	for i, bench := range benches {
		spec, err := workloads.ByName(bench)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	return RunCoRunSpecs(specs, scheme, opt)
}

// RunCoRunSpecs is RunCoRun over already-resolved workload specs — the
// entry point for synthetic workloads (the conformance harness's
// generated programs) that are not in the registry.
func RunCoRunSpecs(specs []*workloads.Spec, scheme Scheme, opt Options) (*CoRunResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: co-run needs at least one workload")
	}
	if err := opt.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := validateCoRun(opt); err != nil {
		return nil, err
	}
	n := len(specs)
	benches := make([]string, n)
	for i, spec := range specs {
		benches[i] = spec.Name
	}

	type coreState struct {
		spec   *workloads.Spec
		m      *mem.Memory
		prog   *isa.Program
		engine prefetch.Engine
		ledger *attrib.Ledger
		core   *cpu.Core
		thread *cpu.Thread

		maxInstrs uint64
	}
	states := make([]*coreState, n)
	engines := make([]prefetch.Engine, n)
	for i, spec := range specs {
		st := &coreState{spec: spec, m: mem.New()}
		built := spec.Build(opt.Factor)
		var cgOpts compiler.CodegenOptions
		if scheme == SoftwarePF {
			cgOpts.SoftwarePrefetch = true
		}
		prog, layout, _, err := compiler.CompileWorkloadOpts(built.Prog, st.m, opt.Policy, cgOpts)
		if err != nil {
			return nil, fmt.Errorf("core: compiling %s: %w", spec.Name, err)
		}
		built.Init(st.m, layout)
		st.prog = prog
		st.engine = engineFor(scheme, spec, st.m, opt)
		st.maxInstrs = built.MaxInstrs
		states[i], engines[i] = st, st.engine
	}

	memCfg := sim.DefaultMemConfig()
	if opt.Mem != nil {
		memCfg = *opt.Mem
	}
	switch scheme {
	case PerfectL1:
		memCfg.L1.Perfect = true
	case PerfectL2:
		memCfg.L2.Perfect = true
	}
	if opt.PrefetchInsertMRU {
		memCfg.L2.PrefetchInsertMRU = true
	}
	if opt.OpenPageFirst {
		memCfg.OpenPageFirst = true
	}

	cs, err := sim.NewCoRunSystem(memCfg, engines)
	if err != nil {
		return nil, fmt.Errorf("core: building co-run system: %w", err)
	}
	if opt.DisablePrioritizer {
		cs.SetPrioritizer(false)
	}
	wdCfg := sim.WatchdogConfig{}
	if opt.Watchdog != nil {
		wdCfg = *opt.Watchdog
	}
	cs.SetWatchdog(wdCfg)
	if opt.CheckInvariants {
		cs.EnableInvariantChecks(opt.InvariantEvery)
	}

	for i, st := range states {
		port := cs.Port(i)
		if opt.Attrib {
			st.ledger = attrib.NewLedger()
			port.AttachLedger(st.ledger)
		}
		cpuCfg := cpu.Default()
		if opt.CPU != nil {
			cpuCfg = *opt.CPU
		}
		cpuCfg.MaxInstrs = st.maxInstrs
		if opt.MaxInstrs != 0 {
			cpuCfg.MaxInstrs = opt.MaxInstrs
		}
		cpuCfg.Cancel = opt.Cancel
		c, err := cpu.New(cpuCfg, st.m, port)
		if err != nil {
			return nil, fmt.Errorf("core: building core %d: %w", i, err)
		}
		st.core = c
	}

	// Watchdog and invariant aborts surface as typed panics from inside
	// the shared pump; convert them back into errors, as Run does.
	err = func() (err error) {
		defer sim.RecoverAbort(&err)
		for i, st := range states {
			t, serr := st.core.Start(st.prog)
			if serr != nil {
				return fmt.Errorf("starting core %d: %w", i, serr)
			}
			st.thread = t
		}
		// Deterministic interleave: always step the unfinished core whose
		// last committed instruction is furthest behind in cycles (lower
		// core id on ties). Cross-core submission-time jitter from the
		// commit granularity is absorbed by the shared pump's monotonic
		// clamp.
		for {
			best := -1
			for i, st := range states {
				if st.thread.Done() {
					continue
				}
				if best < 0 || st.thread.LastCommitCycle() < states[best].thread.LastCommitCycle() {
					best = i
				}
			}
			if best < 0 {
				break
			}
			if serr := states[best].thread.Step(); serr != nil {
				return fmt.Errorf("core %d (%s): %w", best, states[best].spec.Name, serr)
			}
		}
		cs.Drain()
		return nil
	}()
	if err != nil {
		return nil, fmt.Errorf("core: co-running %v/%s: %w", benches, scheme, err)
	}

	out := &CoRunResult{
		Results:         make([]*Result, n),
		AggTrafficBytes: cs.Dram.TrafficBytes(),
	}
	for i, st := range states {
		port := cs.Port(i)
		var attribSummary *attrib.Summary
		if st.ledger != nil {
			st.ledger.Finalize()
			if cerr := st.ledger.CheckConservation(); cerr != nil {
				return nil, fmt.Errorf("core: co-running %v/%s: core %d: %w", benches, scheme, i, cerr)
			}
			attribSummary = st.ledger.Summarize()
			port.AttachLedger(nil)
			st.ledger.Recycle()
		}
		cres := st.thread.Result()
		md := st.m.Digest()
		caused, suffered := port.Pollution()
		out.Results[i] = &Result{
			Bench:        st.spec.Name,
			Scheme:       scheme,
			CPU:          cres,
			L1:           port.L1.Stats(),
			L2:           cs.L2.Stats(),
			Mem:          port.Stats(),
			Dram:         cs.Dram.Stats(),
			PF:           st.engine.Stats(),
			TrafficBytes: cs.Dram.TrafficBytes(),
			Hints:        st.prog.CountHints(),
			ArchDigest:   archDigest(st.core, cres, md),
			MemDigest:    md,
			Attrib:       attribSummary,
			CoRun: &CoRunInfo{
				NCores: n, Core: i,
				Benches:           append([]string(nil), benches...),
				AggTrafficBytes:   cs.Dram.TrafficBytes(),
				PollutionCaused:   caused,
				PollutionSuffered: suffered,
			},
		}
	}
	return out, nil
}

// ComputeSlowdowns runs each co-run workload solo under the same scheme
// and options and fills SoloCycles and Slowdown (co-run cycles over solo
// cycles, per core). Solo runs are full simulations; drivers that only
// need the co-run itself skip this.
func (cr *CoRunResult) ComputeSlowdowns(opt Options) error {
	opt.CoRun = nil
	cr.SoloCycles = make([]uint64, len(cr.Results))
	cr.Slowdown = make([]float64, len(cr.Results))
	for i, r := range cr.Results {
		spec, err := workloads.ByName(r.Bench)
		if err != nil {
			return err
		}
		solo, err := Run(spec, r.Scheme, opt)
		if err != nil {
			return fmt.Errorf("core: solo reference for %s: %w", r.Bench, err)
		}
		cr.SoloCycles[i] = solo.CPU.Cycles
		if solo.CPU.Cycles > 0 {
			cr.Slowdown[i] = float64(r.CPU.Cycles) / float64(solo.CPU.Cycles)
		}
	}
	return nil
}

// runCoRunCell is Run's co-run delegation: the cell's bench takes core
// 0, Options.CoRun fills cores 1..N-1, and the cell's result is core 0's
// per-core view (CoRunInfo attached).
func runCoRunCell(spec *workloads.Spec, scheme Scheme, opt Options) (*Result, error) {
	benches := append([]string{spec.Name}, opt.CoRun...)
	sub := opt
	sub.CoRun = nil
	cr, err := RunCoRun(benches, scheme, sub)
	if err != nil {
		return nil, err
	}
	return cr.Results[0], nil
}
