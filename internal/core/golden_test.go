package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"grp/internal/workloads"
)

// The golden-snapshot suite is the simulator's timing-regression net: it
// pins the exact architectural digests, cycle counts, and key memory
// statistics of every kernel × scheme cell at Test factor. Any engineering
// change to the hot path — queue structure, lookup tables, event skipping
// — must reproduce these numbers byte-identically; a legitimate timing-
// semantics change must regenerate them (go test ./internal/core -run
// TestGoldenSnapshots -update) and justify the diff in review.

var updateGolden = flag.Bool("update", false, "regenerate golden snapshot testdata")

// goldenOptions returns the run options for golden cells. With
// GRP_GOLDEN_ENGINE=legacy the cells run on the retained pre-overhaul
// engine: regenerating with it and verifying without it proves the two
// engines byte-identical over the whole grid (the committed snapshots
// were produced that way).
func goldenOptions() Options {
	opt := Options{Factor: workloads.Test}
	if os.Getenv("GRP_GOLDEN_ENGINE") == "legacy" {
		opt.LegacyEngine = true
	}
	return opt
}

// goldenSchemes is the snapshot grid's scheme axis: the realistic schemes
// whose timing the paper's tables compare (perfect caches are covered by
// the cycle-bound checks in internal/conformance instead).
func goldenSchemes() []Scheme {
	return []Scheme{NoPrefetch, StridePF, GHB, SRP, GRPFix, GRPVar, GRPAdaptive}
}

// goldenSnapshot is one committed cell snapshot. Digests are hex strings
// so diffs in testdata are greppable.
type goldenSnapshot struct {
	Bench  string `json:"bench"`
	Scheme string `json:"scheme"`

	ArchDigest string `json:"arch_digest"`
	MemDigest  string `json:"mem_digest"`

	Cycles      uint64 `json:"cycles"`
	Instrs      uint64 `json:"instrs"`
	Mispredicts uint64 `json:"mispredicts"`

	Loads            uint64 `json:"loads"`
	Stores           uint64 `json:"stores"`
	InflightMerges   uint64 `json:"inflight_merges"`
	PrefetchLates    uint64 `json:"prefetch_lates"`
	PrefetchesIssued uint64 `json:"prefetches_issued"`
	PrioritizerHolds uint64 `json:"prioritizer_holds"`

	L1Hits          uint64 `json:"l1_hits"`
	L1Misses        uint64 `json:"l1_misses"`
	L2Hits          uint64 `json:"l2_hits"`
	L2Misses        uint64 `json:"l2_misses"`
	L2PrefetchFills uint64 `json:"l2_prefetch_fills"`
	L2Useful        uint64 `json:"l2_useful_prefetches"`
	L2Useless       uint64 `json:"l2_useless_prefetches"`

	DramRowHits   uint64 `json:"dram_row_hits"`
	DramRowMisses uint64 `json:"dram_row_misses"`
	TrafficBytes  uint64 `json:"traffic_bytes"`
}

func snapshotOf(r *Result) goldenSnapshot {
	return goldenSnapshot{
		Bench:  r.Bench,
		Scheme: r.Scheme.String(),

		ArchDigest: fmt.Sprintf("%016x", r.ArchDigest),
		MemDigest:  fmt.Sprintf("%016x", r.MemDigest),

		Cycles:      r.CPU.Cycles,
		Instrs:      r.CPU.Instrs,
		Mispredicts: r.CPU.Mispredicts,

		Loads:            r.Mem.Loads,
		Stores:           r.Mem.Stores,
		InflightMerges:   r.Mem.InflightMerges,
		PrefetchLates:    r.Mem.PrefetchLates,
		PrefetchesIssued: r.Mem.PrefetchesIssued,
		PrioritizerHolds: r.Mem.PrioritizerHolds,

		L1Hits:          r.L1.Hits,
		L1Misses:        r.L1.Misses,
		L2Hits:          r.L2.Hits,
		L2Misses:        r.L2.Misses,
		L2PrefetchFills: r.L2.PrefetchFills,
		L2Useful:        r.L2.UsefulPrefetches,
		L2Useless:       r.L2.UselessPrefetches,

		DramRowHits:   r.Dram.RowHits,
		DramRowMisses: r.Dram.RowMisses,
		TrafficBytes:  r.TrafficBytes,
	}
}

// diffFields returns the names of fields that differ, in declaration
// order, each with got/want values — the first entry is the first
// divergent field.
func diffFields(got, want goldenSnapshot) []string {
	var out []string
	add := func(name string, g, w interface{}) {
		if g != w {
			out = append(out, fmt.Sprintf("%s: got %v, want %v", name, g, w))
		}
	}
	add("bench", got.Bench, want.Bench)
	add("scheme", got.Scheme, want.Scheme)
	add("arch_digest", got.ArchDigest, want.ArchDigest)
	add("mem_digest", got.MemDigest, want.MemDigest)
	add("cycles", got.Cycles, want.Cycles)
	add("instrs", got.Instrs, want.Instrs)
	add("mispredicts", got.Mispredicts, want.Mispredicts)
	add("loads", got.Loads, want.Loads)
	add("stores", got.Stores, want.Stores)
	add("inflight_merges", got.InflightMerges, want.InflightMerges)
	add("prefetch_lates", got.PrefetchLates, want.PrefetchLates)
	add("prefetches_issued", got.PrefetchesIssued, want.PrefetchesIssued)
	add("prioritizer_holds", got.PrioritizerHolds, want.PrioritizerHolds)
	add("l1_hits", got.L1Hits, want.L1Hits)
	add("l1_misses", got.L1Misses, want.L1Misses)
	add("l2_hits", got.L2Hits, want.L2Hits)
	add("l2_misses", got.L2Misses, want.L2Misses)
	add("l2_prefetch_fills", got.L2PrefetchFills, want.L2PrefetchFills)
	add("l2_useful_prefetches", got.L2Useful, want.L2Useful)
	add("l2_useless_prefetches", got.L2Useless, want.L2Useless)
	add("dram_row_hits", got.DramRowHits, want.DramRowHits)
	add("dram_row_misses", got.DramRowMisses, want.DramRowMisses)
	add("traffic_bytes", got.TrafficBytes, want.TrafficBytes)
	return out
}

func goldenPath(bench string, sc Scheme) string {
	name := fmt.Sprintf("%s__%s.json", bench, strings.ReplaceAll(sc.String(), "/", "-"))
	return filepath.Join("testdata", "golden", name)
}

// TestGoldenSnapshots simulates every kernel × scheme cell at Test factor
// and compares the result against the committed snapshot. With -update it
// rewrites the testdata instead. On mismatch it names the first divergent
// field (and every further one) so a timing regression reads as "cycles:
// got X, want Y" rather than a JSON blob diff.
func TestGoldenSnapshots(t *testing.T) {
	opt := goldenOptions()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, bench := range workloads.Names() {
		for _, sc := range goldenSchemes() {
			bench, sc := bench, sc
			t.Run(fmt.Sprintf("%s/%s", bench, sc), func(t *testing.T) {
				spec, err := workloads.ByName(bench)
				if err != nil {
					t.Fatal(err)
				}
				r, err := Run(spec, sc, opt)
				if err != nil {
					t.Fatal(err)
				}
				got := snapshotOf(r)
				path := goldenPath(bench, sc)

				if *updateGolden {
					data, err := json.MarshalIndent(got, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}

				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden snapshot (run with -update to generate): %v", err)
				}
				var want goldenSnapshot
				if err := json.Unmarshal(data, &want); err != nil {
					t.Fatalf("corrupt golden snapshot %s: %v", path, err)
				}
				if diffs := diffFields(got, want); len(diffs) > 0 {
					t.Errorf("%s/%s diverges from golden snapshot; first divergent field:\n  %s",
						bench, sc, strings.Join(diffs, "\n  "))
				}
			})
		}
	}
}

// TestGoldenCoverage pins the grid shape: a snapshot file exists for every
// kernel × scheme cell and no stale file lingers, so a renamed kernel or
// scheme cannot silently shrink the regression net.
func TestGoldenCoverage(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	want := map[string]bool{}
	for _, bench := range workloads.Names() {
		for _, sc := range goldenSchemes() {
			want[filepath.Base(goldenPath(bench, sc))] = true
		}
	}
	ents, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatalf("golden testdata missing (run TestGoldenSnapshots -update): %v", err)
	}
	seen := map[string]bool{}
	for _, e := range ents {
		if !want[e.Name()] {
			t.Errorf("stale golden file %s (no matching kernel × scheme cell)", e.Name())
		}
		seen[e.Name()] = true
	}
	for name := range want {
		if !seen[name] {
			t.Errorf("missing golden file %s", name)
		}
	}
}
