package core

import (
	"reflect"
	"strings"
	"testing"

	"grp/internal/faults"
	"grp/internal/sim"
	"grp/internal/workloads"
)

// TestCoRunSingleCoreMatchesSolo: a 1-core co-run is the solo engine in
// every observable field — digests, cycles, all statistics, and the
// attribution summary. The fleet-scale version of this check (200
// generated programs) lives in internal/conformance; this is the fast
// in-package anchor over two real kernels.
func TestCoRunSingleCoreMatchesSolo(t *testing.T) {
	for _, bench := range []string{"mcf", "art"} {
		for _, sc := range []Scheme{GRPVar, GHB} {
			spec, err := workloads.ByName(bench)
			if err != nil {
				t.Fatal(err)
			}
			opt := Options{Factor: workloads.Test, Attrib: true, CheckInvariants: true}
			solo, err := Run(spec, sc, opt)
			if err != nil {
				t.Fatal(err)
			}
			cr, err := RunCoRun([]string{bench}, sc, opt)
			if err != nil {
				t.Fatal(err)
			}
			got := *cr.Results[0]
			if got.CoRun == nil || got.CoRun.NCores != 1 || got.CoRun.Core != 0 {
				t.Fatalf("%s/%s: missing or wrong CoRun info: %+v", bench, sc, got.CoRun)
			}
			got.CoRun = nil
			if !reflect.DeepEqual(*solo, got) {
				t.Fatalf("%s/%s: 1-core co-run diverged from solo:\nsolo:  %+v\ncorun: %+v",
					bench, sc, *solo, got)
			}
		}
	}
}

// TestCoRunOptionsDelegation: Options.CoRun routes Run through the
// co-run engine — the cell's bench lands on core 0 and the result
// carries the cross-core context.
func TestCoRunOptionsDelegation(t *testing.T) {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Factor: workloads.Test, CoRun: []string{"art"}}
	r, err := Run(spec, GRPVar, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bench != "mcf" || r.CoRun == nil || r.CoRun.NCores != 2 || r.CoRun.Core != 0 {
		t.Fatalf("co-run cell result misrouted: bench=%s corun=%+v", r.Bench, r.CoRun)
	}
	if got, want := r.CoRun.Benches, []string{"mcf", "art"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("co-run benches = %v, want %v", got, want)
	}

	cr, err := RunCoRun([]string{"mcf", "art"}, GRPVar, Options{Factor: workloads.Test})
	if err != nil {
		t.Fatal(err)
	}
	if r.CPU.Cycles != cr.Results[0].CPU.Cycles || r.ArchDigest != cr.Results[0].ArchDigest {
		t.Fatal("Options.CoRun cell differs from the equivalent RunCoRun core 0")
	}
}

// TestCoRunArchUnchanged: contention perturbs timing only — each core's
// architectural and memory digests equal its solo run's.
func TestCoRunArchUnchanged(t *testing.T) {
	opt := Options{Factor: workloads.Test, Attrib: true, CheckInvariants: true}
	cr, err := RunCoRun([]string{"mcf", "art"}, GRPVar, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range cr.Results {
		spec, err := workloads.ByName(r.Bench)
		if err != nil {
			t.Fatal(err)
		}
		solo, err := Run(spec, GRPVar, opt)
		if err != nil {
			t.Fatal(err)
		}
		if r.ArchDigest != solo.ArchDigest || r.MemDigest != solo.MemDigest {
			t.Fatalf("core %d (%s): digests diverged from solo under contention", i, r.Bench)
		}
		if r.CPU.Cycles < solo.CPU.Cycles {
			t.Fatalf("core %d (%s): co-run cycles %d below solo %d — contention cannot speed a core up",
				i, r.Bench, r.CPU.Cycles, solo.CPU.Cycles)
		}
	}
}

// TestCoRunDeterminism: two identical co-runs agree exactly.
func TestCoRunDeterminism(t *testing.T) {
	opt := Options{Factor: workloads.Test, Attrib: true}
	a, err := RunCoRun([]string{"mcf", "art", "equake"}, GRPAdaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCoRun([]string{"mcf", "art", "equake"}, GRPAdaptive, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("co-run is not deterministic across identical invocations")
	}
}

// TestCoRunPollutionAccounting: with the shared L2 squeezed small enough
// that prefetch fills displace the co-runner's working set, pollution
// shows up and balances: total caused equals total suffered, and the
// same totals surface through the attribution annotation.
func TestCoRunPollutionAccounting(t *testing.T) {
	memCfg := sim.DefaultMemConfig()
	memCfg.L2.SizeBytes = 8 << 10 // 8 KB shared L2: heavy capacity contention
	opt := Options{Factor: workloads.Test, Mem: &memCfg, Attrib: true, CheckInvariants: true}
	cr, err := RunCoRun([]string{"mcf", "art"}, GRPVar, opt)
	if err != nil {
		t.Fatal(err)
	}
	var caused, suffered, ledgerPoll uint64
	for _, r := range cr.Results {
		caused += r.CoRun.PollutionCaused
		suffered += r.CoRun.PollutionSuffered
		if r.Attrib != nil {
			ledgerPoll += r.Attrib.CrossCorePollution
		}
	}
	if caused == 0 {
		t.Fatal("no cross-core pollution under an 8 KB shared L2 — accounting is dead")
	}
	if caused != suffered {
		t.Fatalf("pollution caused %d != suffered %d", caused, suffered)
	}
	if ledgerPoll == 0 {
		t.Fatal("attribution ledgers recorded no cross-core pollution")
	}
}

// TestCoRunSlowdowns: ComputeSlowdowns fills per-core solo references;
// slowdown is ≥ 1 by the non-speedup property.
func TestCoRunSlowdowns(t *testing.T) {
	opt := Options{Factor: workloads.Test}
	cr, err := RunCoRun([]string{"mcf", "art"}, GRPVar, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := cr.ComputeSlowdowns(opt); err != nil {
		t.Fatal(err)
	}
	for i, s := range cr.Slowdown {
		if cr.SoloCycles[i] == 0 || s < 1.0 {
			t.Fatalf("core %d: slowdown %.3f (solo %d cycles) — want ≥ 1 with a real solo reference",
				i, s, cr.SoloCycles[i])
		}
	}
}

// TestCoRunRejectsUnsupportedOptions: the single-core-only instruments
// fail fast with a named error instead of silently misbehaving.
func TestCoRunRejectsUnsupportedOptions(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		want string
	}{
		{"faults", Options{Factor: workloads.Test, Faults: &faults.Plan{Seed: 1, DelayFill: 1, DelayFillCycles: 4}}, "fault injection"},
		{"metrics", Options{Factor: workloads.Test, Metrics: true}, "telemetry"},
		{"legacy", Options{Factor: workloads.Test, LegacyEngine: true}, "legacy engine"},
	}
	for _, tc := range cases {
		_, err := RunCoRun([]string{"mcf", "art"}, GRPVar, tc.opt)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestCoRunEmpty documents the degenerate-input contract.
func TestCoRunEmpty(t *testing.T) {
	if _, err := RunCoRun(nil, GRPVar, Options{Factor: workloads.Test}); err == nil {
		t.Fatal("RunCoRun(nil benches) succeeded")
	}
}
