package core

import (
	"testing"

	"grp/internal/workloads"
)

// TestSoftwarePrefetchDenseStream: classic software prefetching recovers
// most of the stall time on a dense array kernel (where Mowry-style
// prefetching historically worked).
func TestSoftwarePrefetchDenseStream(t *testing.T) {
	opt := Options{Factor: workloads.Test}
	spec, err := workloads.ByName("wupwise")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(spec, NoPrefetch, opt)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Run(spec, SoftwarePF, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Mem.SWPrefetches == 0 {
		t.Fatal("software prefetching issued no PREFs")
	}
	if s := Speedup(sw, base); s < 1.5 {
		t.Errorf("software prefetching should speed up a dense stream, got %.2f", s)
	}
}

// TestSoftwarePrefetchCannotChasePointers: the compiler cannot compute
// pointer-chase addresses in advance (paper Section 2), so swpf leaves
// pointer workloads essentially unimproved while GRP helps.
func TestSoftwarePrefetchCannotChasePointers(t *testing.T) {
	opt := Options{Factor: workloads.Test}
	spec, err := workloads.ByName("ammp")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(spec, NoPrefetch, opt)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Run(spec, SoftwarePF, opt)
	if err != nil {
		t.Fatal(err)
	}
	grp, err := Run(spec, GRPVar, opt)
	if err != nil {
		t.Fatal(err)
	}
	swGain := Speedup(sw, base)
	grpGain := Speedup(grp, base)
	if swGain > 1.10 {
		t.Errorf("software prefetching should not cover pointer chasing, got %.2f", swGain)
	}
	if grpGain <= swGain {
		t.Errorf("GRP (%.2f) should beat software prefetching (%.2f) on pointer chasing", grpGain, swGain)
	}
}

// TestSoftwarePrefetchAddsInstructions: PREFs occupy fetch/issue slots;
// the binary grows (selection overhead, paper Section 2).
func TestSoftwarePrefetchAddsInstructions(t *testing.T) {
	opt := Options{Factor: workloads.Test}
	spec, err := workloads.ByName("wupwise")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(spec, NoPrefetch, opt)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Run(spec, SoftwarePF, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Same instruction budget, but the swpf binary spends part of it on
	// PREFs, so it commits less useful work per instruction; verify the
	// PREF count is material.
	if sw.Mem.SWPrefetches+sw.Mem.SWPrefetchDrops < base.CPU.Loads/4 {
		t.Errorf("expected roughly one PREF per spatial load, got %d (+%d dropped) vs %d loads",
			sw.Mem.SWPrefetches, sw.Mem.SWPrefetchDrops, base.CPU.Loads)
	}
}
