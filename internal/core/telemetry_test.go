package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"grp/internal/sim"
	"grp/internal/trace"
	"grp/internal/workloads"
)

// TestRunWithTelemetry is the acceptance check for the telemetry layer: a
// metrics-enabled run must produce the five headline time series with at
// least two samples each, populated latency histograms, and a timeline
// that exports as valid trace-event JSON.
func TestRunWithTelemetry(t *testing.T) {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	tl := trace.NewTimeline()
	r, err := Run(spec, GRPVar, Options{
		Factor:         workloads.Test,
		Metrics:        true,
		SampleInterval: 1024,
		Timeline:       tl,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Metrics
	if snap == nil {
		t.Fatal("Metrics run returned nil snapshot")
	}

	for _, name := range []string{
		sim.SeriesL2MissRate,
		sim.SeriesPFQueueOcc,
		sim.SeriesMSHROcc,
		sim.SeriesDramUtil,
		"cpu.ipc",
	} {
		s := snap.GetSeries(name)
		if s == nil {
			t.Errorf("series %q missing from snapshot", name)
			continue
		}
		if len(s.Samples) < 2 {
			t.Errorf("series %q has %d samples, want >= 2", name, len(s.Samples))
		}
	}
	if snap.SampleInterval != 1024 {
		t.Errorf("SampleInterval = %d, want 1024", snap.SampleInterval)
	}

	for _, name := range []string{sim.HistDemandMissLatency, sim.HistPrefetchLatency} {
		h := snap.Histogram(name)
		if h == nil || h.Count == 0 {
			t.Errorf("histogram %q absent or empty", name)
			continue
		}
		if !(h.P50 <= h.P90 && h.P90 <= h.P99) {
			t.Errorf("%s percentiles not monotone: p50=%g p90=%g p99=%g", name, h.P50, h.P90, h.P99)
		}
	}

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}

	if tl.Len() == 0 {
		t.Fatal("timeline recorded no events")
	}
	buf.Reset()
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("timeline JSON invalid: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Error("timeline JSON has no traceEvents")
	}
}

// TestRunWithoutTelemetry checks the default path stays telemetry-free.
func TestRunWithoutTelemetry(t *testing.T) {
	spec, err := workloads.ByName("wupwise")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(spec, SRP, Options{Factor: workloads.Test})
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics != nil {
		t.Error("Metrics snapshot present on a run that did not ask for it")
	}
}
