package core

import (
	"testing"

	"grp/internal/sim"
	"grp/internal/workloads"
)

// TestWorkloadDynamics asserts each proxy exercises the GRP mechanism it
// was built for at runtime — not just that the static hints exist. This is
// the integration-level counterpart of the Table 3 hint-class test in the
// workloads package.
func TestWorkloadDynamics(t *testing.T) {
	s := getSuite(t)

	type expect struct {
		// regions: GRP allocated spatial regions.
		regions bool
		// scans: the pointer scanner ran on returned lines.
		scans bool
		// indirect: PREFI instructions reached the engine.
		indirect bool
		// variable: some non-64-block regions were allocated (GRP/Var).
		variable bool
	}
	cases := map[string]expect{
		"gzip":    {regions: true},
		"wupwise": {regions: true},
		"mgrid":   {regions: true},
		"vpr":     {regions: true, indirect: true},
		"mesa":    {regions: true, scans: true, variable: true},
		"mcf":     {regions: true, scans: true},
		"equake":  {regions: true, scans: true},
		"ammp":    {scans: true},
		"parser":  {regions: true, scans: true},
		"bzip2":   {regions: true, indirect: true, variable: true},
		"twolf":   {scans: true},
		"sphinx":  {regions: true, scans: true, variable: true},
	}
	for bench, want := range cases {
		r := s.Get(bench, GRPVar)
		if r == nil {
			t.Fatalf("%s: no GRP/Var result in suite", bench)
		}
		if want.regions && r.PF.RegionsAllocated == 0 {
			t.Errorf("%s: expected spatial region allocations, got none", bench)
		}
		if want.scans && r.PF.PointerScans == 0 {
			t.Errorf("%s: expected pointer scans, got none", bench)
		}
		if !want.scans && r.PF.PointerScans > 0 && bench != "mesa" {
			// Benchmarks without pointer hints must not trigger scanning.
			t.Errorf("%s: unexpected pointer scans (%d)", bench, r.PF.PointerScans)
		}
		if want.indirect && r.PF.IndirectInstrs == 0 {
			t.Errorf("%s: expected PREFI executions, got none", bench)
		}
		if want.variable {
			small := false
			for sz, n := range r.PF.RegionSizeDist {
				if sz < 64 && n > 0 {
					small = true
				}
			}
			if !small {
				t.Errorf("%s: expected variable-size regions, got %v", bench, r.PF.RegionSizeDist)
			}
		}
	}
}

// TestGRPIgnoresUnhintedMisses: on the shuffled-pointer workload, GRP's
// only activity must come through hints — its spatial region count stays
// far below SRP's every-miss allocation.
func TestGRPIgnoresUnhintedMisses(t *testing.T) {
	s := getSuite(t)
	srp := s.Get("twolf", SRP)
	grp := s.Get("twolf", GRPVar)
	if srp.PF.RegionsAllocated == 0 {
		t.Fatal("SRP should allocate regions on every miss")
	}
	// GRP allocates only 2-block pointer-target entries on twolf; its
	// 64-block region count should be zero.
	if n := grp.PF.RegionSizeDist[64]; n > 0 {
		t.Errorf("twolf GRP allocated %d full regions despite no spatial hints", n)
	}
}

// TestCraftyNegligibleMisses: the excluded benchmark really has a
// negligible L2 miss rate, the paper's reason for dropping it.
func TestCraftyNegligibleMisses(t *testing.T) {
	spec, err := workloads.ByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	// Small scale: a Test-scale run is short enough that cold fills still
	// dominate the (tiny) miss count.
	r, err := Run(spec, NoPrefetch, Options{Factor: workloads.Small})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's 0.4% is misses per memory reference: crafty's table fits
	// the L1, so only its cold fills ever reach the L2.
	refs := r.Mem.Loads + r.Mem.Stores
	if refs == 0 {
		t.Fatal("crafty issued no memory references")
	}
	if perRef := 100 * float64(r.L2.Misses) / float64(refs); perRef > 2 {
		t.Errorf("crafty L2 misses per reference = %.2f%%, should be negligible", perRef)
	}
}

// TestBandwidthBoundArt: art must stay memory-limited even under GRP —
// the paper's "simply requires more memory bandwidth" benchmark. Doubling
// the channel count should visibly help its GRP configuration.
func TestBandwidthBoundArt(t *testing.T) {
	spec, err := workloads.ByName("art")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Factor: workloads.Test}
	narrow, err := Run(spec, GRPVar, opt)
	if err != nil {
		t.Fatal(err)
	}
	wideOpt := opt
	mc := *defaultMemConfigForTest()
	mc.DRAM.Channels = 8
	wideOpt.Mem = &mc
	wide, err := Run(spec, GRPVar, wideOpt)
	if err != nil {
		t.Fatal(err)
	}
	if wide.CPU.Cycles >= narrow.CPU.Cycles {
		t.Errorf("doubling channels should help bandwidth-bound art: %d vs %d cycles",
			wide.CPU.Cycles, narrow.CPU.Cycles)
	}
}

// defaultMemConfigForTest returns a fresh default memory configuration for
// option overrides in tests.
func defaultMemConfigForTest() *sim.MemConfig {
	c := sim.DefaultMemConfig()
	return &c
}
