package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"grp/internal/workloads"
)

// The co-run golden suite pins 2-core contention timing the same way the
// single-core suite pins solo timing: exact per-core digests, cycles,
// and memory statistics for a subset of kernel pairs under the three
// headline prefetchers. Regenerate with
// go test ./internal/core -run TestCoRunGoldenSnapshots -update.

// corunGoldenPairs is the snapshot grid's workload axis: pointer-chasing
// vs streaming (mcf|art), two pointer chasers (mcf|equake), two
// streamers (art|swim), and an integer pair (gzip|twolf) — enough shapes
// to pin both capacity contention and channel contention.
func corunGoldenPairs() [][2]string {
	return [][2]string{
		{"mcf", "art"},
		{"mcf", "equake"},
		{"art", "swim"},
		{"gzip", "twolf"},
	}
}

// corunGoldenSchemes: the co-run grid covers the paper's variable-region
// GRP plus the two post-paper engine families (GHB, adaptive GRP).
func corunGoldenSchemes() []Scheme {
	return []Scheme{GRPVar, GHB, GRPAdaptive}
}

// corunGoldenSnapshot is one committed 2-core cell: per-core snapshots
// (reusing the solo golden schema) plus the cross-core fields.
type corunGoldenSnapshot struct {
	Benches         []string `json:"benches"`
	Scheme          string   `json:"scheme"`
	AggTrafficBytes uint64   `json:"agg_traffic_bytes"`

	Cores []corunGoldenCore `json:"cores"`
}

type corunGoldenCore struct {
	goldenSnapshot
	PollutionCaused   uint64 `json:"pollution_caused"`
	PollutionSuffered uint64 `json:"pollution_suffered"`
}

func corunSnapshotOf(cr *CoRunResult) corunGoldenSnapshot {
	out := corunGoldenSnapshot{
		Scheme:          cr.Results[0].Scheme.String(),
		AggTrafficBytes: cr.AggTrafficBytes,
	}
	for _, r := range cr.Results {
		out.Benches = append(out.Benches, r.Bench)
		out.Cores = append(out.Cores, corunGoldenCore{
			goldenSnapshot:    snapshotOf(r),
			PollutionCaused:   r.CoRun.PollutionCaused,
			PollutionSuffered: r.CoRun.PollutionSuffered,
		})
	}
	return out
}

// corunDiffFields reports divergent fields in declaration order, the
// per-core solo schema first (prefixed core0./core1.), then the
// cross-core fields — the first entry is the first divergent field.
func corunDiffFields(got, want corunGoldenSnapshot) []string {
	var out []string
	if len(got.Cores) != len(want.Cores) {
		return []string{fmt.Sprintf("cores: got %d, want %d", len(got.Cores), len(want.Cores))}
	}
	for i := range got.Cores {
		for _, d := range diffFields(got.Cores[i].goldenSnapshot, want.Cores[i].goldenSnapshot) {
			out = append(out, fmt.Sprintf("core%d.%s", i, d))
		}
		if g, w := got.Cores[i].PollutionCaused, want.Cores[i].PollutionCaused; g != w {
			out = append(out, fmt.Sprintf("core%d.pollution_caused: got %d, want %d", i, g, w))
		}
		if g, w := got.Cores[i].PollutionSuffered, want.Cores[i].PollutionSuffered; g != w {
			out = append(out, fmt.Sprintf("core%d.pollution_suffered: got %d, want %d", i, g, w))
		}
	}
	if got.AggTrafficBytes != want.AggTrafficBytes {
		out = append(out, fmt.Sprintf("agg_traffic_bytes: got %d, want %d", got.AggTrafficBytes, want.AggTrafficBytes))
	}
	return out
}

func corunGoldenPath(pair [2]string, sc Scheme) string {
	name := fmt.Sprintf("%s__%s__%s.json", pair[0], pair[1],
		strings.ReplaceAll(sc.String(), "/", "-"))
	return filepath.Join("testdata", "corun", name)
}

// TestCoRunGoldenSnapshots simulates every committed pair × scheme cell
// at Test factor 2-core and compares field-by-field, naming the first
// divergent field on mismatch. -update regenerates.
func TestCoRunGoldenSnapshots(t *testing.T) {
	opt := Options{Factor: workloads.Test}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "corun"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range corunGoldenPairs() {
		for _, sc := range corunGoldenSchemes() {
			pair, sc := pair, sc
			t.Run(fmt.Sprintf("%s+%s/%s", pair[0], pair[1], sc), func(t *testing.T) {
				cr, err := RunCoRun([]string{pair[0], pair[1]}, sc, opt)
				if err != nil {
					t.Fatal(err)
				}
				got := corunSnapshotOf(cr)
				path := corunGoldenPath(pair, sc)

				if *updateGolden {
					data, err := json.MarshalIndent(got, "", "  ")
					if err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}

				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing co-run golden snapshot (run with -update to generate): %v", err)
				}
				var want corunGoldenSnapshot
				if err := json.Unmarshal(data, &want); err != nil {
					t.Fatalf("corrupt co-run golden snapshot %s: %v", path, err)
				}
				if diffs := corunDiffFields(got, want); len(diffs) > 0 {
					t.Errorf("%s+%s/%s diverges from golden snapshot; first divergent field:\n  %s",
						pair[0], pair[1], sc, strings.Join(diffs, "\n  "))
				}
			})
		}
	}
}

// TestCoRunGoldenCoverage pins the co-run grid shape exactly as
// TestGoldenCoverage pins the solo one.
func TestCoRunGoldenCoverage(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating")
	}
	want := map[string]bool{}
	for _, pair := range corunGoldenPairs() {
		for _, sc := range corunGoldenSchemes() {
			want[filepath.Base(corunGoldenPath(pair, sc))] = true
		}
	}
	ents, err := os.ReadDir(filepath.Join("testdata", "corun"))
	if err != nil {
		t.Fatalf("corun testdata missing (run TestCoRunGoldenSnapshots -update): %v", err)
	}
	seen := map[string]bool{}
	for _, e := range ents {
		if !want[e.Name()] {
			t.Errorf("stale corun golden file %s", e.Name())
		}
		seen[e.Name()] = true
	}
	for name := range want {
		if !seen[name] {
			t.Errorf("missing corun golden file %s", name)
		}
	}
}
