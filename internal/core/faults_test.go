package core

import (
	"errors"
	"strings"
	"testing"

	"grp/internal/faults"
	"grp/internal/sim"
	"grp/internal/workloads"
)

// TestFaultMetamorphic is the headline robustness property: faults perturb
// timing only, so every scheme under every fault plan must produce
// bit-identical architectural results (registers, memory, instruction
// counts) to its fault-free run. mcf mixes pointer chasing with array
// resets, exercising GRP's recursive path alongside the spatial one.
func TestFaultMetamorphic(t *testing.T) {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	plans := []string{"light,seed=7", "heavy,seed=11", "chaos,seed=13"}
	schemes := append(AllSchemes(), SoftwarePF)
	var injected uint64
	for _, sc := range schemes {
		clean, err := Run(spec, sc, Options{Factor: workloads.Test, CheckInvariants: true})
		if err != nil {
			t.Fatalf("%s fault-free: %v", sc, err)
		}
		for _, ps := range plans {
			plan, err := faults.Parse(ps)
			if err != nil {
				t.Fatal(err)
			}
			r, err := Run(spec, sc, Options{
				Factor: workloads.Test, Faults: &plan, CheckInvariants: true,
			})
			if err != nil {
				t.Fatalf("%s under %q: %v", sc, ps, err)
			}
			if r.ArchDigest != clean.ArchDigest {
				t.Errorf("%s under %q: ArchDigest %#x != fault-free %#x",
					sc, ps, r.ArchDigest, clean.ArchDigest)
			}
			if r.CPU.Instrs != clean.CPU.Instrs || r.CPU.Loads != clean.CPU.Loads ||
				r.CPU.Stores != clean.CPU.Stores || r.CPU.Branches != clean.CPU.Branches ||
				r.CPU.Mispredicts != clean.CPU.Mispredicts || r.CPU.Halted != clean.CPU.Halted {
				t.Errorf("%s under %q: timing-independent counts diverged:\n faulty %+v\n clean  %+v",
					sc, ps, r.CPU, clean.CPU)
			}
			injected += r.FaultCounts.Total() + r.Mem.PrefetchesCancelled
		}
	}
	if injected == 0 {
		t.Fatal("no faults injected across any scheme/plan: the harness is not armed")
	}
	t.Logf("injected %d faults across %d scheme runs", injected, len(schemes)*len(plans))
}

// TestFaultsPerturbTiming guards against the injector silently becoming a
// no-op: under the chaos plan a prefetching scheme must show different
// timing (and some injected-fault count) than the fault-free run.
func TestFaultsPerturbTiming(t *testing.T) {
	spec, err := workloads.ByName("wupwise")
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(spec, SRP, Options{Factor: workloads.Test})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.Parse("chaos,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := Run(spec, SRP, Options{Factor: workloads.Test, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.FaultCounts.Total() == 0 && faulty.Mem.PrefetchesCancelled == 0 {
		t.Fatalf("chaos plan injected nothing: %+v", faulty.FaultCounts)
	}
	if faulty.CPU.Cycles == clean.CPU.Cycles {
		t.Errorf("chaos plan did not perturb timing (both %d cycles)", clean.CPU.Cycles)
	}
	if faulty.ArchDigest != clean.ArchDigest {
		t.Errorf("ArchDigest changed under faults: %#x vs %#x", faulty.ArchDigest, clean.ArchDigest)
	}
}

// TestWatchdogStallAborts wedges the memory system (every fill delayed by
// ~2^31 cycles) and checks the run aborts with a structured livelock
// diagnostic instead of silently spinning for billions of cycles.
func TestWatchdogStallAborts(t *testing.T) {
	spec, err := workloads.ByName("wupwise")
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{Seed: 3, DelayFill: 1, DelayFillCycles: 1 << 31}
	r, err := Run(spec, NoPrefetch, Options{
		Factor:   workloads.Test,
		Faults:   &plan,
		Watchdog: &sim.WatchdogConfig{StallCycles: 100_000},
	})
	if err == nil {
		t.Fatalf("expected livelock abort, run completed: %+v", r.CPU)
	}
	var ll *sim.LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("error is not a LivelockError: %v", err)
	}
	if ll.Dump == "" || !strings.Contains(ll.Dump, "inflight") {
		t.Errorf("diagnostic dump missing or empty:\n%s", ll.Dump)
	}
	t.Logf("watchdog fired at cycle %d:\n%s", ll.Cycle, ll.Dump)
}

// TestOptionsValidateRejectsBadConfigs: invalid overrides surface as
// errors from Run instead of panics from deep inside a constructor.
func TestOptionsValidateRejectsBadConfigs(t *testing.T) {
	spec, err := workloads.ByName("wupwise")
	if err != nil {
		t.Fatal(err)
	}
	badMem := sim.DefaultMemConfig()
	badMem.L2.Assoc = 0
	badPlan := faults.Plan{DropIssue: 2}
	cases := []Options{
		{Factor: workloads.Test, Mem: &badMem},
		{Factor: workloads.Test, Faults: &badPlan},
	}
	for i, opt := range cases {
		if _, err := Run(spec, NoPrefetch, opt); err == nil {
			t.Errorf("case %d: bad options accepted", i)
		}
	}
}
