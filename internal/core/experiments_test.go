package core

import (
	"strings"
	"testing"

	"grp/internal/workloads"
)

// testSuite runs the whole suite once at test scale for all experiments.
var testSuiteCache *Suite

func getSuite(t *testing.T) *Suite {
	t.Helper()
	if testSuiteCache == nil {
		s, err := RunSuite(nil, nil, Options{Factor: workloads.Test})
		if err != nil {
			t.Fatalf("RunSuite: %v", err)
		}
		testSuiteCache = s
	}
	return testSuiteCache
}

func TestNoSchemeBeatsPerfectL2(t *testing.T) {
	s := getSuite(t)
	for _, b := range s.TimedBenches() {
		perf := s.Get(b, PerfectL2)
		for _, sc := range []Scheme{NoPrefetch, StridePF, SRP, GRPFix, GRPVar, PointerOnly} {
			r := s.Get(b, sc)
			if r.CPU.Cycles < perf.CPU.Cycles {
				t.Errorf("%s/%s (%d cycles) beats perfect L2 (%d cycles)",
					b, sc, r.CPU.Cycles, perf.CPU.Cycles)
			}
		}
	}
}

func TestPrefetchingNeverCatastrophic(t *testing.T) {
	// The access prioritizer and LRU insertion must keep every prefetch
	// scheme within a small margin of the no-prefetch baseline, even when
	// prefetching is useless (paper Section 3.1).
	s := getSuite(t)
	for _, b := range s.TimedBenches() {
		base := s.Get(b, NoPrefetch)
		for _, sc := range []Scheme{StridePF, SRP, GRPVar} {
			r := s.Get(b, sc)
			if float64(r.CPU.Cycles) > 1.30*float64(base.CPU.Cycles) {
				t.Errorf("%s/%s is %.2fx slower than no prefetching",
					b, sc, float64(r.CPU.Cycles)/float64(base.CPU.Cycles))
			}
		}
	}
}

func TestHeadlineShape(t *testing.T) {
	// The paper's headline: SRP and GRP clearly beat stride and the
	// baseline; GRP's traffic is well below SRP's (geometric means).
	s := getSuite(t)
	rows, _, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	get := func(sc Scheme) Table1Row {
		for _, r := range rows {
			if r.Scheme == sc {
				return r
			}
		}
		t.Fatalf("scheme %v missing", sc)
		return Table1Row{}
	}
	base, stride, srp, grpv := get(NoPrefetch), get(StridePF), get(SRP), get(GRPVar)
	if base.Speedup != 1 {
		t.Errorf("baseline speedup = %v", base.Speedup)
	}
	if stride.Speedup <= 1.0 {
		t.Errorf("stride should help: %v", stride.Speedup)
	}
	if srp.Speedup <= stride.Speedup {
		t.Errorf("SRP (%v) should beat stride (%v)", srp.Speedup, stride.Speedup)
	}
	// At test scale the tiny working sets flatter SRP (everything its
	// regions fetch is eventually used); GRP reaches parity at the small
	// and full scales the benchmark harness runs. Require 80% here.
	if grpv.Speedup < 0.8*srp.Speedup {
		t.Errorf("GRP (%v) should be close to SRP (%v)", grpv.Speedup, srp.Speedup)
	}
	if grpv.TrafficIncrease >= srp.TrafficIncrease {
		t.Errorf("GRP traffic (%v) should undercut SRP (%v)",
			grpv.TrafficIncrease, srp.TrafficIncrease)
	}
}

func TestAllExperimentTablesRender(t *testing.T) {
	s := getSuite(t)
	checks := []struct {
		name string
		f    func() (string, error)
	}{
		{"Figure1", func() (string, error) { tb, err := s.Figure1(); return render(tb, err) }},
		{"Table1", func() (string, error) { _, tb, err := s.Table1(); return render(tb, err) }},
		{"Table3", func() (string, error) { tb, err := s.Table3(); return render(tb, err) }},
		{"Figure9", func() (string, error) { tb, err := s.Figure9(); return render(tb, err) }},
		{"Figure10", func() (string, error) { tb, err := s.Figure10(); return render(tb, err) }},
		{"Figure11", func() (string, error) { tb, err := s.Figure11(); return render(tb, err) }},
		{"Table4", func() (string, error) { tb, err := s.Table4(nil); return render(tb, err) }},
		{"Figure12", func() (string, error) { tb, err := s.Figure12(); return render(tb, err) }},
		{"Table5", func() (string, error) { tb, err := s.Table5(); return render(tb, err) }},
		{"Table6", func() (string, error) { tb, err := s.Table6(); return render(tb, err) }},
	}
	for _, c := range checks {
		out, err := c.f()
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if len(strings.Split(out, "\n")) < 3 {
			t.Errorf("%s rendered nearly empty:\n%s", c.name, out)
		}
	}
}

func render(tb interface{ String() string }, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return tb.String(), nil
}

func TestTable4MesaShape(t *testing.T) {
	// mesa is the flagship GRP/Var result: variable regions must cut its
	// traffic versus fixed regions (paper Table 4: 1.11 vs 6.55).
	s := getSuite(t)
	base := s.Get("mesa", NoPrefetch)
	vr := s.Get("mesa", GRPVar)
	fx := s.Get("mesa", GRPFix)
	tv := TrafficIncrease(vr, base)
	tf := TrafficIncrease(fx, base)
	if tv >= tf/2 {
		t.Errorf("mesa GRP/Var traffic %.2f should be far below GRP/Fix %.2f", tv, tf)
	}
	// And most regions are the minimum size.
	var total, small uint64
	for sz, n := range vr.PF.RegionSizeDist {
		total += n
		if sz == 2 {
			small += n
		}
	}
	if total == 0 || float64(small)/float64(total) < 0.5 {
		t.Errorf("mesa region-size distribution not dominated by size 2: %v", vr.PF.RegionSizeDist)
	}
}

func TestRunDeterministic(t *testing.T) {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Factor: workloads.Test}
	r1, err := Run(spec, GRPVar, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(spec, GRPVar, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CPU != r2.CPU || r1.TrafficBytes != r2.TrafficBytes {
		t.Errorf("simulation is not deterministic:\n%+v\n%+v", r1.CPU, r2.CPU)
	}
}

func TestSensitivitySmoke(t *testing.T) {
	rows, tb, err := RunSensitivity([]string{"swim", "apsi"}, Options{Factor: workloads.Test})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || tb.String() == "" {
		t.Errorf("sensitivity rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 0 {
			t.Errorf("policy %s speedup = %v", r.Policy, r.Speedup)
		}
	}
}

func TestSchemeByName(t *testing.T) {
	for _, sc := range AllSchemes() {
		got, err := SchemeByName(sc.String())
		if err != nil || got != sc {
			t.Errorf("SchemeByName(%q) = %v, %v", sc.String(), got, err)
		}
	}
	if _, err := SchemeByName("bogus"); err == nil {
		t.Error("unknown scheme should error")
	}
	if Scheme(99).String() == "" {
		t.Error("unknown scheme string")
	}
}

func TestMcfRecursionDepthOverride(t *testing.T) {
	spec, _ := workloads.ByName("mcf")
	if d := grpDepth(spec, Options{}); d != 3 {
		t.Errorf("mcf depth = %d, want 3 (paper footnote 2)", d)
	}
	other, _ := workloads.ByName("ammp")
	if d := grpDepth(other, Options{}); d != 6 {
		t.Errorf("default depth = %d, want 6", d)
	}
	if d := grpDepth(spec, Options{RecursionDepth: 5}); d != 5 {
		t.Errorf("override depth = %d, want 5", d)
	}
}

func TestChartsRender(t *testing.T) {
	s := getSuite(t)
	c1, err := s.Figure1Chart()
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.String()) < 100 {
		t.Errorf("Figure1Chart nearly empty:\n%s", c1)
	}
	c12, err := s.Figure12Chart()
	if err != nil {
		t.Fatal(err)
	}
	if len(c12.String()) < 100 {
		t.Errorf("Figure12Chart nearly empty:\n%s", c12)
	}
}
