package core

import (
	"fmt"
	"io"
	"strings"

	"grp/internal/attrib"
	"grp/internal/cache"
	"grp/internal/metrics"
	"grp/internal/sim"
	"grp/internal/stats"
)

// This file holds the human-readable run reporting shared by the grpsim
// and grptrace commands, so the two tools describe the memory system in
// the same vocabulary and stay in sync as stats are added.

// FprintResult writes the standard per-run report: core progress, cache
// behavior, memory traffic, prefetch effectiveness, hint census, and —
// when the run collected telemetry — miss-latency percentiles.
func FprintResult(w io.Writer, r *Result) {
	fmt.Fprintf(w, "benchmark %s  scheme %s\n", r.Bench, r.Scheme)
	fmt.Fprintf(w, "  instructions     %d\n", r.CPU.Instrs)
	fmt.Fprintf(w, "  cycles           %d\n", r.CPU.Cycles)
	fmt.Fprintf(w, "  IPC              %.3f\n", r.IPC())
	fmt.Fprintf(w, "  branches         %d (%d mispredicted)\n", r.CPU.Branches, r.CPU.Mispredicts)
	fmt.Fprintf(w, "  L1: %d accesses, %.1f%% miss\n", r.L1.Accesses, r.L1.MissRate())
	FprintMemSummary(w, r.L2, r.Mem, r.TrafficBytes)
	fmt.Fprintf(w, "  hints            %d/%d mem instructions hinted (%.1f%%)\n",
		r.Hints.Hinted(), r.Hints.MemInsts, r.Hints.HintRatio())
	FprintLatencies(w, r.Metrics)
	FprintAttrib(w, r.Attrib)
}

// FprintMemSummary writes the L2/traffic/prefetch block of the report
// from raw memory-system stats, usable by trace-driven replays that have
// no full Result.
func FprintMemSummary(w io.Writer, l2 cache.Stats, mem sim.MemStats, trafficBytes uint64) {
	fmt.Fprintf(w, "  L2: %d accesses, %.1f%% miss\n", l2.Accesses, l2.MissRate())
	fmt.Fprintf(w, "  memory traffic   %d bytes (%d blocks)\n", trafficBytes, trafficBytes/64)
	fmt.Fprintf(w, "  prefetches       %d issued, %d useful, %d late, accuracy %.1f%%\n",
		mem.PrefetchesIssued, l2.UsefulPrefetches, mem.PrefetchLates, accuracy(l2, mem))
}

// FprintCompare writes the speedup/traffic/coverage block comparing a run
// against its no-prefetch baseline.
func FprintCompare(w io.Writer, r, base *Result) {
	fmt.Fprintf(w, "\nvs no prefetching:\n")
	fmt.Fprintf(w, "  speedup          %.3f\n", Speedup(r, base))
	fmt.Fprintf(w, "  traffic increase %.2fx\n", TrafficIncrease(r, base))
	fmt.Fprintf(w, "  coverage         %.1f%%\n", Coverage(r, base))
}

// FprintCoRun writes the co-run report: one row per core — commit
// progress, shared-L2 pollution it caused and suffered, and (when
// ComputeSlowdowns ran) its solo cycle count and slowdown factor — then
// the shared-fabric aggregates.
func FprintCoRun(w io.Writer, cr *CoRunResult) {
	n := len(cr.Results)
	fmt.Fprintf(w, "co-run: %d cores on one shared L2+DRAM, scheme %s\n", n, cr.Results[0].Scheme)
	t := &stats.Table{
		Title: "Per-core view",
		Headers: []string{"core", "bench", "instrs", "cycles", "ipc",
			"solo cycles", "slowdown", "pol.caused", "pol.suffered"},
	}
	for i, r := range cr.Results {
		soloCycles, slowdown := "-", "-"
		if len(cr.SoloCycles) == n && cr.SoloCycles[i] > 0 {
			soloCycles = fmt.Sprint(cr.SoloCycles[i])
			slowdown = stats.Fmt(cr.Slowdown[i], 3)
		}
		t.Add(fmt.Sprint(i), r.Bench, fmt.Sprint(r.CPU.Instrs), fmt.Sprint(r.CPU.Cycles),
			stats.Fmt(r.IPC(), 3), soloCycles, slowdown,
			fmt.Sprint(r.CoRun.PollutionCaused), fmt.Sprint(r.CoRun.PollutionSuffered))
	}
	fmt.Fprint(w, t.String())
	l2 := cr.Results[0].L2
	fmt.Fprintf(w, "shared L2: %d accesses, %.1f%% miss\n", l2.Accesses, l2.MissRate())
	fmt.Fprintf(w, "aggregate DRAM traffic: %d bytes (%d blocks)\n",
		cr.AggTrafficBytes, cr.AggTrafficBytes/64)
}

// FprintLatencies writes demand- and prefetch-latency percentiles from a
// telemetry snapshot; it is a no-op when snap is nil or the histograms
// are absent or empty.
func FprintLatencies(w io.Writer, snap *metrics.Snapshot) {
	if snap == nil {
		return
	}
	line := func(label, name string) {
		h := snap.Histogram(name)
		if h == nil || h.Count == 0 {
			return
		}
		fmt.Fprintf(w, "  %-16s p50 %.0f  p90 %.0f  p99 %.0f cycles (n=%d)\n",
			label, h.P50, h.P90, h.P99, h.Count)
	}
	line("demand latency", sim.HistDemandMissLatency)
	line("prefetch latency", sim.HistPrefetchLatency)
}

// FprintAttrib writes the prefetch lifecycle attribution block: the
// outcome taxonomy with shares of issued prefetches, the prioritizer
// decision counters, and the top per-region and per-PC breakdowns. A
// no-op when the run carried no ledger.
func FprintAttrib(w io.Writer, s *attrib.Summary) {
	if s == nil {
		return
	}
	fmt.Fprintf(w, "\nprefetch attribution (%d issued, ledger accuracy %.1f%%):\n",
		s.Issued, s.Accuracy())
	fmt.Fprint(w, indent(stats.AttribOutcomeTable("outcome taxonomy", s).String(), "  "))
	if len(s.Regions) > 0 {
		fmt.Fprint(w, indent(stats.AttribRegionTable("top regions", s).String(), "  "))
	}
	if len(s.PCs) > 0 {
		fmt.Fprint(w, indent(stats.AttribPCTable("top trigger PCs", s).String(), "  "))
	}
}

// TableAttrib aggregates every cell's attribution ledger into one
// per-scheme outcome table: issued prefetches summed across the suite's
// benches, each lifecycle class as a share of issued. Schemes that issued
// nothing (base, the perfect caches) are omitted. Errors when no cell in
// the suite carried a ledger — the suite must run with Options.Attrib.
func (s *Suite) TableAttrib() (*stats.Table, error) {
	t := &stats.Table{
		Title: "Prefetch attribution by scheme (ledger outcome shares, % of issued)",
		Headers: []string{"scheme", "issued", "useful%", "late%", "evicted%",
			"pollut%", "redund%", "cancel%", "resident%"},
	}
	ledgers := false
	for _, sc := range AllSchemes() {
		var issued uint64
		var c attrib.Counts
		for _, b := range s.Benches {
			r := s.Get(b, sc)
			if r == nil || r.Attrib == nil {
				continue
			}
			ledgers = true
			issued += r.Attrib.Issued
			k := r.Attrib.Counts
			c.Useful += k.Useful
			c.Late += k.Late
			c.EvictedUnused += k.EvictedUnused
			c.Pollution += k.Pollution
			c.Redundant += k.Redundant
			c.Cancelled += k.Cancelled
			c.ResidentUnused += k.ResidentUnused
		}
		if issued == 0 {
			continue
		}
		pct := func(v uint64) string { return stats.Fmt(100*float64(v)/float64(issued), 1) }
		t.Add(sc.String(), fmt.Sprint(issued), pct(c.Useful), pct(c.Late),
			pct(c.EvictedUnused), pct(c.Pollution), pct(c.Redundant),
			pct(c.Cancelled), pct(c.ResidentUnused))
	}
	if !ledgers {
		return nil, fmt.Errorf("core: no attribution ledgers in suite (run with Options.Attrib)")
	}
	return t, nil
}

// indent prefixes every non-empty line of s.
func indent(s, prefix string) string {
	lines := strings.Split(s, "\n")
	for i, ln := range lines {
		if ln != "" {
			lines[i] = prefix + ln
		}
	}
	return strings.Join(lines, "\n")
}

// accuracy is the paper's Table 5 accuracy metric: the fraction (percent)
// of issued prefetches that were demand-referenced, counting late
// (in-flight) references as useful.
func accuracy(l2 cache.Stats, mem sim.MemStats) float64 {
	if mem.PrefetchesIssued == 0 {
		return 0
	}
	useful := l2.UsefulPrefetches + mem.PrefetchLates
	if useful > mem.PrefetchesIssued {
		useful = mem.PrefetchesIssued
	}
	return 100 * float64(useful) / float64(mem.PrefetchesIssued)
}
