package core

import (
	"fmt"
	"io"

	"grp/internal/cache"
	"grp/internal/metrics"
	"grp/internal/sim"
)

// This file holds the human-readable run reporting shared by the grpsim
// and grptrace commands, so the two tools describe the memory system in
// the same vocabulary and stay in sync as stats are added.

// FprintResult writes the standard per-run report: core progress, cache
// behavior, memory traffic, prefetch effectiveness, hint census, and —
// when the run collected telemetry — miss-latency percentiles.
func FprintResult(w io.Writer, r *Result) {
	fmt.Fprintf(w, "benchmark %s  scheme %s\n", r.Bench, r.Scheme)
	fmt.Fprintf(w, "  instructions     %d\n", r.CPU.Instrs)
	fmt.Fprintf(w, "  cycles           %d\n", r.CPU.Cycles)
	fmt.Fprintf(w, "  IPC              %.3f\n", r.IPC())
	fmt.Fprintf(w, "  branches         %d (%d mispredicted)\n", r.CPU.Branches, r.CPU.Mispredicts)
	fmt.Fprintf(w, "  L1: %d accesses, %.1f%% miss\n", r.L1.Accesses, r.L1.MissRate())
	FprintMemSummary(w, r.L2, r.Mem, r.TrafficBytes)
	fmt.Fprintf(w, "  hints            %d/%d mem instructions hinted (%.1f%%)\n",
		r.Hints.Hinted(), r.Hints.MemInsts, r.Hints.HintRatio())
	FprintLatencies(w, r.Metrics)
}

// FprintMemSummary writes the L2/traffic/prefetch block of the report
// from raw memory-system stats, usable by trace-driven replays that have
// no full Result.
func FprintMemSummary(w io.Writer, l2 cache.Stats, mem sim.MemStats, trafficBytes uint64) {
	fmt.Fprintf(w, "  L2: %d accesses, %.1f%% miss\n", l2.Accesses, l2.MissRate())
	fmt.Fprintf(w, "  memory traffic   %d bytes (%d blocks)\n", trafficBytes, trafficBytes/64)
	fmt.Fprintf(w, "  prefetches       %d issued, %d useful, %d late, accuracy %.1f%%\n",
		mem.PrefetchesIssued, l2.UsefulPrefetches, mem.PrefetchLates, accuracy(l2, mem))
}

// FprintCompare writes the speedup/traffic/coverage block comparing a run
// against its no-prefetch baseline.
func FprintCompare(w io.Writer, r, base *Result) {
	fmt.Fprintf(w, "\nvs no prefetching:\n")
	fmt.Fprintf(w, "  speedup          %.3f\n", Speedup(r, base))
	fmt.Fprintf(w, "  traffic increase %.2fx\n", TrafficIncrease(r, base))
	fmt.Fprintf(w, "  coverage         %.1f%%\n", Coverage(r, base))
}

// FprintLatencies writes demand- and prefetch-latency percentiles from a
// telemetry snapshot; it is a no-op when snap is nil or the histograms
// are absent or empty.
func FprintLatencies(w io.Writer, snap *metrics.Snapshot) {
	if snap == nil {
		return
	}
	line := func(label, name string) {
		h := snap.Histogram(name)
		if h == nil || h.Count == 0 {
			return
		}
		fmt.Fprintf(w, "  %-16s p50 %.0f  p90 %.0f  p99 %.0f cycles (n=%d)\n",
			label, h.P50, h.P90, h.P99, h.Count)
	}
	line("demand latency", sim.HistDemandMissLatency)
	line("prefetch latency", sim.HistPrefetchLatency)
}

// accuracy is the paper's Table 5 accuracy metric: the fraction (percent)
// of issued prefetches that were demand-referenced, counting late
// (in-flight) references as useful.
func accuracy(l2 cache.Stats, mem sim.MemStats) float64 {
	if mem.PrefetchesIssued == 0 {
		return 0
	}
	useful := l2.UsefulPrefetches + mem.PrefetchLates
	if useful > mem.PrefetchesIssued {
		useful = mem.PrefetchesIssued
	}
	return 100 * float64(useful) / float64(mem.PrefetchesIssued)
}
