package core

import (
	"context"
	"fmt"
	"sort"

	"grp/internal/compiler"
	"grp/internal/stats"
	"grp/internal/workloads"
)

// need fetches a result or errors with a clear message about which scheme
// the experiment requires.
func (s *Suite) need(bench string, sc Scheme) (*Result, error) {
	r := s.Get(bench, sc)
	if r == nil {
		return nil, fmt.Errorf("core: experiment needs %s/%s; include it in RunSuite", bench, sc)
	}
	return r, nil
}

// Speedup returns cycles(base)/cycles(r); both runs execute the identical
// instruction stream, so the cycle ratio is the speedup.
func Speedup(r, base *Result) float64 {
	return stats.Ratio(float64(base.CPU.Cycles), float64(r.CPU.Cycles))
}

// GapFromPerfect returns the percentage by which r's cycles exceed the
// perfect-L2 run's cycles (the paper's "performance gap from perfect L2").
func GapFromPerfect(r, perfect *Result) float64 {
	return stats.Pct(float64(r.CPU.Cycles), float64(perfect.CPU.Cycles))
}

// TrafficIncrease returns r's memory traffic normalized to the baseline's.
func TrafficIncrease(r, base *Result) float64 {
	return stats.Ratio(float64(r.TrafficBytes), float64(base.TrafficBytes))
}

// Coverage returns the percentage reduction in L2 demand misses relative
// to the baseline (the paper's coverage metric, Table 5).
func Coverage(r, base *Result) float64 {
	if base.L2.Misses == 0 {
		return 0
	}
	return 100 * (float64(base.L2.Misses) - float64(r.L2.Misses)) / float64(base.L2.Misses)
}

// --------------------------------------------------------------- Figure 1 --

// Figure1 reproduces the processor-performance figure: IPC of the
// realistic system, perfect L1, perfect L2, and GRP, per benchmark, sorted
// by the realistic-vs-perfect-L2 gap as the paper sorts its bars.
func (s *Suite) Figure1() (*stats.Table, error) {
	type row struct {
		bench                  string
		base, pl1, pl2, grpIPC float64
		gap                    float64
	}
	var rows []row
	for _, b := range s.TimedBenches() {
		base, err := s.need(b, NoPrefetch)
		if err != nil {
			return nil, err
		}
		pl1, err := s.need(b, PerfectL1)
		if err != nil {
			return nil, err
		}
		pl2, err := s.need(b, PerfectL2)
		if err != nil {
			return nil, err
		}
		grp, err := s.need(b, GRPVar)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{
			bench: b, base: base.IPC(), pl1: pl1.IPC(), pl2: pl2.IPC(),
			grpIPC: grp.IPC(), gap: GapFromPerfect(base, pl2),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].gap > rows[j].gap })
	t := &stats.Table{
		Title:   "Figure 1: processor performance (IPC)",
		Headers: []string{"benchmark", "base", "perfectL1", "perfectL2", "GRP", "gap%"},
	}
	var gaps []float64
	for _, r := range rows {
		t.Add(r.bench, stats.Fmt(r.base, 3), stats.Fmt(r.pl1, 3), stats.Fmt(r.pl2, 3),
			stats.Fmt(r.grpIPC, 3), stats.Fmt(r.gap, 1))
		gaps = append(gaps, 1+r.gap/100)
	}
	t.Add("geomean gap%", "", "", "", "", stats.Fmt(100*(stats.Geomean(gaps)-1), 1))
	return t, nil
}

// Figure1Chart renders Figure 1 as grouped ASCII bars (base / perfect L1 /
// perfect L2 / GRP IPC per benchmark).
func (s *Suite) Figure1Chart() (*stats.BarChart, error) {
	c := &stats.BarChart{
		Title:  "Figure 1: processor performance (IPC)",
		Series: []string{"base", "perfectL1", "perfectL2", "grp"},
	}
	for _, b := range s.TimedBenches() {
		vals := make([]float64, 0, 4)
		for _, sc := range []Scheme{NoPrefetch, PerfectL1, PerfectL2, GRPVar} {
			r, err := s.need(b, sc)
			if err != nil {
				return nil, err
			}
			vals = append(vals, r.IPC())
		}
		c.Add(b, vals...)
	}
	return c, nil
}

// Figure12Chart renders Figure 12 as grouped ASCII bars (normalized
// traffic per scheme and benchmark).
func (s *Suite) Figure12Chart() (*stats.BarChart, error) {
	c := &stats.BarChart{
		Title:  "Figure 12: normalized memory traffic",
		Series: []string{"stride", "srp", "grp"},
	}
	for _, b := range s.TimedBenches() {
		base, err := s.need(b, NoPrefetch)
		if err != nil {
			return nil, err
		}
		vals := make([]float64, 0, 3)
		for _, sc := range []Scheme{StridePF, SRP, GRPVar} {
			r, err := s.need(b, sc)
			if err != nil {
				return nil, err
			}
			vals = append(vals, TrafficIncrease(r, base))
		}
		c.Add(b, vals...)
	}
	return c, nil
}

// ---------------------------------------------------------------- Table 1 --

// Table1Row is one summary line of the paper's Table 1.
type Table1Row struct {
	Scheme          Scheme
	Speedup         float64
	TrafficIncrease float64
	GapFromPerfect  float64
}

// Table1 reproduces the summary table: geometric-mean speedup, traffic
// increase, and performance gap from a perfect L2 for each scheme.
func (s *Suite) Table1() ([]Table1Row, *stats.Table, error) {
	schemes := []Scheme{NoPrefetch, StridePF, SRP, GRPFix, GRPVar}
	var out []Table1Row
	t := &stats.Table{
		Title:   "Table 1: summary of prefetching performance and traffic (geometric means)",
		Headers: []string{"scheme", "speedup", "traffic", "gap from perfect L2 (%)"},
	}
	for _, sc := range schemes {
		var speedups, traffics, gaps []float64
		for _, b := range s.TimedBenches() {
			base, err := s.need(b, NoPrefetch)
			if err != nil {
				return nil, nil, err
			}
			pl2, err := s.need(b, PerfectL2)
			if err != nil {
				return nil, nil, err
			}
			r, err := s.need(b, sc)
			if err != nil {
				return nil, nil, err
			}
			speedups = append(speedups, Speedup(r, base))
			traffics = append(traffics, TrafficIncrease(r, base))
			gaps = append(gaps, 1+GapFromPerfect(r, pl2)/100)
		}
		row := Table1Row{
			Scheme:          sc,
			Speedup:         stats.Geomean(speedups),
			TrafficIncrease: stats.Geomean(traffics),
			GapFromPerfect:  100 * (stats.Geomean(gaps) - 1),
		}
		out = append(out, row)
		t.Add(sc.String(), stats.Fmt(row.Speedup, 3), stats.Fmt(row.TrafficIncrease, 2),
			stats.Fmt(row.GapFromPerfect, 2))
	}
	return out, t, nil
}

// ---------------------------------------------------------------- Table 3 --

// Table3 reproduces the static hint census: memory instructions and the
// number marked spatial/pointer/recursive, the hinted ratio, and indirect
// prefetch instructions, per benchmark.
func (s *Suite) Table3() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Table 3: number of compiler hints for each benchmark",
		Headers: []string{"benchmark", "mem insts", "spatial", "pointer", "recursive", "ratio(%)", "indirect"},
	}
	for _, b := range s.Benches {
		r := s.Get(b, GRPVar)
		if r == nil {
			r = s.Get(b, NoPrefetch)
		}
		if r == nil {
			return nil, fmt.Errorf("core: Table3 needs any run of %s", b)
		}
		h := r.Hints
		t.Add(b, fmt.Sprint(h.MemInsts), fmt.Sprint(h.Spatial), fmt.Sprint(h.Pointer),
			fmt.Sprint(h.Recursive), stats.Fmt(h.HintRatio(), 1), fmt.Sprint(h.Indirect))
	}
	return t, nil
}

// --------------------------------------------------------------- Figure 9 --

// Figure9 reproduces the pointer-prefetching study on the C benchmarks:
// speedup of pure hardware pointer prefetching vs SRP, over no prefetching.
func (s *Suite) Figure9() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Figure 9: performance gains from pointer prefetching (C benchmarks)",
		Headers: []string{"benchmark", "ptr speedup", "srp speedup"},
	}
	for _, b := range s.TimedBenches() {
		spec, err := workloads.ByName(b)
		if err != nil {
			return nil, err
		}
		if !spec.CBench {
			continue
		}
		base, err := s.need(b, NoPrefetch)
		if err != nil {
			return nil, err
		}
		ptr, err := s.need(b, PointerOnly)
		if err != nil {
			return nil, err
		}
		srp, err := s.need(b, SRP)
		if err != nil {
			return nil, err
		}
		t.Add(b, stats.Fmt(Speedup(ptr, base), 3), stats.Fmt(Speedup(srp, base), 3))
	}
	return t, nil
}

// ---------------------------------------------------------- Figures 10/11 --

func (s *Suite) speedupFigure(title string, fp bool) (*stats.Table, error) {
	t := &stats.Table{
		Title:   title,
		Headers: []string{"benchmark", "stride", "srp", "grp", "perfectL2"},
	}
	for _, b := range s.TimedBenches() {
		spec, err := workloads.ByName(b)
		if err != nil {
			return nil, err
		}
		if spec.FP != fp {
			continue
		}
		base, err := s.need(b, NoPrefetch)
		if err != nil {
			return nil, err
		}
		rows := make([]string, 0, 5)
		rows = append(rows, b)
		for _, sc := range []Scheme{StridePF, SRP, GRPVar, PerfectL2} {
			r, err := s.need(b, sc)
			if err != nil {
				return nil, err
			}
			rows = append(rows, stats.Fmt(Speedup(r, base), 3))
		}
		t.Add(rows...)
	}
	return t, nil
}

// Figure10 reproduces the integer-benchmark speedup comparison.
func (s *Suite) Figure10() (*stats.Table, error) {
	return s.speedupFigure("Figure 10: speedups from region and stride prefetching (integer benchmarks)", false)
}

// Figure11 reproduces the floating-point-benchmark speedup comparison.
func (s *Suite) Figure11() (*stats.Table, error) {
	return s.speedupFigure("Figure 11: speedups from region and stride prefetching (floating-point benchmarks)", true)
}

// ---------------------------------------------------------------- Table 4 --

// Table4 reproduces the GRP/Var-vs-GRP/Fix comparison for the benchmarks
// where variable sizing matters, with the region-size distribution of the
// GRP/Var run.
func (s *Suite) Table4(benches []string) (*stats.Table, error) {
	if benches == nil {
		benches = []string{"mesa", "bzip2", "sphinx"}
	}
	sizes := []int{2, 4, 8, 16, 32, 64}
	headers := []string{"benchmark", "var traffic", "fix traffic"}
	for _, sz := range sizes {
		headers = append(headers, fmt.Sprintf("sz%d%%", sz))
	}
	t := &stats.Table{
		Title:   "Table 4: GRP/Var versus GRP/Fix (traffic normalized to no prefetching)",
		Headers: headers,
	}
	for _, b := range benches {
		base, err := s.need(b, NoPrefetch)
		if err != nil {
			return nil, err
		}
		vr, err := s.need(b, GRPVar)
		if err != nil {
			return nil, err
		}
		fx, err := s.need(b, GRPFix)
		if err != nil {
			return nil, err
		}
		row := []string{b,
			stats.Fmt(TrafficIncrease(vr, base), 2),
			stats.Fmt(TrafficIncrease(fx, base), 2),
		}
		var total uint64
		for _, n := range vr.PF.RegionSizeDist {
			total += n
		}
		for _, sz := range sizes {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(vr.PF.RegionSizeDist[sz]) / float64(total)
			}
			row = append(row, stats.Fmt(pct, 1))
		}
		t.Add(row...)
	}
	return t, nil
}

// --------------------------------------------------------------- Figure 12 --

// Figure12 reproduces the normalized-traffic chart: each scheme's memory
// traffic relative to no prefetching, per benchmark, with geometric means.
func (s *Suite) Figure12() (*stats.Table, error) {
	schemes := []Scheme{StridePF, SRP, GRPVar}
	t := &stats.Table{
		Title:   "Figure 12: normalized memory traffic",
		Headers: []string{"benchmark", "stride", "srp", "grp"},
	}
	sums := map[Scheme][]float64{}
	for _, b := range s.TimedBenches() {
		base, err := s.need(b, NoPrefetch)
		if err != nil {
			return nil, err
		}
		row := []string{b}
		for _, sc := range schemes {
			r, err := s.need(b, sc)
			if err != nil {
				return nil, err
			}
			v := TrafficIncrease(r, base)
			sums[sc] = append(sums[sc], v)
			row = append(row, stats.Fmt(v, 2))
		}
		t.Add(row...)
	}
	row := []string{"geomean"}
	for _, sc := range schemes {
		row = append(row, stats.Fmt(stats.Geomean(sums[sc]), 2))
	}
	t.Add(row...)
	return t, nil
}

// ---------------------------------------------------------------- Table 5 --

// Table5 reproduces the accuracy/coverage/traffic table: the baseline L2
// miss rate and traffic, then coverage, accuracy and traffic for stride,
// SRP and GRP.
func (s *Suite) Table5() (*stats.Table, error) {
	t := &stats.Table{
		Title: "Table 5: prefetching accuracy, coverage and memory traffic",
		Headers: []string{"benchmark", "missrate", "traffic",
			"st.cov", "st.acc", "st.traf",
			"srp.cov", "srp.acc", "srp.traf",
			"grp.cov", "grp.acc", "grp.traf"},
	}
	type agg struct{ cov, acc, traf []float64 }
	aggs := map[Scheme]*agg{StridePF: {}, SRP: {}, GRPVar: {}}
	var missrates, basetraf []float64
	for _, b := range s.TimedBenches() {
		base, err := s.need(b, NoPrefetch)
		if err != nil {
			return nil, err
		}
		row := []string{b, stats.Fmt(base.L2.MissRate(), 1), fmtKB(base.TrafficBytes)}
		missrates = append(missrates, base.L2.MissRate())
		basetraf = append(basetraf, float64(base.TrafficBytes))
		for _, sc := range []Scheme{StridePF, SRP, GRPVar} {
			r, err := s.need(b, sc)
			if err != nil {
				return nil, err
			}
			cov, acc := Coverage(r, base), r.Accuracy()
			a := aggs[sc]
			a.cov = append(a.cov, cov)
			a.acc = append(a.acc, acc)
			a.traf = append(a.traf, float64(r.TrafficBytes))
			row = append(row, stats.Fmt(cov, 1), stats.Fmt(acc, 1), fmtKB(r.TrafficBytes))
		}
		t.Add(row...)
	}
	// Arithmetic-mean summary row, as the paper's "average" line.
	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	row := []string{"average", stats.Fmt(mean(missrates), 1), fmtKB(uint64(mean(basetraf)))}
	for _, sc := range []Scheme{StridePF, SRP, GRPVar} {
		a := aggs[sc]
		row = append(row, stats.Fmt(mean(a.cov), 1), stats.Fmt(mean(a.acc), 1), fmtKB(uint64(mean(a.traf))))
	}
	t.Add(row...)
	return t, nil
}

func fmtKB(b uint64) string { return fmt.Sprintf("%dK", b/1024) }

// ---------------------------------------------------------------- Table 6 --

// Table6 reproduces the remaining-L2-miss characterization: benchmarks
// whose GRP configuration still trails a perfect L2 by more than 15%, with
// the workload's documented miss cause.
func (s *Suite) Table6() (*stats.Table, error) {
	t := &stats.Table{
		Title:   "Table 6: level 2 miss characteristics (GRP gap > 15% from perfect L2)",
		Headers: []string{"benchmark", "GRP gap (%)", "L2 miss cause"},
	}
	for _, b := range s.TimedBenches() {
		grp, err := s.need(b, GRPVar)
		if err != nil {
			return nil, err
		}
		pl2, err := s.need(b, PerfectL2)
		if err != nil {
			return nil, err
		}
		gap := GapFromPerfect(grp, pl2)
		if gap <= 15 {
			continue
		}
		spec, err := workloads.ByName(b)
		if err != nil {
			return nil, err
		}
		t.Add(b, stats.Fmt(gap, 2), spec.MissCause)
	}
	return t, nil
}

// ----------------------------------------------------- Section 5.4 policy --

// SensitivityRow is one compiler-policy result.
type SensitivityRow struct {
	Policy  string
	Speedup float64 // geomean vs no prefetching
	Traffic float64 // geomean normalized traffic
}

// RunSensitivity reproduces Section 5.4: GRP under the default, aggressive
// and conservative spatial-marking policies, through the serial reference
// runner. It runs its own simulations (the compiler output differs per
// policy).
func RunSensitivity(benches []string, opt Options) ([]SensitivityRow, *stats.Table, error) {
	return RunSensitivityWith(context.Background(), benches, opt, RunCells)
}

// RunSensitivityWith is RunSensitivity through an arbitrary CellRunner, so
// the campaign engine can parallelize and cache the per-policy sweeps.
func RunSensitivityWith(ctx context.Context, benches []string, opt Options, run CellRunner) ([]SensitivityRow, *stats.Table, error) {
	if benches == nil {
		benches = workloads.Names()
	}
	var timed []string
	for _, b := range benches {
		if Included(b) {
			timed = append(timed, b)
		}
	}
	policies := []compiler.Policy{compiler.PolicyDefault, compiler.PolicyAggressive, compiler.PolicyConservative}
	t := &stats.Table{
		Title:   "Section 5.4: compiler spatial-policy sensitivity (GRP/Var, geomeans)",
		Headers: []string{"policy", "speedup", "traffic"},
	}
	var out []SensitivityRow
	for _, pol := range policies {
		o := opt
		o.Policy = pol
		cells := SuiteCells(timed, []Scheme{NoPrefetch, GRPVar})
		rs, err := run(ctx, cells, o)
		if err != nil {
			return nil, nil, err
		}
		if len(rs) != len(cells) {
			return nil, nil, fmt.Errorf("core: runner returned %d results for %d cells", len(rs), len(cells))
		}
		var speedups, traffics []float64
		for i := 0; i < len(rs); i += 2 {
			base, grp := rs[i], rs[i+1]
			speedups = append(speedups, Speedup(grp, base))
			traffics = append(traffics, TrafficIncrease(grp, base))
		}
		row := SensitivityRow{Policy: pol.String(), Speedup: stats.Geomean(speedups), Traffic: stats.Geomean(traffics)}
		out = append(out, row)
		t.Add(row.Policy, stats.Fmt(row.Speedup, 3), stats.Fmt(row.Traffic, 2))
	}
	return out, t, nil
}
