package attrib

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestLifecycleClasses walks one prefetch through each terminal class and
// checks the tallies land where they should.
func TestLifecycleClasses(t *testing.T) {
	l := NewLedger()

	// Region 0x1000 is opened by a demand miss at PC 0x40.
	l.Hint(0x40, 0x1040)

	// Useful: issue, fill, demand hit.
	id := l.Issue(0x1080, 100, false)
	l.Fill(id, 300, true, 0, false, false)
	l.DemandHit(0x1080)

	// Late: demand merges while in flight.
	id = l.Issue(0x10c0, 110, false)
	l.Late(id)
	l.Fill(id, 320, true, 0, false, false)

	// Evicted-unused: fill displaced nothing valid, evicted untouched.
	id = l.Issue(0x1100, 120, false)
	l.Fill(id, 330, true, 0, false, false)
	l.EvictPrefetched(0x1100)

	// Pollution: fill displaced a valid demand line, evicted untouched.
	id = l.Issue(0x1140, 130, false)
	l.Fill(id, 340, true, 0x9000, true, false)
	l.EvictPrefetched(0x1140)

	// Redundant: fill was a no-op.
	id = l.Issue(0x1180, 140, false)
	l.Fill(id, 350, false, 0, false, false)

	// Cancelled in flight.
	id = l.Issue(0x11c0, 150, false)
	l.Cancel(id)

	// Resident at end of run.
	id = l.Issue(0x1200, 160, true)
	l.Fill(id, 360, true, 0, false, false)

	// The polluted victim re-misses.
	l.Hint(0x44, 0x9000)

	l.Finalize()
	if err := l.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	s := l.Summarize()
	if err := s.CheckConservation(); err != nil {
		t.Fatal(err)
	}

	want := Counts{Useful: 1, Late: 1, EvictedUnused: 1, Pollution: 1,
		Redundant: 1, Cancelled: 1, ResidentUnused: 1}
	if s.Counts != want {
		t.Errorf("class counts = %+v, want %+v", s.Counts, want)
	}
	if s.Issued != 7 {
		t.Errorf("issued = %d, want 7", s.Issued)
	}
	if s.VictimReMisses != 1 {
		t.Errorf("victim re-misses = %d, want 1", s.VictimReMisses)
	}
	if s.HintsSeen != 2 {
		t.Errorf("hints seen = %d, want 2", s.HintsSeen)
	}

	// All seven prefetches share region 0x1000 and attribute to PC 0x40.
	if len(s.Regions) != 1 || s.Regions[0].Key != 0x1000 || s.Regions[0].Issued != 7 {
		t.Errorf("regions = %+v, want one region 0x1000 with 7 issues", s.Regions)
	}
	if len(s.PCs) != 1 || s.PCs[0].Key != 0x40 || s.PCs[0].Issued != 7 {
		t.Errorf("pcs = %+v, want one pc 0x40 with 7 issues", s.PCs)
	}
}

// TestLateThenReferenced pins the upgrade-only semantics shared with the
// trace timeline: a late prefetch later demand-referenced stays late.
func TestLateThenReferenced(t *testing.T) {
	l := NewLedger()
	id := l.Issue(0x2000, 10, false)
	l.Late(id)
	l.Fill(id, 200, true, 0, false, false)
	l.DemandHit(0x2000) // L2 still had the prefetched mark set
	l.Finalize()
	if err := l.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	s := l.Summarize()
	if s.Counts.Late != 1 || s.Counts.Useful != 0 {
		t.Errorf("counts = %+v, want exactly one late", s.Counts)
	}
}

// TestDecisionCounters checks the pre-issue decision tallies stay out of
// the conservation sum.
func TestDecisionCounters(t *testing.T) {
	l := NewLedger()
	l.HoldBusy()
	l.HoldBusy()
	l.DropHeldPresent()
	l.DropSoftware()
	l.Finalize()
	if err := l.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	s := l.Summarize()
	if s.HoldsBusy != 2 || s.DropsHeldPresent != 1 || s.DropsSoftware != 1 {
		t.Errorf("decisions = %+v", s)
	}
	if s.Issued != 0 || s.Counts.Total() != 0 {
		t.Errorf("decision counters leaked into conservation: %+v", s)
	}
}

// TestHardwareTriggerPC: a prefetch into a region no demand ever missed
// attributes to PC 0.
func TestHardwareTriggerPC(t *testing.T) {
	l := NewLedger()
	l.Cancel(l.Issue(0x7000, 5, false))
	l.Finalize()
	s := l.Summarize()
	if len(s.PCs) != 1 || s.PCs[0].Key != 0 {
		t.Errorf("pcs = %+v, want the hardware-trigger pc 0", s.PCs)
	}
}

// TestSlabRecycling drives many short lifecycles through a small working
// set and checks the slab stops growing once warmed.
func TestSlabRecycling(t *testing.T) {
	l := NewLedger()
	for i := 0; i < 1000; i++ {
		block := uint64(0x4000 + (i%8)*64)
		id := l.Issue(block, uint64(i), false)
		l.Fill(id, uint64(i)+100, true, 0, false, false)
		l.DemandHit(block)
	}
	if got := len(l.entries); got > 8 {
		t.Errorf("slab grew to %d entries for an 8-block working set", got)
	}
	l.Finalize()
	if err := l.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if s := l.Summarize(); s.Counts.Useful != 1000 {
		t.Errorf("useful = %d, want 1000", s.Counts.Useful)
	}
}

// TestSteadyStateAllocs: after warmup, the full per-prefetch lifecycle
// allocates nothing.
func TestSteadyStateAllocs(t *testing.T) {
	l := NewLedger()
	drive := func() {
		for i := 0; i < 64; i++ {
			block := uint64(0x10000 + (i%16)*64)
			l.Hint(uint64(0x40+i%4), block)
			id := l.Issue(block, uint64(i), false)
			l.Fill(id, uint64(i)+100, true, block+0x8000, true, false)
			if i%2 == 0 {
				l.DemandHit(block)
			} else {
				l.EvictPrefetched(block)
			}
		}
	}
	drive()
	drive()
	if allocs := testing.AllocsPerRun(100, drive); allocs != 0 {
		t.Errorf("steady-state ledger allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestSummaryJSONRoundTrip: the summary must survive the campaign cache's
// JSON serialization byte-exactly.
func TestSummaryJSONRoundTrip(t *testing.T) {
	l := NewLedger()
	l.Hint(0x40, 0x1000)
	id := l.Issue(0x1040, 10, false)
	l.Fill(id, 200, true, 0x9000, true, false)
	l.EvictPrefetched(0x1040)
	l.Issue(0x1080, 20, true)
	l.Finalize()
	s := l.Summarize()

	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Errorf("summary does not round-trip:\n first: %s\nsecond: %s", data, data2)
	}
	if err := back.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestNilSafe: every ledger method must be a no-op on a nil receiver, the
// same contract as the other telemetry sinks.
func TestNilSafe(t *testing.T) {
	var l *Ledger
	l.Hint(1, 2)
	if id := l.Issue(3, 4, false); id != -1 {
		t.Errorf("nil ledger Issue returned %d, want -1", id)
	}
	l.HoldBusy()
	l.DropHeldPresent()
	l.DropSoftware()
	l.Cancel(3)
	l.Late(3)
	l.Fill(3, 5, true, 0, false, false)
	l.DemandHit(3)
	l.EvictPrefetched(3)
	l.Finalize()
	if err := l.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if s := l.Summarize(); s != nil {
		t.Errorf("nil ledger summarized to %+v", s)
	}
	var ns *Summary
	if err := ns.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if ns.Accuracy() != 0 {
		t.Error("nil summary accuracy not 0")
	}
}

// TestTopGroupsOrdering: rows sort by issued desc, key asc, and cut at
// MaxGroups with the total preserved.
func TestTopGroupsOrdering(t *testing.T) {
	l := NewLedger()
	for r := 0; r < MaxGroups+10; r++ {
		base := uint64(r+1) * RegionBytes
		n := 1 + r%3
		for i := 0; i < n; i++ {
			block := base + uint64(i)*64
			l.Cancel(l.Issue(block, uint64(r), false))
		}
	}
	l.Finalize()
	s := l.Summarize()
	if len(s.Regions) != MaxGroups {
		t.Fatalf("kept %d regions, want %d", len(s.Regions), MaxGroups)
	}
	if s.RegionsTotal != MaxGroups+10 {
		t.Errorf("regions_total = %d, want %d", s.RegionsTotal, MaxGroups+10)
	}
	for i := 1; i < len(s.Regions); i++ {
		a, b := s.Regions[i-1], s.Regions[i]
		if a.Issued < b.Issued || (a.Issued == b.Issued && a.Key >= b.Key) {
			t.Fatalf("rows %d,%d out of order: %+v then %+v", i-1, i, a, b)
		}
	}
}
