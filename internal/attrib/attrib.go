// Package attrib is the prefetch lifecycle attribution ledger: it follows
// every prefetch the memory system issues from the hint (or hardware
// trigger) that caused it, through the prioritizer's decision, to its fill
// and final outcome, and classifies each one into a closed taxonomy with a
// conservation invariant — every issued prefetch lands in exactly one
// outcome class, so class totals always sum to the issue count.
//
// The paper argues in aggregates (accuracy, coverage, pollution); the
// ledger supplies the *causes*: which 4 KB region, which triggering PC,
// and which prioritizer decision produced the useful — or wasted —
// traffic. That per-outcome attribution is exactly the signal a
// feedback-directed scheme (the ROADMAP's grp-adaptive item) consumes.
//
// The implementation follows the hot-path idiom of internal/sim: entries
// live in a slab indexed by int32 with a free list, the block → entry
// table is open-addressed (internal/oamap), and per-region/per-PC
// aggregates are plain maps that stop growing once the working set is
// resident — zero heap allocations in steady state. Every public method
// is safe on a nil *Ledger, so the memory system guards instrumentation
// with a single nil check exactly like its other telemetry sinks.
package attrib

import (
	"fmt"
	"sync"

	"grp/internal/oamap"
)

// Class is a terminal outcome in the closed taxonomy. Every issued
// prefetch is assigned exactly one Class by the time Finalize runs.
type Class uint8

// The outcome taxonomy (DESIGN.md §11 defines each precisely).
const (
	// ClassUseful: the block was demand-referenced after its fill landed
	// in the L2 — the prefetch fully hid the miss.
	ClassUseful Class = iota
	// ClassLate: a demand access merged with the prefetch while it was
	// still in flight — correct but only partially hiding the latency.
	ClassLate
	// ClassEvictedUnused: the filled block was evicted untouched without
	// having displaced live demand data (its fill victim was invalid or
	// itself an unused prefetch).
	ClassEvictedUnused
	// ClassPollution: the prefetch was never demand-referenced and its
	// fill evicted a valid demand-resident line — wasted traffic that also
	// displaced useful data (victim-caused pollution).
	ClassPollution
	// ClassRedundant: the fill was a no-op because the block was already
	// present in the L2 when the data arrived.
	ClassRedundant
	// ClassCancelled: fault injection cancelled the in-flight prefetch
	// before its data landed.
	ClassCancelled
	// ClassResidentUnused: still untouched (resident or in flight) when
	// the run ended — not demonstrably wasted, just never paid off.
	ClassResidentUnused

	NumClasses = int(ClassResidentUnused) + 1
)

var classNames = [NumClasses]string{
	"useful", "late", "evicted-unused", "pollution", "redundant",
	"cancelled", "resident-unused",
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if int(c) < NumClasses {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// ClassNames lists the taxonomy in Class order, for table headers.
func ClassNames() []string {
	out := make([]string, NumClasses)
	copy(out, classNames[:])
	return out
}

// RegionBytes is the attribution granularity: the paper's 4 KB region.
const RegionBytes = 4096

// RegionOf returns the 4 KB-aligned region base of a block address.
func RegionOf(block uint64) uint64 { return block &^ uint64(RegionBytes-1) }

const noClass Class = 0xff

// entry is one prefetch in the slab. A terminal entry is not deleted:
// it stays in the slab and in byBlock as a corpse (live=false), and a
// re-issue of the same block reuses its slot in place. That trades slab
// high-water mark (distinct blocks prefetched, instead of simultaneously
// live ones) for zero backward-shift deletions on the classify path —
// the table memory is pooled across runs anyway (see Recycle).
type entry struct {
	block        uint64
	pc           uint64 // triggering PC (0: hardware-internal trigger)
	class        Class  // noClass until classified
	victimDemand bool   // the fill evicted a valid demand-resident line
	live         bool
}

// Counts carries one tally per taxonomy class. The JSON field names are
// stable: they are serialized into campaign cache entries.
type Counts struct {
	Useful         uint64 `json:"useful"`
	Late           uint64 `json:"late"`
	EvictedUnused  uint64 `json:"evicted_unused"`
	Pollution      uint64 `json:"pollution"`
	Redundant      uint64 `json:"redundant"`
	Cancelled      uint64 `json:"cancelled"`
	ResidentUnused uint64 `json:"resident_unused"`
}

// add increments the tally for class c.
func (k *Counts) add(c Class) {
	switch c {
	case ClassUseful:
		k.Useful++
	case ClassLate:
		k.Late++
	case ClassEvictedUnused:
		k.EvictedUnused++
	case ClassPollution:
		k.Pollution++
	case ClassRedundant:
		k.Redundant++
	case ClassCancelled:
		k.Cancelled++
	case ClassResidentUnused:
		k.ResidentUnused++
	}
}

// Get returns the tally for class c.
func (k Counts) Get(c Class) uint64 {
	switch c {
	case ClassUseful:
		return k.Useful
	case ClassLate:
		return k.Late
	case ClassEvictedUnused:
		return k.EvictedUnused
	case ClassPollution:
		return k.Pollution
	case ClassRedundant:
		return k.Redundant
	case ClassCancelled:
		return k.Cancelled
	case ClassResidentUnused:
		return k.ResidentUnused
	}
	return 0
}

// Total sums every class tally.
func (k Counts) Total() uint64 {
	return k.Useful + k.Late + k.EvictedUnused + k.Pollution +
		k.Redundant + k.Cancelled + k.ResidentUnused
}

// groupStats is the per-region / per-PC accumulator.
type groupStats struct {
	issued uint64
	counts Counts
}

// Ledger is the event ledger. Attach one per run via the memory system;
// it is not safe for concurrent use (the simulation is single-goroutine,
// like the rest of the telemetry layer).
type Ledger struct {
	// Hot per-event state leads the struct so the fields every Hint/Issue
	// touches share the ledger's first host cache line.
	lastRegion uint64 // Hint one-entry cache: last missing region...
	lastPC     uint64 // ...and the PC that missed it
	issued     uint64
	hintsSeen  uint64
	// byBlock maps a block to its slab entry (live or corpse). victims
	// tracks demand-resident blocks displaced by prefetch fills, so later
	// re-misses to them can be counted (VictimReMisses). regionPC
	// remembers the last demand-missing PC per 4 KB region — the
	// attribution link from a hardware-triggered region prefetch back to
	// the instruction whose miss (and hint) opened the region — written
	// on every demand L2 miss through the lastRegion/lastPC cache (misses
	// stream through a region before moving on, so consecutive writes
	// usually repeat the same pair).
	byBlock  *oamap.I32
	victims  *oamap.U8
	regionPC *oamap.U64
	haveLast bool

	entries []entry

	perRegion map[uint64]*groupStats
	perPC     map[uint64]*groupStats

	// One-entry caches over the aggregate maps: a region prefetch issues
	// up to 64 blocks with one region and one trigger PC, so consecutive
	// fold calls overwhelmingly repeat the same group.
	rgKey uint64
	rg    *groupStats
	pcKey uint64
	pg    *groupStats

	holdsBusy    uint64
	dropsHeld    uint64
	dropsSW      uint64
	victimRemiss uint64
	crossPoll    uint64
	classTotals  Counts
}

// ledgerPool recycles ledgers across runs: a campaign executes thousands
// of cells per process, and each ledger carries ~100 KB of slab and table
// backing that would otherwise be fresh garbage per cell.
var ledgerPool = sync.Pool{New: func() any {
	// Pre-size for a typical cell: the slab's high-water mark tracks the
	// simultaneously resident prefetched lines (hundreds to a few
	// thousand), and growing mid-run costs a rehash per doubling on the
	// per-issue path.
	return &Ledger{
		entries:   make([]entry, 0, 1024),
		byBlock:   oamap.NewI32Sized(1024),
		victims:   oamap.NewU8(),
		regionPC:  oamap.NewU64Sized(256),
		perRegion: make(map[uint64]*groupStats, 64),
		perPC:     make(map[uint64]*groupStats, 64),
	}
}}

// NewLedger returns an empty ledger, reusing a recycled one when
// available (see Recycle).
func NewLedger() *Ledger {
	return ledgerPool.Get().(*Ledger)
}

// Recycle resets the ledger and returns it to the pool for a later
// NewLedger call. The caller must drop every reference first; Summarize
// copies everything it exports, so a taken Summary stays valid.
func (l *Ledger) Recycle() {
	if l == nil {
		return
	}
	l.entries = l.entries[:0]
	l.byBlock.Reset()
	l.victims.Reset()
	l.regionPC.Reset()
	clear(l.perRegion)
	clear(l.perPC)
	l.lastRegion, l.lastPC, l.haveLast = 0, 0, false
	l.rgKey, l.rg, l.pcKey, l.pg = 0, nil, 0, nil
	l.issued, l.hintsSeen, l.holdsBusy, l.dropsHeld, l.dropsSW = 0, 0, 0, 0, 0
	l.victimRemiss, l.crossPoll = 0, 0
	l.classTotals = Counts{}
	ledgerPool.Put(l)
}

// classify assigns the terminal class and retires the entry to a corpse.
// Aggregation is deferred: the corpse's tallies fold into the class and
// group totals when its slot is reused or at Finalize (see fold), so the
// per-event path writes two bytes instead of updating three accumulators.
func (l *Ledger) classify(idx int32, c Class) {
	e := &l.entries[idx]
	e.class = c
	e.live = false
}

// fold adds one incarnation's issue and terminal outcome to the class
// totals and both group aggregates. Every incarnation folds exactly once:
// at slot reuse for the dying one, at Finalize for the slab's survivors.
func (l *Ledger) fold(e *entry) {
	l.classTotals.add(e.class)
	g := l.regionGroup(RegionOf(e.block))
	g.issued++
	g.counts.add(e.class)
	p := l.pcGroup(e.pc)
	p.issued++
	p.counts.add(e.class)
}

// regionGroup returns (creating if needed) the per-region accumulator,
// through the one-entry cache. Groups are never deleted, so the cached
// pointer can never go stale.
func (l *Ledger) regionGroup(key uint64) *groupStats {
	if l.rg != nil && l.rgKey == key {
		return l.rg
	}
	g := l.perRegion[key]
	if g == nil {
		g = &groupStats{}
		l.perRegion[key] = g
	}
	l.rgKey, l.rg = key, g
	return g
}

// pcGroup is regionGroup for the per-PC aggregates.
func (l *Ledger) pcGroup(key uint64) *groupStats {
	if l.pg != nil && l.pcKey == key {
		return l.pg
	}
	g := l.perPC[key]
	if g == nil {
		g = &groupStats{}
		l.perPC[key] = g
	}
	l.pcKey, l.pg = key, g
	return g
}

// Hint records a demand L2 miss — the event that plants hints into the
// prefetch engine — attributing the missing PC to the block's region. It
// also credits a victim re-miss when the missed block was previously
// displaced by an unused prefetch fill (the demonstrated cost of
// pollution). Nil-safe.
func (l *Ledger) Hint(pc, block uint64) {
	if l == nil {
		return
	}
	l.hintsSeen++
	// The fast path — same region and PC as the previous miss, no armed
	// victims — stays small enough to inline into the memory system's
	// demand-miss path; the table updates live in the slow halves.
	if region := block &^ uint64(RegionBytes-1); !l.haveLast || region != l.lastRegion || pc != l.lastPC {
		l.hintRegion(region, pc)
	}
	if l.victims.Len() > 0 {
		l.hintVictim(block)
	}
}

// hintRegion records a new region/PC attribution pair (Hint's slow path).
func (l *Ledger) hintRegion(region, pc uint64) {
	l.regionPC.Set(region, pc)
	l.lastRegion, l.lastPC, l.haveLast = region, pc, true
}

// hintVictim credits a re-miss to a displaced victim (Hint's slow path).
func (l *Ledger) hintVictim(block uint64) {
	if _, ok := l.victims.Get(block); ok {
		l.victims.Delete(block)
		l.victimRemiss++
	}
}

// Issue opens a ledger entry for a prefetch submitted to the memory
// controller at cycle now. The triggering PC is resolved through the
// region map (0 when the region was never demand-missed — a pure
// hardware-internal trigger such as a pointer-chase target). It returns
// the entry's slab index; the memory system stores it on its in-flight
// line and hands it back to Fill, Late, and Cancel, so the in-flight
// phase needs no block lookups at all. Nil-safe (returns -1).
func (l *Ledger) Issue(block, now uint64, software bool) int32 {
	if l == nil {
		return -1
	}
	idx, ok := l.byBlock.Get(block)
	if ok {
		// Reuse the block's slab slot in place, folding out the previous
		// incarnation. Normally it is a corpse; a still-live unclassified
		// entry cannot happen (a present or in-flight block is never
		// re-issued), but close it as resident-unused defensively rather
		// than orphan the tally.
		e := &l.entries[idx]
		if e.class == noClass {
			e.class = ClassResidentUnused
		}
		l.fold(e)
	} else {
		l.entries = append(l.entries, entry{})
		idx = int32(len(l.entries) - 1)
		l.byBlock.Set(block, idx)
	}
	// Resolve the triggering PC. A region prefetch bursts right after the
	// demand miss that opened the region, so the Hint one-entry cache
	// usually answers without probing the region table.
	var pc uint64
	if region := RegionOf(block); l.haveLast && region == l.lastRegion {
		pc = l.lastPC
	} else {
		pc, _ = l.regionPC.Get(region)
	}
	l.entries[idx] = entry{block: block, pc: pc, class: noClass, live: true}
	l.issued++
	return idx
}

// HoldBusy records a prioritizer hold: a popped candidate parked because
// no DRAM channel went idle inside the pump window. Nil-safe.
func (l *Ledger) HoldBusy() {
	if l != nil {
		l.holdsBusy++
	}
}

// DropHeldPresent records a held candidate discarded because its block
// became cached (or in flight) while parked. Nil-safe.
func (l *Ledger) DropHeldPresent() {
	if l != nil {
		l.dropsHeld++
	}
}

// DropSoftware records a software PREF dropped pre-issue (block already
// cached or in flight). Nil-safe.
func (l *Ledger) DropSoftware() {
	if l != nil {
		l.dropsSW++
	}
}

// Cancel classifies the in-flight prefetch at slab index idx (from
// Issue) as fault-cancelled. Nil-safe, and a no-op on idx < 0.
func (l *Ledger) Cancel(idx int32) {
	if l == nil || idx < 0 {
		return
	}
	if l.entries[idx].class == noClass {
		l.classify(idx, ClassCancelled)
	}
}

// Late marks the in-flight prefetch at slab index idx (from Issue) as
// demand-merged: correct but not timely. The entry stays registered (its
// fill still lands and the block remains tracked until the cache forgets
// it) but its class is terminal now; later events on the block are
// bookkeeping only. Nil-safe, and a no-op on idx < 0.
func (l *Ledger) Late(idx int32) {
	if l == nil || idx < 0 {
		return
	}
	if e := &l.entries[idx]; e.class == noClass {
		e.class = ClassLate
	}
}

// Fill records the data of the prefetch at slab index idx (from Issue)
// landing in the L2. filled is false when the cache fill was a no-op
// (block already present — the redundant class). When the fill evicted a
// victim, victimValid/victimPrefetched describe it: a valid non-prefetched
// victim is live demand data, which arms the pollution classification and
// the victim re-miss tracker. Nil-safe, and a no-op on idx < 0.
func (l *Ledger) Fill(idx int32, now uint64, filled bool, victim uint64, victimValid, victimPrefetched bool) {
	if l == nil || idx < 0 {
		return
	}
	e := &l.entries[idx]
	if !e.live {
		return
	}
	if !filled {
		if e.class == noClass {
			l.classify(idx, ClassRedundant)
		} else {
			// Already terminal (late): the no-op fill ends tracking.
			l.release(idx)
		}
		return
	}
	if victimValid && !victimPrefetched {
		e.victimDemand = true
		l.victims.Set(victim, 1)
	}
}

// CrossCoreVictim records that the prefetch at slab index idx (from
// Issue) displaced another core's valid demand-resident line in a shared
// cache — cross-core pollution, charged to the issuing core's ledger.
// The entry is marked victim-demand (so an unused eviction classifies as
// pollution), but the victim itself is tracked in its owner's ledger via
// VictimDisplaced, not here: the two cores' address spaces are disjoint,
// so arming this ledger's re-miss table with a foreign block could only
// ever produce false credits. Nil-safe, and a no-op on idx < 0.
func (l *Ledger) CrossCoreVictim(idx int32) {
	if l == nil || idx < 0 {
		return
	}
	if e := &l.entries[idx]; e.live {
		e.victimDemand = true
	}
	l.crossPoll++
}

// VictimDisplaced arms the victim re-miss tracker for a local block that
// *another* core's prefetch fill displaced from a shared cache, so this
// core's later demand re-miss to it is counted in VictimReMisses — the
// demonstrated cost of suffering cross-core pollution. Nil-safe.
func (l *Ledger) VictimDisplaced(block uint64) {
	if l == nil {
		return
	}
	l.victims.Set(block, 1)
}

// release ends tracking for an already-terminal entry (a late prefetch
// whose block the cache finally forgot) without re-classifying.
func (l *Ledger) release(idx int32) {
	l.entries[idx].live = false
}

// DemandHit records a demand reference to a resident prefetched block —
// the useful case — and ends tracking for it (the cache clears the
// block's prefetched mark on the same access). Nil-safe.
func (l *Ledger) DemandHit(block uint64) {
	if l == nil {
		return
	}
	idx, ok := l.byBlock.Get(block)
	if !ok || !l.entries[idx].live {
		return
	}
	if l.entries[idx].class == noClass {
		l.classify(idx, ClassUseful)
	} else {
		l.release(idx)
	}
}

// EvictPrefetched records the eviction of a still-prefetch-marked block.
// An unclassified entry becomes evicted-unused, or pollution when its own
// fill displaced live demand data. Nil-safe.
func (l *Ledger) EvictPrefetched(block uint64) {
	if l == nil {
		return
	}
	idx, ok := l.byBlock.Get(block)
	if !ok || !l.entries[idx].live {
		return
	}
	if e := &l.entries[idx]; e.class == noClass {
		if e.victimDemand {
			l.classify(idx, ClassPollution)
		} else {
			l.classify(idx, ClassEvictedUnused)
		}
	} else {
		l.release(idx)
	}
}

// Finalize classifies every prefetch still unresolved at end of run as
// resident-unused (still in the cache — or in flight — untouched) and
// folds the whole slab into the deferred aggregates in one pass. Call
// once, after the memory system drains. Nil-safe.
func (l *Ledger) Finalize() {
	if l == nil {
		return
	}
	for i := range l.entries {
		e := &l.entries[i]
		if e.class == noClass {
			e.class = ClassResidentUnused
		}
		e.live = false
		l.fold(e)
	}
}

// Issued returns the running issue count. Nil-safe.
func (l *Ledger) Issued() uint64 {
	if l == nil {
		return 0
	}
	return l.issued
}

// Classified returns the count of prefetches folded into the class
// totals so far (reused incarnations mid-run, everything after Finalize);
// it can never exceed Issued. Nil-safe.
func (l *Ledger) Classified() uint64 {
	if l == nil {
		return 0
	}
	return l.classTotals.Total()
}

// CheckConservation verifies the ledger's core invariant: every issued
// prefetch is accounted in exactly one terminal class. It is meaningful
// after Finalize; before that, still-live entries legitimately make the
// class total fall short.
func (l *Ledger) CheckConservation() error {
	if l == nil {
		return nil
	}
	if got := l.classTotals.Total(); got != l.issued {
		return fmt.Errorf("attrib: class totals %d != issued %d (conservation violated)", got, l.issued)
	}
	var region, pc Counts
	sumInto := func(dst *Counts, m map[uint64]*groupStats) uint64 {
		var issued uint64
		for _, g := range m {
			issued += g.issued
			dst.Useful += g.counts.Useful
			dst.Late += g.counts.Late
			dst.EvictedUnused += g.counts.EvictedUnused
			dst.Pollution += g.counts.Pollution
			dst.Redundant += g.counts.Redundant
			dst.Cancelled += g.counts.Cancelled
			dst.ResidentUnused += g.counts.ResidentUnused
		}
		return issued
	}
	if got := sumInto(&region, l.perRegion); got != l.issued || region != l.classTotals {
		return fmt.Errorf("attrib: per-region totals (issued %d, classes %+v) disagree with ledger (issued %d, classes %+v)",
			got, region, l.issued, l.classTotals)
	}
	if got := sumInto(&pc, l.perPC); got != l.issued || pc != l.classTotals {
		return fmt.Errorf("attrib: per-PC totals (issued %d, classes %+v) disagree with ledger (issued %d, classes %+v)",
			got, pc, l.issued, l.classTotals)
	}
	return nil
}
