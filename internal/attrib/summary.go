package attrib

import (
	"fmt"
	"sort"
)

// GroupSummary is one per-region or per-PC attribution row.
type GroupSummary struct {
	// Key is the region base address (per-region rows) or the triggering
	// PC (per-PC rows; 0 = hardware-internal trigger, e.g. pointer-chase
	// targets whose region no demand access ever missed).
	Key    uint64 `json:"key"`
	Issued uint64 `json:"issued"`
	Counts Counts `json:"counts"`
}

// Summary is the end-of-run attribution digest: small, deterministic, and
// JSON-round-trippable, so it persists inside campaign cache entries. The
// per-region and per-PC breakdowns keep the top MaxGroups rows by issue
// count (ties broken by key) plus a count of groups beyond the cut.
type Summary struct {
	Issued    uint64 `json:"issued"`
	Counts    Counts `json:"counts"`
	HintsSeen uint64 `json:"hints_seen"`

	// Prioritizer / pre-issue decisions (not part of the issued total:
	// these prefetches never reached the controller as counted issues).
	HoldsBusy        uint64 `json:"holds_busy"`
	DropsHeldPresent uint64 `json:"drops_held_present"`
	DropsSoftware    uint64 `json:"drops_software"`

	// VictimReMisses counts demand misses to blocks that an unused
	// prefetch fill had displaced — pollution's demonstrated cost.
	VictimReMisses uint64 `json:"victim_remisses"`

	// CrossCorePollution counts this core's prefetch fills that evicted
	// another core's valid demand-resident line from the shared L2 (co-run
	// mode only; always zero solo). Like the other annotations it sits
	// outside the conservation identity: the same prefetch still lands in
	// exactly one taxonomy class.
	CrossCorePollution uint64 `json:"cross_core_pollution,omitempty"`

	Regions      []GroupSummary `json:"regions"`
	PCs          []GroupSummary `json:"pcs"`
	RegionsTotal int            `json:"regions_total"`
	PCsTotal     int            `json:"pcs_total"`
}

// MaxGroups bounds the per-region and per-PC rows kept in a Summary.
const MaxGroups = 64

// Summarize freezes the ledger into its serializable digest. Call after
// Finalize. Nil-safe (returns nil).
func (l *Ledger) Summarize() *Summary {
	if l == nil {
		return nil
	}
	s := &Summary{
		Issued:             l.issued,
		Counts:             l.classTotals,
		HintsSeen:          l.hintsSeen,
		HoldsBusy:          l.holdsBusy,
		DropsHeldPresent:   l.dropsHeld,
		DropsSoftware:      l.dropsSW,
		VictimReMisses:     l.victimRemiss,
		CrossCorePollution: l.crossPoll,
		RegionsTotal:       len(l.perRegion),
		PCsTotal:           len(l.perPC),
	}
	s.Regions = topGroups(l.perRegion)
	s.PCs = topGroups(l.perPC)
	return s
}

// topGroups flattens an aggregate map into rows sorted by issue count
// descending (key ascending on ties — full determinism), cut at MaxGroups.
func topGroups(m map[uint64]*groupStats) []GroupSummary {
	rows := make([]GroupSummary, 0, len(m))
	for k, g := range m {
		if g.issued == 0 && g.counts.Total() == 0 {
			continue
		}
		rows = append(rows, GroupSummary{Key: k, Issued: g.issued, Counts: g.counts})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Issued != rows[j].Issued {
			return rows[i].Issued > rows[j].Issued
		}
		return rows[i].Key < rows[j].Key
	})
	if len(rows) > MaxGroups {
		rows = rows[:MaxGroups]
	}
	return rows
}

// CheckConservation verifies the summary-level invariant: class totals
// sum exactly to the issue count, and every kept row's classes sum to its
// own issue count adjusted for rows below the cut.
func (s *Summary) CheckConservation() error {
	if s == nil {
		return nil
	}
	if got := s.Counts.Total(); got != s.Issued {
		return fmt.Errorf("attrib: summary class totals %d != issued %d", got, s.Issued)
	}
	for _, r := range s.Regions {
		if r.Counts.Total() != r.Issued {
			return fmt.Errorf("attrib: region %#x classes %d != issued %d", r.Key, r.Counts.Total(), r.Issued)
		}
	}
	for _, r := range s.PCs {
		if r.Counts.Total() != r.Issued {
			return fmt.Errorf("attrib: pc %#x classes %d != issued %d", r.Key, r.Counts.Total(), r.Issued)
		}
	}
	return nil
}

// Accuracy returns the ledger's accuracy view in percent: prefetches that
// paid off (useful + late) over issued.
func (s *Summary) Accuracy() float64 {
	if s == nil || s.Issued == 0 {
		return 0
	}
	return 100 * float64(s.Counts.Useful+s.Counts.Late) / float64(s.Issued)
}
