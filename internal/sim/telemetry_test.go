package sim

import (
	"testing"

	"grp/internal/isa"
	"grp/internal/metrics"
	"grp/internal/prefetch"
	"grp/internal/trace"
)

// TestAttachTelemetryRegistry checks that attaching telemetry to a live
// memory system registers the hierarchy's instruments and that probes see
// the system's real state.
func TestAttachTelemetryRegistry(t *testing.T) {
	ms := newSys(prefetch.NewSRP())
	reg := metrics.NewRegistry()
	smp := metrics.NewSampler(256)
	ms.AttachTelemetry(reg, smp, nil)

	for _, name := range []string{
		"l1d.accesses", "l2.miss_rate", "dram.utilization",
		HistDemandMissLatency, HistPrefetchLatency,
		SeriesInflightPF, SeriesMSHROcc, SeriesPFQueueOcc,
	} {
		found := false
		for _, n := range reg.Names() {
			if n == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registry missing %q after AttachTelemetry", name)
		}
	}

	// Drive enough misses to trip the SRP region prefetcher and cross
	// several sampler boundaries.
	now := uint64(100)
	for i := uint64(0); i < 32; i++ {
		now = ms.Load(0, 0x40000+i*4096, isa.HintNone, isa.FixedRegion, now+50)
	}
	ms.Drain()

	snap := metrics.Snap(reg, smp)
	if h := snap.Histogram(HistDemandMissLatency); h == nil || h.Count == 0 {
		t.Error("demand miss latency histogram empty after 32 cold misses")
	}
	if h := snap.Histogram(HistPrefetchLatency); h == nil || h.Count == 0 {
		t.Error("prefetch latency histogram empty despite SRP issuing")
	}
	if s := snap.GetSeries(SeriesL2MissRate); s == nil || len(s.Samples) < 2 {
		t.Error("L2 miss-rate series did not accumulate samples")
	}
}

// TestTimelinePrefetchOutcomes checks the span lifecycle: an SRP-covered
// demand hit upgrades its prefetch span to "useful".
func TestTimelinePrefetchOutcomes(t *testing.T) {
	ms := newSys(prefetch.NewSRP())
	tl := trace.NewTimeline()
	ms.AttachTelemetry(nil, nil, tl)

	d1 := ms.Load(0, 0x10000, isa.HintNone, isa.FixedRegion, 100)
	ms.Advance(d1 + 20000)
	if ms.Stats().PrefetchesIssued == 0 {
		t.Fatal("SRP should have issued prefetches")
	}
	before := tl.Len()
	if before == 0 {
		t.Fatal("timeline recorded no prefetch/demand events")
	}
	// Hit a prefetched neighbor: the span's outcome flips to useful in
	// place, and the hint→prefetch flow finishes — exactly one flow-finish
	// event is appended, nothing else.
	ms.Load(0, 0x10040, isa.HintNone, isa.FixedRegion, d1+30000)
	if tl.Len() != before+1 {
		t.Errorf("outcome upgrade appended %d events, want exactly the flow finish", tl.Len()-before)
	}
}
