// legacy.go freezes the pre-overhaul memory system verbatim. It exists
// for three jobs and no others: regenerating golden provenance, the
// conformance timing-equivalence mode (old-vs-new cycle equality), and
// the BenchmarkCellHotPath speedup baseline. It is selected only through
// core.Options.LegacyEngine and is scheduled for deletion once the
// calendar-queue engine has survived a release of golden runs.
package sim

import (
	"container/heap"
	"fmt"
	"strings"

	"grp/internal/attrib"
	"grp/internal/cache"
	"grp/internal/dram"
	"grp/internal/faults"
	"grp/internal/isa"
	"grp/internal/metrics"
	"grp/internal/prefetch"
	"grp/internal/trace"
)

// LegacyMemSystem is the full memory hierarchy with prefetching.
type LegacyMemSystem struct {
	cfg    MemConfig
	L1     *cache.Cache
	L2     *cache.Cache
	Dram   *dram.Controller
	Engine prefetch.Engine

	l2MSHR *cache.MSHRFile

	inflight map[uint64]*inflightLine
	arrivals arrivalHeap

	cursor      uint64 // prefetch pump has run up to this cycle
	inflightPF  int
	lastSubmit  uint64 // monotonic clamp for request submission times
	nextSeq     uint64 // issue sequence numbers for arrival tie-breaking
	stats       MemStats
	prioritizer bool // issue prefetches only into idle channels

	// held is a popped prefetch candidate waiting for an idle channel (the
	// prioritizer's holding register); heldValid marks it live.
	held      uint64
	heldValid bool

	// Telemetry sinks; all nil when no telemetry is attached, so the hot
	// path pays one predictable branch per sink and nothing else.
	sampler    *metrics.Sampler
	timeline   *trace.Timeline
	histDemand *metrics.Histogram // demand L2-miss service latency
	histPF     *metrics.Histogram // prefetch issue→fill latency

	// Robustness layer; all optional and nil/false by default.
	faults    *faults.Injector
	watchdog  *Watchdog
	checkInv  bool
	checkGap  uint64 // accesses between periodic invariant checks
	sinceInv  uint64
	cancelled int // cancelled entries still parked in the arrivals heap

	// fillTamper, when non-nil, is invoked with the block address of every
	// prefetch fill the moment it lands in the L2. It exists solely for the
	// conformance harness's known-bad self-test: a tamperer that corrupts
	// the block's backing data models a broken prefetch data path, which the
	// differential harness must catch. Never set outside tests.
	fillTamper func(block uint64)
}

// AttachTelemetry connects the hierarchy to the telemetry layer. Any of
// the sinks may be nil: a registry alone gives end-of-run counters and
// latency histograms, a sampler adds the cycle-driven time series, and a
// timeline records per-event spans for Perfetto export. Call it once,
// before simulation starts.
func (ms *LegacyMemSystem) AttachTelemetry(reg *metrics.Registry, smp *metrics.Sampler, tl *trace.Timeline) {
	ms.sampler = smp
	ms.timeline = tl
	clock := func() uint64 { return ms.cursor }

	if reg != nil {
		ms.L1.RegisterMetrics(reg)
		ms.L2.RegisterMetrics(reg)
		ms.Dram.RegisterMetrics(reg, clock)
		reg.MustGauge("mem.loads", func() float64 { return float64(ms.stats.Loads) })
		reg.MustGauge("mem.stores", func() float64 { return float64(ms.stats.Stores) })
		reg.MustGauge("mem.inflight_merges", func() float64 { return float64(ms.stats.InflightMerges) })
		reg.MustGauge("mem.prefetch_lates", func() float64 { return float64(ms.stats.PrefetchLates) })
		reg.MustGauge("mem.prefetches_issued", func() float64 { return float64(ms.stats.PrefetchesIssued) })
		reg.MustGauge("mem.sw_prefetches", func() float64 { return float64(ms.stats.SWPrefetches) })
		reg.MustGauge("mem.prioritizer_holds", func() float64 { return float64(ms.stats.PrioritizerHolds) })
		reg.MustGauge(SeriesInflightPF, func() float64 { return float64(ms.inflightPF) })
		reg.MustGauge(SeriesMSHROcc, func() float64 { return float64(ms.l2MSHR.BusyAt(ms.cursor)) })
		if ql, ok := ms.Engine.(prefetch.QueueLenner); ok {
			reg.MustGauge(SeriesPFQueueOcc, func() float64 { return float64(ql.QueueLen()) })
		}
		// Latency buckets: 16 cycles up to ~170k, covering an L2 hit floor
		// through heavy queueing; the memory round trip is ~160-220.
		bounds := metrics.ExponentialBuckets(16, 1.5, 24)
		ms.histDemand = reg.MustHistogram(HistDemandMissLatency, bounds)
		ms.histPF = reg.MustHistogram(HistPrefetchLatency, bounds)
	}

	if smp != nil {
		smp.Watch(SeriesL2MissRate, func() float64 { return ms.L2.Stats().MissRate() })
		if ql, ok := ms.Engine.(prefetch.QueueLenner); ok {
			smp.Watch(SeriesPFQueueOcc, func() float64 { return float64(ql.QueueLen()) })
		}
		smp.Watch(SeriesMSHROcc, func() float64 { return float64(ms.l2MSHR.BusyAt(ms.cursor)) })
		smp.Watch(SeriesDramUtil, func() float64 {
			now := clock()
			var sum float64
			for ch := 0; ch < ms.cfg.DRAM.Channels; ch++ {
				sum += ms.Dram.Utilization(ch, now)
			}
			return sum / float64(ms.cfg.DRAM.Channels)
		})
		for ch := 0; ch < ms.cfg.DRAM.Channels; ch++ {
			ch := ch
			smp.Watch(fmt.Sprintf("dram.chan%d.utilization", ch), func() float64 {
				return ms.Dram.Utilization(ch, clock())
			})
		}
		smp.Watch(SeriesInflightPF, func() float64 { return float64(ms.inflightPF) })
	}

	if tl != nil {
		ms.Dram.SetSubmitHook(func(ch, bk int, kind dram.Kind, start, busyUntil uint64, rowHit bool) {
			tl.BankBusy(ch, bk, start, busyUntil, rowHit, kind.String())
		})
	}
}

// NewLegacyMemSystem builds the hierarchy with the given prefetch engine, or
// reports why a cache or DRAM configuration is invalid.
func NewLegacyMemSystem(cfg MemConfig, engine prefetch.Engine) (*LegacyMemSystem, error) {
	if cfg.MaxInflightPrefetches <= 0 {
		cfg.MaxInflightPrefetches = 8
	}
	l1, err := cache.New(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	dc, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	ms := &LegacyMemSystem{
		cfg:         cfg,
		L1:          l1,
		L2:          l2,
		Dram:        dc,
		Engine:      engine,
		l2MSHR:      cache.NewMSHRFile(cfg.L2.MSHRs),
		inflight:    make(map[uint64]*inflightLine),
		prioritizer: true,
	}
	return ms, nil
}

// SetFaults arms fault injection on every hook point of the hierarchy:
// the DRAM controller (channel degradation, stuck banks), the L2 MSHR
// file (slot pressure), the prefetch engine (dropped issues, corrupted
// hints, truncated regions — ms.Engine is wrapped in place), and the pump
// itself (cancelled in-flight prefetches, delayed fills). Call it once,
// right after NewLegacyMemSystem and before AttachTelemetry, so telemetry
// observes the wrapped engine. A nil injector is a no-op.
func (ms *LegacyMemSystem) SetFaults(inj *faults.Injector) {
	if inj == nil {
		return
	}
	ms.faults = inj
	ms.Engine = prefetch.WithFaults(ms.Engine, inj)
	ms.Dram.SetFaultHook(func(dram.Kind) (uint64, uint64) { return inj.DramFault() })
	ms.l2MSHR.SetPressure(inj.StolenSlots(ms.l2MSHR.Size()))
}

// FaultCounts reports the faults injected so far (zero when no fault plan
// is armed). The cancelled count lives in MemStats.PrefetchesCancelled.
func (ms *LegacyMemSystem) FaultCounts() faults.Counts {
	if ms.faults == nil {
		return faults.Counts{}
	}
	return ms.faults.Counts()
}

// SetWatchdog arms the forward-progress watchdog. Zero config fields take
// the package defaults. The watchdog aborts the run via a *LivelockError
// panic (see RecoverAbort).
func (ms *LegacyMemSystem) SetWatchdog(cfg WatchdogConfig) *Watchdog {
	ms.watchdog = &Watchdog{cfg: cfg.withDefaults()}
	return ms.watchdog
}

// EnableInvariantChecks turns on the periodic invariant checker: every
// `every` demand accesses (default 4096 when 0) and once at Drain, the
// hierarchy audits itself and aborts via an *InvariantError panic on any
// violation.
func (ms *LegacyMemSystem) EnableInvariantChecks(every uint64) {
	ms.checkInv = true
	if every == 0 {
		every = 4096
	}
	ms.checkGap = every
}

// SetPrioritizer enables or disables the access prioritizer; disabling it
// lets prefetches contend with demand misses (an ablation, not a paper
// configuration).
func (ms *LegacyMemSystem) SetPrioritizer(on bool) { ms.prioritizer = on }

// SetFillTamper installs a test-only hook called with every prefetch
// fill's block address as it lands in the L2 (see the fillTamper field).
func (ms *LegacyMemSystem) SetFillTamper(fn func(block uint64)) { ms.fillTamper = fn }

// AttachLedger is a no-op: the legacy engine predates lifecycle
// attribution and exists only as a differential baseline. Drivers asking
// for attribution must use the current engine.
func (ms *LegacyMemSystem) AttachLedger(*attrib.Ledger) {}

// Ledger always returns nil for the legacy engine.
func (ms *LegacyMemSystem) Ledger() *attrib.Ledger { return nil }

// Stats returns hierarchy-level statistics.
func (ms *LegacyMemSystem) Stats() MemStats { return ms.stats }

// Hierarchy exposes the caches and DRAM controller so drivers can collect
// stats through the engine-generation-neutral interface in core.
func (ms *LegacyMemSystem) Hierarchy() (l1, l2 *cache.Cache, dc *dram.Controller) {
	return ms.L1, ms.L2, ms.Dram
}

// present reports whether a block is in the L2 or already on its way.
func (ms *LegacyMemSystem) present(block uint64) bool {
	if ms.L2.Contains(block) {
		return true
	}
	_, inf := ms.inflight[block]
	return inf
}

// processArrivals applies all fills whose data has arrived by cycle t.
func (ms *LegacyMemSystem) processArrivals(t uint64) {
	for len(ms.arrivals) > 0 && ms.arrivals[0].doneAt <= t {
		ln := heap.Pop(&ms.arrivals).(*inflightLine)
		if ln.cancelled {
			// A fault-cancelled prefetch: its map entry and inflightPF slot
			// were released at cancellation time, and its block may since
			// have been re-fetched under a fresh line — touch nothing.
			ms.cancelled--
			continue
		}
		delete(ms.inflight, ln.block)
		if ln.prefetch {
			ms.inflightPF--
		}
		if ms.watchdog != nil {
			ms.watchdog.NoteMem(ln.doneAt)
		}
		v, evicted := ms.L2.Fill(ln.block, ln.prefetch, false)
		if evicted && v.Dirty {
			ms.Dram.Submit(v.Addr, dram.Writeback, ln.doneAt)
		}
		if ln.prefetch && ms.fillTamper != nil {
			ms.fillTamper(ln.block)
		}
		// Pointer-scanning engines inspect every arriving line.
		ms.Engine.OnArrival(ln.block)
	}
}

// cancelOnePrefetch cancels the oldest-issued cancellable in-flight
// prefetch (a prefetch line no demand has merged with): the line leaves
// the inflight map and releases its pump slot immediately, and its queue
// entry is marked to be skipped on arrival. The victim choice is by issue
// sequence number — explicit and independent of the arrival queue's
// internal layout, so the queue implementation can change without moving
// which prefetch a fault cancels. Cancelling is always architecturally
// safe — the block simply is not filled, exactly as if the prioritizer
// had starved the issue.
func (ms *LegacyMemSystem) cancelOnePrefetch() {
	var victim *inflightLine
	for _, ln := range ms.arrivals {
		if !ln.prefetch || ln.merged || ln.cancelled {
			continue
		}
		if victim == nil || ln.seq < victim.seq {
			victim = ln
		}
	}
	if ln := victim; ln != nil {
		ln.cancelled = true
		delete(ms.inflight, ln.block)
		ms.inflightPF--
		ms.cancelled++
		ms.stats.PrefetchesCancelled++
		if ms.timeline != nil {
			ms.timeline.PrefetchOutcome(ln.block, "cancelled")
		}
		return
	}
}

// Advance runs the prefetch pump and arrival processing up to cycle now.
//
// The access prioritizer (paper Figure 2) admits a prefetch to the memory
// controller only when its target channel is idle at that instant, so a
// prefetch never delays a demand miss that has already been submitted;
// demand misses "encounter contention only from prefetches the memory
// controller has already issued, and not from prefetch candidates buffered
// in the prefetch queue" (Section 3.1). With the prioritizer disabled
// (ablation), prefetches are submitted unconditionally and contend with
// demands inside the controller.
func (ms *LegacyMemSystem) Advance(now uint64) {
	if now <= ms.cursor {
		ms.processArrivals(ms.cursor)
		return
	}
	if ms.faults != nil && ms.faults.CancelInflight() {
		ms.cancelOnePrefetch()
	}
	t := ms.cursor
	for t < now {
		if ms.watchdog != nil && ms.watchdog.noteSpin(t) {
			panic(&LivelockError{
				Cycle: t, LastRetire: ms.watchdog.lastRetire,
				LastMem: ms.watchdog.lastMem, Spin: true,
				Dump: ms.DiagnosticDump(t),
			})
		}
		ms.processArrivals(t)
		if ms.inflightPF >= ms.cfg.MaxInflightPrefetches {
			// Wait for a prefetch slot to free.
			if len(ms.arrivals) == 0 {
				break
			}
			next := ms.arrivals[0].doneAt
			if next >= now {
				break
			}
			t = next
			continue
		}
		var cand uint64
		if ms.heldValid {
			cand = ms.held
			ms.heldValid = false
			if ms.present(cand) {
				continue // became cached while held
			}
		} else {
			var ok bool
			if opa, isOPA := ms.Engine.(prefetch.OpenPageAware); ms.cfg.OpenPageFirst && isOPA {
				cand, ok = opa.PopOpenFirst(ms.present, ms.Dram.RowOpen)
			} else {
				cand, ok = ms.Engine.Pop(ms.present)
			}
			if !ok {
				break
			}
		}
		start := t
		if ms.prioritizer {
			ch, _, _ := ms.Dram.Map(cand)
			if free := ms.Dram.ChannelFreeAt(ch); free > start {
				start = free
			}
			if start >= now {
				// The channel never goes idle inside this window: hold the
				// candidate at the prioritizer rather than delay demands.
				ms.held = cand
				ms.heldValid = true
				ms.stats.PrioritizerHolds++
				break
			}
		}
		done := ms.Dram.Submit(cand, dram.Prefetch, start)
		if ms.faults != nil {
			done += ms.faults.FillDelay()
		}
		ms.histPF.Observe(float64(done - start))
		if ms.timeline != nil {
			ms.timeline.PrefetchIssue(cand, start, done, false)
		}
		ln := &inflightLine{block: cand, doneAt: done, seq: ms.nextSeq, prefetch: true}
		ms.nextSeq++
		ms.inflight[cand] = ln
		heap.Push(&ms.arrivals, ln)
		ms.inflightPF++
		ms.stats.PrefetchesIssued++
		t = start + ms.cfg.DRAM.TransferCycles // issue bandwidth pacing
	}
	ms.cursor = now
	ms.processArrivals(now)
}

// Load performs a demand load issued at cycle now and returns its
// completion cycle. pc identifies the load instruction (for the stride
// table); hint and coeff are its compiler hints.
func (ms *LegacyMemSystem) Load(pc, addr uint64, hint isa.Hint, coeff uint8, now uint64) (done uint64) {
	ms.stats.Loads++
	return ms.access(pc, addr, false, hint, coeff, now)
}

// Store performs a demand store issued at cycle now. Stores carry no hints.
func (ms *LegacyMemSystem) Store(pc, addr uint64, now uint64) (done uint64) {
	ms.stats.Stores++
	return ms.access(pc, addr, true, isa.HintNone, isa.FixedRegion, now)
}

func (ms *LegacyMemSystem) access(pc, addr uint64, write bool, hint isa.Hint, coeff uint8, now uint64) uint64 {
	// Submission times must be nondecreasing for the pump bookkeeping;
	// out-of-order issue jitter from the core is clamped (see DESIGN.md).
	if now < ms.lastSubmit {
		now = ms.lastSubmit
	}
	ms.lastSubmit = now
	ms.Advance(now)
	if ms.sampler != nil {
		ms.sampler.Tick(now)
	}
	if ms.checkInv {
		ms.sinceInv++
		if ms.sinceInv >= ms.checkGap {
			ms.sinceInv = 0
			ms.mustHoldInvariants(now)
		}
	}

	l1lat := uint64(ms.cfg.L1.HitLatency)
	l2lat := uint64(ms.cfg.L2.HitLatency)
	block := ms.L2.BlockAddr(addr)

	// Merge with an outstanding miss or in-flight prefetch before probing
	// the L1: demand misses fill the L1 eagerly (so L1 contents do not
	// depend on the prefetch scheme), and the in-flight table is what
	// keeps accesses from hitting that fill before the data arrives. The
	// merged access still pays at least the L1-miss + L2-lookup time;
	// without this floor a timely prefetch could beat a perfect L2.
	if ln, ok := ms.inflight[block]; ok {
		ms.stats.InflightMerges++
		// The demand now depends on this line's arrival; fault injection
		// must no longer cancel it.
		ln.merged = true
		if ln.prefetch {
			ms.stats.PrefetchLates++
			ms.Engine.OnDemandHitPrefetched(block)
			if ms.timeline != nil {
				ms.timeline.PrefetchOutcome(block, "late")
			}
		}
		// The merged request's hint bits reach the MSHR (paper Sec. 3.3.1:
		// the pointer counters live in the L2 MSHRs).
		ms.Engine.OnL2DemandMiss(prefetch.MissEvent{
			PC: pc, Addr: addr, Hint: hint, Coeff: coeff, Merged: true,
			Present: ms.present,
		})
		d := ln.doneAt
		if m := now + l1lat + l2lat; m > d {
			d = m
		}
		return d
	}

	if hit, _ := ms.L1.Access(addr, write); hit {
		return now + l1lat
	}

	if hit, wasPF := ms.L2.Access(addr, write); hit {
		if wasPF {
			ms.Engine.OnDemandHitPrefetched(block)
			if ms.timeline != nil {
				ms.timeline.PrefetchOutcome(block, "useful")
			}
		}
		ms.fillL1(addr, write, now+l1lat+l2lat)
		return now + l1lat + l2lat
	}

	// Demand L2 miss: notify the prefetch engine, then go to DRAM through
	// the L2 MSHRs.
	ms.Engine.OnL2DemandMiss(prefetch.MissEvent{
		PC: pc, Addr: addr, Hint: hint, Coeff: coeff, Present: ms.present,
	})

	lookupDone := now + l1lat + l2lat
	start, slot := ms.l2MSHR.Reserve(lookupDone)
	dramDone := ms.Dram.Submit(block, dram.Demand, start)
	if ms.faults != nil {
		dramDone += ms.faults.FillDelay()
	}
	ms.l2MSHR.Complete(slot, dramDone)
	if ms.watchdog != nil {
		// Progress is the submission itself; the arrival is noted when it
		// drains. Crediting dramDone here would let an absurdly delayed
		// fill mask the very stall it causes.
		ms.watchdog.NoteMem(now)
	}
	ms.histDemand.Observe(float64(dramDone - now))
	if ms.timeline != nil {
		ms.timeline.DemandMiss(pc, block, now, dramDone)
	}

	ln := &inflightLine{block: block, doneAt: dramDone, seq: ms.nextSeq}
	ms.nextSeq++
	ms.inflight[block] = ln
	heap.Push(&ms.arrivals, ln)
	// Fill the L1 now; the in-flight entry (checked before the L1 probe)
	// prevents later accesses from using the fill before the data lands.
	ms.fillL1(addr, write, dramDone)
	return dramDone
}

// fillL1 inserts the block into the L1 (fills are applied eagerly; see
// DESIGN.md simplifications) and handles the dirty victim.
func (ms *LegacyMemSystem) fillL1(addr uint64, write bool, when uint64) {
	v, evicted := ms.L1.Fill(ms.L1.BlockAddr(addr), false, write)
	if evicted && v.Dirty {
		// Write back into the L2; if the L2 no longer holds the block the
		// writeback goes to memory.
		if !ms.L2.MarkDirty(v.Addr) {
			ms.Dram.Submit(v.Addr, dram.Writeback, when)
		}
	}
}

// SoftwarePrefetch performs a non-binding PREF: if the block is not cached
// or in flight, it is fetched at demand priority (a PREF allocates an MSHR
// and contends like a load — the paper's Section 2 overhead) and fills the
// L2 marked as a prefetch, so accuracy accounting sees it.
func (ms *LegacyMemSystem) SoftwarePrefetch(addr, now uint64) {
	if now < ms.lastSubmit {
		now = ms.lastSubmit
	}
	ms.lastSubmit = now
	ms.Advance(now)

	block := ms.L2.BlockAddr(addr)
	if _, inf := ms.inflight[block]; inf || ms.L1.Contains(addr) || ms.L2.Contains(addr) {
		ms.stats.SWPrefetchDrops++
		return
	}
	ms.stats.SWPrefetches++
	ms.stats.PrefetchesIssued++
	lookupDone := now + uint64(ms.cfg.L1.HitLatency) + uint64(ms.cfg.L2.HitLatency)
	start, slot := ms.l2MSHR.Reserve(lookupDone)
	done := ms.Dram.Submit(block, dram.Prefetch, start)
	if ms.faults != nil {
		done += ms.faults.FillDelay()
	}
	ms.l2MSHR.Complete(slot, done)
	ms.histPF.Observe(float64(done - start))
	if ms.timeline != nil {
		ms.timeline.PrefetchIssue(block, start, done, true)
	}
	ln := &inflightLine{block: block, doneAt: done, seq: ms.nextSeq, prefetch: true}
	ms.nextSeq++
	ms.inflight[block] = ln
	heap.Push(&ms.arrivals, ln)
	ms.inflightPF++
}

// SetBound forwards a SETBOUND instruction to the engine.
func (ms *LegacyMemSystem) SetBound(v uint64) { ms.Engine.SetBound(v) }

// Indirect forwards a PREFI instruction to the engine.
func (ms *LegacyMemSystem) Indirect(indexAddr, base uint64, shift uint) {
	ms.Engine.Indirect(indexAddr, base, shift)
}

// Drain lets all outstanding traffic land; call at end of simulation.
func (ms *LegacyMemSystem) Drain() {
	for len(ms.arrivals) > 0 {
		ms.Advance(ms.arrivals[0].doneAt)
	}
	if ms.checkInv {
		ms.mustHoldInvariants(ms.cursor)
	}
}

// NoteRetire records an instruction retirement for the forward-progress
// watchdog; the core calls it at commit. A no-op without a watchdog.
func (ms *LegacyMemSystem) NoteRetire(now uint64) {
	if ms.watchdog != nil {
		ms.watchdog.NoteRetire(now)
	}
}

// CheckProgress aborts with a *LivelockError panic if neither an
// instruction retirement nor a drained memory event has been seen for the
// watchdog's stall threshold. The core calls it at commit, before
// NoteRetire, so a pathological jump in completion cycles is caught. A
// no-op without a watchdog.
func (ms *LegacyMemSystem) CheckProgress(now uint64) {
	if ms.watchdog == nil || !ms.watchdog.stalled(now) {
		return
	}
	panic(&LivelockError{
		Cycle: now, LastRetire: ms.watchdog.lastRetire,
		LastMem: ms.watchdog.lastMem,
		Dump:    ms.DiagnosticDump(now),
	})
}

// CheckInvariants audits the hierarchy's internal consistency and returns
// a descriptive error for the first violation found: bounded MSHR
// occupancy, agreement between the inflight map, the arrivals heap, and
// the prefetch slot count, engine queue sanity, and stats identities
// (every counted prefetch outcome traces back to an issued prefetch).
func (ms *LegacyMemSystem) CheckInvariants() error {
	if n, size := ms.l2MSHR.BusyAt(ms.cursor), ms.l2MSHR.Size(); size > 0 {
		if n > size {
			return fmt.Errorf("L2 MSHR occupancy %d exceeds capacity %d", n, size)
		}
		if p := ms.l2MSHR.Peak(); p > size {
			return fmt.Errorf("L2 MSHR peak %d exceeds capacity %d", p, size)
		}
	}

	// Heap / map / slot-count agreement.
	livePF, cancelled := 0, 0
	for _, ln := range ms.arrivals {
		if ln.cancelled {
			cancelled++
			continue
		}
		got, ok := ms.inflight[ln.block]
		if !ok {
			return fmt.Errorf("arrival heap entry %#x missing from inflight map", ln.block)
		}
		if got != ln {
			return fmt.Errorf("inflight map entry %#x does not match its heap entry", ln.block)
		}
		if ln.prefetch {
			livePF++
		}
	}
	if live := len(ms.arrivals) - cancelled; len(ms.inflight) != live {
		return fmt.Errorf("inflight map holds %d lines, arrivals heap %d live entries",
			len(ms.inflight), live)
	}
	if cancelled != ms.cancelled {
		return fmt.Errorf("cancelled-entry count %d does not match heap contents %d",
			ms.cancelled, cancelled)
	}
	if livePF != ms.inflightPF {
		return fmt.Errorf("inflight prefetch count %d does not match heap contents %d",
			ms.inflightPF, livePF)
	}
	// No hard cap check on inflightPF: software PREFs are demand-priority
	// and legitimately overshoot the pump's MaxInflightPrefetches limit.

	// Engine self-audit (region queues within heap bounds, etc.).
	if ch, ok := ms.Engine.(prefetch.Checker); ok {
		if err := ch.CheckInvariants(); err != nil {
			return fmt.Errorf("engine %s: %w", ms.Engine.Name(), err)
		}
	}

	// Stats identities. Late prefetches merged a demand with an issued
	// prefetch, and every useful/useless-counted line entered the L2 as a
	// prefetch fill; fills never exceed issues.
	issued := ms.stats.PrefetchesIssued
	if l2 := ms.L2.Stats(); !ms.cfg.L2.Perfect {
		if l2.PrefetchFills > issued {
			return fmt.Errorf("L2 prefetch fills %d exceed prefetches issued %d",
				l2.PrefetchFills, issued)
		}
		if l2.UsefulPrefetches+l2.UselessPrefetches > l2.PrefetchFills {
			return fmt.Errorf("prefetch outcomes useful=%d + useless=%d exceed fills %d",
				l2.UsefulPrefetches, l2.UselessPrefetches, l2.PrefetchFills)
		}
		if l2.Hits+l2.Misses != l2.Accesses {
			return fmt.Errorf("L2 hits %d + misses %d != accesses %d",
				l2.Hits, l2.Misses, l2.Accesses)
		}
	}
	if l1 := ms.L1.Stats(); !ms.cfg.L1.Perfect && l1.Hits+l1.Misses != l1.Accesses {
		return fmt.Errorf("L1 hits %d + misses %d != accesses %d",
			l1.Hits, l1.Misses, l1.Accesses)
	}
	if ms.stats.PrefetchLates > ms.stats.InflightMerges {
		return fmt.Errorf("late prefetches %d exceed inflight merges %d",
			ms.stats.PrefetchLates, ms.stats.InflightMerges)
	}
	if ms.stats.PrefetchesCancelled > issued {
		return fmt.Errorf("cancelled prefetches %d exceed issued %d",
			ms.stats.PrefetchesCancelled, issued)
	}
	return nil
}

// mustHoldInvariants aborts via an *InvariantError panic on a violation.
func (ms *LegacyMemSystem) mustHoldInvariants(now uint64) {
	if err := ms.CheckInvariants(); err != nil {
		panic(&InvariantError{Cycle: now, Violation: err.Error(), Dump: ms.DiagnosticDump(now)})
	}
}

// DiagnosticDump renders the memory system's live state — the pump
// cursor, in-flight table, MSHR file, prioritizer holding register, and
// prefetch engine — for watchdog and invariant abort reports.
func (ms *LegacyMemSystem) DiagnosticDump(now uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "memsys state at cycle %d:\n", now)
	fmt.Fprintf(&b, "  pump: cursor=%d lastSubmit=%d\n", ms.cursor, ms.lastSubmit)
	fmt.Fprintf(&b, "  inflight: %d lines (%d prefetch slots of %d), %d cancelled in heap, %d heap entries\n",
		len(ms.inflight), ms.inflightPF, ms.cfg.MaxInflightPrefetches, ms.cancelled, len(ms.arrivals))
	if len(ms.arrivals) > 0 {
		fmt.Fprintf(&b, "  next arrival: block %#x at cycle %d\n", ms.arrivals[0].block, ms.arrivals[0].doneAt)
	}
	fmt.Fprintf(&b, "  l2 mshr: %d/%d busy at cursor, peak %d, fault pressure %d\n",
		ms.l2MSHR.BusyAt(ms.cursor), ms.l2MSHR.Size(), ms.l2MSHR.Peak(), ms.l2MSHR.Pressure())
	fmt.Fprintf(&b, "  prioritizer: enabled=%v heldValid=%v", ms.prioritizer, ms.heldValid)
	if ms.heldValid {
		fmt.Fprintf(&b, " held=%#x", ms.held)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  engine: %s", ms.Engine.Name())
	if ql, ok := ms.Engine.(prefetch.QueueLenner); ok {
		fmt.Fprintf(&b, " queue=%d", ql.QueueLen())
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  stats: loads=%d stores=%d merges=%d pf_issued=%d pf_cancelled=%d holds=%d\n",
		ms.stats.Loads, ms.stats.Stores, ms.stats.InflightMerges,
		ms.stats.PrefetchesIssued, ms.stats.PrefetchesCancelled, ms.stats.PrioritizerHolds)
	if ms.faults != nil {
		fmt.Fprintf(&b, "  faults: %v\n", ms.faults.Counts())
	}
	return b.String()
}
