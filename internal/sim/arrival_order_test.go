package sim

import (
	"container/heap"
	"testing"

	"grp/internal/prefetch"
)

// orderEngine records the order in which arrivals drain.
type orderEngine struct {
	prefetch.Null
	order []uint64
}

func (o *orderEngine) OnArrival(block uint64) { o.order = append(o.order, block) }

// arrivalCase is one tie-breaking scenario: lines inserted in `insert`
// order must drain in `want` order.
type arrivalCase struct {
	name   string
	insert []struct {
		block  uint64
		doneAt uint64
	}
	want []uint64
}

func arrivalCases() []arrivalCase {
	mk := func(pairs ...uint64) []struct{ block, doneAt uint64 } {
		out := make([]struct{ block, doneAt uint64 }, 0, len(pairs)/2)
		for i := 0; i+1 < len(pairs); i += 2 {
			out = append(out, struct{ block, doneAt uint64 }{pairs[i], pairs[i+1]})
		}
		return out
	}
	return []arrivalCase{
		{
			name:   "distinct cycles drain by time",
			insert: mk(0x3000, 30, 0x1000, 10, 0x2000, 20),
			want:   []uint64{0x1000, 0x2000, 0x3000},
		},
		{
			name:   "same-cycle fills drain FIFO by issue order",
			insert: mk(0x1000, 50, 0x2000, 50, 0x3000, 50),
			want:   []uint64{0x1000, 0x2000, 0x3000},
		},
		{
			name:   "tie after an earlier arrival stays FIFO",
			insert: mk(0x5000, 40, 0x1000, 90, 0x2000, 90, 0x3000, 90, 0x4000, 90),
			want:   []uint64{0x5000, 0x1000, 0x2000, 0x3000, 0x4000},
		},
		{
			name:   "interleaved ties break by issue seq not insertion cycle",
			insert: mk(0x1000, 70, 0x9000, 60, 0x2000, 70, 0x8000, 60),
			want:   []uint64{0x9000, 0x8000, 0x1000, 0x2000},
		},
		{
			name:   "many ties across two cycles",
			insert: mk(0xa000, 100, 0xb000, 101, 0xc000, 100, 0xd000, 101, 0xe000, 100),
			want:   []uint64{0xa000, 0xc000, 0xe000, 0xb000, 0xd000},
		},
	}
}

// insertLine registers a hand-built in-flight line, bypassing DRAM
// timing, so ordering tests can force exact doneAt ties.
func (ms *MemSystem) insertLine(block, doneAt uint64, pf bool) {
	ms.addInflight(block, doneAt, pf)
	if pf {
		ms.inflightPF++
	}
}

// TestArrivalFIFOTieBreak drives the live MemSystem arrival queue with
// hand-built in-flight lines and asserts same-cycle fills drain in issue
// order (observed through Engine.OnArrival). Table-driven so the
// heap→calendar-queue refactor cannot silently reorder same-cycle fills.
func TestArrivalFIFOTieBreak(t *testing.T) {
	for _, tc := range arrivalCases() {
		t.Run(tc.name, func(t *testing.T) {
			eng := &orderEngine{}
			ms := newSys(eng)
			for _, in := range tc.insert {
				ms.insertLine(in.block, in.doneAt, false)
			}
			ms.Drain()
			if len(eng.order) != len(tc.want) {
				t.Fatalf("drained %d lines, want %d: %#x", len(eng.order), len(tc.want), eng.order)
			}
			for i := range tc.want {
				if eng.order[i] != tc.want[i] {
					t.Fatalf("drain order %#x, want %#x", eng.order, tc.want)
				}
			}
		})
	}
}

// TestArrivalHeapTieBreak pins the legacy heap ordering itself: Less must
// order equal doneAt entries by sequence number.
func TestArrivalHeapTieBreak(t *testing.T) {
	var h arrivalHeap
	lines := []*inflightLine{
		{block: 1, doneAt: 20, seq: 3},
		{block: 2, doneAt: 10, seq: 4},
		{block: 3, doneAt: 10, seq: 1},
		{block: 4, doneAt: 10, seq: 2},
		{block: 5, doneAt: 5, seq: 5},
	}
	for _, ln := range lines {
		heap.Push(&h, ln)
	}
	want := []uint64{5, 3, 4, 2, 1}
	for i, w := range want {
		ln := heap.Pop(&h).(*inflightLine)
		if ln.block != w {
			t.Fatalf("pop %d: block %d, want %d", i, ln.block, w)
		}
	}
}
