package sim

import (
	"testing"

	"grp/internal/isa"
	"grp/internal/prefetch"
)

func newSys(engine prefetch.Engine) *MemSystem {
	ms, err := NewMemSystem(DefaultMemConfig(), engine)
	if err != nil {
		panic(err) // the default config is always valid
	}
	return ms
}

func TestL1HitFast(t *testing.T) {
	ms := newSys(prefetch.NewNull())
	d1 := ms.Load(0, 0x1000, isa.HintNone, isa.FixedRegion, 100)
	if d1 <= 100+3 {
		t.Fatalf("cold miss should be slow, done=%d", d1)
	}
	// After the data lands, the same block is an L1 hit.
	d2 := ms.Load(0, 0x1008, isa.HintNone, isa.FixedRegion, d1+10)
	if d2 != d1+10+3 {
		t.Errorf("L1 hit latency = %d, want 3", d2-(d1+10))
	}
}

func TestInflightMerge(t *testing.T) {
	ms := newSys(prefetch.NewNull())
	d1 := ms.Load(0, 0x2000, isa.HintNone, isa.FixedRegion, 100)
	// A second access to the same block while the miss is outstanding
	// merges: it completes when the first does (plus lookup floor).
	d2 := ms.Load(0, 0x2010, isa.HintNone, isa.FixedRegion, 110)
	if d2 != d1 {
		t.Errorf("merged access done=%d, want %d", d2, d1)
	}
	if ms.Stats().InflightMerges != 1 {
		t.Errorf("merges = %d", ms.Stats().InflightMerges)
	}
}

func TestMergeLatencyFloor(t *testing.T) {
	ms := newSys(prefetch.NewNull())
	d1 := ms.Load(0, 0x3000, isa.HintNone, isa.FixedRegion, 100)
	// Merge just before completion: must still pay L1+L2 lookup.
	d2 := ms.Load(0, 0x3008, isa.HintNone, isa.FixedRegion, d1-2)
	if d2 < d1-2+3+12 {
		t.Errorf("merge beat the lookup floor: %d < %d", d2, d1-2+15)
	}
}

func TestL2HitAfterArrival(t *testing.T) {
	ms := newSys(prefetch.NewNull())
	d1 := ms.Load(0, 0x4000, isa.HintNone, isa.FixedRegion, 100)
	// L1 evicts nothing here; force an L1 miss by thrashing the set with
	// enough distinct blocks mapping to it (L1: 64 KB 2-way = 32 KB/way).
	way := uint64(32 << 10)
	ms.Load(0, 0x4000+way, isa.HintNone, isa.FixedRegion, d1+10)
	ms.Load(0, 0x4000+2*way, isa.HintNone, isa.FixedRegion, d1+500)
	ms.Advance(d1 + 3000)
	// 0x4000 is now out of L1 but in L2.
	d := ms.Load(0, 0x4000, isa.HintNone, isa.FixedRegion, d1+4000)
	if got := d - (d1 + 4000); got != 15 {
		t.Errorf("L2 hit latency = %d, want 15", got)
	}
}

func TestPrefetchFillsL2NotL1(t *testing.T) {
	ms := newSys(prefetch.NewSRP())
	// Trigger an SRP region around 0x10000.
	d1 := ms.Load(0, 0x10000, isa.HintNone, isa.FixedRegion, 100)
	ms.Advance(d1 + 20000) // let prefetches land
	if ms.Stats().PrefetchesIssued == 0 {
		t.Fatal("SRP should have issued prefetches")
	}
	// A neighboring block is an L2 hit (prefetched), not an L1 hit.
	d := ms.Load(0, 0x10040, isa.HintNone, isa.FixedRegion, d1+30000)
	if got := d - (d1 + 30000); got != 15 {
		t.Errorf("prefetched block latency = %d, want 15 (L2 hit)", got)
	}
}

func TestPrefetchLateMerge(t *testing.T) {
	ms := newSys(prefetch.NewSRP())
	d1 := ms.Load(0, 0x20000, isa.HintNone, isa.FixedRegion, 100)
	ms.Advance(d1 + 50) // prefetches issued, still in flight
	if ms.Stats().PrefetchesIssued == 0 {
		t.Skip("no prefetch issued in window")
	}
	before := ms.Stats().PrefetchLates
	// Demand the next block immediately: merges with in-flight prefetch.
	ms.Load(0, 0x20040, isa.HintNone, isa.FixedRegion, d1+60)
	if ms.Stats().PrefetchLates <= before && ms.L2.Stats().UsefulPrefetches == 0 {
		t.Error("expected a late-prefetch merge or a useful prefetch")
	}
}

func TestPerfectL2NeverBeaten(t *testing.T) {
	// The same access sequence under SRP must never finish a demand access
	// earlier than the perfect L2 would.
	cfg := DefaultMemConfig()
	cfg.L2.Perfect = true
	perfect, _ := NewMemSystem(cfg, prefetch.NewNull())
	srp := newSys(prefetch.NewSRP())

	addrs := []uint64{0x1000, 0x1040, 0x1080, 0x2000, 0x1000, 0x3000, 0x1040}
	now := uint64(100)
	for _, a := range addrs {
		dp := perfect.Load(0, a, isa.HintSpatial, isa.FixedRegion, now)
		ds := srp.Load(0, a, isa.HintSpatial, isa.FixedRegion, now)
		if ds < dp {
			t.Errorf("addr %#x: srp done %d before perfect %d", a, ds, dp)
		}
		now += 500
	}
}

func TestStoreWriteAllocate(t *testing.T) {
	ms := newSys(prefetch.NewNull())
	d := ms.Store(0, 0x5000, 100)
	if d <= 103 {
		t.Fatal("store miss should go to memory")
	}
	ms.Advance(d + 100)
	// Dirty data eventually written back when evicted from L1 and L2.
	if ms.Stats().Stores != 1 {
		t.Errorf("stores = %d", ms.Stats().Stores)
	}
}

func TestDrainLandsEverything(t *testing.T) {
	ms := newSys(prefetch.NewSRP())
	ms.Load(0, 0x30000, isa.HintNone, isa.FixedRegion, 100)
	ms.Drain()
	if ms.arrivals.len() != 0 || ms.inflight.Len() != 0 {
		t.Errorf("drain left %d arrivals, %d inflight", ms.arrivals.len(), ms.inflight.Len())
	}
}

func TestPrioritizerHoldsWhenBusy(t *testing.T) {
	// With the prioritizer on, traffic is throttled by channel idleness;
	// with it off the same engine issues at least as many prefetches.
	run := func(on bool) uint64 {
		ms := newSys(prefetch.NewSRP())
		ms.SetPrioritizer(on)
		now := uint64(100)
		for i := 0; i < 64; i++ {
			d := ms.Load(0, uint64(0x40000+i*4096), isa.HintNone, isa.FixedRegion, now)
			now = d + 1
		}
		ms.Drain()
		return ms.Stats().PrefetchesIssued
	}
	onCount, offCount := run(true), run(false)
	if onCount == 0 || offCount == 0 {
		t.Fatalf("prefetches: on=%d off=%d", onCount, offCount)
	}
	if offCount < onCount {
		t.Errorf("disabling the prioritizer should not reduce issue: on=%d off=%d", onCount, offCount)
	}
}

func TestSetBoundAndIndirectForwarded(t *testing.T) {
	eng := &recordingEngine{}
	ms, _ := NewMemSystem(DefaultMemConfig(), eng)
	ms.SetBound(42)
	ms.Indirect(0x100, 0x200, 3)
	if eng.bound != 42 || eng.indirect != 1 {
		t.Errorf("engine saw bound=%d indirect=%d", eng.bound, eng.indirect)
	}
}

type recordingEngine struct {
	prefetch.Null
	bound    uint64
	indirect int
}

func (r *recordingEngine) SetBound(v uint64)            { r.bound = v }
func (r *recordingEngine) Indirect(_, _ uint64, _ uint) { r.indirect++ }

func TestMonotonicClamp(t *testing.T) {
	ms := newSys(prefetch.NewNull())
	ms.Load(0, 0x6000, isa.HintNone, isa.FixedRegion, 1000)
	// An out-of-order earlier submission is clamped, not time-traveled.
	d := ms.Load(0, 0x7000, isa.HintNone, isa.FixedRegion, 500)
	if d < 1000 {
		t.Errorf("clamped access done=%d, should not precede clamp point", d)
	}
}

func TestOpenPageFirstConfig(t *testing.T) {
	cfg := DefaultMemConfig()
	cfg.OpenPageFirst = true
	ms, _ := NewMemSystem(cfg, prefetch.NewSRP())
	d := ms.Load(0, 0x50000, isa.HintNone, isa.FixedRegion, 100)
	ms.Advance(d + 50000)
	ms.Drain()
	if ms.Stats().PrefetchesIssued == 0 {
		t.Error("open-page-first path should still issue prefetches")
	}
}

func TestSoftwarePrefetchPath(t *testing.T) {
	ms := newSys(prefetch.NewNull())
	ms.SoftwarePrefetch(0x9000, 100)
	if ms.Stats().SWPrefetches != 1 {
		t.Fatalf("SWPrefetches = %d", ms.Stats().SWPrefetches)
	}
	// Duplicate while in flight: dropped.
	ms.SoftwarePrefetch(0x9000, 110)
	if ms.Stats().SWPrefetchDrops != 1 {
		t.Errorf("SWPrefetchDrops = %d", ms.Stats().SWPrefetchDrops)
	}
	ms.Drain()
	// Now cached: dropped again.
	ms.SoftwarePrefetch(0x9010, 1e6)
	if ms.Stats().SWPrefetchDrops != 2 {
		t.Errorf("SWPrefetchDrops = %d", ms.Stats().SWPrefetchDrops)
	}
	// And a demand access hits the prefetched line in the L2.
	d := ms.Load(0, 0x9000, isa.HintNone, isa.FixedRegion, 2e6)
	if d != 2e6+15 {
		t.Errorf("prefetched block latency = %d, want 15", d-2e6)
	}
	if ms.L2.Stats().UsefulPrefetches != 1 {
		t.Errorf("software prefetch should count as useful: %+v", ms.L2.Stats())
	}
}
