package sim

import (
	"errors"
	"testing"

	"grp/internal/dram"
	"grp/internal/isa"
	"grp/internal/prefetch"
)

func TestWatchdogStallDetection(t *testing.T) {
	w := Watchdog{cfg: WatchdogConfig{StallCycles: 100}.withDefaults()}
	w.NoteRetire(50)
	if w.stalled(120) {
		t.Error("fired inside the threshold window")
	}
	if !w.stalled(200) {
		t.Error("did not fire 150 idle cycles past the last retirement")
	}
	w.NoteMem(190) // a drained memory event counts as progress too
	if w.stalled(250) {
		t.Error("fired despite recent memory progress")
	}
	w.NoteRetire(10) // stale, out-of-order note must not rewind progress
	if w.lastRetire != 50 {
		t.Errorf("lastRetire rewound to %d", w.lastRetire)
	}
}

func TestWatchdogSpinCounter(t *testing.T) {
	w := Watchdog{cfg: WatchdogConfig{SpinEvents: 3}.withDefaults()}
	for i := 0; i < 3; i++ {
		if w.noteSpin(7) {
			t.Fatalf("fired after only %d same-cycle events", i+1)
		}
	}
	if !w.noteSpin(7) {
		t.Error("did not fire past the same-cycle threshold")
	}
	if w.noteSpin(8) {
		t.Error("advancing to a new cycle must reset the spin counter")
	}
}

func TestRecoverAbortRepanicsForeign(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RecoverAbort swallowed an unrelated panic")
		}
	}()
	func() {
		var err error
		defer RecoverAbort(&err)
		panic("unrelated")
	}()
}

// endlessEngine always has another uncached candidate, modeling a buggy
// engine that can wedge the pump when the DRAM model costs zero cycles.
type endlessEngine struct {
	prefetch.Null
	next uint64
}

func (e *endlessEngine) Pop(func(uint64) bool) (uint64, bool) {
	e.next += 64
	return e.next, true
}

// TestWatchdogSpinFires wedges the pump for real: a zero-latency DRAM
// (deliberately allowed by dram.Validate) plus an endless candidate
// stream means the issue loop never advances time. The same-cycle spin
// detector must abort with a diagnostic dump instead of hanging.
func TestWatchdogSpinFires(t *testing.T) {
	cfg := DefaultMemConfig()
	cfg.DRAM = dram.Config{Channels: 1, BanksPerChannel: 1, RowBytes: 2048, BlockBytes: 64}
	ms, err := NewMemSystem(cfg, &endlessEngine{})
	if err != nil {
		t.Fatal(err)
	}
	ms.SetWatchdog(WatchdogConfig{SpinEvents: 10_000})
	err = func() (err error) {
		defer RecoverAbort(&err)
		ms.Load(0, 0x1000, isa.HintNone, isa.FixedRegion, 100)
		ms.Advance(1_000_000)
		return nil
	}()
	var ll *LivelockError
	if !errors.As(err, &ll) {
		t.Fatalf("expected a LivelockError, got %v", err)
	}
	if !ll.Spin {
		t.Errorf("expected a spin livelock, got stall: %v", ll)
	}
	if ll.Dump == "" {
		t.Error("livelock abort carried no diagnostic dump")
	}
}

func TestInvariantCheckerDetectsCorruption(t *testing.T) {
	ms := newSys(prefetch.NewSRP())
	ms.Load(0, 0x2000, isa.HintNone, isa.FixedRegion, 100)
	ms.Drain()
	if err := ms.CheckInvariants(); err != nil {
		t.Fatalf("healthy system failed audit: %v", err)
	}
	ms.inflightPF++ // corrupt the pump slot accounting
	if err := ms.CheckInvariants(); err == nil {
		t.Error("slot-accounting corruption went undetected")
	}
	ms.inflightPF--

	ms.stats.PrefetchLates = ms.stats.InflightMerges + 1 // break a stats identity
	if err := ms.CheckInvariants(); err == nil {
		t.Error("stats-identity corruption went undetected")
	}
}

func TestMustHoldInvariantsAborts(t *testing.T) {
	ms := newSys(prefetch.NewNull())
	ms.inflightPF = 99
	err := func() (err error) {
		defer RecoverAbort(&err)
		ms.mustHoldInvariants(123)
		return nil
	}()
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("expected an InvariantError, got %v", err)
	}
	if ie.Cycle != 123 || ie.Dump == "" {
		t.Errorf("diagnostic incomplete: cycle=%d dump=%q", ie.Cycle, ie.Dump)
	}
}
