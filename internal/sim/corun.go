package sim

import (
	"fmt"
	"strings"

	"grp/internal/attrib"
	"grp/internal/cache"
	"grp/internal/dram"
	"grp/internal/isa"
	"grp/internal/oamap"
	"grp/internal/prefetch"
)

// coRunASIDShift positions the core id (address-space id) in the high
// bits of every address a core port forwards to the shared L2 and DRAM:
// global = (local & coRunASIDMask) | core << coRunASIDShift. Each core
// therefore owns a disjoint 2^44-byte timing address space — big enough
// that no real workload wraps — while the DRAM channel/bank mapping,
// which reads only low address bits, is untouched: two cores' streams
// interleave over the same channels and banks, which is exactly the
// contention being modeled. The owner of any global address is
// recoverable from its high bits, which is what routes arrivals back to
// the issuing core's engine and charges cross-core pollution.
const (
	coRunASIDShift = 44
	coRunASIDMask  = (uint64(1) << coRunASIDShift) - 1
)

// CoRunSystem is the multi-core memory hierarchy: N core-private L1s and
// prefetch engines over one shared L2 and one shared DRAM controller.
// Each core drives its own CorePort (which implements cpu.MemoryTiming);
// the ports share the in-flight table, the arrival queue, and the
// prefetch pump, whose issue slot each iteration is assigned by the
// round-robin cross-core Arbiter before the candidate faces the
// existing access prioritizer's idle-channel test.
//
// Partitioning: every core gets a private L2 MSHR file and a private
// in-flight prefetch budget of MaxInflightPrefetches, so one core's miss
// burst cannot consume another's slots; contention is confined to the
// shared L2 capacity and the DRAM channels/banks, where it belongs. With
// one core the system is cycle-identical to MemSystem — the equivalence
// battery in internal/conformance proves it over the generated-program
// fleet.
type CoRunSystem struct {
	cfg  MemConfig
	L2   *cache.Cache
	Dram *dram.Controller

	ports []*CorePort
	arb   *Arbiter

	pool     linePool
	inflight *oamap.I32
	arrivals calendarQueue

	cursor      uint64 // prefetch pump has run up to this cycle
	lastSubmit  uint64 // monotonic clamp for request submission times
	nextSeq     uint64 // issue sequence numbers for arrival tie-breaking
	prioritizer bool

	// asidOn gates address translation: with one core the port is the
	// identity map, which is what makes N=1 bit-for-bit equivalent to the
	// single-core system even for programs that touch addresses above the
	// ASID boundary.
	asidOn bool

	// advanceID distinguishes Advance calls so a candidate parked on a
	// busy channel is probed (and its hold counted) once per call, like
	// the single-core pump's hold-and-break.
	advanceID uint64

	watchdog *Watchdog
	checkInv bool
	checkGap uint64
	sinceInv uint64
}

// CorePort is one core's endpoint into a CoRunSystem: a private L1,
// prefetch engine, L2 MSHR partition, and prefetch budget over the
// shared fabric. It implements cpu.MemoryTiming and ProgressMonitor, so
// a cpu.Core (or Thread) drives it exactly as it would a MemSystem.
type CorePort struct {
	sys *CoRunSystem
	id  int

	L1     *cache.Cache
	Engine prefetch.Engine
	mshr   *cache.MSHRFile

	inflightPF int
	held       uint64 // prioritizer holding register (local address)
	heldValid  bool
	parkedID   uint64 // advanceID that parked held on a busy channel

	stats  MemStats
	ledger *attrib.Ledger

	presentFn func(uint64) bool
	rowOpenFn func(uint64) bool

	// Cross-core prefetch pollution, both directions: caused counts this
	// core's prefetch fills that evicted another core's valid
	// demand-resident line; suffered counts this core's lines so evicted.
	pollutionCaused   uint64
	pollutionSuffered uint64
}

// NewCoRunSystem builds an n-core shared hierarchy, one prefetch engine
// per core. Engines are core-private and see only their own core's local
// addresses; len(engines) sets the core count.
func NewCoRunSystem(cfg MemConfig, engines []prefetch.Engine) (*CoRunSystem, error) {
	n := len(engines)
	if n < 1 {
		return nil, fmt.Errorf("sim: co-run needs at least one core, got %d", n)
	}
	if cfg.MaxInflightPrefetches <= 0 {
		cfg.MaxInflightPrefetches = 8
	}
	l2, err := cache.New(cfg.L2)
	if err != nil {
		return nil, err
	}
	dc, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	cs := &CoRunSystem{
		cfg:         cfg,
		L2:          l2,
		Dram:        dc,
		arb:         NewArbiter(n),
		inflight:    oamap.NewI32(),
		prioritizer: true,
		asidOn:      n > 1,
	}
	cs.arrivals.pool = &cs.pool
	for i := 0; i < n; i++ {
		l1, err := cache.New(cfg.L1)
		if err != nil {
			return nil, err
		}
		p := &CorePort{
			sys:    cs,
			id:     i,
			L1:     l1,
			Engine: engines[i],
			mshr:   cache.NewMSHRFile(cfg.L2.MSHRs),
		}
		p.presentFn = p.present
		p.rowOpenFn = p.rowOpen
		cs.ports = append(cs.ports, p)
	}
	return cs, nil
}

// Port returns core i's endpoint.
func (cs *CoRunSystem) Port(i int) *CorePort { return cs.ports[i] }

// Cores returns the core count.
func (cs *CoRunSystem) Cores() int { return len(cs.ports) }

// Arbiter returns the cross-core channel arbiter (for tests and
// diagnostics).
func (cs *CoRunSystem) Arbiter() *Arbiter { return cs.arb }

// SetPrioritizer enables or disables the access prioritizer (see
// MemSystem.SetPrioritizer).
func (cs *CoRunSystem) SetPrioritizer(on bool) { cs.prioritizer = on }

// SetWatchdog arms the shared forward-progress watchdog: a retirement on
// any core counts as progress (a core legitimately stalls while a
// co-runner hogs a channel; the system as a whole must still move).
func (cs *CoRunSystem) SetWatchdog(cfg WatchdogConfig) *Watchdog {
	cs.watchdog = &Watchdog{cfg: cfg.withDefaults()}
	return cs.watchdog
}

// EnableInvariantChecks turns on the periodic invariant checker (every
// `every` demand accesses across all cores, default 4096 when 0, plus
// once at Drain).
func (cs *CoRunSystem) EnableInvariantChecks(every uint64) {
	cs.checkInv = true
	if every == 0 {
		every = 4096
	}
	cs.checkGap = every
}

// AttachLedger connects core i's prefetch attribution ledger. Each
// core's ledger sees only that core's local addresses, so its summaries
// line up with a solo run of the same workload; cross-core pollution
// lands in the annotation counters, not the taxonomy.
func (p *CorePort) AttachLedger(l *attrib.Ledger) { p.ledger = l }

// Ledger returns core i's attached ledger (nil when detached).
func (p *CorePort) Ledger() *attrib.Ledger { return p.ledger }

// Stats returns this core's hierarchy-level statistics.
func (p *CorePort) Stats() MemStats { return p.stats }

// Pollution returns this core's cross-core pollution counters: prefetch
// evictions of other cores' demand-resident lines it caused, and of its
// own lines it suffered.
func (p *CorePort) Pollution() (caused, suffered uint64) {
	return p.pollutionCaused, p.pollutionSuffered
}

// global maps a core-local address into the shared fabric's space.
func (p *CorePort) global(addr uint64) uint64 {
	if !p.sys.asidOn {
		return addr
	}
	return (addr & coRunASIDMask) | uint64(p.id)<<coRunASIDShift
}

// local strips the ASID bits off a shared-fabric address.
func (cs *CoRunSystem) local(addr uint64) uint64 {
	if !cs.asidOn {
		return addr
	}
	return addr & coRunASIDMask
}

// ownerOf returns the core id owning a shared-fabric address.
func (cs *CoRunSystem) ownerOf(addr uint64) int {
	if !cs.asidOn {
		return 0
	}
	return int(addr >> coRunASIDShift)
}

// present reports whether a core-local block is in the shared L2 or
// already on its way (the engine-facing candidate filter).
func (p *CorePort) present(block uint64) bool {
	g := p.global(block)
	if p.sys.L2.Contains(g) {
		return true
	}
	_, inf := p.sys.inflight.Get(p.sys.L2.BlockAddr(g))
	return inf
}

// rowOpen reports whether a core-local block's DRAM row is open.
func (p *CorePort) rowOpen(block uint64) bool {
	return p.sys.Dram.RowOpen(p.global(block))
}

// popCandidate pops the next prefetch candidate off this core's engine.
func (p *CorePort) popCandidate() (uint64, bool) {
	if opa, isOPA := p.Engine.(prefetch.OpenPageAware); p.sys.cfg.OpenPageFirst && isOPA {
		return opa.PopOpenFirst(p.presentFn, p.rowOpenFn)
	}
	return p.Engine.Pop(p.presentFn)
}

// nextArrival returns the earliest queued arrival's completion cycle.
func (cs *CoRunSystem) nextArrival() (uint64, bool) {
	idx := cs.arrivals.peek()
	if idx < 0 {
		return 0, false
	}
	return cs.pool.at(idx).doneAt, true
}

// addInflight registers a new in-flight line under its global address.
func (cs *CoRunSystem) addInflight(block, doneAt uint64, pf bool) *inflightLine {
	idx := cs.pool.alloc()
	ln := cs.pool.at(idx)
	*ln = inflightLine{block: block, doneAt: doneAt, seq: cs.nextSeq, prefetch: pf, attribIdx: -1}
	cs.nextSeq++
	cs.inflight.Set(block, idx)
	cs.arrivals.insert(idx)
	return ln
}

// processArrivals applies all fills whose data has arrived by cycle t,
// routing each to its owning core's engine and settling cross-core
// pollution on eviction.
func (cs *CoRunSystem) processArrivals(t uint64) {
	for {
		idx := cs.arrivals.peek()
		if idx < 0 {
			return
		}
		ln := cs.pool.at(idx)
		if ln.doneAt > t {
			return
		}
		cs.arrivals.pop()
		block, doneAt, pf, attribIdx := ln.block, ln.doneAt, ln.prefetch, ln.attribIdx
		cs.pool.release(idx)
		cs.inflight.Delete(block)
		owner := cs.ports[cs.ownerOf(block)]
		if pf {
			owner.inflightPF--
		}
		if cs.watchdog != nil {
			cs.watchdog.NoteMem(doneAt)
		}
		v, evicted, filled := cs.L2.FillTracked(block, pf, false)
		crossVictim := false
		if evicted {
			if v.Dirty {
				cs.Dram.Submit(v.Addr, dram.Writeback, doneAt)
			}
			vport := cs.ports[cs.ownerOf(v.Addr)]
			crossVictim = vport != owner
			if v.Prefetched {
				// The victim's own lifecycle settles in its owner's ledger.
				vport.ledger.EvictPrefetched(cs.local(v.Addr))
			}
		}
		if pf && owner.ledger != nil {
			if crossVictim {
				// A foreign victim must not enter this ledger's re-miss
				// table (the spaces are disjoint); cross-core pollution is
				// recorded explicitly below.
				owner.ledger.Fill(attribIdx, doneAt, filled, 0, false, false)
			} else {
				owner.ledger.Fill(attribIdx, doneAt, filled, cs.local(v.Addr), evicted, v.Prefetched)
			}
		}
		if pf && crossVictim && !v.Prefetched {
			// A prefetch from this core displaced another core's valid
			// demand-resident line: pollution charged to the issuer, with
			// the victim armed in its owner's re-miss tracker.
			vport := cs.ports[cs.ownerOf(v.Addr)]
			owner.pollutionCaused++
			vport.pollutionSuffered++
			owner.ledger.CrossCoreVictim(attribIdx)
			vport.ledger.VictimDisplaced(cs.local(v.Addr))
		}
		// Pointer-scanning engines inspect every arriving line of their own
		// core; lines are ASID-tagged, so only the owner scans.
		owner.Engine.OnArrival(cs.local(block))
	}
}

// Advance runs the shared prefetch pump and arrival processing up to
// cycle now. Per iteration the round-robin arbiter picks one schedulable
// core — free prefetch slot, a candidate in its holding register, and
// (with the prioritizer on) a target channel that goes idle inside the
// window — and submits its candidate; issue pacing on the shared command
// path advances the pump by TransferCycles per grant. A candidate whose
// channel stays busy through the whole window parks at its core's
// holding register for the rest of this Advance (channel-free times only
// grow within a window), counting one prioritizer hold, exactly like the
// single-core pump's hold-and-break.
func (cs *CoRunSystem) Advance(now uint64) {
	if now <= cs.cursor {
		cs.processArrivals(cs.cursor)
		return
	}
	cs.advanceID++
	t := cs.cursor
	for t < now {
		if cs.watchdog != nil && cs.watchdog.noteSpin(t) {
			panic(&LivelockError{
				Cycle: t, LastRetire: cs.watchdog.lastRetire,
				LastMem: cs.watchdog.lastMem, Spin: true,
				Dump: cs.DiagnosticDump(t),
			})
		}
		cs.processArrivals(t)

		// Prime: every core with a free prefetch slot gets a candidate into
		// its holding register, dropping candidates that became present
		// while parked (the single-core pump's drop-and-retry).
		capBlocked := false
		for _, p := range cs.ports {
			for {
				if p.inflightPF >= cs.cfg.MaxInflightPrefetches {
					capBlocked = true
					break
				}
				if p.heldValid {
					if p.present(p.held) {
						p.heldValid = false
						p.ledger.DropHeldPresent()
						continue // became cached while held; pop a fresh one
					}
					break
				}
				cand, ok := p.popCandidate()
				if !ok {
					break
				}
				p.held, p.heldValid = cand, true
			}
		}

		granted, ok := cs.arb.Grant(func(c int) bool {
			p := cs.ports[c]
			if !p.heldValid || p.inflightPF >= cs.cfg.MaxInflightPrefetches ||
				p.parkedID == cs.advanceID {
				return false
			}
			if !cs.prioritizer {
				return true
			}
			start := t
			ch, _, _ := cs.Dram.Map(p.global(p.held))
			if free := cs.Dram.ChannelFreeAt(ch); free > start {
				start = free
			}
			if start >= now {
				// The channel never goes idle inside this window: park the
				// candidate rather than delay demands.
				p.parkedID = cs.advanceID
				p.stats.PrioritizerHolds++
				p.ledger.HoldBusy()
				return false
			}
			return true
		})
		if !ok {
			// Nobody can issue in this window. If a core is only waiting
			// for a prefetch slot, jump to the arrival that frees one.
			if capBlocked {
				if next, na := cs.nextArrival(); na && next < now {
					t = next
					continue
				}
			}
			break
		}
		p := cs.ports[granted]
		cand := p.held
		p.heldValid = false
		gcand := p.global(cand)
		start := t
		if cs.prioritizer {
			ch, _, _ := cs.Dram.Map(gcand)
			if free := cs.Dram.ChannelFreeAt(ch); free > start {
				start = free
			}
		}
		done := cs.Dram.Submit(gcand, dram.Prefetch, start)
		ln := cs.addInflight(gcand, done, true)
		p.inflightPF++
		p.stats.PrefetchesIssued++
		if p.ledger != nil {
			ln.attribIdx = p.ledger.Issue(cand, start, false)
		}
		t = start + cs.cfg.DRAM.TransferCycles // shared issue-bandwidth pacing
	}
	cs.cursor = now
	cs.processArrivals(now)
}

// Load performs a demand load for this core (see MemSystem.Load).
func (p *CorePort) Load(pc, addr uint64, hint isa.Hint, coeff uint8, now uint64) uint64 {
	p.stats.Loads++
	return p.access(pc, addr, false, hint, coeff, now)
}

// Store performs a demand store for this core (see MemSystem.Store).
func (p *CorePort) Store(pc, addr uint64, now uint64) uint64 {
	p.stats.Stores++
	return p.access(pc, addr, true, isa.HintNone, isa.FixedRegion, now)
}

func (p *CorePort) access(pc, addr uint64, write bool, hint isa.Hint, coeff uint8, now uint64) uint64 {
	cs := p.sys
	// Submission times are clamped monotonically across ALL cores: the
	// shared pump's bookkeeping needs nondecreasing time, and the co-run
	// driver steps the thread that is furthest behind, so the clamp also
	// absorbs cross-core issue jitter.
	if now < cs.lastSubmit {
		now = cs.lastSubmit
	}
	cs.lastSubmit = now
	cs.Advance(now)
	if cs.checkInv {
		cs.sinceInv++
		if cs.sinceInv >= cs.checkGap {
			cs.sinceInv = 0
			cs.mustHoldInvariants(now)
		}
	}

	l1lat := uint64(cs.cfg.L1.HitLatency)
	l2lat := uint64(cs.cfg.L2.HitLatency)
	gaddr := p.global(addr)
	block := cs.L2.BlockAddr(gaddr)
	lb := cs.local(block)

	// Merge with an outstanding miss or in-flight prefetch before probing
	// the L1 (see MemSystem.access). ASID tagging means a merge can only
	// ever hit this core's own line.
	if li, ok := cs.inflight.Get(block); ok {
		ln := cs.pool.at(li)
		p.stats.InflightMerges++
		ln.merged = true
		if ln.prefetch {
			p.stats.PrefetchLates++
			p.Engine.OnDemandHitPrefetched(lb)
			p.ledger.Late(ln.attribIdx)
		}
		p.ledger.Hint(pc, lb)
		p.Engine.OnL2DemandMiss(prefetch.MissEvent{
			PC: pc, Addr: addr, Hint: hint, Coeff: coeff, Merged: true,
			Present: p.presentFn,
		})
		d := ln.doneAt
		if m := now + l1lat + l2lat; m > d {
			d = m
		}
		return d
	}

	if hit, _ := p.L1.Access(addr, write); hit {
		return now + l1lat
	}

	if hit, wasPF := cs.L2.Access(gaddr, write); hit {
		if wasPF {
			p.Engine.OnDemandHitPrefetched(lb)
			p.ledger.DemandHit(lb)
		}
		p.fillL1(addr, write, now+l1lat+l2lat)
		return now + l1lat + l2lat
	}

	// Demand L2 miss: notify this core's engine, then go to DRAM through
	// this core's MSHR partition.
	p.Engine.OnL2DemandMiss(prefetch.MissEvent{
		PC: pc, Addr: addr, Hint: hint, Coeff: coeff, Present: p.presentFn,
	})
	p.ledger.Hint(pc, lb)

	lookupDone := now + l1lat + l2lat
	start, slot := p.mshr.Reserve(lookupDone)
	dramDone := cs.Dram.Submit(block, dram.Demand, start)
	p.mshr.Complete(slot, dramDone)
	if cs.watchdog != nil {
		cs.watchdog.NoteMem(now)
	}
	cs.addInflight(block, dramDone, false)
	p.fillL1(addr, write, dramDone)
	return dramDone
}

// fillL1 inserts the block into this core's private L1, writing a dirty
// victim back into the shared L2 (or memory).
func (p *CorePort) fillL1(addr uint64, write bool, when uint64) {
	v, evicted := p.L1.Fill(p.L1.BlockAddr(addr), false, write)
	if evicted && v.Dirty {
		g := p.global(v.Addr)
		if !p.sys.L2.MarkDirty(g) {
			p.sys.Dram.Submit(g, dram.Writeback, when)
		}
	}
}

// SoftwarePrefetch performs a non-binding PREF for this core (see
// MemSystem.SoftwarePrefetch).
func (p *CorePort) SoftwarePrefetch(addr, now uint64) {
	cs := p.sys
	if now < cs.lastSubmit {
		now = cs.lastSubmit
	}
	cs.lastSubmit = now
	cs.Advance(now)

	gaddr := p.global(addr)
	block := cs.L2.BlockAddr(gaddr)
	if _, inf := cs.inflight.Get(block); inf || p.L1.Contains(addr) || cs.L2.Contains(gaddr) {
		p.stats.SWPrefetchDrops++
		p.ledger.DropSoftware()
		return
	}
	p.stats.SWPrefetches++
	p.stats.PrefetchesIssued++
	lookupDone := now + uint64(cs.cfg.L1.HitLatency) + uint64(cs.cfg.L2.HitLatency)
	start, slot := p.mshr.Reserve(lookupDone)
	done := cs.Dram.Submit(block, dram.Prefetch, start)
	p.mshr.Complete(slot, done)
	ln := cs.addInflight(block, done, true)
	p.inflightPF++
	if p.ledger != nil {
		ln.attribIdx = p.ledger.Issue(cs.local(block), start, true)
	}
}

// SetBound forwards a SETBOUND instruction to this core's engine.
func (p *CorePort) SetBound(v uint64) { p.Engine.SetBound(v) }

// Indirect forwards a PREFI instruction to this core's engine.
func (p *CorePort) Indirect(indexAddr, base uint64, shift uint) {
	p.Engine.Indirect(indexAddr, base, shift)
}

// NoteRetire forwards a retirement on this core to the shared watchdog.
func (p *CorePort) NoteRetire(now uint64) {
	if p.sys.watchdog != nil {
		p.sys.watchdog.NoteRetire(now)
	}
}

// CheckProgress aborts with a *LivelockError panic when no core has made
// progress for the shared watchdog's stall threshold.
func (p *CorePort) CheckProgress(now uint64) {
	cs := p.sys
	if cs.watchdog == nil || !cs.watchdog.stalled(now) {
		return
	}
	panic(&LivelockError{
		Cycle: now, LastRetire: cs.watchdog.lastRetire,
		LastMem: cs.watchdog.lastMem,
		Dump:    cs.DiagnosticDump(now),
	})
}

// Drain lets all outstanding traffic land; call once, after every core's
// thread has finished.
func (cs *CoRunSystem) Drain() {
	for {
		next, ok := cs.nextArrival()
		if !ok {
			break
		}
		cs.Advance(next)
	}
	if cs.checkInv {
		cs.mustHoldInvariants(cs.cursor)
	}
}

// CheckInvariants audits the shared hierarchy: per-core MSHR bounds,
// agreement between the inflight table, the arrival queue, the line pool
// and every core's prefetch slot count, arbiter fairness (the starvation
// bound), engine self-audits, per-core stats identities, shared-L2
// identities, pollution symmetry, and per-core ledger bounds.
func (cs *CoRunSystem) CheckInvariants() error {
	for _, p := range cs.ports {
		if n, size := p.mshr.BusyAt(cs.cursor), p.mshr.Size(); size > 0 {
			if n > size {
				return fmt.Errorf("core %d: L2 MSHR occupancy %d exceeds capacity %d", p.id, n, size)
			}
			if pk := p.mshr.Peak(); pk > size {
				return fmt.Errorf("core %d: L2 MSHR peak %d exceeds capacity %d", p.id, pk, size)
			}
		}
	}

	// Queue / table / pool / slot-count agreement, per owning core.
	livePF := make([]int, len(cs.ports))
	entries := 0
	var qerr error
	cs.arrivals.forEach(func(idx int32) {
		entries++
		ln := cs.pool.at(idx)
		got, ok := cs.inflight.Get(ln.block)
		if !ok && qerr == nil {
			qerr = fmt.Errorf("arrival queue entry %#x missing from inflight table", ln.block)
		}
		if ok && got != idx && qerr == nil {
			qerr = fmt.Errorf("inflight table entry %#x does not match its queue entry", ln.block)
		}
		if o := cs.ownerOf(ln.block); o < 0 || o >= len(cs.ports) {
			if qerr == nil {
				qerr = fmt.Errorf("inflight line %#x owned by no core (asid %d)", ln.block, o)
			}
		} else if ln.prefetch {
			livePF[o]++
		}
	})
	if qerr != nil {
		return qerr
	}
	if entries != cs.arrivals.len() {
		return fmt.Errorf("arrival queue size %d does not match bucket contents %d",
			cs.arrivals.len(), entries)
	}
	if cs.pool.live() != entries {
		return fmt.Errorf("line pool holds %d live slots, arrival queue %d entries",
			cs.pool.live(), entries)
	}
	if cs.inflight.Len() != entries {
		return fmt.Errorf("inflight table holds %d lines, arrival queue %d entries",
			cs.inflight.Len(), entries)
	}
	for _, p := range cs.ports {
		if livePF[p.id] != p.inflightPF {
			return fmt.Errorf("core %d: inflight prefetch count %d does not match queue contents %d",
				p.id, p.inflightPF, livePF[p.id])
		}
	}

	// The arbiter's round-robin starvation bound. A tampered or buggy
	// arbiter that skips a schedulable core surfaces here.
	if err := cs.arb.CheckFairness(); err != nil {
		return err
	}

	var issuedAll uint64
	for _, p := range cs.ports {
		if ch, ok := p.Engine.(prefetch.Checker); ok {
			if err := ch.CheckInvariants(); err != nil {
				return fmt.Errorf("core %d engine %s: %w", p.id, p.Engine.Name(), err)
			}
		}
		if p.stats.PrefetchLates > p.stats.InflightMerges {
			return fmt.Errorf("core %d: late prefetches %d exceed inflight merges %d",
				p.id, p.stats.PrefetchLates, p.stats.InflightMerges)
		}
		if l1 := p.L1.Stats(); !cs.cfg.L1.Perfect && l1.Hits+l1.Misses != l1.Accesses {
			return fmt.Errorf("core %d: L1 hits %d + misses %d != accesses %d",
				p.id, l1.Hits, l1.Misses, l1.Accesses)
		}
		if p.ledger != nil {
			if got := p.ledger.Issued(); got != p.stats.PrefetchesIssued {
				return fmt.Errorf("core %d: ledger issued %d does not match stats %d",
					p.id, got, p.stats.PrefetchesIssued)
			}
			if c := p.ledger.Classified(); c > p.stats.PrefetchesIssued {
				return fmt.Errorf("core %d: ledger classified %d exceeds issued %d",
					p.id, c, p.stats.PrefetchesIssued)
			}
		}
		issuedAll += p.stats.PrefetchesIssued
	}

	if l2 := cs.L2.Stats(); !cs.cfg.L2.Perfect {
		if l2.PrefetchFills > issuedAll {
			return fmt.Errorf("L2 prefetch fills %d exceed prefetches issued %d",
				l2.PrefetchFills, issuedAll)
		}
		if l2.UsefulPrefetches+l2.UselessPrefetches > l2.PrefetchFills {
			return fmt.Errorf("prefetch outcomes useful=%d + useless=%d exceed fills %d",
				l2.UsefulPrefetches, l2.UselessPrefetches, l2.PrefetchFills)
		}
		if l2.Hits+l2.Misses != l2.Accesses {
			return fmt.Errorf("L2 hits %d + misses %d != accesses %d",
				l2.Hits, l2.Misses, l2.Accesses)
		}
	}

	// Every polluting eviction has exactly one perpetrator and one victim.
	var caused, suffered uint64
	for _, p := range cs.ports {
		caused += p.pollutionCaused
		suffered += p.pollutionSuffered
	}
	if caused != suffered {
		return fmt.Errorf("cross-core pollution caused %d != suffered %d", caused, suffered)
	}
	return nil
}

// mustHoldInvariants aborts via an *InvariantError panic on a violation.
func (cs *CoRunSystem) mustHoldInvariants(now uint64) {
	if err := cs.CheckInvariants(); err != nil {
		panic(&InvariantError{Cycle: now, Violation: err.Error(), Dump: cs.DiagnosticDump(now)})
	}
}

// DiagnosticDump renders the co-run system's live state for watchdog and
// invariant abort reports.
func (cs *CoRunSystem) DiagnosticDump(now uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "corun state at cycle %d (%d cores):\n", now, len(cs.ports))
	fmt.Fprintf(&b, "  pump: cursor=%d lastSubmit=%d advance=%d\n", cs.cursor, cs.lastSubmit, cs.advanceID)
	fmt.Fprintf(&b, "  inflight: %d lines, %d queue entries\n", cs.inflight.Len(), cs.arrivals.len())
	if idx := cs.arrivals.peek(); idx >= 0 {
		ln := cs.pool.at(idx)
		fmt.Fprintf(&b, "  next arrival: block %#x (core %d) at cycle %d\n",
			ln.block, cs.ownerOf(ln.block), ln.doneAt)
	}
	fmt.Fprintf(&b, "  arbiter: grants=%v\n", cs.arb.Grants())
	for _, p := range cs.ports {
		fmt.Fprintf(&b, "  core %d: engine=%s pf=%d/%d heldValid=%v mshr=%d/%d loads=%d stores=%d pf_issued=%d holds=%d pollution=%d/%d\n",
			p.id, p.Engine.Name(), p.inflightPF, cs.cfg.MaxInflightPrefetches,
			p.heldValid, p.mshr.BusyAt(cs.cursor), p.mshr.Size(),
			p.stats.Loads, p.stats.Stores, p.stats.PrefetchesIssued,
			p.stats.PrioritizerHolds, p.pollutionCaused, p.pollutionSuffered)
	}
	return b.String()
}
