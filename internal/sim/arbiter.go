package sim

import "fmt"

// arbiterTamper, when non-nil, makes every Arbiter silently refuse to
// grant cores for which it returns true. It exists solely for the
// conformance harness's known-bad self-test: a tampered arbiter models a
// starvation bug in the cross-core issue path, which the co-run invariant
// checker must catch fleet-wide. Never set outside tests.
var arbiterTamper func(core int) bool

// SetArbiterTamper installs (or, with nil, removes) the test-only
// arbiter tamper hook. See arbiterTamper.
func SetArbiterTamper(skip func(core int) bool) { arbiterTamper = skip }

// Arbiter is the cross-core channel arbiter of the co-run memory system:
// each pump iteration it picks one schedulable core's prefetch candidate
// to feed the access prioritizer. The policy is round-robin — the scan
// starts just past the most recently granted core and the first
// schedulable core in rotation order wins — which gives a hard fairness
// bound: a core that is schedulable at every grant waits at most n-1
// grants.
//
// Grant probes every core exactly once per call, in rotation order, so
// the outcome is a function of (readiness vector, last grant) alone and
// never of the order in which the caller happens to enumerate cores.
type Arbiter struct {
	n    int
	last int // most recently granted core; scan starts at last+1

	// passedOver[c] counts consecutive Grant calls in which core c was
	// schedulable but another core won. It resets on a grant to c and on
	// any probe that finds c unschedulable, so it measures exactly the
	// wait of a continuously requesting core — the quantity round-robin
	// bounds by n-1.
	passedOver []uint64
	grants     []uint64
	total      uint64
}

// NewArbiter returns a round-robin arbiter over n cores; the first scan
// starts at core 0.
func NewArbiter(n int) *Arbiter {
	if n <= 0 {
		panic(fmt.Sprintf("sim: arbiter over %d cores", n))
	}
	return &Arbiter{
		n:          n,
		last:       n - 1,
		passedOver: make([]uint64, n),
		grants:     make([]uint64, n),
	}
}

// Cores returns the number of cores the arbiter serves.
func (a *Arbiter) Cores() int { return a.n }

// Grant picks the next core: the first one in rotation order (starting
// just past the previous grant) for which ready reports true. It returns
// (core, true) on a grant and (0, false) when no core is ready — the
// arbiter is work-conserving by construction. Every core is probed
// exactly once per call regardless of where the winner sits, both for
// fairness bookkeeping and so ready's call pattern cannot leak the
// caller's enumeration order into the outcome.
func (a *Arbiter) Grant(ready func(core int) bool) (int, bool) {
	granted := -1
	for off := 1; off <= a.n; off++ {
		core := a.last + off
		if core >= a.n {
			core -= a.n
		}
		if !ready(core) {
			a.passedOver[core] = 0
			continue
		}
		if granted < 0 && (arbiterTamper == nil || !arbiterTamper(core)) {
			granted = core
			continue
		}
		a.passedOver[core]++
	}
	if granted < 0 {
		return 0, false
	}
	a.passedOver[granted] = 0
	a.grants[granted]++
	a.total++
	a.last = granted
	return granted, true
}

// Grants returns a copy of the per-core grant tallies.
func (a *Arbiter) Grants() []uint64 {
	out := make([]uint64, a.n)
	copy(out, a.grants)
	return out
}

// TotalGrants returns the total number of grants issued.
func (a *Arbiter) TotalGrants() uint64 { return a.total }

// CheckFairness audits the round-robin bound: a continuously schedulable
// core can legally be passed over at most n-1 consecutive grants, so a
// counter at n or above means the arbiter is starving that core. The
// co-run invariant checker calls it; a violation is how a tampered (or
// buggy) arbiter surfaces fleet-wide.
func (a *Arbiter) CheckFairness() error {
	for c, p := range a.passedOver {
		if p >= uint64(a.n) {
			return fmt.Errorf("arbiter starvation: core %d passed over %d consecutive grants (round-robin bound is %d)",
				c, p, a.n-1)
		}
	}
	return nil
}
