package sim

import (
	"math/rand"
	"testing"
)

// readyVec adapts a readiness bitmask to the Grant callback, counting
// probes per core so tests can assert the probe-once discipline.
type readyVec struct {
	mask   uint64
	probes []int
}

func (r *readyVec) fn(core int) bool {
	r.probes[core]++
	return r.mask&(1<<core) != 0
}

// TestArbiterWorkConservation: whenever at least one core is ready,
// Grant grants, and always a ready core.
func TestArbiterWorkConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{1, 2, 3, 5, 8} {
		a := NewArbiter(n)
		for step := 0; step < 2000; step++ {
			rv := &readyVec{mask: rng.Uint64() & (1<<n - 1), probes: make([]int, n)}
			core, ok := a.Grant(rv.fn)
			if rv.mask == 0 {
				if ok {
					t.Fatalf("n=%d step %d: granted core %d with nobody ready", n, step, core)
				}
				continue
			}
			if !ok {
				t.Fatalf("n=%d step %d: no grant with ready mask %#x — not work-conserving", n, step, rv.mask)
			}
			if rv.mask&(1<<core) == 0 {
				t.Fatalf("n=%d step %d: granted unready core %d (mask %#x)", n, step, core, rv.mask)
			}
			for c, p := range rv.probes {
				if p != 1 {
					t.Fatalf("n=%d step %d: core %d probed %d times, want exactly 1", n, step, c, p)
				}
			}
		}
	}
}

// TestArbiterBoundedWait: a core that is ready at every Grant call waits
// at most n-1 grants between wins — the round-robin bound — no matter
// what the other cores do. CheckFairness must stay clean throughout.
func TestArbiterBoundedWait(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{2, 3, 4, 7} {
		for victim := 0; victim < n; victim++ {
			a := NewArbiter(n)
			waited := 0
			for step := 0; step < 5000; step++ {
				mask := rng.Uint64()&(1<<n-1) | 1<<victim // victim always ready
				core, ok := a.Grant(func(c int) bool { return mask&(1<<c) != 0 })
				if !ok {
					t.Fatalf("n=%d: no grant with victim ready", n)
				}
				if core == victim {
					waited = 0
				} else {
					waited++
					if waited > n-1 {
						t.Fatalf("n=%d: continuously ready core %d passed over %d consecutive grants (bound %d)",
							n, victim, waited, n-1)
					}
				}
				if err := a.CheckFairness(); err != nil {
					t.Fatalf("n=%d step %d: honest arbiter flagged: %v", n, step, err)
				}
			}
		}
	}
}

// TestArbiterIntermittentReadyClean: a core that keeps withdrawing its
// request accumulates no pass-over debt — the counter measures only
// continuous waiting, so honest intermittent readiness can never trip
// the starvation bound even over long runs.
func TestArbiterIntermittentReadyClean(t *testing.T) {
	const n = 4
	a := NewArbiter(n)
	for step := 0; step < 10000; step++ {
		// Core 3 is ready only on even steps and loses to core 0 whenever
		// both are ready; its total losses are unbounded but never
		// consecutive.
		mask := uint64(1 << 0)
		if step%2 == 0 {
			mask |= 1 << 3
		}
		if _, ok := a.Grant(func(c int) bool { return mask&(1<<c) != 0 }); !ok {
			t.Fatal("no grant")
		}
		if err := a.CheckFairness(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
}

// TestArbiterEnumerationOrderInvariance: the grant sequence is a pure
// function of (readiness vectors, grant history). Two arbiters fed the
// same readiness relation through differently-shuffled lookup structures
// must produce identical grant sequences — the arbiter's internal
// rotation scan, not the caller's data layout, decides.
func TestArbiterEnumerationOrderInvariance(t *testing.T) {
	const n = 6
	rng := rand.New(rand.NewSource(47))
	perm := rng.Perm(n)

	a1, a2 := NewArbiter(n), NewArbiter(n)
	for step := 0; step < 3000; step++ {
		mask := rng.Uint64() & (1<<n - 1)

		// a1 answers directly; a2 answers by scanning a permuted list of
		// (core, ready) pairs, modeling a caller that enumerates its cores
		// in arbitrary order.
		type ent struct {
			core  int
			ready bool
		}
		table := make([]ent, n)
		for i, c := range perm {
			table[i] = ent{core: c, ready: mask&(1<<c) != 0}
		}
		c1, ok1 := a1.Grant(func(c int) bool { return mask&(1<<c) != 0 })
		c2, ok2 := a2.Grant(func(c int) bool {
			for _, e := range table {
				if e.core == c {
					return e.ready
				}
			}
			return false
		})
		if ok1 != ok2 || c1 != c2 {
			t.Fatalf("step %d: grant diverged under permuted enumeration: (%d,%v) vs (%d,%v)",
				step, c1, ok1, c2, ok2)
		}
	}
	if g1, g2 := a1.Grants(), a2.Grants(); len(g1) == len(g2) {
		for c := range g1 {
			if g1[c] != g2[c] {
				t.Fatalf("grant tallies diverged at core %d: %d vs %d", c, g1[c], g2[c])
			}
		}
	}
}

// TestArbiterRoundRobinOrder: with all cores always ready, grants cycle
// 0,1,...,n-1,0,1,... exactly.
func TestArbiterRoundRobinOrder(t *testing.T) {
	const n = 5
	a := NewArbiter(n)
	for step := 0; step < 3*n; step++ {
		core, ok := a.Grant(func(int) bool { return true })
		if !ok || core != step%n {
			t.Fatalf("step %d: got (%d,%v), want (%d,true)", step, core, ok, step%n)
		}
	}
}

// TestArbiterTamperTripsFairness: a tampered arbiter that silently
// refuses one core is exactly the starvation bug CheckFairness exists to
// catch — with the victim continuously ready it must flag within n
// grants of the tamper taking effect.
func TestArbiterTamperTripsFairness(t *testing.T) {
	const n = 3
	SetArbiterTamper(func(core int) bool { return core == 1 })
	defer SetArbiterTamper(nil)

	a := NewArbiter(n)
	for step := 0; step < n; step++ {
		core, ok := a.Grant(func(int) bool { return true })
		if !ok {
			t.Fatal("no grant")
		}
		if core == 1 {
			t.Fatal("tamper failed to starve core 1")
		}
	}
	if err := a.CheckFairness(); err == nil {
		t.Fatal("CheckFairness missed a starved core after tampered grants")
	}
}

// TestArbiterPanicsOnZeroCores documents the constructor contract.
func TestArbiterPanicsOnZeroCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewArbiter(0) did not panic")
		}
	}()
	NewArbiter(0)
}
