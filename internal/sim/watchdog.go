package sim

import "fmt"

// The forward-progress watchdog exists because a production-scale
// simulator must fail loudly on a wedged queue instead of spinning
// forever. It watches two failure shapes:
//
//   - stall: simulated time advances but nothing retires and no memory
//     event drains for StallCycles — the classic livelock where every
//     component waits on another;
//   - spin: the prefetch pump iterates without simulated time advancing at
//     all (possible only with degenerate configurations, e.g. a
//     zero-cycle DRAM transfer paired with an endless candidate stream).
//
// Both abort the run with a structured diagnostic dump rather than a
// wedge. The abort travels as a panic carrying *LivelockError or
// *InvariantError because it originates deep inside the timing pump,
// whose methods return cycles, not errors; RecoverAbort converts it back
// into an error at the API boundary (core.Run and the drivers).

// WatchdogConfig sets the detection thresholds. Zero fields take the
// defaults below.
type WatchdogConfig struct {
	// StallCycles is how long simulated time may advance with no retired
	// instruction and no drained memory event before the run aborts.
	StallCycles uint64
	// SpinEvents is how many prefetch-pump events may fire at one cycle
	// before the run aborts.
	SpinEvents uint64
}

// Default watchdog thresholds: generous enough that no legitimate run
// trips them (the largest legitimate stall is one DRAM round trip behind
// a full MSHR file, thousands of cycles), small enough to abort quickly.
const (
	DefaultStallCycles = 20_000_000
	DefaultSpinEvents  = 1_000_000
)

func (c WatchdogConfig) withDefaults() WatchdogConfig {
	if c.StallCycles == 0 {
		c.StallCycles = DefaultStallCycles
	}
	if c.SpinEvents == 0 {
		c.SpinEvents = DefaultSpinEvents
	}
	return c
}

// Watchdog tracks forward progress. The zero value is unusable; obtain
// one via MemSystem.SetWatchdog.
type Watchdog struct {
	cfg        WatchdogConfig
	lastRetire uint64
	lastMem    uint64
	spinAt     uint64
	spins      uint64
}

// NoteRetire records an instruction retirement at cycle now.
func (w *Watchdog) NoteRetire(now uint64) {
	if now > w.lastRetire {
		w.lastRetire = now
	}
}

// NoteMem records a drained memory event (arrival, submission) at now.
func (w *Watchdog) NoteMem(now uint64) {
	if now > w.lastMem {
		w.lastMem = now
	}
}

// stalled reports whether the stall threshold is exceeded at cycle now.
func (w *Watchdog) stalled(now uint64) bool {
	last := w.lastRetire
	if w.lastMem > last {
		last = w.lastMem
	}
	return now > last && now-last > w.cfg.StallCycles
}

// noteSpin records one pump event at the given cycle and reports whether
// the same-cycle spin threshold is exceeded.
func (w *Watchdog) noteSpin(cycle uint64) bool {
	if cycle != w.spinAt {
		w.spinAt = cycle
		w.spins = 0
	}
	w.spins++
	return w.spins > w.cfg.SpinEvents
}

// LivelockError reports a forward-progress failure, with a diagnostic
// dump of the memory system at the moment of the abort.
type LivelockError struct {
	Cycle      uint64 // cycle at which the watchdog fired
	LastRetire uint64 // last instruction retirement seen
	LastMem    uint64 // last drained memory event seen
	Spin       bool   // true for a same-cycle spin, false for a stall
	Dump       string // structured memory-system state
}

// Error implements error.
func (e *LivelockError) Error() string {
	kind := "stall"
	if e.Spin {
		kind = "spin"
	}
	return fmt.Sprintf("livelock (%s) at cycle %d: last retire %d, last memory event %d\n%s",
		kind, e.Cycle, e.LastRetire, e.LastMem, e.Dump)
}

// InvariantError reports a memory-system invariant violation, with the
// same diagnostic dump.
type InvariantError struct {
	Cycle     uint64
	Violation string
	Dump      string
}

// Error implements error.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("invariant violated at cycle %d: %s\n%s", e.Cycle, e.Violation, e.Dump)
}

// RecoverAbort converts a watchdog or invariant panic back into an error.
// Use it in a defer around simulation entry points:
//
//	func run() (err error) {
//		defer sim.RecoverAbort(&err)
//		...
//	}
//
// Panics of any other type propagate unchanged.
func RecoverAbort(err *error) {
	switch r := recover().(type) {
	case nil:
	case *LivelockError:
		*err = r
	case *InvariantError:
		*err = r
	default:
		panic(r)
	}
}
