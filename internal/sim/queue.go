package sim

// This file holds the overhauled arrival machinery: a slab pool of
// in-flight lines addressed by index, and a bucketed calendar queue
// ordered by (doneAt, seq) that replaces the container/heap arrivalHeap.
// Both are allocation-free in steady state — the pool recycles slots and
// the bucket slices keep their capacity — and both order arrivals by the
// explicit (doneAt, seq) key, so drain order is identical to the legacy
// heap by construction (see arrival_order_test.go).

// linePool is a slab allocator for inflightLine records. Lines are
// referred to by index rather than pointer: indices stay valid across the
// backing array's growth, and a freed slot is recycled before the slab
// grows again, so a cell's steady state allocates nothing.
type linePool struct {
	lines []inflightLine
	free  []int32
}

// alloc returns a zeroed line slot. The returned index is stable; the
// *inflightLine from at() is invalidated by the next alloc (growth may
// move the slab).
func (p *linePool) alloc() int32 {
	if n := len(p.free); n > 0 {
		idx := p.free[n-1]
		p.free = p.free[:n-1]
		p.lines[idx] = inflightLine{}
		return idx
	}
	p.lines = append(p.lines, inflightLine{})
	return int32(len(p.lines) - 1)
}

// release returns a slot to the free list.
func (p *linePool) release(idx int32) { p.free = append(p.free, idx) }

// at returns the line at idx; the pointer is valid only until the next
// alloc.
func (p *linePool) at(idx int32) *inflightLine { return &p.lines[idx] }

// live returns the number of slots currently allocated.
func (p *linePool) live() int { return len(p.lines) - len(p.free) }

// Calendar-queue geometry: calDays buckets of calWidth cycles each. The
// horizon (calDays × calWidth = 16384 cycles) comfortably covers the
// DRAM round trip plus queueing, so in practice every queued arrival
// lands within the current "year" and peek touches one or two buckets.
// Entries beyond the horizon are still correct — each bucket is ordered
// and peek checks the head's day — they only cost longer cursor walks.
const (
	calDays  = 256
	calShift = 6 // bucket width 64 cycles
)

// calendarQueue is a priority queue of pooled line indices keyed by
// (doneAt, seq). Bucket b holds the entries of every day d with
// d % calDays == b, each bucket insertion-sorted by the key; the day
// cursor tracks the minimum live day, advancing over empty days on peek
// and snapping back on inserts behind it.
type calendarQueue struct {
	pool    *linePool
	buckets [calDays][]int32
	day     uint64 // cursor ≤ the minimum live day
	size    int
}

func (q *calendarQueue) len() int { return q.size }

// insert queues the pooled line at idx by its (doneAt, seq) key.
func (q *calendarQueue) insert(idx int32) {
	ln := q.pool.at(idx)
	day := ln.doneAt >> calShift
	if q.size == 0 || day < q.day {
		q.day = day
	}
	b := q.buckets[day%calDays]
	lo, hi := 0, len(b)
	for lo < hi {
		m := (lo + hi) / 2
		lm := q.pool.at(b[m])
		if lm.doneAt < ln.doneAt || (lm.doneAt == ln.doneAt && lm.seq < ln.seq) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	b = append(b, 0)
	copy(b[lo+1:], b[lo:])
	b[lo] = idx
	q.buckets[day%calDays] = b
	q.size++
}

// peek returns the index of the minimum entry without removing it, or -1
// when empty. It advances the day cursor over empty days; if a full lap
// finds only future-year heads (arrivals beyond the horizon), it jumps
// the cursor straight to the global minimum.
func (q *calendarQueue) peek() int32 {
	if q.size == 0 {
		return -1
	}
	day := q.day
	for lap := 0; lap < calDays; lap++ {
		if b := q.buckets[day%calDays]; len(b) > 0 {
			if q.pool.at(b[0]).doneAt>>calShift == day {
				q.day = day
				return b[0]
			}
		}
		day++
	}
	// Sparse far-future case: every bucket head (the bucket minimum) is a
	// candidate; the smallest key among them is the global minimum.
	best := int32(-1)
	for d := range q.buckets {
		b := q.buckets[d]
		if len(b) == 0 {
			continue
		}
		if best < 0 {
			best = b[0]
			continue
		}
		lb, lc := q.pool.at(b[0]), q.pool.at(best)
		if lb.doneAt < lc.doneAt || (lb.doneAt == lc.doneAt && lb.seq < lc.seq) {
			best = b[0]
		}
	}
	q.day = q.pool.at(best).doneAt >> calShift
	return best
}

// pop removes and returns the minimum entry, or -1 when empty.
func (q *calendarQueue) pop() int32 {
	idx := q.peek()
	if idx < 0 {
		return -1
	}
	b := q.buckets[q.day%calDays]
	copy(b, b[1:])
	q.buckets[q.day%calDays] = b[:len(b)-1]
	q.size--
	return idx
}

// forEach visits every queued entry in unspecified order (diagnostics,
// invariant audits, and fault victim selection, which orders by seq
// itself).
func (q *calendarQueue) forEach(f func(idx int32)) {
	for d := range q.buckets {
		for _, idx := range q.buckets[d] {
			f(idx)
		}
	}
}
