package sim

import (
	"testing"

	"grp/internal/faults"
	"grp/internal/isa"
	"grp/internal/prefetch"
)

// faultySys builds a memory system with the given fault plan armed and
// the invariant checker auditing every access.
func faultySys(t *testing.T, engine prefetch.Engine, plan faults.Plan) *MemSystem {
	t.Helper()
	ms := newSys(engine)
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	ms.SetFaults(faults.NewInjector(&plan))
	ms.EnableInvariantChecks(1)
	return ms
}

// TestMSHRPressureSerializes: with 7 of the 8 L2 MSHRs stolen, a burst of
// independent misses must serialize through the single remaining slot —
// strictly slower than the unpressured run, never deadlocked, and within
// capacity at every audit.
func TestMSHRPressureSerializes(t *testing.T) {
	run := func(steal int) uint64 {
		ms := faultySys(t, prefetch.NewNull(), faults.Plan{Seed: 1, MSHRSteal: steal})
		now := uint64(100)
		var last uint64
		for i := 0; i < 32; i++ {
			d := ms.Load(0, uint64(0x100000+i*4096), isa.HintNone, isa.FixedRegion, now)
			if d <= now {
				t.Fatalf("load %d completed at %d, submitted at %d", i, d, now)
			}
			if d > last {
				last = d
			}
			now++
		}
		ms.Drain()
		if err := ms.CheckInvariants(); err != nil {
			t.Fatalf("steal=%d: %v", steal, err)
		}
		return last
	}
	free := run(0)
	squeezed := run(7)
	if squeezed <= free {
		t.Errorf("7 stolen MSHRs should serialize the burst: pressured done=%d, free done=%d",
			squeezed, free)
	}
}

// TestDemandAfterCancelledPrefetch covers the nastiest cancellation
// hazard: a demand for a block whose prefetch was cancelled must refetch
// from DRAM as a fresh miss (the cancelled heap corpse is skipped, not
// merged with), and the eventual fill must survive the corpse draining.
func TestDemandAfterCancelledPrefetch(t *testing.T) {
	ms := newSys(prefetch.NewNull())
	ms.EnableInvariantChecks(1)
	ms.SoftwarePrefetch(0x30000, 100)
	if ms.arrivals.len() != 1 {
		t.Fatalf("expected one in-flight prefetch, have %d", ms.arrivals.len())
	}
	ms.cancelOnePrefetch()
	if ms.Stats().PrefetchesCancelled != 1 {
		t.Fatalf("cancelled = %d, want 1", ms.Stats().PrefetchesCancelled)
	}
	block := ms.L2.BlockAddr(0x30000)
	if _, ok := ms.inflight.Get(block); ok {
		t.Fatal("cancelled line still in the inflight table")
	}
	// The demand must not merge with the corpse: full DRAM miss.
	d := ms.Load(0, 0x30000, isa.HintNone, isa.FixedRegion, 110)
	if ms.Stats().InflightMerges != 0 {
		t.Error("demand merged with a cancelled prefetch line")
	}
	if d <= 110+15 {
		t.Errorf("demand after cancel finished in %d cycles; expected a full miss", d-110)
	}
	ms.Drain()
	if err := ms.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !ms.L2.Contains(block) {
		t.Error("demand refetch of the cancelled block did not fill the L2")
	}
}

// TestMergedPrefetchNotCancellable: once a demand has merged with an
// in-flight prefetch, the demand depends on that arrival; fault injection
// must refuse to cancel it.
func TestMergedPrefetchNotCancellable(t *testing.T) {
	ms := newSys(prefetch.NewNull())
	ms.EnableInvariantChecks(1)
	ms.SoftwarePrefetch(0x40000, 100)
	d := ms.Load(0, 0x40000, isa.HintNone, isa.FixedRegion, 110)
	if ms.Stats().InflightMerges != 1 {
		t.Fatalf("merges = %d, want 1", ms.Stats().InflightMerges)
	}
	ms.cancelOnePrefetch()
	if ms.Stats().PrefetchesCancelled != 0 {
		t.Error("cancelled a prefetch a demand already depends on")
	}
	ms.Drain()
	if err := ms.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !ms.L2.Contains(ms.L2.BlockAddr(0x40000)) {
		t.Error("merged prefetch never filled the L2")
	}
	_ = d
}

// TestCancelUnderSRP runs a real engine under a cancel-everything plan:
// prefetches keep being cancelled, demands keep completing, and the
// hierarchy stays consistent through drain.
func TestCancelUnderSRP(t *testing.T) {
	ms := faultySys(t, prefetch.NewSRP(), faults.Plan{Seed: 5, CancelInflight: 1})
	now := uint64(100)
	for i := 0; i < 64; i++ {
		d := ms.Load(0, uint64(0x200000+i*512), isa.HintNone, isa.FixedRegion, now)
		now = d + 1
	}
	ms.Drain()
	if err := ms.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if ms.Stats().PrefetchesCancelled == 0 {
		t.Error("cancel-everything plan cancelled nothing")
	}
	if ms.inflight.Len() != 0 || ms.arrivals.len() != 0 || ms.cancelled != 0 {
		t.Errorf("drain left inflight=%d arrivals=%d cancelled=%d",
			ms.inflight.Len(), ms.arrivals.len(), ms.cancelled)
	}
}

// scriptedEngine pops exactly the candidates the test queued.
type scriptedEngine struct {
	prefetch.Null
	queue []uint64
}

func (s *scriptedEngine) Pop(present func(uint64) bool) (uint64, bool) {
	for len(s.queue) > 0 {
		c := s.queue[0]
		s.queue = s.queue[1:]
		if !present(c) {
			return c, true
		}
	}
	return 0, false
}

// TestHeldCandidateDroppedWhenCached drives the prioritizer holding
// register through its subtlest path: a candidate parked because its
// channel never went idle, then fetched by a demand while held, must be
// discarded — not issued as a duplicate prefetch.
func TestHeldCandidateDroppedWhenCached(t *testing.T) {
	eng := &scriptedEngine{}
	ms, err := NewMemSystem(DefaultMemConfig(), eng)
	if err != nil {
		t.Fatal(err)
	}
	ms.EnableInvariantChecks(1)
	// Occupy a channel with a demand miss.
	ms.Load(0, 0xA0000, isa.HintNone, isa.FixedRegion, 100)
	ch, _, _ := ms.Dram.Map(ms.L2.BlockAddr(0xA0000))
	// Find another block on the same channel.
	blk := uint64(0)
	for c := uint64(0xA0000 + 64); ; c += 64 {
		if c2, _, _ := ms.Dram.Map(c); c2 == ch {
			blk = c
			break
		}
	}
	eng.queue = []uint64{blk}
	// Advance only to just before the channel goes idle: the candidate
	// cannot be issued inside the window, so it is held.
	free := ms.Dram.ChannelFreeAt(ch)
	ms.Advance(free - 1)
	if ms.Stats().PrioritizerHolds == 0 {
		t.Fatal("candidate was not held by the prioritizer")
	}
	if ms.Stats().PrefetchesIssued != 0 {
		t.Fatal("candidate issued despite a busy channel")
	}
	// A demand fetches the held block before the channel ever goes idle
	// from the holder's point of view.
	d := ms.Load(0, blk, isa.HintNone, isa.FixedRegion, free)
	ms.Advance(d + 10_000)
	ms.Drain()
	if ms.Stats().PrefetchesIssued != 0 {
		t.Error("held candidate issued after a demand already fetched its block")
	}
	if err := ms.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDegradedChannelSlowsButCompletes: a degraded channel stretches
// latencies; every access still completes and the controller stays sane.
func TestDegradedChannelSlowsButCompletes(t *testing.T) {
	slow := faultySys(t, prefetch.NewNull(), faults.Plan{
		Seed: 2, DegradeChannel: 1, DegradeCycles: 500,
		StuckBank: 1, StuckCycles: 800,
	})
	fast := newSys(prefetch.NewNull())
	now := uint64(100)
	var dSlow, dFast uint64
	for i := 0; i < 16; i++ {
		a := uint64(0x300000 + i*4096)
		dSlow = slow.Load(0, a, isa.HintNone, isa.FixedRegion, now)
		dFast = fast.Load(0, a, isa.HintNone, isa.FixedRegion, now)
		now += 10
	}
	slow.Drain()
	fast.Drain()
	if dSlow <= dFast {
		t.Errorf("degraded run finished at %d, healthy at %d", dSlow, dFast)
	}
	c := slow.FaultCounts()
	if c.Degraded == 0 || c.StuckBanks == 0 {
		t.Errorf("no DRAM faults recorded: %+v", c)
	}
	if err := slow.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
