// Package obs is the fleet observability layer for the long-running
// drivers (grpsweep, grpconform): a thread-safe progress reporter that
// derives throughput, worker utilization, cache hit rate, and ETA from
// cell start/finish events, and an opt-in debug HTTP server exposing the
// same numbers as Prometheus text metrics alongside net/http/pprof.
package obs

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Version identifies the grp build. Fleet dashboards join it with the
// build-info gauge to spot version skew across long-running servers.
const Version = "0.8.0"

// BuildInfo is the identity a server or driver exports on /metrics as a
// constant info-style gauge, so a fleet dashboard can detect skewed
// binaries — in particular, servers sharing one result store with
// different cache schema versions, which silently treat each other's
// cells as corrupt.
type BuildInfo struct {
	Version     string
	GoVersion   string
	CacheSchema int
}

// NewBuildInfo fills the Go toolchain version automatically.
func NewBuildInfo(version string, cacheSchema int) BuildInfo {
	return BuildInfo{Version: version, GoVersion: runtime.Version(), CacheSchema: cacheSchema}
}

// WritePrometheus emits the info gauge (value always 1, identity in the
// labels) under <prefix>_build_info.
func (b BuildInfo) WritePrometheus(w io.Writer, prefix string) error {
	_, err := fmt.Fprintf(w,
		"# TYPE %[1]s_build_info gauge\n%[1]s_build_info{version=%q,goversion=%q,cache_schema=\"%d\"} 1\n",
		prefix, b.Version, b.GoVersion, b.CacheSchema)
	return err
}

// Reporter accumulates campaign progress. All methods are safe for
// concurrent use by worker goroutines; the zero value is not usable —
// construct with NewReporter.
type Reporter struct {
	mu     sync.Mutex
	now    func() time.Time // injectable clock for tests
	start  time.Time
	last   time.Time // time of the previous state change
	total  int
	workas int // worker-pool width, for the utilization denominator

	started int
	done    int
	hits    int
	active  int
	retries int
	failed  int

	// busy integrates active-worker-seconds across state changes, so
	// utilization = busy / (elapsed · workers) is exact regardless of how
	// irregular the cell durations are.
	busy float64
}

// NewReporter tracks a run of total cells on a pool of workers wide.
func NewReporter(total, workers int) *Reporter {
	if workers < 1 {
		workers = 1
	}
	r := &Reporter{now: time.Now, total: total, workas: workers}
	r.start = r.now()
	r.last = r.start
	return r
}

// setClock injects a fake clock (tests only).
func (r *Reporter) setClock(now func() time.Time) {
	r.mu.Lock()
	r.now = now
	r.start = now()
	r.last = r.start
	r.mu.Unlock()
}

// integrate advances the busy integral to the current instant. Callers
// hold r.mu.
func (r *Reporter) integrate() time.Time {
	t := r.now()
	// A clock that steps backwards (ntp, fake clocks in tests) must not
	// un-integrate busy time; clamp the step at zero.
	if dt := t.Sub(r.last).Seconds(); dt > 0 {
		r.busy += float64(r.active) * dt
	}
	r.last = t
	return t
}

// AddTotal grows the expected cell count mid-run. The CLI drivers fix
// the total up front; a server admits sweeps continuously, so its total
// is a running sum of everything accepted so far.
func (r *Reporter) AddTotal(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.mu.Lock()
	r.total += n
	r.mu.Unlock()
}

// CellStart records one cell beginning to simulate.
func (r *Reporter) CellStart() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.integrate()
	r.started++
	r.active++
	r.mu.Unlock()
}

// CellDone records one cell completing; cacheHit marks it served from the
// result cache rather than simulated.
func (r *Reporter) CellDone(cacheHit bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.integrate()
	r.done++
	if cacheHit {
		r.hits++
	}
	if r.active > 0 {
		r.active--
	}
	r.mu.Unlock()
}

// CellRetry records one cell attempt being retried after a transient
// failure. The cell stays active; retries are accounted separately so a
// flapping fleet is visible without perturbing progress or ETA.
func (r *Reporter) CellRetry() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.retries++
	r.mu.Unlock()
}

// CellFailed records one cell failing for good under keep-going; it
// counts toward Done (the sweep is past it) and toward Failed.
func (r *Reporter) CellFailed() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.failed++
	r.mu.Unlock()
}

// Snapshot is a consistent view of the reporter's derived metrics.
type Snapshot struct {
	Done, Total, Hits, Active int
	Retries, Failed           int
	Elapsed                   time.Duration
	CellsPerSec               float64
	HitRate                   float64 // fraction of completed cells cache-hit
	Utilization               float64 // busy worker-seconds / capacity
	ETA                       time.Duration
}

// Snapshot derives the current metrics. Nil-safe (returns the zero value).
func (r *Reporter) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.integrate()
	s := Snapshot{
		Done: r.done, Total: r.total, Hits: r.hits, Active: r.active,
		Retries: r.retries, Failed: r.failed,
		Elapsed: t.Sub(r.start),
	}
	if s.Elapsed < 0 {
		s.Elapsed = 0
	}
	secs := s.Elapsed.Seconds()
	if secs > 0 {
		s.CellsPerSec = float64(r.done) / secs
		s.Utilization = r.busy / (secs * float64(r.workas))
	}
	if r.done > 0 {
		s.HitRate = float64(r.hits) / float64(r.done)
		// left > 0 also shields a total that undercounts (or a done that
		// overcounts): ETA is never negative, just absent.
		if left := r.total - r.done; left > 0 && s.CellsPerSec > 0 {
			s.ETA = time.Duration(float64(left) / s.CellsPerSec * float64(time.Second))
		}
	}
	return s
}

// Line renders the one-line live progress report the drivers print to
// stderr after each cell.
func (r *Reporter) Line() string {
	s := r.Snapshot()
	line := fmt.Sprintf("cell %d/%d done (%d cached)  %.1f cells/s  util %.0f%%",
		s.Done, s.Total, s.Hits, s.CellsPerSec, 100*s.Utilization)
	if s.Retries > 0 {
		line += fmt.Sprintf("  retries %d", s.Retries)
	}
	if s.Failed > 0 {
		line += fmt.Sprintf("  FAILED %d", s.Failed)
	}
	if s.ETA > 0 {
		line += fmt.Sprintf("  eta %s", s.ETA.Round(time.Second))
	}
	return line
}

// WritePrometheus emits the snapshot in Prometheus text exposition
// format (one gauge per derived metric, prefixed grpsweep_).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	return s.WritePrometheusPrefixed(w, "grpsweep")
}

// WritePrometheusPrefixed is WritePrometheus under a caller-chosen
// metric prefix, so grpserve's fleet metrics are not spelled grpsweep_*.
func (s Snapshot) WritePrometheusPrefixed(w io.Writer, prefix string) error {
	var firstErr error
	gauge := func(name string, value interface{}) {
		if firstErr != nil {
			return
		}
		_, firstErr = fmt.Fprintf(w, "# TYPE %s_%s gauge\n%s_%s %v\n",
			prefix, name, prefix, name, value)
	}
	gauge("cells_done", s.Done)
	gauge("cells_total", s.Total)
	gauge("cells_active", s.Active)
	gauge("cache_hits", s.Hits)
	gauge("cache_hit_rate", s.HitRate)
	gauge("cells_per_second", s.CellsPerSec)
	gauge("worker_utilization", s.Utilization)
	gauge("elapsed_seconds", s.Elapsed.Seconds())
	gauge("cell_retries", s.Retries)
	gauge("cell_failures", s.Failed)
	return firstErr
}
