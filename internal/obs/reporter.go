// Package obs is the fleet observability layer for the long-running
// drivers (grpsweep, grpconform): a thread-safe progress reporter that
// derives throughput, worker utilization, cache hit rate, and ETA from
// cell start/finish events, and an opt-in debug HTTP server exposing the
// same numbers as Prometheus text metrics alongside net/http/pprof.
package obs

import (
	"fmt"
	"sync"
	"time"
)

// Reporter accumulates campaign progress. All methods are safe for
// concurrent use by worker goroutines; the zero value is not usable —
// construct with NewReporter.
type Reporter struct {
	mu     sync.Mutex
	now    func() time.Time // injectable clock for tests
	start  time.Time
	last   time.Time // time of the previous state change
	total  int
	workas int // worker-pool width, for the utilization denominator

	started int
	done    int
	hits    int
	active  int
	retries int
	failed  int

	// busy integrates active-worker-seconds across state changes, so
	// utilization = busy / (elapsed · workers) is exact regardless of how
	// irregular the cell durations are.
	busy float64
}

// NewReporter tracks a run of total cells on a pool of workers wide.
func NewReporter(total, workers int) *Reporter {
	if workers < 1 {
		workers = 1
	}
	r := &Reporter{now: time.Now, total: total, workas: workers}
	r.start = r.now()
	r.last = r.start
	return r
}

// setClock injects a fake clock (tests only).
func (r *Reporter) setClock(now func() time.Time) {
	r.mu.Lock()
	r.now = now
	r.start = now()
	r.last = r.start
	r.mu.Unlock()
}

// integrate advances the busy integral to the current instant. Callers
// hold r.mu.
func (r *Reporter) integrate() time.Time {
	t := r.now()
	// A clock that steps backwards (ntp, fake clocks in tests) must not
	// un-integrate busy time; clamp the step at zero.
	if dt := t.Sub(r.last).Seconds(); dt > 0 {
		r.busy += float64(r.active) * dt
	}
	r.last = t
	return t
}

// CellStart records one cell beginning to simulate.
func (r *Reporter) CellStart() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.integrate()
	r.started++
	r.active++
	r.mu.Unlock()
}

// CellDone records one cell completing; cacheHit marks it served from the
// result cache rather than simulated.
func (r *Reporter) CellDone(cacheHit bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.integrate()
	r.done++
	if cacheHit {
		r.hits++
	}
	if r.active > 0 {
		r.active--
	}
	r.mu.Unlock()
}

// CellRetry records one cell attempt being retried after a transient
// failure. The cell stays active; retries are accounted separately so a
// flapping fleet is visible without perturbing progress or ETA.
func (r *Reporter) CellRetry() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.retries++
	r.mu.Unlock()
}

// CellFailed records one cell failing for good under keep-going; it
// counts toward Done (the sweep is past it) and toward Failed.
func (r *Reporter) CellFailed() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.failed++
	r.mu.Unlock()
}

// Snapshot is a consistent view of the reporter's derived metrics.
type Snapshot struct {
	Done, Total, Hits, Active int
	Retries, Failed           int
	Elapsed                   time.Duration
	CellsPerSec               float64
	HitRate                   float64 // fraction of completed cells cache-hit
	Utilization               float64 // busy worker-seconds / capacity
	ETA                       time.Duration
}

// Snapshot derives the current metrics. Nil-safe (returns the zero value).
func (r *Reporter) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.integrate()
	s := Snapshot{
		Done: r.done, Total: r.total, Hits: r.hits, Active: r.active,
		Retries: r.retries, Failed: r.failed,
		Elapsed: t.Sub(r.start),
	}
	if s.Elapsed < 0 {
		s.Elapsed = 0
	}
	secs := s.Elapsed.Seconds()
	if secs > 0 {
		s.CellsPerSec = float64(r.done) / secs
		s.Utilization = r.busy / (secs * float64(r.workas))
	}
	if r.done > 0 {
		s.HitRate = float64(r.hits) / float64(r.done)
		// left > 0 also shields a total that undercounts (or a done that
		// overcounts): ETA is never negative, just absent.
		if left := r.total - r.done; left > 0 && s.CellsPerSec > 0 {
			s.ETA = time.Duration(float64(left) / s.CellsPerSec * float64(time.Second))
		}
	}
	return s
}

// Line renders the one-line live progress report the drivers print to
// stderr after each cell.
func (r *Reporter) Line() string {
	s := r.Snapshot()
	line := fmt.Sprintf("cell %d/%d done (%d cached)  %.1f cells/s  util %.0f%%",
		s.Done, s.Total, s.Hits, s.CellsPerSec, 100*s.Utilization)
	if s.Retries > 0 {
		line += fmt.Sprintf("  retries %d", s.Retries)
	}
	if s.Failed > 0 {
		line += fmt.Sprintf("  FAILED %d", s.Failed)
	}
	if s.ETA > 0 {
		line += fmt.Sprintf("  eta %s", s.ETA.Round(time.Second))
	}
	return line
}

// WritePrometheus emits the snapshot in Prometheus text exposition
// format (one gauge per derived metric, prefixed grpsweep_).
func (s Snapshot) WritePrometheus(w interface{ Write([]byte) (int, error) }) error {
	_, err := fmt.Fprintf(w,
		"# TYPE grpsweep_cells_done gauge\ngrpsweep_cells_done %d\n"+
			"# TYPE grpsweep_cells_total gauge\ngrpsweep_cells_total %d\n"+
			"# TYPE grpsweep_cells_active gauge\ngrpsweep_cells_active %d\n"+
			"# TYPE grpsweep_cache_hits gauge\ngrpsweep_cache_hits %d\n"+
			"# TYPE grpsweep_cache_hit_rate gauge\ngrpsweep_cache_hit_rate %g\n"+
			"# TYPE grpsweep_cells_per_second gauge\ngrpsweep_cells_per_second %g\n"+
			"# TYPE grpsweep_worker_utilization gauge\ngrpsweep_worker_utilization %g\n"+
			"# TYPE grpsweep_elapsed_seconds gauge\ngrpsweep_elapsed_seconds %g\n"+
			"# TYPE grpsweep_cell_retries gauge\ngrpsweep_cell_retries %d\n"+
			"# TYPE grpsweep_cell_failures gauge\ngrpsweep_cell_failures %d\n",
		s.Done, s.Total, s.Active, s.Hits, s.HitRate,
		s.CellsPerSec, s.Utilization, s.Elapsed.Seconds(),
		s.Retries, s.Failed)
	return err
}
