package obs

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances only when told, making the derived rates exact.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestReporterDerivedMetrics(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewReporter(10, 2)
	r.setClock(clk.now)

	// Two workers run one cell each for 1s, then one runs another for 1s.
	r.CellStart()
	r.CellStart()
	clk.advance(time.Second)
	r.CellDone(false)
	r.CellDone(true)
	r.CellStart()
	clk.advance(time.Second)
	r.CellDone(false)

	s := r.Snapshot()
	if s.Done != 3 || s.Total != 10 || s.Hits != 1 || s.Active != 0 {
		t.Fatalf("snapshot counters = %+v", s)
	}
	if got := s.CellsPerSec; got != 1.5 {
		t.Errorf("cells/sec = %g, want 1.5", got)
	}
	if got := s.HitRate; got < 0.33 || got > 0.34 {
		t.Errorf("hit rate = %g, want 1/3", got)
	}
	// Busy worker-seconds: 2·1 + 1·1 = 3 of 2 workers × 2s = 4 capacity.
	if got := s.Utilization; got != 0.75 {
		t.Errorf("utilization = %g, want 0.75", got)
	}
	// 7 cells left at 1.5 cells/s.
	left := float64(s.Total - s.Done)
	if want := time.Duration(left / s.CellsPerSec * float64(time.Second)); s.ETA != want {
		t.Errorf("ETA = %v, want %v", s.ETA, want)
	}
	line := r.Line()
	for _, frag := range []string{"3/10", "(1 cached)", "1.5 cells/s", "util 75%", "eta"} {
		if !strings.Contains(line, frag) {
			t.Errorf("Line() = %q missing %q", line, frag)
		}
	}
}

func TestReporterZeroElapsed(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewReporter(5, 4)
	r.setClock(clk.now)
	s := r.Snapshot()
	if s.CellsPerSec != 0 || s.Utilization != 0 || s.HitRate != 0 || s.ETA != 0 {
		t.Errorf("zero-time snapshot has nonzero rates: %+v", s)
	}
	_ = r.Line() // must not panic or divide by zero
}

func TestReporterNilSafe(t *testing.T) {
	var r *Reporter
	r.CellStart()
	r.CellDone(true)
	if s := r.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil reporter snapshot = %+v", s)
	}
}

func TestReporterConcurrent(t *testing.T) {
	r := NewReporter(1000, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 125; i++ {
				r.CellStart()
				r.CellDone(i%2 == 0)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Done != 1000 {
		t.Errorf("done = %d, want 1000", s.Done)
	}
	// i%2==0 holds for 63 of the 125 values per worker.
	if want := 8 * 63; s.Hits != want {
		t.Errorf("hits = %d, want %d", s.Hits, want)
	}
	if s.Active != 0 {
		t.Errorf("active = %d, want 0", s.Active)
	}
}

func TestServerMetricsAndPprof(t *testing.T) {
	r := NewReporter(4, 2)
	r.CellStart()
	r.CellDone(true)
	srv, err := NewServer("127.0.0.1:0", r, NewBuildInfo(Version, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"grpsweep_cells_done 1",
		"grpsweep_cells_total 4",
		"grpsweep_cache_hits 1",
		"# TYPE grpsweep_worker_utilization gauge",
		"# TYPE grpsweep_build_info gauge",
		`grpsweep_build_info{version="` + Version + `",goversion="`,
		`cache_schema="4"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong: %.120s", idx)
	}
}

func TestServerBadAddrFailsFast(t *testing.T) {
	if _, err := NewServer("256.0.0.1:bad", NewReporter(1, 1), BuildInfo{}); err == nil {
		t.Fatal("bad listen address did not fail")
	}
}

// TestReporterZeroCellSweep: an empty grid (filtered spec, empty bench
// list) must not panic, divide by zero, or advertise an ETA.
func TestReporterZeroCellSweep(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewReporter(0, 4)
	r.setClock(clk.now)
	clk.advance(time.Second)
	s := r.Snapshot()
	if s.Total != 0 || s.Done != 0 || s.ETA != 0 {
		t.Errorf("zero-cell snapshot = %+v", s)
	}
	_ = r.Line()
	var b strings.Builder
	r.Snapshot().WritePrometheus(&b)
	if !strings.Contains(b.String(), "grpsweep_cells_total 0") {
		t.Errorf("metrics for empty sweep:\n%s", b.String())
	}
}

// TestReporterInstantCompletion: every cell finishing within one clock
// tick (elapsed = 0 at completion) must not produce Inf/NaN rates.
func TestReporterInstantCompletion(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewReporter(3, 2)
	r.setClock(clk.now)
	for i := 0; i < 3; i++ {
		r.CellStart()
		r.CellDone(true)
	}
	s := r.Snapshot()
	if s.Done != 3 || s.CellsPerSec != 0 || s.ETA != 0 {
		t.Errorf("instant-completion snapshot = %+v", s)
	}
	if s.Utilization < 0 || s.Utilization > 1 {
		t.Errorf("utilization out of range: %g", s.Utilization)
	}
	_ = r.Line()
}

// TestReporterBackwardsCounts: more completions than the advertised
// total (a caller bug or a resumed sweep with a stale total) must never
// yield a negative ETA.
func TestReporterBackwardsCounts(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewReporter(2, 1)
	r.setClock(clk.now)
	for i := 0; i < 5; i++ { // 5 done of a declared 2
		r.CellStart()
		clk.advance(100 * time.Millisecond)
		r.CellDone(false)
	}
	s := r.Snapshot()
	if s.ETA < 0 {
		t.Errorf("ETA went negative: %v", s.ETA)
	}
	if line := r.Line(); strings.Contains(line, "eta -") {
		t.Errorf("Line() shows a negative ETA: %q", line)
	}
}

// TestReporterBackwardsClock: a clock that steps backwards (NTP slew,
// VM suspend) must not drive elapsed time or utilization negative.
func TestReporterBackwardsClock(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewReporter(4, 2)
	r.setClock(clk.now)
	r.CellStart()
	clk.advance(-30 * time.Second)
	r.CellDone(false)
	s := r.Snapshot()
	if s.Elapsed < 0 {
		t.Errorf("elapsed went negative: %v", s.Elapsed)
	}
	if s.Utilization < 0 {
		t.Errorf("utilization went negative: %g", s.Utilization)
	}
	if s.CellsPerSec < 0 {
		t.Errorf("cells/sec went negative: %g", s.CellsPerSec)
	}
	_ = r.Line()
}

// TestReporterRetriesAndFailures: the robustness counters flow through
// Snapshot, the status line, and the Prometheus export.
func TestReporterRetriesAndFailures(t *testing.T) {
	r := NewReporter(10, 2)
	r.CellStart()
	r.CellRetry()
	r.CellRetry()
	r.CellFailed()
	r.CellDone(false)
	s := r.Snapshot()
	if s.Retries != 2 || s.Failed != 1 {
		t.Errorf("snapshot retries/failed = %d/%d, want 2/1", s.Retries, s.Failed)
	}
	line := r.Line()
	if !strings.Contains(line, "retries 2") || !strings.Contains(line, "FAILED 1") {
		t.Errorf("Line() = %q missing retry/failure counters", line)
	}
	var b strings.Builder
	r.Snapshot().WritePrometheus(&b)
	for _, want := range []string{"grpsweep_cell_retries 2", "grpsweep_cell_failures 1"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, b.String())
		}
	}
	// Nil safety for the new methods.
	var nilr *Reporter
	nilr.CellRetry()
	nilr.CellFailed()
}
