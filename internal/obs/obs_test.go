package obs

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances only when told, making the derived rates exact.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestReporterDerivedMetrics(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewReporter(10, 2)
	r.setClock(clk.now)

	// Two workers run one cell each for 1s, then one runs another for 1s.
	r.CellStart()
	r.CellStart()
	clk.advance(time.Second)
	r.CellDone(false)
	r.CellDone(true)
	r.CellStart()
	clk.advance(time.Second)
	r.CellDone(false)

	s := r.Snapshot()
	if s.Done != 3 || s.Total != 10 || s.Hits != 1 || s.Active != 0 {
		t.Fatalf("snapshot counters = %+v", s)
	}
	if got := s.CellsPerSec; got != 1.5 {
		t.Errorf("cells/sec = %g, want 1.5", got)
	}
	if got := s.HitRate; got < 0.33 || got > 0.34 {
		t.Errorf("hit rate = %g, want 1/3", got)
	}
	// Busy worker-seconds: 2·1 + 1·1 = 3 of 2 workers × 2s = 4 capacity.
	if got := s.Utilization; got != 0.75 {
		t.Errorf("utilization = %g, want 0.75", got)
	}
	// 7 cells left at 1.5 cells/s.
	left := float64(s.Total - s.Done)
	if want := time.Duration(left / s.CellsPerSec * float64(time.Second)); s.ETA != want {
		t.Errorf("ETA = %v, want %v", s.ETA, want)
	}
	line := r.Line()
	for _, frag := range []string{"3/10", "(1 cached)", "1.5 cells/s", "util 75%", "eta"} {
		if !strings.Contains(line, frag) {
			t.Errorf("Line() = %q missing %q", line, frag)
		}
	}
}

func TestReporterZeroElapsed(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r := NewReporter(5, 4)
	r.setClock(clk.now)
	s := r.Snapshot()
	if s.CellsPerSec != 0 || s.Utilization != 0 || s.HitRate != 0 || s.ETA != 0 {
		t.Errorf("zero-time snapshot has nonzero rates: %+v", s)
	}
	_ = r.Line() // must not panic or divide by zero
}

func TestReporterNilSafe(t *testing.T) {
	var r *Reporter
	r.CellStart()
	r.CellDone(true)
	if s := r.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil reporter snapshot = %+v", s)
	}
}

func TestReporterConcurrent(t *testing.T) {
	r := NewReporter(1000, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 125; i++ {
				r.CellStart()
				r.CellDone(i%2 == 0)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Done != 1000 {
		t.Errorf("done = %d, want 1000", s.Done)
	}
	// i%2==0 holds for 63 of the 125 values per worker.
	if want := 8 * 63; s.Hits != want {
		t.Errorf("hits = %d, want %d", s.Hits, want)
	}
	if s.Active != 0 {
		t.Errorf("active = %d, want 0", s.Active)
	}
}

func TestServerMetricsAndPprof(t *testing.T) {
	r := NewReporter(4, 2)
	r.CellStart()
	r.CellDone(true)
	srv, err := NewServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	for _, want := range []string{
		"grpsweep_cells_done 1",
		"grpsweep_cells_total 4",
		"grpsweep_cache_hits 1",
		"# TYPE grpsweep_worker_utilization gauge",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ index looks wrong: %.120s", idx)
	}
}

func TestServerBadAddrFailsFast(t *testing.T) {
	if _, err := NewServer("256.0.0.1:bad", NewReporter(1, 1)); err == nil {
		t.Fatal("bad listen address did not fail")
	}
}
