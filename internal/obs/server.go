package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in debug HTTP endpoint (-listen): /metrics serves the
// reporter's snapshot as Prometheus text, and /debug/pprof/ serves the
// standard Go profiles. It binds its listener eagerly so a bad address
// fails before any simulation starts, and runs on its own mux so enabling
// it never touches http.DefaultServeMux.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewServer binds addr (e.g. "localhost:6060" or ":0") and starts serving
// in the background. Close the returned server when the run ends. info
// identifies the binary on /metrics so fleet dashboards can detect
// version and cache-schema skew.
func NewServer(addr string, r *Reporter, info BuildInfo) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := info.WritePrometheus(w, "grpsweep"); err != nil {
			return
		}
		_ = r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }
