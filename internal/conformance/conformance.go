// Package conformance is the differential conformance harness: it feeds
// seeded generated programs (internal/progen) through the functional
// interpreter — the golden model — and through the full timed simulator
// under every requested scheme and fault variant, and asserts that
// speculation stayed speculation:
//
//   - oracle equality: the simulated run's final functional memory digest
//     equals the interpreter's over the identically placed-and-initialized
//     memory image;
//   - cross-scheme agreement: every (scheme, variant) cell of a program
//     produces the same ArchDigest — prefetching and fault injection
//     perturb timing only;
//   - metric sanity: prefetch accuracy lands in [0, 100], DRAM traffic
//     covers every demand fill, and coverage against the no-prefetch
//     baseline never exceeds 100% (it may legitimately go negative — the
//     paper's SRP/ammp cell does — so no lower bound is asserted);
//   - the perfect-L2 cycle count lower-bounds every realistic scheme.
//
// A failing program can be shrunk (see shrink.go) to a minimal reproducer
// for the bug report. The harness is deterministic in (seed, config):
// reports are byte-identical across worker counts.
package conformance

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"grp/internal/campaign"
	"grp/internal/compiler"
	"grp/internal/core"
	"grp/internal/faults"
	"grp/internal/lang"
	"grp/internal/mem"
	"grp/internal/progen"
	"grp/internal/workloads"
)

// Variant is one fault configuration to run every scheme under, in
// addition to the always-run fault-free pass.
type Variant struct {
	Name string
	Plan *faults.Plan
}

// Config parameterizes a conformance campaign.
type Config struct {
	// N is how many generated programs to check; Seed seeds the first
	// (program i uses Seed+i).
	N    int
	Seed int64
	// Jobs is the worker-pool width (programs are checked in parallel,
	// each program's cells serially); <= 1 is the serial path.
	Jobs int
	// Schemes to differentiate; nil uses the paper's realistic set
	// (base, stride, srp, grp/fix, grp/var). PerfectL2 is always run
	// additionally as the cycle-lower-bound reference.
	Schemes []core.Scheme
	// Variants are fault plans to repeat every scheme under.
	Variants []Variant
	// Base supplies shared run options (config overlays). Factor, faults,
	// invariant checking, and the instruction budget are managed by the
	// harness.
	Base core.Options
	// Gen configures the program generator (zero value = full grammar).
	Gen progen.Config
	// MaxSteps bounds the interpreter oracle; programs exceeding it are
	// skipped, not failed (default 300k). The simulated instruction
	// budget is derived from the oracle's actual step count.
	MaxSteps int
	// Tamper, when non-nil, is installed as every cell's prefetch-fill
	// tamperer (core.Options.TamperPrefetchFill). It exists for the
	// known-bad self-test: with a corrupting tamperer the harness must
	// report failures.
	Tamper func(m *mem.Memory, block uint64)
	// TimingCheck reruns every clean (fault-free) realistic-scheme cell on
	// the retained legacy engine (core.Options.LegacyEngine) and demands
	// cycle-for-cycle equality with the overhauled hot path. It is the
	// timing-equivalence mode guarding the event-queue/pool rewrite:
	// architectural digests alone would let a timing regression slip
	// through, since prefetching only perturbs timing. Failures carry the
	// kind "timing-divergence". Roughly doubles campaign cost.
	TimingCheck bool
	// Progress, when non-nil, is called after each checked program with
	// the completion count, total, and failures so far. Serialized.
	Progress func(done, total, failed int)
	// OnProgramStart, when non-nil, is called as each program begins
	// checking. Unlike Progress it is NOT serialized: it runs on the
	// worker goroutine, so fleet reporters (internal/obs) see live worker
	// occupancy. The callee must be safe for concurrent use.
	OnProgramStart func()
	// Ctx, when non-nil, cancels the campaign between programs (and, via
	// the worker pool, stops new ones from starting). Nil means run to
	// completion.
	Ctx context.Context
}

// DefaultSchemes is the realistic-scheme set the harness differentiates
// when Config.Schemes is nil.
func DefaultSchemes() []core.Scheme {
	return []core.Scheme{core.NoPrefetch, core.StridePF, core.GHB, core.SRP, core.GRPFix, core.GRPVar, core.GRPAdaptive}
}

const defaultMaxSteps = 300_000

// Failure is one conformance violation.
type Failure struct {
	Seed    int64
	Scheme  core.Scheme
	Variant string // "" for the fault-free pass
	Kind    string // run-error, no-halt, oracle-divergence, scheme-divergence, metric, attrib, cycle-bound, timing-divergence
	Detail  string
}

func (f Failure) String() string {
	v := f.Variant
	if v == "" {
		v = "nofault"
	}
	return fmt.Sprintf("seed %d %s/%s: %s: %s", f.Seed, f.Scheme, v, f.Kind, f.Detail)
}

// ProgramReport is the outcome of checking one generated program.
type ProgramReport struct {
	Seed       int64
	Skipped    bool
	SkipReason string
	Cells      int // simulator cells run
	Steps      int // interpreter oracle steps
	Failures   []Failure
}

// Report aggregates a whole conformance campaign.
type Report struct {
	Programs []ProgramReport
}

// Failed reports whether any program failed.
func (r *Report) Failed() bool {
	for _, p := range r.Programs {
		if len(p.Failures) > 0 {
			return true
		}
	}
	return false
}

// Failures collects every failure in seed order.
func (r *Report) Failures() []Failure {
	var out []Failure
	for _, p := range r.Programs {
		out = append(out, p.Failures...)
	}
	return out
}

// Summary renders the deterministic campaign summary: identical input and
// configuration produce byte-identical text, whatever the worker count.
func (r *Report) Summary() string {
	var cells, skipped int
	for _, p := range r.Programs {
		cells += p.Cells
		if p.Skipped {
			skipped++
		}
	}
	fails := r.Failures()
	var b strings.Builder
	fmt.Fprintf(&b, "conformance: %d programs, %d cells, %d skipped, %d failures\n",
		len(r.Programs), cells, skipped, len(fails))
	for _, f := range fails {
		fmt.Fprintf(&b, "  FAIL %s\n", f)
	}
	if skipped > 0 {
		var seeds []int64
		for _, p := range r.Programs {
			if p.Skipped {
				seeds = append(seeds, p.Seed)
			}
		}
		sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
		fmt.Fprintf(&b, "  skipped seeds: %v\n", seeds)
	}
	return b.String()
}

// Run checks cfg.N generated programs on up to cfg.Jobs workers. Each
// worker generates its own program from its seed and runs that program's
// cells serially, so parallelism never reorders anything observable.
func Run(cfg Config) (*Report, error) {
	if cfg.N <= 0 {
		cfg.N = 1
	}
	rep := &Report{Programs: make([]ProgramReport, cfg.N)}
	var done, failed int
	progress := func(failures int) {}
	if cfg.Progress != nil {
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		progress = func(failures int) {
			<-mu
			done++
			failed += failures
			cfg.Progress(done, cfg.N, failed)
			mu <- struct{}{}
		}
	}
	err := campaign.ParallelFor(cfg.Ctx, cfg.N, cfg.Jobs, func(i int) error {
		if cfg.OnProgramStart != nil {
			cfg.OnProgramStart()
		}
		pr := CheckSeed(cfg, cfg.Seed+int64(i))
		rep.Programs[i] = *pr
		progress(len(pr.Failures))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// CheckSeed generates the program for one seed and checks it.
func CheckSeed(cfg Config, seed int64) *ProgramReport {
	w := progen.Generate(seed, cfg.Gen)
	return CheckWorkload(cfg, seed, w)
}

// CheckWorkload differentially checks one workload (the shrinker calls it
// with mutated programs; everyone else goes through CheckSeed).
func CheckWorkload(cfg Config, seed int64, w *progen.Workload) *ProgramReport {
	pr := &ProgramReport{Seed: seed}
	fail := func(sc core.Scheme, variant, kind, detail string) {
		pr.Failures = append(pr.Failures, Failure{
			Seed: seed, Scheme: sc, Variant: variant, Kind: kind, Detail: detail,
		})
	}

	if err := w.Prog.Validate(); err != nil {
		fail(core.NoPrefetch, "", "run-error", fmt.Sprintf("generator produced invalid program: %v", err))
		return pr
	}

	// Oracle: interpret the program over a fresh placed-and-initialized
	// memory. Place is deterministic and compiled code never occupies
	// simulated memory, so the final digest is directly comparable with
	// every simulated run's Result.MemDigest.
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	om := mem.New()
	lay := compiler.Place(w.Prog, om)
	w.Init(om, func(name string) uint64 { return lay.Addr[name] })
	ip := compiler.NewInterp(w.Prog, lay, om, maxSteps)
	if err := ip.Run(); err != nil {
		// Runaway execution is a property of the generated program, not a
		// simulator bug: skip rather than fail.
		pr.Skipped = true
		pr.SkipReason = err.Error()
		return pr
	}
	pr.Steps = ip.Steps()
	oracle := om.Digest()

	// The simulated-instruction budget derives from the oracle's step
	// count: compiled code spends a bounded handful of instructions per
	// interpreter step, so 16x plus slack can only be exhausted by a
	// genuine divergence (which the no-halt check then reports).
	budget := uint64(ip.Steps())*16 + 65536
	spec := syntheticSpec(seed, w, budget)

	schemes := cfg.Schemes
	if schemes == nil {
		schemes = DefaultSchemes()
	}

	runCell := func(sc core.Scheme, variant string, plan *faults.Plan) *core.Result {
		opt := cloneOptions(cfg.Base)
		opt.Faults = plan
		opt.CheckInvariants = true
		opt.TamperPrefetchFill = cfg.Tamper
		// Every cell carries the attribution ledger: core.Run fails the
		// cell outright on a conservation violation, and checkMetrics
		// reconciles the ledger against the counter-based metrics.
		opt.Attrib = true
		pr.Cells++
		r, err := core.Run(spec, sc, opt)
		if err != nil {
			fail(sc, variant, "run-error", err.Error())
			return nil
		}
		if !r.CPU.Halted {
			fail(sc, variant, "no-halt", fmt.Sprintf("budget %d instrs exhausted (oracle took %d steps)", budget, ip.Steps()))
			return nil
		}
		return r
	}

	// Perfect-L2 reference: the cycle lower bound, itself also held to the
	// oracle. Its tamperer never fires (a perfect L2 issues no prefetches).
	ref := runCell(core.PerfectL2, "", nil)
	if ref != nil && ref.MemDigest != oracle {
		fail(core.PerfectL2, "", "oracle-divergence",
			fmt.Sprintf("mem digest %016x, oracle %016x", ref.MemDigest, oracle))
	}

	var archRef *core.Result
	if ref != nil {
		archRef = ref
	}
	var baseClean *core.Result // fault-free no-prefetch cell, the coverage baseline
	type namedResult struct {
		r       *core.Result
		variant string
	}
	var clean []namedResult

	variants := append([]Variant{{Name: "", Plan: nil}}, cfg.Variants...)
	for _, sc := range schemes {
		for _, v := range variants {
			r := runCell(sc, v.Name, v.Plan)
			if r == nil {
				continue
			}
			if sc == core.NoPrefetch && v.Plan == nil {
				baseClean = r
			}
			if r.MemDigest != oracle {
				fail(sc, v.Name, "oracle-divergence",
					fmt.Sprintf("mem digest %016x, oracle %016x", r.MemDigest, oracle))
				continue
			}
			if archRef == nil {
				archRef = r
			} else if r.ArchDigest != archRef.ArchDigest {
				fail(sc, v.Name, "scheme-divergence",
					fmt.Sprintf("arch digest %016x, %s gave %016x", r.ArchDigest, archRef.Scheme, archRef.ArchDigest))
			}
			checkMetrics(r, ref, fail, sc, v.Name)
			clean = append(clean, namedResult{r: r, variant: v.Name})
			if cfg.TimingCheck && v.Plan == nil {
				checkTiming(cfg, spec, r, pr, fail, sc)
			}
		}
	}
	// Coverage against the no-prefetch baseline: structurally bounded above
	// by 100%; negative values are legitimate (cache pollution — the
	// paper's SRP/ammp cell), so only the upper bound is asserted.
	if baseClean != nil {
		for _, nr := range clean {
			if cov := core.Coverage(nr.r, baseClean); cov > 100 {
				fail(nr.r.Scheme, nr.variant, "metric",
					fmt.Sprintf("coverage %.2f%% exceeds 100%%", cov))
			}
		}
	}
	return pr
}

// checkTiming reruns one clean cell on the legacy engine and asserts the
// two hot paths are cycle-exact twins: same cycle count and same
// architectural and memory digests. Any difference is a bug in the
// overhauled engine (or a behavioral drift in the retained legacy copy).
func checkTiming(cfg Config, spec *workloads.Spec, r *core.Result, pr *ProgramReport, fail func(core.Scheme, string, string, string), sc core.Scheme) {
	opt := cloneOptions(cfg.Base)
	opt.CheckInvariants = true
	opt.TamperPrefetchFill = cfg.Tamper
	opt.LegacyEngine = true
	pr.Cells++
	lr, err := core.Run(spec, sc, opt)
	if err != nil {
		fail(sc, "legacy", "run-error", err.Error())
		return
	}
	if lr.CPU.Cycles != r.CPU.Cycles {
		fail(sc, "legacy", "timing-divergence",
			fmt.Sprintf("new engine %d cycles, legacy engine %d", r.CPU.Cycles, lr.CPU.Cycles))
		return
	}
	if lr.ArchDigest != r.ArchDigest || lr.MemDigest != r.MemDigest {
		fail(sc, "legacy", "timing-divergence",
			fmt.Sprintf("digest drift: new arch %016x mem %016x, legacy arch %016x mem %016x",
				r.ArchDigest, r.MemDigest, lr.ArchDigest, lr.MemDigest))
	}
}

// checkMetrics asserts the metric sanity invariants on one cell.
func checkMetrics(r, perfect *core.Result, fail func(core.Scheme, string, string, string), sc core.Scheme, variant string) {
	if a := r.Accuracy(); a < 0 || a > 100 {
		fail(sc, variant, "metric", fmt.Sprintf("accuracy %.2f%% outside [0,100]", a))
	}
	// Every demand fill moved one block out of DRAM; prefetches and
	// writebacks only add.
	blockBytes := uint64(64)
	if min := blockBytes * r.L2.DemandFills; r.TrafficBytes < min {
		fail(sc, variant, "metric",
			fmt.Sprintf("traffic %d B below %d demand fills x %d B", r.TrafficBytes, r.L2.DemandFills, blockBytes))
	}
	if perfect != nil && r.CPU.Cycles < perfect.CPU.Cycles {
		fail(sc, variant, "cycle-bound",
			fmt.Sprintf("%d cycles beats perfect-L2 %d", r.CPU.Cycles, perfect.CPU.Cycles))
	}
	checkAttrib(r, fail, sc, variant)
}

// checkAttrib reconciles the attribution ledger's summary with the
// counter-based metrics the rest of the report is built from. The ledger
// is an independent second bookkeeping of the same prefetch lifecycle, so
// any disagreement is a bug in one of the two. The legacy engine carries
// no ledger (r.Attrib == nil) and is exempt.
func checkAttrib(r *core.Result, fail func(core.Scheme, string, string, string), sc core.Scheme, variant string) {
	s := r.Attrib
	if s == nil {
		return
	}
	if err := s.CheckConservation(); err != nil {
		fail(sc, variant, "attrib", err.Error())
		return
	}
	if s.Issued != r.Mem.PrefetchesIssued {
		fail(sc, variant, "attrib",
			fmt.Sprintf("ledger issued %d, MemStats issued %d", s.Issued, r.Mem.PrefetchesIssued))
	}
	if s.Counts.Cancelled != r.Mem.PrefetchesCancelled {
		fail(sc, variant, "attrib",
			fmt.Sprintf("ledger cancelled %d, MemStats cancelled %d", s.Counts.Cancelled, r.Mem.PrefetchesCancelled))
	}
	// Every issued prefetch either really filled the L2 (PrefetchFills),
	// arrived to find its block already resident (Redundant), or was
	// cancelled in flight — a three-way partition of the issue count.
	if fills := r.L2.PrefetchFills + s.Counts.Redundant + s.Counts.Cancelled; fills != s.Issued {
		fail(sc, variant, "attrib",
			fmt.Sprintf("issued %d != L2 prefetch fills %d + redundant %d + cancelled %d",
				s.Issued, r.L2.PrefetchFills, s.Counts.Redundant, s.Counts.Cancelled))
	}
	// The cache's useful/useless counters see every prefetched line,
	// including re-prefetches of blocks whose ledger entry is already
	// terminal, so the ledger's classes lower-bound them.
	if s.Counts.Useful > r.L2.UsefulPrefetches {
		fail(sc, variant, "attrib",
			fmt.Sprintf("ledger useful %d exceeds L2 useful prefetches %d", s.Counts.Useful, r.L2.UsefulPrefetches))
	}
	if s.Counts.Late > r.Mem.PrefetchLates {
		fail(sc, variant, "attrib",
			fmt.Sprintf("ledger late %d exceeds MemStats lates %d", s.Counts.Late, r.Mem.PrefetchLates))
	}
	if dead := s.Counts.EvictedUnused + s.Counts.Pollution; dead > r.L2.UselessPrefetches {
		fail(sc, variant, "attrib",
			fmt.Sprintf("ledger evicted %d + pollution %d exceeds L2 useless prefetches %d",
				s.Counts.EvictedUnused, s.Counts.Pollution, r.L2.UselessPrefetches))
	}
}

// syntheticSpec wraps a generated workload as a workloads.Spec so it can
// flow through core.Run unchanged. The factor is ignored: generated
// programs have one size.
func syntheticSpec(seed int64, w *progen.Workload, budget uint64) *workloads.Spec {
	return &workloads.Spec{
		Name: fmt.Sprintf("conform%d", seed),
		Build: func(workloads.Factor) *workloads.Built {
			return &workloads.Built{
				Prog: w.Prog,
				Init: func(m *mem.Memory, lay *compiler.Layout) {
					w.Init(m, func(name string) uint64 { return lay.Addr[name] })
				},
				MaxInstrs: budget,
			}
		},
	}
}

// cloneOptions copies the options including pointed-to configs, so cells
// never alias each other's mutable state.
func cloneOptions(base core.Options) core.Options {
	opt := base
	if base.Mem != nil {
		m := *base.Mem
		opt.Mem = &m
	}
	if base.CPU != nil {
		c := *base.CPU
		opt.CPU = &c
	}
	return opt
}

// ParseSchemes resolves a comma-separated scheme list, accepting the
// campaign spec grammar's friendly aliases. "all" means DefaultSchemes
// (the realistic set — perfect caches are always run as references, never
// differentiated).
func ParseSchemes(csv string) ([]core.Scheme, error) {
	aliases := map[string]string{
		"nopf": "base", "nopref": "base",
		"grpfix": "grp/fix", "grpvar": "grp/var", "pointer": "ptr",
		"grpadaptive": "grp-adaptive", "adaptive": "grp-adaptive",
	}
	if strings.EqualFold(strings.TrimSpace(csv), "all") || strings.TrimSpace(csv) == "" {
		return DefaultSchemes(), nil
	}
	var out []core.Scheme
	for _, part := range strings.Split(csv, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			continue
		}
		if a, ok := aliases[strings.ToLower(name)]; ok {
			name = a
		}
		sc, err := core.SchemeByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	if len(out) == 0 {
		return DefaultSchemes(), nil
	}
	return out, nil
}

// ParseVariants parses a semicolon-separated list of fault specs (each in
// the internal/faults grammar: a preset name or key=value assignments)
// into fault variants. "none" or "" yields no variants (the fault-free
// pass always runs).
func ParseVariants(spec string) ([]Variant, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || strings.EqualFold(spec, "none") {
		return nil, nil
	}
	var out []Variant
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		plan, err := faults.Parse(part)
		if err != nil {
			return nil, err
		}
		p := plan
		out = append(out, Variant{Name: part, Plan: &p})
	}
	return out, nil
}

// StaticInstrs compiles the program against a scratch memory and returns
// its static instruction count — the shrinker's size metric and the
// "≤ 20-instruction reproducer" yardstick.
func StaticInstrs(p *lang.Program) (int, error) {
	m := mem.New()
	ip, _, _, err := compiler.CompileWorkloadOpts(p, m, compiler.PolicyDefault, compiler.CodegenOptions{})
	if err != nil {
		return 0, err
	}
	return len(ip.Instrs), nil
}
