package conformance

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"grp/internal/campaign"
	"grp/internal/compiler"
	"grp/internal/core"
	"grp/internal/faults"
	"grp/internal/mem"
	"grp/internal/progen"
)

// The head-to-head harness answers the scheme family's motivating
// question with numbers: where does runtime feedback win over static
// hints, and where does a modern hardware prefetcher (GHB) stand against
// the paper's stride engine? It runs classes of generated workloads —
// including a hint-hostile class where the fault injector corrupts the
// compiler's hints, turning GRP's guidance into noise — and reports
// geometric-mean IPC per scheme per class.

// H2HClass is one workload class of the head-to-head comparison.
type H2HClass struct {
	// Name labels the class in the report table.
	Name string
	// Arith restricts the generator to the arithmetic/array grammar
	// (dense and strided sweeps — no heap pointers).
	Arith bool
	// Faults is a fault-plan spec (internal/faults grammar) applied to
	// every scheme's run, "" for none. Faults are timing-only, so the
	// comparison stays architecturally sound.
	Faults string
}

// DefaultH2HClasses returns the classes the EXPERIMENTS.md table reports:
// clean heap-rich code, and the two hint-hostile classes — hints
// corrupted into wrong kinds, and hints stripped entirely (the guided
// engines see an unhinted miss stream).
func DefaultH2HClasses() []H2HClass {
	return []H2HClass{
		{Name: "heap-clean"},
		{Name: "hint-corrupt", Faults: "corrupt-hint=0.9"},
		{Name: "hint-dropped", Faults: "drop-hint=0.95"},
	}
}

// DefaultH2HSchemes returns the comparison column set: the no-prefetch
// floor, the two pure-hardware engines, and the two guided engines.
func DefaultH2HSchemes() []core.Scheme {
	return []core.Scheme{core.NoPrefetch, core.StridePF, core.GHB, core.GRPVar, core.GRPAdaptive}
}

// H2HConfig parameterizes a head-to-head run.
type H2HConfig struct {
	// N is how many generated programs per class; Seed seeds the first
	// (program i uses Seed+i, identical across classes and schemes so
	// every comparison is paired).
	N    int
	Seed int64
	// Jobs is the worker-pool width (class runs in parallel).
	Jobs int
	// Classes and Schemes default to DefaultH2HClasses/DefaultH2HSchemes.
	Classes []H2HClass
	Schemes []core.Scheme
	// Base is the option set under every cell.
	Base core.Options
}

// H2HCell is one (class, scheme) aggregate.
type H2HCell struct {
	Class    string
	Scheme   core.Scheme
	Programs int     // programs aggregated (oracle-skipped seeds excluded)
	Geomean  float64 // geometric-mean IPC
}

// H2HReport is a completed head-to-head comparison.
type H2HReport struct {
	N       int
	Seed    int64
	Classes []H2HClass
	Schemes []core.Scheme
	Cells   []H2HCell // classes-major, schemes-minor, canonical order
}

// Cell returns the aggregate for (class, scheme), or nil.
func (r *H2HReport) Cell(class string, sc core.Scheme) *H2HCell {
	for i := range r.Cells {
		if r.Cells[i].Class == class && r.Cells[i].Scheme == sc {
			return &r.Cells[i]
		}
	}
	return nil
}

// RunHeadToHead runs the comparison fleet. Every (class, seed) pair
// generates one program, checks it against the interpreter oracle for a
// step budget, then times it under every scheme with the class's fault
// plan applied; per-scheme IPCs aggregate into geometric means.
func RunHeadToHead(cfg H2HConfig) (*H2HReport, error) {
	if cfg.N <= 0 {
		cfg.N = 50
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	classes := cfg.Classes
	if classes == nil {
		classes = DefaultH2HClasses()
	}
	schemes := cfg.Schemes
	if schemes == nil {
		schemes = DefaultH2HSchemes()
	}
	plans := make([]*faults.Plan, len(classes))
	for i, cl := range classes {
		if cl.Faults == "" {
			continue
		}
		p, err := faults.Parse(cl.Faults)
		if err != nil {
			return nil, fmt.Errorf("conformance: class %s: %w", cl.Name, err)
		}
		plans[i] = &p
	}

	// One task per (class, seed); each task times every scheme so the
	// per-seed comparison shares one generated program and one oracle run.
	type task struct {
		class int
		ipc   []float64 // per scheme; nil when the oracle skipped the seed
	}
	tasks := make([]task, len(classes)*cfg.N)
	err := campaign.ParallelFor(nil, len(tasks), cfg.Jobs, func(ti int) error {
		ci, si := ti/cfg.N, ti%cfg.N
		seed := cfg.Seed + int64(si)
		tasks[ti].class = ci

		w := progen.Generate(seed, progen.Config{Arith: classes[ci].Arith})
		if err := w.Prog.Validate(); err != nil {
			return nil // skip: generator artifact, not a scheme property
		}
		om := mem.New()
		lay := compiler.Place(w.Prog, om)
		w.Init(om, func(name string) uint64 { return lay.Addr[name] })
		ip := compiler.NewInterp(w.Prog, lay, om, defaultMaxSteps)
		if err := ip.Run(); err != nil {
			return nil // runaway program: skip the seed for every scheme
		}
		budget := uint64(ip.Steps())*16 + 65536
		spec := syntheticSpec(seed, w, budget)

		ipcs := make([]float64, len(schemes))
		for k, sc := range schemes {
			opt := cloneOptions(cfg.Base)
			opt.Faults = plans[ci]
			res, err := core.Run(spec, sc, opt)
			if err != nil {
				return fmt.Errorf("conformance: h2h seed %d class %s scheme %s: %w",
					seed, classes[ci].Name, sc, err)
			}
			ipcs[k] = res.IPC()
		}
		tasks[ti].ipc = ipcs
		return nil
	})
	if err != nil {
		return nil, err
	}

	rep := &H2HReport{N: cfg.N, Seed: cfg.Seed, Classes: classes, Schemes: schemes}
	for ci, cl := range classes {
		sums := make([]float64, len(schemes))
		n := 0
		for si := 0; si < cfg.N; si++ {
			tk := &tasks[ci*cfg.N+si]
			if tk.ipc == nil {
				continue
			}
			n++
			for k, v := range tk.ipc {
				sums[k] += math.Log(v)
			}
		}
		for k, sc := range schemes {
			gm := 0.0
			if n > 0 {
				gm = math.Exp(sums[k] / float64(n))
			}
			rep.Cells = append(rep.Cells, H2HCell{Class: cl.Name, Scheme: sc, Programs: n, Geomean: gm})
		}
	}
	return rep, nil
}

// Table renders the report as an aligned text table: one row per class,
// one IPC column per scheme, with the winning realistic scheme starred.
func (r *H2HReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "head-to-head geomean IPC (%d programs/class, seed %d)\n", r.N, r.Seed)
	w := 14
	fmt.Fprintf(&b, "%-*s", w, "class")
	for _, sc := range r.Schemes {
		fmt.Fprintf(&b, " %*s", w, sc.String())
	}
	fmt.Fprintf(&b, " %*s\n", w, "programs")
	for _, cl := range r.Classes {
		best := ""
		bestIPC := math.Inf(-1)
		for _, sc := range r.Schemes {
			if sc == core.NoPrefetch {
				continue // the floor is a reference, not a contestant
			}
			if c := r.Cell(cl.Name, sc); c != nil && c.Geomean > bestIPC {
				bestIPC, best = c.Geomean, sc.String()
			}
		}
		fmt.Fprintf(&b, "%-*s", w, cl.Name)
		programs := 0
		for _, sc := range r.Schemes {
			c := r.Cell(cl.Name, sc)
			cell := fmt.Sprintf("%.4f", c.Geomean)
			if sc.String() == best {
				cell += "*"
			}
			fmt.Fprintf(&b, " %*s", w, cell)
			programs = c.Programs
		}
		fmt.Fprintf(&b, " %*d\n", w, programs)
	}
	return b.String()
}

// SortedSchemes returns the schemes of one class ordered best-first (for
// tests asserting who won).
func (r *H2HReport) SortedSchemes(class string) []core.Scheme {
	out := append([]core.Scheme(nil), r.Schemes...)
	sort.SliceStable(out, func(i, j int) bool {
		ci, cj := r.Cell(class, out[i]), r.Cell(class, out[j])
		return ci.Geomean > cj.Geomean
	})
	return out
}
