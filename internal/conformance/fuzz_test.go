package conformance

import (
	"testing"

	"grp/internal/core"
)

// FuzzConformance lets the fuzzer pick generator seeds and runs the full
// differential check on a reduced scheme set (the no-prefetch baseline and
// the most aggressive GRP variant). Any reported failure is a real
// simulator/compiler bug, not a fuzz artifact, so the target fails on it.
func FuzzConformance(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(9))
	f.Add(int64(101))
	f.Add(int64(-3))
	cfg := Config{
		Schemes: []core.Scheme{core.NoPrefetch, core.GRPVar},
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		pr := CheckSeed(cfg, seed)
		if pr.Skipped {
			t.Skipf("seed %d: %s", seed, pr.SkipReason)
		}
		for _, fa := range pr.Failures {
			t.Errorf("%s", fa)
		}
	})
}
