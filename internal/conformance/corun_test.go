package conformance

import (
	"strings"
	"testing"

	"grp/internal/core"
	"grp/internal/sim"
)

// corunFleetN returns the fleet size for the N=1 equivalence battery:
// the issue's 200-program bar, trimmed under -short so the suite stays
// fast in presubmit (CI runs the full fleet in the multicore job).
func corunFleetN(t *testing.T) int {
	if testing.Short() {
		return 25
	}
	return 200
}

// TestCoRunSingleCoreEquivalenceFleet is the tentpole equivalence proof:
// over the generated-program fleet, a 1-core co-run is field-for-field
// identical to the single-cell engine — cycles, every cache/DRAM/memory
// counter, digests, and the attribution summary. Any divergence reports
// its first divergent field.
func TestCoRunSingleCoreEquivalenceFleet(t *testing.T) {
	rep, err := RunCoRun(CoRunConfig{
		N:       corunFleetN(t),
		Seed:    1,
		Jobs:    4,
		Schemes: []core.Scheme{core.GRPVar},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("1-core co-run diverged from the single-cell engine:\n%s", rep.Summary())
	}
}

// TestCoRunPairInvarianceFleet runs a smaller fleet as 2-core
// self-co-runs across the full realistic scheme set: architectural and
// memory digests must match solo, no core may beat its solo cycle
// count, and the shared-fabric invariants (arbiter fairness included)
// hold throughout.
func TestCoRunPairInvarianceFleet(t *testing.T) {
	n := 40
	if testing.Short() {
		n = 10
	}
	rep, err := RunCoRun(CoRunConfig{
		N:    n,
		Seed: 101,
		Jobs: 4,
		Pair: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("2-core co-run broke an invariance:\n%s", rep.Summary())
	}
}

// TestTamperedArbiterCaught is the multi-core known-bad self-test,
// mirroring TestTamperedLadderCaught: an arbiter tampered to silently
// refuse core 1 models a starvation bug in the cross-core issue path.
// The run must not wedge (the starved core's demands still flow; only
// its prefetch pump is dead) and the always-on invariant checking must
// flag programs fleet-wide through the arbiter's starvation bound.
func TestTamperedArbiterCaught(t *testing.T) {
	sim.SetArbiterTamper(func(c int) bool { return c == 1 })
	defer sim.SetArbiterTamper(nil)

	rep, err := RunCoRun(CoRunConfig{
		N:       10,
		Seed:    1,
		Pair:    true,
		Schemes: []core.Scheme{core.GRPVar},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("tampered arbiter went undetected:\n%s", rep.Summary())
	}
	var starved int
	for _, f := range rep.Failures() {
		if f.Kind != "run-error" {
			t.Fatalf("unexpected failure kind under arbiter tamper: %s", f)
		}
		if strings.Contains(f.Detail, "starvation") {
			starved++
		}
	}
	if starved == 0 {
		t.Fatalf("no failure names the starvation invariant:\n%s", rep.Summary())
	}

	// The same fleet with the tamper removed is clean — the failures
	// above are the tamper's, not the engine's.
	sim.SetArbiterTamper(nil)
	rep, err = RunCoRun(CoRunConfig{
		N:       10,
		Seed:    1,
		Pair:    true,
		Schemes: []core.Scheme{core.GRPVar},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("untampered co-run fleet failed:\n%s", rep.Summary())
	}
}
