package conformance

import (
	"testing"

	"grp/internal/core"
	"grp/internal/workloads"
)

// TestAttribConservationAcrossFaults is the conservation campaign in
// miniature: every scheme x fault-variant cell runs with the attribution
// ledger attached, core.Run fails any cell whose ledger does not account
// for every issued prefetch exactly once, and checkAttrib reconciles the
// ledger's totals against the counter-based metrics. CI runs the full
// 200-program version through grpconform; this keeps a fast slice in the
// tier-1 suite.
func TestAttribConservationAcrossFaults(t *testing.T) {
	vs, err := ParseVariants("light; heavy")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Config{N: 10, Seed: 21, Jobs: 4, Variants: vs})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("attribution conformance failures:\n%s", rep.Summary())
	}
	var checked int
	for _, p := range rep.Programs {
		if !p.Skipped {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("every program skipped; campaign checked nothing")
	}
}

// TestCheckAttribDetectsDisagreement proves the reconciliation is not
// vacuous: take a genuinely conserved result from a prefetch-heavy
// workload, corrupt the ledger summary in each reconciled dimension, and
// demand checkAttrib reports each corruption.
func TestCheckAttribDetectsDisagreement(t *testing.T) {
	spec, err := workloads.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{Attrib: true, MaxInstrs: 200_000}
	r, err := core.Run(spec, core.GRPVar, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Attrib == nil || r.Attrib.Issued == 0 {
		t.Fatalf("grp/var on mcf issued no attributed prefetches: %+v", r.Attrib)
	}

	collect := func(r *core.Result) []Failure {
		var fs []Failure
		fail := func(sc core.Scheme, variant, kind, detail string) {
			fs = append(fs, Failure{Scheme: sc, Variant: variant, Kind: kind, Detail: detail})
		}
		checkAttrib(r, fail, r.Scheme, "")
		return fs
	}

	if fs := collect(r); len(fs) != 0 {
		t.Fatalf("clean result failed reconciliation: %v", fs)
	}

	corruptions := []struct {
		name   string
		mutate func(c *core.Result)
	}{
		{"issued drift", func(c *core.Result) { c.Attrib.Issued++; c.Attrib.Counts.Useful++ }},
		{"conservation break", func(c *core.Result) { c.Attrib.Counts.Useful++ }},
		{"cancelled drift", func(c *core.Result) {
			c.Attrib.Counts.Cancelled++
			c.Attrib.Counts.Useful--
		}},
		{"fills partition break", func(c *core.Result) {
			c.Attrib.Counts.Redundant++
			c.Attrib.Counts.Useful--
		}},
		{"late overcount", func(c *core.Result) {
			c.Mem.PrefetchLates = 0
			c.Attrib.Counts.Late++
			c.Attrib.Counts.Useful--
		}},
	}
	for _, tc := range corruptions {
		cp := *r
		s := *r.Attrib
		cp.Attrib = &s
		tc.mutate(&cp)
		if fs := collect(&cp); len(fs) == 0 {
			t.Errorf("%s: corruption passed reconciliation", tc.name)
		} else {
			for _, f := range fs {
				if f.Kind != "attrib" {
					t.Errorf("%s: failure kind %q, want attrib", tc.name, f.Kind)
				}
			}
		}
	}
}
