package conformance

import (
	"fmt"

	"grp/internal/lang"
	"grp/internal/progen"
)

// ShrinkResult is a minimized failing program.
type ShrinkResult struct {
	// Prog is the smallest still-failing mutant found.
	Prog *lang.Program
	// Instrs is Prog's static compiled instruction count.
	Instrs int
	// Evals is how many predicate evaluations (full differential checks)
	// the search spent.
	Evals int
	// Failures are the shrunk program's conformance failures.
	Failures []Failure
}

// Shrink minimizes the failing program for one seed: it greedily applies
// body reductions (statement deletion, branch/loop unwrapping, trip-count
// and operand simplification) as long as the reduced program still fails
// the differential check under cfg, then returns the fixpoint. Reductions
// never mutate AST nodes in place — they build new statement lists over
// shared subtrees — so the original workload stays intact.
//
// The caller should narrow cfg (schemes, variants) to the cells that
// actually failed: every candidate evaluation replays the whole check.
// maxEvals bounds the search (<= 0 means 400).
func Shrink(cfg Config, seed int64, maxEvals int) (*ShrinkResult, error) {
	if maxEvals <= 0 {
		maxEvals = 400
	}
	w := progen.Generate(seed, cfg.Gen)
	evals := 0
	var lastFailures []Failure
	failing := func(p *lang.Program) bool {
		evals++
		mut := &progen.Workload{Prog: p, Init: w.Init}
		pr := CheckWorkload(cfg, seed, mut)
		if pr.Skipped || len(pr.Failures) == 0 {
			return false
		}
		lastFailures = pr.Failures
		return true
	}

	cur := w.Prog
	if !failing(cur) {
		return nil, fmt.Errorf("conformance: seed %d does not fail under the shrink config", seed)
	}

	reduced := true
	for reduced && evals < maxEvals {
		reduced = false
		for _, body := range stmtListVariants(cur.Body) {
			if evals >= maxEvals {
				break
			}
			cand := &lang.Program{
				Name: cur.Name, Arrays: cur.Arrays, Scalars: cur.Scalars, Body: body,
			}
			if failing(cand) {
				cur = cand
				reduced = true
				break // restart the scan from the smaller program
			}
		}
	}

	n, err := StaticInstrs(cur)
	if err != nil {
		return nil, fmt.Errorf("conformance: shrunk program does not compile: %w", err)
	}
	return &ShrinkResult{Prog: cur, Instrs: n, Evals: evals, Failures: lastFailures}, nil
}

// stmtListVariants enumerates every single-step reduction of a statement
// list: dropping one statement, or replacing one statement by one of its
// own reductions (which may splice in several statements, e.g. unwrapping
// an If into its branch). Bigger cuts come first so the greedy search
// shrinks fast.
func stmtListVariants(ss []lang.Stmt) [][]lang.Stmt {
	var out [][]lang.Stmt
	// Deletions first: removing a whole statement is the largest cut.
	for i := range ss {
		out = append(out, spliceStmts(ss, i, nil))
	}
	for i, s := range ss {
		for _, repl := range stmtVariants(s) {
			out = append(out, spliceStmts(ss, i, repl))
		}
	}
	return out
}

// spliceStmts returns ss with ss[i] replaced by repl (possibly empty).
func spliceStmts(ss []lang.Stmt, i int, repl []lang.Stmt) []lang.Stmt {
	out := make([]lang.Stmt, 0, len(ss)-1+len(repl))
	out = append(out, ss[:i]...)
	out = append(out, repl...)
	out = append(out, ss[i+1:]...)
	return out
}

// stmtVariants enumerates the reductions of one statement, each expressed
// as the replacement statement list.
func stmtVariants(s lang.Stmt) [][]lang.Stmt {
	var out [][]lang.Stmt
	switch n := s.(type) {
	case *lang.If:
		out = append(out, n.Then)
		if len(n.Else) > 0 {
			out = append(out, n.Else)
		}
		for _, tv := range stmtListVariants(n.Then) {
			out = append(out, []lang.Stmt{&lang.If{Cond: n.Cond, Then: tv, Else: n.Else}})
		}
		for _, ev := range stmtListVariants(n.Else) {
			out = append(out, []lang.Stmt{&lang.If{Cond: n.Cond, Then: n.Then, Else: ev}})
		}
	case *lang.For:
		out = append(out, n.Body) // unwrap: run the body once, loop var left at its prior value
		if lo, ok := n.Lo.(*lang.Const); ok {
			if hi, ok2 := n.Hi.(*lang.Const); ok2 && hi.V-lo.V > int64(n.Step) {
				out = append(out, []lang.Stmt{&lang.For{
					Var: n.Var, Lo: n.Lo, Hi: lang.C(lo.V + n.Step), Step: n.Step, Body: n.Body,
				}})
			}
		}
		for _, bv := range stmtListVariants(n.Body) {
			out = append(out, []lang.Stmt{&lang.For{
				Var: n.Var, Lo: n.Lo, Hi: n.Hi, Step: n.Step, Body: bv,
			}})
		}
	case *lang.While:
		for _, bv := range stmtListVariants(n.Body) {
			out = append(out, []lang.Stmt{&lang.While{Cond: n.Cond, Body: bv}})
		}
	case *lang.Assign:
		if _, isConst := n.Src.(*lang.Const); !isConst {
			out = append(out, []lang.Stmt{&lang.Assign{Dst: n.Dst, Src: lang.C(1)}})
		}
	}
	return out
}
