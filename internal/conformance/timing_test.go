package conformance

import "testing"

// TestTimingEquivalence is the timing-equivalence gate for the hot-path
// overhaul: generated programs run through every realistic scheme on both
// the overhauled engine and the retained legacy engine, and the two must
// agree cycle-for-cycle (plus arch/mem digests). 200 programs in full
// mode — the count the engine rewrite was signed off against — and a
// fast slice under -short.
func TestTimingEquivalence(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 20
	}
	rep, err := Run(Config{N: n, Seed: 1, Jobs: 4, TimingCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("timing equivalence violated:\n%s", rep.Summary())
	}
	// The mode must actually have run the legacy twins: each unskipped
	// program runs 1 perfect-L2 reference + 5 schemes × 2 engines.
	for _, p := range rep.Programs {
		if p.Skipped {
			continue
		}
		if want := 1 + 2*len(DefaultSchemes()); p.Cells != want {
			t.Fatalf("seed %d ran %d cells, want %d (legacy twins missing?)", p.Seed, p.Cells, want)
		}
	}
}

// TestTimingCheckCellAccounting pins that TimingCheck=false runs no
// legacy twins, so the two modes stay distinguishable in reports.
func TestTimingCheckCellAccounting(t *testing.T) {
	rep, err := Run(Config{N: 2, Seed: 1, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Programs {
		if p.Skipped {
			continue
		}
		if want := 1 + len(DefaultSchemes()); p.Cells != want {
			t.Fatalf("seed %d ran %d cells, want %d", p.Seed, p.Cells, want)
		}
	}
}
