package conformance

import (
	"fmt"
	"reflect"
	"strings"

	"grp/internal/campaign"
	"grp/internal/compiler"
	"grp/internal/core"
	"grp/internal/mem"
	"grp/internal/progen"
	"grp/internal/workloads"
)

// The co-run equivalence battery holds the multi-core engine to two
// properties over the generated-program fleet:
//
//   - N=1 equivalence: a 1-core co-run is cycle-identical to the
//     single-cell engine — every field of the Result agrees, down to the
//     attribution summary. The co-run system is a second implementation
//     of the same timing semantics, so this is the multi-core analogue
//     of the legacy-engine timing check.
//   - 2-core architectural invariance: contention perturbs timing only;
//     each core of a 2-core self-co-run reproduces its solo run's
//     architectural and memory digests, never runs faster than solo,
//     and keeps every shared-fabric invariant (including the arbiter's
//     starvation bound) intact.

// CoRunConfig parameterizes a co-run conformance campaign.
type CoRunConfig struct {
	// N is how many generated programs to check; Seed seeds the first
	// (program i uses Seed+i). Jobs is the worker-pool width.
	N    int
	Seed int64
	Jobs int
	// Schemes to check; nil uses the realistic set (DefaultSchemes).
	Schemes []core.Scheme
	// Pair additionally runs every program as a 2-core self-co-run and
	// checks architectural invariance under contention.
	Pair bool
	// MaxSteps bounds the interpreter oracle (default 300k); programs
	// exceeding it are skipped, as in the main harness.
	MaxSteps int
	// Progress, when non-nil, is called after each checked program.
	// Serialized.
	Progress func(done, total, failed int)
}

// CoRunFailure is one equivalence or invariance violation.
type CoRunFailure struct {
	Seed   int64
	Scheme core.Scheme
	Kind   string // run-error, equivalence-divergence, arch-divergence, cycle-bound
	Detail string
}

func (f CoRunFailure) String() string {
	return fmt.Sprintf("seed %d %s: %s: %s", f.Seed, f.Scheme, f.Kind, f.Detail)
}

// CoRunProgramReport is the outcome of checking one generated program.
type CoRunProgramReport struct {
	Seed       int64
	Skipped    bool
	SkipReason string
	Cells      int
	Failures   []CoRunFailure
}

// CoRunReport aggregates a co-run conformance campaign.
type CoRunReport struct {
	Programs []CoRunProgramReport
}

// Failed reports whether any program failed.
func (r *CoRunReport) Failed() bool {
	for _, p := range r.Programs {
		if len(p.Failures) > 0 {
			return true
		}
	}
	return false
}

// Failures collects every failure in seed order.
func (r *CoRunReport) Failures() []CoRunFailure {
	var out []CoRunFailure
	for _, p := range r.Programs {
		out = append(out, p.Failures...)
	}
	return out
}

// Summary renders the deterministic campaign summary.
func (r *CoRunReport) Summary() string {
	var cells, skipped int
	for _, p := range r.Programs {
		cells += p.Cells
		if p.Skipped {
			skipped++
		}
	}
	fails := r.Failures()
	var b strings.Builder
	fmt.Fprintf(&b, "corun-conformance: %d programs, %d cells, %d skipped, %d failures\n",
		len(r.Programs), cells, skipped, len(fails))
	for _, f := range fails {
		fmt.Fprintf(&b, "  FAIL %s\n", f)
	}
	return b.String()
}

// RunCoRun checks cfg.N generated programs through the co-run
// equivalence battery on up to cfg.Jobs workers.
func RunCoRun(cfg CoRunConfig) (*CoRunReport, error) {
	if cfg.N <= 0 {
		cfg.N = 1
	}
	rep := &CoRunReport{Programs: make([]CoRunProgramReport, cfg.N)}
	var done, failed int
	progress := func(failures int) {}
	if cfg.Progress != nil {
		mu := make(chan struct{}, 1)
		mu <- struct{}{}
		progress = func(failures int) {
			<-mu
			done++
			failed += failures
			cfg.Progress(done, cfg.N, failed)
			mu <- struct{}{}
		}
	}
	err := campaign.ParallelFor(nil, cfg.N, cfg.Jobs, func(i int) error {
		pr := CheckCoRunSeed(cfg, cfg.Seed+int64(i))
		rep.Programs[i] = *pr
		progress(len(pr.Failures))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// CheckCoRunSeed generates one program and runs it through the battery.
func CheckCoRunSeed(cfg CoRunConfig, seed int64) *CoRunProgramReport {
	pr := &CoRunProgramReport{Seed: seed}
	fail := func(sc core.Scheme, kind, detail string) {
		pr.Failures = append(pr.Failures, CoRunFailure{Seed: seed, Scheme: sc, Kind: kind, Detail: detail})
	}

	w := progen.Generate(seed, progen.Config{})
	if err := w.Prog.Validate(); err != nil {
		fail(core.NoPrefetch, "run-error", fmt.Sprintf("generator produced invalid program: %v", err))
		return pr
	}
	// Budget from the interpreter oracle, exactly as the main harness
	// derives it (see CheckWorkload).
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = defaultMaxSteps
	}
	om := mem.New()
	lay := compiler.Place(w.Prog, om)
	w.Init(om, func(name string) uint64 { return lay.Addr[name] })
	ip := compiler.NewInterp(w.Prog, lay, om, maxSteps)
	if err := ip.Run(); err != nil {
		pr.Skipped = true
		pr.SkipReason = err.Error()
		return pr
	}
	budget := uint64(ip.Steps())*16 + 65536
	spec := syntheticSpec(seed, w, budget)

	schemes := cfg.Schemes
	if schemes == nil {
		schemes = DefaultSchemes()
	}
	opt := core.Options{Attrib: true, CheckInvariants: true}

	for _, sc := range schemes {
		pr.Cells += 2
		solo, err := core.Run(spec, sc, opt)
		if err != nil {
			fail(sc, "run-error", fmt.Sprintf("solo: %v", err))
			continue
		}
		cr, err := core.RunCoRunSpecs([]*workloads.Spec{spec}, sc, opt)
		if err != nil {
			fail(sc, "run-error", fmt.Sprintf("corun n=1: %v", err))
			continue
		}
		if diffs := DiffResults(solo, cr.Results[0]); len(diffs) > 0 {
			fail(sc, "equivalence-divergence",
				fmt.Sprintf("1-core co-run diverged from solo; first divergent field: %s", diffs[0]))
			continue
		}

		if !cfg.Pair {
			continue
		}
		pr.Cells++
		pair, err := core.RunCoRunSpecs([]*workloads.Spec{spec, spec}, sc, opt)
		if err != nil {
			fail(sc, "run-error", fmt.Sprintf("corun n=2: %v", err))
			continue
		}
		for c, r := range pair.Results {
			if r.ArchDigest != solo.ArchDigest || r.MemDigest != solo.MemDigest {
				fail(sc, "arch-divergence",
					fmt.Sprintf("2-core self-co-run core %d: arch %016x mem %016x, solo arch %016x mem %016x",
						c, r.ArchDigest, r.MemDigest, solo.ArchDigest, solo.MemDigest))
			}
			if r.CPU.Cycles < solo.CPU.Cycles {
				fail(sc, "cycle-bound",
					fmt.Sprintf("2-core core %d finished in %d cycles, solo took %d — contention cannot speed a core up",
						c, r.CPU.Cycles, solo.CPU.Cycles))
			}
		}
	}
	return pr
}

// DiffResults compares two Results field-by-field and returns the
// divergent fields in declaration order (empty = identical). The
// co-run context is excluded — it is exactly the field that must differ
// between a solo run and a 1-core co-run.
func DiffResults(solo, corun *core.Result) []string {
	var out []string
	add := func(name string, g, w interface{}) {
		if !reflect.DeepEqual(g, w) {
			out = append(out, fmt.Sprintf("%s: solo %v, corun %v", name, g, w))
		}
	}
	add("bench", solo.Bench, corun.Bench)
	add("scheme", solo.Scheme, corun.Scheme)
	add("cpu.instrs", solo.CPU.Instrs, corun.CPU.Instrs)
	add("cpu.cycles", solo.CPU.Cycles, corun.CPU.Cycles)
	add("cpu.loads", solo.CPU.Loads, corun.CPU.Loads)
	add("cpu.stores", solo.CPU.Stores, corun.CPU.Stores)
	add("cpu.branches", solo.CPU.Branches, corun.CPU.Branches)
	add("cpu.mispredicts", solo.CPU.Mispredicts, corun.CPU.Mispredicts)
	add("cpu.halted", solo.CPU.Halted, corun.CPU.Halted)
	add("l1", solo.L1, corun.L1)
	add("l2", solo.L2, corun.L2)
	add("mem", solo.Mem, corun.Mem)
	add("dram", solo.Dram, corun.Dram)
	add("pf", solo.PF, corun.PF)
	add("traffic_bytes", solo.TrafficBytes, corun.TrafficBytes)
	add("hints", solo.Hints, corun.Hints)
	add("arch_digest", fmt.Sprintf("%016x", solo.ArchDigest), fmt.Sprintf("%016x", corun.ArchDigest))
	add("mem_digest", fmt.Sprintf("%016x", solo.MemDigest), fmt.Sprintf("%016x", corun.MemDigest))
	add("attrib", solo.Attrib, corun.Attrib)
	return out
}
