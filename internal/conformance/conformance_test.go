package conformance

import (
	"strings"
	"testing"

	"grp/internal/core"
	"grp/internal/mem"
	"grp/internal/prefetch"
)

// lightVariants returns the light fault preset as a variant list.
func lightVariants(t *testing.T) []Variant {
	t.Helper()
	vs, err := ParseVariants("light")
	if err != nil {
		t.Fatal(err)
	}
	return vs
}

// TestConformanceClean runs a small campaign over every default scheme plus
// the light fault preset and expects zero failures: the simulator conforms
// to the oracle on generated programs.
func TestConformanceClean(t *testing.T) {
	rep, err := Run(Config{N: 8, Seed: 1, Jobs: 4, Variants: lightVariants(t)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("conformance failures:\n%s", rep.Summary())
	}
	for _, p := range rep.Programs {
		if p.Skipped {
			continue
		}
		// Every program runs the perfect-L2 reference plus schemes x
		// (fault-free + light).
		want := 1 + len(DefaultSchemes())*2
		if p.Cells != want {
			t.Fatalf("seed %d ran %d cells, want %d", p.Seed, p.Cells, want)
		}
	}
}

// TestConformanceDeterministic checks the report text is byte-identical
// across worker counts: parallelism must not reorder anything observable.
func TestConformanceDeterministic(t *testing.T) {
	cfg := Config{N: 6, Seed: 11, Variants: lightVariants(t)}
	cfg.Jobs = 1
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Jobs = 4
	r4, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1, s4 := r1.Summary(), r4.Summary(); s1 != s4 {
		t.Fatalf("summary differs between jobs=1 and jobs=4:\n%s\nvs\n%s", s1, s4)
	}
}

// corruptFill is the known-bad mutation: it flips bits in the functional
// image of every prefetch-filled block, so any scheme that issues a
// prefetch diverges from the oracle while no-prefetch schemes stay clean.
func corruptFill(m *mem.Memory, block uint64) {
	m.Write64(block, m.Read64(block)^0xdeadbeef)
}

// TestTamperCaught checks the harness detects the seeded known-bad
// mutation: prefetching schemes must report oracle divergence, and the
// no-prefetch baseline must stay clean (its fills are all demand fills).
func TestTamperCaught(t *testing.T) {
	rep, err := Run(Config{N: 2, Seed: 1, Tamper: corruptFill})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("tampered prefetch fills went undetected:\n%s", rep.Summary())
	}
	var prefetching int
	for _, f := range rep.Failures() {
		if f.Scheme == core.NoPrefetch || f.Scheme == core.PerfectL2 {
			t.Fatalf("non-prefetching scheme failed under fill tamper: %s", f)
		}
		if f.Kind != "oracle-divergence" {
			t.Fatalf("unexpected failure kind under fill tamper: %s", f)
		}
		prefetching++
	}
	if prefetching == 0 {
		t.Fatal("no prefetching scheme reported divergence")
	}
}

// TestTamperedLadderCaught is the adaptive-scheme known-bad self-test: a
// transition function that walks the aggressiveness ladder off its rungs
// models a broken adaptivity implementation. The engine must survive
// (parameters clamp, so no panic and no oracle divergence — the bug is
// timing-internal) and the harness's always-on invariant checking must
// flag every program whose run closes an epoch.
func TestTamperedLadderCaught(t *testing.T) {
	prefetch.SetLadderTamper(func(from, to prefetch.LadderState) prefetch.LadderState {
		return prefetch.NumLadderStates + 7 // off the ladder
	})
	defer prefetch.SetLadderTamper(nil)
	rep, err := Run(Config{N: 10, Seed: 1, Schemes: []core.Scheme{core.GRPAdaptive}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("tampered ladder transition went undetected:\n%s", rep.Summary())
	}
	for _, f := range rep.Failures() {
		if f.Scheme != core.GRPAdaptive {
			t.Fatalf("non-adaptive scheme failed under ladder tamper: %s", f)
		}
		if f.Kind != "run-error" {
			t.Fatalf("unexpected failure kind under ladder tamper: %s", f)
		}
		if !strings.Contains(f.Detail, "ladder") {
			t.Fatalf("failure does not name the ladder invariant: %s", f)
		}
	}
	// And the same fleet with the tamper removed is clean — the failures
	// above are the tamper's, not the scheme's.
	prefetch.SetLadderTamper(nil)
	rep, err = Run(Config{N: 10, Seed: 1, Schemes: []core.Scheme{core.GRPAdaptive}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("untampered grp-adaptive fleet failed:\n%s", rep.Summary())
	}
}

// TestTamperShrink checks the shrinker reduces a tampered failure to the
// issue's reproducer budget: at most 20 static instructions, still failing.
func TestTamperShrink(t *testing.T) {
	cfg := Config{
		Seed:    1,
		Schemes: []core.Scheme{core.GRPVar},
		Tamper:  corruptFill,
	}
	sr, err := Shrink(cfg, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Failures) == 0 {
		t.Fatal("shrunk program has no recorded failures")
	}
	if sr.Instrs > 20 {
		t.Fatalf("shrunk reproducer has %d static instructions (> 20):\n%s",
			sr.Instrs, sr.Prog.String())
	}
	src := sr.Prog.String()
	if !strings.Contains(src, "for") && !strings.Contains(src, "while") {
		t.Logf("note: shrunk reproducer has no loop:\n%s", src)
	}
}

// TestParseSchemes pins the alias handling shared with the campaign
// grammar.
func TestParseSchemes(t *testing.T) {
	got, err := ParseSchemes("NoPF, grpvar ,srp")
	if err != nil {
		t.Fatal(err)
	}
	want := []core.Scheme{core.NoPrefetch, core.GRPVar, core.SRP}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, err := ParseSchemes("swizzle"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	all, err := ParseSchemes("all")
	if err != nil || len(all) != len(DefaultSchemes()) {
		t.Fatalf("all -> %v, %v", all, err)
	}
}

// TestParseVariants pins the semicolon-separated fault grammar.
func TestParseVariants(t *testing.T) {
	vs, err := ParseVariants("light; heavy")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0].Name != "light" || vs[1].Name != "heavy" {
		t.Fatalf("got %+v", vs)
	}
	if vs[0].Plan == nil || vs[1].Plan == nil {
		t.Fatal("nil plan in parsed variant")
	}
	none, err := ParseVariants("none")
	if err != nil || none != nil {
		t.Fatalf("none -> %v, %v", none, err)
	}
	if _, err := ParseVariants("lr.rate=bogus"); err == nil {
		t.Fatal("bad fault spec accepted")
	}
}
