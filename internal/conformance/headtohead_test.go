package conformance

import (
	"strings"
	"testing"

	"grp/internal/core"
)

// TestHeadToHeadAdaptiveWinsHintDropped pins the scheme family's headline
// result: on the hint-dropped class (hints stripped before the engine sees
// the miss), static GRP starves — it only acts on hints — while the
// adaptive ladder notices the uncovered miss stream and escalates into
// hardware fallback regions. grp-adaptive must beat grp/var there, and
// must not give back the clean-code result where hints flow.
func TestHeadToHeadAdaptiveWinsHintDropped(t *testing.T) {
	rep, err := RunHeadToHead(H2HConfig{N: 30, Seed: 1, Jobs: 4, Classes: []H2HClass{
		{Name: "heap-clean"},
		{Name: "hint-dropped", Faults: "drop-hint=0.95"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	adaptive := rep.Cell("hint-dropped", core.GRPAdaptive)
	static := rep.Cell("hint-dropped", core.GRPVar)
	if adaptive == nil || static == nil {
		t.Fatalf("missing hint-dropped cells in report:\n%s", rep.Table())
	}
	if adaptive.Programs == 0 {
		t.Fatal("hint-dropped class aggregated zero programs")
	}
	if adaptive.Geomean <= static.Geomean {
		t.Fatalf("grp-adaptive (%.4f) does not beat grp/var (%.4f) on the hint-dropped class:\n%s",
			adaptive.Geomean, static.Geomean, rep.Table())
	}
	// On clean heap code the ladder must not cost the paper point its win:
	// adaptive stays within 2% of static GRP.
	ca, cs := rep.Cell("heap-clean", core.GRPAdaptive), rep.Cell("heap-clean", core.GRPVar)
	if ca.Geomean < 0.98*cs.Geomean {
		t.Fatalf("grp-adaptive (%.4f) gives up more than 2%% vs grp/var (%.4f) on clean code:\n%s",
			ca.Geomean, cs.Geomean, rep.Table())
	}
}

// TestHeadToHeadDeterministic checks the comparison is a pure function of
// (N, seed): rerunning with a different worker count reproduces every cell
// bit-for-bit, so EXPERIMENTS.md numbers are reproducible claims.
func TestHeadToHeadDeterministic(t *testing.T) {
	cfg := H2HConfig{N: 8, Seed: 3}
	cfg.Jobs = 1
	r1, err := RunHeadToHead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Jobs = 4
	r4, err := RunHeadToHead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if t1, t4 := r1.Table(), r4.Table(); t1 != t4 {
		t.Fatalf("head-to-head differs between jobs=1 and jobs=4:\n%s\nvs\n%s", t1, t4)
	}
}

// TestHeadToHeadTable smoke-checks the rendered table: every class row and
// scheme column present, exactly one starred winner per class, and the
// no-prefetch floor never starred (it is a reference, not a contestant).
func TestHeadToHeadTable(t *testing.T) {
	rep, err := RunHeadToHead(H2HConfig{N: 5, Seed: 1, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	table := rep.Table()
	for _, sc := range DefaultH2HSchemes() {
		if !strings.Contains(table, sc.String()) {
			t.Fatalf("table missing scheme column %s:\n%s", sc, table)
		}
	}
	lines := strings.Split(strings.TrimRight(table, "\n"), "\n")
	if want := 2 + len(DefaultH2HClasses()); len(lines) != want {
		t.Fatalf("table has %d lines, want %d:\n%s", len(lines), want, table)
	}
	for _, cl := range DefaultH2HClasses() {
		row := ""
		for _, ln := range lines[2:] {
			if strings.HasPrefix(ln, cl.Name) {
				row = ln
			}
		}
		if row == "" {
			t.Fatalf("table missing class row %s:\n%s", cl.Name, table)
		}
		if got := strings.Count(row, "*"); got != 1 {
			t.Fatalf("class %s has %d starred winners, want 1:\n%s", cl.Name, got, table)
		}
	}
	// The floor column is first after the class label; it must never win.
	for _, ln := range lines[2:] {
		fields := strings.Fields(ln)
		if strings.HasSuffix(fields[1], "*") {
			t.Fatalf("no-prefetch floor starred as winner:\n%s", table)
		}
	}
}

// TestHeadToHeadSortedSchemes checks the best-first ordering agrees with
// the starred cell.
func TestHeadToHeadSortedSchemes(t *testing.T) {
	rep, err := RunHeadToHead(H2HConfig{N: 5, Seed: 1, Jobs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range DefaultH2HClasses() {
		order := rep.SortedSchemes(cl.Name)
		if len(order) != len(rep.Schemes) {
			t.Fatalf("class %s: sorted %d schemes, want %d", cl.Name, len(order), len(rep.Schemes))
		}
		for i := 1; i < len(order); i++ {
			a, b := rep.Cell(cl.Name, order[i-1]), rep.Cell(cl.Name, order[i])
			if a.Geomean < b.Geomean {
				t.Fatalf("class %s: sorted order not descending at %d", cl.Name, i)
			}
		}
	}
}
