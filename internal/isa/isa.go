// Package isa defines the register instruction set executed by the
// simulated out-of-order core, including the GRP hint encoding that the
// compiler attaches to load instructions.
//
// The ISA is a small RISC machine in the spirit of the Alpha ISA the paper
// targets: 32 general-purpose 64-bit registers, load/store with
// register+immediate addressing, three-operand ALU instructions, and
// conditional branches. Two GRP-specific instructions exist: SETBOUND,
// which conveys a loop upper bound to the prefetch engine for variable-size
// region prefetching (paper Section 3.3.2), and PREFI, the indirect
// prefetch instruction for a[b[i]] patterns (Section 3.3.3).
//
// The paper encodes hints in unused Alpha VAX floating-point load opcodes;
// here they are explicit fields on the instruction, which is the same
// information channel (a few bits riding on a load).
package isa

import (
	"encoding/json"
	"fmt"
)

// NumRegs is the number of architectural registers. Register 0 is
// hard-wired to zero, as on MIPS/Alpha-style machines.
const NumRegs = 32

// Op enumerates instruction opcodes.
type Op uint8

// Opcodes. ALU immediate forms use Imm as the second operand.
const (
	OpNop Op = iota

	// ALU register-register: Rd = Rs1 op Rs2.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpSlt // set if less than (signed): Rd = Rs1 < Rs2

	// ALU register-immediate: Rd = Rs1 op Imm.
	OpAddi
	OpMuli
	OpAndi
	OpOri
	OpXori
	OpShli
	OpShri
	OpSlti

	// OpLi loads a 64-bit immediate: Rd = Imm.
	OpLi
	// OpMov copies a register: Rd = Rs1.
	OpMov

	// Loads: Rd = mem[Rs1+Imm]. Ld is 8 bytes, Ld4 4 bytes, Ld1 1 byte
	// (zero-extended). Loads are the only instructions that carry hints.
	OpLd
	OpLd4
	OpLd1

	// Stores: mem[Rs1+Imm] = Rs2 (8/4/1 bytes).
	OpSt
	OpSt4
	OpSt1

	// Branches compare Rs1 and Rs2 and jump to Target when taken.
	OpBeq
	OpBne
	OpBlt
	OpBge
	// OpJmp unconditionally jumps to Target.
	OpJmp

	// OpSetBound conveys the value of Rs1 (a loop trip count) to the
	// prefetch engine; subsequent size-hinted loads use it to compute
	// variable region sizes (paper Section 3.3.2).
	OpSetBound

	// OpPrefIndirect is the indirect prefetch instruction (paper Section
	// 3.3.3). Rs1 holds the address of b[i] (the indirection array
	// element), Rs2 holds the base address &a[0], and Imm holds
	// log2(sizeof(a[0])). The prefetch engine reads the cache block
	// containing Rs1 and generates one prefetch per 4-byte index word.
	OpPrefIndirect

	// OpPref is a classic non-binding software prefetch of mem[Rs1+Imm]
	// (Mowry-style). It is not part of GRP — the paper's Section 2
	// discusses why pure software prefetching cannot cover L2 miss
	// latencies — but the reproduction implements it as the comparison
	// foil: it occupies fetch/issue/memory-port resources like a load and
	// brings the block into the cache without binding a register.
	OpPref

	// OpHalt terminates the program.
	OpHalt
)

var opNames = [...]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpRem: "rem", OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl",
	OpShr: "shr", OpSlt: "slt", OpAddi: "addi", OpMuli: "muli",
	OpAndi: "andi", OpOri: "ori", OpXori: "xori", OpShli: "shli",
	OpShri: "shri", OpSlti: "slti", OpLi: "li", OpMov: "mov",
	OpLd: "ld", OpLd4: "ld4", OpLd1: "ld1",
	OpSt: "st", OpSt4: "st4", OpSt1: "st1",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge", OpJmp: "jmp",
	OpSetBound: "setbound", OpPrefIndirect: "prefi", OpPref: "pref",
	OpHalt: "halt",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Hint is the set of compiler hint bits carried by a load instruction
// (paper Table 2). Spatial, Pointer and Recursive may be combined; the
// paper notes a load can be marked both spatial and pointer (e.g. an array
// of pointers to heap arrays, its Figure 4).
type Hint uint8

const (
	// HintNone marks a load with no compiler hint; GRP does not prefetch
	// on misses to unhinted loads.
	HintNone Hint = 0
	// HintSpatial predicts the reference exhibits spatial locality; GRP
	// initiates a region prefetch on a spatial-hinted L2 miss.
	HintSpatial Hint = 1 << iota
	// HintPointer predicts the referenced structure contains pointers the
	// program will follow; GRP scans the returned block for heap addresses.
	HintPointer
	// HintRecursive predicts the program recursively follows pointers in
	// the returned structure; GRP chases pointers for several levels.
	HintRecursive
)

// Has reports whether h includes all bits of q.
func (h Hint) Has(q Hint) bool { return h&q == q }

// String renders the hint set, e.g. "spatial|pointer".
func (h Hint) String() string {
	if h == HintNone {
		return "none"
	}
	s := ""
	add := func(name string) {
		if s != "" {
			s += "|"
		}
		s += name
	}
	if h.Has(HintSpatial) {
		add("spatial")
	}
	if h.Has(HintPointer) {
		add("pointer")
	}
	if h.Has(HintRecursive) {
		add("recursive")
	}
	return s
}

// FixedRegion is the 3-bit size-coefficient value reserved to mean "use the
// fixed (full) region size" (paper Section 4.4 reserves encoding 7).
const FixedRegion uint8 = 7

// Instr is one decoded instruction. The zero value is a NOP.
type Instr struct {
	Op     Op
	Rd     uint8 // destination register
	Rs1    uint8 // first source register (base register for memory ops)
	Rs2    uint8 // second source register (data register for stores)
	Imm    int64 // immediate / displacement
	Target int   // branch target, an instruction index within the program

	// Hint carries the compiler's GRP hint bits; meaningful on loads only.
	Hint Hint
	// Coeff is the 3-bit variable-region-size coefficient for size-hinted
	// spatial loads: region blocks = min(bound << Coeff scaling, fixed).
	// FixedRegion (7) selects fixed-size region prefetching.
	Coeff uint8

	// Label optionally names the instruction's location; used by the
	// assembler and disassembler for branch targets.
	Label string
}

// IsLoad reports whether the instruction reads data memory.
func (in Instr) IsLoad() bool { return in.Op == OpLd || in.Op == OpLd4 || in.Op == OpLd1 }

// IsStore reports whether the instruction writes data memory.
func (in Instr) IsStore() bool { return in.Op == OpSt || in.Op == OpSt4 || in.Op == OpSt1 }

// IsMem reports whether the instruction accesses data memory.
func (in Instr) IsMem() bool { return in.IsLoad() || in.IsStore() }

// IsBranch reports whether the instruction can redirect control flow.
func (in Instr) IsBranch() bool {
	switch in.Op {
	case OpBeq, OpBne, OpBlt, OpBge, OpJmp:
		return true
	}
	return false
}

// IsConditional reports whether the instruction is a conditional branch.
func (in Instr) IsConditional() bool {
	switch in.Op {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// MemSize returns the access width in bytes for memory instructions and 0
// otherwise.
func (in Instr) MemSize() int {
	switch in.Op {
	case OpLd, OpSt:
		return 8
	case OpLd4, OpSt4:
		return 4
	case OpLd1, OpSt1:
		return 1
	}
	return 0
}

// Uses returns the source registers read by the instruction. A register
// slot of 0 never creates a dependence because r0 is constant zero.
func (in Instr) Uses() (a, b uint8) {
	switch in.Op {
	case OpNop, OpLi, OpHalt:
		return 0, 0
	case OpMov, OpAddi, OpMuli, OpAndi, OpOri, OpXori, OpShli, OpShri, OpSlti:
		return in.Rs1, 0
	case OpLd, OpLd4, OpLd1:
		return in.Rs1, 0
	case OpSt, OpSt4, OpSt1:
		return in.Rs1, in.Rs2
	case OpJmp:
		return 0, 0
	case OpSetBound, OpPref:
		return in.Rs1, 0
	case OpPrefIndirect:
		return in.Rs1, in.Rs2
	default:
		return in.Rs1, in.Rs2
	}
}

// Defines returns the destination register written by the instruction, or
// 0 when it writes none (register 0 is the zero register, so "defines r0"
// and "defines nothing" coincide).
func (in Instr) Defines() uint8 {
	switch in.Op {
	case OpSt, OpSt4, OpSt1, OpBeq, OpBne, OpBlt, OpBge, OpJmp,
		OpSetBound, OpPrefIndirect, OpPref, OpHalt, OpNop:
		return 0
	}
	return in.Rd
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpHalt:
		return "halt"
	case OpLi:
		return fmt.Sprintf("li r%d, %d", in.Rd, in.Imm)
	case OpMov:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Rs1)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSlt:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case OpAddi, OpMuli, OpAndi, OpOri, OpXori, OpShli, OpShri, OpSlti:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpLd, OpLd4, OpLd1:
		s := fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Rs1)
		if in.Hint != HintNone {
			s += " "
			if in.Hint.Has(HintSpatial) {
				s += "!spatial"
			}
			if in.Hint.Has(HintPointer) {
				s += "!pointer"
			}
			if in.Hint.Has(HintRecursive) {
				s += "!recursive"
			}
			if in.Coeff != FixedRegion && in.Hint.Has(HintSpatial) {
				s += fmt.Sprintf("!sz%d", in.Coeff)
			}
		}
		return s
	case OpSt, OpSt4, OpSt1:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s r%d, r%d, @%d", in.Op, in.Rs1, in.Rs2, in.Target)
	case OpJmp:
		return fmt.Sprintf("jmp @%d", in.Target)
	case OpSetBound:
		return fmt.Sprintf("setbound r%d", in.Rs1)
	case OpPrefIndirect:
		return fmt.Sprintf("prefi r%d, r%d, %d", in.Rs1, in.Rs2, in.Imm)
	case OpPref:
		return fmt.Sprintf("pref %d(r%d)", in.Imm, in.Rs1)
	}
	return in.Op.String()
}

// Program is a fully resolved instruction sequence. Branch targets are
// instruction indices.
type Program struct {
	Name   string
	Instrs []Instr
}

// Validate checks structural invariants: branch targets in range, register
// numbers within the file, a terminating HALT reachable by fallthrough.
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return fmt.Errorf("isa: program %q is empty", p.Name)
	}
	for i, in := range p.Instrs {
		if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
			return fmt.Errorf("isa: %q instr %d (%s): register out of range", p.Name, i, in)
		}
		if in.IsBranch() {
			if in.Target < 0 || in.Target >= len(p.Instrs) {
				return fmt.Errorf("isa: %q instr %d (%s): branch target %d out of range [0,%d)",
					p.Name, i, in, in.Target, len(p.Instrs))
			}
		}
		if in.IsLoad() && in.Coeff > FixedRegion {
			return fmt.Errorf("isa: %q instr %d (%s): coefficient %d exceeds 3-bit field",
				p.Name, i, in, in.Coeff)
		}
	}
	last := p.Instrs[len(p.Instrs)-1]
	if last.Op != OpHalt && last.Op != OpJmp {
		return fmt.Errorf("isa: %q does not end in halt or jmp", p.Name)
	}
	return nil
}

// HintCounts summarizes the static hint population of a program; it backs
// the paper's Table 3.
type HintCounts struct {
	MemInsts  int // static memory reference instructions
	Spatial   int // loads marked spatial
	Pointer   int // loads marked pointer
	Recursive int // loads marked recursive pointer
	Indirect  int // static indirect prefetch instructions
	Variable  int // spatial loads with a variable (non-fixed) region size

	hinted int // memory instructions carrying at least one hint
}

// HintRatio returns the fraction of static memory instructions carrying any
// hint, in percent (paper Table 3, column "ratio").
func (h HintCounts) HintRatio() float64 {
	if h.MemInsts == 0 {
		return 0
	}
	return 100 * float64(h.Hinted()) / float64(h.MemInsts)
}

// Hinted returns the number of static memory instructions carrying at least
// one hint. Loads marked both spatial and pointer count once.
func (h HintCounts) Hinted() int { return h.hinted }

// hintCountsJSON mirrors HintCounts for serialization, carrying the
// unexported hinted tally so cached results round-trip exactly.
type hintCountsJSON struct {
	MemInsts  int `json:"mem_insts"`
	Spatial   int `json:"spatial"`
	Pointer   int `json:"pointer"`
	Recursive int `json:"recursive"`
	Indirect  int `json:"indirect"`
	Variable  int `json:"variable"`
	Hinted    int `json:"hinted"`
}

// MarshalJSON implements json.Marshaler.
func (h HintCounts) MarshalJSON() ([]byte, error) {
	return json.Marshal(hintCountsJSON{
		MemInsts: h.MemInsts, Spatial: h.Spatial, Pointer: h.Pointer,
		Recursive: h.Recursive, Indirect: h.Indirect, Variable: h.Variable,
		Hinted: h.hinted,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *HintCounts) UnmarshalJSON(b []byte) error {
	var j hintCountsJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*h = HintCounts{
		MemInsts: j.MemInsts, Spatial: j.Spatial, Pointer: j.Pointer,
		Recursive: j.Recursive, Indirect: j.Indirect, Variable: j.Variable,
		hinted: j.Hinted,
	}
	return nil
}

// CountHints scans the program and tabulates its static hint population.
func (p *Program) CountHints() HintCounts {
	var c HintCounts
	for _, in := range p.Instrs {
		if in.IsMem() {
			c.MemInsts++
		}
		if in.IsLoad() && in.Hint != HintNone {
			c.hinted++
			if in.Hint.Has(HintSpatial) {
				c.Spatial++
				if in.Coeff != FixedRegion {
					c.Variable++
				}
			}
			if in.Hint.Has(HintPointer) {
				c.Pointer++
			}
			if in.Hint.Has(HintRecursive) {
				c.Recursive++
			}
		}
		if in.Op == OpPrefIndirect {
			c.Indirect++
		}
	}
	return c
}
