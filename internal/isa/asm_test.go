package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const sampleSrc = `
; a loop summing 10 values
	li   r1, 4096
	li   r2, 10
	li   r3, 0
loop:
	ld   r4, 0(r1) !spatial!sz3
	add  r3, r3, r4
	addi r1, r1, 8
	addi r2, r2, -1
	bne  r2, r0, loop
	st   r3, 8(r1)
	halt
`

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble("sample", sampleSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(p.Instrs) != 10 {
		t.Fatalf("got %d instructions, want 10", len(p.Instrs))
	}
	ld := p.Instrs[3]
	if ld.Op != OpLd || ld.Rd != 4 || ld.Rs1 != 1 || ld.Imm != 0 {
		t.Errorf("ld parsed wrong: %+v", ld)
	}
	if !ld.Hint.Has(HintSpatial) || ld.Coeff != 3 {
		t.Errorf("ld hints parsed wrong: hint=%v coeff=%d", ld.Hint, ld.Coeff)
	}
	bne := p.Instrs[7]
	if bne.Op != OpBne || bne.Target != 3 {
		t.Errorf("bne target = %d, want 3 (%+v)", bne.Target, bne)
	}
	st := p.Instrs[8]
	if st.Op != OpSt || st.Rs2 != 3 || st.Rs1 != 1 || st.Imm != 8 {
		t.Errorf("st parsed wrong: %+v", st)
	}
}

func TestAssembleNegativeDisplacement(t *testing.T) {
	p, err := Assemble("neg", "\tld r1, -16(r2)\n\thalt\n")
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if p.Instrs[0].Imm != -16 {
		t.Errorf("displacement = %d, want -16", p.Instrs[0].Imm)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown op":      "\tfrob r1, r2\n\thalt\n",
		"bad register":    "\tli r99, 1\n\thalt\n",
		"undefined label": "\tjmp nowhere\n\thalt\n",
		"dup label":       "a:\n\tnop\na:\n\thalt\n",
		"hint on alu":     "\tadd r1, r2, r3 !spatial\n\thalt\n",
		"bad hint":        "\tld r1, 0(r2) !warp\n\thalt\n",
		"bad coeff":       "\tld r1, 0(r2) !sz9\n\thalt\n",
		"missing operand": "\tadd r1, r2\n\thalt\n",
		"bad mem operand": "\tld r1, r2\n\thalt\n",
	}
	for name, src := range cases {
		if _, err := Assemble(name, src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p, err := Assemble("sample", sampleSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	text := Disassemble(p)
	p2, err := Assemble("sample2", text)
	if err != nil {
		t.Fatalf("reassemble failed: %v\n%s", err, text)
	}
	if len(p2.Instrs) != len(p.Instrs) {
		t.Fatalf("round trip changed length: %d vs %d", len(p2.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		a, b := p.Instrs[i], p2.Instrs[i]
		a.Label, b.Label = "", ""
		if a != b {
			t.Errorf("instr %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// randomProgram builds a structurally valid random program for the
// round-trip property test.
func randomProgram(r *rand.Rand, n int) *Program {
	if n < 2 {
		n = 2
	}
	p := &Program{Name: "rand"}
	ops := []Op{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpSlt,
		OpAddi, OpMuli, OpShli, OpLi, OpMov, OpLd, OpLd4, OpLd1,
		OpSt, OpSt4, OpSt1, OpBeq, OpBne, OpBlt, OpBge, OpJmp,
		OpSetBound, OpPrefIndirect, OpNop}
	reg := func() uint8 { return uint8(r.Intn(NumRegs)) }
	for i := 0; i < n-1; i++ {
		op := ops[r.Intn(len(ops))]
		in := Instr{Op: op, Rd: reg(), Rs1: reg(), Rs2: reg(), Coeff: FixedRegion}
		switch {
		case in.IsLoad():
			in.Imm = int64(r.Intn(256)) - 128
			if r.Intn(2) == 0 {
				in.Hint = Hint(r.Intn(8)) << 1 // any combination
				if in.Hint.Has(HintSpatial) {
					in.Coeff = uint8(r.Intn(8))
				}
			}
		case in.IsStore():
			in.Imm = int64(r.Intn(256)) - 128
		case in.IsBranch():
			in.Target = r.Intn(n)
		case op == OpLi, op == OpAddi, op == OpMuli, op == OpPrefIndirect:
			in.Imm = int64(r.Intn(1 << 16))
		case op == OpShli:
			in.Imm = int64(r.Intn(63))
		}
		p.Instrs = append(p.Instrs, in)
	}
	p.Instrs = append(p.Instrs, Instr{Op: OpHalt, Coeff: 0})
	return p
}

// TestQuickDisassembleAssembleRoundTrip is the property test: any valid
// program survives disassemble → assemble unchanged (up to labels and the
// canonical Coeff on non-loads).
func TestQuickDisassembleAssembleRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		p := randomProgram(r, 2+r.Intn(40))
		if err := p.Validate(); err != nil {
			t.Fatalf("generator produced invalid program: %v", err)
		}
		// The textual form is the canonical representation: it must be a
		// fixed point of disassemble ∘ assemble. (Struct equality is too
		// strict: the generator fills register fields an opcode ignores.)
		text := Disassemble(p)
		p2, err := Assemble("rt", text)
		if err != nil {
			t.Logf("reassemble error: %v\n%s", err, text)
			return false
		}
		text2 := Disassemble(p2)
		if text2 != text {
			t.Logf("round trip changed text:\n%s\nvs\n%s", text, text2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDisassembleLabels(t *testing.T) {
	p := &Program{Name: "lbl", Instrs: []Instr{
		{Op: OpJmp, Target: 2},
		{Op: OpNop},
		{Op: OpHalt},
	}}
	text := Disassemble(p)
	if !strings.Contains(text, "L2:") {
		t.Errorf("expected label L2 in:\n%s", text)
	}
}
