package isa

import (
	"strings"
	"testing"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpAdd: "add", OpLd: "ld", OpSt4: "st4", OpBeq: "beq",
		OpSetBound: "setbound", OpPrefIndirect: "prefi", OpHalt: "halt",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, got, want)
		}
	}
	if got := Op(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown op string = %q", got)
	}
}

func TestHintString(t *testing.T) {
	cases := []struct {
		h    Hint
		want string
	}{
		{HintNone, "none"},
		{HintSpatial, "spatial"},
		{HintPointer, "pointer"},
		{HintSpatial | HintPointer, "spatial|pointer"},
		{HintSpatial | HintPointer | HintRecursive, "spatial|pointer|recursive"},
	}
	for _, c := range cases {
		if got := c.h.String(); got != c.want {
			t.Errorf("Hint(%b).String() = %q, want %q", c.h, got, c.want)
		}
	}
}

func TestHintHas(t *testing.T) {
	h := HintSpatial | HintPointer
	if !h.Has(HintSpatial) || !h.Has(HintPointer) {
		t.Error("Has should report both set bits")
	}
	if h.Has(HintRecursive) {
		t.Error("Has(HintRecursive) on spatial|pointer should be false")
	}
	if !h.Has(HintNone) {
		t.Error("Has(HintNone) should always be true")
	}
}

func TestInstrPredicates(t *testing.T) {
	ld := Instr{Op: OpLd}
	st := Instr{Op: OpSt4}
	add := Instr{Op: OpAdd}
	beq := Instr{Op: OpBeq}
	jmp := Instr{Op: OpJmp}

	if !ld.IsLoad() || ld.IsStore() || !ld.IsMem() {
		t.Error("ld predicates wrong")
	}
	if st.IsLoad() || !st.IsStore() || !st.IsMem() {
		t.Error("st predicates wrong")
	}
	if add.IsMem() || add.IsBranch() {
		t.Error("add predicates wrong")
	}
	if !beq.IsBranch() || !beq.IsConditional() {
		t.Error("beq predicates wrong")
	}
	if !jmp.IsBranch() || jmp.IsConditional() {
		t.Error("jmp predicates wrong")
	}
}

func TestMemSize(t *testing.T) {
	cases := map[Op]int{
		OpLd: 8, OpLd4: 4, OpLd1: 1, OpSt: 8, OpSt4: 4, OpSt1: 1, OpAdd: 0,
	}
	for op, want := range cases {
		if got := (Instr{Op: op}).MemSize(); got != want {
			t.Errorf("%s MemSize = %d, want %d", op, got, want)
		}
	}
}

func TestUsesDefines(t *testing.T) {
	cases := []struct {
		in   Instr
		a, b uint8
		d    uint8
	}{
		{Instr{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}, 2, 3, 1},
		{Instr{Op: OpAddi, Rd: 1, Rs1: 2}, 2, 0, 1},
		{Instr{Op: OpLd, Rd: 4, Rs1: 5}, 5, 0, 4},
		{Instr{Op: OpSt, Rs1: 5, Rs2: 6}, 5, 6, 0},
		{Instr{Op: OpLi, Rd: 7}, 0, 0, 7},
		{Instr{Op: OpBeq, Rs1: 1, Rs2: 2}, 1, 2, 0},
		{Instr{Op: OpSetBound, Rs1: 3}, 3, 0, 0},
		{Instr{Op: OpPrefIndirect, Rs1: 3, Rs2: 4}, 3, 4, 0},
		{Instr{Op: OpHalt}, 0, 0, 0},
	}
	for _, c := range cases {
		a, b := c.in.Uses()
		if a != c.a || b != c.b {
			t.Errorf("%s Uses = (%d,%d), want (%d,%d)", c.in, a, b, c.a, c.b)
		}
		if d := c.in.Defines(); d != c.d {
			t.Errorf("%s Defines = %d, want %d", c.in, d, c.d)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := &Program{Name: "ok", Instrs: []Instr{
		{Op: OpLi, Rd: 1, Imm: 5},
		{Op: OpHalt},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
	cases := []*Program{
		{Name: "empty"},
		{Name: "badtarget", Instrs: []Instr{{Op: OpJmp, Target: 5}, {Op: OpHalt}}},
		{Name: "noend", Instrs: []Instr{{Op: OpLi, Rd: 1}}},
		{Name: "badcoeff", Instrs: []Instr{{Op: OpLd, Rd: 1, Coeff: 9}, {Op: OpHalt}}},
	}
	for _, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("program %q should fail validation", p.Name)
		}
	}
}

func TestCountHints(t *testing.T) {
	p := &Program{Name: "h", Instrs: []Instr{
		{Op: OpLd, Rd: 1, Hint: HintSpatial, Coeff: 3},
		{Op: OpLd, Rd: 2, Hint: HintSpatial | HintPointer, Coeff: FixedRegion},
		{Op: OpLd, Rd: 3, Hint: HintRecursive, Coeff: FixedRegion},
		{Op: OpLd, Rd: 4, Coeff: FixedRegion},
		{Op: OpSt, Rs1: 1, Rs2: 2},
		{Op: OpPrefIndirect, Rs1: 1, Rs2: 2},
		{Op: OpHalt},
	}}
	c := p.CountHints()
	if c.MemInsts != 5 {
		t.Errorf("MemInsts = %d, want 5", c.MemInsts)
	}
	if c.Spatial != 2 || c.Pointer != 1 || c.Recursive != 1 || c.Indirect != 1 || c.Variable != 1 {
		t.Errorf("counts = %+v", c)
	}
	if c.Hinted() != 3 {
		t.Errorf("Hinted = %d, want 3", c.Hinted())
	}
	if got := c.HintRatio(); got != 60 {
		t.Errorf("HintRatio = %v, want 60", got)
	}
}

func TestHintRatioEmpty(t *testing.T) {
	var c HintCounts
	if c.HintRatio() != 0 {
		t.Error("empty ratio should be 0")
	}
}
