package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses the textual assembler syntax produced by Disassemble (and
// written by hand in tests and examples) into a Program.
//
// Syntax, one instruction per line:
//
//	; comment                     (also # comment)
//	loop:                         label, attaches to the next instruction
//	li   r1, 100
//	add  r3, r1, r2
//	addi r3, r1, 8
//	ld   r2, 8(r1) !spatial!sz3   hints: !spatial !pointer !recursive !szN
//	st   r2, 0(r4)                (store syntax: value register first)
//	beq  r1, r2, loop             branch targets are labels
//	jmp  loop
//	setbound r5
//	prefi r6, r7, 2               index-elem addr, base addr, log2 elem size
//	halt
func Assemble(name, src string) (*Program, error) {
	p := &Program{Name: name}
	labels := map[string]int{}
	type fixup struct {
		instr int
		label string
		line  int
	}
	var fixups []fixup
	pending := ""

	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			label := strings.TrimSuffix(line, ":")
			if !isIdent(label) {
				return nil, fmt.Errorf("isa: %s:%d: bad label %q", name, lineNo, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("isa: %s:%d: duplicate label %q", name, lineNo, label)
			}
			labels[label] = len(p.Instrs)
			pending = label
			continue
		}

		in, targetLabel, err := parseInstr(line)
		if err != nil {
			return nil, fmt.Errorf("isa: %s:%d: %v", name, lineNo, err)
		}
		if pending != "" {
			in.Label = pending
			pending = ""
		}
		if targetLabel != "" {
			fixups = append(fixups, fixup{len(p.Instrs), targetLabel, lineNo})
		}
		p.Instrs = append(p.Instrs, in)
	}

	for _, f := range fixups {
		t, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: %s:%d: undefined label %q", name, f.line, f.label)
		}
		if t >= len(p.Instrs) {
			return nil, fmt.Errorf("isa: %s:%d: label %q points past end", name, f.line, f.label)
		}
		p.Instrs[f.instr].Target = t
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Disassemble renders the program in the assembler syntax accepted by
// Assemble. Instructions that are branch targets are given labels.
func Disassemble(p *Program) string {
	names := map[int]string{}
	for _, in := range p.Instrs {
		if in.IsBranch() {
			if _, ok := names[in.Target]; !ok {
				names[in.Target] = fmt.Sprintf("L%d", in.Target)
			}
		}
	}
	var b strings.Builder
	for i, in := range p.Instrs {
		if lbl, ok := names[i]; ok {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		s := in.String()
		if in.IsBranch() {
			// Replace "@N" with the label name.
			s = strings.Replace(s, fmt.Sprintf("@%d", in.Target), names[in.Target], 1)
		}
		fmt.Fprintf(&b, "\t%s\n", s)
	}
	return b.String()
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, n := range opNames {
		if n != "" {
			m[n] = Op(op)
		}
	}
	return m
}()

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func parseInstr(line string) (Instr, string, error) {
	// Split off hint suffixes ("!spatial!sz3") before tokenizing.
	hints := ""
	if i := strings.Index(line, "!"); i >= 0 {
		hints = line[i:]
		line = strings.TrimSpace(line[:i])
	}
	fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
	if len(fields) == 0 {
		return Instr{}, "", fmt.Errorf("empty instruction")
	}
	op, ok := opByName[fields[0]]
	if !ok {
		return Instr{}, "", fmt.Errorf("unknown opcode %q", fields[0])
	}
	args := fields[1:]
	in := Instr{Op: op, Coeff: FixedRegion}

	reg := func(s string) (uint8, error) {
		if len(s) < 2 || s[0] != 'r' {
			return 0, fmt.Errorf("expected register, got %q", s)
		}
		n, err := strconv.Atoi(s[1:])
		if err != nil || n < 0 || n >= NumRegs {
			return 0, fmt.Errorf("bad register %q", s)
		}
		return uint8(n), nil
	}
	imm := func(s string) (int64, error) {
		n, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return n, nil
	}
	// memOperand parses "8(r1)" into displacement and base register.
	memOperand := func(s string) (int64, uint8, error) {
		open := strings.Index(s, "(")
		if open < 0 || !strings.HasSuffix(s, ")") {
			return 0, 0, fmt.Errorf("expected disp(reg), got %q", s)
		}
		d := int64(0)
		if open > 0 {
			var err error
			d, err = imm(s[:open])
			if err != nil {
				return 0, 0, err
			}
		}
		r, err := reg(s[open+1 : len(s)-1])
		return d, r, err
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d operands, got %d", op, n, len(args))
		}
		return nil
	}

	var targetLabel string
	var err error
	switch op {
	case OpNop, OpHalt:
		err = need(0)
	case OpLi:
		if err = need(2); err == nil {
			in.Rd, err = reg(args[0])
			if err == nil {
				in.Imm, err = imm(args[1])
			}
		}
	case OpMov:
		if err = need(2); err == nil {
			in.Rd, err = reg(args[0])
			if err == nil {
				in.Rs1, err = reg(args[1])
			}
		}
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSlt:
		if err = need(3); err == nil {
			in.Rd, err = reg(args[0])
			if err == nil {
				in.Rs1, err = reg(args[1])
			}
			if err == nil {
				in.Rs2, err = reg(args[2])
			}
		}
	case OpAddi, OpMuli, OpAndi, OpOri, OpXori, OpShli, OpShri, OpSlti:
		if err = need(3); err == nil {
			in.Rd, err = reg(args[0])
			if err == nil {
				in.Rs1, err = reg(args[1])
			}
			if err == nil {
				in.Imm, err = imm(args[2])
			}
		}
	case OpLd, OpLd4, OpLd1:
		if err = need(2); err == nil {
			in.Rd, err = reg(args[0])
			if err == nil {
				in.Imm, in.Rs1, err = memOperand(args[1])
			}
		}
	case OpSt, OpSt4, OpSt1:
		if err = need(2); err == nil {
			in.Rs2, err = reg(args[0])
			if err == nil {
				in.Imm, in.Rs1, err = memOperand(args[1])
			}
		}
	case OpBeq, OpBne, OpBlt, OpBge:
		if err = need(3); err == nil {
			in.Rs1, err = reg(args[0])
			if err == nil {
				in.Rs2, err = reg(args[1])
			}
			if err == nil {
				targetLabel = args[2]
				if !isIdent(targetLabel) {
					err = fmt.Errorf("bad branch target %q", targetLabel)
				}
			}
		}
	case OpJmp:
		if err = need(1); err == nil {
			targetLabel = args[0]
			if !isIdent(targetLabel) {
				err = fmt.Errorf("bad jump target %q", targetLabel)
			}
		}
	case OpSetBound:
		if err = need(1); err == nil {
			in.Rs1, err = reg(args[0])
		}
	case OpPref:
		if err = need(1); err == nil {
			in.Imm, in.Rs1, err = memOperand(args[0])
		}
	case OpPrefIndirect:
		if err = need(3); err == nil {
			in.Rs1, err = reg(args[0])
			if err == nil {
				in.Rs2, err = reg(args[1])
			}
			if err == nil {
				in.Imm, err = imm(args[2])
			}
		}
	default:
		err = fmt.Errorf("unhandled opcode %s", op)
	}
	if err != nil {
		return Instr{}, "", err
	}

	if hints != "" {
		if !in.IsLoad() {
			return Instr{}, "", fmt.Errorf("hints on non-load %s", op)
		}
		for _, h := range strings.Split(strings.TrimPrefix(hints, "!"), "!") {
			switch {
			case h == "spatial":
				in.Hint |= HintSpatial
			case h == "pointer":
				in.Hint |= HintPointer
			case h == "recursive":
				in.Hint |= HintRecursive
			case strings.HasPrefix(h, "sz"):
				n, cerr := strconv.Atoi(h[2:])
				if cerr != nil || n < 0 || n > int(FixedRegion) {
					return Instr{}, "", fmt.Errorf("bad size coefficient %q", h)
				}
				in.Coeff = uint8(n)
			default:
				return Instr{}, "", fmt.Errorf("unknown hint %q", h)
			}
		}
	}
	return in, targetLabel, nil
}
