// Package lang defines the small structured source language the workloads
// are written in and the GRP compiler analyzes. It corresponds to the C and
// Fortran 77 subset the paper's Scale compiler consumes: counted loops,
// while loops, affine array subscripts, pointer arithmetic, struct field
// access, and linked-structure walks.
//
// The language is deliberately analyzable: loops name their induction
// variables, array subscripts are explicit expressions, and pointer
// dereferences are typed, so the compiler package can run the paper's
// dependence-testing, induction-variable-recognition, and pointer-idiom
// analyses (Sections 4.1–4.5) without a parser or SSA construction in the
// way.
package lang

import "fmt"

// ---------------------------------------------------------------- types --

// Type is the type of a value or memory object.
type Type interface {
	Size() int64
	String() string
}

// IntT is a primitive integer type of the given byte width (1, 4, or 8).
type IntT struct{ Bytes int64 }

// Size implements Type.
func (t IntT) Size() int64 { return t.Bytes }

// String implements Type.
func (t IntT) String() string { return fmt.Sprintf("int%d", t.Bytes*8) }

// Convenient primitive types.
var (
	I64 = IntT{8}
	I32 = IntT{4}
	I8  = IntT{1}
)

// PtrT is a pointer to Elem.
type PtrT struct{ Elem Type }

// Size implements Type; pointers are 8-byte aligned 8-byte entities, as on
// the paper's Alpha target.
func (t PtrT) Size() int64 { return 8 }

// String implements Type.
func (t PtrT) String() string { return "*" + t.Elem.String() }

// Field is a struct member.
type Field struct {
	Name   string
	Type   Type
	Offset int64 // assigned by NewStruct
}

// StructT is a record type. Build with NewStruct so offsets are assigned.
type StructT struct {
	Name   string
	Fields []Field
	size   int64
}

// NewStruct lays out fields in order with natural alignment.
func NewStruct(name string, fields ...Field) *StructT {
	s := &StructT{Name: name}
	var off int64
	for _, f := range fields {
		al := f.Type.Size()
		if al > 8 {
			al = 8
		}
		if al < 1 {
			al = 1
		}
		off = (off + al - 1) / al * al
		f.Offset = off
		off += f.Type.Size()
		s.Fields = append(s.Fields, f)
	}
	// Round size to 8 so arrays of structs stay aligned.
	s.size = (off + 7) / 8 * 8
	if s.size == 0 {
		s.size = 8
	}
	return s
}

// Size implements Type.
func (s *StructT) Size() int64 { return s.size }

// Append adds a field after construction with natural alignment. It exists
// so self-referential structs (next *node) can be built: construct the
// struct first, then append the pointer fields that mention it.
func (s *StructT) Append(name string, t Type) {
	off := s.size
	// s.size is 8-byte rounded; all appended fields start 8-aligned.
	s.Fields = append(s.Fields, Field{Name: name, Type: t, Offset: off})
	s.size = (off + t.Size() + 7) / 8 * 8
}

// SetStructSize force-sets a struct's size; for workloads that lay fields
// out manually.
func SetStructSize(s *StructT, size int64) { s.size = size }

// String implements Type.
func (s *StructT) String() string { return "struct " + s.Name }

// FieldByName returns the named field; it panics if absent (a workload
// authoring bug).
func (s *StructT) FieldByName(name string) Field {
	for _, f := range s.Fields {
		if f.Name == name {
			return f
		}
	}
	panic(fmt.Sprintf("lang: struct %s has no field %s", s.Name, name))
}

// HasPointerField reports whether any field is a pointer (used by the
// pointer-hint analysis of paper Figure 8).
func (s *StructT) HasPointerField() bool {
	for _, f := range s.Fields {
		if _, ok := f.Type.(PtrT); ok {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------- arrays --

// Array declares a named memory object: a (possibly multi-dimensional,
// row-major) array of Elem. Heap marks objects allocated with the simulated
// malloc, which places them inside the heap range the pointer scanner
// checks; the distinction also feeds the heap-array analyses of Sections
// 4.1 and 4.5.
type Array struct {
	Name string
	Elem Type
	Dims []int64
	Heap bool
}

// Count returns the number of elements.
func (a *Array) Count() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// Bytes returns the total object size.
func (a *Array) Bytes() int64 { return a.Count() * a.Elem.Size() }

// Stride returns the element stride, in elements, of dimension d: the
// product of the dimensions to its right (row-major).
func (a *Array) Stride(d int) int64 {
	n := int64(1)
	for i := d + 1; i < len(a.Dims); i++ {
		n *= a.Dims[i]
	}
	return n
}

// ------------------------------------------------------------ expressions --

// Expr is an expression producing a 64-bit value.
type Expr interface{ expr() }

// LValue is an expression that can also be assigned to.
type LValue interface {
	Expr
	lvalue()
}

// Const is an integer literal.
type Const struct{ V int64 }

func (*Const) expr() {}

// Scalar reads a named scalar variable (a register-resident int64 or
// pointer; loop induction variables are scalars).
type Scalar struct{ Name string }

func (*Scalar) expr()   {}
func (*Scalar) lvalue() {}

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators. Comparisons yield 0/1.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Lt
	Eq
	Ne
	Ge
)

// Bin applies Op to L and R.
type Bin struct {
	Op   BinOp
	L, R Expr
}

func (*Bin) expr() {}

// Index is an array element access arr[i0][i1]... (one Idx per dimension).
// As an expression it loads the element; as an LValue it stores it.
type Index struct {
	Arr *Array
	Idx []Expr
}

func (*Index) expr()   {}
func (*Index) lvalue() {}

// PtrIndex accesses ptr[idx] where ptr is an expression yielding an
// address and Elem is the pointee element type (the C heap-array idiom of
// paper Figure 4, buf[i][j]).
type PtrIndex struct {
	Ptr  Expr
	Elem Type
	Idx  Expr
}

func (*PtrIndex) expr()   {}
func (*PtrIndex) lvalue() {}

// FieldRef accesses ptr->field where Ptr yields the address of a Struct.
type FieldRef struct {
	Ptr    Expr
	Struct *StructT
	Field  string
}

func (*FieldRef) expr()   {}
func (*FieldRef) lvalue() {}

// Deref accesses *ptr with pointee type Elem (paper Figure 5's *p).
type Deref struct {
	Ptr  Expr
	Elem Type
}

func (*Deref) expr()   {}
func (*Deref) lvalue() {}

// AddrOf yields the address of an array element without loading it; the
// compiler uses it internally (e.g. PREFI operands) and workloads use it to
// seed pointers.
type AddrOf struct {
	Arr *Array
	Idx []Expr
}

func (*AddrOf) expr() {}

// ------------------------------------------------------------- statements --

// Stmt is a statement.
type Stmt interface{ stmt() }

// For is a counted loop: for Var := Lo; Var < Hi; Var += Step { Body }.
// Lo and Hi are evaluated once, before the first iteration.
type For struct {
	Var  string
	Lo   Expr
	Hi   Expr
	Step int64
	Body []Stmt
}

func (*For) stmt() {}

// While loops while Cond is nonzero.
type While struct {
	Cond Expr
	Body []Stmt
}

func (*While) stmt() {}

// If executes Then when Cond is nonzero, else Else.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

func (*If) stmt() {}

// Assign stores Src into Dst.
type Assign struct {
	Dst LValue
	Src Expr
}

func (*Assign) stmt() {}

// ---------------------------------------------------------------- program --

// Program is one workload kernel.
type Program struct {
	Name    string
	Arrays  []*Array
	Scalars []string // every scalar variable used (declared up front)
	Body    []Stmt
}

// ArrayByName returns the named array or nil.
func (p *Program) ArrayByName(name string) *Array {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Validate checks that referenced arrays and scalars are declared and that
// Index arity matches array rank.
func (p *Program) Validate() error {
	scalars := map[string]bool{}
	for _, s := range p.Scalars {
		scalars[s] = true
	}
	arrays := map[*Array]bool{}
	for _, a := range p.Arrays {
		arrays[a] = true
	}
	var err error
	var checkExpr func(e Expr)
	var checkStmts func(ss []Stmt)
	checkExpr = func(e Expr) {
		if err != nil || e == nil {
			return
		}
		switch n := e.(type) {
		case *Const:
		case *Scalar:
			if !scalars[n.Name] {
				err = fmt.Errorf("lang: %s: undeclared scalar %q", p.Name, n.Name)
			}
		case *Bin:
			checkExpr(n.L)
			checkExpr(n.R)
		case *Index:
			if !arrays[n.Arr] {
				err = fmt.Errorf("lang: %s: undeclared array %q", p.Name, n.Arr.Name)
			} else if len(n.Idx) != len(n.Arr.Dims) {
				err = fmt.Errorf("lang: %s: array %q rank %d indexed with %d subscripts",
					p.Name, n.Arr.Name, len(n.Arr.Dims), len(n.Idx))
			}
			for _, ix := range n.Idx {
				checkExpr(ix)
			}
		case *AddrOf:
			if !arrays[n.Arr] {
				err = fmt.Errorf("lang: %s: undeclared array %q", p.Name, n.Arr.Name)
			} else if len(n.Idx) != len(n.Arr.Dims) {
				err = fmt.Errorf("lang: %s: array %q rank %d addressed with %d subscripts",
					p.Name, n.Arr.Name, len(n.Arr.Dims), len(n.Idx))
			}
			for _, ix := range n.Idx {
				checkExpr(ix)
			}
		case *PtrIndex:
			checkExpr(n.Ptr)
			checkExpr(n.Idx)
			if n.Elem == nil {
				err = fmt.Errorf("lang: %s: PtrIndex without element type", p.Name)
			}
		case *FieldRef:
			checkExpr(n.Ptr)
			if n.Struct == nil {
				err = fmt.Errorf("lang: %s: FieldRef without struct type", p.Name)
			} else {
				found := false
				for _, f := range n.Struct.Fields {
					if f.Name == n.Field {
						found = true
					}
				}
				if !found {
					err = fmt.Errorf("lang: %s: struct %s has no field %q", p.Name, n.Struct.Name, n.Field)
				}
			}
		case *Deref:
			checkExpr(n.Ptr)
			if n.Elem == nil {
				err = fmt.Errorf("lang: %s: Deref without element type", p.Name)
			}
		default:
			err = fmt.Errorf("lang: %s: unknown expression %T", p.Name, e)
		}
	}
	checkStmts = func(ss []Stmt) {
		for _, s := range ss {
			if err != nil {
				return
			}
			switch n := s.(type) {
			case *For:
				if !scalars[n.Var] {
					err = fmt.Errorf("lang: %s: undeclared loop variable %q", p.Name, n.Var)
				}
				if n.Step == 0 {
					err = fmt.Errorf("lang: %s: loop over %q with zero step", p.Name, n.Var)
				}
				checkExpr(n.Lo)
				checkExpr(n.Hi)
				checkStmts(n.Body)
			case *While:
				checkExpr(n.Cond)
				checkStmts(n.Body)
			case *If:
				checkExpr(n.Cond)
				checkStmts(n.Then)
				checkStmts(n.Else)
			case *Assign:
				checkExpr(n.Dst)
				checkExpr(n.Src)
			default:
				err = fmt.Errorf("lang: %s: unknown statement %T", p.Name, s)
			}
		}
	}
	checkStmts(p.Body)
	return err
}

// ------------------------------------------------------------ constructors --

// C returns a constant expression.
func C(v int64) *Const { return &Const{V: v} }

// S returns a scalar reference.
func S(name string) *Scalar { return &Scalar{Name: name} }

// B returns a binary expression.
func B(op BinOp, l, r Expr) *Bin { return &Bin{Op: op, L: l, R: r} }

// Ix returns an array element access.
func Ix(a *Array, idx ...Expr) *Index { return &Index{Arr: a, Idx: idx} }

// Addr returns the address of an array element.
func Addr(a *Array, idx ...Expr) *AddrOf { return &AddrOf{Arr: a, Idx: idx} }
