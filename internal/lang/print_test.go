package lang

import (
	"strings"
	"testing"
)

// TestProgramString checks the pseudo-C renderer covers every node kind
// with stable, readable output — shrunk reproducers are reported through
// it, so it must never drop a construct silently.
func TestProgramString(t *testing.T) {
	node := NewStruct("node", Field{Name: "val", Type: I64})
	node.Append("next", PtrT{Elem: node})
	arr := &Array{Name: "a", Elem: I64, Dims: []int64{8}}
	head := &Array{Name: "lh", Elem: PtrT{Elem: node}, Dims: []int64{1}, Heap: true}
	p := &Program{
		Name:    "demo",
		Arrays:  []*Array{arr, head},
		Scalars: []string{"i", "p", "s"},
		Body: []Stmt{
			&For{Var: "i", Lo: C(0), Hi: C(8), Step: 2, Body: []Stmt{
				&Assign{Dst: S("s"), Src: B(Add, S("s"), Ix(arr, S("i")))},
			}},
			&Assign{Dst: S("p"), Src: Ix(head, C(0))},
			&While{Cond: B(Ne, S("p"), C(0)), Body: []Stmt{
				&Assign{Dst: S("s"), Src: &FieldRef{Ptr: S("p"), Struct: node, Field: "val"}},
				&Assign{Dst: S("p"), Src: &FieldRef{Ptr: S("p"), Struct: node, Field: "next"}},
			}},
			&If{Cond: B(Lt, S("s"), C(10)),
				Then: []Stmt{&Assign{Dst: S("s"), Src: C(0)}},
				Else: []Stmt{&Assign{Dst: S("s"), Src: C(1)}},
			},
			&Assign{Dst: &PtrIndex{Ptr: S("p"), Elem: I64, Idx: C(3)}, Src: C(7)},
			&Assign{Dst: S("s"), Src: &Deref{Ptr: S("p"), Elem: I32}},
			&Assign{Dst: S("s"), Src: &AddrOf{Arr: arr, Idx: []Expr{C(2)}}},
		},
	}
	src := p.String()
	for _, want := range []string{
		"program demo {",
		"var a int64[8]",
		"var lh *struct node[1] // heap",
		"var i, p, s int64",
		"for i = 0; i < 8; i += 2 {",
		"s = (s + a[i])",
		"while (p != 0) {",
		"p->next",
		"if (s < 10) {",
		"} else {",
		"p[3]:int64 = 7",
		"*(p):int32",
		"&a[2]",
	} {
		if !strings.Contains(src, want) {
			t.Fatalf("rendered program missing %q:\n%s", want, src)
		}
	}
}

// TestBinOpString covers every operator.
func TestBinOpString(t *testing.T) {
	ops := map[BinOp]string{
		Add: "+", Sub: "-", Mul: "*", Div: "/", Rem: "%", And: "&", Or: "|",
		Xor: "^", Shl: "<<", Shr: ">>", Lt: "<", Eq: "==", Ne: "!=", Ge: ">=",
	}
	for op, want := range ops {
		if got := op.String(); got != want {
			t.Fatalf("op %d renders %q, want %q", int(op), got, want)
		}
	}
	if got := BinOp(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown op renders %q", got)
	}
}
