package lang

import (
	"fmt"
	"strings"
)

// String renders the operator as C-style source.
func (op BinOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Rem:
		return "%"
	case And:
		return "&"
	case Or:
		return "|"
	case Xor:
		return "^"
	case Shl:
		return "<<"
	case Shr:
		return ">>"
	case Lt:
		return "<"
	case Eq:
		return "=="
	case Ne:
		return "!="
	case Ge:
		return ">="
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// String renders the program as readable pseudo-C: declarations first,
// then the body. It exists so conformance failures and shrunk reproducers
// can be reported as something a human can re-author as a regression test.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s {\n", p.Name)
	for _, a := range p.Arrays {
		dims := ""
		for _, d := range a.Dims {
			dims += fmt.Sprintf("[%d]", d)
		}
		heap := ""
		if a.Heap {
			heap = " // heap"
		}
		fmt.Fprintf(&b, "  var %s %s%s%s\n", a.Name, a.Elem, dims, heap)
	}
	if len(p.Scalars) > 0 {
		fmt.Fprintf(&b, "  var %s int64\n", strings.Join(p.Scalars, ", "))
	}
	writeStmts(&b, p.Body, 1)
	b.WriteString("}\n")
	return b.String()
}

func writeStmts(b *strings.Builder, ss []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range ss {
		switch n := s.(type) {
		case *For:
			fmt.Fprintf(b, "%sfor %s = %s; %s < %s; %s += %d {\n",
				ind, n.Var, exprString(n.Lo), n.Var, exprString(n.Hi), n.Var, n.Step)
			writeStmts(b, n.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *While:
			fmt.Fprintf(b, "%swhile %s {\n", ind, exprString(n.Cond))
			writeStmts(b, n.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *If:
			fmt.Fprintf(b, "%sif %s {\n", ind, exprString(n.Cond))
			writeStmts(b, n.Then, depth+1)
			if len(n.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", ind)
				writeStmts(b, n.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", ind)
		case *Assign:
			fmt.Fprintf(b, "%s%s = %s\n", ind, exprString(n.Dst), exprString(n.Src))
		default:
			fmt.Fprintf(b, "%s/* unknown statement %T */\n", ind, s)
		}
	}
}

func exprString(e Expr) string {
	switch n := e.(type) {
	case nil:
		return "<nil>"
	case *Const:
		return fmt.Sprint(n.V)
	case *Scalar:
		return n.Name
	case *Bin:
		return fmt.Sprintf("(%s %s %s)", exprString(n.L), n.Op, exprString(n.R))
	case *Index:
		var b strings.Builder
		b.WriteString(n.Arr.Name)
		for _, ix := range n.Idx {
			fmt.Fprintf(&b, "[%s]", exprString(ix))
		}
		return b.String()
	case *PtrIndex:
		return fmt.Sprintf("%s[%s]:%s", exprString(n.Ptr), exprString(n.Idx), n.Elem)
	case *FieldRef:
		return fmt.Sprintf("%s->%s", exprString(n.Ptr), n.Field)
	case *Deref:
		return fmt.Sprintf("*(%s):%s", exprString(n.Ptr), n.Elem)
	case *AddrOf:
		var b strings.Builder
		fmt.Fprintf(&b, "&%s", n.Arr.Name)
		for _, ix := range n.Idx {
			fmt.Fprintf(&b, "[%s]", exprString(ix))
		}
		return b.String()
	}
	return fmt.Sprintf("<%T>", e)
}
