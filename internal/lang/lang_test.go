package lang

import "testing"

func TestTypeSizes(t *testing.T) {
	if I64.Size() != 8 || I32.Size() != 4 || I8.Size() != 1 {
		t.Error("primitive sizes wrong")
	}
	if (PtrT{Elem: I8}).Size() != 8 {
		t.Error("pointers are 8 bytes")
	}
	if I64.String() != "int64" || (PtrT{Elem: I64}).String() != "*int64" {
		t.Error("type strings wrong")
	}
}

func TestStructLayout(t *testing.T) {
	s := NewStruct("s",
		Field{Name: "a", Type: I8},
		Field{Name: "b", Type: I32},
		Field{Name: "c", Type: I64},
	)
	if s.FieldByName("a").Offset != 0 {
		t.Error("a offset")
	}
	if s.FieldByName("b").Offset != 4 {
		t.Errorf("b offset = %d, want 4 (natural alignment)", s.FieldByName("b").Offset)
	}
	if s.FieldByName("c").Offset != 8 {
		t.Errorf("c offset = %d, want 8", s.FieldByName("c").Offset)
	}
	if s.Size() != 16 {
		t.Errorf("size = %d, want 16 (rounded to 8)", s.Size())
	}
	if s.String() != "struct s" {
		t.Error("struct string")
	}
}

func TestStructAppendSelfReference(t *testing.T) {
	s := NewStruct("node", Field{Name: "v", Type: I64})
	s.Append("next", PtrT{Elem: s})
	if s.FieldByName("next").Offset != 8 {
		t.Errorf("next offset = %d", s.FieldByName("next").Offset)
	}
	if s.Size() != 16 {
		t.Errorf("size = %d", s.Size())
	}
	if !s.HasPointerField() {
		t.Error("HasPointerField should be true")
	}
	plain := NewStruct("plain", Field{Name: "v", Type: I64})
	if plain.HasPointerField() {
		t.Error("plain struct has no pointer field")
	}
}

func TestFieldByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FieldByName of missing field should panic")
		}
	}()
	NewStruct("s").FieldByName("missing")
}

func TestSetStructSize(t *testing.T) {
	s := NewStruct("s", Field{Name: "v", Type: I64})
	SetStructSize(s, 40)
	if s.Size() != 40 {
		t.Error("SetStructSize")
	}
}

func TestArrayGeometry(t *testing.T) {
	a := &Array{Name: "a", Elem: I64, Dims: []int64{4, 5, 6}}
	if a.Count() != 120 {
		t.Errorf("Count = %d", a.Count())
	}
	if a.Bytes() != 960 {
		t.Errorf("Bytes = %d", a.Bytes())
	}
	if a.Stride(0) != 30 || a.Stride(1) != 6 || a.Stride(2) != 1 {
		t.Errorf("strides = %d,%d,%d", a.Stride(0), a.Stride(1), a.Stride(2))
	}
}

func validProgram() *Program {
	a := &Array{Name: "a", Elem: I64, Dims: []int64{8}}
	return &Program{
		Name: "v", Arrays: []*Array{a}, Scalars: []string{"i", "s"},
		Body: []Stmt{&For{Var: "i", Lo: C(0), Hi: C(8), Step: 1,
			Body: []Stmt{&Assign{Dst: S("s"), Src: Ix(a, S("i"))}}}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validProgram().Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	a := &Array{Name: "a", Elem: I64, Dims: []int64{8}}
	other := &Array{Name: "other", Elem: I64, Dims: []int64{8}}
	st := NewStruct("st", Field{Name: "f", Type: I64})
	cases := map[string]*Program{
		"undeclared scalar": {Name: "p", Body: []Stmt{
			&Assign{Dst: S("x"), Src: C(1)}}},
		"undeclared array": {Name: "p", Scalars: []string{"s"}, Body: []Stmt{
			&Assign{Dst: S("s"), Src: Ix(other, C(0))}}},
		"wrong rank": {Name: "p", Arrays: []*Array{a}, Scalars: []string{"s"}, Body: []Stmt{
			&Assign{Dst: S("s"), Src: Ix(a, C(0), C(1))}}},
		"zero step": {Name: "p", Arrays: []*Array{a}, Scalars: []string{"i"}, Body: []Stmt{
			&For{Var: "i", Lo: C(0), Hi: C(8), Step: 0}}},
		"undeclared loop var": {Name: "p", Body: []Stmt{
			&For{Var: "i", Lo: C(0), Hi: C(8), Step: 1}}},
		"missing field": {Name: "p", Scalars: []string{"p1", "s"}, Body: []Stmt{
			&Assign{Dst: S("s"), Src: &FieldRef{Ptr: S("p1"), Struct: st, Field: "nope"}}}},
		"nil elem deref": {Name: "p", Scalars: []string{"p1", "s"}, Body: []Stmt{
			&Assign{Dst: S("s"), Src: &Deref{Ptr: S("p1")}}}},
		"nil elem ptrindex": {Name: "p", Scalars: []string{"p1", "s"}, Body: []Stmt{
			&Assign{Dst: S("s"), Src: &PtrIndex{Ptr: S("p1"), Idx: C(0)}}}},
		"bad addrof rank": {Name: "p", Arrays: []*Array{a}, Scalars: []string{"s"}, Body: []Stmt{
			&Assign{Dst: S("s"), Src: Addr(a, C(0), C(1))}}},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestValidateNestedStatements(t *testing.T) {
	// Errors inside While/If bodies are found too.
	p := &Program{Name: "p", Scalars: []string{"c"}, Body: []Stmt{
		&While{Cond: S("c"), Body: []Stmt{
			&If{Cond: S("c"), Then: []Stmt{
				&Assign{Dst: S("nope"), Src: C(1)},
			}},
		}},
	}}
	if err := p.Validate(); err == nil {
		t.Error("nested undeclared scalar should fail validation")
	}
}

func TestArrayByName(t *testing.T) {
	p := validProgram()
	if p.ArrayByName("a") == nil {
		t.Error("ArrayByName should find a")
	}
	if p.ArrayByName("zz") != nil {
		t.Error("ArrayByName should return nil for unknown")
	}
}
