package trace

import (
	"io"

	"grp/internal/isa"
)

// Timing is the memory-system interface the recorder wraps; it matches
// cpu.MemoryTiming structurally (declared here to avoid a dependency
// cycle).
type Timing interface {
	Load(pc, addr uint64, hint isa.Hint, coeff uint8, now uint64) uint64
	Store(pc, addr uint64, now uint64) uint64
	SetBound(v uint64)
	Indirect(indexAddr, base uint64, shift uint)
	SoftwarePrefetch(addr, now uint64)
}

// Recorder is Timing middleware: it forwards every call to the inner
// memory system and writes a trace event for it. Wrap a *sim.MemSystem
// with it and hand it to the core.
type Recorder struct {
	Inner Timing
	W     *Writer
}

// NewRecorder wraps inner, writing events to w.
func NewRecorder(inner Timing, w *Writer) *Recorder {
	return &Recorder{Inner: inner, W: w}
}

// Load implements Timing.
func (r *Recorder) Load(pc, addr uint64, hint isa.Hint, coeff uint8, now uint64) uint64 {
	r.W.Write(Event{Kind: KindLoad, PC: pc, Addr: addr, Hint: hint, Coeff: coeff})
	return r.Inner.Load(pc, addr, hint, coeff, now)
}

// Store implements Timing.
func (r *Recorder) Store(pc, addr uint64, now uint64) uint64 {
	r.W.Write(Event{Kind: KindStore, PC: pc, Addr: addr})
	return r.Inner.Store(pc, addr, now)
}

// SetBound implements Timing.
func (r *Recorder) SetBound(v uint64) {
	r.W.Write(Event{Kind: KindSetBound, Addr: v})
	r.Inner.SetBound(v)
}

// Indirect implements Timing.
func (r *Recorder) Indirect(indexAddr, base uint64, shift uint) {
	r.W.Write(Event{Kind: KindIndirect, Addr: indexAddr, Aux: base, Shift: uint8(shift)})
	r.Inner.Indirect(indexAddr, base, shift)
}

// SoftwarePrefetch implements Timing.
func (r *Recorder) SoftwarePrefetch(addr, now uint64) {
	r.W.Write(Event{Kind: KindSWPrefetch, Addr: addr})
	r.Inner.SoftwarePrefetch(addr, now)
}

// ReplayResult summarizes a trace-driven replay.
type ReplayResult struct {
	Events uint64
	Cycles uint64
}

// Replay feeds a recorded stream into a memory system trace-driven: each
// reference issues `gap` cycles after the previous one completed or
// began, modeling a fixed demand rate instead of a simulated core. It
// returns the total elapsed cycles. This reproduces relative prefetcher
// behavior at a fraction of execution-driven cost; absolute timing
// obviously differs (see package comment).
func Replay(r *Reader, ms Timing, gap uint64) (ReplayResult, error) {
	var res ReplayResult
	now := uint64(1)
	for {
		e, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return res, err
		}
		res.Events++
		switch e.Kind {
		case KindLoad:
			done := ms.Load(e.PC, e.Addr, e.Hint, e.Coeff, now)
			now = done + gap
		case KindStore:
			ms.Store(e.PC, e.Addr, now)
			now += gap
		case KindSetBound:
			ms.SetBound(e.Addr)
		case KindIndirect:
			ms.Indirect(e.Addr, e.Aux, uint(e.Shift))
		case KindSWPrefetch:
			ms.SoftwarePrefetch(e.Addr, now)
			now += gap
		}
	}
	res.Cycles = now
	return res, nil
}
