package trace

import "fmt"

// Flow events causally link a prefetch back to the hint-planting demand
// miss that opened its region, using the Chrome trace-event flow triplet:
// "s" (start) anchored on the hint span, "t" (step) on the prefetch span
// at issue, and "f" (finish, bp "e") at the outcome. Perfetto draws the
// triplet as arrows, so a trace shows *why* each prefetch was issued and
// what became of it — the visual twin of the attribution ledger.

// flowRegionBytes mirrors attrib.RegionBytes (kept local so the trace
// package stays dependency-free).
const flowRegionBytes = 4096

// HintEmit records the hint-planting demand miss for block's region as a
// unit span on the "hint" track and arms the region: the next prefetch
// issued into it starts a flow from this event. Nil-safe.
func (t *Timeline) HintEmit(pc, block, now uint64) {
	if t == nil {
		return
	}
	region := block &^ uint64(flowRegionBytes-1)
	idx := t.add(traceEvent{
		Name: "hint", Cat: "pf", Ph: "X",
		Ts: now, Dur: 1, Tid: t.tid("hint"),
		Args: map[string]any{"pc": pc, "region": fmt.Sprintf("%#x", region)},
	})
	if idx >= 0 {
		t.hintMark[region] = now
	}
}

// startFlow opens the s→t flow for a prefetch issued at cycle start, when
// its region was armed by a HintEmit. Called from PrefetchIssue.
func (t *Timeline) startFlow(block, start uint64) {
	ts, ok := t.hintMark[block&^uint64(flowRegionBytes-1)]
	if !ok {
		return
	}
	id := fmt.Sprintf("pf%d", t.flowSeq)
	t.flowSeq++
	t.add(traceEvent{
		Name: "pf flow", Cat: "pf", Ph: "s",
		Ts: ts, Tid: t.tid("hint"), Id: id,
	})
	t.add(traceEvent{
		Name: "pf flow", Cat: "pf", Ph: "t",
		Ts: start, Tid: t.tid("prefetch"), Id: id,
	})
	t.flowOpen[block] = id
}

// PrefetchOutcomeAt upgrades the prefetch span's outcome exactly like
// PrefetchOutcome and, when the block carries an open flow, finishes it
// at cycle now with the outcome as the finish event's name. Nil-safe.
func (t *Timeline) PrefetchOutcomeAt(block uint64, outcome string, now uint64) {
	if t == nil {
		return
	}
	t.PrefetchOutcome(block, outcome)
	id, ok := t.flowOpen[block]
	if !ok {
		return
	}
	delete(t.flowOpen, block)
	t.add(traceEvent{
		Name: outcome, Cat: "pf", Ph: "f", Bp: "e",
		Ts: now, Tid: t.tid("prefetch"), Id: id,
	})
}
