package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildTimeline constructs a small deterministic timeline exercising every
// event kind and outcome transition.
func buildTimeline() *Timeline {
	tl := NewTimeline()
	tl.DemandMiss(0x40, 0x1000, 100, 300)
	tl.PrefetchIssue(0x2000, 120, 340, false)
	tl.PrefetchIssue(0x3000, 150, 400, false)
	tl.PrefetchIssue(0x4000, 160, 500, true)
	tl.BankBusy(0, 3, 100, 164, false, "demand")
	tl.BankBusy(1, 0, 120, 144, true, "prefetch")
	tl.PrefetchOutcome(0x2000, "useful")
	tl.PrefetchOutcome(0x3000, "late")
	tl.PrefetchOutcome(0x3000, "useful")  // no downgrade/overwrite
	tl.PrefetchOutcome(0x9999, "useful")  // unknown block: ignored
	tl.DemandMiss(0x44, 0x5000, 350, 350) // zero-length span clamps to dur 1
	return tl
}

func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTimeline().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("perfetto output diverged from golden file:\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

// traceDoc mirrors the trace-event JSON object format for validation.
type traceDoc struct {
	TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	DisplayUnit string                       `json:"displayTimeUnit"`
}

// validateTraceEvents checks the trace-event schema constraints Perfetto
// relies on: every event has a ph from the supported set, a numeric ts,
// and complete ("X") events carry a positive dur.
func validateTraceEvents(t *testing.T, raw []byte) traceDoc {
	t.Helper()
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no traceEvents")
	}
	for i, ev := range doc.TraceEvents {
		var ph string
		if err := json.Unmarshal(ev["ph"], &ph); err != nil {
			t.Fatalf("event %d: bad ph: %v", i, err)
		}
		switch ph {
		case "X":
			var ts, dur float64
			if err := json.Unmarshal(ev["ts"], &ts); err != nil {
				t.Fatalf("event %d: X event without numeric ts: %v", i, err)
			}
			if err := json.Unmarshal(ev["dur"], &dur); err != nil {
				t.Fatalf("event %d: X event without numeric dur: %v", i, err)
			}
			if ts < 0 || dur <= 0 {
				t.Errorf("event %d: ts=%g dur=%g out of range", i, ts, dur)
			}
			var name string
			if err := json.Unmarshal(ev["name"], &name); err != nil || name == "" {
				t.Errorf("event %d: missing name", i)
			}
		case "M":
			// Metadata events need a name and args.name.
			if _, ok := ev["args"]; !ok {
				t.Errorf("event %d: metadata without args", i)
			}
		case "s", "t", "f":
			// Flow events need a shared id and a numeric ts.
			var ts float64
			if err := json.Unmarshal(ev["ts"], &ts); err != nil {
				t.Fatalf("event %d: flow event without numeric ts: %v", i, err)
			}
			var id string
			if err := json.Unmarshal(ev["id"], &id); err != nil || id == "" {
				t.Errorf("event %d: flow event without id", i)
			}
		default:
			t.Errorf("event %d: unexpected ph %q", i, ph)
		}
	}
	return doc
}

func TestPerfettoSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := buildTimeline().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc := validateTraceEvents(t, buf.Bytes())

	// Outcome transitions: 0x2000 useful, 0x3000 late (not overwritten),
	// 0x4000 unused.
	outcomes := map[string]int{}
	for _, ev := range doc.TraceEvents {
		var args struct {
			Outcome string `json:"outcome"`
		}
		if raw, ok := ev["args"]; ok {
			_ = json.Unmarshal(raw, &args)
			if args.Outcome != "" {
				outcomes[args.Outcome]++
			}
		}
	}
	if outcomes["useful"] != 1 || outcomes["late"] != 1 || outcomes["unused"] != 1 {
		t.Errorf("outcome distribution = %v, want useful:1 late:1 unused:1", outcomes)
	}
}

func TestTimelineLimit(t *testing.T) {
	tl := NewTimeline()
	tl.SetLimit(2)
	tl.DemandMiss(1, 0x100, 10, 20)
	tl.DemandMiss(2, 0x200, 20, 30)
	tl.DemandMiss(3, 0x300, 30, 40)
	tl.PrefetchIssue(0x400, 40, 50, false)
	if tl.Len() != 2 {
		t.Errorf("Len = %d, want 2 (capped)", tl.Len())
	}
	if tl.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", tl.Dropped())
	}
	// Outcome for a dropped prefetch span must be a no-op, not a panic.
	tl.PrefetchOutcome(0x400, "useful")
}

func TestTimelineNilSafe(t *testing.T) {
	var tl *Timeline
	tl.DemandMiss(0, 0, 0, 1)
	tl.PrefetchIssue(0, 0, 1, false)
	tl.PrefetchOutcome(0, "useful")
	tl.BankBusy(0, 0, 0, 1, false, "demand")
}
