// The round-trip tests live in an external test package: they drive the
// recorder through the real memory hierarchy, and internal/sim itself
// imports this package for the telemetry timeline.
package trace_test

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"grp/internal/compiler"
	"grp/internal/cpu"
	"grp/internal/isa"
	"grp/internal/mem"
	"grp/internal/prefetch"
	"grp/internal/sim"
	. "grp/internal/trace"
	"grp/internal/workloads"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	events := []Event{
		{Kind: KindLoad, PC: 12, Addr: 0x1000, Hint: isa.HintSpatial, Coeff: 3},
		{Kind: KindStore, PC: 13, Addr: 0x2000},
		{Kind: KindSetBound, Addr: 64},
		{Kind: KindIndirect, Addr: 0x3000, Aux: 0x4000, Shift: 3},
		{Kind: KindSWPrefetch, Addr: 0x5000},
	}
	for _, e := range events {
		w.Write(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(events)) {
		t.Errorf("Count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range events {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != want {
			t.Errorf("event %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(kindSeed uint8, pc, addr, aux uint64, hint uint8, coeff, shift uint8) bool {
		e := Event{
			Kind: Kind(kindSeed%5) + KindLoad,
			PC:   pc, Addr: addr, Aux: aux,
			Hint: isa.Hint(hint), Coeff: coeff, Shift: shift,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		w.Write(e)
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Read()
		return err == nil && got == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBadHeaderRejected(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("bad magic should be rejected")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream should be rejected")
	}
}

func TestTruncatedEvent(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Event{Kind: KindLoad})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-5]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Error("truncated event should error")
	}
}

// TestRecordAndReplay records a real workload's reference stream through
// the recorder, then replays it trace-driven and checks the prefetcher
// sees the same hinted miss stream (region allocations within a few
// percent: the replay's timing differs, so fills and thus filtered
// candidates shift slightly).
func TestRecordAndReplay(t *testing.T) {
	spec, err := workloads.ByName("wupwise")
	if err != nil {
		t.Fatal(err)
	}
	built := spec.Build(workloads.Test)
	m := mem.New()
	prog, lay, _, err := compiler.CompileWorkload(built.Prog, m, compiler.PolicyDefault)
	if err != nil {
		t.Fatal(err)
	}
	built.Init(m, lay)

	// Execution-driven run with recording.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	msExec, err := sim.NewMemSystem(sim.DefaultMemConfig(), prefetch.NewGRP(prefetch.DefaultGRPConfig(), m))
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(msExec, w)
	cfg := cpu.Default()
	cfg.MaxInstrs = built.MaxInstrs
	core, err := cpu.New(cfg, m, rec)
	if err != nil {
		t.Fatal(err)
	}
	cres, err := core.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	msExec.Drain()
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() == 0 {
		t.Fatal("no events recorded")
	}
	if w.Count() < cres.Loads+cres.Stores {
		t.Errorf("recorded %d events < %d memory ops", w.Count(), cres.Loads+cres.Stores)
	}

	// Trace-driven replay into a fresh hierarchy with the same engine.
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	engReplay := prefetch.NewGRP(prefetch.DefaultGRPConfig(), m)
	msReplay, err := sim.NewMemSystem(sim.DefaultMemConfig(), engReplay)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(r, msReplay, 1)
	if err != nil {
		t.Fatal(err)
	}
	msReplay.Drain()
	if res.Events != w.Count() {
		t.Errorf("replayed %d of %d events", res.Events, w.Count())
	}
	if res.Cycles == 0 {
		t.Error("replay produced no timing")
	}
	exec, rep := msExec.Engine.Stats(), engReplay.Stats()
	if rep.RegionsAllocated == 0 {
		t.Fatal("replayed engine allocated no regions")
	}
	ratio := float64(rep.RegionsAllocated) / float64(exec.RegionsAllocated)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("replay region allocations diverge: exec=%d replay=%d",
			exec.RegionsAllocated, rep.RegionsAllocated)
	}
}
