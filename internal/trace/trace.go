// Package trace records and replays memory-reference traces.
//
// The recorder wraps the memory system's timing interface, so an
// execution-driven run (the repository's default methodology, matching the
// paper's sim-outorder setup) can emit the exact reference stream it
// produced: loads and stores with their program counters and compiler
// hints, plus the SETBOUND and PREFI events GRP consumes. The replayer
// feeds a recorded stream back into a fresh memory hierarchy at a
// configurable issue rate — the classic trace-driven methodology, useful
// for fast prefetcher experiments where re-simulating the core adds
// nothing.
//
// The binary format is little-endian, versioned, and written with
// encoding/binary; streams are framed per event so readers can stop at any
// point.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"grp/internal/isa"
)

// Kind tags one trace event.
type Kind uint8

// Event kinds.
const (
	KindLoad Kind = iota + 1
	KindStore
	KindSetBound
	KindIndirect
	KindSWPrefetch
)

// Event is one recorded reference or engine event.
type Event struct {
	Kind  Kind
	PC    uint64
	Addr  uint64 // address; SETBOUND stores the bound here
	Aux   uint64 // Indirect: base address; otherwise 0
	Hint  isa.Hint
	Coeff uint8
	Shift uint8 // Indirect: scale shift
}

const magic = uint32(0x47525054) // "GRPT"

// Writer serializes events.
type Writer struct {
	w     *bufio.Writer
	count uint64
	err   error
}

// NewWriter writes a trace header to w and returns the writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[4:], 1) // version
	if _, err := bw.Write(hdr); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one event.
func (tw *Writer) Write(e Event) {
	if tw.err != nil {
		return
	}
	var buf [28]byte
	buf[0] = byte(e.Kind)
	buf[1] = byte(e.Hint)
	buf[2] = e.Coeff
	buf[3] = e.Shift
	binary.LittleEndian.PutUint64(buf[4:], e.PC)
	binary.LittleEndian.PutUint64(buf[12:], e.Addr)
	binary.LittleEndian.PutUint64(buf[20:], e.Aux)
	if _, err := tw.w.Write(buf[:]); err != nil {
		tw.err = err
		return
	}
	tw.count++
}

// Count returns how many events were written.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush flushes buffered events and reports any deferred write error.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.w.Flush()
}

// Reader deserializes events.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[:]) != magic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != 1 {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{r: br}, nil
}

// Read returns the next event; io.EOF at end of stream.
func (tr *Reader) Read() (Event, error) {
	var buf [28]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Event{}, fmt.Errorf("trace: truncated event")
		}
		return Event{}, err
	}
	e := Event{
		Kind:  Kind(buf[0]),
		Hint:  isa.Hint(buf[1]),
		Coeff: buf[2],
		Shift: buf[3],
		PC:    binary.LittleEndian.Uint64(buf[4:]),
		Addr:  binary.LittleEndian.Uint64(buf[12:]),
		Aux:   binary.LittleEndian.Uint64(buf[20:]),
	}
	if e.Kind < KindLoad || e.Kind > KindSWPrefetch {
		return Event{}, fmt.Errorf("trace: unknown event kind %d", e.Kind)
	}
	return e, nil
}
