package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// buildFlowTimeline exercises the flow-event triplet: two hinted regions,
// three prefetches (one unhinted, so flowless), and two finished flows.
func buildFlowTimeline() *Timeline {
	tl := NewTimeline()
	tl.DemandMiss(0x40, 0x1000, 100, 300)
	tl.HintEmit(0x40, 0x1000, 100)
	tl.PrefetchIssue(0x1040, 120, 340, false) // flow pf0 from the hint
	tl.PrefetchIssue(0x1080, 130, 360, false) // flow pf1, same region
	tl.PrefetchIssue(0x9000, 150, 400, false) // unhinted region: no flow
	tl.PrefetchOutcomeAt(0x1040, "useful", 500)
	tl.PrefetchOutcomeAt(0x1080, "late", 200)
	tl.PrefetchOutcomeAt(0x9000, "useful", 600) // upgrades span, no flow
	tl.PrefetchOutcomeAt(0x1040, "useful", 700) // flow already finished
	return tl
}

func TestPerfettoFlowGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFlowTimeline().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "perfetto_flow_golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("flow output diverged from golden file:\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

// TestPerfettoFlowRoundTrip decodes the exported JSON and checks the flow
// triplets reconstruct: every id appears as exactly one s, one t, and one
// f event, in nondecreasing ts order, with the s anchored inside a hint
// span on the hint track.
func TestPerfettoFlowRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFlowTimeline().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc := validateTraceEvents(t, buf.Bytes())

	type flowEv struct {
		ph  string
		ts  float64
		tid int
	}
	flows := map[string][]flowEv{}
	hintTid := -1
	var hintSpans [][2]float64
	for _, ev := range doc.TraceEvents {
		var ph, name, id string
		var ts float64
		var tid int
		_ = json.Unmarshal(ev["ph"], &ph)
		_ = json.Unmarshal(ev["name"], &name)
		_ = json.Unmarshal(ev["ts"], &ts)
		_ = json.Unmarshal(ev["tid"], &tid)
		if raw, ok := ev["id"]; ok {
			_ = json.Unmarshal(raw, &id)
		}
		switch {
		case ph == "M" && name == "thread_name":
			var args struct {
				Name string `json:"name"`
			}
			_ = json.Unmarshal(ev["args"], &args)
			if args.Name == "hint" {
				hintTid = tid
			}
		case ph == "X" && name == "hint":
			var dur float64
			_ = json.Unmarshal(ev["dur"], &dur)
			hintSpans = append(hintSpans, [2]float64{ts, ts + dur})
		case ph == "s" || ph == "t" || ph == "f":
			flows[id] = append(flows[id], flowEv{ph, ts, tid})
		}
	}

	if len(flows) != 2 {
		t.Fatalf("got %d flow ids, want 2 (the unhinted prefetch must not flow)", len(flows))
	}
	for id, evs := range flows {
		if len(evs) != 3 || evs[0].ph != "s" || evs[1].ph != "t" || evs[2].ph != "f" {
			t.Fatalf("flow %s: got %+v, want exactly s,t,f", id, evs)
		}
		if evs[0].ts > evs[1].ts {
			t.Errorf("flow %s: start ts %g after step ts %g", id, evs[0].ts, evs[1].ts)
		}
		if evs[0].tid != hintTid {
			t.Errorf("flow %s: start on tid %d, want hint track %d", id, evs[0].tid, hintTid)
		}
		anchored := false
		for _, sp := range hintSpans {
			if evs[0].ts >= sp[0] && evs[0].ts < sp[1] {
				anchored = true
			}
		}
		if !anchored {
			t.Errorf("flow %s: start ts %g not inside any hint span", id, evs[0].ts)
		}
	}
}

func TestFlowNilSafe(t *testing.T) {
	var tl *Timeline
	tl.HintEmit(1, 2, 3)
	tl.PrefetchOutcomeAt(2, "useful", 4)
}

// TestFlowLimit: flows respect the event cap without corrupting state.
func TestFlowLimit(t *testing.T) {
	tl := NewTimeline()
	tl.SetLimit(1)
	tl.HintEmit(0x40, 0x1000, 10) // takes the only slot
	tl.PrefetchIssue(0x1040, 20, 30, false)
	tl.PrefetchOutcomeAt(0x1040, "useful", 40)
	if tl.Len() != 1 {
		t.Errorf("Len = %d, want 1 (capped)", tl.Len())
	}
}
