package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Timeline collects simulator events and writes them as Chrome
// trace-event JSON (the "JSON Array Format" with a traceEvents wrapper),
// which loads directly in ui.perfetto.dev or chrome://tracing.
//
// One simulated CPU cycle is mapped to one microsecond of trace time
// (ts/dur are expressed in microseconds by the format), so the viewer's
// time axis reads directly in cycles.
//
// Tracks:
//   - "L2 demand miss": one duration span per demand miss, issue → fill.
//   - "prefetch": one span per hardware/software prefetch, issue → fill,
//     with an args.outcome of "useful" (demand-referenced after fill),
//     "late" (demand merged while still in flight), or "unused".
//   - "dram chN bankM": bank busy spans, with row hit/miss and request
//     kind in args.
//
// The timeline caps its event count (SetLimit) so long runs degrade by
// dropping the tail rather than exhausting memory; Dropped reports how
// many events were discarded.
type Timeline struct {
	events  []traceEvent
	tids    map[string]int
	pfOpen  map[uint64]int // block -> index of its latest prefetch span
	limit   int
	dropped uint64

	// Flow-event state (see flow.go): the cycle of the last hint-planting
	// demand miss per 4 KB region, and the open flow id per prefetched
	// block.
	hintMark map[uint64]uint64
	flowOpen map[uint64]string
	flowSeq  uint64
}

// DefaultEventLimit bounds in-memory timeline events (~100 B each).
const DefaultEventLimit = 1 << 20

// traceEvent is one Chrome trace-event record. Only the fields the format
// requires for complete ("X"), metadata ("M"), and flow ("s"/"t"/"f")
// events are emitted.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Id   string         `json:"id,omitempty"` // flow id, shared s→t→f
	Bp   string         `json:"bp,omitempty"` // binding point ("e": enclosing)
	Args map[string]any `json:"args,omitempty"`
}

// NewTimeline returns an empty timeline with the default event limit.
func NewTimeline() *Timeline {
	return &Timeline{
		tids:     map[string]int{},
		pfOpen:   map[uint64]int{},
		hintMark: map[uint64]uint64{},
		flowOpen: map[uint64]string{},
		limit:    DefaultEventLimit,
	}
}

// SetLimit overrides the event cap (minimum 1).
func (t *Timeline) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	t.limit = n
}

// Len returns the number of recorded events (excluding thread metadata).
func (t *Timeline) Len() int { return len(t.events) }

// Dropped returns how many events were discarded after the cap was hit.
func (t *Timeline) Dropped() uint64 { return t.dropped }

// tid interns a track name, assigning thread ids in first-use order; the
// matching thread_name metadata events are emitted by WriteJSON.
func (t *Timeline) tid(track string) int {
	if id, ok := t.tids[track]; ok {
		return id
	}
	id := len(t.tids) + 1
	t.tids[track] = id
	return id
}

func (t *Timeline) add(e traceEvent) int {
	if len(t.events) >= t.limit {
		t.dropped++
		return -1
	}
	t.events = append(t.events, e)
	return len(t.events) - 1
}

// DemandMiss records a demand L2 miss serviced from cycle start to done.
func (t *Timeline) DemandMiss(pc, block, start, done uint64) {
	if t == nil {
		return
	}
	t.add(traceEvent{
		Name: "demand miss", Cat: "mem", Ph: "X",
		Ts: start, Dur: span(start, done), Tid: t.tid("L2 demand miss"),
		Args: map[string]any{"pc": pc, "block": fmt.Sprintf("%#x", block)},
	})
}

// PrefetchIssue records a prefetch lifetime from issue to fill. The span's
// outcome starts as "unused" and is upgraded by PrefetchOutcome when the
// block is demand-referenced.
func (t *Timeline) PrefetchIssue(block, start, done uint64, software bool) {
	if t == nil {
		return
	}
	name := "prefetch"
	if software {
		name = "sw prefetch"
	}
	idx := t.add(traceEvent{
		Name: name, Cat: "pf", Ph: "X",
		Ts: start, Dur: span(start, done), Tid: t.tid("prefetch"),
		Args: map[string]any{"block": fmt.Sprintf("%#x", block), "outcome": "unused"},
	})
	if idx >= 0 {
		t.pfOpen[block] = idx
	}
	t.startFlow(block, start)
}

// PrefetchOutcome marks the most recent prefetch span for block with its
// outcome ("useful" or "late"). Outcomes only upgrade: a span already
// marked is not downgraded back to a weaker state by later events.
func (t *Timeline) PrefetchOutcome(block uint64, outcome string) {
	if t == nil {
		return
	}
	idx, ok := t.pfOpen[block]
	if !ok {
		return
	}
	args := t.events[idx].Args
	if args["outcome"] == "unused" {
		args["outcome"] = outcome
	}
}

// BankBusy records a DRAM bank occupancy span on channel ch, bank bk.
func (t *Timeline) BankBusy(ch, bk int, start, busyUntil uint64, rowHit bool, kind string) {
	if t == nil {
		return
	}
	row := "miss"
	if rowHit {
		row = "hit"
	}
	t.add(traceEvent{
		Name: kind, Cat: "dram", Ph: "X",
		Ts: start, Dur: span(start, busyUntil),
		Tid:  t.tid(fmt.Sprintf("dram ch%d bank%d", ch, bk)),
		Args: map[string]any{"row": row},
	})
}

// span guards against a nonpositive duration, which some viewers reject.
func span(start, end uint64) uint64 {
	if end <= start {
		return 1
	}
	return end - start
}

// WriteJSON emits the timeline in Chrome trace-event JSON object format.
func (t *Timeline) WriteJSON(w io.Writer) error {
	// Metadata events give the tracks human-readable names, sorted by tid
	// so output is deterministic.
	type track struct {
		name string
		id   int
	}
	tracks := make([]track, 0, len(t.tids))
	for name, id := range t.tids {
		tracks = append(tracks, track{name, id})
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i].id < tracks[j].id })

	all := make([]traceEvent, 0, len(tracks)+1+len(t.events))
	all = append(all, traceEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "grpsim"},
	})
	for _, tr := range tracks {
		all = append(all, traceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tr.id,
			Args: map[string]any{"name": tr.name},
		})
	}
	all = append(all, t.events...)

	doc := struct {
		TraceEvents []traceEvent   `json:"traceEvents"`
		DisplayUnit string         `json:"displayTimeUnit"`
		OtherData   map[string]any `json:"otherData,omitempty"`
	}{
		TraceEvents: all,
		DisplayUnit: "ms",
		OtherData: map[string]any{
			"time_unit": "1 us = 1 CPU cycle",
			"dropped":   t.dropped,
		},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
