package campaign

import (
	"context"
	"errors"
	"fmt"
	"time"

	"grp/internal/core"
)

// RetryPolicy bounds the engine's response to transient cell failures:
// injected panics, per-cell deadline overruns, and other faults that can
// plausibly clear on a re-run. Deterministic simulation errors (a bad
// bench name, an invalid configuration) are never retried.
type RetryPolicy struct {
	// MaxAttempts is the total tries per cell, first run included;
	// <= 0 uses the default (3), 1 disables retry.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 10ms);
	// each further retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
}

const (
	defaultMaxAttempts = 3
	defaultBaseDelay   = 10 * time.Millisecond
	defaultMaxDelay    = 2 * time.Second
)

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = defaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = defaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = defaultMaxDelay
	}
	return p
}

// backoff returns the capped exponential delay before retry number
// attempt (1-based) of cell idx. The jitter that de-synchronizes
// retrying workers is deterministic — a hash of (cell, attempt) — so a
// failing sweep replays identically run to run.
func (p RetryPolicy) backoff(idx, attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// splitmix64-style bit mix onto [0.5d, 1.5d).
	z := uint64(idx)*0x9e3779b97f4a7c15 + uint64(attempt)*0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0x94d049bb133111eb
	z ^= z >> 27
	frac := float64(z%1024) / 1024 // [0, 1)
	return time.Duration((0.5 + frac) * float64(d))
}

// PanicError is the structured report of a cell that panicked: the cell
// identity, the content-address key when known, and the goroutine stack
// at the point of the panic. The worker pool converts the panic into
// this error instead of letting one cell take down the whole sweep.
type PanicError struct {
	Bench   string
	Scheme  string
	Index   int    // position in the submitted job list
	Key     string // cell content address ("" when caching is off)
	Attempt int    // 0-based attempt that panicked
	Value   string // the panic value
	Stack   string // goroutine stack captured inside recover()
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("cell %s/%s (index %d, key %.12s, attempt %d) panicked: %s\n%s",
		e.Bench, e.Scheme, e.Index, e.Key, e.Attempt, e.Value, e.Stack)
}

// CellError wraps a cell's final failure with its identity and how many
// attempts were spent, so -keep-going reports and aborting sweeps carry
// the same structured context.
type CellError struct {
	Index    int
	Bench    string
	Scheme   core.Scheme
	Attempts int
	Err      error
}

// Error implements error.
func (e *CellError) Error() string {
	return fmt.Sprintf("campaign: cell %s/%s (index %d, %d attempts): %v",
		e.Bench, e.Scheme, e.Index, e.Attempts, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// CellFailure is the serializable record of one failed cell in a
// -keep-going sweep, merged into the artifact instead of aborting it.
type CellFailure struct {
	Index    int    `json:"index"`
	Bench    string `json:"bench"`
	Scheme   string `json:"scheme"`
	Err      string `json:"error"`
	Panic    bool   `json:"panic,omitempty"`
	Attempts int    `json:"attempts"`
}

// retryableError reports whether a cell failure is plausibly transient:
// an isolated panic or a per-cell deadline overrun. Run-context
// cancellation and deterministic configuration errors are not.
func retryableError(err error) bool {
	var pe *PanicError
	if errors.As(err, &pe) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// sleepCtx sleeps for d or until the context is done, whichever comes
// first, returning the context's error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
