package campaign

import (
	"encoding/json"
	"fmt"
	"io"

	"grp/internal/core"
	"grp/internal/stats"
)

// The artifact writer is the single rendering path for a finished sweep:
// grpsweep (local and -remote) and the grpserve artifact endpoint all
// reduce through it, which is what makes a served artifact byte-identical
// to the CLI's for the same grid — there is only one set of bytes to
// produce.

// CellOut is one row of a sweep artifact. Error is set (and the metric
// fields zero) for a cell that failed for good under keep-going.
type CellOut struct {
	Bench      string  `json:"bench"`
	Scheme     string  `json:"scheme"`
	Overlay    string  `json:"overlay"`
	Instrs     uint64  `json:"instrs"`
	Cycles     uint64  `json:"cycles"`
	IPC        float64 `json:"ipc"`
	L2MissPct  float64 `json:"l2_miss_pct"`
	Traffic    uint64  `json:"traffic_bytes"`
	ArchDigest string  `json:"arch_digest"`
	Error      string  `json:"error,omitempty"`
}

// Artifact is a finished sweep ready to render: the grid that defines
// canonical row order, its positional results, and any per-cell failures.
type Artifact struct {
	Spec    string
	Factor  string
	Policy  string
	Grid    *Grid
	Results []*core.Result
	// Failures are keep-going cell failures; Results[i] is nil for each.
	Failures []CellFailure
}

// NewCellOut builds one artifact row from grid cell i and its result;
// a nil result leaves the metric fields zero (pair it with an Error for
// failed cells).
func NewCellOut(g *Grid, i int, r *core.Result) CellOut {
	c := CellOut{
		Bench:   g.Cells[i].Bench,
		Scheme:  g.Cells[i].Scheme.String(),
		Overlay: g.Cells[i].OverlayString(),
	}
	if r != nil {
		c.Instrs = r.CPU.Instrs
		c.Cycles = r.CPU.Cycles
		c.IPC = r.IPC()
		c.L2MissPct = r.L2.MissRate()
		c.Traffic = r.TrafficBytes
		c.ArchDigest = fmt.Sprintf("%016x", r.ArchDigest)
	}
	return c
}

// Cells flattens the artifact into its rows in canonical grid order.
func (a *Artifact) Cells() []CellOut {
	failed := map[int]*CellFailure{}
	for i := range a.Failures {
		f := &a.Failures[i]
		failed[f.Index] = f
	}
	cells := make([]CellOut, len(a.Results))
	for i, r := range a.Results {
		if f, ok := failed[i]; ok || r == nil {
			cells[i] = NewCellOut(a.Grid, i, nil)
			if ok {
				cells[i].Error = f.Err
			}
			continue
		}
		cells[i] = NewCellOut(a.Grid, i, r)
	}
	return cells
}

// ArtifactFormats lists the accepted format names.
var ArtifactFormats = []string{"ascii", "json", "csv"}

// ValidArtifactFormat reports whether format names a supported rendering.
func ValidArtifactFormat(format string) bool {
	return format == "ascii" || format == "json" || format == "csv"
}

// WriteArtifact renders the artifact in the given format ("ascii",
// "json", or "csv"). Output is deterministic: the same grid and results
// produce the same bytes whoever renders them.
func WriteArtifact(w io.Writer, format string, a *Artifact) error {
	cells := a.Cells()
	switch format {
	case "json":
		env := struct {
			Spec   string    `json:"spec"`
			Factor string    `json:"factor"`
			Policy string    `json:"policy"`
			Failed int       `json:"failed,omitempty"`
			Cells  []CellOut `json:"cells"`
		}{a.Spec, a.Factor, a.Policy, len(a.Failures), cells}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(env)
	case "ascii", "csv":
		t := &stats.Table{
			Title:   fmt.Sprintf("campaign: %s", a.Spec),
			Headers: []string{"benchmark", "scheme", "overlay", "instrs", "cycles", "IPC", "L2miss%", "traffic", "archdigest"},
		}
		for _, c := range cells {
			if c.Error != "" {
				t.Add(c.Bench, c.Scheme, c.Overlay, "-", "-", "-", "-", "-", "FAILED")
				continue
			}
			t.Add(c.Bench, c.Scheme, c.Overlay, fmt.Sprint(c.Instrs), fmt.Sprint(c.Cycles),
				stats.Fmt(c.IPC, 3), stats.Fmt(c.L2MissPct, 1), fmt.Sprint(c.Traffic), c.ArchDigest)
		}
		if format == "csv" {
			return t.WriteCSV(w)
		}
		_, err := fmt.Fprintln(w, t)
		return err
	default:
		return fmt.Errorf("campaign: unknown artifact format %q (want ascii, json, or csv)", format)
	}
}

// DryRun is the expansion summary of a sweep spec without simulating it:
// the grid's shape plus an estimate, probed from the store, of how many
// cells a submission would hit in the cache. Clients use it to size
// submissions before committing a server's worker pool to them.
type DryRun struct {
	Cells   int    `json:"cells"`
	Benches int    `json:"benches"`
	Schemes int    `json:"schemes"`
	Configs int    `json:"configs"`
	Axes    []Axis `json:"axes,omitempty"`
	// Cached is how many cells the store already holds (0 when the
	// engine has no probing backend); HitRate is Cached/Cells.
	Cached  int     `json:"cached"`
	HitRate float64 `json:"est_hit_rate"`
}

// DryRunGrid sizes a grid against the engine's store. Keying compiles
// each distinct workload once (memoized), which is orders of magnitude
// cheaper than simulating any single cell.
func (e *Engine) DryRunGrid(g *Grid) (*DryRun, error) {
	d := &DryRun{
		Cells:   len(g.Cells),
		Benches: len(g.Benches),
		Schemes: len(g.Schemes),
		Axes:    g.Axes,
	}
	if n := len(g.Benches) * len(g.Schemes); n > 0 {
		d.Configs = len(g.Cells) / n
	}
	p, ok := e.store.(Prober)
	if !ok || e.store == nil {
		return d, nil
	}
	keys, err := e.Keys(g.Jobs())
	if err != nil {
		return nil, err
	}
	for _, k := range keys {
		if p.Contains(k) {
			d.Cached++
		}
	}
	if d.Cells > 0 {
		d.HitRate = float64(d.Cached) / float64(d.Cells)
	}
	return d, nil
}

// String renders the dry run as the human summary grpsweep prints.
func (d *DryRun) String() string {
	s := fmt.Sprintf("dry run: %d cells (%d benches × %d schemes × %d configs)\n",
		d.Cells, d.Benches, d.Schemes, d.Configs)
	for _, ax := range d.Axes {
		s += fmt.Sprintf("axis %s: %v\n", ax.Key, ax.Values)
	}
	s += fmt.Sprintf("cached: %d of %d (estimated hit rate %.0f%%)\n",
		d.Cached, d.Cells, 100*d.HitRate)
	return s
}
