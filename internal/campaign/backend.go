package campaign

import (
	"os"
	"sync"

	"grp/internal/core"
)

// Backend is the pluggable result store behind the campaign engine. The
// engine only ever asks three things of its store — look a cell up by
// content address, persist a freshly simulated one, and report traffic —
// so a backend can be the local .grpcache directory (Store), a sharded
// in-memory map (MemBackend), or tomorrow a remote shared service,
// without the engine or its callers changing.
//
// Implementations must be safe for concurrent use by the worker pool,
// and Get must return results that are safe to share: the engine hands
// the same *core.Result to every subscriber of a deduped cell, so a
// backend must never mutate a result it has handed out.
type Backend interface {
	// Get returns the result stored under the key, or (nil, false).
	Get(CellKey) (*core.Result, bool)
	// Put records a simulated result under its key. Implementations
	// should degrade rather than fail: the result is already correct, so
	// a persistence error is worth at most a warning.
	Put(CellKey, *core.Result) error
	// Stats snapshots the backend's traffic counters.
	Stats() CacheStats
}

// Prober is implemented by backends that can answer "would Get hit?"
// without paying for a full decode. Dry-run grid sizing uses it to
// estimate a submission's cache hit rate.
type Prober interface {
	Contains(CellKey) bool
}

// Store implements Backend (the local-directory reference backend).
var _ Backend = (*Store)(nil)
var _ Prober = (*Store)(nil)

// Contains reports whether a Get for the key would plausibly hit,
// without decoding the cell or touching the traffic counters. A present
// but corrupt file counts as a hit here — Contains is an estimator for
// dry runs, not a promise.
func (s *Store) Contains(k CellKey) bool {
	s.mu.Lock()
	_, ok := s.byKey[k.Digest]
	s.mu.Unlock()
	if ok {
		return true
	}
	if s.disabled.Load() {
		return false
	}
	_, err := os.Stat(s.path(k))
	return err == nil
}

// memShards is the fixed shard count of a MemBackend. 64 shards keep
// lock contention negligible at any plausible worker-pool width while
// costing a few kilobytes of empty maps.
const memShards = 64

// MemBackend is a sharded in-memory Backend: results live in one of 64
// maps selected by the first byte of the cell digest, so concurrent
// workers (and concurrent sweeps on a server) rarely contend on the same
// lock. Unlike Store's LRU layer it never evicts — it is the backend of
// choice for a service that wants its whole working set resident — and
// it persists nothing, so a restart starts cold.
type MemBackend struct {
	shards [memShards]memShard
}

type memShard struct {
	mu    sync.RWMutex
	cells map[string]*core.Result
	hits  uint64
	miss  uint64
	puts  uint64
}

var _ Backend = (*MemBackend)(nil)
var _ Prober = (*MemBackend)(nil)

// NewMemBackend builds an empty sharded in-memory backend.
func NewMemBackend() *MemBackend {
	b := &MemBackend{}
	for i := range b.shards {
		b.shards[i].cells = map[string]*core.Result{}
	}
	return b
}

// shard selects the shard for a digest. Digests are hex SHA-256, so the
// first two characters are uniformly distributed; fold them into [0,64).
func (b *MemBackend) shard(digest string) *memShard {
	var h uint
	for i := 0; i < 2 && i < len(digest); i++ {
		h = h<<4 ^ uint(digest[i])
	}
	return &b.shards[h%memShards]
}

// Get implements Backend.
func (b *MemBackend) Get(k CellKey) (*core.Result, bool) {
	sh := b.shard(k.Digest)
	sh.mu.Lock()
	r, ok := sh.cells[k.Digest]
	if ok {
		sh.hits++
	} else {
		sh.miss++
	}
	sh.mu.Unlock()
	return r, ok
}

// Put implements Backend. It never fails.
func (b *MemBackend) Put(k CellKey, r *core.Result) error {
	sh := b.shard(k.Digest)
	sh.mu.Lock()
	sh.cells[k.Digest] = r
	sh.puts++
	sh.mu.Unlock()
	return nil
}

// Contains implements Prober without touching the hit/miss counters.
func (b *MemBackend) Contains(k CellKey) bool {
	sh := b.shard(k.Digest)
	sh.mu.RLock()
	_, ok := sh.cells[k.Digest]
	sh.mu.RUnlock()
	return ok
}

// Len returns the number of resident cells across all shards.
func (b *MemBackend) Len() int {
	n := 0
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		n += len(sh.cells)
		sh.mu.RUnlock()
	}
	return n
}

// Stats implements Backend, aggregating across shards. MemHits equals
// Hits: every hit is a memory hit.
func (b *MemBackend) Stats() CacheStats {
	var st CacheStats
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		st.Hits += sh.hits
		st.Misses += sh.miss
		st.Stores += sh.puts
		sh.mu.RUnlock()
	}
	st.MemHits = st.Hits
	return st
}
