package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"grp/internal/core"
	"grp/internal/sim"
	"grp/internal/workloads"
)

// testBenches is a small but diverse grid: a dense-spatial kernel, a
// pointer-chaser, and an indirect workload.
var testBenches = []string{"wupwise", "mcf", "bzip2"}

// testSchemes covers everything Table 1 and Figure 12 consume.
var testSchemes = []core.Scheme{
	core.NoPrefetch, core.PerfectL2, core.StridePF, core.SRP, core.GRPFix, core.GRPVar,
}

func testOpt() core.Options { return core.Options{Factor: workloads.Test} }

// suiteFingerprint renders the tables every driver family consumes plus
// the per-cell ArchDigests, so two suites can be compared byte-for-byte.
func suiteFingerprint(t *testing.T, s *core.Suite) string {
	t.Helper()
	var b strings.Builder
	_, t1, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(t1.String())
	f12, err := s.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(f12.String())
	t3, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	b.WriteString(t3.String())
	for _, bench := range testBenches {
		for _, sc := range testSchemes {
			r := s.Get(bench, sc)
			if r == nil {
				t.Fatalf("missing cell %s/%s", bench, sc)
			}
			fmtDigest(&b, bench, sc, r.ArchDigest)
		}
	}
	return b.String()
}

func fmtDigest(b *strings.Builder, bench string, sc core.Scheme, d uint64) {
	b.WriteString(bench)
	b.WriteByte('/')
	b.WriteString(sc.String())
	b.WriteByte('=')
	const hex = "0123456789abcdef"
	for i := 60; i >= 0; i -= 4 {
		b.WriteByte(hex[(d>>uint(i))&0xf])
	}
	b.WriteByte('\n')
}

// TestParallelMatchesSerial is the determinism contract: the campaign
// engine at 1, 4, and 16 workers produces stats tables and ArchDigests
// byte-identical to the serial core.RunSuite path.
func TestParallelMatchesSerial(t *testing.T) {
	serial, err := core.RunSuite(testBenches, testSchemes, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	want := suiteFingerprint(t, serial)
	for _, jobs := range []int{1, 4, 16} {
		s, err := RunSuite(testBenches, testSchemes, testOpt(), Config{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if got := suiteFingerprint(t, s); got != want {
			t.Errorf("jobs=%d: parallel suite differs from serial:\n got:\n%s\nwant:\n%s", jobs, got, want)
		}
	}
}

// TestCacheWarmIdentical runs the same campaign cold and then warm from a
// fresh engine: the warm run must be 100% cache hits, simulate nothing,
// and return byte-identical cells.
func TestCacheWarmIdentical(t *testing.T) {
	dir := t.TempDir()
	cells := len(testBenches) * len(testSchemes)

	cold := New(Config{Jobs: 4, Cache: true, CacheDir: dir})
	s1, err := cold.RunSuite(context.Background(), testBenches, testSchemes, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if cs := cold.CacheStats(); cs.Hits != 0 || cs.Stores != uint64(cells) {
		t.Fatalf("cold run: want 0 hits and %d stores, got %+v", cells, cs)
	}

	warm := New(Config{Jobs: 4, Cache: true, CacheDir: dir})
	s2, err := warm.RunSuite(context.Background(), testBenches, testSchemes, testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if cs := warm.CacheStats(); cs.Hits != uint64(cells) || cs.Misses != 0 {
		t.Fatalf("warm run: want %d hits and 0 misses, got %+v", cells, cs)
	}

	if f1, f2 := suiteFingerprint(t, s1), suiteFingerprint(t, s2); f1 != f2 {
		t.Errorf("warm suite differs from cold:\n cold:\n%s\nwarm:\n%s", f1, f2)
	}
	// Byte-identical down to the serialized result, not just the tables.
	for _, bench := range testBenches {
		for _, sc := range testSchemes {
			b1, err := json.Marshal(s1.Get(bench, sc))
			if err != nil {
				t.Fatal(err)
			}
			b2, err := json.Marshal(s2.Get(bench, sc))
			if err != nil {
				t.Fatal(err)
			}
			if string(b1) != string(b2) {
				t.Errorf("%s/%s: cached cell differs from cold run", bench, sc)
			}
		}
	}
}

// TestCacheInvalidation checks the fine-grained dirtiness story: an
// option edit re-simulates every cell, while a single scheme-version bump
// re-simulates only that scheme's cells.
func TestCacheInvalidation(t *testing.T) {
	dir := t.TempDir()
	benches := []string{"wupwise", "mcf"}
	schemes := []core.Scheme{core.SRP, core.GRPVar}

	e1 := New(Config{Jobs: 2, Cache: true, CacheDir: dir})
	if _, err := e1.RunSuite(context.Background(), benches, schemes, testOpt()); err != nil {
		t.Fatal(err)
	}

	// A changed knob is a different content address: all cells miss.
	opt := testOpt()
	opt.RecursionDepth = 2
	e2 := New(Config{Jobs: 2, Cache: true, CacheDir: dir})
	if _, err := e2.RunSuite(context.Background(), benches, schemes, opt); err != nil {
		t.Fatal(err)
	}
	if cs := e2.CacheStats(); cs.Hits != 0 || cs.Misses != 4 {
		t.Fatalf("depth edit: want 4 misses, got %+v", cs)
	}

	// Bumping one scheme's version dirties only that scheme's cells.
	old := schemeVersions[core.SRP]
	schemeVersions[core.SRP] = old + 1
	defer func() { schemeVersions[core.SRP] = old }()
	e3 := New(Config{Jobs: 2, Cache: true, CacheDir: dir})
	if _, err := e3.RunSuite(context.Background(), benches, schemes, testOpt()); err != nil {
		t.Fatal(err)
	}
	if cs := e3.CacheStats(); cs.Hits != 2 || cs.Misses != 2 {
		t.Fatalf("SRP version bump: want 2 hits (grp/var) and 2 misses (srp), got %+v", cs)
	}
}

// TestCacheCorruptFileIsMiss ensures a truncated or mismatched cache file
// degrades to a re-simulation, never a bad result.
func TestCacheCorruptFileIsMiss(t *testing.T) {
	dir := t.TempDir()
	benches := []string{"wupwise"}
	schemes := []core.Scheme{core.NoPrefetch}
	e1 := New(Config{Cache: true, CacheDir: dir})
	if _, err := e1.RunSuite(context.Background(), benches, schemes, testOpt()); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want 1 cache file, got %v (%v)", files, err)
	}
	if err := os.WriteFile(files[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	e2 := New(Config{Cache: true, CacheDir: dir})
	if _, err := e2.RunSuite(context.Background(), benches, schemes, testOpt()); err != nil {
		t.Fatal(err)
	}
	if cs := e2.CacheStats(); cs.Hits != 0 || cs.Misses != 1 {
		t.Fatalf("corrupt file: want a miss, got %+v", cs)
	}
}

// TestKeyCanonicalization: a nil Mem must hash identically to an explicit
// default config, and every knob must move the digest.
func TestKeyCanonicalization(t *testing.T) {
	base := testOpt()
	k1 := cellKey("mcf", core.GRPVar, base, 42)

	withDefault := base
	cfg := sim.DefaultMemConfig()
	withDefault.Mem = &cfg
	if k2 := cellKey("mcf", core.GRPVar, withDefault, 42); k2.Digest != k1.Digest {
		t.Error("explicit default MemConfig hashes differently from nil")
	}

	distinct := map[string]core.Options{}
	o := base
	o.RecursionDepth = 3
	distinct["depth"] = o
	o = base
	o.OpenPageFirst = true
	distinct["openpage"] = o
	o = base
	o.Metrics = true
	distinct["metrics"] = o
	o = base
	mem2 := sim.DefaultMemConfig()
	mem2.L2.SizeBytes = 512 << 10
	o.Mem = &mem2
	distinct["l2.size"] = o

	seen := map[string]string{k1.Digest: "base"}
	for name, opt := range distinct {
		k := cellKey("mcf", core.GRPVar, opt, 42)
		if prev, dup := seen[k.Digest]; dup {
			t.Errorf("option %s collides with %s", name, prev)
		}
		seen[k.Digest] = name
	}
	if k := cellKey("mcf", core.SRP, base, 42); seen[k.Digest] != "" {
		t.Error("scheme does not move the digest")
	}
	if k := cellKey("mcf", core.GRPVar, base, 43); seen[k.Digest] != "" {
		t.Error("program hash does not move the digest")
	}
}

// TestProgramHash pins the hash to compiled content: stable across calls,
// different across benches, policies, and factors.
func TestProgramHash(t *testing.T) {
	h1, err := programHash("mcf", workloads.Test, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := programHash("mcf", workloads.Test, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("program hash is not deterministic")
	}
	if h3, _ := programHash("art", workloads.Test, 0, false); h3 == h1 {
		t.Error("different benches share a program hash")
	}
	if h4, _ := programHash("mcf", workloads.Small, 0, false); h4 == h1 {
		t.Error("different factors share a program hash")
	}
}

// TestSpecParse exercises the sweep grammar.
func TestSpecParse(t *testing.T) {
	g, err := ParseSpec("schemes=base,srp,grp/var × kernels=mcf,art × l2.size=512K,1M", testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 2 * 2; len(g.Cells) != want {
		t.Fatalf("want %d cells, got %d", want, len(g.Cells))
	}
	// Canonical order: overlays slowest, then bench, then scheme.
	first := g.Cells[0]
	if first.Bench != "mcf" || first.Scheme != core.NoPrefetch || first.OverlayString() != "l2.size=512K" {
		t.Errorf("unexpected first cell %+v", first)
	}
	if first.Opt.Mem == nil || first.Opt.Mem.L2.SizeBytes != 512<<10 {
		t.Error("overlay did not resolve into options")
	}
	last := g.Cells[len(g.Cells)-1]
	if last.Bench != "art" || last.Scheme != core.GRPVar || last.OverlayString() != "l2.size=1M" {
		t.Errorf("unexpected last cell %+v", last)
	}

	// Aliases, "x" separators, and all-expansion.
	g2, err := ParseSpec("schemes=NoPF,GRPVar x kernels=all", testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(g2.Cells) != 2*len(workloads.Names()) {
		t.Errorf("kernels=all expanded to %d cells", len(g2.Cells))
	}
	if g2.Schemes[0] != core.NoPrefetch || g2.Schemes[1] != core.GRPVar {
		t.Errorf("aliases resolved to %v", g2.Schemes)
	}

	for _, bad := range []string{
		"schemes=warp",              // unknown scheme
		"kernels=nosuch",            // unknown bench
		"l2.size=banana",            // unparsable size
		"frobnicate=1",              // unknown axis
		"schemes",                   // not key=value
		"depth=4096 × schemes=base", // out of range
		"corun=nosuch",              // unknown co-runner
		"corun=art+nosuch",          // unknown core-2 co-runner
		"corun=+",                   // empty co-runner list
	} {
		if _, err := ParseSpec(bad, testOpt()); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// TestSpecCoRunAxis: the corun axis lands in Options.CoRun ('+'-joined
// for 3+ cores, "none" = solo) and corun=all expands to the full
// co-runner column, so kernels=all × corun=all is the co-run matrix.
func TestSpecCoRunAxis(t *testing.T) {
	g, err := ParseSpec("schemes=grp/var × kernels=mcf × corun=none,art,art+equake", testOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cells) != 3 {
		t.Fatalf("want 3 cells, got %d", len(g.Cells))
	}
	if g.Cells[0].Opt.CoRun != nil {
		t.Errorf("corun=none cell has CoRun %v", g.Cells[0].Opt.CoRun)
	}
	if got := g.Cells[1].Opt.CoRun; len(got) != 1 || got[0] != "art" {
		t.Errorf("corun=art cell has CoRun %v", got)
	}
	if got := g.Cells[2].Opt.CoRun; len(got) != 2 || got[0] != "art" || got[1] != "equake" {
		t.Errorf("corun=art+equake cell has CoRun %v", got)
	}

	all, err := ParseSpec("schemes=grp/var × kernels=all × corun=all", testOpt())
	if err != nil {
		t.Fatal(err)
	}
	n := len(workloads.Names())
	if len(all.Cells) != n*n {
		t.Fatalf("co-run matrix expanded to %d cells, want %d", len(all.Cells), n*n)
	}
}

// TestOverlayDoesNotAliasBase: two cells overlaying Mem must never share
// the base's (or each other's) MemConfig.
func TestOverlayDoesNotAliasBase(t *testing.T) {
	base := testOpt()
	cfg := sim.DefaultMemConfig()
	base.Mem = &cfg
	g, err := ParseSpec("schemes=base × kernels=mcf × l2.size=512K,2M", base)
	if err != nil {
		t.Fatal(err)
	}
	if g.Cells[0].Opt.Mem == g.Cells[1].Opt.Mem || g.Cells[0].Opt.Mem == base.Mem {
		t.Fatal("grid cells alias a shared MemConfig")
	}
	if base.Mem.L2.SizeBytes != cfg.L2.SizeBytes {
		t.Error("expansion mutated the caller's MemConfig")
	}
}

// TestParallelFor covers the pool: full coverage, bounded concurrency,
// and first-error propagation.
func TestParallelFor(t *testing.T) {
	const n = 100
	var ran [n]int32
	var active, peak int32
	err := ParallelFor(context.Background(), n, 4, func(i int) error {
		a := atomic.AddInt32(&active, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if a <= p || atomic.CompareAndSwapInt32(&peak, p, a) {
				break
			}
		}
		atomic.AddInt32(&ran[i], 1)
		atomic.AddInt32(&active, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range ran {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
	if peak > 4 {
		t.Errorf("concurrency peaked at %d with jobs=4", peak)
	}

	sentinel := errors.New("boom")
	var after int32
	err = ParallelFor(context.Background(), n, 4, func(i int) error {
		if i == 10 {
			return sentinel
		}
		if i > 50 {
			atomic.AddInt32(&after, 1)
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel error, got %v", err)
	}
}

// TestLRUEviction keeps the memory layer bounded while the disk layer
// still serves evicted cells.
func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir, 2)
	r := &core.Result{Bench: "wupwise", Scheme: core.NoPrefetch}
	keys := make([]CellKey, 3)
	for i := range keys {
		keys[i] = CellKey{Bench: "wupwise", Scheme: core.NoPrefetch,
			Digest: strings.Repeat("0", 63) + string(rune('a'+i))}
		if err := s.Put(keys[i], r); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.lru.Len(); got != 2 {
		t.Fatalf("LRU holds %d entries with cap 2", got)
	}
	// keys[0] was evicted from memory but must still hit from disk.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("evicted entry lost from disk layer")
	}
	st := s.Stats()
	if st.MemHits != 0 || st.Hits != 1 {
		t.Errorf("want 1 disk hit, got %+v", st)
	}
}

// TestRunSuiteErrors propagates a bad bench name out of the engine.
func TestRunSuiteErrors(t *testing.T) {
	if _, err := RunSuite([]string{"nosuch"}, testSchemes, testOpt(), Config{Jobs: 4}); err == nil {
		t.Fatal("want error for unknown benchmark")
	}
}

// TestProgressMonotonic: the progress callback sees every completion
// exactly once, serialized and monotonically.
func TestProgressMonotonic(t *testing.T) {
	var mu sync.Mutex
	var calls []int
	cfg := Config{Jobs: 4, Progress: func(done, total, hits int) {
		mu.Lock()
		calls = append(calls, done)
		mu.Unlock()
		if total != 4 {
			t.Errorf("total = %d", total)
		}
	}}
	if _, err := RunSuite([]string{"wupwise", "mcf"}, []core.Scheme{core.NoPrefetch, core.StridePF}, testOpt(), cfg); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 4 {
		t.Fatalf("progress called %d times for 4 cells", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress not monotonic: %v", calls)
		}
	}
}

// TestParallelForLowestIndexError: when several cells fail, the reported
// error must be the lowest-index one regardless of worker scheduling. A
// slow failure at index 10 races a fast one at index 55; the slow one
// must win every time.
func TestParallelForLowestIndexError(t *testing.T) {
	errSlow := errors.New("slow failure at 10")
	errFast := errors.New("fast failure at 55")
	for round := 0; round < 20; round++ {
		err := ParallelFor(context.Background(), 100, 8, func(i int) error {
			switch i {
			case 10:
				time.Sleep(2 * time.Millisecond)
				return errSlow
			case 55:
				return errFast
			}
			return nil
		})
		if !errors.Is(err, errSlow) {
			t.Fatalf("round %d: want the index-10 error, got %v", round, err)
		}
	}
}

// TestParallelForContextCancel: a cancelled context stops new work and is
// returned when no cell itself erred.
func TestParallelForContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	err := ParallelFor(ctx, 1000, 4, func(i int) error {
		if ran.Add(1) == 8 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("cancellation did not stop new work (%d cells ran)", n)
	}
}

// TestRunContextCancel cancels an engine run mid-sweep: Run must return
// the cancellation, not a partial result set.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	cfg := Config{Jobs: 2, Progress: func(d, total, hits int) {
		if done.Add(1) == 2 {
			cancel()
		}
	}}
	eng := New(cfg)
	var jobs []Job
	for i := 0; i < 12; i++ {
		jobs = append(jobs, Job{Bench: "wupwise", Scheme: core.NoPrefetch, Opt: testOpt()})
	}
	_, err := eng.Run(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestCellTimeoutRetries: a cell whose every attempt overruns its
// deadline must surface a DeadlineExceeded-wrapped CellError after
// exhausting the retry budget.
func TestCellTimeoutRetries(t *testing.T) {
	eng := New(Config{
		Jobs:        1,
		CellTimeout: 1 * time.Nanosecond, // every attempt overruns
		Retry:       RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond},
	})
	_, err := eng.Run(context.Background(), []Job{{Bench: "mcf", Scheme: core.GRPVar, Opt: testOpt()}})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.Attempts != 2 {
		t.Fatalf("want CellError with 2 attempts, got %v", err)
	}
	if st := eng.CacheStats(); st.Retries != 1 {
		t.Fatalf("want 1 recorded retry, got %+v", st)
	}
}
