package campaign

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"grp/internal/core"
	"grp/internal/workloads"
)

func testJob(bench string) Job {
	return Job{Bench: bench, Scheme: core.GRPVar, Opt: core.Options{Factor: workloads.Test}}
}

// TestMemBackendRoundTrip: the sharded in-memory backend stores and
// returns results by key, keeps shards independent, and counts traffic.
func TestMemBackendRoundTrip(t *testing.T) {
	m := NewMemBackend()
	keys := make([]CellKey, 100)
	for i := range keys {
		keys[i] = CellKey{Digest: fmt.Sprintf("%02x-digest-%d", i%256, i), Bench: "mcf", Scheme: core.GRPVar}
	}
	for i, k := range keys {
		if _, ok := m.Get(k); ok {
			t.Fatalf("key %d hit before Put", i)
		}
		if err := m.Put(k, &core.Result{TrafficBytes: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		r, ok := m.Get(k)
		if !ok {
			t.Fatalf("key %d missing after Put", i)
		}
		if r.TrafficBytes != uint64(i) {
			t.Fatalf("key %d returned wrong result: traffic %d", i, r.TrafficBytes)
		}
		if !m.Contains(k) {
			t.Fatalf("Contains(%d) = false for a stored key", i)
		}
	}
	if m.Len() != len(keys) {
		t.Fatalf("Len() = %d, want %d", m.Len(), len(keys))
	}
	st := m.Stats()
	if st.Hits != uint64(len(keys)) || st.Misses != uint64(len(keys)) || st.Stores != uint64(len(keys)) {
		t.Fatalf("stats = %+v, want %d hits/misses/stores", st, len(keys))
	}
	if st.MemHits != st.Hits {
		t.Fatalf("MemHits = %d, want every hit (%d) to be a memory hit", st.MemHits, st.Hits)
	}
}

// TestMemBackendConcurrent hammers one backend from many goroutines
// (run under -race in CI).
func TestMemBackendConcurrent(t *testing.T) {
	m := NewMemBackend()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := CellKey{Digest: fmt.Sprintf("%02x-%d", (w*31+i)%256, i%50)}
				m.Put(k, &core.Result{})
				m.Get(k)
				m.Contains(k)
			}
		}(w)
	}
	wg.Wait()
	if m.Len() == 0 {
		t.Fatal("backend empty after concurrent writes")
	}
}

// TestFlightGroupCollapses: calls that arrive while a leader's fn is in
// flight run fn once and all share the result. (Singleflight dedupes
// in-flight work only — a caller arriving after completion leads its own
// flight; the engine's cache covers that window.)
func TestFlightGroupCollapses(t *testing.T) {
	g := newFlightGroup()
	var runs, shared int32
	var mu sync.Mutex
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup

	// The leader enters first and blocks inside fn until released, so
	// every follower is guaranteed to find it in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, _, err := g.do(context.Background(), "k", func() (*core.Result, error) {
			close(leaderIn)
			<-release
			mu.Lock()
			runs++
			mu.Unlock()
			return &core.Result{TrafficBytes: 7}, nil
		})
		if err != nil || r.TrafficBytes != 7 {
			t.Errorf("leader got %v, %v", r, err)
		}
	}()
	<-leaderIn

	const followers = 15
	var entered sync.WaitGroup
	for i := 0; i < followers; i++ {
		wg.Add(1)
		entered.Add(1)
		go func() {
			defer wg.Done()
			entered.Done()
			r, sh, err := g.do(context.Background(), "k", func() (*core.Result, error) {
				mu.Lock()
				runs++
				mu.Unlock()
				return &core.Result{TrafficBytes: 7}, nil
			})
			if err != nil || r.TrafficBytes != 7 {
				t.Errorf("follower got %v, %v", r, err)
			}
			if sh {
				mu.Lock()
				shared++
				mu.Unlock()
			}
		}()
	}
	entered.Wait()
	time.Sleep(20 * time.Millisecond) // let followers reach the wait inside do
	close(release)
	wg.Wait()
	if runs != 1 {
		t.Fatalf("fn ran %d times, want exactly 1", runs)
	}
	if shared != followers {
		t.Fatalf("%d callers saw shared=true, want %d", shared, followers)
	}
}

// TestFlightGroupReElection: when the leader's own context is cancelled,
// a waiting follower takes over instead of inheriting the cancellation.
func TestFlightGroupReElection(t *testing.T) {
	g := newFlightGroup()
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := g.do(leaderCtx, "k", func() (*core.Result, error) {
			close(leaderIn)
			<-leaderCtx.Done()
			return nil, leaderCtx.Err()
		})
		if err == nil {
			t.Error("cancelled leader returned nil error")
		}
	}()

	<-leaderIn
	followerDone := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		r, _, err := g.do(context.Background(), "k", func() (*core.Result, error) {
			return &core.Result{TrafficBytes: 9}, nil
		})
		if err == nil && r.TrafficBytes != 9 {
			err = fmt.Errorf("wrong result after re-election: %+v", r)
		}
		followerDone <- err
	}()

	cancelLeader()
	if err := <-followerDone; err != nil {
		t.Fatalf("follower after abandoned leader: %v", err)
	}
	wg.Wait()
}

// TestEngineDedupExactlyOnce is the engine-level exactly-once contract:
// many concurrent RunOne calls for the same cell on a Dedup engine
// simulate it exactly once; every other caller is a cache hit or a
// singleflight subscriber.
func TestEngineDedupExactlyOnce(t *testing.T) {
	e := New(Config{Backend: NewMemBackend(), Dedup: true})
	job := testJob("mcf")
	const callers = 12
	results := make([]*core.Result, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r, _, _, err := e.RunOne(context.Background(), 0, job)
			if err != nil {
				t.Errorf("caller %d: %v", c, err)
				return
			}
			results[c] = r
		}(c)
	}
	wg.Wait()
	if sims := e.Simulations(); sims != 1 {
		t.Fatalf("engine ran %d simulations for one unique cell, want exactly 1", sims)
	}
	for c, r := range results {
		if r == nil || r.ArchDigest != results[0].ArchDigest {
			t.Fatalf("caller %d got a different result", c)
		}
	}
	if st := e.CacheStats(); st.Deduped+st.Hits != callers-1 {
		t.Fatalf("dedup(%d) + hits(%d) should cover the %d non-simulating callers",
			st.Deduped, st.Hits, callers-1)
	}
}

// TestEngineDedupDistinctCells: dedup must not conflate different cells.
func TestEngineDedupDistinctCells(t *testing.T) {
	e := New(Config{Backend: NewMemBackend(), Dedup: true})
	benches := []string{"mcf", "art", "bzip2"}
	var wg sync.WaitGroup
	for i, b := range benches {
		wg.Add(1)
		go func(i int, b string) {
			defer wg.Done()
			if _, _, _, err := e.RunOne(context.Background(), i, testJob(b)); err != nil {
				t.Errorf("%s: %v", b, err)
			}
		}(i, b)
	}
	wg.Wait()
	if sims := e.Simulations(); sims != uint64(len(benches)) {
		t.Fatalf("%d distinct cells simulated %d times", len(benches), sims)
	}
}
