package campaign

import (
	"strings"
	"testing"

	"grp/internal/core"
)

// FuzzParseSpec drives the sweep-spec grammar with arbitrary input. The
// parser must never panic, and anything it accepts must expand into a
// well-formed grid: no empty cells, every cell's scheme and bench drawn
// from the grid's own axes.
func FuzzParseSpec(f *testing.F) {
	// Corpus: the documented examples from README/DESIGN plus edge shapes.
	f.Add("schemes=base,srp,grp/var × kernels=all × l2.size=512K,1M,2M")
	f.Add("schemes=grpvar × kernels=mcf × depth=1,3,6")
	f.Add("schemes=all")
	f.Add("kernels=mcf,equake")
	f.Add("schemes=NoPF,GRPVar x kernels=all")
	f.Add("l2.size=1M")
	f.Add("")
	f.Add("schemes=")
	f.Add("nonsense")
	f.Add("depth=1,2 × depth=3")
	f.Add("schemes=base × × kernels=mcf")
	f.Add("a=b=c")

	f.Fuzz(func(t *testing.T, spec string) {
		g, err := ParseSpec(spec, core.Options{})
		if err != nil {
			return // rejection is fine; panics are not
		}
		if len(g.Benches) == 0 || len(g.Schemes) == 0 {
			t.Fatalf("spec %q: accepted grid with no benches or schemes", spec)
		}
		schemes := map[core.Scheme]bool{}
		for _, s := range g.Schemes {
			schemes[s] = true
		}
		benches := map[string]bool{}
		for _, b := range g.Benches {
			benches[b] = true
		}
		for _, c := range g.Cells {
			if !schemes[c.Scheme] {
				t.Fatalf("spec %q: cell scheme %v not in grid schemes", spec, c.Scheme)
			}
			if !benches[c.Bench] {
				t.Fatalf("spec %q: cell bench %q not in grid benches", spec, c.Bench)
			}
			if len(c.Overlay) != len(g.Axes) {
				t.Fatalf("spec %q: cell overlay has %d settings, grid has %d axes",
					spec, len(c.Overlay), len(g.Axes))
			}
			if strings.Contains(c.OverlayString(), "  ") {
				t.Fatalf("spec %q: malformed overlay string %q", spec, c.OverlayString())
			}
		}
	})
}
