package campaign

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestJournalLockConcurrentOpeners: N goroutines race to open the same
// sweep journal; exactly one must win, every loser must see ErrLocked,
// and after the winner closes, the sweep is acquirable again. This is
// the race the old pid-file steal lost — two stealers could both remove
// the lock and both win — and the flock design must not.
func TestJournalLockConcurrentOpeners(t *testing.T) {
	dir := t.TempDir()
	keys := testKeys(3)
	const openers = 16

	var mu sync.Mutex
	var winners []*Journal
	losers := 0
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < openers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			j, err := OpenJournal(dir, "spec", keys, false)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				winners = append(winners, j)
			case errors.Is(err, ErrLocked):
				losers++
			default:
				t.Errorf("unexpected open error: %v", err)
			}
		}()
	}
	close(gate)
	wg.Wait()

	if len(winners) != 1 {
		t.Fatalf("%d goroutines acquired the sweep lock, want exactly 1 (%d saw ErrLocked)",
			len(winners), losers)
	}
	if losers != openers-1 {
		t.Fatalf("%d losers saw ErrLocked, want %d", losers, openers-1)
	}
	if err := winners[0].Close(); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(dir, "spec", keys, false)
	if err != nil {
		t.Fatalf("sweep not acquirable after the winner closed: %v", err)
	}
	j.Close()
}

// TestJournalLockStaleStolenConcurrently: a lock file left by a dead
// owner (present on disk, no live flock) is steal-able — but by exactly
// one of many concurrent stealers. Under the old scheme two stealers
// could interleave remove/create and both proceed.
func TestJournalLockStaleStolenConcurrently(t *testing.T) {
	dir := t.TempDir()
	keys := testKeys(3)
	id := SweepID(keys)
	lockPath := filepath.Join(dir, "journal", id, "lock")
	if err := os.MkdirAll(filepath.Dir(lockPath), 0o755); err != nil {
		t.Fatal(err)
	}
	// A dead owner's debris: a pid that cannot be running, and — the
	// point — no flock held on the inode.
	if err := os.WriteFile(lockPath, []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	const stealers = 8
	var mu sync.Mutex
	var winners []*Journal
	losers := 0
	var wg sync.WaitGroup
	gate := make(chan struct{})
	for i := 0; i < stealers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			j, err := OpenJournal(dir, "spec", keys, false)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				winners = append(winners, j)
			case errors.Is(err, ErrLocked):
				losers++
			default:
				t.Errorf("unexpected open error: %v", err)
			}
		}()
	}
	close(gate)
	wg.Wait()

	if len(winners) != 1 || losers != stealers-1 {
		t.Fatalf("stale lock stolen by %d of %d stealers, want exactly 1 (losers %d)",
			len(winners), stealers, losers)
	}
	// The winner's pid replaced the stale one.
	data, err := os.ReadFile(lockPath)
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("%d\n", os.Getpid()); string(data) != want {
		t.Fatalf("lock file holds %q after steal, want %q", data, want)
	}
	winners[0].Close()
}

// TestJournalLockReleaseUnlinkRace: open/close the same journal from
// many goroutines in sequence-free order. The releaseLock unlink +
// acquireLock SameFile-verify loop must never let two opens coexist and
// never deadlock. (Run under -race in CI.)
func TestJournalLockReleaseUnlinkRace(t *testing.T) {
	dir := t.TempDir()
	keys := testKeys(2)
	var holders int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				j, err := OpenJournal(dir, "spec", keys, false)
				if errors.Is(err, ErrLocked) {
					continue
				}
				if err != nil {
					t.Errorf("open: %v", err)
					return
				}
				// The counted window must close before Close releases the
				// flock: after release another goroutine may legitimately
				// hold the journal before this one's bookkeeping runs.
				mu.Lock()
				holders++
				if holders != 1 {
					t.Errorf("%d concurrent journal holders", holders)
				}
				if err := j.RecordDone(0, keys[0].Digest); err != nil {
					t.Errorf("record under lock: %v", err)
				}
				holders--
				mu.Unlock()
				j.Close()
			}
		}()
	}
	wg.Wait()
}
