package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"grp/internal/core"
)

// encodeCellForTest produces a valid on-disk cell envelope for a key.
func encodeCellForTest(t testing.TB, k CellKey, r *core.Result) []byte {
	t.Helper()
	data, err := json.Marshal(cellFile{
		Schema: cacheSchemaVersion, Key: k.Digest,
		Bench: k.Bench, Scheme: k.Scheme.String(), Result: r,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestStorePutGetRoundTrip: a clean Put leaves exactly the final cell
// file — no temp debris — and a fresh store reads it back.
func TestStorePutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	k := testKeys(1)[0]
	s := NewStore(dir, 0)
	if err := s.Put(k, &core.Result{Bench: k.Bench}); err != nil {
		t.Fatal(err)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "cell-*.tmp")); len(tmps) != 0 {
		t.Fatalf("Put left temp files: %v", tmps)
	}
	fresh := NewStore(dir, 0)
	r, ok := fresh.Get(k)
	if !ok || r == nil || r.Bench != k.Bench {
		t.Fatalf("disk round trip failed: ok=%t r=%+v", ok, r)
	}
}

// TestStoreQuarantineCorrupt: a torn/garbage cell file is a miss, is
// moved into quarantine/, and is counted — and the path heals: the next
// Get of the same key is an ordinary miss with no second quarantine.
func TestStoreQuarantineCorrupt(t *testing.T) {
	dir := t.TempDir()
	k := testKeys(1)[0]
	s := NewStore(dir, 0)
	valid := encodeCellForTest(t, k, &core.Result{Bench: k.Bench})
	if err := os.WriteFile(s.path(k), valid[:len(valid)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("torn cell file decoded as a hit")
	}
	q := filepath.Join(dir, quarantineDirName, k.Digest+".json")
	if _, err := os.Stat(q); err != nil {
		t.Fatalf("torn file not quarantined: %v", err)
	}
	if _, err := os.Stat(s.path(k)); !os.IsNotExist(err) {
		t.Fatal("torn file still at its cell path")
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("second Get hit")
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Quarantined != 1 || st.Misses != 2 {
		t.Fatalf("want 1 corrupt/quarantined and 2 misses, got %+v", st)
	}
}

// TestStoreStaleSchemaQuarantined: a decodable file from an older cache
// schema must not be returned; it is quarantined like corruption.
func TestStoreStaleSchemaQuarantined(t *testing.T) {
	dir := t.TempDir()
	k := testKeys(1)[0]
	s := NewStore(dir, 0)
	stale, err := json.Marshal(cellFile{
		Schema: cacheSchemaVersion - 1, Key: k.Digest, Result: &core.Result{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(k), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("stale-schema cell decoded as a hit")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("stale file not quarantined: %+v", st)
	}
}

// TestStoreDigestMismatchQuarantined: a file whose embedded key disagrees
// with its filename digest (collision or copied file) is never returned.
func TestStoreDigestMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	keys := testKeys(2)
	s := NewStore(dir, 0)
	// Valid envelope for key 0 placed at key 1's path.
	data := encodeCellForTest(t, keys[0], &core.Result{})
	if err := os.WriteFile(s.path(keys[1]), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("mismatched cell decoded as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("mismatch not counted corrupt: %+v", st)
	}
}

// TestStoreDegradeOnPersistentDiskError: when the cache root cannot be a
// directory, Put never fails the caller; after diskErrThreshold
// consecutive errors the store degrades to memory-only with ONE warning,
// and the memory layer keeps serving.
func TestStoreDegradeOnPersistentDiskError(t *testing.T) {
	tmp := t.TempDir()
	blocked := filepath.Join(tmp, "blocked")
	if err := os.WriteFile(blocked, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}
	var degradeWarns int
	s := NewStore(blocked, 0)
	s.warnf = func(format string, _ ...interface{}) {
		if strings.Contains(format, "continuing without the on-disk cache") {
			degradeWarns++
		}
	}
	keys := testKeys(diskErrThreshold + 2)
	for _, k := range keys {
		if err := s.Put(k, &core.Result{Bench: k.Bench}); err != nil {
			t.Fatalf("Put failed the cell on a disk error: %v", err)
		}
	}
	if !s.disabled.Load() {
		t.Fatal("store did not degrade after persistent disk errors")
	}
	if degradeWarns != 1 {
		t.Fatalf("want exactly 1 degrade warning, got %d", degradeWarns)
	}
	for _, k := range keys {
		if r, ok := s.Get(k); !ok || r.Bench != k.Bench {
			t.Fatalf("memory layer lost %s after degrade", k.Bench)
		}
	}
}

// TestStoreDiskErrCounterResets: a success between failures resets the
// consecutive-error counter, so intermittent glitches never degrade.
func TestStoreDiskErrCounterResets(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir, 0)
	keys := testKeys(2 * diskErrThreshold)
	for i, k := range keys {
		if i%2 == 0 {
			s.noteDiskErr("put", os.ErrPermission)
		} else {
			if err := s.Put(k, &core.Result{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.disabled.Load() {
		t.Fatal("intermittent errors degraded the store")
	}
}

// FuzzCellFileDecode: decodeCell must never panic and must only report a
// hit for a well-formed envelope matching the requested digest.
func FuzzCellFileDecode(f *testing.F) {
	k := testKeys(1)[0]
	valid := encodeCellForTest(f, k, &core.Result{Bench: k.Bench})
	f.Add(valid, k.Digest)
	f.Add(valid[:len(valid)/2], k.Digest)       // torn write
	f.Add([]byte("{}"), k.Digest)               // empty object
	f.Add([]byte(""), k.Digest)                 // empty file
	f.Add([]byte(`{"schema":999}`), k.Digest)   // future schema
	f.Add(valid, strings.Repeat("0", 64))       // digest mismatch
	f.Add([]byte(`{"result":null}`), k.Digest)  // explicit null result
	f.Add([]byte("\x00\x01\x02\xff"), k.Digest) // binary garbage
	f.Fuzz(func(t *testing.T, data []byte, digest string) {
		r, ok := decodeCell(data, digest)
		if ok && r == nil {
			t.Fatal("decodeCell reported a hit with a nil result")
		}
		if !ok && r != nil {
			t.Fatal("decodeCell returned a result on a miss")
		}
		if ok {
			var cf cellFile
			if err := json.Unmarshal(data, &cf); err != nil ||
				cf.Schema != cacheSchemaVersion || cf.Key != digest {
				t.Fatalf("decodeCell accepted an invalid envelope: %q", data)
			}
		}
	})
}
