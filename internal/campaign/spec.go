package campaign

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"grp/internal/core"
	"grp/internal/cpu"
	"grp/internal/sim"
	"grp/internal/workloads"
)

// The campaign spec grammar describes a sweep grid as clauses joined by
// "×", "x", ";", or whitespace:
//
//	schemes=base,srp,grp/var × kernels=all × l2.size=512K,1M,2M
//
// Clause keys:
//
//	schemes=...   scheme list (names as printed by core.Scheme.String,
//	              plus the aliases in schemeAliases); "all" = AllSchemes
//	kernels=...   benchmark list ("benches=" is accepted too); "all" =
//	              every workload
//
// Every other key is an overlay axis applied to core.Options; each axis
// with k values multiplies the grid by k. Axes (sizes accept K/M/G
// suffixes):
//
//	l1.size l1.assoc l2.size l2.assoc l2.mshrs dram.channels
//	prefetch.inflight depth srp.region openpage mru noprior corun
//
// The corun axis runs each cell multi-core: its value names the
// co-runner workload(s) sharing the L2 and DRAM with the cell's bench,
// '+'-joined for three or more cores ("corun=art,mcf+art" is a 2-core
// and a 3-core variant). "none" is the solo cell; "corun=all" expands to
// one co-runner per workload, so "kernels=all × corun=all" is the full
// co-run matrix.
//
// The expanded grid is ordered canonically: overlay combinations vary
// slowest (axes in declared order, values in declared order), then
// benches, then schemes — so output order never depends on completion
// order or worker count.

// schemeAliases maps the friendly spellings used in sweep specs to the
// canonical scheme names.
var schemeAliases = map[string]string{
	"nopf":        "base",
	"nopref":      "base",
	"grpfix":      "grp/fix",
	"grpvar":      "grp/var",
	"pointer":     "ptr",
	"grpadaptive": "grp-adaptive",
	"adaptive":    "grp-adaptive",
}

// Axis is one overlay dimension of a sweep grid.
type Axis struct {
	Key    string
	Values []string
}

// Setting is one applied overlay value.
type Setting struct {
	Key, Value string
}

// GridCell is one fully resolved cell of an expanded campaign.
type GridCell struct {
	Bench   string
	Scheme  core.Scheme
	Overlay []Setting // in axis order; empty for a plain suite
	Opt     core.Options
}

// OverlayString renders the cell's overlay as "k=v k=v", or "-" when the
// cell runs the base configuration.
func (c *GridCell) OverlayString() string {
	if len(c.Overlay) == 0 {
		return "-"
	}
	parts := make([]string, len(c.Overlay))
	for i, s := range c.Overlay {
		parts[i] = s.Key + "=" + s.Value
	}
	return strings.Join(parts, " ")
}

// Grid is an expanded campaign: benches × schemes × overlay axes.
type Grid struct {
	Benches []string
	Schemes []core.Scheme
	Axes    []Axis
	Cells   []GridCell
}

// Jobs converts the grid to engine jobs, preserving canonical order.
func (g *Grid) Jobs() []Job {
	jobs := make([]Job, len(g.Cells))
	for i, c := range g.Cells {
		jobs[i] = Job{Bench: c.Bench, Scheme: c.Scheme, Opt: c.Opt}
	}
	return jobs
}

// ParseSpec parses a sweep spec and expands it into a grid of cells, each
// carrying base options with its overlay applied.
func ParseSpec(spec string, base core.Options) (*Grid, error) {
	g := &Grid{}
	for _, clause := range splitClauses(spec) {
		k, v, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("campaign: clause %q is not key=value", clause)
		}
		k = strings.TrimSpace(k)
		vals := splitList(v)
		if len(vals) == 0 {
			return nil, fmt.Errorf("campaign: clause %q has no values", clause)
		}
		switch k {
		case "schemes", "scheme":
			schemes, err := parseSchemes(vals)
			if err != nil {
				return nil, err
			}
			g.Schemes = schemes
		case "kernels", "kernel", "benches", "bench":
			benches, err := parseBenches(vals)
			if err != nil {
				return nil, err
			}
			g.Benches = benches
		default:
			if _, ok := axisSetters[k]; !ok {
				return nil, fmt.Errorf("campaign: unknown spec key %q (axes: %s)", k, strings.Join(axisKeys(), ", "))
			}
			if k == "corun" && len(vals) == 1 && strings.EqualFold(vals[0], "all") {
				vals = workloads.Names()
			}
			g.Axes = append(g.Axes, Axis{Key: k, Values: vals})
		}
	}
	if g.Benches == nil {
		g.Benches = workloads.Names()
	}
	if g.Schemes == nil {
		g.Schemes = core.AllSchemes()
	}
	if err := g.expand(base); err != nil {
		return nil, err
	}
	return g, nil
}

// expand materializes the cartesian product into g.Cells in canonical
// order and resolves each cell's options.
func (g *Grid) expand(base core.Options) error {
	combos := [][]Setting{nil}
	for _, ax := range g.Axes {
		var next [][]Setting
		for _, c := range combos {
			for _, v := range ax.Values {
				nc := make([]Setting, len(c), len(c)+1)
				copy(nc, c)
				next = append(next, append(nc, Setting{Key: ax.Key, Value: v}))
			}
		}
		combos = next
	}
	g.Cells = make([]GridCell, 0, len(combos)*len(g.Benches)*len(g.Schemes))
	for _, combo := range combos {
		opt, err := applyOverlay(base, combo)
		if err != nil {
			return err
		}
		for _, b := range g.Benches {
			for _, sc := range g.Schemes {
				g.Cells = append(g.Cells, GridCell{Bench: b, Scheme: sc, Overlay: combo, Opt: opt})
			}
		}
	}
	return nil
}

// applyOverlay clones the base options (including pointed-to configs, so
// cells never alias each other's mutable state) and applies the settings.
func applyOverlay(base core.Options, overlay []Setting) (core.Options, error) {
	opt := base
	if base.Mem != nil {
		m := *base.Mem
		opt.Mem = &m
	}
	if base.CPU != nil {
		c := *base.CPU
		opt.CPU = &c
	}
	for _, s := range overlay {
		set, ok := axisSetters[s.Key]
		if !ok {
			return opt, fmt.Errorf("campaign: unknown axis %q", s.Key)
		}
		if err := set(&opt, s.Value); err != nil {
			return opt, fmt.Errorf("campaign: axis %s=%s: %w", s.Key, s.Value, err)
		}
	}
	return opt, nil
}

// ensureMem gives the options a private memory config to mutate,
// defaulting to the paper's.
func ensureMem(o *core.Options) *sim.MemConfig {
	if o.Mem == nil {
		c := sim.DefaultMemConfig()
		o.Mem = &c
	}
	return o.Mem
}

// ensureCPU is ensureMem for the core config.
func ensureCPU(o *core.Options) *cpu.Config {
	if o.CPU == nil {
		c := cpu.Default()
		o.CPU = &c
	}
	return o.CPU
}

// ApplyAxis applies one overlay axis (a spec-grammar key like "l2.size"
// and a value like "512K") to the options in place. It is the single-axis
// entry other drivers (grpconform's -overlay flag) share with the spec
// parser, so overlay spellings mean the same thing everywhere.
func ApplyAxis(o *core.Options, key, value string) error {
	set, ok := axisSetters[key]
	if !ok {
		return fmt.Errorf("campaign: unknown axis %q (axes: %s)", key, strings.Join(axisKeys(), ", "))
	}
	if err := set(o, value); err != nil {
		return fmt.Errorf("campaign: axis %s=%s: %w", key, value, err)
	}
	return nil
}

// axisSetters applies one overlay axis value to a cell's options.
var axisSetters = map[string]func(*core.Options, string) error{
	"l1.size": func(o *core.Options, v string) error {
		n, err := parseSize(v)
		if err != nil {
			return err
		}
		ensureMem(o).L1.SizeBytes = n
		return nil
	},
	"l1.assoc": func(o *core.Options, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		ensureMem(o).L1.Assoc = n
		return nil
	},
	"l2.size": func(o *core.Options, v string) error {
		n, err := parseSize(v)
		if err != nil {
			return err
		}
		ensureMem(o).L2.SizeBytes = n
		return nil
	},
	"l2.assoc": func(o *core.Options, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		ensureMem(o).L2.Assoc = n
		return nil
	},
	"l2.mshrs": func(o *core.Options, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		ensureMem(o).L2.MSHRs = n
		return nil
	},
	"dram.channels": func(o *core.Options, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		ensureMem(o).DRAM.Channels = n
		return nil
	},
	"prefetch.inflight": func(o *core.Options, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		ensureMem(o).MaxInflightPrefetches = n
		return nil
	},
	"rob": func(o *core.Options, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		ensureCPU(o).ROBSize = n
		return nil
	},
	"depth": func(o *core.Options, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		if n < 0 || n > 255 {
			return fmt.Errorf("depth %d out of range", n)
		}
		o.RecursionDepth = uint8(n)
		return nil
	},
	"srp.region": func(o *core.Options, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		o.SRPRegionBlocks = n
		return nil
	},
	"openpage": func(o *core.Options, v string) error {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return err
		}
		o.OpenPageFirst = b
		return nil
	},
	"mru": func(o *core.Options, v string) error {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return err
		}
		o.PrefetchInsertMRU = b
		return nil
	},
	"noprior": func(o *core.Options, v string) error {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return err
		}
		o.DisablePrioritizer = b
		return nil
	},
	"corun": func(o *core.Options, v string) error {
		if strings.EqualFold(v, "none") || v == "-" {
			o.CoRun = nil
			return nil
		}
		var benches []string
		for _, p := range strings.Split(v, "+") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			if _, err := workloads.ByName(p); err != nil {
				return err
			}
			benches = append(benches, p)
		}
		if len(benches) == 0 {
			return fmt.Errorf("empty co-runner list")
		}
		o.CoRun = benches
		return nil
	},
}

func axisKeys() []string {
	keys := make([]string, 0, len(axisSetters))
	for k := range axisSetters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// splitClauses tokenizes a spec on whitespace, "×", "x", and ";". A bare
// "x" between clauses is a separator (the issue's grid notation); an "x"
// inside a clause is just a character.
func splitClauses(spec string) []string {
	spec = strings.ReplaceAll(spec, "×", " ")
	spec = strings.ReplaceAll(spec, ";", " ")
	var out []string
	for _, f := range strings.Fields(spec) {
		if f == "x" || f == "X" {
			continue
		}
		out = append(out, f)
	}
	return out
}

func splitList(v string) []string {
	var out []string
	for _, p := range strings.Split(v, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSchemes(vals []string) ([]core.Scheme, error) {
	if len(vals) == 1 && strings.EqualFold(vals[0], "all") {
		return core.AllSchemes(), nil
	}
	var out []core.Scheme
	for _, v := range vals {
		name := v
		if alias, ok := schemeAliases[strings.ToLower(v)]; ok {
			name = alias
		}
		sc, err := core.SchemeByName(name)
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
		out = append(out, sc)
	}
	return out, nil
}

func parseBenches(vals []string) ([]string, error) {
	if len(vals) == 1 && strings.EqualFold(vals[0], "all") {
		return workloads.Names(), nil
	}
	for _, v := range vals {
		if _, err := workloads.ByName(v); err != nil {
			return nil, err
		}
	}
	return vals, nil
}

// parseSize parses "512K", "1M", "2M", "65536" into bytes.
func parseSize(v string) (int, error) {
	mult := 1
	s := v
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("bad size %q", v)
	}
	return n * mult, nil
}
