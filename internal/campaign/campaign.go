// Package campaign is the parallel experiment engine: it fans
// (workload × scheme × config-overlay) cells out over a bounded pool of
// goroutines with a content-addressed result cache in front, and reduces
// completed cells in canonical order so parallel output is byte-identical
// to the serial path.
//
// Each cell is keyed by a SHA-256 digest of the canonicalized effective
// core.Options plus a hash of the compiled workload program (see key.go),
// so re-running a campaign after editing one workload, the compiler, or a
// single scheme (bump its schemeVersions entry) only re-simulates the
// dirty cells. Results persist as JSON under .grpcache/ with an in-memory
// LRU in front.
package campaign

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"grp/internal/core"
	"grp/internal/workloads"
)

// Config configures a campaign engine.
type Config struct {
	// Jobs is the worker-pool width; <= 0 uses GOMAXPROCS.
	Jobs int
	// Cache enables the content-addressed result cache.
	Cache bool
	// CacheDir overrides the cache root (default .grpcache).
	CacheDir string
	// MemEntries bounds the in-memory LRU (default 512 cells).
	MemEntries int
	// Progress, when non-nil, is called after every completed cell with
	// the completion count, the grid size, and how many of the completed
	// cells were cache hits. Calls are serialized.
	Progress func(done, total, hits int)
	// OnCellStart, when non-nil, is called as each cell begins processing
	// (cache lookup included). Unlike Progress it is NOT serialized: it
	// runs on the worker goroutine, so fleet reporters (internal/obs) see
	// live worker occupancy. The callee must be safe for concurrent use.
	OnCellStart func()
}

// Engine runs campaigns. One engine may run several grids; the cache and
// its statistics persist across runs, which is what makes a -compare
// baseline a cache hit when the main run already warmed it.
type Engine struct {
	cfg   Config
	store *Store // nil when caching is off
	memo  *hashMemo
}

// New builds an engine from the configuration.
func New(cfg Config) *Engine {
	e := &Engine{cfg: cfg, memo: newHashMemo()}
	if cfg.Cache {
		e.store = NewStore(cfg.CacheDir, cfg.MemEntries)
	}
	return e
}

// Jobs returns the effective worker-pool width.
func (e *Engine) Jobs() int {
	if e.cfg.Jobs > 0 {
		return e.cfg.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// CacheStats reports cache traffic so far; zero when caching is off.
func (e *Engine) CacheStats() CacheStats {
	if e.store == nil {
		return CacheStats{}
	}
	return e.store.Stats()
}

// Job is one fully resolved simulation: a bench, a scheme, and the exact
// options to run it under (grid cells carry per-cell overlays).
type Job struct {
	Bench  string
	Scheme core.Scheme
	Opt    core.Options
}

// Run executes the jobs on the worker pool and returns results
// positionally: results[i] belongs to jobs[i], whatever order the workers
// finished in. The first error cancels the remaining jobs.
//
// Cells with a Timeline attached bypass the cache: a timeline is a side
// effect of simulating, and a cache hit would leave it empty.
func (e *Engine) Run(jobs []Job) ([]*core.Result, error) {
	results := make([]*core.Result, len(jobs))
	var done, hits int
	var progressMu sync.Mutex
	report := func(hit bool) {
		if e.cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		done++
		if hit {
			hits++
		}
		e.cfg.Progress(done, len(jobs), hits)
		progressMu.Unlock()
	}

	err := ParallelFor(len(jobs), e.Jobs(), func(i int) error {
		if e.cfg.OnCellStart != nil {
			e.cfg.OnCellStart()
		}
		r, hit, err := e.runOne(jobs[i])
		if err != nil {
			return err
		}
		results[i] = r
		report(hit)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// runOne executes one job through the cache.
func (e *Engine) runOne(j Job) (*core.Result, bool, error) {
	useCache := e.store != nil && j.Opt.Timeline == nil
	var key CellKey
	if useCache {
		ph, err := e.memo.get(j.Bench, j.Opt.Factor, j.Opt.Policy, j.Scheme == core.SoftwarePF)
		if err != nil {
			return nil, false, err
		}
		key = cellKey(j.Bench, j.Scheme, j.Opt, ph)
		if r, ok := e.store.Get(key); ok {
			return r, true, nil
		}
	}
	spec, err := workloads.ByName(j.Bench)
	if err != nil {
		return nil, false, err
	}
	r, err := core.Run(spec, j.Scheme, j.Opt)
	if err != nil {
		return nil, false, fmt.Errorf("campaign: cell %s/%s: %w", j.Bench, j.Scheme, err)
	}
	if useCache {
		if err := e.store.Put(key, r); err != nil {
			return nil, false, err
		}
	}
	return r, false, nil
}

// Runner adapts the engine to core.CellRunner, so core.RunSuiteWith and
// RunSensitivityWith get parallelism and caching for free.
func (e *Engine) Runner() core.CellRunner {
	return func(cells []core.Cell, opt core.Options) ([]*core.Result, error) {
		jobs := make([]Job, len(cells))
		for i, c := range cells {
			jobs[i] = Job{Bench: c.Bench, Scheme: c.Scheme, Opt: opt}
		}
		return e.Run(jobs)
	}
}

// RunSuite is the campaign-engine equivalent of core.RunSuite: the same
// grid, reduced by the same canonical-order reducer, executed in parallel
// with caching.
func (e *Engine) RunSuite(benches []string, schemes []core.Scheme, opt core.Options) (*core.Suite, error) {
	return core.RunSuiteWith(benches, schemes, opt, e.Runner())
}

// RunSuite runs a suite through a one-shot engine with the given config.
func RunSuite(benches []string, schemes []core.Scheme, opt core.Options, cfg Config) (*core.Suite, error) {
	return New(cfg).RunSuite(benches, schemes, opt)
}

// ParallelFor runs fn(i) for i in [0, n) on up to jobs goroutines. The
// first error stops new work (in-flight calls finish) and is returned.
// With jobs <= 1 it degenerates to a plain loop, so a single-job campaign
// is exactly the serial path.
func ParallelFor(n, jobs int, fn func(i int) error) error {
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if jobs > n {
		jobs = n
	}
	var (
		next     int64 = -1
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || stop.Load() {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
