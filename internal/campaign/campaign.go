// Package campaign is the parallel experiment engine: it fans
// (workload × scheme × config-overlay) cells out over a bounded pool of
// goroutines with a content-addressed result cache in front, and reduces
// completed cells in canonical order so parallel output is byte-identical
// to the serial path.
//
// Each cell is keyed by a SHA-256 digest of the canonicalized effective
// core.Options plus a hash of the compiled workload program (see key.go),
// so re-running a campaign after editing one workload, the compiler, or a
// single scheme (bump its schemeVersions entry) only re-simulates the
// dirty cells. Results persist as JSON under .grpcache/ with an in-memory
// LRU in front.
//
// The engine is crash-safe: every cell runs under recover() so one panic
// becomes a structured PanicError instead of a dead sweep, transient
// failures retry with capped backoff, a cancelled context drains cleanly,
// and an attached Journal (see journal.go) plus the cache make a killed
// campaign resumable with byte-identical output.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"grp/internal/core"
	"grp/internal/workloads"
)

// Config configures a campaign engine.
type Config struct {
	// Jobs is the worker-pool width; <= 0 uses GOMAXPROCS.
	Jobs int
	// Cache enables the content-addressed result cache.
	Cache bool
	// CacheDir overrides the cache root (default .grpcache).
	CacheDir string
	// MemEntries bounds the in-memory LRU (default 512 cells).
	MemEntries int
	// Backend overrides the result store entirely (Cache/CacheDir/
	// MemEntries are then ignored). A *Store gets the engine's chaos and
	// warning hooks wired in; any other Backend is used as given.
	Backend Backend
	// Dedup collapses concurrent identical in-flight cells through a
	// singleflight layer in front of the store: each unique cell digest
	// simulates exactly once and every subscriber shares the result.
	// Off by default — a single grid never contains duplicate cells, so
	// only multi-sweep drivers (grpserve) pay for the layer.
	Dedup bool
	// CellTimeout bounds one attempt of one cell; 0 means no deadline.
	// An overrun cancels the simulation (polled in the CPU commit loop)
	// and counts as a transient failure, so it retries.
	CellTimeout time.Duration
	// Retry bounds the response to transient cell failures; the zero
	// value uses the defaults (3 attempts, 10ms base backoff).
	Retry RetryPolicy
	// KeepGoing records per-cell failures in the report instead of
	// aborting the sweep on the first one.
	KeepGoing bool
	// Chaos, when non-nil, injects deterministic infrastructure faults
	// (dev/test only; see chaos.go).
	Chaos *Chaos
	// Progress, when non-nil, is called after every completed cell with
	// the completion count, the grid size, and how many of the completed
	// cells were cache hits. Calls are serialized.
	Progress func(done, total, hits int)
	// OnCellStart, when non-nil, is called as each cell begins processing
	// (cache lookup included). Unlike Progress it is NOT serialized: it
	// runs on the worker goroutine, so fleet reporters (internal/obs) see
	// live worker occupancy. The callee must be safe for concurrent use.
	OnCellStart func()
	// OnCellRetry, when non-nil, is called on each retry of a failed
	// attempt (concurrent, like OnCellStart).
	OnCellRetry func()
	// OnCellFail, when non-nil, is called when a cell fails for good
	// under KeepGoing (concurrent, like OnCellStart).
	OnCellFail func()
	// Warnf, when non-nil, receives non-fatal infrastructure warnings
	// (cache degradation, quarantined files, journal write errors).
	Warnf func(format string, args ...interface{})
}

// Engine runs campaigns. One engine may run several grids; the cache and
// its statistics persist across runs, which is what makes a -compare
// baseline a cache hit when the main run already warmed it.
type Engine struct {
	cfg     Config
	store   Backend      // nil when caching is off
	flight  *flightGroup // nil unless cfg.Dedup
	memo    *hashMemo
	journal *Journal // nil unless AttachJournal was called
	retries atomic.Uint64
	sims    atomic.Uint64
	dedups  atomic.Uint64
}

// New builds an engine from the configuration.
func New(cfg Config) *Engine {
	e := &Engine{cfg: cfg, memo: newHashMemo()}
	switch {
	case cfg.Backend != nil:
		e.store = cfg.Backend
	case cfg.Cache:
		e.store = NewStore(cfg.CacheDir, cfg.MemEntries)
	}
	// The local-directory store carries engine-level hooks (chaos
	// injection, warning sink); other backends are self-contained.
	if s, ok := e.store.(*Store); ok {
		s.chaos = cfg.Chaos
		s.warnf = e.warnf
	}
	if cfg.Dedup {
		e.flight = newFlightGroup()
	}
	return e
}

// Backend returns the engine's result store (nil when caching is off).
func (e *Engine) Backend() Backend { return e.store }

// Jobs returns the effective worker-pool width.
func (e *Engine) Jobs() int {
	if e.cfg.Jobs > 0 {
		return e.cfg.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// CacheStats reports cache traffic so far; zero when caching is off
// (cell retries are counted even then).
func (e *Engine) CacheStats() CacheStats {
	var st CacheStats
	if e.store != nil {
		st = e.store.Stats()
	}
	st.Retries = e.retries.Load()
	st.Deduped = e.dedups.Load()
	return st
}

// Simulations counts cell simulation attempts actually executed by this
// engine — cache hits and deduped subscribers are excluded, retries of a
// failing cell are included. It is the run counter the exactly-once
// dedup guarantee is verified against.
func (e *Engine) Simulations() uint64 { return e.sims.Load() }

// AttachJournal makes the engine record cell completions durably. Open
// the journal with the keys from Keys on the same job list, attach it,
// then Run; the caller owns Close.
func (e *Engine) AttachJournal(j *Journal) { e.journal = j }

// warnf routes a non-fatal warning to the configured sink (or drops it).
func (e *Engine) warnf(format string, args ...interface{}) {
	if e.cfg.Warnf != nil {
		e.cfg.Warnf(format, args...)
	}
}

// Job is one fully resolved simulation: a bench, a scheme, and the exact
// options to run it under (grid cells carry per-cell overlays).
type Job struct {
	Bench  string
	Scheme core.Scheme
	Opt    core.Options
}

// Keys computes the content address of every job, positionally. This is
// what a sweep journal is opened with: compiling (the expensive part of
// keying) is memoized per bench, so keying a grid is cheap next to
// simulating it.
func (e *Engine) Keys(jobs []Job) ([]CellKey, error) {
	keys := make([]CellKey, len(jobs))
	for i, j := range jobs {
		ph, err := e.memo.get(j.Bench, j.Opt.Factor, j.Opt.Policy, j.Scheme == core.SoftwarePF)
		if err != nil {
			return nil, err
		}
		crh, err := e.memo.coRunHashes(j.Opt, j.Scheme)
		if err != nil {
			return nil, err
		}
		keys[i] = cellKey(j.Bench, j.Scheme, j.Opt, ph, crh...)
	}
	return keys, nil
}

// Report is the full outcome of a campaign: positional results plus, in
// keep-going mode, the cells that failed for good (results[i] is nil for
// a failed cell i). Failures are ordered by grid index, so a failing
// sweep reports identically at any worker count.
type Report struct {
	Results  []*core.Result
	Failures []CellFailure
}

// Run executes the jobs on the worker pool and returns results
// positionally: results[i] belongs to jobs[i], whatever order the workers
// finished in. The lowest-index error cancels the remaining jobs; in
// keep-going mode the sweep finishes and the error summarizes the
// failures (use RunReport to get them per cell).
//
// Cells with a Timeline attached bypass the cache: a timeline is a side
// effect of simulating, and a cache hit would leave it empty.
func (e *Engine) Run(ctx context.Context, jobs []Job) ([]*core.Result, error) {
	rep, err := e.RunReport(ctx, jobs)
	if err != nil {
		return nil, err
	}
	if n := len(rep.Failures); n > 0 {
		f := rep.Failures[0]
		return nil, fmt.Errorf("campaign: %d of %d cells failed (first: %s/%s: %s)",
			n, len(jobs), f.Bench, f.Scheme, f.Err)
	}
	return rep.Results, nil
}

// RunReport is Run with per-cell failure reporting: in keep-going mode a
// failed cell leaves a nil result and a CellFailure record instead of
// aborting the sweep. The returned error covers infrastructure-level
// aborts only (cancellation, or the first cell error without KeepGoing).
func (e *Engine) RunReport(ctx context.Context, jobs []Job) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]*core.Result, len(jobs))
	failures := make([]*CellFailure, len(jobs))
	var done, hits int
	var progressMu sync.Mutex
	report := func(hit bool) {
		progressMu.Lock()
		done++
		if hit {
			hits++
		}
		d := done
		if e.cfg.Progress != nil {
			e.cfg.Progress(done, len(jobs), hits)
		}
		progressMu.Unlock()
		// The kill switch fires at an exact completion count, so a chaos
		// run dies at the same sweep state regardless of worker schedule.
		if c := e.cfg.Chaos; c != nil && c.KillAfter > 0 && d == c.KillAfter {
			c.kill()
		}
	}

	err := ParallelFor(ctx, len(jobs), e.Jobs(), func(i int) error {
		if e.cfg.OnCellStart != nil {
			e.cfg.OnCellStart()
		}
		r, hit, key, cerr := e.runCell(ctx, i, jobs[i])
		if cerr != nil {
			if e.cfg.KeepGoing && ctx.Err() == nil && !errors.Is(cerr, context.Canceled) {
				failures[i] = failureRecord(i, jobs[i], cerr)
				e.noteFail(i, key, cerr)
				if e.cfg.OnCellFail != nil {
					e.cfg.OnCellFail()
				}
				report(false)
				return nil
			}
			return cerr
		}
		results[i] = r
		e.noteDone(i, key)
		report(hit)
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{Results: results}
	for _, f := range failures {
		if f != nil {
			rep.Failures = append(rep.Failures, *f)
		}
	}
	return rep, nil
}

// failureRecord flattens a cell's final error into its serializable form.
func failureRecord(i int, j Job, err error) *CellFailure {
	f := &CellFailure{Index: i, Bench: j.Bench, Scheme: j.Scheme.String(), Err: err.Error(), Attempts: 1}
	var ce *CellError
	if errors.As(err, &ce) {
		f.Attempts = ce.Attempts
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		f.Panic = true
		// The stack is in the logs (via Warnf); the artifact records the
		// panic value, not pages of goroutine frames.
		f.Err = fmt.Sprintf("panic: %s", pe.Value)
	}
	return f
}

// NewCellFailure flattens a cell's final error into its serializable
// form, for external schedulers (grpserve) that drive RunOne directly
// and build their own keep-going reports.
func NewCellFailure(i int, j Job, err error) CellFailure {
	return *failureRecord(i, j, err)
}

// noteDone records a durable completion; journal write errors degrade to
// warnings because the cache already holds the result.
func (e *Engine) noteDone(i int, key CellKey) {
	if e.journal == nil || key.Digest == "" {
		return
	}
	if err := e.journal.RecordDone(i, key.Digest); err != nil {
		e.warnf("campaign: journal: %v", err)
	}
}

// noteFail records a durable failure (resume re-runs the cell).
func (e *Engine) noteFail(i int, key CellKey, cellErr error) {
	if e.journal == nil || key.Digest == "" {
		return
	}
	if err := e.journal.RecordFail(i, key.Digest, cellErr.Error()); err != nil {
		e.warnf("campaign: journal: %v", err)
	}
}

// runCell executes one cell through every engine layer. See RunOne.
func (e *Engine) runCell(ctx context.Context, i int, j Job) (*core.Result, bool, CellKey, error) {
	return e.RunOne(ctx, i, j)
}

// RunOne executes a single job through the cache, singleflight, and
// retry layers: cache lookup first, then — deduped against identical
// in-flight cells when the engine was built with Dedup — up to
// Retry.MaxAttempts isolated simulation attempts with backoff between
// them. hit reports that the result came from the cache or from another
// subscriber's in-flight simulation rather than a fresh run. The
// returned key is the cell's content address when one was computed (""
// otherwise). i tags the cell for error reports and backoff jitter;
// external schedulers (grpserve) pass the cell's grid index.
//
// Unlike Run, RunOne does not touch the engine's attached journal —
// multi-sweep drivers own one journal per sweep and record completions
// themselves.
func (e *Engine) RunOne(ctx context.Context, i int, j Job) (*core.Result, bool, CellKey, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	useCache := e.store != nil && j.Opt.Timeline == nil
	var key CellKey
	if useCache || e.journal != nil || e.flight != nil {
		ph, err := e.memo.get(j.Bench, j.Opt.Factor, j.Opt.Policy, j.Scheme == core.SoftwarePF)
		if err != nil {
			return nil, false, key, err
		}
		crh, err := e.memo.coRunHashes(j.Opt, j.Scheme)
		if err != nil {
			return nil, false, key, err
		}
		key = cellKey(j.Bench, j.Scheme, j.Opt, ph, crh...)
	}
	if useCache {
		if r, ok := e.store.Get(key); ok {
			return r, true, key, nil
		}
	}
	if e.flight != nil && key.Digest != "" {
		r, shared, err := e.flight.do(ctx, key.Digest, func() (*core.Result, error) {
			return e.simulate(ctx, i, j, key, useCache)
		})
		if shared {
			e.dedups.Add(1)
		}
		return r, shared, key, err
	}
	r, err := e.simulate(ctx, i, j, key, useCache)
	return r, false, key, err
}

// simulate is the cache-miss path of one cell: the retry loop around
// isolated attempts, persisting the result on success.
func (e *Engine) simulate(ctx context.Context, i int, j Job, key CellKey, useCache bool) (*core.Result, error) {
	policy := e.cfg.Retry.withDefaults()
	var lastErr error
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			e.retries.Add(1)
			if e.cfg.OnCellRetry != nil {
				e.cfg.OnCellRetry()
			}
			if err := sleepCtx(ctx, policy.backoff(i, attempt)); err != nil {
				return nil, err
			}
		}
		e.sims.Add(1)
		r, err := e.attemptCell(ctx, i, attempt, j, key)
		if err == nil {
			if useCache {
				if perr := e.store.Put(key, r); perr != nil {
					return nil, perr
				}
			}
			return r, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			// The run itself is over; surface the cancellation, not the
			// cell's collateral error.
			return nil, ctx.Err()
		}
		if !retryableError(err) {
			break
		}
		e.warnf("campaign: cell %s/%s (index %d) attempt %d failed, retrying: %v",
			j.Bench, j.Scheme, i, attempt, err)
	}
	attempts := 1
	if retryableError(lastErr) {
		attempts = policy.MaxAttempts
	}
	return nil, &CellError{Index: i, Bench: j.Bench, Scheme: j.Scheme, Attempts: attempts, Err: lastErr}
}

// attemptCell is one isolated try of one cell: a recover() fence around
// the simulator, the per-cell deadline, and the chaos injection points.
func (e *Engine) attemptCell(ctx context.Context, i, attempt int, j Job, key CellKey) (res *core.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			pe := &PanicError{
				Bench: j.Bench, Scheme: j.Scheme.String(), Index: i, Key: key.Digest,
				Attempt: attempt, Value: fmt.Sprint(v), Stack: string(debug.Stack()),
			}
			res, err = nil, pe
		}
	}()

	cellCtx := ctx
	if e.cfg.CellTimeout > 0 {
		var cancel context.CancelFunc
		cellCtx, cancel = context.WithTimeout(ctx, e.cfg.CellTimeout)
		defer cancel()
	}
	if c := e.cfg.Chaos; c != nil {
		if d := c.slowsCell(i, attempt); d > 0 {
			if serr := sleepCtx(cellCtx, d); serr != nil {
				return nil, serr
			}
		}
		if c.panicsCell(i, attempt) {
			panic(fmt.Sprintf("chaos: injected panic (cell %d, attempt %d)", i, attempt))
		}
	}

	opt := j.Opt
	if cellCtx.Done() != nil {
		// The simulator polls this from the commit loop; a plain
		// background context costs nothing (no hook installed).
		opt.Cancel = cellCtx.Err
	}
	spec, werr := workloads.ByName(j.Bench)
	if werr != nil {
		return nil, werr
	}
	r, rerr := core.Run(spec, j.Scheme, opt)
	if rerr != nil {
		if cerr := cellCtx.Err(); cerr != nil {
			// Attribute the abort to its cause so deadline overruns
			// retry and run-level cancellation does not.
			return nil, fmt.Errorf("campaign: cell %s/%s: %w", j.Bench, j.Scheme, cerr)
		}
		return nil, fmt.Errorf("campaign: cell %s/%s: %w", j.Bench, j.Scheme, rerr)
	}
	return r, nil
}

// Runner adapts the engine to core.CellRunner, so core.RunSuiteWith and
// RunSensitivityWith get parallelism and caching for free.
func (e *Engine) Runner() core.CellRunner {
	return func(ctx context.Context, cells []core.Cell, opt core.Options) ([]*core.Result, error) {
		jobs := make([]Job, len(cells))
		for i, c := range cells {
			jobs[i] = Job{Bench: c.Bench, Scheme: c.Scheme, Opt: opt}
		}
		return e.Run(ctx, jobs)
	}
}

// RunSuite is the campaign-engine equivalent of core.RunSuite: the same
// grid, reduced by the same canonical-order reducer, executed in parallel
// with caching.
func (e *Engine) RunSuite(ctx context.Context, benches []string, schemes []core.Scheme, opt core.Options) (*core.Suite, error) {
	return core.RunSuiteWith(ctx, benches, schemes, opt, e.Runner())
}

// RunSuite runs a suite through a one-shot engine with the given config.
func RunSuite(benches []string, schemes []core.Scheme, opt core.Options, cfg Config) (*core.Suite, error) {
	return New(cfg).RunSuite(context.Background(), benches, schemes, opt)
}

// ParallelFor runs fn(i) for i in [0, n) on up to jobs goroutines. An
// error stops new work; in-flight calls finish and the error at the
// LOWEST index is returned, so a failing sweep reports the same cell at
// any worker count. Indices are claimed monotonically, which is what
// makes that deterministic: when the error at index i is recorded, every
// index below i has already been claimed and will run to completion,
// recording its own error if it has one. A cancelled ctx stops new work
// the same way and is returned only when no cell error was recorded.
// With jobs <= 1 it degenerates to a plain loop, so a single-job campaign
// is exactly the serial path.
func ParallelFor(ctx context.Context, n, jobs int, fn func(i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if jobs > n {
		jobs = n
	}
	var (
		next     int64 = -1
		stop     atomic.Bool
		mu       sync.Mutex
		errIdx   = -1
		firstErr error
		wg       sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if errIdx < 0 || i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n || stop.Load() || ctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
