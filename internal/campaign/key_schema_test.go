package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"grp/internal/core"
	"grp/internal/workloads"
)

// schema2McfGRPVarDigest is the content address the (mcf, grp/var, Test)
// cell had under cache schema 2, recorded immediately before the hot-path
// overhaul. The overhaul changed same-cycle fill ordering (FIFO by issue
// seq), so results cached under the old schema must be unreachable: the
// schema bump to 3 retires this key.
const schema2McfGRPVarDigest = "120b7bf81bb9a4a962ea5e32718e536c8f298e4c017eca8408334c33e01c24e6"

// schema4McfGRPVarDigest is the same cell's content address under cache
// schema 4, recorded immediately before the scheme family grew ghb and
// grp-adaptive (and the shared region-queue code gained a capacity
// override). The schema bump to 5 retires it.
const schema4McfGRPVarDigest = "4a5244964b9d72e94295a8b6da4e061e9e2ba3c1a026417e3e74c9b988e48cce"

// schema5McfGRPVarDigest is the same cell's content address under cache
// schema 5, recorded immediately before co-run mode landed (Options grew
// CoRun, Result grew the CoRun context). The schema bump to 6 retires it.
const schema5McfGRPVarDigest = "4b253fd98e815b2a4a52522357551db70264f07354f85c639acdcb0d29d99ccf"

// TestSchemaBumpRetiresOldKeys recomputes the (mcf, grp/var, Test) key
// with today's canonicalization — same recipe that recorded the schema-2
// digest — and demands it moved. If this fails, either the schema was
// rolled back or canonicalize no longer folds the schema in; both would
// let stale pre-overhaul cells serve as cache hits.
func TestSchemaBumpRetiresOldKeys(t *testing.T) {
	if cacheSchemaVersion < 3 {
		t.Fatalf("cacheSchemaVersion = %d, want >= 3 after the hot-path overhaul", cacheSchemaVersion)
	}
	opt := core.Options{Factor: workloads.Test}
	ph, err := newHashMemo().get("mcf", opt.Factor, opt.Policy, false)
	if err != nil {
		t.Fatal(err)
	}
	k := cellKey("mcf", core.GRPVar, opt, ph)
	if k.Digest == schema2McfGRPVarDigest {
		t.Fatalf("(mcf, grp/var, Test) still maps to its schema-2 digest %s; stale cached cells would hit", k.Digest)
	}
	if k.Digest == schema4McfGRPVarDigest {
		t.Fatalf("(mcf, grp/var, Test) still maps to its schema-4 digest %s; stale pre-scheme-family cells would hit", k.Digest)
	}
	if k.Digest == schema5McfGRPVarDigest {
		t.Fatalf("(mcf, grp/var, Test) still maps to its schema-5 digest %s; stale pre-co-run cells would hit", k.Digest)
	}
}

// TestCoRunSplitsKey pins co-run cache identity three ways: a co-run
// cell never collides with its solo cell, with a different co-runner
// list, or with a different co-run width — and the co-runners' program
// hashes are part of the address, so a co-runner's workload edit dirties
// the cells it participated in.
func TestCoRunSplitsKey(t *testing.T) {
	base := core.Options{Factor: workloads.Test}
	corun := base
	corun.CoRun = []string{"art"}
	corun2 := base
	corun2.CoRun = []string{"equake"}
	corun3 := base
	corun3.CoRun = []string{"art", "equake"}

	solo := cellKey("mcf", core.GRPVar, base, 42)
	k1 := cellKey("mcf", core.GRPVar, corun, 42, 7)
	k2 := cellKey("mcf", core.GRPVar, corun2, 42, 8)
	k3 := cellKey("mcf", core.GRPVar, corun3, 42, 7, 8)
	seen := map[string]string{solo.Digest: "solo", k1.Digest: "corun=art",
		k2.Digest: "corun=equake", k3.Digest: "corun=art+equake"}
	if len(seen) != 4 {
		t.Fatalf("co-run variants collide: %v", seen)
	}
	// Same co-runner list, different co-runner program: the hash splits.
	if k1b := cellKey("mcf", core.GRPVar, corun, 42, 9); k1b.Digest == k1.Digest {
		t.Fatal("co-runner program hash does not split the cell key")
	}
}

// TestStaleSchema5CellQuarantinesOnRead plants a schema-5 envelope at a
// current key's on-disk path — what a store looks like after old cells
// are copied forward, or after a canonicalization rollback — and demands
// the read be a clean miss that moves the file into quarantine rather
// than a silent hit on pre-co-run data.
func TestStaleSchema5CellQuarantinesOnRead(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir, 8)
	opt := core.Options{Factor: workloads.Test}
	k := cellKey("mcf", core.GRPVar, opt, 42)

	stale := cellFile{
		Schema: 5, // pre-co-run schema
		Key:    k.Digest,
		Bench:  "mcf",
		Scheme: core.GRPVar.String(),
		Result: &core.Result{Bench: "mcf", Scheme: core.GRPVar},
	}
	data, err := json.Marshal(stale)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(k), data, 0o644); err != nil {
		t.Fatal(err)
	}

	if r, ok := s.Get(k); ok {
		t.Fatalf("schema-5 cell served as a hit: %+v", r)
	}
	if _, err := os.Stat(s.path(k)); !os.IsNotExist(err) {
		t.Fatalf("stale cell still at its live path (stat err %v)", err)
	}
	qpath := filepath.Join(dir, quarantineDirName, k.Digest+".json")
	if _, err := os.Stat(qpath); err != nil {
		t.Fatalf("stale cell not quarantined at %s: %v", qpath, err)
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Quarantined != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want exactly one corrupt+quarantined+miss", st)
	}
}

// TestNewSchemesHaveKeyedVersions pins that the scheme-version axis covers
// the new family: a missing schemeVersions entry would hash as 0 and leave
// no handle to dirty that scheme's cells on its next engine change.
func TestNewSchemesHaveKeyedVersions(t *testing.T) {
	for _, sc := range []core.Scheme{core.GHB, core.GRPAdaptive} {
		if v, ok := schemeVersions[sc]; !ok || v < 1 {
			t.Fatalf("schemeVersions[%v] = %d (present %v), want >= 1", sc, v, ok)
		}
	}
	k1 := cellKey("mcf", core.GHB, core.Options{Factor: workloads.Test}, 42)
	k2 := cellKey("mcf", core.GRPAdaptive, core.Options{Factor: workloads.Test}, 42)
	if k1.Digest == k2.Digest {
		t.Fatal("ghb and grp-adaptive cells share a content address")
	}
}

// TestLegacyEngineSplitsKey pins that the retained legacy engine gets its
// own cache identity: cycle-exact twins or not, a legacy-engine run and a
// new-engine run are different code and must never share a cell.
func TestLegacyEngineSplitsKey(t *testing.T) {
	base := core.Options{Factor: workloads.Test}
	legacy := base
	legacy.LegacyEngine = true
	k1 := cellKey("mcf", core.GRPVar, base, 42)
	k2 := cellKey("mcf", core.GRPVar, legacy, 42)
	if k1.Digest == k2.Digest {
		t.Fatal("LegacyEngine does not split the cell key")
	}
}

// TestAttribSplitsKey pins that an attribution-carrying run gets its own
// cache identity: a plain cell must never satisfy an -attrib request
// (its cached Result has no summary) or vice versa.
func TestAttribSplitsKey(t *testing.T) {
	base := core.Options{Factor: workloads.Test}
	attrib := base
	attrib.Attrib = true
	k1 := cellKey("mcf", core.GRPVar, base, 42)
	k2 := cellKey("mcf", core.GRPVar, attrib, 42)
	if k1.Digest == k2.Digest {
		t.Fatal("Attrib does not split the cell key")
	}
}
