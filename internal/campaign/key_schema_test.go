package campaign

import (
	"testing"

	"grp/internal/core"
	"grp/internal/workloads"
)

// schema2McfGRPVarDigest is the content address the (mcf, grp/var, Test)
// cell had under cache schema 2, recorded immediately before the hot-path
// overhaul. The overhaul changed same-cycle fill ordering (FIFO by issue
// seq), so results cached under the old schema must be unreachable: the
// schema bump to 3 retires this key.
const schema2McfGRPVarDigest = "120b7bf81bb9a4a962ea5e32718e536c8f298e4c017eca8408334c33e01c24e6"

// TestSchemaBumpRetiresOldKeys recomputes the (mcf, grp/var, Test) key
// with today's canonicalization — same recipe that recorded the schema-2
// digest — and demands it moved. If this fails, either the schema was
// rolled back or canonicalize no longer folds the schema in; both would
// let stale pre-overhaul cells serve as cache hits.
func TestSchemaBumpRetiresOldKeys(t *testing.T) {
	if cacheSchemaVersion < 3 {
		t.Fatalf("cacheSchemaVersion = %d, want >= 3 after the hot-path overhaul", cacheSchemaVersion)
	}
	opt := core.Options{Factor: workloads.Test}
	ph, err := newHashMemo().get("mcf", opt.Factor, opt.Policy, false)
	if err != nil {
		t.Fatal(err)
	}
	k := cellKey("mcf", core.GRPVar, opt, ph)
	if k.Digest == schema2McfGRPVarDigest {
		t.Fatalf("(mcf, grp/var, Test) still maps to its schema-2 digest %s; stale cached cells would hit", k.Digest)
	}
}

// TestLegacyEngineSplitsKey pins that the retained legacy engine gets its
// own cache identity: cycle-exact twins or not, a legacy-engine run and a
// new-engine run are different code and must never share a cell.
func TestLegacyEngineSplitsKey(t *testing.T) {
	base := core.Options{Factor: workloads.Test}
	legacy := base
	legacy.LegacyEngine = true
	k1 := cellKey("mcf", core.GRPVar, base, 42)
	k2 := cellKey("mcf", core.GRPVar, legacy, 42)
	if k1.Digest == k2.Digest {
		t.Fatal("LegacyEngine does not split the cell key")
	}
}

// TestAttribSplitsKey pins that an attribution-carrying run gets its own
// cache identity: a plain cell must never satisfy an -attrib request
// (its cached Result has no summary) or vice versa.
func TestAttribSplitsKey(t *testing.T) {
	base := core.Options{Factor: workloads.Test}
	attrib := base
	attrib.Attrib = true
	k1 := cellKey("mcf", core.GRPVar, base, 42)
	k2 := cellKey("mcf", core.GRPVar, attrib, 42)
	if k1.Digest == k2.Digest {
		t.Fatal("Attrib does not split the cell key")
	}
}
