package campaign

import (
	"testing"

	"grp/internal/core"
	"grp/internal/workloads"
)

// schema2McfGRPVarDigest is the content address the (mcf, grp/var, Test)
// cell had under cache schema 2, recorded immediately before the hot-path
// overhaul. The overhaul changed same-cycle fill ordering (FIFO by issue
// seq), so results cached under the old schema must be unreachable: the
// schema bump to 3 retires this key.
const schema2McfGRPVarDigest = "120b7bf81bb9a4a962ea5e32718e536c8f298e4c017eca8408334c33e01c24e6"

// schema4McfGRPVarDigest is the same cell's content address under cache
// schema 4, recorded immediately before the scheme family grew ghb and
// grp-adaptive (and the shared region-queue code gained a capacity
// override). The schema bump to 5 retires it.
const schema4McfGRPVarDigest = "4a5244964b9d72e94295a8b6da4e061e9e2ba3c1a026417e3e74c9b988e48cce"

// TestSchemaBumpRetiresOldKeys recomputes the (mcf, grp/var, Test) key
// with today's canonicalization — same recipe that recorded the schema-2
// digest — and demands it moved. If this fails, either the schema was
// rolled back or canonicalize no longer folds the schema in; both would
// let stale pre-overhaul cells serve as cache hits.
func TestSchemaBumpRetiresOldKeys(t *testing.T) {
	if cacheSchemaVersion < 3 {
		t.Fatalf("cacheSchemaVersion = %d, want >= 3 after the hot-path overhaul", cacheSchemaVersion)
	}
	opt := core.Options{Factor: workloads.Test}
	ph, err := newHashMemo().get("mcf", opt.Factor, opt.Policy, false)
	if err != nil {
		t.Fatal(err)
	}
	k := cellKey("mcf", core.GRPVar, opt, ph)
	if k.Digest == schema2McfGRPVarDigest {
		t.Fatalf("(mcf, grp/var, Test) still maps to its schema-2 digest %s; stale cached cells would hit", k.Digest)
	}
	if k.Digest == schema4McfGRPVarDigest {
		t.Fatalf("(mcf, grp/var, Test) still maps to its schema-4 digest %s; stale pre-scheme-family cells would hit", k.Digest)
	}
}

// TestNewSchemesHaveKeyedVersions pins that the scheme-version axis covers
// the new family: a missing schemeVersions entry would hash as 0 and leave
// no handle to dirty that scheme's cells on its next engine change.
func TestNewSchemesHaveKeyedVersions(t *testing.T) {
	for _, sc := range []core.Scheme{core.GHB, core.GRPAdaptive} {
		if v, ok := schemeVersions[sc]; !ok || v < 1 {
			t.Fatalf("schemeVersions[%v] = %d (present %v), want >= 1", sc, v, ok)
		}
	}
	k1 := cellKey("mcf", core.GHB, core.Options{Factor: workloads.Test}, 42)
	k2 := cellKey("mcf", core.GRPAdaptive, core.Options{Factor: workloads.Test}, 42)
	if k1.Digest == k2.Digest {
		t.Fatal("ghb and grp-adaptive cells share a content address")
	}
}

// TestLegacyEngineSplitsKey pins that the retained legacy engine gets its
// own cache identity: cycle-exact twins or not, a legacy-engine run and a
// new-engine run are different code and must never share a cell.
func TestLegacyEngineSplitsKey(t *testing.T) {
	base := core.Options{Factor: workloads.Test}
	legacy := base
	legacy.LegacyEngine = true
	k1 := cellKey("mcf", core.GRPVar, base, 42)
	k2 := cellKey("mcf", core.GRPVar, legacy, 42)
	if k1.Digest == k2.Digest {
		t.Fatal("LegacyEngine does not split the cell key")
	}
}

// TestAttribSplitsKey pins that an attribution-carrying run gets its own
// cache identity: a plain cell must never satisfy an -attrib request
// (its cached Result has no summary) or vice versa.
func TestAttribSplitsKey(t *testing.T) {
	base := core.Options{Factor: workloads.Test}
	attrib := base
	attrib.Attrib = true
	k1 := cellKey("mcf", core.GRPVar, base, 42)
	k2 := cellKey("mcf", core.GRPVar, attrib, 42)
	if k1.Digest == k2.Digest {
		t.Fatal("Attrib does not split the cell key")
	}
}
