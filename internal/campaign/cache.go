package campaign

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"grp/internal/core"
)

// DefaultCacheDir is where campaign results persist between invocations.
const DefaultCacheDir = ".grpcache"

// defaultMemEntries bounds the in-memory LRU in front of the disk store.
const defaultMemEntries = 512

// quarantineDirName is where corrupt cell files are moved for post-mortem
// inspection instead of being re-parsed (and re-failed) on every miss.
const quarantineDirName = "quarantine"

// diskErrThreshold is how many consecutive disk failures the store
// tolerates before degrading to memory-only operation. One failed write
// may be a blip; several in a row mean the disk is gone (full, read-only,
// yanked) and every further attempt just burns sweep time.
const diskErrThreshold = 3

// CacheStats counts cache traffic for one engine's lifetime.
type CacheStats struct {
	// Hits is every cell served from the cache (memory or disk).
	Hits uint64
	// MemHits is the subset of Hits served without touching disk.
	MemHits uint64
	// Misses is every cell that had to simulate.
	Misses uint64
	// Stores is cells persisted after simulating.
	Stores uint64
	// Corrupt is cell files that failed to decode or did not match their
	// key (torn writes, stale schemas, digest collisions).
	Corrupt uint64
	// Quarantined is the subset of Corrupt successfully moved aside into
	// the quarantine directory.
	Quarantined uint64
	// Retries is cell attempts re-run after a transient failure. It is
	// engine-level traffic, reported here so one counter block covers the
	// sweep's whole infrastructure story.
	Retries uint64
	// Deduped is cells served by subscribing to an identical in-flight
	// simulation (engine-level, like Retries; requires Config.Dedup).
	Deduped uint64
}

// cellFile is the on-disk envelope of one cached cell. The full key is
// stored so a digest collision or a stale file from an older layout is
// detected and treated as a miss rather than silently returned.
type cellFile struct {
	Schema int          `json:"schema"`
	Key    string       `json:"key"`
	Bench  string       `json:"bench"`
	Scheme string       `json:"scheme"`
	Result *core.Result `json:"result"`
}

// decodeCell parses a cell file's bytes against the digest it should
// hold. It never panics on arbitrary input; any mismatch is (nil, false),
// i.e. a miss. Split out so the fuzz harness can drive it directly.
func decodeCell(data []byte, digest string) (*core.Result, bool) {
	var cf cellFile
	if err := json.Unmarshal(data, &cf); err != nil ||
		cf.Schema != cacheSchemaVersion || cf.Key != digest || cf.Result == nil {
		return nil, false
	}
	return cf.Result, true
}

// Store is the content-addressed result cache: an in-memory LRU in front
// of one JSON file per cell under dir. All methods are safe for
// concurrent use by the campaign workers. Disk trouble never fails a
// sweep: corrupt files are quarantined and re-simulated, and persistent
// I/O errors degrade the store to its memory layer with a warning.
type Store struct {
	dir      string
	chaos    *Chaos                       // injection hooks; nil in production
	warnf    func(string, ...interface{}) // non-fatal warning sink; may be nil
	disabled atomic.Bool                  // disk layer off after repeated errors

	mu       sync.Mutex
	lru      *list.List // front = most recently used; values are *storeEntry
	byKey    map[string]*list.Element
	cap      int
	stats    CacheStats
	diskErrs int // consecutive; reset on any disk success
}

type storeEntry struct {
	digest string
	res    *core.Result
}

// NewStore opens (lazily creating) a cache rooted at dir. memEntries
// bounds the in-memory layer; <= 0 uses the default. Orphaned cell-*.tmp
// files — the debris of writers killed mid-Put — are swept on open.
func NewStore(dir string, memEntries int) *Store {
	if dir == "" {
		dir = DefaultCacheDir
	}
	if memEntries <= 0 {
		memEntries = defaultMemEntries
	}
	s := &Store{dir: dir, lru: list.New(), byKey: map[string]*list.Element{}, cap: memEntries}
	s.sweepOrphans()
	return s
}

// sweepOrphans removes leftover temp files from killed writers. A live
// concurrent writer's temp file could be swept too, which costs that
// writer one failed rename and a re-simulation — never a corrupt cell,
// because only complete files are ever renamed into place.
func (s *Store) sweepOrphans() {
	orphans, err := filepath.Glob(filepath.Join(s.dir, "cell-*.tmp"))
	if err != nil {
		return
	}
	for _, o := range orphans {
		os.Remove(o)
	}
}

// Dir returns the cache's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the cache counters.
func (s *Store) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Store) path(k CellKey) string {
	return filepath.Join(s.dir, k.Digest+".json")
}

func (s *Store) warn(format string, args ...interface{}) {
	if s.warnf != nil {
		s.warnf(format, args...)
	}
}

// noteDiskErr counts a disk failure; past the threshold the store
// degrades to memory-only with one warning rather than failing the sweep
// (results still simulate correctly, they just stop persisting).
func (s *Store) noteDiskErr(op string, err error) {
	s.mu.Lock()
	s.diskErrs++
	over := s.diskErrs >= diskErrThreshold
	s.mu.Unlock()
	if over && !s.disabled.Swap(true) {
		s.warn("campaign: cache: %d consecutive disk errors (last: %s: %v); continuing without the on-disk cache", diskErrThreshold, op, err)
	}
}

// noteDiskOK resets the consecutive-error counter.
func (s *Store) noteDiskOK() {
	s.mu.Lock()
	s.diskErrs = 0
	s.mu.Unlock()
}

// Get returns the cached result for the key, consulting memory first and
// falling back to disk. A missing file is a miss; a corrupt or mismatched
// file is a miss AND is moved into the quarantine directory so the next
// run does not trip over it again.
func (s *Store) Get(k CellKey) (*core.Result, bool) {
	s.mu.Lock()
	if el, ok := s.byKey[k.Digest]; ok {
		s.lru.MoveToFront(el)
		s.stats.Hits++
		s.stats.MemHits++
		r := el.Value.(*storeEntry).res
		s.mu.Unlock()
		return r, true
	}
	s.mu.Unlock()

	if s.disabled.Load() {
		s.miss()
		return nil, false
	}
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		s.miss()
		return nil, false
	}
	r, ok := decodeCell(data, k.Digest)
	if !ok {
		s.quarantine(k)
		s.miss()
		return nil, false
	}
	s.mu.Lock()
	s.insertLocked(k.Digest, r)
	s.stats.Hits++
	s.mu.Unlock()
	return r, true
}

// quarantine moves a corrupt cell file aside for inspection.
func (s *Store) quarantine(k CellKey) {
	qdir := filepath.Join(s.dir, quarantineDirName)
	moved := false
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if err := os.Rename(s.path(k), filepath.Join(qdir, k.Digest+".json")); err == nil {
			moved = true
		}
	}
	if !moved {
		// Can't move it? Removing still stops the re-parse loop; the cell
		// re-simulates either way.
		os.Remove(s.path(k))
	}
	s.mu.Lock()
	s.stats.Corrupt++
	if moved {
		s.stats.Quarantined++
	}
	s.mu.Unlock()
	s.warn("campaign: cache: quarantined corrupt cell %.12s (%s/%s)", k.Digest, k.Bench, k.Scheme)
}

func (s *Store) miss() {
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
}

// Put records a freshly simulated cell: the memory layer first — the
// result is valid regardless of what the disk does — then the disk. A
// persist failure is a warning, not a cell failure; repeated failures
// degrade the store to memory-only. The error return covers encoding
// bugs only.
func (s *Store) Put(k CellKey, r *core.Result) error {
	data, err := json.Marshal(cellFile{
		Schema: cacheSchemaVersion, Key: k.Digest,
		Bench: k.Bench, Scheme: k.Scheme.String(), Result: r,
	})
	if err != nil {
		return fmt.Errorf("campaign: encoding cell %s/%s: %w", k.Bench, k.Scheme, err)
	}
	s.mu.Lock()
	s.insertLocked(k.Digest, r)
	s.stats.Stores++
	s.mu.Unlock()
	if s.disabled.Load() {
		return nil
	}
	if err := s.persist(k, data); err != nil {
		s.warn("campaign: cache: persisting cell %.12s: %v", k.Digest, err)
		s.noteDiskErr("put", err)
		return nil
	}
	s.noteDiskOK()
	return nil
}

// persist writes the encoded cell to a temp file and renames it into
// place, so concurrent writers of the same key (two campaigns sharing a
// cache directory) never interleave and a crash never leaves a partial
// file under the final name. Chaos hooks model exactly those crashes.
func (s *Store) persist(k CellKey, data []byte) error {
	if s.chaos.failPut() {
		return fmt.Errorf("chaos: injected put failure")
	}
	if s.chaos.tornWrite() {
		// A torn write IS the crash it models: the partial bytes land
		// under the final name, as if the process died mid-write with no
		// temp-file discipline. Get must quarantine this on next open.
		half := data[:len(data)/2]
		os.WriteFile(s.path(k), half, 0o644)
		return nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "cell-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// insertLocked adds (or refreshes) a memory-layer entry, evicting the
// least recently used entry past capacity. Callers hold s.mu.
func (s *Store) insertLocked(digest string, r *core.Result) {
	if el, ok := s.byKey[digest]; ok {
		el.Value.(*storeEntry).res = r
		s.lru.MoveToFront(el)
		return
	}
	s.byKey[digest] = s.lru.PushFront(&storeEntry{digest: digest, res: r})
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.byKey, back.Value.(*storeEntry).digest)
	}
}
