package campaign

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"grp/internal/core"
)

// DefaultCacheDir is where campaign results persist between invocations.
const DefaultCacheDir = ".grpcache"

// defaultMemEntries bounds the in-memory LRU in front of the disk store.
const defaultMemEntries = 512

// CacheStats counts cache traffic for one engine's lifetime.
type CacheStats struct {
	// Hits is every cell served from the cache (memory or disk).
	Hits uint64
	// MemHits is the subset of Hits served without touching disk.
	MemHits uint64
	// Misses is every cell that had to simulate.
	Misses uint64
	// Stores is cells persisted after simulating.
	Stores uint64
}

// cellFile is the on-disk envelope of one cached cell. The full key is
// stored so a digest collision or a stale file from an older layout is
// detected and treated as a miss rather than silently returned.
type cellFile struct {
	Schema int          `json:"schema"`
	Key    string       `json:"key"`
	Bench  string       `json:"bench"`
	Scheme string       `json:"scheme"`
	Result *core.Result `json:"result"`
}

// Store is the content-addressed result cache: an in-memory LRU in front
// of one JSON file per cell under dir. All methods are safe for
// concurrent use by the campaign workers.
type Store struct {
	dir string

	mu    sync.Mutex
	lru   *list.List // front = most recently used; values are *storeEntry
	byKey map[string]*list.Element
	cap   int
	stats CacheStats
}

type storeEntry struct {
	digest string
	res    *core.Result
}

// NewStore opens (lazily creating) a cache rooted at dir. memEntries
// bounds the in-memory layer; <= 0 uses the default.
func NewStore(dir string, memEntries int) *Store {
	if dir == "" {
		dir = DefaultCacheDir
	}
	if memEntries <= 0 {
		memEntries = defaultMemEntries
	}
	return &Store{dir: dir, lru: list.New(), byKey: map[string]*list.Element{}, cap: memEntries}
}

// Dir returns the cache's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the cache counters.
func (s *Store) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Store) path(k CellKey) string {
	return filepath.Join(s.dir, k.Digest+".json")
}

// Get returns the cached result for the key, consulting memory first and
// falling back to disk. A missing, corrupt, or mismatched file is a miss.
func (s *Store) Get(k CellKey) (*core.Result, bool) {
	s.mu.Lock()
	if el, ok := s.byKey[k.Digest]; ok {
		s.lru.MoveToFront(el)
		s.stats.Hits++
		s.stats.MemHits++
		r := el.Value.(*storeEntry).res
		s.mu.Unlock()
		return r, true
	}
	s.mu.Unlock()

	data, err := os.ReadFile(s.path(k))
	if err != nil {
		s.miss()
		return nil, false
	}
	var cf cellFile
	if err := json.Unmarshal(data, &cf); err != nil ||
		cf.Schema != cacheSchemaVersion || cf.Key != k.Digest || cf.Result == nil {
		s.miss()
		return nil, false
	}
	s.mu.Lock()
	s.insertLocked(k.Digest, cf.Result)
	s.stats.Hits++
	s.mu.Unlock()
	return cf.Result, true
}

func (s *Store) miss() {
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
}

// Put persists a freshly simulated cell to disk and the memory layer. The
// file is written to a temp name and renamed so concurrent writers of the
// same key (two campaigns sharing a cache directory) never interleave.
func (s *Store) Put(k CellKey, r *core.Result) error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("campaign: creating cache dir: %w", err)
	}
	data, err := json.Marshal(cellFile{
		Schema: cacheSchemaVersion, Key: k.Digest,
		Bench: k.Bench, Scheme: k.Scheme.String(), Result: r,
	})
	if err != nil {
		return fmt.Errorf("campaign: encoding cell %s/%s: %w", k.Bench, k.Scheme, err)
	}
	tmp, err := os.CreateTemp(s.dir, "cell-*.tmp")
	if err != nil {
		return fmt.Errorf("campaign: writing cell: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: writing cell: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: writing cell: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: writing cell: %w", err)
	}
	s.mu.Lock()
	s.insertLocked(k.Digest, r)
	s.stats.Stores++
	s.mu.Unlock()
	return nil
}

// insertLocked adds (or refreshes) a memory-layer entry, evicting the
// least recently used entry past capacity. Callers hold s.mu.
func (s *Store) insertLocked(digest string, r *core.Result) {
	if el, ok := s.byKey[digest]; ok {
		el.Value.(*storeEntry).res = r
		s.lru.MoveToFront(el)
		return
	}
	s.byKey[digest] = s.lru.PushFront(&storeEntry{digest: digest, res: r})
	for s.lru.Len() > s.cap {
		back := s.lru.Back()
		s.lru.Remove(back)
		delete(s.byKey, back.Value.(*storeEntry).digest)
	}
}
