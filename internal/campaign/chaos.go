// Infra-chaos injection: deterministic infrastructure faults for the
// campaign engine, mirroring what internal/faults does for the simulated
// hardware. Where a fault plan perturbs DRAM banks and prefetch hints,
// a chaos plan perturbs the experiment fleet itself — panicking cells,
// slow cells, torn cache writes, failed disks, and a hard kill mid-sweep
// — so the crash-safety machinery (recover/retry, quarantine, journal
// resume) is exercised on demand instead of waiting for real outages.
// Chaos is a dev/test facility: grpsweep exposes it behind -chaos and
// the chaos test suite drives it directly.
package campaign

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Chaos is one deterministic infrastructure-fault plan. Cell-targeted
// faults select every Nth cell by grid index, so the same plan hits the
// same cells at any worker count; store-targeted faults count operations.
type Chaos struct {
	// PanicEvery n makes every nth cell (index % n == n-1) panic.
	PanicEvery int
	// PanicAttempts is how many leading attempts of a chosen cell panic
	// (default 1, so the first retry succeeds); < 0 panics every attempt.
	PanicAttempts int
	// SlowEvery n makes every nth cell sleep SlowDelay before simulating.
	SlowEvery int
	// SlowAttempts is how many leading attempts are slow (default 1).
	SlowAttempts int
	// SlowDelay is the injected per-cell delay (default 100ms).
	SlowDelay time.Duration
	// TornEvery n truncates every nth cache store mid-file, modeling a
	// torn write that resume must quarantine.
	TornEvery int
	// FailPuts fails the first n cache persists with an injected disk
	// error, driving the store's degrade-to-cache-off path.
	FailPuts int
	// KillAfter n hard-kills the campaign via Kill once n cells have
	// completed. Kill defaults to os.Exit(3) — a real crash, no defers.
	KillAfter int
	// Kill overrides what KillAfter does (tests cancel a context instead
	// of exiting the process).
	Kill func()

	puts     atomic.Int64
	putFails atomic.Int64
}

// ParseChaos parses a chaos spec: comma-separated key=value settings
// from panic, panicattempts, slow, slowms, torn, failput, kill, e.g.
// "panic=2,torn=3,kill=5".
func ParseChaos(spec string) (*Chaos, error) {
	c := &Chaos{}
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("campaign: empty chaos spec")
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("campaign: chaos setting %q is not key=value", part)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("campaign: chaos setting %q: want a non-negative integer", part)
		}
		switch k {
		case "panic":
			c.PanicEvery = n
		case "panicattempts":
			c.PanicAttempts = n
		case "slow":
			c.SlowEvery = n
		case "slowms":
			c.SlowDelay = time.Duration(n) * time.Millisecond
		case "torn":
			c.TornEvery = n
		case "failput":
			c.FailPuts = n
		case "kill":
			c.KillAfter = n
		default:
			return nil, fmt.Errorf("campaign: unknown chaos key %q (panic, panicattempts, slow, slowms, torn, failput, kill)", k)
		}
	}
	return c, nil
}

// panicsCell reports whether the given attempt of cell idx should panic.
func (c *Chaos) panicsCell(idx, attempt int) bool {
	if c == nil || c.PanicEvery <= 0 || idx%c.PanicEvery != c.PanicEvery-1 {
		return false
	}
	if c.PanicAttempts < 0 {
		return true
	}
	return attempt < max(1, c.PanicAttempts)
}

// slowsCell returns the injected delay for the given attempt of cell
// idx, or 0.
func (c *Chaos) slowsCell(idx, attempt int) time.Duration {
	if c == nil || c.SlowEvery <= 0 || idx%c.SlowEvery != c.SlowEvery-1 {
		return 0
	}
	if attempt >= max(1, c.SlowAttempts) {
		return 0
	}
	if c.SlowDelay > 0 {
		return c.SlowDelay
	}
	return 100 * time.Millisecond
}

// tornWrite reports whether this cache store should be truncated.
func (c *Chaos) tornWrite() bool {
	if c == nil || c.TornEvery <= 0 {
		return false
	}
	return (c.puts.Add(1)-1)%int64(c.TornEvery) == int64(c.TornEvery)-1
}

// failPut reports whether this cache persist should fail outright.
func (c *Chaos) failPut() bool {
	if c == nil || c.FailPuts <= 0 {
		return false
	}
	return c.putFails.Add(1) <= int64(c.FailPuts)
}

// kill invokes the configured kill action.
func (c *Chaos) kill() {
	if c.Kill != nil {
		c.Kill()
		return
	}
	os.Exit(3)
}
