package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"grp/internal/core"
)

// chaosGrid is a small grid with enough cells to land every injection
// pattern: 3 benches × 2 schemes = 6 cells.
func chaosGrid() []Job {
	var jobs []Job
	for _, b := range testBenches {
		for _, sc := range []core.Scheme{core.NoPrefetch, core.GRPVar} {
			jobs = append(jobs, Job{Bench: b, Scheme: sc, Opt: testOpt()})
		}
	}
	return jobs
}

// fingerprintResults serializes a result slice for byte-identity checks.
func fingerprintResults(t *testing.T, rs []*core.Result) string {
	t.Helper()
	data, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// fastRetry keeps chaos tests quick without changing retry semantics.
var fastRetry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Millisecond}

// TestParseChaos covers the spec grammar.
func TestParseChaos(t *testing.T) {
	c, err := ParseChaos("panic=2,torn=3,kill=5,slowms=7")
	if err != nil {
		t.Fatal(err)
	}
	if c.PanicEvery != 2 || c.TornEvery != 3 || c.KillAfter != 5 || c.SlowDelay != 7*time.Millisecond {
		t.Fatalf("parsed %+v", c)
	}
	for _, bad := range []string{"", "panic", "panic=x", "panic=-1", "frob=1"} {
		if _, err := ParseChaos(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

// TestChaosPanicRetrySucceeds: injected panics on the first attempt are
// isolated by recover() and cleared by the retry, so the sweep still
// completes with full results.
func TestChaosPanicRetrySucceeds(t *testing.T) {
	jobs := chaosGrid()
	eng := New(Config{Jobs: 4, Retry: fastRetry, Chaos: &Chaos{PanicEvery: 2}})
	rs, err := eng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r == nil {
			t.Fatalf("cell %d has no result", i)
		}
	}
	// Cells 1, 3, 5 panic once each and then succeed.
	if st := eng.CacheStats(); st.Retries != 3 {
		t.Fatalf("want 3 retries, got %+v", st)
	}
}

// TestChaosPanicAborts: a cell that panics on every attempt must surface
// a structured PanicError carrying the cell identity and a stack.
func TestChaosPanicAborts(t *testing.T) {
	jobs := chaosGrid()
	eng := New(Config{Jobs: 2, Retry: fastRetry, Chaos: &Chaos{PanicEvery: 2, PanicAttempts: -1}})
	_, err := eng.Run(context.Background(), jobs)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
	// Lowest-index determinism: the first panicking cell is index 1.
	if pe.Index != 1 || pe.Stack == "" || pe.Value == "" {
		t.Fatalf("panic report incomplete: index=%d value=%q stack present=%t", pe.Index, pe.Value, pe.Stack != "")
	}
	var ce *CellError
	if !errors.As(err, &ce) || ce.Attempts != fastRetry.MaxAttempts {
		t.Fatalf("want CellError after %d attempts, got %v", fastRetry.MaxAttempts, err)
	}
}

// TestChaosKeepGoing: with -keep-going semantics the sweep completes,
// healthy cells have results, and the doomed cells appear as ordered
// failure records instead of an error.
func TestChaosKeepGoing(t *testing.T) {
	jobs := chaosGrid()
	eng := New(Config{Jobs: 4, KeepGoing: true, Retry: fastRetry,
		Chaos: &Chaos{PanicEvery: 2, PanicAttempts: -1}})
	rep, err := eng.RunReport(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failures) != 3 {
		t.Fatalf("want 3 failures, got %+v", rep.Failures)
	}
	for i, f := range rep.Failures {
		if want := 2*i + 1; f.Index != want {
			t.Fatalf("failure %d at index %d, want %d (ordered reporting)", i, f.Index, want)
		}
		if !f.Panic || f.Attempts != fastRetry.MaxAttempts {
			t.Fatalf("failure record incomplete: %+v", f)
		}
		if rep.Results[f.Index] != nil {
			t.Fatalf("failed cell %d has a result", f.Index)
		}
	}
	for i := 0; i < len(jobs); i += 2 {
		if rep.Results[i] == nil {
			t.Fatalf("healthy cell %d lost its result", i)
		}
	}
}

// TestChaosSlowCellTimeout: a slow first attempt overruns the per-cell
// deadline, retries without the injected delay, and succeeds.
func TestChaosSlowCellTimeout(t *testing.T) {
	jobs := chaosGrid()
	eng := New(Config{
		Jobs: 2,
		// Generous deadline: a healthy test-factor cell is ~10ms, but race-
		// instrumented CI runs are an order of magnitude slower. Only the
		// injected 30s delay may overrun it.
		CellTimeout: 2 * time.Second,
		Retry:       fastRetry,
		Chaos:       &Chaos{SlowEvery: 3, SlowDelay: 30 * time.Second},
	})
	rs, err := eng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r == nil {
			t.Fatalf("cell %d has no result", i)
		}
	}
	if st := eng.CacheStats(); st.Retries != 2 {
		t.Fatalf("want 2 retries (cells 2 and 5 slow once), got %+v", st)
	}
}

// TestChaosTornWriteQuarantinedOnReuse: torn cache writes land as corrupt
// files; the next campaign over the same cache must quarantine them,
// re-simulate, and still produce results identical to a clean run.
func TestChaosTornWriteQuarantinedOnReuse(t *testing.T) {
	dir := t.TempDir()
	jobs := chaosGrid()

	clean := New(Config{Jobs: 2})
	want, err := clean.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	// Every persist in the torn run truncates mid-file.
	torn := New(Config{Jobs: 2, Cache: true, CacheDir: dir, Chaos: &Chaos{TornEvery: 1}})
	if _, err := torn.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}

	after := New(Config{Jobs: 2, Cache: true, CacheDir: dir})
	got, err := after.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	st := after.CacheStats()
	if st.Hits != 0 || st.Corrupt != uint64(len(jobs)) || st.Quarantined != uint64(len(jobs)) {
		t.Fatalf("want every cell corrupt+quarantined and re-simulated, got %+v", st)
	}
	q, err := filepath.Glob(filepath.Join(dir, quarantineDirName, "*.json"))
	if err != nil || len(q) != len(jobs) {
		t.Fatalf("want %d quarantined files, got %v (%v)", len(jobs), q, err)
	}
	if fingerprintResults(t, got) != fingerprintResults(t, want) {
		t.Fatal("results after quarantine differ from a clean run")
	}
}

// TestChaosFailPutDegrades: persistent injected disk errors flip the
// store to memory-only with a warning instead of failing the sweep.
func TestChaosFailPutDegrades(t *testing.T) {
	dir := t.TempDir()
	jobs := chaosGrid()
	var warned bool
	eng := New(Config{
		Jobs: 1, Cache: true, CacheDir: dir,
		Chaos: &Chaos{FailPuts: 100},
		Warnf: func(string, ...interface{}) { warned = true },
	})
	rs, err := eng.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r == nil {
			t.Fatalf("cell %d has no result", i)
		}
	}
	if !warned {
		t.Fatal("degrading to cache-off did not warn")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 0 {
		t.Fatalf("failed puts left %d cell files", len(files))
	}
	// The memory layer still serves the same engine's re-run.
	eng2 := New(Config{Jobs: 1, Cache: true, CacheDir: dir})
	rs2, err := eng2.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprintResults(t, rs2) != fingerprintResults(t, rs) {
		t.Fatal("results differ after degrade")
	}
}

// killRun runs the grid with a chaos kill at the given completion count,
// emulating a crash: the run context is cancelled (workers drain, the
// process state is discarded) while the journal and cache stay on disk.
func killRun(t *testing.T, dir string, jobs []Job, jobsN, killAfter int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	chaos := &Chaos{PanicEvery: 4, TornEvery: 5, KillAfter: killAfter, Kill: cancel}
	eng := New(Config{Jobs: jobsN, Cache: true, CacheDir: dir, Retry: fastRetry, Chaos: chaos})
	keys, err := eng.Keys(jobs)
	if err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(dir, "chaos-grid", keys, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	eng.AttachJournal(j)
	if _, err := eng.RunReport(ctx, jobs); err == nil && killAfter < len(jobs) {
		t.Fatal("killed run reported success")
	}
}

// TestKillResumeByteIdentical is the chaos gate: a sweep killed mid-run
// (with cell panics and torn cache writes also injected) and then resumed
// produces results byte-identical to an uninterrupted run, at one worker
// and at eight.
func TestKillResumeByteIdentical(t *testing.T) {
	jobs := chaosGrid()
	ref := New(Config{Jobs: 2})
	refRes, err := ref.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprintResults(t, refRes)

	for _, jobsN := range []int{1, 8} {
		for _, killAfter := range []int{1, 3, 5} {
			dir := t.TempDir()
			killRun(t, dir, jobs, jobsN, killAfter)

			// Resume: same spec, same cache dir, chaos gone (the injected
			// faults died with the process).
			eng := New(Config{Jobs: jobsN, Cache: true, CacheDir: dir, Retry: fastRetry})
			keys, err := eng.Keys(jobs)
			if err != nil {
				t.Fatal(err)
			}
			j, err := OpenJournal(dir, "chaos-grid", keys, true)
			if err != nil {
				t.Fatalf("jobs=%d kill=%d: reopening journal: %v", jobsN, killAfter, err)
			}
			eng.AttachJournal(j)
			if j.CompletedCount() == 0 && killAfter > 1 {
				t.Errorf("jobs=%d kill=%d: journal recorded no completions", jobsN, killAfter)
			}
			got, err := eng.Run(context.Background(), jobs)
			j.Close()
			if err != nil {
				t.Fatalf("jobs=%d kill=%d: resume: %v", jobsN, killAfter, err)
			}
			if fingerprintResults(t, got) != want {
				t.Errorf("jobs=%d kill=%d: resumed artifact differs from uninterrupted run", jobsN, killAfter)
			}
		}
	}
}

// TestChaosDeterministicAcrossWorkers: the same chaos plan must target
// the same cells at any worker count (index-keyed, not schedule-keyed).
func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	jobs := chaosGrid()
	failureSet := func(jobsN int) []int {
		eng := New(Config{Jobs: jobsN, KeepGoing: true, Retry: fastRetry,
			Chaos: &Chaos{PanicEvery: 3, PanicAttempts: -1}})
		rep, err := eng.RunReport(context.Background(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		var idx []int
		for _, f := range rep.Failures {
			idx = append(idx, f.Index)
		}
		return idx
	}
	one := failureSet(1)
	eight := failureSet(8)
	if len(one) != len(eight) {
		t.Fatalf("failure sets differ: jobs=1 %v, jobs=8 %v", one, eight)
	}
	for i := range one {
		if one[i] != eight[i] {
			t.Fatalf("failure sets differ: jobs=1 %v, jobs=8 %v", one, eight)
		}
	}
}

// TestStoreOrphanSweep: leftover cell-*.tmp files from a killed writer
// are removed when the store opens.
func TestStoreOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		f, err := os.CreateTemp(dir, "cell-*.tmp")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString("partial")
		f.Close()
	}
	NewStore(dir, 0)
	left, _ := filepath.Glob(filepath.Join(dir, "cell-*.tmp"))
	if len(left) != 0 {
		t.Fatalf("orphan sweep left %v", left)
	}
}
