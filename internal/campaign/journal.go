package campaign

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"
)

// The sweep journal is the durable record of a campaign: a manifest of
// the grid's cell keys in canonical order plus an append-only completion
// log under <cacheDir>/journal/<sweepID>/. The result cache makes a
// completed cell cheap to replay; the journal makes the *campaign state*
// survive a crash — which cells are done, which failed, and whether
// another process is already running this sweep (the lock file). A
// killed sweep resumes by reopening the same journal: completed cells
// come back as cache hits and only the remainder simulates.
//
// Log appends are group-committed: each record is written immediately
// and fsynced only when the last sync is at least journalSyncInterval
// old, so the sync rides on a later append (or Close). A crash can
// therefore lose at most the last interval's completions — which resume
// simply re-runs, since the cache already holds most of them — in
// exchange for not paying one fsync per cell on fast sweeps.

// journalSchemaVersion invalidates journals across layout changes.
const journalSchemaVersion = 1

// journalSyncInterval bounds how stale the on-disk log may be. 100ms
// keeps the steady-state fsync cost of a serial sweep under 2% even on
// filesystems where a sync costs milliseconds, and a crash re-runs at
// most 100ms worth of cells.
const journalSyncInterval = 100 * time.Millisecond

// ErrLocked reports that another live campaign holds the sweep's lock.
var ErrLocked = fmt.Errorf("campaign: sweep is locked by another running campaign")

// SweepID content-addresses a campaign: the SHA-256 over its cells' keys
// in canonical grid order (truncated for filenames). Two campaigns with
// the same grid and configuration share an ID — which is exactly when
// resuming one from the other's journal is sound.
func SweepID(keys []CellKey) string {
	h := sha256.New()
	fmt.Fprintf(h, "journal-schema=%d\n", journalSchemaVersion)
	for _, k := range keys {
		h.Write([]byte(k.Digest))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// journalManifest is the on-disk description of the sweep grid.
type journalManifest struct {
	Schema int            `json:"schema"`
	ID     string         `json:"id"`
	Spec   string         `json:"spec,omitempty"`
	Cells  []manifestCell `json:"cells"`
}

type manifestCell struct {
	Bench  string `json:"bench"`
	Scheme string `json:"scheme"`
	Key    string `json:"key"`
}

// logRecord is one line of the completion log.
type logRecord struct {
	I      int    `json:"i"`
	Key    string `json:"key"`
	Status string `json:"s"` // "done" or "fail"
	Err    string `json:"err,omitempty"`
}

// Journal is the durable campaign state. All methods are safe for
// concurrent use by the worker pool.
type Journal struct {
	dir      string
	id       string
	lockPath string
	lockFile *os.File // holds the flock while the journal is open

	mu        sync.Mutex
	f         *os.File
	done      map[string]bool // completed cell digests
	failed    map[string]string
	lastSync  time.Time
	dirty     bool
	syncEvery time.Duration
}

// OpenJournal opens (or, with resume, reopens) the journal for a sweep
// under cacheDir. keys is the grid's cell keys in canonical order; spec
// is recorded in the manifest for humans. Without resume any previous
// journal for this sweep is discarded. With resume the manifest must
// match the current grid exactly — a changed spec or configuration is a
// different sweep and cannot resume this one.
func OpenJournal(cacheDir, spec string, keys []CellKey, resume bool) (*Journal, error) {
	if cacheDir == "" {
		cacheDir = DefaultCacheDir
	}
	id := SweepID(keys)
	dir := filepath.Join(cacheDir, "journal", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: creating journal dir: %w", err)
	}
	j := &Journal{
		dir:       dir,
		id:        id,
		lockPath:  filepath.Join(dir, "lock"),
		done:      map[string]bool{},
		failed:    map[string]string{},
		syncEvery: journalSyncInterval,
	}
	if err := j.acquireLock(); err != nil {
		return nil, err
	}
	manifestPath := filepath.Join(dir, "manifest.json")
	logPath := filepath.Join(dir, "log")
	if resume {
		if err := j.loadManifest(manifestPath, keys); err != nil {
			j.releaseLock()
			return nil, err
		}
		if err := j.loadLog(logPath, keys); err != nil {
			j.releaseLock()
			return nil, err
		}
	} else {
		os.Remove(logPath)
		if err := writeManifest(manifestPath, id, spec, keys); err != nil {
			j.releaseLock()
			return nil, err
		}
	}
	f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		j.releaseLock()
		return nil, fmt.Errorf("campaign: opening journal log: %w", err)
	}
	j.f = f
	// Start the group-commit clock now: the first completion should
	// coalesce like any other, not pay a guaranteed sync.
	j.lastSync = time.Now()
	return j, nil
}

// OpenOrResumeJournal resumes the sweep's journal when one exists and
// matches the grid, and opens a fresh one otherwise. Long-running
// drivers (grpserve) use it so a resubmitted or restart-recovered sweep
// transparently picks up its prior completions; ErrLocked still means a
// live campaign owns the sweep and passes through unchanged.
func OpenOrResumeJournal(cacheDir, spec string, keys []CellKey) (*Journal, error) {
	j, err := OpenJournal(cacheDir, spec, keys, true)
	if err == nil || errors.Is(err, ErrLocked) {
		return j, err
	}
	// No prior journal (or an unusable one): start fresh. A manifest
	// mismatch cannot happen here — the journal directory is keyed by
	// the sweep's content address — so anything unreadable is debris.
	return OpenJournal(cacheDir, spec, keys, false)
}

// ID returns the sweep's content address.
func (j *Journal) ID() string { return j.id }

// Dir returns the journal's directory.
func (j *Journal) Dir() string { return j.dir }

// acquireLock takes the sweep lock: an exclusive non-blocking flock on
// the lock file, with the owner's pid written inside for diagnostics.
// The kernel releases a flock the instant its holder dies — kill -9
// included — so a lock left by a dead owner is acquirable immediately
// and "stealing" it is just overwriting the stale pid; there is no
// read-check-remove window in which two stealers can both win, which
// the old pid-probing scheme had under concurrent openers.
//
// The open-flock-stat loop closes the remaining hole: a releaser
// unlinks the lock path while holding the flock, so an acquirer that
// opened the old inode can win a flock on a file that is no longer the
// lock. Comparing the locked fd's identity against the path detects
// that and retries on the fresh inode.
func (j *Journal) acquireLock() error {
	for attempt := 0; attempt < 8; attempt++ {
		f, err := os.OpenFile(j.lockPath, os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("campaign: creating sweep lock: %w", err)
		}
		if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
			// A live holder (this process or another) owns the sweep.
			owner := "unknown"
			if data, rerr := os.ReadFile(j.lockPath); rerr == nil {
				if s := strings.TrimSpace(string(data)); s != "" {
					owner = s
				}
			}
			f.Close()
			return fmt.Errorf("%w (owner pid %s, lock %s)", ErrLocked, owner, j.lockPath)
		}
		fi, err := f.Stat()
		var pfi os.FileInfo
		if err == nil {
			pfi, err = os.Stat(j.lockPath)
		}
		if err != nil || !os.SameFile(fi, pfi) {
			// We locked an orphaned inode: the previous owner unlinked the
			// path between our open and our flock. Retry on the new file.
			f.Close()
			continue
		}
		if err := f.Truncate(0); err == nil {
			fmt.Fprintf(io.NewOffsetWriter(f, 0), "%d\n", os.Getpid())
		}
		j.lockFile = f
		return nil
	}
	return fmt.Errorf("%w (lock %s: could not settle under contention)", ErrLocked, j.lockPath)
}

// releaseLock unlinks the lock path and then drops the flock. The order
// matters: removing first means no third party can acquire the path
// while it still appears held, and the stat check in acquireLock
// handles anyone who raced onto the doomed inode.
func (j *Journal) releaseLock() {
	if j.lockFile == nil {
		return
	}
	os.Remove(j.lockPath)
	j.lockFile.Close()
	j.lockFile = nil
}

func writeManifest(path, id, spec string, keys []CellKey) error {
	m := journalManifest{Schema: journalSchemaVersion, ID: id, Spec: spec}
	m.Cells = make([]manifestCell, len(keys))
	for i, k := range keys {
		m.Cells[i] = manifestCell{Bench: k.Bench, Scheme: k.Scheme.String(), Key: k.Digest}
	}
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("campaign: encoding journal manifest: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("campaign: writing journal manifest: %w", err)
	}
	if err := fsyncPath(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("campaign: writing journal manifest: %w", err)
	}
	return nil
}

func fsyncPath(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("campaign: syncing %s: %w", path, err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("campaign: syncing %s: %w", path, err)
	}
	return nil
}

// loadManifest verifies a resumed journal describes exactly this grid.
func (j *Journal) loadManifest(path string, keys []CellKey) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("campaign: no journal to resume for this sweep (%w); run without -resume first", err)
	}
	var m journalManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return fmt.Errorf("campaign: corrupt journal manifest: %w", err)
	}
	if m.Schema != journalSchemaVersion || m.ID != j.id || len(m.Cells) != len(keys) {
		return fmt.Errorf("campaign: journal manifest does not match this sweep (schema %d id %s cells %d; want %d %s %d)",
			m.Schema, m.ID, len(m.Cells), journalSchemaVersion, j.id, len(keys))
	}
	for i, c := range m.Cells {
		if c.Key != keys[i].Digest {
			return fmt.Errorf("campaign: journal cell %d is %.12s, grid has %.12s — the sweep changed; cannot resume", i, c.Key, keys[i].Digest)
		}
	}
	return nil
}

// loadLog replays the completion log, tolerating a torn final line (a
// crash mid-append leaves one; everything before it is intact).
func (j *Journal) loadLog(path string, keys []CellKey) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("campaign: reading journal log: %w", err)
	}
	valid := map[string]bool{}
	for _, k := range keys {
		valid[k.Digest] = true
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var rec logRecord
		if json.Unmarshal(sc.Bytes(), &rec) != nil || !valid[rec.Key] {
			continue // torn or foreign record: ignore, the cell re-runs
		}
		switch rec.Status {
		case "done":
			j.done[rec.Key] = true
			delete(j.failed, rec.Key)
		case "fail":
			j.failed[rec.Key] = rec.Err
		}
	}
	return nil
}

// Completed reports whether the cell with this digest finished in this
// or a previous (resumed) run.
func (j *Journal) Completed(digest string) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done[digest]
}

// CompletedCount returns how many distinct cells have completed.
func (j *Journal) CompletedCount() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// RecordDone appends a completion record (group-committed, see above).
func (j *Journal) RecordDone(i int, digest string) error {
	return j.append(logRecord{I: i, Key: digest, Status: "done"})
}

// RecordFail appends a failure record for a -keep-going cell; a resumed
// sweep re-runs it.
func (j *Journal) RecordFail(i int, digest, msg string) error {
	return j.append(logRecord{I: i, Key: digest, Status: "fail", Err: msg})
}

func (j *Journal) append(rec logRecord) error {
	if j == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: encoding journal record: %w", err)
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if rec.Status == "done" {
		j.done[rec.Key] = true
		delete(j.failed, rec.Key)
	} else {
		j.failed[rec.Key] = rec.Err
	}
	if j.f == nil {
		return nil
	}
	if _, err := j.f.Write(data); err != nil {
		return fmt.Errorf("campaign: appending journal record: %w", err)
	}
	j.dirty = true
	if now := time.Now(); now.Sub(j.lastSync) >= j.syncEvery {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("campaign: syncing journal: %w", err)
		}
		j.dirty = false
		j.lastSync = now
	}
	return nil
}

// Close syncs any pending records and releases the sweep lock. The
// journal files stay on disk for future resumes.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var err error
	if j.f != nil {
		if j.dirty {
			err = j.f.Sync()
		}
		if cerr := j.f.Close(); err == nil {
			err = cerr
		}
		j.f = nil
	}
	j.releaseLock()
	return err
}
