package campaign

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"grp/internal/core"
)

func testKeys(n int) []CellKey {
	keys := make([]CellKey, n)
	for i := range keys {
		keys[i] = CellKey{Bench: fmt.Sprintf("b%d", i), Scheme: core.GRPVar,
			Digest: fmt.Sprintf("%064d", i)}
	}
	return keys
}

func TestSweepIDStable(t *testing.T) {
	a := SweepID(testKeys(4))
	b := SweepID(testKeys(4))
	if a != b || len(a) != 16 {
		t.Fatalf("SweepID not stable: %q vs %q", a, b)
	}
	if SweepID(testKeys(5)) == a {
		t.Fatal("SweepID ignores the grid")
	}
	// Order matters: the journal is positional.
	rev := testKeys(4)
	rev[0], rev[3] = rev[3], rev[0]
	if SweepID(rev) == a {
		t.Fatal("SweepID ignores cell order")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	keys := testKeys(5)
	j, err := OpenJournal(dir, "spec", keys, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.RecordDone(0, keys[0].Digest); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordFail(1, keys[1].Digest, "boom"); err != nil {
		t.Fatal(err)
	}
	if err := j.RecordDone(2, keys[2].Digest); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenJournal(dir, "spec", keys, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.CompletedCount(); n != 2 {
		t.Fatalf("want 2 completed after resume, got %d", n)
	}
	if !r.Completed(keys[0].Digest) || r.Completed(keys[1].Digest) || !r.Completed(keys[2].Digest) {
		t.Fatal("completion map wrong after resume")
	}
}

// TestJournalTornTailTolerated: a crash can tear the last log line; the
// resume must keep every whole record and ignore the fragment.
func TestJournalTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	keys := testKeys(3)
	j, err := OpenJournal(dir, "spec", keys, false)
	if err != nil {
		t.Fatal(err)
	}
	j.RecordDone(0, keys[0].Digest)
	j.RecordDone(1, keys[1].Digest)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	logPath := filepath.Join(dir, "journal", SweepID(keys), "log")
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:len(data)-7] // clip inside the final record
	if err := os.WriteFile(logPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenJournal(dir, "spec", keys, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.CompletedCount(); n != 1 {
		t.Fatalf("want 1 completed (torn record dropped), got %d", n)
	}
}

// TestJournalLockLivePid: a second campaign against the same sweep while
// the first is running must refuse with ErrLocked.
func TestJournalLockLivePid(t *testing.T) {
	dir := t.TempDir()
	keys := testKeys(2)
	j, err := OpenJournal(dir, "spec", keys, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if _, err := OpenJournal(dir, "spec", keys, true); !errors.Is(err, ErrLocked) {
		t.Fatalf("want ErrLocked for a held lock, got %v", err)
	}
}

// TestJournalLockStaleStolen: a lock left by a dead process is stolen.
func TestJournalLockStaleStolen(t *testing.T) {
	dir := t.TempDir()
	keys := testKeys(2)
	j, err := OpenJournal(dir, "spec", keys, false)
	if err != nil {
		t.Fatal(err)
	}
	j.RecordDone(0, keys[0].Digest)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Recreate the lock with a pid that cannot be alive, as a kill -9
	// would leave it.
	lock := filepath.Join(dir, "journal", SweepID(keys), "lock")
	if err := os.WriteFile(lock, []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenJournal(dir, "spec", keys, true)
	if err != nil {
		t.Fatalf("stale lock not stolen: %v", err)
	}
	defer r.Close()
	if r.CompletedCount() != 1 {
		t.Fatal("resume after steal lost the log")
	}
}

// TestJournalManifestMismatch: -resume against a different grid (changed
// spec, options, or program) must be rejected, not silently skipped.
func TestJournalManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	keys := testKeys(3)
	j, err := OpenJournal(dir, "spec", keys, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Same cell count, different digest → same sweep dir is never reused
	// (the id hashes the digests), so resume reports no journal.
	changed := testKeys(3)
	changed[1].Digest = strings.Repeat("f", 64)
	if _, err := OpenJournal(dir, "spec", changed, true); err == nil {
		t.Fatal("resume with a changed grid succeeded")
	}

	// Corrupting the manifest in place must also be caught.
	manifest := filepath.Join(dir, "journal", SweepID(keys), "manifest.json")
	if err := os.WriteFile(manifest, []byte(`{"schema":1,"id":"wrong"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(dir, "spec", keys, true); err == nil {
		t.Fatal("resume with a corrupt manifest succeeded")
	}
}

// TestJournalResumeWithoutJournal: -resume when no journal exists fails
// with a clear error rather than starting silently from scratch.
func TestJournalResumeWithoutJournal(t *testing.T) {
	if _, err := OpenJournal(t.TempDir(), "spec", testKeys(2), true); err == nil {
		t.Fatal("resume without a journal succeeded")
	}
}

func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if j.Completed("x") || j.CompletedCount() != 0 {
		t.Fatal("nil journal not inert")
	}
	if j.RecordDone(0, "x") != nil || j.RecordFail(0, "x", "e") != nil || j.Close() != nil {
		t.Fatal("nil journal methods must be no-ops")
	}
}
