package campaign

import (
	"context"
	"errors"
	"sync"

	"grp/internal/core"
)

// The singleflight layer sits between the cache and the simulator: when
// several workers (possibly serving different sweeps submitted by
// different clients) miss on the same cell digest at the same time, one
// of them — the leader — simulates and persists the cell while the rest
// wait and share its result. Without it, a server scheduling overlapping
// sweeps onto one pool would simulate an identical in-flight cell once
// per subscriber, because the cache only dedupes *completed* work.
//
// Results are safe to share across subscribers: a *core.Result is
// immutable once simulation returns (the cache already hands the same
// pointer to every hit).

// flightCall is one in-flight simulation of one unique cell.
type flightCall struct {
	done chan struct{} // closed when res/err are final
	res  *core.Result
	err  error
	// abandoned marks a leader that gave up because its own sweep was
	// cancelled; the result slot is meaningless and a waiting subscriber
	// should re-elect rather than inherit the cancellation.
	abandoned bool
}

// flightGroup dedupes concurrent executions by cell digest.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[string]*flightCall{}}
}

// do runs fn for the key, collapsing concurrent calls: the first caller
// in becomes the leader and executes fn; callers that arrive while the
// leader is in flight wait for its outcome and return it with
// shared=true. A waiting caller whose own ctx ends stops waiting (the
// leader keeps going — its sweep is still live). If the leader is
// cancelled, waiters re-enter and elect a new leader instead of
// inheriting an error that was never about their sweep.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*core.Result, error)) (*core.Result, bool, error) {
	for {
		g.mu.Lock()
		if c, ok := g.m[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
				if c.abandoned {
					continue // leader's sweep died; take over
				}
				return c.res, true, c.err
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		c := &flightCall{done: make(chan struct{})}
		g.m[key] = c
		g.mu.Unlock()

		c.res, c.err = fn()
		c.abandoned = c.err != nil &&
			(errors.Is(c.err, context.Canceled) || ctx.Err() != nil)
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
		return c.res, false, c.err
	}
}
