package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"grp/internal/compiler"
	"grp/internal/core"
	"grp/internal/cpu"
	"grp/internal/faults"
	"grp/internal/mem"
	"grp/internal/sim"
	"grp/internal/workloads"
)

// cacheSchemaVersion invalidates every cached cell at once; bump it when
// the on-disk format, the key canonicalization, or simulator-wide timing
// semantics change.
//
// 2: Result gained MemDigest; cached JSON from schema 1 would deserialize
// it as zero.
//
// 3: the hot-path overhaul made same-doneAt arrivals drain in FIFO issue
// order (the legacy heap's tie order was unspecified), which decides L2
// LRU state and pointer-scan order — pre-overhaul cached cells are
// timing-incompatible. Options also gained LegacyEngine, now in the key.
//
// 4: Result gained the Attrib attribution summary and Options gained the
// Attrib flag (now in the key); schema-3 cells would deserialize an
// attribution-requesting cell with Attrib nil.
//
// 5: the scheme family grew ghb and grp-adaptive and the shared
// region-queue code gained a capacity override; the scheme axis's value
// domain changed, so schema-4 stores must not be consulted for cells that
// could collide with the new names.
//
// 6: co-run mode — Options gained CoRun (now in the key, with each
// co-runner's program hash) and Result gained the CoRun context; a
// schema-5 cell deserialized into a co-run-aware reader would silently
// present a solo result for a co-run cell or drop the CoRun field.
const cacheSchemaVersion = 6

// SchemaVersion reports the store's cell schema version. Fleet
// dashboards compare it across servers (via the build-info gauge) to
// detect skew: two servers sharing a store with different schema
// versions silently treat each other's cells as corrupt.
func SchemaVersion() int { return cacheSchemaVersion }

// schemeVersions fingerprints each prefetch-engine implementation. The
// workload side of a cell is content-addressed through the compiled
// program hash, but Go code is not visible to the key, so engine edits
// are declared here: bump a scheme's version when its engine changes and
// only that scheme's cells go dirty on the next campaign.
var schemeVersions = map[core.Scheme]int{
	core.NoPrefetch:  1,
	core.PerfectL1:   1,
	core.PerfectL2:   1,
	core.StridePF:    1,
	core.SRP:         1,
	core.GRPFix:      1,
	core.GRPVar:      1,
	core.PointerOnly: 1,
	core.SoftwarePF:  1,
	core.GHB:         1,
	core.GRPAdaptive: 1,
}

// CellKey is the content address of one simulation cell: the SHA-256 of
// the canonicalized effective configuration plus the compiled workload
// program hash.
type CellKey struct {
	Bench  string
	Scheme core.Scheme
	Digest string // 64 hex characters
}

// canonicalize writes the cell's effective configuration as sorted
// "key=value" lines. Every default is resolved before serialization
// (opt.Mem == nil hashes identically to an explicit DefaultMemConfig), so
// the key depends on what the simulator will actually do, not on how the
// caller spelled it.
func canonicalize(bench string, sc core.Scheme, opt core.Options, progHash uint64, coRunHashes []uint64) string {
	kv := map[string]string{}
	set := func(k string, v interface{}) { kv[k] = fmt.Sprint(v) }

	set("schema", cacheSchemaVersion)
	set("bench", bench)
	set("scheme", sc.String())
	set("scheme.version", schemeVersions[sc])
	set("prog.hash", fmt.Sprintf("%016x", progHash))

	set("factor", opt.Factor.String())
	set("policy", opt.Policy.String())
	set("max_instrs", opt.MaxInstrs)
	set("disable_prioritizer", opt.DisablePrioritizer)
	set("prefetch_insert_mru", opt.PrefetchInsertMRU)
	set("srp_fifo", opt.SRPFIFO)
	set("srp_region_blocks", opt.SRPRegionBlocks)
	set("recursion_depth", opt.RecursionDepth)
	set("open_page_first", opt.OpenPageFirst)
	set("metrics", opt.Metrics)
	set("sample_interval", opt.SampleInterval)
	set("attrib", opt.Attrib)
	set("check_invariants", opt.CheckInvariants)
	set("invariant_every", opt.InvariantEvery)
	// The tamper hook is a function, invisible to content addressing; its
	// presence must still split the key so a tampered run can never serve
	// as a clean cache hit (or vice versa).
	set("tamper", opt.TamperPrefetchFill != nil)
	// The two engines are cycle-exact twins, but they are different code;
	// a legacy-engine run must never satisfy (or poison) a new-engine hit.
	set("legacy_engine", opt.LegacyEngine)
	// Co-run cells depend on every core's program, not just core 0's: the
	// co-runner list is ordered (core ids) and each co-runner's compiled
	// program is content-addressed alongside the cell's own prog.hash.
	set("corun", strings.Join(opt.CoRun, "+"))
	for i, h := range coRunHashes {
		set(fmt.Sprintf("corun.hash.%d", i), fmt.Sprintf("%016x", h))
	}

	memCfg := sim.DefaultMemConfig()
	if opt.Mem != nil {
		memCfg = *opt.Mem
	}
	set("l1.size", memCfg.L1.SizeBytes)
	set("l1.assoc", memCfg.L1.Assoc)
	set("l1.block", memCfg.L1.BlockBytes)
	set("l1.hit", memCfg.L1.HitLatency)
	set("l1.mshrs", memCfg.L1.MSHRs)
	set("l1.perfect", memCfg.L1.Perfect)
	set("l1.mru", memCfg.L1.PrefetchInsertMRU)
	set("l2.size", memCfg.L2.SizeBytes)
	set("l2.assoc", memCfg.L2.Assoc)
	set("l2.block", memCfg.L2.BlockBytes)
	set("l2.hit", memCfg.L2.HitLatency)
	set("l2.mshrs", memCfg.L2.MSHRs)
	set("l2.perfect", memCfg.L2.Perfect)
	set("l2.mru", memCfg.L2.PrefetchInsertMRU)
	set("dram.channels", memCfg.DRAM.Channels)
	set("dram.banks", memCfg.DRAM.BanksPerChannel)
	set("dram.row", memCfg.DRAM.RowBytes)
	set("dram.block", memCfg.DRAM.BlockBytes)
	set("dram.rowhit", memCfg.DRAM.RowHitCycles)
	set("dram.rowmiss", memCfg.DRAM.RowMissCycles)
	set("dram.xfer", memCfg.DRAM.TransferCycles)
	set("dram.busyhit", memCfg.DRAM.BankBusyHit)
	set("dram.busymiss", memCfg.DRAM.BankBusyMiss)
	set("mem.inflight_pf", memCfg.MaxInflightPrefetches)
	set("mem.open_page_first", memCfg.OpenPageFirst)

	cpuCfg := cpu.Default()
	if opt.CPU != nil {
		cpuCfg = *opt.CPU
	}
	set("cpu.fetch", cpuCfg.FetchWidth)
	set("cpu.issue", cpuCfg.IssueWidth)
	set("cpu.commit", cpuCfg.CommitWidth)
	set("cpu.rob", cpuCfg.ROBSize)
	set("cpu.memports", cpuCfg.MemPorts)
	set("cpu.branch_penalty", cpuCfg.BranchPenalty)
	set("cpu.predictor", cpuCfg.PredictorEntries)
	set("cpu.max_instrs", cpuCfg.MaxInstrs)

	plan := faults.Plan{}
	if opt.Faults != nil {
		plan = *opt.Faults
	}
	set("faults.seed", plan.Seed)
	set("faults.drop", plan.DropIssue)
	set("faults.truncate", plan.TruncateRegion)
	set("faults.corrupt", plan.CorruptHint)
	set("faults.cancel", plan.CancelInflight)
	set("faults.degrade", plan.DegradeChannel)
	set("faults.degrade_cycles", plan.DegradeCycles)
	set("faults.stuck", plan.StuckBank)
	set("faults.stuck_cycles", plan.StuckCycles)
	set("faults.mshr_steal", plan.MSHRSteal)
	set("faults.delay_fill", plan.DelayFill)
	set("faults.delay_cycles", plan.DelayFillCycles)

	wd := sim.WatchdogConfig{}
	if opt.Watchdog != nil {
		wd = *opt.Watchdog
	}
	set("watchdog", fmt.Sprintf("%+v", wd))

	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(kv[k])
		b.WriteByte('\n')
	}
	return b.String()
}

// cellKey computes the content address of one cell. Co-run cells pass
// one hash per co-runner (core order); solo cells pass none.
func cellKey(bench string, sc core.Scheme, opt core.Options, progHash uint64, coRunHashes ...uint64) CellKey {
	sum := sha256.Sum256([]byte(canonicalize(bench, sc, opt, progHash, coRunHashes)))
	return CellKey{Bench: bench, Scheme: sc, Digest: hex.EncodeToString(sum[:])}
}

// programHash digests the compiled workload exactly as core.Run will
// execute it: the full instruction stream with hint bits and coefficients,
// the initialized memory image, and the instruction budget. Compiling is
// orders of magnitude cheaper than simulating, so the key stays honest
// about compiler, workload, and policy edits without a manual version.
func programHash(bench string, f workloads.Factor, pol compiler.Policy, swpf bool) (uint64, error) {
	spec, err := workloads.ByName(bench)
	if err != nil {
		return 0, err
	}
	built := spec.Build(f)
	m := mem.New()
	var cg compiler.CodegenOptions
	cg.SoftwarePrefetch = swpf
	prog, layout, _, err := compiler.CompileWorkloadOpts(built.Prog, m, pol, cg)
	if err != nil {
		return 0, err
	}
	built.Init(m, layout)

	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, s := range prog.Name {
		mix(uint64(s))
	}
	for _, in := range prog.Instrs {
		mix(uint64(in.Op))
		mix(uint64(in.Rd) | uint64(in.Rs1)<<8 | uint64(in.Rs2)<<16)
		mix(uint64(in.Imm))
		mix(uint64(in.Target))
		mix(uint64(in.Hint) | uint64(in.Coeff)<<8)
	}
	mix(m.Digest())
	mix(built.MaxInstrs)
	return h, nil
}

// hashMemo deduplicates program hashing across the cells of one campaign:
// every scheme of a bench shares one compile (SoftwarePF recompiles, its
// codegen differs).
type hashMemo struct {
	mu sync.Mutex
	m  map[string]uint64
}

func newHashMemo() *hashMemo { return &hashMemo{m: map[string]uint64{}} }

// coRunHashes hashes each co-runner's compiled program (core order,
// same codegen rules as the cell's own bench). Nil for solo cells.
func (hm *hashMemo) coRunHashes(opt core.Options, sc core.Scheme) ([]uint64, error) {
	if len(opt.CoRun) == 0 {
		return nil, nil
	}
	out := make([]uint64, len(opt.CoRun))
	for i, b := range opt.CoRun {
		h, err := hm.get(b, opt.Factor, opt.Policy, sc == core.SoftwarePF)
		if err != nil {
			return nil, err
		}
		out[i] = h
	}
	return out, nil
}

func (hm *hashMemo) get(bench string, f workloads.Factor, pol compiler.Policy, swpf bool) (uint64, error) {
	k := fmt.Sprintf("%s|%s|%s|%t", bench, f, pol, swpf)
	hm.mu.Lock()
	if v, ok := hm.m[k]; ok {
		hm.mu.Unlock()
		return v, nil
	}
	hm.mu.Unlock()
	// Compile outside the lock: hashing distinct benches in parallel is
	// the point of the memo, and duplicate compiles of the same bench are
	// merely wasted work, never wrong.
	v, err := programHash(bench, f, pol, swpf)
	if err != nil {
		return 0, err
	}
	hm.mu.Lock()
	hm.m[k] = v
	hm.mu.Unlock()
	return v, nil
}
