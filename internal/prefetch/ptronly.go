package prefetch

import "grp/internal/oamap"

// PointerOnly is the pure hardware pointer prefetcher of Section 3.2
// (evaluated in Figure 9): with no compiler information at all, it greedily
// scans every cache line returned on an L2 miss and prefetches any 8-byte
// value that passes the heap base-and-bounds test, prefetching two blocks
// per discovered pointer. Recursion is the generalization mentioned in the
// paper: prefetched lines are scanned in turn, up to Depth levels.
type PointerOnly struct {
	mem     MemReader
	depth   uint8
	q       regionQueue
	scanCtr *oamap.U8
	stats   Stats
}

// NewPointerOnly builds the engine; depth 0 means the paper's default
// chase depth of 6.
func NewPointerOnly(mem MemReader, depth uint8) *PointerOnly {
	if depth == 0 {
		depth = 6
	}
	return &PointerOnly{mem: mem, depth: depth, scanCtr: oamap.NewU8(), stats: newStats()}
}

// Name implements Engine.
func (*PointerOnly) Name() string { return "ptr" }

// OnL2DemandMiss implements Engine: every miss block is scanned on arrival.
func (p *PointerOnly) OnL2DemandMiss(ev MissEvent) {
	blk := ev.Addr &^ uint64(BlockBytes-1)
	if ev.Merged {
		// The merged request shares the MSHR; the counter is already set
		// unless the line is an in-flight prefetch, in which case arm it.
		if cur, _ := p.scanCtr.Get(blk); cur < p.depth {
			p.scanCtr.Set(blk, p.depth)
		}
		return
	}
	p.scanCtr.Set(blk, p.depth)
}

// OnDemandHitPrefetched implements Engine.
func (*PointerOnly) OnDemandHitPrefetched(uint64) {}

// OnArrival implements Engine.
func (p *PointerOnly) OnArrival(block uint64) {
	ctr, ok := p.scanCtr.Get(block)
	if !ok {
		return
	}
	p.scanCtr.Delete(block)
	if ctr == 0 {
		return
	}
	p.stats.PointerScans++
	for off := uint64(0); off < BlockBytes; off += 8 {
		v := p.mem.Read64(block + off)
		if !p.mem.InHeap(v) {
			continue
		}
		p.stats.PointersFound++
		base := v &^ uint64(BlockBytes-1)
		bits, blocks := ptrRegionBits(base, 2)
		p.q.pushHead(regionEntry{base: base, bits: bits, blocks: uint8(blocks), ptrCtr: ctr - 1})
		p.stats.recordRegion(blocks)
	}
}

// Pop implements Engine.
func (p *PointerOnly) Pop(present func(uint64) bool) (uint64, bool) {
	b, ctr, ok := p.q.pop(present)
	if !ok {
		return 0, false
	}
	p.stats.CandidatesPopped++
	if ctr > 0 {
		p.scanCtr.Set(b, ctr)
	}
	return b, true
}

// SetBound implements Engine; the hardware scheme uses no hints.
func (*PointerOnly) SetBound(uint64) {}

// Indirect implements Engine; the hardware scheme uses no hints.
func (*PointerOnly) Indirect(uint64, uint64, uint) {}

// Stats implements Engine.
func (p *PointerOnly) Stats() Stats { return p.stats }

// QueueLen implements QueueLenner.
func (p *PointerOnly) QueueLen() int { return p.q.len() }
