package prefetch

import (
	"sort"
	"testing"

	"grp/internal/isa"
)

// boundsMem is a MemReader with explicit heap bounds that records every word
// address the scanner reads.
type boundsMem struct {
	words     map[uint64]uint64
	base, lim uint64
	reads     []uint64
}

func (f *boundsMem) Read64(addr uint64) uint64 {
	f.reads = append(f.reads, addr)
	return f.words[addr]
}
func (f *boundsMem) Read32(addr uint64) uint32 { return uint32(f.Read64(addr)) }
func (f *boundsMem) InHeap(addr uint64) bool   { return addr >= f.base && addr < f.lim }

const (
	heapBase = uint64(0x10000)
	heapLim  = uint64(0x20000)
	scanLine = uint64(0x40000) // the block whose contents get scanned
)

// scanOnce arms the pointer scanner on scanLine, delivers its data, and
// returns the prefetch candidates the scan produced.
func scanOnce(t *testing.T, f *boundsMem) (*GRP, []uint64) {
	t.Helper()
	g := NewGRP(GRPConfig{PtrBlocks: 2, RecursionDepth: 1}, f)
	g.OnL2DemandMiss(MissEvent{Addr: scanLine + 8, Hint: isa.HintPointer})
	g.OnArrival(scanLine)
	var got []uint64
	for {
		b, ok := g.Pop(func(uint64) bool { return false })
		if !ok {
			break
		}
		got = append(got, b)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	return g, got
}

// TestScanBounds pins the base-and-bounds pointer test of Section 3.2 at
// the heap-range edges: values at exactly the heap base and at limit-1 are
// pointers, the limit itself and base-1 are not, and word position within
// the line (first word, last word) does not matter.
func TestScanBounds(t *testing.T) {
	target := heapBase + 0x800 // well inside the heap
	targetBlk := target &^ uint64(BlockBytes-1)
	cases := []struct {
		name  string
		words map[uint64]uint64 // line contents; unset words read as 0
		found uint64            // expected PointersFound
		want  []uint64          // expected candidate blocks, sorted
	}{
		{
			name:  "pointer in first word of line",
			words: map[uint64]uint64{scanLine: target},
			found: 1,
			want:  []uint64{targetBlk, targetBlk + uint64(BlockBytes)},
		},
		{
			name:  "pointer in last word of line",
			words: map[uint64]uint64{scanLine + uint64(BlockBytes) - 8: target},
			found: 1,
			want:  []uint64{targetBlk, targetBlk + uint64(BlockBytes)},
		},
		{
			name:  "value exactly at heap base is a pointer",
			words: map[uint64]uint64{scanLine + 16: heapBase},
			found: 1,
			want:  []uint64{heapBase, heapBase + uint64(BlockBytes)},
		},
		{
			name:  "value at limit-1 is a pointer",
			words: map[uint64]uint64{scanLine + 16: heapLim - 1},
			found: 1,
			want: []uint64{(heapLim - 1) &^ uint64(BlockBytes-1),
				((heapLim - 1) &^ uint64(BlockBytes-1)) + uint64(BlockBytes)},
		},
		{
			name:  "value exactly at heap limit is not a pointer",
			words: map[uint64]uint64{scanLine + 16: heapLim},
			found: 0,
		},
		{
			name:  "value just below heap base is not a pointer",
			words: map[uint64]uint64{scanLine + 16: heapBase - 1},
			found: 0,
		},
		{
			name: "small integers and zero are not pointers",
			words: map[uint64]uint64{
				scanLine:      0,
				scanLine + 8:  1,
				scanLine + 16: 42,
				scanLine + 24: uint64(BlockBytes),
			},
			found: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := &boundsMem{words: tc.words, base: heapBase, lim: heapLim}
			g, got := scanOnce(t, f)
			st := g.Stats()
			if st.PointerScans != 1 {
				t.Fatalf("PointerScans = %d, want 1", st.PointerScans)
			}
			if st.PointersFound != tc.found {
				t.Fatalf("PointersFound = %d, want %d", st.PointersFound, tc.found)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("candidates = %#x, want %#x", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("candidates = %#x, want %#x", got, tc.want)
				}
			}
		})
	}
}

// TestScanStaysInLine checks the scanner reads exactly the eight 8-byte
// words of the arriving line — never a byte before its base or past its
// end (Sec. 3.3.1: the hardware inspects the returned cache line only).
func TestScanStaysInLine(t *testing.T) {
	f := &boundsMem{words: map[uint64]uint64{}, base: heapBase, lim: heapLim}
	scanOnce(t, f)
	if len(f.reads) != BlockBytes/8 {
		t.Fatalf("scan performed %d reads, want %d", len(f.reads), BlockBytes/8)
	}
	seen := map[uint64]bool{}
	for _, a := range f.reads {
		if a < scanLine || a+8 > scanLine+uint64(BlockBytes) {
			t.Fatalf("scan read %#x, outside line [%#x,%#x)", a, scanLine, scanLine+uint64(BlockBytes))
		}
		if a%8 != 0 {
			t.Fatalf("scan read %#x is not 8-byte aligned", a)
		}
		if seen[a] {
			t.Fatalf("scan read %#x twice", a)
		}
		seen[a] = true
	}
}

// TestScanNotArmedWithoutHint checks an unhinted miss never arms the
// scanner: GRP's pointer machinery is strictly compiler-guided.
func TestScanNotArmedWithoutHint(t *testing.T) {
	f := &boundsMem{words: map[uint64]uint64{scanLine: heapBase + 0x800}, base: heapBase, lim: heapLim}
	g := NewGRP(GRPConfig{PtrBlocks: 2}, f)
	g.OnL2DemandMiss(MissEvent{Addr: scanLine})
	g.OnArrival(scanLine)
	if st := g.Stats(); st.PointerScans != 0 {
		t.Fatalf("PointerScans = %d, want 0 for unhinted miss", st.PointerScans)
	}
	if len(f.reads) != 0 {
		t.Fatalf("scanner read %d words on unhinted miss", len(f.reads))
	}
}
