package prefetch

import (
	"sort"
	"testing"

	"grp/internal/isa"
)

// boundsMem is a MemReader with explicit heap bounds that records every word
// address the scanner reads.
type boundsMem struct {
	words     map[uint64]uint64
	base, lim uint64
	reads     []uint64
}

func (f *boundsMem) Read64(addr uint64) uint64 {
	f.reads = append(f.reads, addr)
	return f.words[addr]
}
func (f *boundsMem) Read32(addr uint64) uint32 { return uint32(f.Read64(addr)) }
func (f *boundsMem) InHeap(addr uint64) bool   { return addr >= f.base && addr < f.lim }

const (
	heapBase = uint64(0x10000)
	heapLim  = uint64(0x20000)
	scanLine = uint64(0x40000) // the block whose contents get scanned
)

// scanOnce arms the pointer scanner on scanLine, delivers its data, and
// returns the prefetch candidates the scan produced.
func scanOnce(t *testing.T, f *boundsMem) (*GRP, []uint64) {
	t.Helper()
	g := NewGRP(GRPConfig{PtrBlocks: 2, RecursionDepth: 1}, f)
	g.OnL2DemandMiss(MissEvent{Addr: scanLine + 8, Hint: isa.HintPointer})
	g.OnArrival(scanLine)
	var got []uint64
	for {
		b, ok := g.Pop(func(uint64) bool { return false })
		if !ok {
			break
		}
		got = append(got, b)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	return g, got
}

// TestScanBounds pins the base-and-bounds pointer test of Section 3.2 at
// the heap-range edges: values at exactly the heap base and at limit-1 are
// pointers, the limit itself and base-1 are not, and word position within
// the line (first word, last word) does not matter.
func TestScanBounds(t *testing.T) {
	target := heapBase + 0x800 // well inside the heap
	targetBlk := target &^ uint64(BlockBytes-1)
	cases := []struct {
		name  string
		words map[uint64]uint64 // line contents; unset words read as 0
		found uint64            // expected PointersFound
		want  []uint64          // expected candidate blocks, sorted
	}{
		{
			name:  "pointer in first word of line",
			words: map[uint64]uint64{scanLine: target},
			found: 1,
			want:  []uint64{targetBlk, targetBlk + uint64(BlockBytes)},
		},
		{
			name:  "pointer in last word of line",
			words: map[uint64]uint64{scanLine + uint64(BlockBytes) - 8: target},
			found: 1,
			want:  []uint64{targetBlk, targetBlk + uint64(BlockBytes)},
		},
		{
			name:  "value exactly at heap base is a pointer",
			words: map[uint64]uint64{scanLine + 16: heapBase},
			found: 1,
			want:  []uint64{heapBase, heapBase + uint64(BlockBytes)},
		},
		{
			name:  "value at limit-1 is a pointer",
			words: map[uint64]uint64{scanLine + 16: heapLim - 1},
			found: 1,
			want: []uint64{(heapLim - 1) &^ uint64(BlockBytes-1),
				((heapLim - 1) &^ uint64(BlockBytes-1)) + uint64(BlockBytes)},
		},
		{
			name:  "value exactly at heap limit is not a pointer",
			words: map[uint64]uint64{scanLine + 16: heapLim},
			found: 0,
		},
		{
			name:  "value just below heap base is not a pointer",
			words: map[uint64]uint64{scanLine + 16: heapBase - 1},
			found: 0,
		},
		{
			name: "small integers and zero are not pointers",
			words: map[uint64]uint64{
				scanLine:      0,
				scanLine + 8:  1,
				scanLine + 16: 42,
				scanLine + 24: uint64(BlockBytes),
			},
			found: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := &boundsMem{words: tc.words, base: heapBase, lim: heapLim}
			g, got := scanOnce(t, f)
			st := g.Stats()
			if st.PointerScans != 1 {
				t.Fatalf("PointerScans = %d, want 1", st.PointerScans)
			}
			if st.PointersFound != tc.found {
				t.Fatalf("PointersFound = %d, want %d", st.PointersFound, tc.found)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("candidates = %#x, want %#x", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("candidates = %#x, want %#x", got, tc.want)
				}
			}
		})
	}
}

// TestScanStaysInLine checks the scanner reads exactly the eight 8-byte
// words of the arriving line — never a byte before its base or past its
// end (Sec. 3.3.1: the hardware inspects the returned cache line only).
func TestScanStaysInLine(t *testing.T) {
	f := &boundsMem{words: map[uint64]uint64{}, base: heapBase, lim: heapLim}
	scanOnce(t, f)
	if len(f.reads) != BlockBytes/8 {
		t.Fatalf("scan performed %d reads, want %d", len(f.reads), BlockBytes/8)
	}
	seen := map[uint64]bool{}
	for _, a := range f.reads {
		if a < scanLine || a+8 > scanLine+uint64(BlockBytes) {
			t.Fatalf("scan read %#x, outside line [%#x,%#x)", a, scanLine, scanLine+uint64(BlockBytes))
		}
		if a%8 != 0 {
			t.Fatalf("scan read %#x is not 8-byte aligned", a)
		}
		if seen[a] {
			t.Fatalf("scan read %#x twice", a)
		}
		seen[a] = true
	}
}

// TestScanZeroLengthHeap checks the degenerate bounds base == lim: the
// heap is empty, so no value — not even the base itself — passes the
// pointer test, and a hinted scan completes without queuing anything.
func TestScanZeroLengthHeap(t *testing.T) {
	f := &boundsMem{
		words: map[uint64]uint64{scanLine: heapBase, scanLine + 8: heapBase + 8},
		base:  heapBase, lim: heapBase,
	}
	g, got := scanOnce(t, f)
	st := g.Stats()
	if st.PointerScans != 1 {
		t.Fatalf("PointerScans = %d, want 1", st.PointerScans)
	}
	if st.PointersFound != 0 {
		t.Fatalf("PointersFound = %d, want 0 for a zero-length heap", st.PointersFound)
	}
	if len(got) != 0 {
		t.Fatalf("zero-length heap produced candidates %#x", got)
	}
}

// TestRegionEndsAtAddressSpaceTop checks a spatial region in the topmost
// naturally-aligned slot of the address space: the region ends exactly at
// 2^64 and every candidate stays inside it — size alignment means no
// candidate can wrap to low memory.
func TestRegionEndsAtAddressSpaceTop(t *testing.T) {
	size := uint64(RegionBlocks) * BlockBytes
	base := -size // == 2^64 - size
	e := makeRegion(base+8, RegionBlocks, nil, 0)
	if e.base != base {
		t.Fatalf("region base %#x, want %#x", e.base, base)
	}
	var q regionQueue
	q.pushHead(e)
	n := 0
	for {
		b, _, ok := q.pop(nil)
		if !ok {
			break
		}
		n++
		if b < base {
			t.Fatalf("candidate %#x wrapped below region base %#x", b, base)
		}
	}
	// All blocks except the miss block itself.
	if n != RegionBlocks-1 {
		t.Fatalf("popped %d candidates, want %d", n, RegionBlocks-1)
	}
}

// TestPtrTargetInTopBlock checks a pointer target in the last block of the
// address space: the two-block pointer region is clamped at the boundary
// instead of wrapping its second candidate around to address zero.
func TestPtrTargetInTopBlock(t *testing.T) {
	topBlk := ^uint64(0) &^ uint64(BlockBytes-1)
	f := &boundsMem{
		words: map[uint64]uint64{scanLine: topBlk + 8},
		base:  topBlk, lim: ^uint64(0),
	}
	g, got := scanOnce(t, f)
	if st := g.Stats(); st.PointersFound != 1 {
		t.Fatalf("PointersFound = %d, want 1", st.PointersFound)
	}
	if len(got) != 1 || got[0] != topBlk {
		t.Fatalf("candidates = %#x, want exactly [%#x]", got, topBlk)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("clamped top-of-memory region violates invariants: %v", err)
	}
}

// TestPtrTargetNearTopKeepsBothBlocks checks the clamp is exact: a target
// in the second-to-last block still gets its full two-block region.
func TestPtrTargetNearTopKeepsBothBlocks(t *testing.T) {
	topBlk := ^uint64(0) &^ uint64(BlockBytes-1)
	f := &boundsMem{
		words: map[uint64]uint64{scanLine: topBlk - uint64(BlockBytes) + 8},
		base:  topBlk - uint64(BlockBytes), lim: ^uint64(0),
	}
	g, got := scanOnce(t, f)
	want := []uint64{topBlk - uint64(BlockBytes), topBlk}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("candidates = %#x, want %#x", got, want)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestScanNotArmedWithoutHint checks an unhinted miss never arms the
// scanner: GRP's pointer machinery is strictly compiler-guided.
func TestScanNotArmedWithoutHint(t *testing.T) {
	f := &boundsMem{words: map[uint64]uint64{scanLine: heapBase + 0x800}, base: heapBase, lim: heapLim}
	g := NewGRP(GRPConfig{PtrBlocks: 2}, f)
	g.OnL2DemandMiss(MissEvent{Addr: scanLine})
	g.OnArrival(scanLine)
	if st := g.Stats(); st.PointerScans != 0 {
		t.Fatalf("PointerScans = %d, want 0 for unhinted miss", st.PointerScans)
	}
	if len(f.reads) != 0 {
		t.Fatalf("scanner read %d words on unhinted miss", len(f.reads))
	}
}
