package prefetch

import (
	"math/rand"
	"testing"
)

// ghbMiss feeds one primary demand miss at the given block number.
func ghbMiss(g *GHB, pc, blockNum uint64) {
	g.OnL2DemandMiss(MissEvent{PC: pc, Addr: blockNum * BlockBytes})
}

// ghbDrain pops every pending candidate, returned as block numbers.
func ghbDrain(g *GHB) []uint64 {
	var out []uint64
	for {
		b, ok := g.Pop(nil)
		if !ok {
			return out
		}
		out = append(out, b/BlockBytes)
	}
}

// TestGHBStrideDetection pins the PC/DC basics: two matching deltas lock
// the stream and Degree blocks are prefetched Lookahead strides ahead.
func TestGHBStrideDetection(t *testing.T) {
	cases := []struct {
		name      string
		cfg       GHBConfig
		blockNums []uint64
		want      []uint64
	}{
		{
			name:      "unit-stride",
			cfg:       GHBConfig{Degree: 4, Lookahead: 1},
			blockNums: []uint64{10, 11, 12},
			want:      []uint64{13, 14, 15, 16},
		},
		{
			name:      "stride-2",
			cfg:       GHBConfig{Degree: 2, Lookahead: 1},
			blockNums: []uint64{10, 12, 14},
			want:      []uint64{16, 18},
		},
		{
			name:      "negative-stride",
			cfg:       GHBConfig{Degree: 2, Lookahead: 1},
			blockNums: []uint64{40, 37, 34},
			want:      []uint64{31, 28},
		},
		{
			name:      "lookahead-skips-ahead",
			cfg:       GHBConfig{Degree: 2, Lookahead: 3},
			blockNums: []uint64{10, 11, 12},
			want:      []uint64{15, 16},
		},
		{
			name:      "two-deltas-must-match",
			cfg:       GHBConfig{Degree: 4, Lookahead: 1},
			blockNums: []uint64{10, 12, 13},
			want:      nil,
		},
		{
			name:      "zero-stride-never-fires",
			cfg:       GHBConfig{Degree: 4, Lookahead: 1},
			blockNums: []uint64{10, 10, 10},
			want:      nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGHB(tc.cfg)
			for _, bn := range tc.blockNums {
				ghbMiss(g, 0x400, bn)
			}
			got := ghbDrain(g)
			if len(got) != len(tc.want) {
				t.Fatalf("popped %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("popped %v, want %v", got, tc.want)
				}
			}
			if err := g.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGHBIndexEvictionOnWraparound fills the tiny circular buffer with a
// second PC's misses so the first PC's chain head slot is recycled: the
// index-table pointer goes stale and the stream must NOT resume from the
// dead chain, even though the first PC's miss pattern is a clean stride.
func TestGHBIndexEvictionOnWraparound(t *testing.T) {
	cfg := GHBConfig{IndexEntries: 2, HistoryEntries: 4, Degree: 2, Lookahead: 1}
	// pcA folds to index slot 0, pcB to slot 1: no index aliasing between
	// them, only history-buffer recycling.
	pcA, pcB := uint64(0x100), uint64(0x104)

	// Positive control: without interference the third miss correlates.
	ctl := NewGHB(cfg)
	ghbMiss(ctl, pcA, 10)
	ghbMiss(ctl, pcA, 12)
	ghbMiss(ctl, pcA, 14)
	if got := ghbDrain(ctl); len(got) == 0 {
		t.Fatal("control: stride stream produced no candidates")
	}

	g := NewGHB(cfg)
	ghbMiss(g, pcA, 10)
	ghbMiss(g, pcA, 12)
	// Four pcB misses wrap the 4-entry buffer and overwrite both pcA slots.
	// Irregular deltas so pcB itself never correlates.
	for _, bn := range []uint64{100, 150, 130, 170} {
		ghbMiss(g, pcB, bn)
	}
	ghbMiss(g, pcA, 14)
	if got := ghbDrain(g); len(got) != 0 {
		t.Fatalf("stale chain head after wraparound still produced candidates %v", got)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGHBChainTruncationOnOverwrite recycles only the OLDEST link of a
// PC's chain: the walk must follow the live first link, find the second
// dead, and stop without correlating — the prev_ptr invalidation case.
func TestGHBChainTruncationOnOverwrite(t *testing.T) {
	cfg := GHBConfig{IndexEntries: 2, HistoryEntries: 4, Degree: 2, Lookahead: 1}
	pcA, pcB := uint64(0x100), uint64(0x104)
	g := NewGHB(cfg)

	// Interleave so pcA's two entries sit in non-adjacent slots:
	//   seq1→slot1 pcA(10), seq2→slot2 pcB, seq3→slot3 pcA(12),
	//   seq4→slot0 pcB, seq5→slot1 pcB — overwrites pcA's OLDEST entry only.
	ghbMiss(g, pcA, 10)
	ghbMiss(g, pcB, 200)
	ghbMiss(g, pcA, 12)
	ghbMiss(g, pcB, 260)
	ghbMiss(g, pcB, 230)
	ghbDrain(g) // discard anything pcB produced (its deltas never match)

	// pcA's chain head (slot 3, seq 3) is still live; its prev link names
	// (slot 1, seq 1) which now holds seq 5 ⇒ dead. seq6→slot2 doesn't
	// collide with the head, so only the second hop fails.
	ghbMiss(g, pcA, 14)
	if got := ghbDrain(g); len(got) != 0 {
		t.Fatalf("truncated chain still correlated: %v", got)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The stream re-trains: two more misses rebuild two live links.
	ghbMiss(g, pcA, 16)
	ghbMiss(g, pcA, 18)
	got := ghbDrain(g)
	want := []uint64{20, 22}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("re-trained stream popped %v, want %v", got, want)
	}
}

// TestGHBCorrelationAcrossWraparound drives one PC's stride stream far
// enough to wrap the tiny buffer: as long as the two previous chain links
// survive recycling, correlation keeps firing with correct targets right
// across the slot-0 boundary.
func TestGHBCorrelationAcrossWraparound(t *testing.T) {
	cfg := GHBConfig{IndexEntries: 2, HistoryEntries: 4, Degree: 2, Lookahead: 1}
	g := NewGHB(cfg)
	// Blocks 10,12,...; seq wraps slots 1,2,3,0,1,... Keep far enough
	// ahead of the prefetcher that candidates never collide with misses.
	bn := uint64(10)
	for i := 0; i < 12; i++ {
		ghbMiss(g, 0x400, bn)
		if i >= 2 {
			// Every miss from the third on correlates (its two chain links
			// are the two misses just before it, always still resident).
			// Candidate dedup may swallow bn+2 (queued by the previous
			// miss), but the stream front bn+4 must always appear.
			got := ghbDrain(g)
			front := false
			for _, b := range got {
				if b != bn+2 && b != bn+4 {
					t.Fatalf("miss %d (block %d): unexpected candidate %d in %v", i, bn, b, got)
				}
				front = front || b == bn+4
			}
			if !front {
				t.Fatalf("miss %d (block %d): correlation died across wraparound (popped %v)", i, bn, got)
			}
		}
		if err := g.CheckInvariants(); err != nil {
			t.Fatalf("miss %d: %v", i, err)
		}
		bn += 2
	}
}

// TestGHBRingOverflowDropsOldest pins the pending-ring policy: a full ring
// drops the oldest candidate in favor of the newest.
func TestGHBRingOverflowDropsOldest(t *testing.T) {
	g := NewGHB(GHBConfig{Degree: 4, Lookahead: 1, MaxQueue: 2})
	ghbMiss(g, 0x400, 10)
	ghbMiss(g, 0x400, 11)
	ghbMiss(g, 0x400, 12) // queues 13,14,15,16 into a 2-deep ring
	got := ghbDrain(g)
	want := []uint64{15, 16}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("overflowed ring popped %v, want %v", got, want)
	}
}

// TestGHBDedup pins candidate dedup: overlapping correlations from
// adjacent misses must not queue the same block twice.
func TestGHBDedup(t *testing.T) {
	g := NewGHB(GHBConfig{Degree: 4, Lookahead: 1})
	for bn := uint64(10); bn < 16; bn++ {
		ghbMiss(g, 0x400, bn)
	}
	got := ghbDrain(g)
	seen := map[uint64]bool{}
	for _, b := range got {
		if seen[b] {
			t.Fatalf("block %d queued twice in %v", b, got)
		}
		seen[b] = true
	}
}

// TestGHBMergedMissesDoNotTrain pins the training filter: merged (secondary)
// misses never enter the history buffer.
func TestGHBMergedMissesDoNotTrain(t *testing.T) {
	g := NewGHB(GHBConfig{Degree: 2, Lookahead: 1})
	g.OnL2DemandMiss(MissEvent{PC: 0x400, Addr: 10 * BlockBytes, Merged: true})
	g.OnL2DemandMiss(MissEvent{PC: 0x400, Addr: 11 * BlockBytes, Merged: true})
	g.OnL2DemandMiss(MissEvent{PC: 0x400, Addr: 12 * BlockBytes, Merged: true})
	if got := ghbDrain(g); len(got) != 0 {
		t.Fatalf("merged misses trained the buffer: %v", got)
	}
	if g.seq != 0 {
		t.Fatalf("merged misses advanced seq to %d", g.seq)
	}
}

// TestGHBInvariantsUnderRandomLoad hammers a tiny geometry with random
// misses and pops, auditing the invariants throughout.
func TestGHBInvariantsUnderRandomLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := NewGHB(GHBConfig{IndexEntries: 2, HistoryEntries: 4, Degree: 3, Lookahead: 2, MaxQueue: 4})
	for i := 0; i < 50000; i++ {
		switch rng.Intn(3) {
		case 0, 1:
			ghbMiss(g, uint64(rng.Intn(8))*4, uint64(rng.Intn(1024)))
		case 2:
			g.Pop(nil)
		}
		if i%997 == 0 {
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
