package prefetch

import (
	"testing"
	"testing/quick"

	"grp/internal/isa"
)

func notPresent(uint64) bool { return false }

func TestRegionQueueLIFO(t *testing.T) {
	var q regionQueue
	q.pushHead(regionEntry{base: 0x1000, bits: 0b1, blocks: 64})
	q.pushHead(regionEntry{base: 0x2000, bits: 0b1, blocks: 64})
	b, _, ok := q.pop(notPresent)
	if !ok || b != 0x2000 {
		t.Errorf("pop = %#x, want newest entry 0x2000", b)
	}
	b, _, ok = q.pop(notPresent)
	if !ok || b != 0x1000 {
		t.Errorf("pop = %#x, want 0x1000", b)
	}
	if _, _, ok = q.pop(notPresent); ok {
		t.Error("queue should be empty")
	}
}

func TestRegionQueueOverflow(t *testing.T) {
	var q regionQueue
	for i := 0; i < QueueSize+5; i++ {
		q.pushHead(regionEntry{base: uint64(i+1) * 0x1000, bits: 1, blocks: 64})
	}
	if q.len() != QueueSize {
		t.Fatalf("queue length %d, want %d", q.len(), QueueSize)
	}
	// Oldest entries fell off: base 0x1000..0x5000 are gone.
	if q.find(0x1000) >= 0 || q.find(0x5000) >= 0 {
		t.Error("old entries should have fallen off the bottom")
	}
	if q.find(uint64(QueueSize+5)*0x1000) != 0 {
		t.Error("newest entry should be at the head")
	}
}

func TestMakeRegionExcludesMissAndPresent(t *testing.T) {
	present := func(b uint64) bool { return b == 0x1000+2*64 } // block 2 cached
	e := makeRegion(0x1000+5*64+8, 64, present, 0)
	if e.base != 0x1000 {
		t.Errorf("base = %#x", e.base)
	}
	if e.bits&(1<<5) != 0 {
		t.Error("miss block must not be a candidate")
	}
	if e.bits&(1<<2) != 0 {
		t.Error("cached block must not be a candidate")
	}
	if e.idx != 6 {
		t.Errorf("index = %d, want 6 (block after the miss)", e.idx)
	}
	// All other blocks are candidates.
	n := 0
	for i := 0; i < 64; i++ {
		if e.bits&(1<<uint(i)) != 0 {
			n++
		}
	}
	if n != 62 {
		t.Errorf("candidates = %d, want 62", n)
	}
}

func TestRegionPopWrapsFromIndex(t *testing.T) {
	var q regionQueue
	e := makeRegion(0x0+62*64, 64, nil, 0) // miss at block 62; idx = 63
	q.pushHead(e)
	// First pops should come at/after the index, wrapping.
	b, _, _ := q.pop(notPresent)
	if b != 63*64 {
		t.Errorf("first pop = %#x, want block 63", b)
	}
	b, _, _ = q.pop(notPresent)
	if b != 0 {
		t.Errorf("second pop = %#x, want block 0 (wrapped)", b)
	}
}

func TestSRPRegionAllocationAndRecycle(t *testing.T) {
	s := NewSRP()
	s.OnL2DemandMiss(MissEvent{Addr: 0x10000, Present: notPresent})
	if s.Stats().RegionsAllocated != 1 {
		t.Fatal("miss should allocate a region")
	}
	// A second miss in the same region retargets, not reallocates.
	s.OnL2DemandMiss(MissEvent{Addr: 0x10000 + 30*64, Present: notPresent})
	if s.Stats().RegionsAllocated != 1 || s.Stats().RegionsRecycled != 1 {
		t.Errorf("stats = %+v", s.Stats())
	}
	// Candidates resume after the new miss block.
	b, ok := s.Pop(notPresent)
	if !ok || b != 0x10000+31*64 {
		t.Errorf("pop = %#x, want block 31", b)
	}
}

func TestSRPMergedIgnored(t *testing.T) {
	s := NewSRP()
	s.OnL2DemandMiss(MissEvent{Addr: 0x10000, Merged: true, Present: notPresent})
	if s.Stats().RegionsAllocated != 0 {
		t.Error("merged events must not allocate regions")
	}
}

func TestSRPFullyCachedRegionNotAllocated(t *testing.T) {
	s := NewSRP()
	s.OnL2DemandMiss(MissEvent{Addr: 0x20000, Present: func(uint64) bool { return true }})
	if s.Stats().RegionsAllocated != 0 {
		t.Error("a fully cached region should not enqueue")
	}
	if _, ok := s.Pop(notPresent); ok {
		t.Error("nothing to pop")
	}
}

// fakeMem implements MemReader over a map.
type fakeMem struct {
	words  map[uint64]uint64
	lo, hi uint64
}

func (f *fakeMem) Read64(a uint64) uint64 { return f.words[a] }
func (f *fakeMem) Read32(a uint64) uint32 { return uint32(f.words[a&^7] >> ((a & 7) * 8)) }
func (f *fakeMem) InHeap(a uint64) bool   { return a >= f.lo && a < f.hi }

func TestGRPSpatialGating(t *testing.T) {
	g := NewGRP(DefaultGRPConfig(), &fakeMem{words: map[uint64]uint64{}})
	// Unhinted miss: nothing.
	g.OnL2DemandMiss(MissEvent{Addr: 0x10000, Hint: isa.HintNone, Coeff: isa.FixedRegion, Present: notPresent})
	if _, ok := g.Pop(notPresent); ok {
		t.Fatal("GRP must not prefetch on unhinted misses")
	}
	// Spatial miss: full region.
	g.OnL2DemandMiss(MissEvent{Addr: 0x10000, Hint: isa.HintSpatial, Coeff: isa.FixedRegion, Present: notPresent})
	if _, ok := g.Pop(notPresent); !ok {
		t.Fatal("spatial miss should produce candidates")
	}
	if g.Stats().RegionSizeDist[64] != 1 {
		t.Errorf("expected one 64-block region: %v", g.Stats().RegionSizeDist)
	}
}

func TestGRPVariableRegionSizes(t *testing.T) {
	g := NewGRP(DefaultGRPConfig(), &fakeMem{words: map[uint64]uint64{}})
	g.SetBound(16) // trip count 16
	// Coeff 3 (8-byte stride): 16<<3 = 128 bytes → 2 blocks.
	g.OnL2DemandMiss(MissEvent{Addr: 0x40000, Hint: isa.HintSpatial, Coeff: 3, Present: notPresent})
	if g.Stats().RegionSizeDist[2] != 1 {
		t.Errorf("16<<3 should give a 2-block region: %v", g.Stats().RegionSizeDist)
	}
	// Large bound: clamped to the fixed 64-block region.
	g.SetBound(4096)
	g.OnL2DemandMiss(MissEvent{Addr: 0x80000, Hint: isa.HintSpatial, Coeff: 3, Present: notPresent})
	if g.Stats().RegionSizeDist[64] != 1 {
		t.Errorf("4096<<3 should clamp to 64 blocks: %v", g.Stats().RegionSizeDist)
	}
	// Coefficient 0: reserved minimum region regardless of bound.
	g.OnL2DemandMiss(MissEvent{Addr: 0xc0000, Hint: isa.HintSpatial, Coeff: 0, Present: notPresent})
	if g.Stats().RegionSizeDist[2] != 2 {
		t.Errorf("coeff 0 should give minimum regions: %v", g.Stats().RegionSizeDist)
	}
	// FixedRegion coefficient: 64 blocks.
	g.OnL2DemandMiss(MissEvent{Addr: 0x100000, Hint: isa.HintSpatial, Coeff: isa.FixedRegion, Present: notPresent})
	if g.Stats().RegionSizeDist[64] != 2 {
		t.Errorf("fixed coeff should give 64 blocks: %v", g.Stats().RegionSizeDist)
	}
}

func TestGRPFixIgnoresCoeff(t *testing.T) {
	cfg := DefaultGRPConfig()
	cfg.Variable = false
	g := NewGRP(cfg, &fakeMem{words: map[uint64]uint64{}})
	g.SetBound(16)
	g.OnL2DemandMiss(MissEvent{Addr: 0x40000, Hint: isa.HintSpatial, Coeff: 3, Present: notPresent})
	if g.Stats().RegionSizeDist[64] != 1 {
		t.Errorf("GRP/Fix should use fixed regions: %v", g.Stats().RegionSizeDist)
	}
}

func TestGRPPointerScan(t *testing.T) {
	fm := &fakeMem{words: map[uint64]uint64{}, lo: 0x100000, hi: 0x200000}
	// Block at 0x100000 contains two heap pointers and six non-pointers.
	fm.words[0x100000] = 0x150000
	fm.words[0x100008] = 12345 // not a pointer
	fm.words[0x100010] = 0x160000
	g := NewGRP(DefaultGRPConfig(), fm)

	g.OnL2DemandMiss(MissEvent{Addr: 0x100000, Hint: isa.HintPointer, Coeff: isa.FixedRegion, Present: notPresent})
	g.OnArrival(0x100000)
	if g.Stats().PointersFound != 2 {
		t.Fatalf("PointersFound = %d, want 2", g.Stats().PointersFound)
	}
	// Two blocks per pointer; newest (0x160000) first (LIFO).
	want := []uint64{0x160000, 0x160040, 0x150000, 0x150040}
	for _, w := range want {
		b, ok := g.Pop(notPresent)
		if !ok || b != w {
			t.Fatalf("pop = %#x ok=%v, want %#x", b, ok, w)
		}
	}
	// Pointer hint depth is 1: arrived targets are not scanned further.
	fm.words[0x150000] = 0x170000
	g.OnArrival(0x150000)
	if _, ok := g.Pop(notPresent); ok {
		t.Error("pointer (non-recursive) chase should stop after one level")
	}
}

func TestGRPRecursiveChase(t *testing.T) {
	fm := &fakeMem{words: map[uint64]uint64{}, lo: 0x100000, hi: 0x900000}
	// A chain: each block points to the next, 0x40000 apart.
	for i := uint64(0); i < 8; i++ {
		fm.words[0x100000+i*0x40000] = 0x100000 + (i+1)*0x40000
	}
	cfg := DefaultGRPConfig()
	cfg.RecursionDepth = 3
	g := NewGRP(cfg, fm)
	g.OnL2DemandMiss(MissEvent{Addr: 0x100000, Hint: isa.HintRecursive, Coeff: isa.FixedRegion, Present: notPresent})
	levels := 0
	block := uint64(0x100000)
	for {
		g.OnArrival(block)
		b, ok := g.Pop(notPresent)
		if !ok {
			break
		}
		levels++
		// Drain the +1 successor block.
		if b2, ok2 := g.Pop(notPresent); ok2 && b2 != b+64 {
			t.Fatalf("expected successor block, got %#x", b2)
		}
		block = b
	}
	if levels != 3 {
		t.Errorf("recursive chase depth = %d, want 3", levels)
	}
}

func TestGRPMergedUpgradesCounter(t *testing.T) {
	fm := &fakeMem{words: map[uint64]uint64{0x100000: 0x150000}, lo: 0x100000, hi: 0x200000}
	g := NewGRP(DefaultGRPConfig(), fm)
	// Unhinted primary miss, then a merged recursive-hinted access.
	g.OnL2DemandMiss(MissEvent{Addr: 0x100000, Hint: isa.HintNone, Coeff: isa.FixedRegion, Present: notPresent})
	g.OnL2DemandMiss(MissEvent{Addr: 0x100008, Hint: isa.HintRecursive, Coeff: isa.FixedRegion, Merged: true, Present: notPresent})
	g.OnArrival(0x100000)
	if g.Stats().PointerScans != 1 {
		t.Errorf("merged recursive hint should arm the scanner: %+v", g.Stats())
	}
}

func TestGRPIndirect(t *testing.T) {
	fm := &fakeMem{words: map[uint64]uint64{}, lo: 0x100000, hi: 0x200000}
	// The index block holds 16 uint32 values 0..15 scaled by 8 → targets
	// base+0..base+120: all in one region.
	for i := uint64(0); i < 8; i++ {
		lo := uint64(i * 2)
		hi := uint64(i*2 + 1)
		fm.words[0x50000+i*8] = lo | hi<<32
	}
	g := NewGRP(DefaultGRPConfig(), fm)
	g.Indirect(0x50000, 0x100000, 3)
	st := g.Stats()
	if st.IndirectInstrs != 1 || st.IndirectPrefetches != 16 {
		t.Errorf("stats = %+v", st)
	}
	seen := map[uint64]bool{}
	for {
		b, ok := g.Pop(notPresent)
		if !ok {
			break
		}
		seen[b] = true
	}
	// Targets 0x100000+idx*8 for idx 0..15 fall in blocks 0x100000 and
	// 0x100040.
	if !seen[0x100000] || !seen[0x100040] {
		t.Errorf("indirect candidates missing: %v", seen)
	}
}

func TestStrideTrainingAndStream(t *testing.T) {
	s := NewStride(DefaultStrideConfig())
	pc := uint64(0x40)
	// Train with stride 256: conf reaches threshold after repeats.
	for i := 0; i < 5; i++ {
		s.OnL2DemandMiss(MissEvent{PC: pc, Addr: uint64(0x10000 + i*256), Present: notPresent})
	}
	b, ok := s.Pop(notPresent)
	if !ok {
		t.Fatal("trained stride should produce candidates")
	}
	// The stream allocates when confidence saturates (at the 4th miss,
	// address 0x10300), so its first candidate is the next stride step;
	// the demand stream catches the first candidate, which the present
	// filter would drop in the full system.
	if b != 0x10000+4*256 {
		t.Errorf("first candidate = %#x, want %#x", b, 0x10000+4*256)
	}
	// The stream advances on prefetched-line hits.
	before := countPending(s)
	s.OnDemandHitPrefetched(b)
	if countPending(s) <= before-1 {
		t.Error("hit should extend the stream")
	}
}

func countPending(s *Stride) int {
	n := 0
	for i := range s.buffers {
		n += len(s.buffers[i].pending)
	}
	return n
}

func TestStrideIgnoresIrregular(t *testing.T) {
	s := NewStride(DefaultStrideConfig())
	addrs := []uint64{0x1000, 0x9940, 0x2300, 0xff000, 0x5aa0}
	for _, a := range addrs {
		s.OnL2DemandMiss(MissEvent{PC: 0x40, Addr: a, Present: notPresent})
	}
	if _, ok := s.Pop(notPresent); ok {
		t.Error("irregular misses must not allocate streams")
	}
}

func TestStrideSubBlockDedupe(t *testing.T) {
	s := NewStride(DefaultStrideConfig())
	// Stride 8 within blocks: candidates must be distinct blocks.
	for i := 0; i < 6; i++ {
		s.OnL2DemandMiss(MissEvent{PC: 0x80, Addr: uint64(0x20000 + i*8), Present: notPresent})
	}
	seen := map[uint64]bool{}
	for {
		b, ok := s.Pop(notPresent)
		if !ok {
			break
		}
		if seen[b] {
			t.Fatalf("duplicate block candidate %#x", b)
		}
		seen[b] = true
	}
}

func TestPointerOnlyChase(t *testing.T) {
	fm := &fakeMem{words: map[uint64]uint64{}, lo: 0x100000, hi: 0x900000}
	fm.words[0x100000] = 0x300000
	p := NewPointerOnly(fm, 2)
	p.OnL2DemandMiss(MissEvent{Addr: 0x100000, Present: notPresent})
	p.OnArrival(0x100000)
	b, ok := p.Pop(notPresent)
	if !ok || b != 0x300000 {
		t.Fatalf("pop = %#x, want 0x300000", b)
	}
	if p.Stats().PointerScans != 1 || p.Stats().PointersFound != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
}

func TestNullEngine(t *testing.T) {
	n := NewNull()
	n.OnL2DemandMiss(MissEvent{Addr: 1})
	n.OnArrival(1)
	n.OnDemandHitPrefetched(1)
	n.SetBound(5)
	n.Indirect(1, 2, 3)
	if _, ok := n.Pop(notPresent); ok {
		t.Error("null engine never prefetches")
	}
	if n.Name() != "none" {
		t.Error("name")
	}
}

// TestQuickRegionPopNeverYieldsPresent: the queue never emits a candidate
// the present predicate rejects, and never emits the same block twice from
// one entry.
func TestQuickRegionPopNeverYieldsPresent(t *testing.T) {
	f := func(missBlock uint8, presentMask uint64) bool {
		base := uint64(0x100000)
		addr := base + uint64(missBlock%64)*64
		present := func(b uint64) bool {
			i := (b - base) / 64
			return i < 64 && presentMask&(1<<i) != 0
		}
		var q regionQueue
		e := makeRegion(addr, 64, present, 0)
		if e.bits == 0 {
			return true
		}
		q.pushHead(e)
		seen := map[uint64]bool{}
		for {
			b, _, ok := q.pop(present)
			if !ok {
				break
			}
			if present(b) || seen[b] || b == addr&^63 {
				return false
			}
			seen[b] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPopOpenFirstPrefersOpenRow(t *testing.T) {
	s := NewSRP()
	s.OnL2DemandMiss(MissEvent{Addr: 0x100000, Present: notPresent})
	// Pretend the row holding block 40 of the region is open.
	openBlock := uint64(0x100000 + 40*64)
	rowOpen := func(b uint64) bool { return b == openBlock }
	b, ok := s.PopOpenFirst(notPresent, rowOpen)
	if !ok || b != openBlock {
		t.Errorf("PopOpenFirst = %#x, want open-row block %#x", b, openBlock)
	}
	// With no open row, index order resumes after the popped block.
	b, ok = s.PopOpenFirst(notPresent, func(uint64) bool { return false })
	if !ok || b != 0x100000+41*64 {
		t.Errorf("fallback pop = %#x, want block 41", b)
	}
	// Nil rowOpen degrades to plain pop.
	if _, ok := s.PopOpenFirst(notPresent, nil); !ok {
		t.Error("nil rowOpen should still pop")
	}
}

func TestPopOpenFirstGRPCarriesCounter(t *testing.T) {
	fm := &fakeMem{words: map[uint64]uint64{0x200000: 0x300000}, lo: 0x200000, hi: 0x400000}
	g := NewGRP(DefaultGRPConfig(), fm)
	g.OnL2DemandMiss(MissEvent{Addr: 0x200000, Hint: isa.HintRecursive, Coeff: isa.FixedRegion, Present: notPresent})
	g.OnArrival(0x200000)
	b, ok := g.PopOpenFirst(notPresent, func(uint64) bool { return false })
	if !ok {
		t.Fatal("expected a candidate")
	}
	if _, armed := g.scanCtr.Get(b); !armed {
		t.Error("popped pointer target should be armed for scanning")
	}
}
