package prefetch

import (
	"fmt"

	"grp/internal/oamap"
)

// GHB is a Global History Buffer prefetcher in the PC/DC (per-PC index,
// delta-correlation) organization of Nesbit & Smith, the shape ChampSim's
// reference prefetcher uses. It is pure hardware — hints are ignored — and
// is the modern comparison point for the paper's stride engine: instead of
// per-PC last-address slots, every L2 miss appends to one circular history
// buffer whose entries for the same PC are linked into a chain, so the
// predictor sees each PC's full recent miss history and can lock onto a
// stride after two matching deltas.
//
// The buffer is circular: when the head wraps, the overwritten entry's
// slot is recycled, and every link or index-table pointer that still names
// it must be treated as dead. Rather than eagerly scanning the buffer and
// index table on every insertion (the reference implementation's O(N)
// invalidation sweep), each entry carries the global insertion sequence
// number it was written with, and each pointer stores the sequence number
// of its target: a link is live iff the target slot still holds that
// sequence number. Overwrites invalidate implicitly, in O(1), and the
// steady state allocates nothing.
type GHB struct {
	cfg   GHBConfig
	index []ghbIndexEntry
	hist  []ghbEntry
	seq   uint64 // global insertion counter; slot of insertion n is n % len(hist)

	// ring is the pending-candidate FIFO; a bounded ring so training
	// bursts never allocate. When full, the oldest candidate is dropped
	// in favor of the newer (more timely) one.
	ring     []uint64
	ringHead int
	ringLen  int

	// issued dedupes candidates across training events, exactly as the
	// stride engine's per-buffer sets do; periodically reset to stay
	// bounded.
	issued *oamap.U8

	stats Stats
}

// GHBConfig parameterizes the GHB engine.
type GHBConfig struct {
	// IndexEntries is the PC index table size (256 in the ChampSim
	// reference). The table is tagless: PCs are folded modulo the size,
	// and aliasing chains are tolerated, as in the reference.
	IndexEntries int
	// HistoryEntries is the circular history buffer size (256).
	HistoryEntries int
	// Degree is how many blocks are prefetched per correlated miss (4).
	Degree int
	// Lookahead is the stride multiple of the first prefetched block
	// (1 = the next block on the stream).
	Lookahead int
	// MaxQueue bounds the pending-candidate ring (32, the paper's
	// prefetch-queue size).
	MaxQueue int
}

// DefaultGHBConfig returns the ChampSim reference geometry.
func DefaultGHBConfig() GHBConfig {
	return GHBConfig{IndexEntries: 256, HistoryEntries: 256, Degree: 4, Lookahead: 1, MaxQueue: QueueSize}
}

// ghbEntry is one history-buffer slot. seq is the global insertion number
// this slot was last written with; prevPtr/prevSeq name the previous entry
// of the same index-table chain, live iff hist[prevPtr].seq == prevSeq.
type ghbEntry struct {
	blockNum uint64 // miss block number (address >> log2(BlockBytes))
	seq      uint64
	prevPtr  int32
	prevSeq  uint64
}

// ghbIndexEntry is one tagless index-table slot: the chain head, live iff
// hist[ptr].seq == seq.
type ghbIndexEntry struct {
	ptr int32
	seq uint64
}

// NewGHB builds a GHB engine; zero config fields take the defaults.
func NewGHB(cfg GHBConfig) *GHB {
	def := DefaultGHBConfig()
	if cfg.IndexEntries <= 0 {
		cfg.IndexEntries = def.IndexEntries
	}
	if cfg.HistoryEntries <= 0 {
		cfg.HistoryEntries = def.HistoryEntries
	}
	if cfg.Degree <= 0 {
		cfg.Degree = def.Degree
	}
	if cfg.Lookahead <= 0 {
		cfg.Lookahead = def.Lookahead
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = def.MaxQueue
	}
	return &GHB{
		cfg:    cfg,
		index:  make([]ghbIndexEntry, cfg.IndexEntries),
		hist:   make([]ghbEntry, cfg.HistoryEntries),
		ring:   make([]uint64, cfg.MaxQueue),
		issued: oamap.NewU8(),
		stats:  newStats(),
	}
}

// Name implements Engine.
func (g *GHB) Name() string { return "ghb" }

// live reports whether the (ptr, seq) link still names the entry it was
// created for: false once the circular buffer overwrote that slot.
func (g *GHB) live(ptr int32, seq uint64) bool {
	return seq != 0 && g.hist[ptr].seq == seq
}

// OnL2DemandMiss implements Engine: append the miss to the history buffer,
// link it into its PC's chain, and when the last two chain deltas agree,
// prefetch Degree blocks down the correlated stride.
func (g *GHB) OnL2DemandMiss(ev MissEvent) {
	if ev.Merged {
		return // train on primary misses only, like the stride engine
	}
	bn := ev.Addr / BlockBytes
	it := &g.index[(ev.PC/4)%uint64(len(g.index))]

	g.seq++
	slot := int32(g.seq % uint64(len(g.hist)))
	var prevPtr int32
	var prevSeq uint64
	if g.live(it.ptr, it.seq) {
		prevPtr, prevSeq = it.ptr, it.seq
	}
	g.hist[slot] = ghbEntry{blockNum: bn, seq: g.seq, prevPtr: prevPtr, prevSeq: prevSeq}
	it.ptr, it.seq = slot, g.seq

	// Delta correlation needs the two previous chain entries. A chain walk
	// stops at the first dead link (its target slot was overwritten), which
	// is exactly the reference implementation's prev_ptr invalidation.
	if !g.live(prevPtr, prevSeq) {
		return
	}
	p1 := g.hist[prevPtr]
	if !g.live(p1.prevPtr, p1.prevSeq) {
		return
	}
	p2 := g.hist[p1.prevPtr]

	stride1 := int64(bn) - int64(p1.blockNum)
	stride2 := int64(p1.blockNum) - int64(p2.blockNum)
	if stride1 == 0 || stride1 != stride2 {
		return
	}
	g.stats.recordRegion(g.cfg.Degree)
	for i := 0; i < g.cfg.Degree; i++ {
		cand := uint64(int64(bn)+int64(g.cfg.Lookahead+i)*stride1) * BlockBytes
		g.push(cand)
	}
}

// push enqueues a candidate block, deduplicating against recently queued
// candidates; when the ring is full the oldest pending candidate is
// dropped for the newer one.
func (g *GHB) push(block uint64) {
	if _, dup := g.issued.Get(block); dup {
		return
	}
	g.issued.Set(block, 1)
	if g.issued.Len() > 4*g.cfg.MaxQueue {
		// Bound the dedupe set by forgetting the oldest entries wholesale,
		// as the stride engine does; only dedupe quality is affected.
		g.issued.Reset()
		g.issued.Set(block, 1)
	}
	if g.ringLen == len(g.ring) {
		g.ringHead = (g.ringHead + 1) % len(g.ring)
		g.ringLen--
	}
	g.ring[(g.ringHead+g.ringLen)%len(g.ring)] = block
	g.ringLen++
}

// OnDemandHitPrefetched implements Engine. GHB trains on the miss stream
// only: a hit on a prefetched line means the stream is already covered.
func (*GHB) OnDemandHitPrefetched(uint64) {}

// OnArrival implements Engine; GHB does not inspect arriving data.
func (*GHB) OnArrival(uint64) {}

// Pop implements Engine: drain the pending ring in FIFO order.
func (g *GHB) Pop(present func(uint64) bool) (uint64, bool) {
	for g.ringLen > 0 {
		block := g.ring[g.ringHead]
		g.ringHead = (g.ringHead + 1) % len(g.ring)
		g.ringLen--
		if present != nil && present(block) {
			continue
		}
		g.stats.CandidatesPopped++
		return block, true
	}
	return 0, false
}

// SetBound implements Engine; pure hardware prefetching ignores hints.
func (*GHB) SetBound(uint64) {}

// Indirect implements Engine; pure hardware prefetching ignores hints.
func (*GHB) Indirect(uint64, uint64, uint) {}

// Stats implements Engine.
func (g *GHB) Stats() Stats { return g.stats }

// QueueLen implements QueueLenner.
func (g *GHB) QueueLen() int { return g.ringLen }

// CheckInvariants implements Checker: ring occupancy within bounds, every
// live history entry in its congruent slot, and every live link naming an
// in-range slot.
func (g *GHB) CheckInvariants() error {
	if g.ringLen < 0 || g.ringLen > len(g.ring) {
		return fmt.Errorf("ghb ring holds %d entries, capacity %d", g.ringLen, len(g.ring))
	}
	if g.ringHead < 0 || g.ringHead >= len(g.ring) {
		return fmt.Errorf("ghb ring head %d outside [0,%d)", g.ringHead, len(g.ring))
	}
	for i := range g.hist {
		e := &g.hist[i]
		if e.seq == 0 {
			continue
		}
		if e.seq > g.seq {
			return fmt.Errorf("ghb history slot %d: seq %d exceeds global %d", i, e.seq, g.seq)
		}
		if want := int32(e.seq % uint64(len(g.hist))); want != int32(i) {
			return fmt.Errorf("ghb history slot %d holds seq %d, which belongs in slot %d", i, e.seq, want)
		}
		if e.prevSeq != 0 && (e.prevPtr < 0 || int(e.prevPtr) >= len(g.hist)) {
			return fmt.Errorf("ghb history slot %d: prev pointer %d outside [0,%d)", i, e.prevPtr, len(g.hist))
		}
	}
	for i := range g.index {
		it := &g.index[i]
		if it.seq != 0 && (it.ptr < 0 || int(it.ptr) >= len(g.hist)) {
			return fmt.Errorf("ghb index slot %d: pointer %d outside [0,%d)", i, it.ptr, len(g.hist))
		}
	}
	return nil
}
