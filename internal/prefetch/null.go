package prefetch

// Null is the no-prefetching engine used by the baseline, perfect-L1, and
// perfect-L2 configurations.
type Null struct{ stats Stats }

// NewNull returns a no-op engine.
func NewNull() *Null { return &Null{stats: newStats()} }

// Name implements Engine.
func (*Null) Name() string { return "none" }

// OnL2DemandMiss implements Engine.
func (*Null) OnL2DemandMiss(MissEvent) {}

// OnDemandHitPrefetched implements Engine.
func (*Null) OnDemandHitPrefetched(uint64) {}

// OnArrival implements Engine.
func (*Null) OnArrival(uint64) {}

// Pop implements Engine.
func (*Null) Pop(func(uint64) bool) (uint64, bool) { return 0, false }

// QueueLen implements QueueLenner.
func (*Null) QueueLen() int { return 0 }

// SetBound implements Engine.
func (*Null) SetBound(uint64) {}

// Indirect implements Engine.
func (*Null) Indirect(uint64, uint64, uint) {}

// Stats implements Engine.
func (n *Null) Stats() Stats { return n.stats }
