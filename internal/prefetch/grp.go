package prefetch

import (
	"grp/internal/isa"
	"grp/internal/oamap"
)

// MemReader is the slice of simulated memory the pointer-scanning hardware
// needs: word reads (the engine inspects returned cache lines) and the
// heap base-and-bounds test of Section 3.2.
type MemReader interface {
	Read64(addr uint64) uint64
	Read32(addr uint64) uint32
	InHeap(addr uint64) bool
}

// GRPConfig parameterizes the GRP engine.
type GRPConfig struct {
	// Variable enables compiler-controlled variable-size region
	// prefetching (GRP/Var); when false the engine is GRP/Fix.
	Variable bool
	// RecursionDepth is the initial counter for recursive pointer hints
	// (6 in the paper; 3 for mcf to keep simulation tractable, footnote 2).
	RecursionDepth uint8
	// PtrBlocks is how many blocks to prefetch per discovered pointer
	// (2 in the paper: the target block and its successor, Sec. 3.3.1).
	PtrBlocks int
}

// DefaultGRPConfig returns the paper's settings.
func DefaultGRPConfig() GRPConfig {
	return GRPConfig{Variable: true, RecursionDepth: 6, PtrBlocks: 2}
}

// GRP is the guided region prefetching engine: SRP-style region prefetching
// gated by compiler spatial hints, variable region sizes from size hints,
// pointer scanning driven by pointer/recursive hints, and indirect array
// prefetching from PREFI instructions.
type GRP struct {
	cfg   GRPConfig
	mem   MemReader
	q     regionQueue
	stats Stats

	// bound is the most recent SETBOUND value (loop trip count).
	bound uint64
	// scanCtr maps blocks awaiting arrival to their pointer-chase counter.
	scanCtr *oamap.U8

	// Indirect's per-call region-coalescing scratch (≤ 16 targets per
	// PREFI); kept on the engine so the hot path allocates nothing.
	indBase [16]uint64
	indBits [16]uint64
}

// NewGRP builds a GRP engine reading scanned lines from mem.
func NewGRP(cfg GRPConfig, mem MemReader) *GRP {
	if cfg.PtrBlocks <= 0 {
		cfg.PtrBlocks = 2
	}
	if cfg.RecursionDepth == 0 {
		cfg.RecursionDepth = 6
	}
	return &GRP{cfg: cfg, mem: mem, stats: newStats(), scanCtr: oamap.NewU8()}
}

// Name implements Engine.
func (g *GRP) Name() string {
	if g.cfg.Variable {
		return "grp/var"
	}
	return "grp/fix"
}

// regionBlocksFor computes the region size in blocks for a spatial miss.
// With variable sizing and a known loop bound, the region size is
// bound << coeff bytes (Sec. 3.3.2), rounded up to a power of two between 2
// and 64 blocks; coefficient 7 (FixedRegion) selects the fixed 4 KB region.
func (g *GRP) regionBlocksFor(coeff uint8) int {
	if !g.cfg.Variable || coeff == isa.FixedRegion {
		return RegionBlocks
	}
	if coeff == 0 {
		// Coefficient 0 is reserved: the compiler could not guarantee the
		// extent of the locality (propagated pointer-target hints) and
		// requests the minimum region.
		return 2
	}
	bound := g.bound
	if bound == 0 {
		bound = 1 // no SETBOUND seen: the minimum region
	}
	bytes := bound << coeff
	blocks := int((bytes + BlockBytes - 1) / BlockBytes)
	p := 2
	for p < blocks {
		p <<= 1
	}
	if p > RegionBlocks {
		p = RegionBlocks
	}
	return p
}

// OnL2DemandMiss implements Engine. Unlike SRP, GRP initiates a spatial
// prefetch only when the missing load carries a spatial hint, and arms the
// pointer scanner only for pointer/recursive hints (Sec. 3.3).
func (g *GRP) OnL2DemandMiss(ev MissEvent) {
	miss := ev.Addr &^ uint64(BlockBytes-1)

	if ev.Merged {
		// The merged request's hint bits land in the MSHR: raise the
		// pointer counter if this request is more aggressive than the one
		// that allocated the miss.
		var want uint8
		switch {
		case ev.Hint.Has(isa.HintRecursive):
			want = g.cfg.RecursionDepth
		case ev.Hint.Has(isa.HintPointer):
			want = 1
		default:
			return
		}
		if cur, _ := g.scanCtr.Get(miss); cur < want {
			g.scanCtr.Set(miss, want)
		}
		return
	}

	if ev.Hint.Has(isa.HintSpatial) {
		blocks := g.regionBlocksFor(ev.Coeff)
		size := uint64(blocks) * BlockBytes
		base := ev.Addr &^ (size - 1)
		if i := g.q.find(base); i >= 0 && int(g.q.entries[i].blocks) == blocks {
			g.q.entries[i].retarget(ev.Addr)
			g.q.moveToHead(i)
			g.stats.RegionsRecycled++
		} else {
			e := makeRegion(ev.Addr, blocks, ev.Present, 0)
			if e.bits != 0 {
				g.q.pushHead(e)
				g.stats.recordRegion(blocks)
			}
		}
	}

	switch {
	case ev.Hint.Has(isa.HintRecursive):
		g.scanCtr.Set(miss, g.cfg.RecursionDepth)
	case ev.Hint.Has(isa.HintPointer):
		g.scanCtr.Set(miss, 1)
	}
}

// OnDemandHitPrefetched implements Engine.
func (*GRP) OnDemandHitPrefetched(uint64) {}

// OnArrival implements Engine: when a line with a nonzero pointer counter
// arrives, scan its eight 8-byte words; every value passing the heap
// base-and-bounds test queues a two-block prefetch whose entry inherits the
// decremented counter (Sec. 3.3.1).
func (g *GRP) OnArrival(block uint64) {
	ctr, ok := g.scanCtr.Get(block)
	if !ok {
		return
	}
	g.scanCtr.Delete(block)
	if ctr == 0 {
		return
	}
	g.scanBlock(block, ctr-1)
}

func (g *GRP) scanBlock(block uint64, childCtr uint8) {
	g.stats.PointerScans++
	for off := uint64(0); off < BlockBytes; off += 8 {
		v := g.mem.Read64(block + off)
		if !g.mem.InHeap(v) {
			continue
		}
		g.stats.PointersFound++
		g.enqueuePtrTarget(v, childCtr)
	}
}

// enqueuePtrTarget queues PtrBlocks blocks starting at the block containing
// addr, as a region-style entry carrying the child pointer counter.
func (g *GRP) enqueuePtrTarget(addr uint64, ctr uint8) {
	base := addr &^ uint64(BlockBytes-1)
	bits, blocks := ptrRegionBits(base, g.cfg.PtrBlocks)
	e := regionEntry{base: base, bits: bits, idx: 0, blocks: uint8(blocks), ptrCtr: ctr}
	g.q.pushHead(e)
	g.stats.recordRegion(blocks)
}

// Pop implements Engine. Blocks popped from entries with a nonzero pointer
// counter are registered for scanning when their data arrives.
func (g *GRP) Pop(present func(uint64) bool) (uint64, bool) {
	b, ctr, ok := g.q.pop(present)
	if !ok {
		return 0, false
	}
	g.stats.CandidatesPopped++
	if ctr > 0 {
		g.scanCtr.Set(b, ctr)
	}
	return b, true
}

// PopOpenFirst implements OpenPageAware.
func (g *GRP) PopOpenFirst(present, rowOpen func(uint64) bool) (uint64, bool) {
	b, ctr, ok := g.q.popOpenFirst(present, rowOpen)
	if !ok {
		return 0, false
	}
	g.stats.CandidatesPopped++
	if ctr > 0 {
		g.scanCtr.Set(b, ctr)
	}
	return b, true
}

// SetBound implements Engine (Sec. 3.3.2).
func (g *GRP) SetBound(v uint64) { g.bound = v }

// Indirect implements Engine: read the cache block containing the indexing
// element and, for each 4-byte word, prefetch the block holding
// base + index<<shift (Sec. 3.3.3, up to 16 prefetches per instruction).
// Addresses falling in the same region are coalesced into one queue entry.
func (g *GRP) Indirect(indexElemAddr, base uint64, shift uint) {
	g.stats.IndirectInstrs++
	idxBlock := indexElemAddr &^ uint64(BlockBytes-1)
	// Coalesce targets by region, preserving first-appearance order so the
	// simulation stays deterministic. At most 16 targets per PREFI, so a
	// linear scan of the scratch arrays beats a heap-allocated map.
	n := 0
	const regionSize = uint64(RegionBlocks) * BlockBytes
	for off := uint64(0); off < BlockBytes; off += 4 {
		idx := uint64(g.mem.Read32(idxBlock + off))
		target := base + (idx << shift)
		g.stats.IndirectPrefetches++
		rbase := target &^ (regionSize - 1)
		pos := (target - rbase) / BlockBytes
		slot := -1
		for i := 0; i < n; i++ {
			if g.indBase[i] == rbase {
				slot = i
				break
			}
		}
		if slot < 0 {
			slot = n
			g.indBase[slot], g.indBits[slot] = rbase, 0
			n++
		}
		g.indBits[slot] |= 1 << uint(pos)
	}
	for k := 0; k < n; k++ {
		rbase, bits := g.indBase[k], g.indBits[k]
		if i := g.q.find(rbase); i >= 0 {
			g.q.entries[i].bits |= bits
			g.q.moveToHead(i)
			continue
		}
		g.q.pushHead(regionEntry{base: rbase, bits: bits, blocks: RegionBlocks})
	}
}

// Stats implements Engine.
func (g *GRP) Stats() Stats { return g.stats }

// QueueLen implements QueueLenner.
func (g *GRP) QueueLen() int { return g.q.len() }
