package prefetch

// SRP is scheduled region prefetching (Lin et al., reproduced in the
// paper's Section 3.1): every L2 demand miss allocates a fixed 4 KB region
// entry in the LIFO prefetch queue, with a bit vector of the blocks not
// already cached. It uses no compiler information, which is what makes it
// consume copious bandwidth on low-locality references.
type SRP struct {
	q     regionQueue
	stats Stats

	// RegionBlocks is the region size in cache blocks (default 64 = 4 KB;
	// must be a power of two ≤ 64). An ablation knob.
	RegionBlocks int
	// FIFO issues from the oldest queue entry instead of the paper's LIFO
	// scheduling. An ablation knob.
	FIFO bool
}

// NewSRP returns an SRP engine with the paper's parameters.
func NewSRP() *SRP { return &SRP{stats: newStats(), RegionBlocks: RegionBlocks} }

// Name implements Engine.
func (*SRP) Name() string { return "srp" }

// OnL2DemandMiss implements Engine: allocate or retarget a region entry.
func (s *SRP) OnL2DemandMiss(ev MissEvent) {
	if ev.Merged {
		return // the original miss already allocated the region
	}
	blocks := s.RegionBlocks
	if blocks <= 0 || blocks > RegionBlocks {
		blocks = RegionBlocks
	}
	size := uint64(blocks) * BlockBytes
	base := ev.Addr &^ (size - 1)
	if i := s.q.find(base); i >= 0 {
		s.q.entries[i].retarget(ev.Addr)
		if !s.FIFO {
			s.q.moveToHead(i)
		}
		s.stats.RegionsRecycled++
		return
	}
	e := makeRegion(ev.Addr, blocks, ev.Present, 0)
	if e.bits == 0 {
		return // whole region already cached
	}
	if s.FIFO {
		s.q.pushTail(e)
	} else {
		s.q.pushHead(e)
	}
	s.stats.recordRegion(blocks)
}

// OnDemandHitPrefetched implements Engine.
func (*SRP) OnDemandHitPrefetched(uint64) {}

// OnArrival implements Engine; SRP performs no pointer scanning.
func (*SRP) OnArrival(uint64) {}

// Pop implements Engine.
func (s *SRP) Pop(present func(uint64) bool) (uint64, bool) {
	b, _, ok := s.q.pop(present)
	if ok {
		s.stats.CandidatesPopped++
	}
	return b, ok
}

// PopOpenFirst implements OpenPageAware.
func (s *SRP) PopOpenFirst(present, rowOpen func(uint64) bool) (uint64, bool) {
	b, _, ok := s.q.popOpenFirst(present, rowOpen)
	if ok {
		s.stats.CandidatesPopped++
	}
	return b, ok
}

// QueueLen implements QueueLenner.
func (s *SRP) QueueLen() int { return s.q.len() }

// SetBound implements Engine; SRP ignores compiler information.
func (*SRP) SetBound(uint64) {}

// Indirect implements Engine; SRP ignores compiler information.
func (*SRP) Indirect(uint64, uint64, uint) {}

// Stats implements Engine.
func (s *SRP) Stats() Stats { return s.stats }
