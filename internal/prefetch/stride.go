package prefetch

import "grp/internal/oamap"

// Stride implements a Sherwood-style predictor-directed stream buffer
// prefetcher (Section 5.1: a 4-way, 1K-entry PC-indexed stride history
// table feeding 8 stream buffers of 8 entries each). It is the pure
// hardware comparison point with the highest accuracy and lowest coverage
// in the paper's Table 5.
type Stride struct {
	table   []strideEntry // sets*ways, way-major within set
	sets    int
	ways    int
	buffers []streamBuffer
	rr      int // round-robin pop cursor over buffers
	stats   Stats
	tick    uint64 // logical time for LRU decisions

	cfgDepth      int   // entries per stream buffer
	confThreshold uint8 // confidence needed to allocate a stream
}

type strideEntry struct {
	valid  bool
	pc     uint64
	last   uint64
	stride int64
	conf   uint8 // 2-bit saturating confidence
	used   uint64
}

type streamBuffer struct {
	valid   bool
	next    uint64 // next address to prefetch in the stream
	stride  int64
	pending []uint64  // candidate blocks not yet popped
	issued  *oamap.U8 // dedupe set of already-issued blocks
	lastBlk uint64
	used    uint64
}

// StrideConfig parameterizes the stride engine.
type StrideConfig struct {
	TableEntries  int // total entries (1024 in the paper)
	TableWays     int // associativity (4)
	NumBuffers    int // stream buffers (8)
	BufferDepth   int // entries per buffer (8)
	ConfThreshold uint8
}

// DefaultStrideConfig returns the paper's configuration.
func DefaultStrideConfig() StrideConfig {
	return StrideConfig{TableEntries: 1024, TableWays: 4, NumBuffers: 8, BufferDepth: 8, ConfThreshold: 2}
}

// NewStride builds a stride engine.
func NewStride(cfg StrideConfig) *Stride {
	if cfg.TableEntries == 0 {
		cfg = DefaultStrideConfig()
	}
	s := &Stride{
		table:   make([]strideEntry, cfg.TableEntries),
		sets:    cfg.TableEntries / cfg.TableWays,
		ways:    cfg.TableWays,
		buffers: make([]streamBuffer, cfg.NumBuffers),
		stats:   newStats(),
	}
	s.cfgDepth = cfg.BufferDepth
	s.confThreshold = cfg.ConfThreshold
	return s
}

// Name implements Engine.
func (*Stride) Name() string { return "stride" }

// OnL2DemandMiss implements Engine: train the stride table and, when a PC's
// stride is confident, (re)allocate a stream buffer that runs ahead of it.
func (s *Stride) OnL2DemandMiss(ev MissEvent) {
	if ev.Merged {
		return // train on primary misses only
	}
	s.tick++
	e := s.lookup(ev.PC)
	if e == nil {
		e = s.victim(ev.PC)
		*e = strideEntry{valid: true, pc: ev.PC, last: ev.Addr, used: s.tick}
		return
	}
	e.used = s.tick
	ns := int64(ev.Addr) - int64(e.last)
	e.last = ev.Addr
	if ns == 0 {
		return
	}
	if ns == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		} else {
			e.stride = ns
		}
	}
	if e.conf >= s.confThreshold && e.stride != 0 {
		s.allocBuffer(ev.Addr, e.stride)
	}
}

func (s *Stride) lookup(pc uint64) *strideEntry {
	set := int(pc/4) % s.sets
	for w := 0; w < s.ways; w++ {
		e := &s.table[set*s.ways+w]
		if e.valid && e.pc == pc {
			return e
		}
	}
	return nil
}

func (s *Stride) victim(pc uint64) *strideEntry {
	set := int(pc/4) % s.sets
	best := &s.table[set*s.ways]
	for w := 1; w < s.ways; w++ {
		e := &s.table[set*s.ways+w]
		if !e.valid {
			return e
		}
		if e.used < best.used {
			best = e
		}
	}
	return best
}

// allocBuffer starts (or restarts) a stream buffer at addr+stride. If a
// buffer is already following this stream it is refreshed rather than
// duplicated.
func (s *Stride) allocBuffer(addr uint64, stride int64) {
	next := uint64(int64(addr) + stride)
	for i := range s.buffers {
		b := &s.buffers[i]
		if b.valid && b.stride == stride && sameStream(b, next) {
			b.used = s.tick
			return
		}
	}
	// Replace the least recently used buffer.
	victim := &s.buffers[0]
	for i := range s.buffers {
		if !s.buffers[i].valid {
			victim = &s.buffers[i]
			break
		}
		if s.buffers[i].used < victim.used {
			victim = &s.buffers[i]
		}
	}
	// Reuse the victim's dedupe table and pending backing array: stream
	// reallocation is frequent, and fresh maps here dominated the
	// engine's allocation profile.
	issued := victim.issued
	if issued == nil {
		issued = oamap.NewU8()
	} else {
		issued.Reset()
	}
	*victim = streamBuffer{
		valid:   true,
		next:    next,
		stride:  stride,
		pending: victim.pending[:0],
		issued:  issued,
		used:    s.tick,
	}
	for n := 0; n < s.cfgDepth; n++ {
		s.extend(victim)
	}
}

// sameStream reports whether next falls on b's stream within its window.
// For sub-block strides the comparison is at block granularity (extend()
// advances b.next by many element steps per block, so the element-level
// test would reject the stream's own continuation and allocate duplicate
// buffers).
func sameStream(b *streamBuffer, next uint64) bool {
	if b.stride == 0 {
		return false
	}
	stride := b.stride
	if stride < 0 {
		stride = -stride
	}
	if stride < BlockBytes {
		d := int64(next&^uint64(BlockBytes-1)) - int64(b.lastBlk)
		blocks := d / BlockBytes
		return blocks >= -16 && blocks <= 16
	}
	d := int64(next) - int64(b.next)
	q := d / b.stride
	return d%b.stride == 0 && q >= -16 && q <= 16
}

// extend appends the next block of b's stream to its pending list,
// skipping duplicates of the previous block (sub-block strides).
func (s *Stride) extend(b *streamBuffer) {
	for tries := 0; tries < 64; tries++ {
		blk := b.next &^ uint64(BlockBytes-1)
		b.next = uint64(int64(b.next) + b.stride)
		if blk == b.lastBlk && b.lastBlk != 0 {
			continue
		}
		if _, dup := b.issued.Get(blk); dup {
			continue
		}
		b.lastBlk = blk
		b.issued.Set(blk, 1)
		if b.issued.Len() > 4*s.cfgDepth {
			// Bound the issued set; forget the oldest by resetting. The
			// pending list retains correctness; this only affects dedupe.
			b.issued.Reset()
			b.issued.Set(blk, 1)
		}
		b.pending = append(b.pending, blk)
		return
	}
}

// OnDemandHitPrefetched implements Engine: a hit on a prefetched block
// advances whichever stream produced it.
func (s *Stride) OnDemandHitPrefetched(block uint64) {
	s.tick++
	for i := range s.buffers {
		b := &s.buffers[i]
		if !b.valid {
			continue
		}
		if _, hit := b.issued.Get(block); hit {
			b.used = s.tick
			s.extend(b)
			return
		}
	}
}

// OnArrival implements Engine.
func (*Stride) OnArrival(uint64) {}

// Pop implements Engine: drain buffers round-robin.
func (s *Stride) Pop(present func(uint64) bool) (uint64, bool) {
	n := len(s.buffers)
	for k := 0; k < n; k++ {
		b := &s.buffers[(s.rr+k)%n]
		for b.valid && len(b.pending) > 0 {
			blk := b.pending[0]
			b.pending = b.pending[1:]
			if present != nil && present(blk) {
				continue
			}
			s.rr = (s.rr + k + 1) % n
			s.stats.CandidatesPopped++
			return blk, true
		}
	}
	return 0, false
}

// SetBound implements Engine; hardware stride prefetching ignores hints.
func (*Stride) SetBound(uint64) {}

// Indirect implements Engine; hardware stride prefetching ignores hints.
func (*Stride) Indirect(uint64, uint64, uint) {}

// Stats implements Engine.
func (s *Stride) Stats() Stats { return s.stats }

// QueueLen implements QueueLenner: the total pending (not yet popped)
// blocks across all live stream buffers.
func (s *Stride) QueueLen() int {
	n := 0
	for i := range s.buffers {
		if s.buffers[i].valid {
			n += len(s.buffers[i].pending)
		}
	}
	return n
}
