package prefetch

import (
	"grp/internal/isa"
	"grp/internal/oamap"
)

// adaptParams is one rung's worth of engine configuration: how much
// speculation each aggressiveness state permits.
type adaptParams struct {
	// maxRegionBlocks caps the spatial region size (the hinted size still
	// applies, but conservative rungs shrink oversized regions).
	maxRegionBlocks int
	// ptrBlocks is how many blocks to fetch per discovered pointer.
	ptrBlocks int
	// chaseDepth caps the recursive pointer-chase counter.
	chaseDepth uint8
	// queueCap bounds the prefetch queue (the prioritizer threshold:
	// a shorter queue means less stale speculation competing for idle
	// channels).
	queueCap int
	// fallbackBlocks, when nonzero, opens an SRP-style region of that many
	// blocks on unhinted primary misses — the aggressive rungs' answer to
	// absent or untrustworthy hints.
	fallbackBlocks int
}

// adaptLadderParams maps each ladder rung to its parameters. The middle
// rung reproduces GRP/Var's paper-faithful operating point exactly;
// conservative rungs shrink regions, pointer fan-out, chase depth, and the
// queue; aggressive rungs add hardware-only region fallback and wider
// pointer fan-out.
var adaptLadderParams = [NumLadderStates]adaptParams{
	VeryConservative:  {maxRegionBlocks: 4, ptrBlocks: 1, chaseDepth: 1, queueCap: 8, fallbackBlocks: 0},
	ConservativeState: {maxRegionBlocks: 16, ptrBlocks: 1, chaseDepth: 2, queueCap: 16, fallbackBlocks: 0},
	MiddleOfTheRoad:   {maxRegionBlocks: 64, ptrBlocks: 2, chaseDepth: 6, queueCap: QueueSize, fallbackBlocks: 0},
	AggressiveState:   {maxRegionBlocks: 64, ptrBlocks: 2, chaseDepth: 6, queueCap: QueueSize, fallbackBlocks: 8},
	VeryAggressive:    {maxRegionBlocks: 64, ptrBlocks: 4, chaseDepth: 6, queueCap: QueueSize, fallbackBlocks: 32},
}

// adaptTrackCap bounds the feedback tracking map; when it grows past this
// the map is reset wholesale (only feedback fidelity is affected, never
// timing of the prefetches themselves).
const adaptTrackCap = 4096

// AdaptiveGRP is GRP/Var wrapped in the aggressiveness ladder: the same
// hint-guided region/pointer/indirect machinery, but with region size,
// pointer fan-out, chase depth, and queue capacity moving along the
// 5-state ladder, stepped each epoch from counters the engine measures
// about its own prefetches.
//
// The feedback counters are deliberately self-tracked (a small oamap of
// this engine's in-flight and resident prefetches) rather than read from
// the attribution ledger: the ledger is an optional observer that must
// never change timing, and the adaptive engine must behave identically
// with and without it attached.
type AdaptiveGRP struct {
	cfg    GRPConfig
	mem    MemReader
	q      regionQueue
	stats  Stats
	ladder *Ladder

	// bound is the most recent SETBOUND value (loop trip count).
	bound uint64
	// scanCtr maps blocks awaiting arrival to their pointer-chase counter.
	scanCtr *oamap.U8
	// track follows this engine's own prefetches for ladder feedback:
	// 1 = issued and still in flight, 2 = resident in the L2.
	track *oamap.U8

	// Indirect's per-call region-coalescing scratch, as in GRP.
	indBase [16]uint64
	indBits [16]uint64
}

// NewAdaptiveGRP builds an adaptive GRP engine reading scanned lines from
// mem. cfg carries the same knobs as GRP/Var (recursion depth, pointer
// blocks); the ladder scales them per rung but never exceeds them.
func NewAdaptiveGRP(cfg GRPConfig, mem MemReader) *AdaptiveGRP {
	if cfg.PtrBlocks <= 0 {
		cfg.PtrBlocks = 2
	}
	if cfg.RecursionDepth == 0 {
		cfg.RecursionDepth = 6
	}
	cfg.Variable = true
	return &AdaptiveGRP{
		cfg:     cfg,
		mem:     mem,
		stats:   newStats(),
		ladder:  NewLadder(),
		scanCtr: oamap.NewU8(),
		track:   oamap.NewU8(),
	}
}

// Name implements Engine.
func (a *AdaptiveGRP) Name() string { return "grp-adaptive" }

// Rung returns the ladder's current state (for tests and telemetry).
func (a *AdaptiveGRP) Rung() LadderState { return a.ladder.State() }

// LadderTransitions returns how many epoch boundaries changed the state.
func (a *AdaptiveGRP) LadderTransitions() uint64 { return a.ladder.Transitions }

// params returns the current rung's parameters. A tampered out-of-range
// state indexes the top rung (rung() clamps) so the run survives until
// CheckInvariants reports it.
func (a *AdaptiveGRP) params() adaptParams { return adaptLadderParams[a.ladder.rung()] }

// chaseDepth caps the configured recursion depth at the rung's limit.
func (a *AdaptiveGRP) chaseDepth(p adaptParams) uint8 {
	if a.cfg.RecursionDepth < p.chaseDepth {
		return a.cfg.RecursionDepth
	}
	return p.chaseDepth
}

// regionBlocksFor is GRP/Var's size computation capped at the rung's
// maximum: bound << coeff bytes rounded up to a power of two, clamped to
// [2, maxRegionBlocks].
func (a *AdaptiveGRP) regionBlocksFor(coeff uint8, p adaptParams) int {
	blocks := p.maxRegionBlocks
	if coeff != isa.FixedRegion {
		if coeff == 0 {
			return 2
		}
		bound := a.bound
		if bound == 0 {
			bound = 1
		}
		bytes := bound << coeff
		want := int((bytes + BlockBytes - 1) / BlockBytes)
		pow := 2
		for pow < want {
			pow <<= 1
		}
		if pow < blocks {
			blocks = pow
		}
	}
	return blocks
}

// OnL2DemandMiss implements Engine: GRP's hint-gated behavior, with the
// rung's caps applied and — on the aggressive rungs — an SRP-style region
// fallback for unhinted misses.
func (a *AdaptiveGRP) OnL2DemandMiss(ev MissEvent) {
	miss := ev.Addr &^ uint64(BlockBytes-1)

	if ev.Merged {
		// Merged hint bits can still raise the pointer counter, capped at
		// the rung's chase depth.
		p := a.params()
		var want uint8
		switch {
		case ev.Hint.Has(isa.HintRecursive):
			want = a.chaseDepth(p)
		case ev.Hint.Has(isa.HintPointer):
			want = 1
		default:
			return
		}
		if cur, _ := a.scanCtr.Get(miss); cur < want {
			a.scanCtr.Set(miss, want)
		}
		return
	}

	// Primary misses advance the coverage denominator; this may close the
	// epoch and step the ladder, so fetch the rung's parameters after.
	a.ladder.RecordMiss()
	p := a.params()
	a.q.cap = p.queueCap

	switch {
	case ev.Hint.Has(isa.HintSpatial):
		blocks := a.regionBlocksFor(ev.Coeff, p)
		a.openRegion(ev, blocks)
	case p.fallbackBlocks > 0:
		// No spatial hint (absent, dropped, or corrupted away): on the
		// aggressive rungs, prefetch the surrounding region anyway.
		a.openRegion(ev, p.fallbackBlocks)
	}

	switch {
	case ev.Hint.Has(isa.HintRecursive):
		a.scanCtr.Set(miss, a.chaseDepth(p))
	case ev.Hint.Has(isa.HintPointer):
		a.scanCtr.Set(miss, 1)
	}
}

// openRegion allocates or recycles a region entry of the given power-of-two
// block count around the miss, exactly as GRP does.
func (a *AdaptiveGRP) openRegion(ev MissEvent, blocks int) {
	size := uint64(blocks) * BlockBytes
	base := ev.Addr &^ (size - 1)
	if i := a.q.find(base); i >= 0 && int(a.q.entries[i].blocks) == blocks {
		a.q.entries[i].retarget(ev.Addr)
		a.q.moveToHead(i)
		a.stats.RegionsRecycled++
		return
	}
	e := makeRegion(ev.Addr, blocks, ev.Present, 0)
	if e.bits != 0 {
		a.q.pushHead(e)
		a.stats.recordRegion(blocks)
	}
}

// OnDemandHitPrefetched implements Engine: a demand access hit one of this
// engine's prefetches — the useful counter's trigger. A hit while the
// block is still in flight (tracked state 1: the demand merged into the
// outstanding prefetch) counts as late.
func (a *AdaptiveGRP) OnDemandHitPrefetched(block uint64) {
	st, ok := a.track.Get(block)
	if !ok {
		return // tracking was reset under this block; forgo the feedback
	}
	a.track.Delete(block)
	a.ladder.RecordUseful(st == 1)
}

// OnArrival implements Engine: mark tracked prefetches resident, then run
// GRP's pointer scan for lines with a pending chase counter.
func (a *AdaptiveGRP) OnArrival(block uint64) {
	if st, ok := a.track.Get(block); ok && st == 1 {
		a.track.Set(block, 2)
	}
	ctr, ok := a.scanCtr.Get(block)
	if !ok {
		return
	}
	a.scanCtr.Delete(block)
	if ctr == 0 {
		return
	}
	a.scanBlock(block, ctr-1)
}

func (a *AdaptiveGRP) scanBlock(block uint64, childCtr uint8) {
	a.stats.PointerScans++
	ptrBlocks := a.params().ptrBlocks
	for off := uint64(0); off < BlockBytes; off += 8 {
		v := a.mem.Read64(block + off)
		if !a.mem.InHeap(v) {
			continue
		}
		a.stats.PointersFound++
		a.enqueuePtrTarget(v, childCtr, ptrBlocks)
	}
}

// enqueuePtrTarget queues ptrBlocks blocks starting at the block containing
// addr, carrying the child pointer counter.
func (a *AdaptiveGRP) enqueuePtrTarget(addr uint64, ctr uint8, ptrBlocks int) {
	base := addr &^ uint64(BlockBytes-1)
	bits, blocks := ptrRegionBits(base, ptrBlocks)
	a.q.pushHead(regionEntry{base: base, bits: bits, idx: 0, blocks: uint8(blocks), ptrCtr: ctr})
	a.stats.recordRegion(blocks)
}

// noteIssue records a popped candidate for ladder feedback. Issuing may
// close the epoch (issue bound), so it runs after the pop decided.
func (a *AdaptiveGRP) noteIssue(block uint64) {
	if a.track.Len() >= adaptTrackCap {
		a.track.Reset()
	}
	a.track.Set(block, 1)
	a.ladder.RecordIssue()
}

// Pop implements Engine.
func (a *AdaptiveGRP) Pop(present func(uint64) bool) (uint64, bool) {
	b, ctr, ok := a.q.pop(present)
	if !ok {
		return 0, false
	}
	a.stats.CandidatesPopped++
	if ctr > 0 {
		a.scanCtr.Set(b, ctr)
	}
	a.noteIssue(b)
	return b, true
}

// PopOpenFirst implements OpenPageAware.
func (a *AdaptiveGRP) PopOpenFirst(present, rowOpen func(uint64) bool) (uint64, bool) {
	b, ctr, ok := a.q.popOpenFirst(present, rowOpen)
	if !ok {
		return 0, false
	}
	a.stats.CandidatesPopped++
	if ctr > 0 {
		a.scanCtr.Set(b, ctr)
	}
	a.noteIssue(b)
	return b, true
}

// SetBound implements Engine.
func (a *AdaptiveGRP) SetBound(v uint64) { a.bound = v }

// Indirect implements Engine, identically to GRP: PREFI targets are
// indirect hints whose accuracy the ladder measures like any other issued
// prefetch, so the instruction itself is never throttled.
func (a *AdaptiveGRP) Indirect(indexElemAddr, base uint64, shift uint) {
	a.stats.IndirectInstrs++
	idxBlock := indexElemAddr &^ uint64(BlockBytes-1)
	n := 0
	const regionSize = uint64(RegionBlocks) * BlockBytes
	for off := uint64(0); off < BlockBytes; off += 4 {
		idx := uint64(a.mem.Read32(idxBlock + off))
		target := base + (idx << shift)
		a.stats.IndirectPrefetches++
		rbase := target &^ (regionSize - 1)
		pos := (target - rbase) / BlockBytes
		slot := -1
		for i := 0; i < n; i++ {
			if a.indBase[i] == rbase {
				slot = i
				break
			}
		}
		if slot < 0 {
			slot = n
			a.indBase[slot], a.indBits[slot] = rbase, 0
			n++
		}
		a.indBits[slot] |= 1 << uint(pos)
	}
	for k := 0; k < n; k++ {
		rbase, bits := a.indBase[k], a.indBits[k]
		if i := a.q.find(rbase); i >= 0 {
			a.q.entries[i].bits |= bits
			a.q.moveToHead(i)
			continue
		}
		a.q.pushHead(regionEntry{base: rbase, bits: bits, blocks: RegionBlocks})
	}
}

// Stats implements Engine.
func (a *AdaptiveGRP) Stats() Stats { return a.stats }

// QueueLen implements QueueLenner.
func (a *AdaptiveGRP) QueueLen() int { return a.q.len() }

// CheckInvariants implements Checker: the region queue's invariants plus
// the ladder's (a tampered transition function lands the state outside the
// ladder, which must surface here, not as a crash).
func (a *AdaptiveGRP) CheckInvariants() error {
	if err := a.ladder.CheckInvariants(); err != nil {
		return err
	}
	return a.q.checkInvariants()
}
