// Package prefetch implements the prefetch engines compared in the paper:
//
//   - SRP, scheduled region prefetching (Lin et al.), which allocates a
//     4 KB region entry on every L2 miss;
//   - Stride, Sherwood-style predictor-directed stream buffers;
//   - GRP, the paper's contribution: SRP hardware gated and extended by
//     compiler hints (spatial, size, pointer, recursive pointer, indirect);
//   - PointerOnly, the pure-hardware greedy pointer prefetcher of
//     Section 3.2 (used for Figure 9);
//   - Null, no prefetching.
//
// All engines produce block-granularity prefetch candidates that the memory
// system's access prioritizer issues only when the memory channels are
// otherwise idle and no demand miss is outstanding (Figure 2).
package prefetch

import "grp/internal/isa"

// MissEvent describes a demand miss at the L2, the trigger for all region
// and pointer prefetching.
type MissEvent struct {
	PC   uint64
	Addr uint64
	// Hint and Coeff are the compiler hints riding on the missing load;
	// they are zero/FixedRegion for stores and for unhinted binaries.
	Hint  isa.Hint
	Coeff uint8
	// Merged marks an access that merged into an already-outstanding miss
	// for the same block: the MSHR holds the hint bits of every merged
	// request, so pointer counters can still be armed, but region engines
	// must not re-trigger on it.
	Merged bool
	// Present reports whether a block is already in the L2 (used to build
	// region bit vectors and to filter candidates).
	Present func(block uint64) bool
}

// Engine is the interface between the memory system and a prefetcher.
type Engine interface {
	Name() string

	// OnL2DemandMiss is invoked for every demand miss at the L2.
	OnL2DemandMiss(ev MissEvent)

	// OnDemandHitPrefetched is invoked when a demand access hits a line
	// that was brought in by a prefetch; stream-based engines use it to
	// advance their streams.
	OnDemandHitPrefetched(block uint64)

	// OnArrival is invoked when a missing or prefetched block's data
	// arrives from memory; pointer-scanning engines inspect its contents.
	OnArrival(block uint64)

	// Pop returns the next prefetch candidate block, skipping blocks for
	// which present returns true. ok is false when the engine has nothing
	// to prefetch.
	Pop(present func(block uint64) bool) (block uint64, ok bool)

	// SetBound receives the value of a SETBOUND instruction (the loop trip
	// count used for variable-size region prefetching).
	SetBound(v uint64)

	// Indirect receives a PREFI indirect prefetch instruction: the address
	// of the indexing element b[i], the base address &a[0], and
	// log2(sizeof(a[0])).
	Indirect(indexElemAddr, base uint64, shift uint)

	// Stats returns accumulated engine counters.
	Stats() Stats
}

// QueueLenner is an optional Engine capability: engines that buffer
// prefetch candidates report their current queue occupancy, which the
// telemetry sampler turns into the prefetch-queue time series. All engines
// in this package implement it.
type QueueLenner interface {
	// QueueLen returns the number of buffered prefetch-queue entries
	// (region entries for region engines, pending blocks for stream
	// buffers).
	QueueLen() int
}

// OpenPageAware is an optional Engine capability: the prefetch queue
// prefers candidates whose DRAM row is already open (the paper's final
// SRP optimization in Section 3.1). The memory system type-asserts for it
// and passes the controller's row state.
type OpenPageAware interface {
	// PopOpenFirst is Pop, but among the head entry's candidates it
	// prefers one for which rowOpen reports an open page.
	PopOpenFirst(present func(block uint64) bool, rowOpen func(block uint64) bool) (block uint64, ok bool)
}

// Stats counts engine-level events.
type Stats struct {
	RegionsAllocated   uint64
	RegionsRecycled    uint64 // misses that re-targeted a queued region
	CandidatesPopped   uint64
	PointerScans       uint64
	PointersFound      uint64
	IndirectInstrs     uint64
	IndirectPrefetches uint64
	// RegionSizeDist histograms allocated region sizes in blocks, indexed
	// by size; it backs Table 4's region-size-distribution columns.
	RegionSizeDist map[int]uint64
}

func newStats() Stats { return Stats{RegionSizeDist: make(map[int]uint64)} }

func (s *Stats) recordRegion(blocks int) {
	s.RegionsAllocated++
	s.RegionSizeDist[blocks]++
}

// BlockBytes is the cache block size shared by the whole hierarchy.
const BlockBytes = 64

// RegionBlocks is the fixed region size in blocks (4 KB / 64 B, Sec. 3.1).
const RegionBlocks = 64

// QueueSize is the prefetch queue capacity (Sec. 3.1, "32 in these
// experiments").
const QueueSize = 32

// regionEntry is one prefetch queue entry: the aligned region base, a bit
// vector of candidate blocks, and an index identifying the next block to
// prefetch (Sec. 3.1). ptrCtr is the 3-bit pointer-chase counter added by
// GRP (Sec. 3.3.1); it applies to blocks prefetched from this entry.
type regionEntry struct {
	base   uint64
	bits   uint64 // candidate blocks; bit i = block base+i*BlockBytes
	idx    uint8  // next candidate position to try
	blocks uint8  // region size in blocks (<= 64)
	ptrCtr uint8
}

// regionQueue is the fixed-size LIFO prefetch queue: new entries push the
// head, old entries fall off the bottom, and prefetches issue from the head
// entry (LIFO scheduling, Sec. 5.1).
type regionQueue struct {
	entries []regionEntry // index 0 = head
	// cap, when nonzero, overrides QueueSize as the occupancy bound. The
	// adaptive engine's conservative rungs shrink it to throttle how much
	// speculation is buffered; every other engine leaves it 0.
	cap int
}

func (q *regionQueue) reset() { q.entries = q.entries[:0] }

func (q *regionQueue) len() int { return len(q.entries) }

// capacity returns the queue's occupancy bound (QueueSize unless
// overridden, never above it).
func (q *regionQueue) capacity() int {
	if q.cap > 0 && q.cap < QueueSize {
		return q.cap
	}
	return QueueSize
}

// find returns the queue position of the region containing addr with the
// given alignment, or -1.
func (q *regionQueue) find(base uint64) int {
	for i := range q.entries {
		if q.entries[i].base == base {
			return i
		}
	}
	return -1
}

// pushHead inserts e at the head, evicting the bottom entries if full.
func (q *regionQueue) pushHead(e regionEntry) {
	if c := q.capacity(); len(q.entries) >= c {
		q.entries = q.entries[:c-1]
	}
	q.entries = append(q.entries, regionEntry{})
	copy(q.entries[1:], q.entries)
	q.entries[0] = e
}

// pushTail appends e at the bottom of the queue (FIFO ablation); when full
// the newest entry is dropped.
func (q *regionQueue) pushTail(e regionEntry) {
	if len(q.entries) >= q.capacity() {
		return
	}
	q.entries = append(q.entries, e)
}

// moveToHead moves the entry at position i to the head.
func (q *regionQueue) moveToHead(i int) {
	if i <= 0 {
		return
	}
	e := q.entries[i]
	copy(q.entries[1:i+1], q.entries[:i])
	q.entries[0] = e
}

// popOpenFirst is pop with the open-page preference: within the head
// entry, a candidate whose DRAM row is already open is chosen over the
// index-order candidate.
func (q *regionQueue) popOpenFirst(present, rowOpen func(uint64) bool) (block uint64, ptrCtr uint8, ok bool) {
	if rowOpen == nil || len(q.entries) == 0 {
		return q.pop(present)
	}
	e := &q.entries[0]
	n := int(e.blocks)
	first := -1
	for k := 0; k < n; k++ {
		pos := (int(e.idx) + k) % n
		mask := uint64(1) << uint(pos)
		if e.bits&mask == 0 {
			continue
		}
		cand := e.base + uint64(pos)*BlockBytes
		if present != nil && present(cand) {
			continue
		}
		if first < 0 {
			first = pos
		}
		if rowOpen(cand) {
			first = pos
			break
		}
	}
	if first < 0 {
		// Nothing issuable in the head entry; fall back to the standard
		// pop, which also handles deallocation of exhausted entries.
		return q.pop(present)
	}
	e.bits &^= 1 << uint(first)
	e.idx = uint8((first + 1) % n)
	block = e.base + uint64(first)*BlockBytes
	ptrCtr = e.ptrCtr
	if e.bits == 0 {
		q.entries = q.entries[1:]
	}
	return block, ptrCtr, true
}

// pop returns the next candidate block from the head entry, skipping
// blocks already present; exhausted entries are deallocated. The second
// result is the entry's pointer-chase counter for the popped block.
func (q *regionQueue) pop(present func(uint64) bool) (block uint64, ptrCtr uint8, ok bool) {
	for len(q.entries) > 0 {
		e := &q.entries[0]
		found := false
		// Scan from idx, wrapping once around the region, as the hardware
		// index field does.
		n := int(e.blocks)
		for k := 0; k < n; k++ {
			pos := (int(e.idx) + k) % n
			mask := uint64(1) << uint(pos)
			if e.bits&mask == 0 {
				continue
			}
			e.bits &^= mask
			e.idx = uint8((pos + 1) % n)
			cand := e.base + uint64(pos)*BlockBytes
			if present != nil && present(cand) {
				continue // already cached; keep scanning this entry
			}
			block, ptrCtr, found = cand, e.ptrCtr, true
			break
		}
		if found {
			if e.bits == 0 {
				q.entries = q.entries[1:]
			}
			return block, ptrCtr, true
		}
		// Entry exhausted (all candidates present or popped): deallocate.
		q.entries = q.entries[1:]
	}
	return 0, 0, false
}

// makeRegion builds a region entry of `blocks` blocks around addr. The bit
// vector starts with every block not already present in the L2 except the
// miss block itself, and the index points at the candidate just after the
// miss block (Sec. 3.1).
func makeRegion(addr uint64, blocks int, present func(uint64) bool, ptrCtr uint8) regionEntry {
	size := uint64(blocks) * BlockBytes
	base := addr &^ (size - 1)
	missPos := (addr - base) / BlockBytes
	var bits uint64
	for i := 0; i < blocks; i++ {
		b := base + uint64(i)*BlockBytes
		if uint64(i) == missPos {
			continue // the miss block is being fetched by the demand miss
		}
		if present != nil && present(b) {
			continue
		}
		bits |= 1 << uint(i)
	}
	return regionEntry{
		base:   base,
		bits:   bits,
		idx:    uint8((missPos + 1) % uint64(blocks)),
		blocks: uint8(blocks),
		ptrCtr: ptrCtr,
	}
}

// ptrRegionBits builds the candidate bit vector for a pointer-target region
// of up to want blocks starting at base. Unlike spatial regions — which are
// size-aligned, so they end at or below the top of the address space by
// construction — pointer regions start at an arbitrary block, and one whose
// target sits in the topmost blocks is clamped rather than wrapped to
// address zero.
func ptrRegionBits(base uint64, want int) (bits uint64, blocks int) {
	for i := 0; i < want && i < 64; i++ {
		if base+uint64(i)*BlockBytes < base {
			break // wrapped past the top of the address space
		}
		bits |= 1 << uint(i)
		blocks++
	}
	return bits, blocks
}

// retarget updates a queued region entry for a new miss within it: the miss
// block's bit is cleared and the index points just past the miss block.
func (e *regionEntry) retarget(addr uint64) {
	pos := (addr - e.base) / BlockBytes
	e.bits &^= 1 << uint(pos)
	e.idx = uint8((pos + 1) % uint64(e.blocks))
}
