package prefetch

import "fmt"

// The aggressiveness ladder is the feedback mechanism behind the adaptive
// GRP engine: a 5-state machine in the style of Srinath et al.'s
// feedback-directed prefetching (the shape ChampSim's GHB_FDP variant
// uses), stepped once per epoch from three counters the engine measures
// about its own prefetches:
//
//	issued — candidates handed to the issue pump this epoch;
//	useful — issued prefetches a demand access later hit (late ones count,
//	         as the paper's Table 5 accuracy metric does);
//	late   — the subset of useful whose demand arrived while the prefetch
//	         was still in flight (the block helped, but not fully);
//	misses — primary L2 demand misses this epoch (the coverage
//	         denominator).
//
// The decision matrix, evaluated at each epoch boundary:
//
//	accuracy low  (useful < 20% of issued)            → step down: the
//	    engine is polluting; shrink regions and throttle.
//	accuracy ok and lateness high (late ≥ 1% of issued) → step up:
//	    prefetches are right but not early enough; run further ahead.
//	accuracy high (≥ 75%) and coverage low (useful
//	    covers < 50% of misses)                        → step up: the
//	    engine is right but timid; open more speculation. An idle epoch
//	    (nothing issued at all) with misses outstanding also lands here,
//	    which is what lets the adaptive engine escalate out of a state
//	    where wrong or absent hints gave it nothing to do.
//	otherwise                                          → hold.
//
// All thresholds are integer comparisons on raw counters, so transitions
// are exactly reproducible across runs and engine generations.

// LadderState is one rung of the aggressiveness ladder.
type LadderState uint8

// The five rungs, least to most aggressive.
const (
	VeryConservative LadderState = iota
	ConservativeState
	MiddleOfTheRoad
	AggressiveState
	VeryAggressive

	// NumLadderStates is the rung count; a live ladder's state is always
	// below it (CheckInvariants enforces this).
	NumLadderStates = 5
)

var ladderStateNames = [NumLadderStates]string{
	"very-conservative", "conservative", "middle", "aggressive", "very-aggressive",
}

// String implements fmt.Stringer.
func (s LadderState) String() string {
	if int(s) < len(ladderStateNames) {
		return ladderStateNames[s]
	}
	return fmt.Sprintf("ladder-state(%d)", int(s))
}

// Ladder thresholds (percent, scaled to integer cross-multiplication) and
// epoch lengths. An epoch closes on whichever bound is hit first, so the
// ladder still steps when the engine issues nothing (misses alone close
// it) and when it issues plenty into a miss-free phase. The epoch bounds
// are sized for this reproduction's workload scale (hundreds to thousands
// of L2 misses per run, not the billions of a full SPEC run): small
// enough that even the conformance harness's generated programs close a
// few epochs, large enough that the percentage thresholds see a usable
// sample.
const (
	ladderAccLowPct  = 20
	ladderAccHighPct = 75
	ladderLatePct    = 1
	ladderCovPct     = 50

	ladderEpochIssues = 32
	ladderEpochMisses = 64
)

// LadderTransition is the pure decision function: the next state from the
// closing epoch's counters. Exported so the property-based tests can drive
// it with arbitrary counter sequences without building an engine.
func LadderTransition(s LadderState, useful, late, issued, misses uint64) LadderState {
	accLow := issued > 0 && useful*100 < issued*ladderAccLowPct
	accHigh := issued == 0 || useful*100 >= issued*ladderAccHighPct
	isLate := issued > 0 && late*100 >= issued*ladderLatePct
	covLow := useful*100 < misses*ladderCovPct
	switch {
	case accLow:
		if s > VeryConservative {
			return s - 1
		}
	case isLate:
		if s < VeryAggressive {
			return s + 1
		}
	case accHigh && covLow && misses > 0:
		if s < VeryAggressive {
			return s + 1
		}
	}
	return s
}

// ladderTamper, when non-nil, intercepts every epoch transition. It exists
// solely for the conformance harness's known-bad self-test: a tamperer
// that returns an out-of-range state models a broken transition function,
// which the engine's CheckInvariants must then report. Never set outside
// tests.
var ladderTamper func(from, to LadderState) LadderState

// SetLadderTamper installs (or, with nil, removes) the transition
// tamperer. Test-only; see ladderTamper.
func SetLadderTamper(fn func(from, to LadderState) LadderState) { ladderTamper = fn }

// Ladder accumulates one epoch's counters and steps the state machine at
// each epoch boundary.
type Ladder struct {
	state  LadderState
	useful uint64
	late   uint64
	issued uint64
	misses uint64

	// Transitions counts epoch boundaries that changed the state; surfaced
	// through engine stats for test assertions and telemetry.
	Transitions uint64
}

// NewLadder returns a ladder starting at the middle rung, the paper-
// faithful GRP/Var operating point.
func NewLadder() *Ladder { return &Ladder{state: MiddleOfTheRoad} }

// State returns the current rung.
func (l *Ladder) State() LadderState { return l.state }

// rung returns the state clamped into range for parameter-table indexing:
// a tampered (out-of-range) state must not crash the engine — it must be
// caught as an invariant violation, which needs the run to survive until
// the checker looks.
func (l *Ladder) rung() int {
	s := int(l.state)
	if s >= NumLadderStates {
		s = NumLadderStates - 1
	}
	return s
}

// RecordIssue counts one popped candidate and closes the epoch at the
// issue bound.
func (l *Ladder) RecordIssue() {
	l.issued++
	if l.issued >= ladderEpochIssues {
		l.step()
	}
}

// RecordMiss counts one primary L2 demand miss and closes the epoch at the
// miss bound.
func (l *Ladder) RecordMiss() {
	l.misses++
	if l.misses >= ladderEpochMisses {
		l.step()
	}
}

// RecordUseful counts one issued prefetch that a demand access hit; late
// marks the in-flight (merged) case.
func (l *Ladder) RecordUseful(late bool) {
	l.useful++
	if late {
		l.late++
	}
}

// step closes the epoch: transition on the counters, then reset them.
func (l *Ladder) step() {
	next := LadderTransition(l.state, l.useful, l.late, l.issued, l.misses)
	if ladderTamper != nil {
		next = ladderTamper(l.state, next)
	}
	if next != l.state {
		l.Transitions++
	}
	l.state = next
	l.useful, l.late, l.issued, l.misses = 0, 0, 0, 0
}

// CheckInvariants reports an error when the state left the ladder — the
// signature of a broken (or tampered) transition function.
func (l *Ladder) CheckInvariants() error {
	if int(l.state) >= NumLadderStates {
		return fmt.Errorf("adaptive ladder state %d outside the %d-rung ladder", l.state, NumLadderStates)
	}
	return nil
}
