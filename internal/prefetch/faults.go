package prefetch

import (
	"fmt"

	"grp/internal/isa"
)

// Faults is the slice of the fault injector the prefetch path uses. It is
// declared here (rather than importing internal/faults) so the dependency
// points from the injector to the engines, keeping this package leaf-like;
// *faults.Injector satisfies it.
type Faults interface {
	// DropIssue reports whether a popped candidate should be discarded
	// instead of issued.
	DropIssue() bool
	// CorruptHint possibly flips a hint kind before the engine sees it.
	CorruptHint(h isa.Hint) isa.Hint
	// DropHint possibly strips a miss's hints entirely.
	DropHint(h isa.Hint) isa.Hint
	// TruncateCoeff possibly shrinks a region-size coefficient.
	TruncateCoeff(c uint8) uint8
}

// Checker is an optional Engine capability: engines that maintain internal
// queue state can audit it. The memory system's periodic invariant checker
// calls it when enabled.
type Checker interface {
	// CheckInvariants returns a descriptive error if internal state is
	// inconsistent (queue overflow, out-of-range bit positions, ...).
	CheckInvariants() error
}

// WithFaults wraps an engine with hint-level fault injection: hints may be
// corrupted and region coefficients truncated before the engine sees them,
// and popped candidates may be dropped instead of issued. All of these
// perturb only what gets prefetched — never functional execution — so the
// wrapped engine must leave architectural results untouched (the
// metamorphic property checked in internal/core). A nil injector returns
// the engine unwrapped.
func WithFaults(e Engine, inj Faults) Engine {
	if inj == nil {
		return e
	}
	return &faulty{inner: e, inj: inj}
}

type faulty struct {
	inner Engine
	inj   Faults
}

// Unwrap returns the engine underneath the fault decorator.
func (f *faulty) Unwrap() Engine { return f.inner }

func (f *faulty) Name() string { return f.inner.Name() }

func (f *faulty) OnL2DemandMiss(ev MissEvent) {
	ev.Hint = f.inj.DropHint(ev.Hint)
	ev.Hint = f.inj.CorruptHint(ev.Hint)
	ev.Coeff = f.inj.TruncateCoeff(ev.Coeff)
	f.inner.OnL2DemandMiss(ev)
}

func (f *faulty) OnDemandHitPrefetched(block uint64) { f.inner.OnDemandHitPrefetched(block) }

func (f *faulty) OnArrival(block uint64) { f.inner.OnArrival(block) }

func (f *faulty) Pop(present func(block uint64) bool) (uint64, bool) {
	block, ok := f.inner.Pop(present)
	if ok && f.inj.DropIssue() {
		// The candidate was consumed from the queue but its issue is lost;
		// the pump sees "nothing to issue" for this opportunity.
		return 0, false
	}
	return block, ok
}

func (f *faulty) PopOpenFirst(present, rowOpen func(block uint64) bool) (uint64, bool) {
	opa, isOPA := f.inner.(OpenPageAware)
	if !isOPA {
		return f.Pop(present)
	}
	block, ok := opa.PopOpenFirst(present, rowOpen)
	if ok && f.inj.DropIssue() {
		return 0, false
	}
	return block, ok
}

func (f *faulty) SetBound(v uint64) { f.inner.SetBound(v) }

func (f *faulty) Indirect(indexElemAddr, base uint64, shift uint) {
	f.inner.Indirect(indexElemAddr, base, shift)
}

func (f *faulty) Stats() Stats { return f.inner.Stats() }

func (f *faulty) QueueLen() int {
	if ql, ok := f.inner.(QueueLenner); ok {
		return ql.QueueLen()
	}
	return 0
}

func (f *faulty) CheckInvariants() error {
	if c, ok := f.inner.(Checker); ok {
		return c.CheckInvariants()
	}
	return nil
}

// checkInvariants audits the region queue: bounded occupancy, in-range
// region sizes, candidate bits and index within the region.
func (q *regionQueue) checkInvariants() error {
	if len(q.entries) > QueueSize {
		return fmt.Errorf("prefetch queue holds %d entries, capacity %d", len(q.entries), QueueSize)
	}
	for i, e := range q.entries {
		if e.blocks == 0 || e.blocks > RegionBlocks {
			return fmt.Errorf("queue entry %d (base %#x): region size %d blocks outside (0,%d]",
				i, e.base, e.blocks, RegionBlocks)
		}
		if e.idx >= e.blocks {
			return fmt.Errorf("queue entry %d (base %#x): index %d outside %d-block region",
				i, e.base, e.idx, e.blocks)
		}
		if e.blocks < 64 && e.bits>>e.blocks != 0 {
			return fmt.Errorf("queue entry %d (base %#x): candidate bits %#x beyond %d-block region",
				i, e.base, e.bits, e.blocks)
		}
		// Spatial regions are region-aligned but pointer-target regions
		// start at an arbitrary block, so only block alignment is invariant.
		if e.base&(BlockBytes-1) != 0 {
			return fmt.Errorf("queue entry %d: base %#x not block aligned", i, e.base)
		}
	}
	return nil
}

// CheckInvariants implements Checker.
func (s *SRP) CheckInvariants() error { return s.q.checkInvariants() }

// CheckInvariants implements Checker.
func (g *GRP) CheckInvariants() error { return g.q.checkInvariants() }

// CheckInvariants implements Checker.
func (p *PointerOnly) CheckInvariants() error { return p.q.checkInvariants() }
