package prefetch

import (
	"math/rand"
	"testing"
)

// TestLadderTransitionTable pins the decision matrix with explicit counter
// vectors, one per rule.
func TestLadderTransitionTable(t *testing.T) {
	cases := []struct {
		name                         string
		from                         LadderState
		useful, late, issued, misses uint64
		want                         LadderState
	}{
		{"acc-low-steps-down", MiddleOfTheRoad, 10, 0, 100, 50, ConservativeState},
		{"acc-low-floor-holds", VeryConservative, 0, 0, 100, 50, VeryConservative},
		{"acc-low-boundary-exclusive", MiddleOfTheRoad, 20, 0, 100, 200, MiddleOfTheRoad}, // exactly 20% is not low (and 20 < 50% of 200 ⇒ covLow, but acc not high)
		{"late-steps-up", MiddleOfTheRoad, 60, 1, 100, 50, AggressiveState},
		{"late-ceiling-holds", VeryAggressive, 60, 1, 100, 50, VeryAggressive},
		{"acc-high-cov-low-steps-up", ConservativeState, 80, 0, 100, 400, MiddleOfTheRoad},
		{"acc-high-cov-ok-holds", MiddleOfTheRoad, 80, 0, 100, 100, MiddleOfTheRoad},
		{"idle-epoch-with-misses-steps-up", VeryConservative, 0, 0, 0, 512, ConservativeState},
		{"idle-epoch-no-misses-holds", MiddleOfTheRoad, 0, 0, 0, 0, MiddleOfTheRoad},
		{"acc-mid-holds", MiddleOfTheRoad, 50, 0, 100, 400, MiddleOfTheRoad},
		{"acc-low-beats-late", AggressiveState, 5, 5, 100, 50, MiddleOfTheRoad}, // pollution dominates lateness
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := LadderTransition(tc.from, tc.useful, tc.late, tc.issued, tc.misses)
			if got != tc.want {
				t.Fatalf("LadderTransition(%v, u=%d l=%d i=%d m=%d) = %v, want %v",
					tc.from, tc.useful, tc.late, tc.issued, tc.misses, got, tc.want)
			}
		})
	}
}

// ladderDrive feeds one pseudo-random event sequence into a fresh ladder
// and returns it; the caller asserts properties along the way via check.
func ladderDrive(seed int64, events int, check func(l *Ladder)) *Ladder {
	rng := rand.New(rand.NewSource(seed))
	l := NewLadder()
	for i := 0; i < events; i++ {
		switch rng.Intn(4) {
		case 0:
			l.RecordIssue()
		case 1:
			l.RecordMiss()
		case 2:
			l.RecordUseful(false)
		case 3:
			l.RecordUseful(rng.Intn(8) == 0)
		}
		if check != nil {
			check(l)
		}
	}
	return l
}

// TestLadderStateAlwaysInRange drives many arbitrary counter sequences and
// asserts the state (and every derived per-rung parameter) never leaves
// its legal range.
func TestLadderStateAlwaysInRange(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		l := ladderDrive(seed, 20000, func(l *Ladder) {
			if int(l.State()) >= NumLadderStates {
				t.Fatalf("seed %d: state %d escaped the ladder", seed, l.State())
			}
			if err := l.CheckInvariants(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			p := adaptLadderParams[l.rung()]
			if p.maxRegionBlocks < 1 || p.maxRegionBlocks > RegionBlocks {
				t.Fatalf("seed %d: rung %v region cap %d outside [1,%d]", seed, l.State(), p.maxRegionBlocks, RegionBlocks)
			}
			if p.ptrBlocks < 1 || p.ptrBlocks > RegionBlocks {
				t.Fatalf("seed %d: rung %v ptr degree %d outside [1,%d]", seed, l.State(), p.ptrBlocks, RegionBlocks)
			}
			if p.queueCap < 1 || p.queueCap > QueueSize {
				t.Fatalf("seed %d: rung %v queue cap %d outside [1,%d]", seed, l.State(), p.queueCap, QueueSize)
			}
			if p.chaseDepth < 1 {
				t.Fatalf("seed %d: rung %v chase depth 0", seed, l.State())
			}
		})
		_ = l
	}
}

// TestLadderDeterministic replays identical event sequences and asserts
// identical trajectories — the property the conformance digests lean on.
func TestLadderDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		var trajA, trajB []LadderState
		ladderDrive(seed, 20000, func(l *Ladder) { trajA = append(trajA, l.State()) })
		ladderDrive(seed, 20000, func(l *Ladder) { trajB = append(trajB, l.State()) })
		if len(trajA) != len(trajB) {
			t.Fatalf("seed %d: trajectory lengths differ", seed)
		}
		for i := range trajA {
			if trajA[i] != trajB[i] {
				t.Fatalf("seed %d: trajectories diverge at event %d: %v vs %v", seed, i, trajA[i], trajB[i])
			}
		}
	}
}

// TestLadderMonotoneAccuracyConverges runs epochs of perfectly accurate,
// fully covering, never-late feedback from every starting state: the
// ladder must reach a fixed point and stay there (no oscillation under a
// monotone accuracy stream).
func TestLadderMonotoneAccuracyConverges(t *testing.T) {
	for s := LadderState(0); s < NumLadderStates; s++ {
		l := &Ladder{state: s}
		perfectEpoch := func() {
			// useful == issued (100% accuracy), zero late, and coverage
			// saturated: misses == useful so covLow is false.
			for i := 0; i < ladderEpochIssues; i++ {
				l.RecordUseful(false)
				l.RecordMiss()
				l.RecordIssue() // the 256th issue closes the epoch
			}
		}
		var prev LadderState
		fixed := -1
		for epoch := 0; epoch < 16; epoch++ {
			prev = l.State()
			perfectEpoch()
			if l.State() == prev {
				fixed = epoch
				break
			}
		}
		if fixed < 0 {
			t.Fatalf("start %v: no fixed point after 16 perfect epochs", s)
		}
		at := l.State()
		for epoch := 0; epoch < 8; epoch++ {
			perfectEpoch()
			if l.State() != at {
				t.Fatalf("start %v: left fixed state %v for %v after convergence", s, at, l.State())
			}
		}
	}
}

// TestLadderAccurateUncoveredClimbsToCeiling is the other monotone stream:
// perfect accuracy but poor coverage (most misses unprefetched) climbs
// every starting state to the top rung and stays there.
func TestLadderAccurateUncoveredClimbsToCeiling(t *testing.T) {
	for s := LadderState(0); s < NumLadderStates; s++ {
		l := &Ladder{state: s}
		hungryEpoch := func() {
			// Three misses per useful prefetch: ~33% coverage at 100%
			// accuracy. Epochs close on whichever bound trips first.
			for i := 0; i < ladderEpochIssues; i++ {
				l.RecordUseful(false)
				l.RecordMiss()
				l.RecordMiss()
				l.RecordMiss()
				l.RecordIssue()
			}
		}
		for epoch := 0; epoch < 8; epoch++ {
			hungryEpoch()
		}
		if l.State() != VeryAggressive {
			t.Fatalf("start %v: accurate-but-uncovered epochs reached %v, want %v", s, l.State(), VeryAggressive)
		}
		hungryEpoch()
		if l.State() != VeryAggressive {
			t.Fatalf("start %v: left the ceiling after convergence", s)
		}
	}
}

// TestLadderLowAccuracyDrivesToFloor pins the throttling direction: an
// unbroken stream of inaccurate epochs lands every starting state on the
// most conservative rung.
func TestLadderLowAccuracyDrivesToFloor(t *testing.T) {
	for s := LadderState(0); s < NumLadderStates; s++ {
		l := &Ladder{state: s}
		for epoch := 0; epoch < 8; epoch++ {
			for i := 0; i < ladderEpochIssues; i++ {
				l.RecordIssue() // zero useful: 0% accuracy
			}
		}
		if l.State() != VeryConservative {
			t.Fatalf("start %v: 8 polluting epochs left state %v, want %v", s, l.State(), VeryConservative)
		}
	}
}

// TestLadderMissOnlyEpochsEscalate pins the fallback-activation path: an
// engine that issues nothing while misses pile up (wrong or absent hints)
// must climb toward the fallback rungs.
func TestLadderMissOnlyEpochsEscalate(t *testing.T) {
	l := NewLadder()
	for epoch := 0; epoch < 6; epoch++ {
		for i := 0; i < ladderEpochMisses; i++ {
			l.RecordMiss()
		}
	}
	if l.State() != VeryAggressive {
		t.Fatalf("6 miss-only epochs reached %v, want %v", l.State(), VeryAggressive)
	}
}

// TestLadderTamperCaught proves the invariant checker sees a broken
// transition function: a tamperer pushing the state off the ladder must
// surface as a CheckInvariants error, not a panic.
func TestLadderTamperCaught(t *testing.T) {
	SetLadderTamper(func(from, to LadderState) LadderState { return NumLadderStates + 3 })
	defer SetLadderTamper(nil)
	l := NewLadder()
	for i := 0; i < ladderEpochIssues; i++ {
		l.RecordIssue()
	}
	if err := l.CheckInvariants(); err == nil {
		t.Fatal("tampered ladder passed CheckInvariants")
	}
	if r := l.rung(); r != NumLadderStates-1 {
		t.Fatalf("tampered rung() = %d, want clamp to %d", r, NumLadderStates-1)
	}
}
