package dram

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := Default()
	bad.RowBytes = 100 // not a multiple of 64
	if err := bad.Validate(); err == nil {
		t.Error("expected row-size validation error")
	}
	if err := (Config{}).Validate(); err == nil {
		t.Error("zero config should fail")
	}
}

func TestMapChannelInterleave(t *testing.T) {
	c := mustNew(t, Default())
	// Consecutive blocks round-robin across channels.
	for i := 0; i < 8; i++ {
		ch, _, _ := c.Map(uint64(i * 64))
		if ch != i%4 {
			t.Errorf("block %d → channel %d, want %d", i, ch, i%4)
		}
	}
	// Channel-local consecutive blocks share a row until it fills.
	_, bk0, row0 := c.Map(0)
	_, bk1, row1 := c.Map(4 * 64) // next block on channel 0
	if bk0 != bk1 || row0 != row1 {
		t.Errorf("adjacent channel-local blocks should share bank/row: (%d,%d) vs (%d,%d)",
			bk0, row0, bk1, row1)
	}
	// Far-apart addresses land in different rows.
	_, _, rowFar := c.Map(1 << 24)
	if rowFar == row0 {
		t.Error("distant block should use a different row")
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	cfg := Default()
	c := mustNew(t, cfg)
	d1 := c.Submit(0, Demand, 0)          // row miss
	d2 := c.Submit(4*64, Demand, d1+1000) // same row, after quiet period: row hit
	lat1 := d1 - 0
	lat2 := d2 - (d1 + 1000)
	if lat2 >= lat1 {
		t.Errorf("row hit latency %d not less than row miss %d", lat2, lat1)
	}
	s := c.Stats()
	if s.RowMisses != 1 || s.RowHits != 1 {
		t.Errorf("row stats = %+v", s)
	}
}

func TestRowOpen(t *testing.T) {
	c := mustNew(t, Default())
	if c.RowOpen(0) {
		t.Error("no row open initially")
	}
	c.Submit(0, Demand, 0)
	if !c.RowOpen(0) {
		t.Error("row should be open after access")
	}
	if !c.RowOpen(4 * 64) {
		t.Error("adjacent channel-local block shares the open row")
	}
}

func TestChannelOccupancy(t *testing.T) {
	cfg := Default()
	c := mustNew(t, cfg)
	c.Submit(0, Prefetch, 0)
	free := c.ChannelFreeAt(0)
	if free == 0 {
		t.Fatal("channel should be busy after a submit")
	}
	// A second request on the same channel starts no earlier than the
	// channel frees.
	d2 := c.Submit(4*64*2048, Demand, 0) // same channel (block multiple of 4), different row
	if d2 < free {
		t.Errorf("second request done %d before channel free %d", d2, free)
	}
	// A request on another channel is unaffected.
	if c.ChannelFreeAt(1) != 0 {
		t.Error("other channels should be idle")
	}
}

func TestKindsCounted(t *testing.T) {
	c := mustNew(t, Default())
	c.Submit(0, Demand, 0)
	c.Submit(64, Prefetch, 0)
	c.Submit(128, Writeback, 0)
	s := c.Stats()
	if s.DemandReads != 1 || s.PrefetchReads != 1 || s.Writebacks != 1 {
		t.Errorf("stats = %+v", s)
	}
	if c.TotalBlocks() != 3 {
		t.Errorf("TotalBlocks = %d", c.TotalBlocks())
	}
	if c.TrafficBytes() != 3*64 {
		t.Errorf("TrafficBytes = %d", c.TrafficBytes())
	}
}

func TestBankBusyShorterThanLatency(t *testing.T) {
	cfg := Default()
	c := mustNew(t, cfg)
	done := c.Submit(0, Demand, 0)
	// Another access to the same bank, different row: may start before the
	// first's data arrives (bank busy < full latency) but not before the
	// bank frees.
	rowBlocks := uint64(cfg.RowBytes / cfg.BlockBytes)
	sameBank := rowBlocks * uint64(cfg.Channels) * uint64(cfg.BanksPerChannel) * 64
	d2 := c.Submit(sameBank, Demand, 0)
	if d2 <= done {
		t.Errorf("second access to same bank done %d, first %d", d2, done)
	}
	gap := d2 - done
	if gap >= cfg.RowMissCycles {
		t.Errorf("bank serialization too strong: gap %d >= full latency %d", gap, cfg.RowMissCycles)
	}
}

// TestQuickSubmitMonotonic: a request never completes before it is
// submitted plus the minimum service time, and never before `now`.
func TestQuickSubmitMonotonic(t *testing.T) {
	c := mustNew(t, Default())
	minService := Default().RowHitCycles + Default().TransferCycles
	var now uint64
	f := func(blockSeed uint16, dn uint8, kind uint8) bool {
		now += uint64(dn)
		addr := uint64(blockSeed) * 64
		done := c.Submit(addr, Kind(kind%3), now)
		return done >= now+minService
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestZeroBankBusyFallsBack(t *testing.T) {
	cfg := Default()
	cfg.BankBusyHit, cfg.BankBusyMiss = 0, 0
	c := mustNew(t, cfg)
	done := c.Submit(0, Demand, 0)
	if done == 0 {
		t.Error("submit should take time")
	}
}

// mustNew builds a controller from a config the test knows is valid.
func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
