// Package dram models the multi-channel memory system of the paper's
// evaluation platform (an effective 800 MHz, 4-channel Rambus part behind a
// 1.6 GHz core) together with the SRP/GRP access prioritizer of Figure 2.
//
// The model is analytic rather than queue-stepped: each channel and bank
// records the cycle at which it next becomes free, and a request submitted
// at cycle t is served at the earliest cycle satisfying channel, bank, and
// row-state constraints. Blocks interleave across channels at block
// granularity, so a 4 KB region burst spreads over all channels and enjoys
// open-row hits within each bank — the property that makes scheduled region
// prefetching cheap when the bus is otherwise idle.
package dram

import (
	"fmt"

	"grp/internal/metrics"
)

// Config describes the memory system. All times are CPU cycles.
type Config struct {
	Channels        int
	BanksPerChannel int
	RowBytes        int // DRAM row (open page) size per bank
	BlockBytes      int // transfer unit (cache block)

	RowHitCycles   uint64 // activation-to-data when the row is already open
	RowMissCycles  uint64 // precharge+activate+access when it is not
	TransferCycles uint64 // channel data-bus occupancy per block

	// BankBusyHit/BankBusyMiss are how long the bank itself is occupied
	// (row-cycle time), which is shorter than the end-to-end latency: a
	// bank can start a new access while earlier data is still in flight.
	BankBusyHit  uint64
	BankBusyMiss uint64
}

// Default returns the configuration used throughout the reproduction,
// calibrated so an isolated L2 miss costs roughly 160–220 CPU cycles
// end-to-end, matching the "hundreds of cycles" DRAM accesses of Section 1.
func Default() Config {
	return Config{
		Channels:        4,
		BanksPerChannel: 8,
		RowBytes:        2048,
		BlockBytes:      64,
		RowHitCycles:    80,
		RowMissCycles:   180,
		TransferCycles:  16,
		BankBusyHit:     24,
		BankBusyMiss:    64,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.BanksPerChannel <= 0 || c.RowBytes <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("dram: nonpositive geometry")
	}
	if c.RowBytes%c.BlockBytes != 0 {
		return fmt.Errorf("dram: row size %d not a multiple of block size %d", c.RowBytes, c.BlockBytes)
	}
	return nil
}

// Stats accumulates controller event counts.
type Stats struct {
	DemandReads   uint64
	PrefetchReads uint64
	Writebacks    uint64
	RowHits       uint64
	RowMisses     uint64
}

type bank struct {
	openRow int64 // -1 = closed
	freeAt  uint64
}

// SubmitHook observes every scheduled transfer; the telemetry timeline
// uses it to record bank busy spans. rowHit reports whether the access hit
// an open row; busyUntil is when the bank's row cycle completes.
type SubmitHook func(ch, bk int, kind Kind, start, busyUntil uint64, rowHit bool)

// FaultHook lets a fault injector perturb the timing of one access: the
// returned extraLatency stretches the end-to-end latency (a degraded
// channel) and extraBankBusy extends the bank's row cycle (a stuck-busy
// bank). Faults are timing-only; they never change what data arrives.
type FaultHook func(kind Kind) (extraLatency, extraBankBusy uint64)

// Controller is the memory controller plus channel/bank state.
type Controller struct {
	cfg       Config
	chanFree  []uint64
	banks     [][]bank
	stats     Stats
	rowBlocks uint64

	// Shift/mask fast path for Map when every geometry parameter is a
	// power of two (the paper's configuration is); pow2 guards it.
	pow2      bool
	blkShift  uint
	chanMask  uint64
	chanShift uint
	rowShift  uint
	bankMask  uint64
	bankShift uint

	// chanBusy accumulates data-bus occupancy per channel, the numerator
	// of the utilization telemetry series. One add per transfer.
	chanBusy []uint64
	onSubmit SubmitHook
	onFault  FaultHook
}

// New builds a controller, or reports why the configuration is invalid.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:       cfg,
		chanFree:  make([]uint64, cfg.Channels),
		banks:     make([][]bank, cfg.Channels),
		rowBlocks: uint64(cfg.RowBytes / cfg.BlockBytes),
		chanBusy:  make([]uint64, cfg.Channels),
	}
	pow2 := func(n int) bool { return n > 0 && n&(n-1) == 0 }
	if pow2(cfg.BlockBytes) && pow2(cfg.Channels) && pow2(int(c.rowBlocks)) && pow2(cfg.BanksPerChannel) {
		log2 := func(n int) uint {
			var s uint
			for n > 1 {
				n >>= 1
				s++
			}
			return s
		}
		c.pow2 = true
		c.blkShift = log2(cfg.BlockBytes)
		c.chanMask = uint64(cfg.Channels - 1)
		c.chanShift = log2(cfg.Channels)
		c.rowShift = log2(int(c.rowBlocks))
		c.bankMask = uint64(cfg.BanksPerChannel - 1)
		c.bankShift = log2(cfg.BanksPerChannel)
	}
	for i := range c.banks {
		c.banks[i] = make([]bank, cfg.BanksPerChannel)
		for j := range c.banks[i] {
			c.banks[i][j].openRow = -1
		}
	}
	return c, nil
}

// Stats returns a snapshot of the accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Map decomposes a block address into channel, bank, and row. Consecutive
// blocks round-robin across channels; consecutive channel-local blocks fill
// a row before moving to the next bank.
func (c *Controller) Map(addr uint64) (ch, bk int, row int64) {
	if c.pow2 {
		blk := addr >> c.blkShift
		ch = int(blk & c.chanMask)
		rowIdx := blk >> c.chanShift >> c.rowShift
		bk = int(rowIdx & c.bankMask)
		row = int64(rowIdx >> c.bankShift)
		return ch, bk, row
	}
	blk := addr / uint64(c.cfg.BlockBytes)
	ch = int(blk % uint64(c.cfg.Channels))
	local := blk / uint64(c.cfg.Channels)
	rowIdx := local / c.rowBlocks
	bk = int(rowIdx % uint64(c.cfg.BanksPerChannel))
	row = int64(rowIdx / uint64(c.cfg.BanksPerChannel))
	return ch, bk, row
}

// ChannelFreeAt returns the cycle at which channel ch's data bus is free.
// The prioritizer uses it to issue prefetches only into idle channels.
func (c *Controller) ChannelFreeAt(ch int) uint64 { return c.chanFree[ch] }

// SetSubmitHook installs a per-transfer observer (nil to remove). The hook
// runs inside Submit, so it must be cheap and must not call back into the
// controller.
func (c *Controller) SetSubmitHook(h SubmitHook) { c.onSubmit = h }

// SetFaultHook installs a timing fault injector (nil to remove). The hook
// runs inside Submit before channel/bank state is updated and must not
// call back into the controller.
func (c *Controller) SetFaultHook(h FaultHook) { c.onFault = h }

// Utilization returns channel ch's data-bus utilization over [0, now] as
// a fraction in [0, 1].
func (c *Controller) Utilization(ch int, now uint64) float64 {
	if now == 0 {
		return 0
	}
	u := float64(c.chanBusy[ch]) / float64(now)
	if u > 1 {
		u = 1
	}
	return u
}

// RegisterMetrics registers controller counters and per-channel
// utilization gauges under "dram.". clock supplies the current simulated
// cycle (the utilization denominator); the hierarchy passes its pump
// cursor.
func (c *Controller) RegisterMetrics(reg *metrics.Registry, clock func() uint64) {
	reg.MustGauge("dram.demand_reads", func() float64 { return float64(c.stats.DemandReads) })
	reg.MustGauge("dram.prefetch_reads", func() float64 { return float64(c.stats.PrefetchReads) })
	reg.MustGauge("dram.writebacks", func() float64 { return float64(c.stats.Writebacks) })
	reg.MustGauge("dram.row_hits", func() float64 { return float64(c.stats.RowHits) })
	reg.MustGauge("dram.row_misses", func() float64 { return float64(c.stats.RowMisses) })
	reg.MustGauge("dram.traffic_bytes", func() float64 { return float64(c.TrafficBytes()) })
	for ch := 0; ch < c.cfg.Channels; ch++ {
		ch := ch
		reg.MustGauge(fmt.Sprintf("dram.chan%d.utilization", ch), func() float64 {
			return c.Utilization(ch, clock())
		})
	}
	reg.MustGauge("dram.utilization", func() float64 {
		now := clock()
		if now == 0 {
			return 0
		}
		var sum float64
		for ch := range c.chanBusy {
			sum += c.Utilization(ch, now)
		}
		return sum / float64(len(c.chanBusy))
	})
}

// RowOpen reports whether addr's row is currently open in its bank, which
// the prefetch queue may use to prefer open-page candidates.
func (c *Controller) RowOpen(addr uint64) bool {
	ch, bk, row := c.Map(addr)
	return c.banks[ch][bk].openRow == row
}

// Kind classifies a request for accounting.
type Kind uint8

// Request kinds.
const (
	Demand Kind = iota
	Prefetch
	Writeback
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Demand:
		return "demand"
	case Prefetch:
		return "prefetch"
	case Writeback:
		return "writeback"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Submit schedules a block transfer beginning no earlier than cycle now and
// returns the cycle at which the data has fully arrived (for reads) or been
// accepted (for writebacks). It updates channel, bank, and row state.
func (c *Controller) Submit(addr uint64, kind Kind, now uint64) (done uint64) {
	ch, bk, row := c.Map(addr)
	b := &c.banks[ch][bk]

	start := now
	if c.chanFree[ch] > start {
		start = c.chanFree[ch]
	}
	if b.freeAt > start {
		start = b.freeAt
	}

	var lat, busy uint64
	rowHit := b.openRow == row
	if rowHit {
		lat = c.cfg.RowHitCycles
		busy = c.cfg.BankBusyHit
		c.stats.RowHits++
	} else {
		lat = c.cfg.RowMissCycles
		busy = c.cfg.BankBusyMiss
		c.stats.RowMisses++
		b.openRow = row
	}
	if busy == 0 {
		busy = lat // uninitialized config: fall back to full serialization
	}
	if c.onFault != nil {
		extraLat, extraBusy := c.onFault(kind)
		lat += extraLat
		busy += extraBusy
	}

	done = start + lat + c.cfg.TransferCycles
	// The data bus is occupied for the transfer and the bank for its row
	// cycle; the rest of the latency overlaps with other requests.
	c.chanFree[ch] = start + c.cfg.TransferCycles
	b.freeAt = start + busy
	c.chanBusy[ch] += c.cfg.TransferCycles
	if c.onSubmit != nil {
		c.onSubmit(ch, bk, kind, start, b.freeAt, rowHit)
	}

	switch kind {
	case Demand:
		c.stats.DemandReads++
	case Prefetch:
		c.stats.PrefetchReads++
	case Writeback:
		c.stats.Writebacks++
	}
	return done
}

// TotalBlocks returns the total number of block transfers performed, the
// raw measure behind the paper's memory-traffic comparisons (Figure 12,
// Table 5).
func (c *Controller) TotalBlocks() uint64 {
	return c.stats.DemandReads + c.stats.PrefetchReads + c.stats.Writebacks
}

// TrafficBytes returns total traffic in bytes.
func (c *Controller) TrafficBytes() uint64 {
	return c.TotalBlocks() * uint64(c.cfg.BlockBytes)
}
