package cpu

import (
	"testing"

	"grp/internal/isa"
	"grp/internal/mem"
)

// flatMem is a fixed-latency MemoryTiming for core-only tests.
type flatMem struct {
	lat    uint64
	bounds []uint64
}

func (f *flatMem) Load(_, _ uint64, _ isa.Hint, _ uint8, now uint64) uint64 { return now + f.lat }
func (f *flatMem) Store(_, _ uint64, now uint64) uint64                     { return now + f.lat }
func (f *flatMem) SetBound(v uint64)                                        { f.bounds = append(f.bounds, v) }
func (f *flatMem) Indirect(_, _ uint64, _ uint)                             {}
func (f *flatMem) SoftwarePrefetch(_, _ uint64)                             {}

func run(t *testing.T, src string, m *mem.Memory) (*Core, Result) {
	t.Helper()
	p, err := isa.Assemble("t", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if m == nil {
		m = mem.New()
	}
	c := mustNew(t, Default(), m, &flatMem{lat: 3})
	res, err := c.Run(p)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return c, res
}

func TestALUOps(t *testing.T) {
	src := `
	li r1, 20
	li r2, 6
	add r3, r1, r2    ; 26
	sub r4, r1, r2    ; 14
	mul r5, r1, r2    ; 120
	div r6, r1, r2    ; 3
	rem r7, r1, r2    ; 2
	and r8, r1, r2    ; 4
	or  r9, r1, r2    ; 22
	xor r10, r1, r2   ; 18
	shl r11, r1, r2   ; 1280
	shr r12, r1, r2   ; 0
	slt r13, r2, r1   ; 1
	slt r14, r1, r2   ; 0
	addi r15, r1, -5  ; 15
	muli r16, r1, 3   ; 60
	andi r17, r1, 7   ; 4
	ori  r18, r1, 1   ; 21
	xori r19, r1, 1   ; 21
	shli r20, r1, 2   ; 80
	shri r21, r1, 2   ; 5
	slti r22, r1, 21  ; 1
	mov r23, r1       ; 20
	halt
`
	c, _ := run(t, src, nil)
	want := map[int]uint64{
		3: 26, 4: 14, 5: 120, 6: 3, 7: 2, 8: 4, 9: 22, 10: 18,
		11: 1280, 12: 0, 13: 1, 14: 0, 15: 15, 16: 60, 17: 4,
		18: 21, 19: 21, 20: 80, 21: 5, 22: 1, 23: 20,
	}
	regs := c.Regs()
	for r, w := range want {
		if regs[r] != w {
			t.Errorf("r%d = %d, want %d", r, regs[r], w)
		}
	}
}

func TestDivRemByZero(t *testing.T) {
	src := `
	li r1, 9
	li r2, 0
	div r3, r1, r2
	rem r4, r1, r2
	halt
`
	c, _ := run(t, src, nil)
	if c.Regs()[3] != 0 || c.Regs()[4] != 0 {
		t.Error("division by zero should produce 0, not crash")
	}
}

func TestR0AlwaysZero(t *testing.T) {
	src := `
	li r0, 99
	addi r0, r0, 5
	mov r1, r0
	halt
`
	c, _ := run(t, src, nil)
	if c.Regs()[1] != 0 {
		t.Errorf("r0 = %d through r1, want 0", c.Regs()[1])
	}
}

func TestLoadStoreSizes(t *testing.T) {
	m := mem.New()
	m.Write64(0x1000, 0x1122334455667788)
	src := `
	li r1, 4096
	ld  r2, 0(r1)
	ld4 r3, 0(r1)
	ld1 r4, 0(r1)
	st  r2, 64(r1)
	st4 r2, 128(r1)
	st1 r2, 192(r1)
	halt
`
	c, _ := run(t, src, m)
	if c.Regs()[2] != 0x1122334455667788 {
		t.Errorf("ld = %#x", c.Regs()[2])
	}
	if c.Regs()[3] != 0x55667788 {
		t.Errorf("ld4 = %#x", c.Regs()[3])
	}
	if c.Regs()[4] != 0x88 {
		t.Errorf("ld1 = %#x", c.Regs()[4])
	}
	if m.Read64(0x1040) != 0x1122334455667788 {
		t.Error("st failed")
	}
	if m.Read32(0x1080) != 0x55667788 {
		t.Error("st4 failed")
	}
	if m.Read(0x10c0, 1) != 0x88 {
		t.Error("st1 failed")
	}
}

func TestBranches(t *testing.T) {
	// Count down from 10; every branch type participates.
	src := `
	li r1, 10
	li r2, 0
loop:
	addi r2, r2, 1
	addi r1, r1, -1
	bne r1, r0, loop
	beq r2, r2, over
	li r3, 111     ; skipped
over:
	blt r0, r2, done
	li r4, 222     ; skipped
done:
	bge r2, r0, end
	li r5, 333     ; skipped
end:
	halt
`
	c, res := run(t, src, nil)
	if c.Regs()[2] != 10 {
		t.Errorf("loop count = %d", c.Regs()[2])
	}
	if c.Regs()[3] != 0 || c.Regs()[4] != 0 || c.Regs()[5] != 0 {
		t.Error("branch fallthrough executed skipped code")
	}
	if res.Branches == 0 {
		t.Error("branches not counted")
	}
}

func TestStoreLoadForwardingValue(t *testing.T) {
	src := `
	li r1, 8192
	li r2, 77
	st r2, 0(r1)
	ld r3, 0(r1)
	halt
`
	c, _ := run(t, src, nil)
	if c.Regs()[3] != 77 {
		t.Errorf("load after store = %d, want 77", c.Regs()[3])
	}
}

func TestMispredictionPenaltyVisible(t *testing.T) {
	// A data-dependent alternating branch mispredicts often with a
	// bimodal predictor; a never-taken branch does not. Compare cycles.
	alternating := `
	li r1, 0
	li r2, 2048
	li r5, 0
loop:
	andi r3, r1, 1
	beq r3, r0, even
	addi r5, r5, 1
even:
	addi r1, r1, 1
	blt r1, r2, loop
	halt
`
	steady := `
	li r1, 0
	li r2, 2048
	li r5, 0
loop:
	andi r3, r1, 1
	beq r3, r3, even   ; always taken, perfectly predictable
	addi r5, r5, 1
even:
	addi r1, r1, 1
	blt r1, r2, loop
	halt
`
	_, resAlt := run(t, alternating, nil)
	_, resSteady := run(t, steady, nil)
	if resAlt.Mispredicts < 500 {
		t.Errorf("alternating branch should mispredict often, got %d", resAlt.Mispredicts)
	}
	if resSteady.Mispredicts > 50 {
		t.Errorf("steady branch should predict well, got %d", resSteady.Mispredicts)
	}
	if resAlt.Cycles <= resSteady.Cycles {
		t.Errorf("mispredictions should cost cycles: alt=%d steady=%d", resAlt.Cycles, resSteady.Cycles)
	}
}

func TestROBLimitsMemoryParallelism(t *testing.T) {
	// Independent long-latency loads: a larger window overlaps more of
	// them, so it finishes sooner.
	src := `
	li r1, 65536
	li r2, 512
	li r5, 0
loop:
	ld r3, 0(r1)
	add r5, r5, r3
	addi r1, r1, 4096
	addi r2, r2, -1
	bne r2, r0, loop
	halt
`
	p, err := isa.Assemble("mlp", src)
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(rob int) uint64 {
		cfg := Default()
		cfg.ROBSize = rob
		c := mustNew(t, cfg, mem.New(), &flatMem{lat: 200})
		res, err := c.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	small := runWith(8)
	large := runWith(64)
	if large >= small {
		t.Errorf("bigger window should be faster: rob8=%d rob64=%d", small, large)
	}
}

func TestSetBoundReachesMemory(t *testing.T) {
	src := `
	li r1, 12
	setbound r1
	halt
`
	p, _ := isa.Assemble("sb", src)
	fm := &flatMem{lat: 3}
	c := mustNew(t, Default(), mem.New(), fm)
	if _, err := c.Run(p); err != nil {
		t.Fatal(err)
	}
	if len(fm.bounds) != 1 || fm.bounds[0] != 12 {
		t.Errorf("bounds = %v", fm.bounds)
	}
}

func TestInstructionBudget(t *testing.T) {
	src := `
loop:
	addi r1, r1, 1
	jmp loop
`
	p, _ := isa.Assemble("inf", src)
	cfg := Default()
	cfg.MaxInstrs = 1000
	c := mustNew(t, cfg, mem.New(), &flatMem{lat: 3})
	res, err := c.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Error("infinite loop cannot halt")
	}
	if res.Instrs != 1000 {
		t.Errorf("instrs = %d, want budget 1000", res.Instrs)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
	li r1, 65536
	li r2, 300
	li r5, 0
loop:
	ld r3, 0(r1)
	st r3, 8(r1)
	addi r1, r1, 64
	addi r2, r2, -1
	bne r2, r0, loop
	halt
`
	p, _ := isa.Assemble("det", src)
	var prev Result
	for i := 0; i < 3; i++ {
		c := mustNew(t, Default(), mem.New(), &flatMem{lat: 50})
		res, err := c.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && res != prev {
			t.Fatalf("run %d differs: %+v vs %+v", i, res, prev)
		}
		prev = res
	}
}

func TestIPC(t *testing.T) {
	var r Result
	if r.IPC() != 0 {
		t.Error("zero-cycle IPC should be 0")
	}
	r.Instrs, r.Cycles = 100, 50
	if r.IPC() != 2 {
		t.Error("IPC arithmetic")
	}
}

func TestBadProgramRejected(t *testing.T) {
	c := mustNew(t, Default(), mem.New(), &flatMem{lat: 3})
	if _, err := c.Run(&isa.Program{Name: "empty"}); err == nil {
		t.Error("empty program should error")
	}
}

// mustNew constructs a Core and fails the test on a config error.
func mustNew(t *testing.T, cfg Config, m *mem.Memory, msys MemoryTiming) *Core {
	t.Helper()
	c, err := New(cfg, m, msys)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
