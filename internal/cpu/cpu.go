// Package cpu models the out-of-order processor core of the paper's
// evaluation platform (Section 5.1): a 4-way issue core with a 64-entry
// RUU/reorder buffer, a bimodal branch predictor, and non-blocking caches.
//
// The model is timing-directed functional simulation: instructions execute
// functionally in program order (the oracle path), and a dependence- and
// resource-constrained scheduler assigns each instruction fetch, issue,
// completion and commit cycles. The reorder buffer bounds how far fetch
// runs ahead of commit, which is what limits memory-level parallelism;
// branch mispredictions insert fetch bubbles until the branch resolves.
// Wrong-path cache effects are not modeled (see DESIGN.md).
package cpu

import (
	"fmt"

	"grp/internal/isa"
	"grp/internal/mem"
	"grp/internal/metrics"
)

// MemoryTiming is the interface the core drives; *sim.MemSystem implements
// it, as do the perfect-memory stubs in tests.
type MemoryTiming interface {
	// Load returns the completion cycle of a load issued at cycle now.
	Load(pc, addr uint64, hint isa.Hint, coeff uint8, now uint64) uint64
	// Store returns the completion cycle of a store issued at cycle now.
	Store(pc, addr uint64, now uint64) uint64
	// SetBound forwards a SETBOUND instruction's value.
	SetBound(v uint64)
	// Indirect forwards a PREFI instruction.
	Indirect(indexAddr, base uint64, shift uint)
	// SoftwarePrefetch issues a non-binding PREF for addr at cycle now.
	SoftwarePrefetch(addr, now uint64)
}

// ProgressMonitor is an optional MemoryTiming capability: a memory system
// with a forward-progress watchdog receives retirement notifications and
// may abort a livelocked run from CheckProgress. The core calls
// CheckProgress before NoteRetire at each commit, so a pathological jump
// in completion cycles is detected rather than absorbed.
type ProgressMonitor interface {
	// NoteRetire records an instruction retirement at cycle now.
	NoteRetire(now uint64)
	// CheckProgress may abort the run (sim panics with a structured
	// error; see sim.RecoverAbort) when no progress has been observed for
	// the watchdog's threshold.
	CheckProgress(now uint64)
}

// Config describes the core.
type Config struct {
	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROBSize     int
	MemPorts    int
	// BranchPenalty is the front-end refill delay after a mispredicted
	// branch resolves.
	BranchPenalty uint64
	// PredictorEntries sizes the bimodal predictor (power of two).
	PredictorEntries int

	// MaxInstrs bounds simulated instruction count; 0 means unlimited
	// (run to HALT).
	MaxInstrs uint64

	// LegacyScheduler selects the pre-overhaul map-based slot tables
	// instead of the epoch-tagged ring buffers. Cycle-identical by
	// construction; kept only as the reference engine behind
	// core.Options.LegacyEngine.
	LegacyScheduler bool

	// Cancel, when non-nil, is polled every few thousand instructions; a
	// non-nil return aborts the run with that error. It carries deadline
	// and shutdown signals into a simulation whose natural unit of
	// progress is the committed instruction, not wall time.
	Cancel func() error
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0 ||
		c.ROBSize <= 0 || c.MemPorts <= 0 {
		return fmt.Errorf("cpu: nonpositive width in config")
	}
	if n := c.PredictorEntries; n != 0 && n&(n-1) != 0 {
		return fmt.Errorf("cpu: predictor entries %d not a power of two", n)
	}
	return nil
}

// Default returns the paper's core: 4-way, 64-entry window.
func Default() Config {
	return Config{
		FetchWidth:       4,
		IssueWidth:       4,
		CommitWidth:      4,
		ROBSize:          64,
		MemPorts:         2,
		BranchPenalty:    7,
		PredictorEntries: 4096,
		MaxInstrs:        0,
	}
}

// Result summarizes one run.
type Result struct {
	Instrs      uint64
	Cycles      uint64
	Loads       uint64
	Stores      uint64
	Branches    uint64
	Mispredicts uint64
	Halted      bool // reached HALT (vs. instruction budget)
}

// IPC returns committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instrs) / float64(r.Cycles)
}

// opLatency returns execution latency for non-memory operations.
func opLatency(op isa.Op) uint64 {
	switch op {
	case isa.OpMul, isa.OpMuli:
		return 3
	case isa.OpDiv, isa.OpRem:
		return 12
	default:
		return 1
	}
}

// slotWindow is the ring's cycle span. It is a perf knob, not a
// correctness bound: probes further than this ahead of the fetch frontier
// fall back to the spill map.
const slotWindow = 1 << 15

// slotTable tracks per-cycle resource usage (issue slots, memory ports).
//
// The default representation is an epoch-tagged ring buffer: slot
// c&(slotWindow-1) holds the count for cycle c while epoch records which
// cycle the entry belongs to. Every probe happens at a cycle strictly
// above the fetch frontier (reserveWith receives it), and the frontier is
// monotonic, so any entry whose epoch is at or below it is dead and can
// be reclaimed in place — no eager clearing, no per-entry allocation, no
// hashing on the hot path. The count for a cycle lives in exactly one
// place: the ring iff the cycle is inside the window and owns its slot
// (epoch match); otherwise the spill map. Reclaiming a dead slot pulls
// any spill count for the new cycle into the ring, which keeps that
// invariant across frontier advances. Far-future probes (≥ slotWindow
// ahead) and live ring collisions go to the spill map, which stays empty
// in practice.
//
// The pre-overhaul sparse map lives on behind legacy for the reference
// engine; both representations reserve identical cycles.
type slotTable struct {
	limit uint8

	ring  []uint8  // per-cycle counts, indexed by cycle & (slotWindow-1)
	epoch []uint64 // cycle each ring entry belongs to
	base  uint64   // fetch frontier: cycles ≤ base are dead
	spill map[uint64]uint8

	legacy bool
	counts map[uint64]uint8
}

func newSlotTable(limit int, legacy bool) *slotTable {
	s := &slotTable{limit: uint8(limit), legacy: legacy}
	if legacy {
		s.counts = make(map[uint64]uint8)
	} else {
		s.ring = make([]uint8, slotWindow)
		s.epoch = make([]uint64, slotWindow)
		s.spill = make(map[uint64]uint8)
	}
	return s
}

// countAt returns the reservation count at cycle c (c > s.base).
func (s *slotTable) countAt(c uint64) uint8 {
	if c-s.base < slotWindow {
		idx := c & (slotWindow - 1)
		switch {
		case s.epoch[idx] == c:
			return s.ring[idx]
		case s.epoch[idx] <= s.base:
			return s.spill[c] // dead slot; any count for c is spilled
		}
	}
	return s.spill[c]
}

// claim records one reservation at cycle c (c > s.base).
func (s *slotTable) claim(c uint64) {
	if c-s.base < slotWindow {
		idx := c & (slotWindow - 1)
		if s.epoch[idx] == c {
			s.ring[idx]++
			return
		}
		if s.epoch[idx] <= s.base {
			// Reclaim the dead slot, absorbing any spilled count so the
			// cycle's tally lives in exactly one place.
			s.epoch[idx] = c
			v := s.spill[c]
			if v != 0 {
				delete(s.spill, c)
			}
			s.ring[idx] = v + 1
			return
		}
	}
	s.spill[c]++
}

// reserveWith finds the first cycle >= at with a free slot in both s and
// (when other != nil) other, and claims one slot in each. frontier is the
// caller's fetch cycle: every probe, now and in the future, is strictly
// above it, which is what licenses in-place reclamation of older entries.
func (s *slotTable) reserveWith(at, frontier uint64, other *slotTable) uint64 {
	if s.legacy {
		for {
			if s.counts[at] < s.limit && (other == nil || other.counts[at] < other.limit) {
				s.counts[at]++
				if other != nil {
					other.counts[at]++
				}
				return at
			}
			at++
		}
	}
	if frontier > s.base {
		s.base = frontier
	}
	if other != nil && frontier > other.base {
		other.base = frontier
	}
	for {
		if s.countAt(at) < s.limit && (other == nil || other.countAt(at) < other.limit) {
			s.claim(at)
			if other != nil {
				other.claim(at)
			}
			return at
		}
		at++
	}
}

func (s *slotTable) pruneBelow(c uint64) {
	if s.legacy {
		if len(s.counts) < 1<<15 {
			return
		}
		for k := range s.counts {
			if k < c {
				delete(s.counts, k)
			}
		}
		return
	}
	// The ring self-reclaims; only dead spill entries need sweeping.
	for k := range s.spill {
		if k < c {
			delete(s.spill, k)
		}
	}
}

// Core simulates one program on one memory system.
type Core struct {
	cfg  Config
	mem  *mem.Memory
	msys MemoryTiming

	regs    [isa.NumRegs]uint64 // functional register file
	predict []uint8             // 2-bit bimodal counters
	monitor ProgressMonitor     // non-nil when msys watches progress

	// progInstrs/progCycles mirror the in-flight run's committed
	// instruction count and last commit cycle, so telemetry probes (which
	// fire from inside the memory system, i.e. mid-Run) can compute live
	// IPC. Two plain stores per instruction; the simulation is
	// single-goroutine.
	progInstrs uint64
	progCycles uint64
}

// Progress returns the committed instruction count and last commit cycle
// of the run in progress (or of the finished run after Run returns).
func (c *Core) Progress() (instrs, cycles uint64) { return c.progInstrs, c.progCycles }

// RegisterMetrics registers live core-progress gauges under "cpu.".
func (c *Core) RegisterMetrics(reg *metrics.Registry) {
	reg.MustGauge("cpu.instrs", func() float64 { return float64(c.progInstrs) })
	reg.MustGauge("cpu.cycles", func() float64 { return float64(c.progCycles) })
	reg.MustGauge("cpu.ipc", func() float64 {
		if c.progCycles == 0 {
			return 0
		}
		return float64(c.progInstrs) / float64(c.progCycles)
	})
}

// New builds a core over functional memory m and timing model msys, or
// reports why the configuration is invalid.
func New(cfg Config, m *mem.Memory, msys MemoryTiming) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.PredictorEntries
	if n == 0 {
		n = 4096
	}
	c := &Core{cfg: cfg, mem: m, msys: msys, predict: make([]uint8, n)}
	c.monitor, _ = msys.(ProgressMonitor)
	return c, nil
}

// pendStore is a recent store kept for load forwarding: block address,
// size, data-ready cycle, and the cycle it leaves the store buffer.
type pendStore struct {
	addr   uint64
	size   int
	ready  uint64
	commit uint64
}

// Thread is an in-flight run that advances one committed instruction per
// Step call. It holds all scheduler state Run used to keep on its stack,
// so a co-run driver can interleave several threads over one shared
// memory system; a Thread stepped to completion is cycle-identical to
// Run on the same program.
type Thread struct {
	c   *Core
	p   *isa.Program
	res Result

	regReady  [isa.NumRegs]uint64
	robCommit []uint64 // commit cycle by ROB slot

	issueSlots *slotTable
	memSlots   *slotTable

	fetchCycle        uint64
	fetchedThisCycle  int
	lastCommitCycle   uint64
	commitsThisCycle  int
	storeAddrReadyMax uint64 // all older stores' addresses known by here

	recentStores []pendStore

	pc     int
	budget uint64
	i      uint64
	done   bool
}

// Done reports whether the thread has halted, exhausted its budget, or
// failed; Step is a no-op afterwards.
func (t *Thread) Done() bool { return t.done }

// Result returns the (possibly partial) run summary accumulated so far.
func (t *Thread) Result() Result { return t.res }

// LastCommitCycle returns the cycle the most recent instruction
// committed at — the thread's notion of local time, used by a co-run
// driver to step the core that is furthest behind.
func (t *Thread) LastCommitCycle() uint64 { return t.lastCommitCycle }

// Start validates the program and returns a Thread positioned before its
// first instruction. The core's functional state (registers, predictor)
// is shared with the thread, matching Run's semantics.
func (c *Core) Start(p *isa.Program) (*Thread, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := &Thread{
		c:          c,
		p:          p,
		robCommit:  make([]uint64, c.cfg.ROBSize),
		issueSlots: newSlotTable(c.cfg.IssueWidth, c.cfg.LegacyScheduler),
		memSlots:   newSlotTable(c.cfg.MemPorts, c.cfg.LegacyScheduler),
		fetchCycle: 1,
	}
	t.budget = c.cfg.MaxInstrs
	if t.budget == 0 {
		t.budget = 1 << 62
	}
	return t, nil
}

// Run executes the program to HALT or the instruction budget and returns
// timing results. It returns an error for malformed programs or runaway
// execution without a budget.
func (c *Core) Run(p *isa.Program) (Result, error) {
	t, err := c.Start(p)
	if err != nil {
		return Result{}, err
	}
	for !t.Done() {
		if err := t.Step(); err != nil {
			return t.res, err
		}
	}
	return t.res, nil
}

// Step fetches, executes, schedules and commits exactly one instruction.
// A Step on a finished thread is a no-op. On error the thread is marked
// done and the partial result stays readable via Result.
func (t *Thread) Step() error {
	if t.done {
		return nil
	}
	c := t.c
	p := t.p
	i := t.i
	{
		// A masked countdown keeps the cancellation poll off the per-
		// instruction hot path; 4096 instructions of slack is microseconds
		// of wall time.
		if cancel := c.cfg.Cancel; cancel != nil && i&4095 == 4095 {
			if err := cancel(); err != nil {
				t.done = true
				return fmt.Errorf("cpu: %s: run cancelled: %w", p.Name, err)
			}
		}
		pc := t.pc
		if pc < 0 || pc >= len(p.Instrs) {
			t.done = true
			return fmt.Errorf("cpu: %s: pc %d out of range", p.Name, pc)
		}
		in := p.Instrs[pc]

		// --- Fetch slot ---
		if t.fetchedThisCycle >= c.cfg.FetchWidth {
			t.fetchCycle++
			t.fetchedThisCycle = 0
		}
		fetchAt := t.fetchCycle
		// ROB space: the slot we are about to reuse must have committed.
		slot := int(i) % c.cfg.ROBSize
		if t.robCommit[slot] > fetchAt {
			fetchAt = t.robCommit[slot]
			t.fetchCycle = fetchAt
			t.fetchedThisCycle = 0
		}
		t.fetchedThisCycle++

		// --- Functional execute (oracle path) ---
		a, b := in.Uses()
		v1, v2 := c.regs[a], c.regs[b]
		var value uint64
		var addr uint64
		var taken bool
		switch in.Op {
		case isa.OpNop, isa.OpHalt:
		case isa.OpLi:
			value = uint64(in.Imm)
		case isa.OpMov:
			value = v1
		case isa.OpAdd:
			value = v1 + v2
		case isa.OpSub:
			value = v1 - v2
		case isa.OpMul:
			value = v1 * v2
		case isa.OpDiv:
			if v2 != 0 {
				value = uint64(int64(v1) / int64(v2))
			}
		case isa.OpRem:
			if v2 != 0 {
				value = uint64(int64(v1) % int64(v2))
			}
		case isa.OpAnd:
			value = v1 & v2
		case isa.OpOr:
			value = v1 | v2
		case isa.OpXor:
			value = v1 ^ v2
		case isa.OpShl:
			value = v1 << (v2 & 63)
		case isa.OpShr:
			value = v1 >> (v2 & 63)
		case isa.OpSlt:
			if int64(v1) < int64(v2) {
				value = 1
			}
		case isa.OpAddi:
			value = v1 + uint64(in.Imm)
		case isa.OpMuli:
			value = v1 * uint64(in.Imm)
		case isa.OpAndi:
			value = v1 & uint64(in.Imm)
		case isa.OpOri:
			value = v1 | uint64(in.Imm)
		case isa.OpXori:
			value = v1 ^ uint64(in.Imm)
		case isa.OpShli:
			value = v1 << (uint64(in.Imm) & 63)
		case isa.OpShri:
			value = v1 >> (uint64(in.Imm) & 63)
		case isa.OpSlti:
			if int64(v1) < in.Imm {
				value = 1
			}
		case isa.OpLd, isa.OpLd4, isa.OpLd1:
			addr = v1 + uint64(in.Imm)
			value = c.mem.Read(addr, in.MemSize())
		case isa.OpSt, isa.OpSt4, isa.OpSt1:
			addr = v1 + uint64(in.Imm)
			c.mem.Write(addr, in.MemSize(), v2)
		case isa.OpBeq:
			taken = v1 == v2
		case isa.OpBne:
			taken = v1 != v2
		case isa.OpBlt:
			taken = int64(v1) < int64(v2)
		case isa.OpBge:
			taken = int64(v1) >= int64(v2)
		case isa.OpJmp:
			taken = true
		case isa.OpSetBound:
			c.msys.SetBound(v1)
		case isa.OpPrefIndirect:
			c.msys.Indirect(v1, v2, uint(in.Imm)&63)
		case isa.OpPref:
			addr = v1 + uint64(in.Imm)
		}

		// --- Schedule: ready, issue, complete ---
		readyAt := fetchAt + 1 // decode/rename
		if t.regReady[a] > readyAt {
			readyAt = t.regReady[a]
		}
		if t.regReady[b] > readyAt {
			readyAt = t.regReady[b]
		}
		var doneAt uint64
		ipc := uint64(pc) // instruction address for the stride table

		switch {
		case in.Op == isa.OpPref:
			// A software prefetch consumes an issue slot and a memory
			// port like a load — its runtime overhead is the point of the
			// comparison — but binds no register and never stalls.
			issueAt := t.issueSlots.reserveWith(readyAt, t.fetchCycle, t.memSlots)
			c.msys.SoftwarePrefetch(addr, issueAt)
			doneAt = issueAt + 1
		case in.IsLoad():
			t.res.Loads++
			// Conservative disambiguation: wait for all older stores'
			// addresses.
			if t.storeAddrReadyMax > readyAt {
				readyAt = t.storeAddrReadyMax
			}
			issueAt := t.issueSlots.reserveWith(readyAt, t.fetchCycle, t.memSlots)
			// Forward from an in-flight older store to the same address.
			forwarded := false
			for j := len(t.recentStores) - 1; j >= 0; j-- {
				st := t.recentStores[j]
				if st.commit <= issueAt {
					continue
				}
				if overlaps(st.addr, st.size, addr, in.MemSize()) {
					d := st.ready
					if issueAt > d {
						d = issueAt
					}
					doneAt = d + 1
					forwarded = true
					break
				}
			}
			if !forwarded {
				doneAt = c.msys.Load(ipc, addr, in.Hint, in.Coeff, issueAt)
			}
		case in.IsStore():
			t.res.Stores++
			issueAt := t.issueSlots.reserveWith(readyAt, t.fetchCycle, t.memSlots)
			// The store enters the store buffer; the cache access happens
			// in the background and does not block commit.
			c.msys.Store(ipc, addr, issueAt)
			doneAt = issueAt + 1
			if readyAt > t.storeAddrReadyMax {
				t.storeAddrReadyMax = readyAt
			}
			t.recentStores = append(t.recentStores, pendStore{
				addr: addr, size: in.MemSize(), ready: doneAt, commit: doneAt + 2,
			})
			if len(t.recentStores) > c.cfg.ROBSize {
				t.recentStores = t.recentStores[len(t.recentStores)-c.cfg.ROBSize:]
			}
		default:
			issueAt := t.issueSlots.reserveWith(readyAt, t.fetchCycle, nil)
			doneAt = issueAt + opLatency(in.Op)
		}

		// --- Writeback ---
		if d := in.Defines(); d != 0 {
			t.regReady[d] = doneAt
			c.regs[d] = value
		}

		// --- Branch resolution ---
		if in.IsBranch() {
			t.res.Branches++
			if in.IsConditional() {
				idx := pc & (len(c.predict) - 1)
				predTaken := c.predict[idx] >= 2
				if predTaken != taken {
					t.res.Mispredicts++
					// Fetch resumes after the branch resolves.
					if doneAt+c.cfg.BranchPenalty > t.fetchCycle {
						t.fetchCycle = doneAt + c.cfg.BranchPenalty
						t.fetchedThisCycle = 0
					}
				}
				if taken && c.predict[idx] < 3 {
					c.predict[idx]++
				} else if !taken && c.predict[idx] > 0 {
					c.predict[idx]--
				}
			}
		}

		// --- Commit (in order) ---
		cAt := doneAt + 1
		if cAt < t.lastCommitCycle {
			cAt = t.lastCommitCycle
		}
		if cAt == t.lastCommitCycle && t.commitsThisCycle >= c.cfg.CommitWidth {
			cAt++
		}
		if cAt > t.lastCommitCycle {
			t.lastCommitCycle = cAt
			t.commitsThisCycle = 0
		}
		t.commitsThisCycle++
		if c.monitor != nil {
			// Check precedes the retirement note: an instruction whose
			// completion cycle leapt past the stall threshold must trip the
			// watchdog, not silently refresh it.
			c.monitor.CheckProgress(cAt)
			c.monitor.NoteRetire(cAt)
		}
		t.robCommit[slot] = cAt
		t.res.Instrs++
		t.res.Cycles = cAt
		c.progInstrs = t.res.Instrs
		c.progCycles = cAt

		if i%(1<<16) == 0 {
			t.issueSlots.pruneBelow(t.fetchCycle)
			t.memSlots.pruneBelow(t.fetchCycle)
		}

		// --- Next PC ---
		if in.Op == isa.OpHalt {
			t.res.Halted = true
			t.done = true
			return nil
		}
		if in.IsBranch() && taken {
			t.pc = in.Target
		} else {
			t.pc = pc + 1
		}
	}
	t.i++
	if t.i >= t.budget {
		t.done = true
	}
	return nil
}

// Regs returns the architectural register file after Run (for tests).
func (c *Core) Regs() [isa.NumRegs]uint64 { return c.regs }

func overlaps(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}
