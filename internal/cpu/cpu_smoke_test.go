package cpu

import (
	"testing"

	"grp/internal/isa"
	"grp/internal/mem"
	"grp/internal/prefetch"
	"grp/internal/sim"
)

// sumProgram sums n int64s starting at base into r5.
const sumSrc = `
	li   r1, %BASE%      ; cursor
	li   r2, %END%       ; end
	li   r5, 0           ; sum
loop:
	ld   r3, 0(r1) !spatial
	add  r5, r5, r3
	addi r1, r1, 8
	blt  r1, r2, loop
	halt
`

func buildSum(t *testing.T, n int) (*isa.Program, *mem.Memory, uint64) {
	t.Helper()
	m := mem.New()
	base := m.Alloc(uint64(n)*8, 64)
	var want uint64
	for i := 0; i < n; i++ {
		m.Write64(base+uint64(i)*8, uint64(i*3))
		want += uint64(i * 3)
	}
	src := sumSrc
	src = replace(src, "%BASE%", base)
	src = replace(src, "%END%", base+uint64(n)*8)
	p, err := isa.Assemble("sum", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p, m, want
}

func replace(s, k string, v uint64) string {
	out := ""
	for {
		i := index(s, k)
		if i < 0 {
			return out + s
		}
		out += s[:i] + itoa(v)
		s = s[i+len(k):]
	}
}

func index(s, k string) int {
	for i := 0; i+len(k) <= len(s); i++ {
		if s[i:i+len(k)] == k {
			return i
		}
	}
	return -1
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestSmokeSumNoPrefetch(t *testing.T) {
	p, m, want := buildSum(t, 4096)
	ms, err := sim.NewMemSystem(sim.DefaultMemConfig(), prefetch.NewNull())
	if err != nil {
		t.Fatal(err)
	}
	core := mustNew(t, Default(), m, ms)
	res, err := core.Run(p)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Halted {
		t.Fatalf("did not halt")
	}
	if got := core.Regs()[5]; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if res.Instrs == 0 || res.Cycles == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	t.Logf("instrs=%d cycles=%d ipc=%.3f l1=%+v l2=%+v",
		res.Instrs, res.Cycles, res.IPC(), ms.L1.Stats(), ms.L2.Stats())
}

func TestSmokeSumSRPFasterAndMoreTraffic(t *testing.T) {
	run := func(eng func(msCfg sim.MemConfig) prefetch.Engine) (Result, *sim.MemSystem) {
		p, m, _ := buildSum(t, 1<<16) // 512 KB stream, misses throughout
		cfg := sim.DefaultMemConfig()
		ms, err := sim.NewMemSystem(cfg, eng(cfg))
		if err != nil {
			t.Fatal(err)
		}
		core := mustNew(t, Default(), m, ms)
		res, err := core.Run(p)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		ms.Drain()
		return res, ms
	}
	base, msBase := run(func(sim.MemConfig) prefetch.Engine { return prefetch.NewNull() })
	srp, msSRP := run(func(sim.MemConfig) prefetch.Engine { return prefetch.NewSRP() })
	t.Logf("base: cycles=%d traffic=%d", base.Cycles, msBase.Dram.TrafficBytes())
	t.Logf("srp : cycles=%d traffic=%d issued=%d useful=%d", srp.Cycles,
		msSRP.Dram.TrafficBytes(), msSRP.Stats().PrefetchesIssued, msSRP.L2.Stats().UsefulPrefetches)
	if srp.Cycles >= base.Cycles {
		t.Errorf("SRP (%d cycles) not faster than base (%d cycles) on a streaming loop", srp.Cycles, base.Cycles)
	}
	if msSRP.Stats().PrefetchesIssued == 0 {
		t.Errorf("SRP issued no prefetches")
	}
}
