package progen

import (
	"strings"
	"testing"

	"grp/internal/compiler"
	"grp/internal/mem"
)

// initDigest places the workload's arrays in a fresh memory, runs Init, and
// returns the memory digest.
func initDigest(w *Workload) uint64 {
	m := mem.New()
	lay := compiler.Place(w.Prog, m)
	w.Init(m, func(name string) uint64 { return lay.Addr[name] })
	return m.Digest()
}

// TestGenerateValid checks every generated program over both grammars is
// well-formed and the full grammar always reaches the heap idioms it
// promises (the guaranteed tail).
func TestGenerateValid(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		for _, arith := range []bool{false, true} {
			w := Generate(seed, Config{Arith: arith})
			if err := w.Prog.Validate(); err != nil {
				t.Fatalf("seed %d arith=%v: invalid program: %v", seed, arith, err)
			}
			if arith {
				continue
			}
			src := w.Prog.String()
			if !strings.Contains(src, "idx[") {
				t.Fatalf("seed %d: full-grammar program never indexes through idx:\n%s", seed, src)
			}
			if !strings.Contains(src, "heap") {
				t.Fatalf("seed %d: full-grammar program declares no heap array:\n%s", seed, src)
			}
		}
	}
}

// TestGenerateDeterministic checks the same seed yields the same program
// text and the same initial memory image, run-to-run: the conformance
// harness depends on Init being re-runnable against fresh memories.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		w1 := Generate(seed, Config{})
		w2 := Generate(seed, Config{})
		if w1.Prog.String() != w2.Prog.String() {
			t.Fatalf("seed %d: program text differs between generations", seed)
		}
		d1 := initDigest(w1)
		if d2 := initDigest(w2); d1 != d2 {
			t.Fatalf("seed %d: init digest differs between generations: %#x vs %#x", seed, d1, d2)
		}
		// Re-running the same workload's Init on another fresh memory must
		// reproduce the image exactly.
		if d3 := initDigest(w1); d1 != d3 {
			t.Fatalf("seed %d: init digest differs between runs: %#x vs %#x", seed, d1, d3)
		}
	}
}

// TestScalarRegisterBudget checks generated programs never exceed the
// compiler's persistent scalar-register pool: every declared scalar plus
// every For statement costs one register.
func TestScalarRegisterBudget(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		w := Generate(seed, Config{})
		m := mem.New()
		if _, _, _, err := compiler.CompileWorkload(w.Prog, m, compiler.PolicyDefault); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, w.Prog.String())
		}
	}
}

// FuzzProgGen lets the fuzzer pick seeds and grammar: generation must stay
// total, valid, and deterministic for any seed.
func FuzzProgGen(f *testing.F) {
	f.Add(int64(1), false)
	f.Add(int64(9), false)
	f.Add(int64(1000), true)
	f.Add(int64(-7), false)
	f.Fuzz(func(t *testing.T, seed int64, arith bool) {
		w := Generate(seed, Config{Arith: arith})
		if err := w.Prog.Validate(); err != nil {
			t.Fatalf("seed %d arith=%v: invalid program: %v", seed, arith, err)
		}
		if Generate(seed, Config{Arith: arith}).Prog.String() != w.Prog.String() {
			t.Fatalf("seed %d arith=%v: nondeterministic generation", seed, arith)
		}
	})
}
