// Package progen is the seeded generative workload engine shared by the
// compiler's differential fuzz tests and the conformance harness
// (internal/conformance). It generates random structured lang programs
// whose grammar covers the paper's memory idioms — dense and strided array
// sweeps, a[b[i]] indirection (the PREFI pattern of Section 4.3), pointer
// chasing over linked lists, recursive descent of binary trees, heap
// arrays of row pointers (Figure 4's buf[i][j]), and stores through all of
// them — so generated programs stress the pointer scanner and the
// indirect-prefetch path, not just arithmetic.
//
// Every generated program terminates by construction: counted loops have
// constant bounds, array subscripts are masked in-bounds, linked
// structures are finite and acyclic, and generated stores never target
// memory holding structure pointers. Generation is deterministic in the
// seed, and the Init closure is re-runnable: it performs its own heap
// allocation and data initialization against whatever fresh memory it is
// handed, so the interpreter oracle and every simulated scheme see
// byte-identical initial images.
package progen

import (
	"fmt"
	"math/rand"

	"grp/internal/lang"
	"grp/internal/mem"
)

// Config parameterizes the generator.
type Config struct {
	// Arith restricts the grammar to the scalar/array/control-flow subset
	// (the compiler fuzzer's original grammar): no heap structures, no
	// pointers, no indirection.
	Arith bool
	// MaxDepth bounds statement nesting (default 3).
	MaxDepth int
}

// Workload is one generated program plus its data initializer.
type Workload struct {
	Prog *lang.Program
	// Init populates a fresh memory after placement: array contents, heap
	// structures, and the pointers linking them. addr resolves an array
	// name to its placed base address.
	Init func(m *mem.Memory, addr func(name string) uint64)
}

// Gen generates one program per instance (construct with New per seed).
type Gen struct {
	r   *rand.Rand
	cfg Config

	// dataArrays hold plain integers and are legal store targets.
	dataArrays []*lang.Array
	// idx is the 4-byte index array for a[b[i]] indirection; its contents
	// are pre-masked in Init and it is never a store target, so unmasked
	// indirect subscripts stay in bounds.
	idx *lang.Array

	scalars       []string
	loopVarsInUse map[string]bool
	// forsLeft caps how many For statements may still be generated: the
	// compiler allocates one persistent register per declared scalar and one
	// per For (the hoisted loop bound), out of a pool of maxScalarRegs.
	forsLeft int

	// Heap features, chosen per program in full mode.
	hasList, hasTree, hasRows bool
	nodeT, tnodeT             *lang.StructT
	listHead, treeRoot        *lang.Array
	treeKeys, rowsArr         *lang.Array
	listLen, treeLen          int
	rowsN, rowLen             int64

	inits []func(m *mem.Memory, addr func(string) uint64)
}

// Sizes of the fixed object set. dataLen is a power of two so constant
// masks keep subscripts in bounds.
const (
	dataLen   = 512 // a: 4 KB of int64 — big enough to span several regions
	gridDim   = 16  // b: 16x16 int64
	smallLen  = 256 // w: 4-byte elements
	idxLen    = 256 // index array for a[b[i]]
	rowLenDef = 64  // elements per heap row
)

// maxScalarRegs mirrors the compiler's persistent-register pool: registers
// 1..19 hold declared scalars plus one hoisted bound per For statement, so
// generation keeps len(scalars) + #For <= maxScalarRegs or compilation
// fails with "out of scalar registers".
const maxScalarRegs = 19

// tailFors is the worst-case number of For statements the guaranteed
// full-mode tail in Program appends (chase fallback, gather, row sweep,
// dense sweep); the body generator leaves this many unspent.
const tailFors = 4

// New builds a generator for one program.
func New(seed int64, cfg Config) *Gen {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 3
	}
	g := &Gen{
		r:             rand.New(rand.NewSource(seed)),
		cfg:           cfg,
		loopVarsInUse: map[string]bool{},
		scalars:       []string{"i", "j", "k", "s", "t", "u", "acc"},
	}
	if cfg.Arith {
		g.dataArrays = []*lang.Array{
			{Name: "a", Elem: lang.I64, Dims: []int64{32}},
			{Name: "b", Elem: lang.I64, Dims: []int64{8, 8}},
			{Name: "w", Elem: lang.I32, Dims: []int64{64}},
		}
	} else {
		g.dataArrays = []*lang.Array{
			{Name: "a", Elem: lang.I64, Dims: []int64{dataLen}},
			{Name: "b", Elem: lang.I64, Dims: []int64{gridDim, gridDim}},
			{Name: "w", Elem: lang.I32, Dims: []int64{smallLen}},
		}
		g.idx = &lang.Array{Name: "idx", Elem: lang.I32, Dims: []int64{idxLen}}
		g.chooseFeatures()
	}
	g.forsLeft = maxScalarRegs - len(g.scalars)
	if !cfg.Arith {
		g.forsLeft -= tailFors // reserved for Program's guaranteed tail
	}
	g.addDataInit()
	return g
}

// chooseFeatures picks which heap idioms this program exercises. At least
// one is always on, so full-mode programs always touch the heap.
func (g *Gen) chooseFeatures() {
	for !g.hasList && !g.hasTree && !g.hasRows {
		g.hasList = g.r.Intn(2) == 0
		g.hasTree = g.r.Intn(2) == 0
		g.hasRows = g.r.Intn(2) == 0
	}
	if g.hasList {
		g.buildList()
	}
	if g.hasTree {
		g.buildTree()
	}
	if g.hasRows {
		g.buildRows()
	}
	g.scalars = append(g.scalars, "p", "q", "row")
}

// addDataInit fills the plain arrays (and the index array) with
// deterministic pseudorandom contents. Index elements are pre-masked into
// [0, dataLen) so a[idx[i]] is in bounds without a masking expression,
// which is what lets the compiler's indirect analysis recognize the
// pattern and emit PREFI.
func (g *Gen) addDataInit() {
	seed := g.r.Int63()
	arrays := append([]*lang.Array{}, g.dataArrays...)
	idx := g.idx
	g.inits = append(g.inits, func(m *mem.Memory, addr func(string) uint64) {
		r := rand.New(rand.NewSource(seed))
		for _, a := range arrays {
			base := addr(a.Name)
			for off := int64(0); off < a.Bytes(); off += 8 {
				m.Write64(base+uint64(off), uint64(r.Int63n(1<<32)))
			}
		}
		if idx != nil {
			base := addr(idx.Name)
			for i := int64(0); i < idxLen; i++ {
				m.Write32(base+uint64(i*4), uint32(r.Int63n(dataLen)))
			}
		}
	})
}

// buildList declares a singly linked list of val/pad/next nodes reached
// through a one-element heap head array. Half the time the nodes are
// shuffled so the chase has no spatial locality (parser/twolf); otherwise
// they sit in allocation order (ammp).
func (g *Gen) buildList() {
	g.nodeT = lang.NewStruct("node",
		lang.Field{Name: "val", Type: lang.I64},
		lang.Field{Name: "pad", Type: lang.I64},
	)
	g.nodeT.Append("next", lang.PtrT{Elem: g.nodeT})
	g.listHead = &lang.Array{Name: "lh", Elem: lang.PtrT{Elem: g.nodeT}, Dims: []int64{1}, Heap: true}
	g.listLen = 48 + g.r.Intn(144)
	shuffle := g.r.Intn(2) == 0
	gap := uint64(g.r.Intn(3)) * 40
	seed := g.r.Int63()
	n, st := g.listLen, g.nodeT
	g.inits = append(g.inits, func(m *mem.Memory, addr func(string) uint64) {
		r := rand.New(rand.NewSource(seed))
		nodes := allocNodes(m, uint64(st.Size()), n, shuffle, gap, r)
		for i, a := range nodes {
			m.Write64(a, uint64(r.Int63n(1<<24))) // val
			var nxt uint64
			if i+1 < n {
				nxt = nodes[i+1]
			}
			m.Write64(a+16, nxt)
		}
		m.Write64(addr("lh"), nodes[0])
	})
}

// buildTree declares a balanced binary search tree at shuffled node
// addresses plus a key array to query it with (mcf's search idiom).
func (g *Gen) buildTree() {
	g.tnodeT = lang.NewStruct("tnode",
		lang.Field{Name: "key", Type: lang.I64},
	)
	g.tnodeT.Append("l", lang.PtrT{Elem: g.tnodeT})
	g.tnodeT.Append("r", lang.PtrT{Elem: g.tnodeT})
	g.treeRoot = &lang.Array{Name: "rt", Elem: lang.PtrT{Elem: g.tnodeT}, Dims: []int64{1}, Heap: true}
	g.treeKeys = &lang.Array{Name: "keys", Elem: lang.I64, Dims: []int64{32}}
	g.treeLen = 63 + g.r.Intn(192)
	seed := g.r.Int63()
	n, st := g.treeLen, g.tnodeT
	g.inits = append(g.inits, func(m *mem.Memory, addr func(string) uint64) {
		r := rand.New(rand.NewSource(seed))
		nodes := allocNodes(m, uint64(st.Size()), n, true, 24, r)
		next := 0
		var rec func(lo, hi int) uint64
		rec = func(lo, hi int) uint64 {
			if lo > hi {
				return 0
			}
			mid := (lo + hi) / 2
			a := nodes[next]
			next++
			m.Write64(a, uint64(int64(mid)*5))
			l := rec(lo, mid-1)
			rr := rec(mid+1, hi)
			m.Write64(a+8, l)
			m.Write64(a+16, rr)
			return a
		}
		root := rec(0, n-1)
		m.Write64(addr("rt"), root)
		for q := int64(0); q < 32; q++ {
			m.Write64(addr("keys")+uint64(q*8), uint64(int64(r.Intn(n))*5))
		}
	})
}

// buildRows declares a heap array of row pointers, each row a separately
// allocated block of int64 (equake's buf[i][j] idiom, paper Figure 4).
func (g *Gen) buildRows() {
	g.rowsN = 16 << g.r.Intn(2) // 16 or 32 rows
	g.rowLen = rowLenDef
	g.rowsArr = &lang.Array{Name: "rows", Elem: lang.PtrT{Elem: lang.I64}, Dims: []int64{g.rowsN}, Heap: true}
	seed := g.r.Int63()
	rowsN, rowLen := g.rowsN, g.rowLen
	g.inits = append(g.inits, func(m *mem.Memory, addr func(string) uint64) {
		r := rand.New(rand.NewSource(seed))
		for i := int64(0); i < rowsN; i++ {
			row := m.Alloc(uint64(rowLen*8), 64)
			m.Write64(addr("rows")+uint64(i*8), row)
			for j := int64(0); j < rowLen; j++ {
				m.Write64(row+uint64(j*8), uint64(r.Int63n(1<<24)))
			}
		}
	})
}

// ------------------------------------------------------------ expressions --

// arithScalars are the scalars free-form expressions may read.
var arithScalars = []string{"i", "j", "k", "s", "t", "u", "acc"}

// tempScalars are the scalars free-form assignments may write (never loop
// variables, never pointer variables).
var tempScalars = []string{"s", "t", "u", "acc"}

// expr generates a random arithmetic expression; memLoads controls
// whether array loads may appear.
func (g *Gen) expr(depth int, memLoads bool) lang.Expr {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return lang.C(int64(g.r.Intn(64)))
		default:
			return lang.S(arithScalars[g.r.Intn(len(arithScalars))])
		}
	}
	if memLoads && g.r.Intn(4) == 0 {
		return g.indexExpr(depth - 1)
	}
	ops := []lang.BinOp{lang.Add, lang.Sub, lang.Mul, lang.And, lang.Or,
		lang.Xor, lang.Lt, lang.Eq, lang.Ne, lang.Ge}
	return lang.B(ops[g.r.Intn(len(ops))], g.expr(depth-1, memLoads), g.expr(depth-1, memLoads))
}

// indexExpr generates an in-bounds data-array reference: subscripts are
// masked with And so any scalar value stays a legal index.
func (g *Gen) indexExpr(depth int) *lang.Index {
	arr := g.dataArrays[g.r.Intn(len(g.dataArrays))]
	idx := make([]lang.Expr, len(arr.Dims))
	for d := range arr.Dims {
		idx[d] = lang.B(lang.And, g.expr(depth, false), lang.C(arr.Dims[d]-1))
	}
	return lang.Ix(arr, idx...)
}

// ------------------------------------------------------------- statements --

func (g *Gen) stmt(depth int) lang.Stmt {
	n := 6
	if !g.cfg.Arith {
		n = 9 // cases 6..8 are the heap/indirect idioms
	}
	switch g.r.Intn(n) {
	case 0, 1:
		return &lang.Assign{
			Dst: lang.S(tempScalars[g.r.Intn(len(tempScalars))]),
			Src: g.expr(depth, true),
		}
	case 2:
		return &lang.Assign{Dst: g.indexExpr(1), Src: g.expr(depth, true)}
	case 3:
		return &lang.If{
			Cond: g.expr(1, false),
			Then: g.stmts(depth-1, 2),
			Else: g.stmts(depth-1, 1),
		}
	case 4, 5:
		return g.forStmt(depth, func(v string) []lang.Stmt { return g.stmts(depth-1, 2) })
	case 6:
		return g.chaseStmt()
	case 7:
		return g.indirectStmt()
	case 8:
		return g.rowSweepStmt()
	}
	panic("unreachable")
}

// forStmt builds a bounded counted loop over a free loop variable, falling
// back to a scalar assignment when i, j, and k are all in use by enclosing
// loops (reusing one would reset the outer counter and never terminate) or
// when the For register budget is spent.
func (g *Gen) forStmt(depth int, body func(v string) []lang.Stmt) lang.Stmt {
	var v string
	for _, cand := range []string{"i", "j", "k"} {
		if !g.loopVarsInUse[cand] {
			v = cand
			break
		}
	}
	if v == "" || g.forsLeft <= 0 {
		return &lang.Assign{Dst: lang.S("s"), Src: g.expr(depth, true)}
	}
	g.forsLeft--
	lo := int64(g.r.Intn(4))
	hi := lo + int64(1+g.r.Intn(12))
	g.loopVarsInUse[v] = true
	b := body(v)
	g.loopVarsInUse[v] = false
	return &lang.For{
		Var: v, Lo: lang.C(lo), Hi: lang.C(hi), Step: int64(1 + g.r.Intn(2)),
		Body: b,
	}
}

// chaseStmt walks the linked list or searches the tree; both terminate
// because the structures are finite, acyclic, and never stored through.
func (g *Gen) chaseStmt() lang.Stmt {
	useList := g.hasList && (!g.hasTree || g.r.Intn(2) == 0)
	if !useList && !g.hasTree {
		return g.rowSweepStmt()
	}
	if useList {
		// p = lh[0]; while p != 0 { acc += p->val; [p->val = e]; p = p->next }
		body := []lang.Stmt{
			&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"),
				&lang.FieldRef{Ptr: lang.S("p"), Struct: g.nodeT, Field: "val"})},
		}
		if g.r.Intn(3) == 0 {
			body = append(body, &lang.Assign{
				Dst: &lang.FieldRef{Ptr: lang.S("p"), Struct: g.nodeT, Field: "val"},
				Src: g.expr(1, false),
			})
		}
		body = append(body, &lang.Assign{Dst: lang.S("p"),
			Src: &lang.FieldRef{Ptr: lang.S("p"), Struct: g.nodeT, Field: "next"}})
		return &lang.If{
			Cond: lang.C(1),
			Then: []lang.Stmt{
				&lang.Assign{Dst: lang.S("p"), Src: lang.Ix(g.listHead, lang.C(0))},
				&lang.While{Cond: lang.B(lang.Ne, lang.S("p"), lang.C(0)), Body: body},
			},
		}
	}
	// t = keys[c]; q = rt[0]; while q != 0 { s = q->key; acc += s;
	// if t < s { q = q->l } else { q = q->r } }
	return &lang.If{
		Cond: lang.C(1),
		Then: []lang.Stmt{
			&lang.Assign{Dst: lang.S("t"), Src: lang.Ix(g.treeKeys, lang.C(int64(g.r.Intn(32))))},
			&lang.Assign{Dst: lang.S("q"), Src: lang.Ix(g.treeRoot, lang.C(0))},
			&lang.While{Cond: lang.B(lang.Ne, lang.S("q"), lang.C(0)), Body: []lang.Stmt{
				&lang.Assign{Dst: lang.S("s"), Src: &lang.FieldRef{Ptr: lang.S("q"), Struct: g.tnodeT, Field: "key"}},
				&lang.Assign{Dst: lang.S("acc"), Src: lang.B(lang.Add, lang.S("acc"), lang.S("s"))},
				&lang.If{
					Cond: lang.B(lang.Lt, lang.S("t"), lang.S("s")),
					Then: []lang.Stmt{&lang.Assign{Dst: lang.S("q"),
						Src: &lang.FieldRef{Ptr: lang.S("q"), Struct: g.tnodeT, Field: "l"}}},
					Else: []lang.Stmt{&lang.Assign{Dst: lang.S("q"),
						Src: &lang.FieldRef{Ptr: lang.S("q"), Struct: g.tnodeT, Field: "r"}}},
				},
			}},
		},
	}
}

// indirectStmt builds the a[b[i]] gather/scatter loop. Both the index
// subscript and the gathered subscript are unmasked — generated loop
// bounds stay below idxLen, and Init pre-masks idx contents into
// [0, dataLen) — because a masking And would break the compiler's
// Section 4.3 s*b(i)+e pattern match and PREFI would never be emitted.
func (g *Gen) indirectStmt() lang.Stmt {
	store := g.r.Intn(3) == 0
	return g.forStmt(2, func(v string) []lang.Stmt {
		ref := lang.Ix(g.dataArrays[0], lang.Ix(g.idx, lang.S(v)))
		if store {
			return []lang.Stmt{&lang.Assign{Dst: ref, Src: g.expr(1, false)}}
		}
		return []lang.Stmt{&lang.Assign{
			Dst: lang.S(tempScalars[g.r.Intn(len(tempScalars))]),
			Src: lang.B(lang.Add, lang.S("acc"), ref),
		}}
	})
}

// rowSweepStmt loads a heap row pointer and sweeps the row (buf[i][j]).
func (g *Gen) rowSweepStmt() lang.Stmt {
	if !g.hasRows {
		return g.indirectStmt()
	}
	store := g.r.Intn(4) == 0
	rowSel := &lang.Assign{Dst: lang.S("row"),
		Src: lang.Ix(g.rowsArr, lang.B(lang.And, g.expr(1, false), lang.C(g.rowsN-1)))}
	sweep := g.forStmt(2, func(v string) []lang.Stmt {
		ref := &lang.PtrIndex{Ptr: lang.S("row"), Elem: lang.I64,
			Idx: lang.B(lang.And, lang.S(v), lang.C(g.rowLen-1))}
		if store {
			return []lang.Stmt{&lang.Assign{Dst: ref, Src: g.expr(1, false)}}
		}
		return []lang.Stmt{&lang.Assign{Dst: lang.S("acc"),
			Src: lang.B(lang.Add, lang.S("acc"), ref)}}
	})
	return &lang.If{Cond: lang.C(1), Then: []lang.Stmt{rowSel, sweep}}
}

func (g *Gen) stmts(depth, n int) []lang.Stmt {
	if depth <= 0 {
		return []lang.Stmt{&lang.Assign{Dst: lang.S("s"), Src: g.expr(1, false)}}
	}
	var out []lang.Stmt
	for i := 0; i < 1+g.r.Intn(n); i++ {
		out = append(out, g.stmt(depth))
	}
	return out
}

// Program generates the workload. Call it once per Gen.
func (g *Gen) Program(name string) *Workload {
	arrays := append([]*lang.Array{}, g.dataArrays...)
	if g.idx != nil {
		arrays = append(arrays, g.idx)
	}
	if g.hasList {
		arrays = append(arrays, g.listHead)
	}
	if g.hasTree {
		arrays = append(arrays, g.treeRoot, g.treeKeys)
	}
	if g.hasRows {
		arrays = append(arrays, g.rowsArr)
	}
	body := g.stmts(g.cfg.MaxDepth, 3)
	if !g.cfg.Arith {
		// Every full-grammar program ends with one guaranteed round of each
		// enabled idiom plus a dense sweep, so no seed degenerates into pure
		// scalar arithmetic that never touches the prefetch paths. The tail
		// spends the For budget reserved in New.
		g.forsLeft = tailFors
		body = append(body, g.chaseStmt())
		// Deterministic gather starting at 0: the compiler guards PREFI on
		// i&15 == 0, so a zero lower bound guarantees the indirect prefetch
		// path actually executes (three PREFIs over 48 iterations).
		g.forsLeft--
		body = append(body, &lang.For{
			Var: "i", Lo: lang.C(0), Hi: lang.C(48), Step: 1,
			Body: []lang.Stmt{&lang.Assign{
				Dst: lang.S("acc"),
				Src: lang.B(lang.Add, lang.S("acc"),
					lang.Ix(g.dataArrays[0], lang.Ix(g.idx, lang.S("i")))),
			}},
		})
		if g.hasRows {
			body = append(body, g.rowSweepStmt())
		}
		g.forsLeft--
		body = append(body, &lang.For{
			Var: "i", Lo: lang.C(0), Hi: lang.C(dataLen / 2), Step: 1,
			Body: []lang.Stmt{&lang.Assign{
				Dst: lang.S("acc"),
				Src: lang.B(lang.Add, lang.S("acc"), lang.Ix(g.dataArrays[0], lang.S("i"))),
			}},
		})
	}
	p := &lang.Program{
		Name:    name,
		Arrays:  arrays,
		Scalars: append([]string{}, g.scalars...),
		Body:    body,
	}
	inits := g.inits
	return &Workload{
		Prog: p,
		Init: func(m *mem.Memory, addr func(string) uint64) {
			for _, f := range inits {
				f(m, addr)
			}
		},
	}
}

// allocNodes allocates n fixed-size heap objects and returns their
// addresses in traversal order: allocation order when shuffle is false,
// a deterministic permutation otherwise. gap inserts dead bytes between
// allocations, modeling heap fragmentation.
func allocNodes(m *mem.Memory, size uint64, n int, shuffle bool, gap uint64, r *rand.Rand) []uint64 {
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = m.Alloc(size, 8)
		if gap > 0 {
			m.Alloc(gap, 8)
		}
	}
	if shuffle {
		out := make([]uint64, n)
		for i, j := range r.Perm(n) {
			out[i] = addrs[j]
		}
		return out
	}
	return addrs
}

// Generate is the convenience one-shot: a fresh generator's program for
// the seed.
func Generate(seed int64, cfg Config) *Workload {
	return New(seed, cfg).Program(fmt.Sprintf("gen%d", seed))
}
