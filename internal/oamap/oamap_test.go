package oamap

import "testing"

// TestU8AgainstMap drives the table with a deterministic pseudo-random
// op stream and checks every observable against a Go map oracle,
// covering growth, collision chains, and backward-shift deletion.
func TestU8AgainstMap(t *testing.T) {
	tab := NewU8()
	oracle := map[uint64]uint8{}
	rng := uint64(0x1234_5678_9abc_def0)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	// Small key space (block-address shaped) to force collisions and
	// delete-of-present cases.
	key := func() uint64 { return (next() % 512) << 6 }
	for op := 0; op < 200000; op++ {
		k := key()
		switch next() % 4 {
		case 0, 1:
			v := uint8(next())
			tab.Set(k, v)
			oracle[k] = v
		case 2:
			tab.Delete(k)
			delete(oracle, k)
		case 3:
			got, ok := tab.Get(k)
			want, wok := oracle[k]
			if ok != wok || got != want {
				t.Fatalf("op %d: Get(%#x) = %d,%v want %d,%v", op, k, got, ok, want, wok)
			}
		}
		if tab.Len() != len(oracle) {
			t.Fatalf("op %d: Len %d, oracle %d", op, tab.Len(), len(oracle))
		}
	}
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("Reset left %d entries", tab.Len())
	}
	for k := range oracle {
		if _, ok := tab.Get(k); ok {
			t.Fatalf("Reset left key %#x", k)
		}
	}
}

// TestI32AgainstMap is the same differential drive for the int32 table.
func TestI32AgainstMap(t *testing.T) {
	tab := NewI32()
	oracle := map[uint64]int32{}
	rng := uint64(0xfeed_face_cafe_beef)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	key := func() uint64 { return (next() % 512) << 6 }
	for op := 0; op < 200000; op++ {
		k := key()
		switch next() % 4 {
		case 0, 1:
			v := int32(next())
			tab.Set(k, v)
			oracle[k] = v
		case 2:
			tab.Delete(k)
			delete(oracle, k)
		case 3:
			got, ok := tab.Get(k)
			want, wok := oracle[k]
			if ok != wok || got != want {
				t.Fatalf("op %d: Get(%#x) = %d,%v want %d,%v", op, k, got, ok, want, wok)
			}
		}
		if tab.Len() != len(oracle) {
			t.Fatalf("op %d: Len %d, oracle %d", op, tab.Len(), len(oracle))
		}
	}
}

// TestU64AgainstMap is the same differential drive for the uint64 table.
func TestU64AgainstMap(t *testing.T) {
	tab := NewU64()
	oracle := map[uint64]uint64{}
	rng := uint64(0xdead_beef_0bad_f00d)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	key := func() uint64 { return (next() % 512) << 6 }
	for op := 0; op < 200000; op++ {
		k := key()
		switch next() % 4 {
		case 0, 1:
			v := next()
			tab.Set(k, v)
			oracle[k] = v
		case 2:
			tab.Delete(k)
			delete(oracle, k)
		case 3:
			got, ok := tab.Get(k)
			want, wok := oracle[k]
			if ok != wok || got != want {
				t.Fatalf("op %d: Get(%#x) = %d,%v want %d,%v", op, k, got, ok, want, wok)
			}
		}
		if tab.Len() != len(oracle) {
			t.Fatalf("op %d: Len %d, oracle %d", op, tab.Len(), len(oracle))
		}
	}
}

// TestSteadyStateAllocFree pins the allocation contract: once grown to
// its working size, a churn of Set/Delete/Get allocates nothing.
func TestSteadyStateAllocFree(t *testing.T) {
	tab := NewI32()
	for i := uint64(0); i < 64; i++ {
		tab.Set(i<<6, int32(i))
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tab.Set(0x4000, 7)
		tab.Delete(0x4000)
		tab.Get(0x40)
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocates %.1f allocs/op, want 0", allocs)
	}
}
