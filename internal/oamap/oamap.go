// Package oamap provides small open-addressed hash tables keyed by
// uint64, used on the simulator's hot paths in place of Go maps: the sim
// package's in-flight line table and the prefetch engines' pointer-scan
// counters sit on the per-access path, where the runtime map's hashing
// and bucket chasing dominated profiles. Linear probing with
// backward-shift deletion keeps probes short without tombstones, and the
// backing arrays are reused across grow cycles, so steady-state
// operation allocates nothing.
//
// The tables are not a general map replacement: values are tiny (uint8
// counters, int32 indices), iteration order is unspecified, and the
// tables are single-goroutine like the rest of the simulator.
package oamap

// fib is the 64-bit Fibonacci hashing multiplier; block addresses are
// near-sequential, and the multiply spreads them across the high bits the
// index uses.
const fib = 0x9E3779B97F4A7C15

const minCap = 16

// U8 maps uint64 keys to uint8 values (the prefetch engines' pointer
// counters and issued-block sets).
type U8 struct {
	keys  []uint64
	vals  []uint8
	used  []bool
	n     int
	shift uint
}

// NewU8 returns an empty table.
func NewU8() *U8 {
	t := &U8{}
	t.init(minCap)
	return t
}

func (t *U8) init(capacity int) {
	t.keys = make([]uint64, capacity)
	t.vals = make([]uint8, capacity)
	t.used = make([]bool, capacity)
	t.shift = 64
	for c := capacity; c > 1; c >>= 1 {
		t.shift--
	}
}

func (t *U8) idx(k uint64) uint64 { return (k * fib) >> t.shift }

// Len returns the number of live entries.
func (t *U8) Len() int { return t.n }

// Get returns the value for k (zero when absent) and whether it exists.
func (t *U8) Get(k uint64) (uint8, bool) {
	mask := uint64(len(t.keys) - 1)
	for i := t.idx(k); ; i = (i + 1) & mask {
		if !t.used[i] {
			return 0, false
		}
		if t.keys[i] == k {
			return t.vals[i], true
		}
	}
}

// Set inserts or overwrites k's value.
func (t *U8) Set(k uint64, v uint8) {
	if 4*(t.n+1) >= 3*len(t.keys) {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	for i := t.idx(k); ; i = (i + 1) & mask {
		if !t.used[i] {
			t.used[i], t.keys[i], t.vals[i] = true, k, v
			t.n++
			return
		}
		if t.keys[i] == k {
			t.vals[i] = v
			return
		}
	}
}

// Delete removes k if present, backward-shifting the probe chain so no
// tombstones accumulate.
func (t *U8) Delete(k uint64) {
	mask := uint64(len(t.keys) - 1)
	i := t.idx(k)
	for {
		if !t.used[i] {
			return
		}
		if t.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		if !t.used[j] {
			break
		}
		if h := t.idx(t.keys[j]); (j-h)&mask >= (j-i)&mask {
			t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
			i = j
		}
	}
	t.used[i] = false
	t.n--
}

// Reset empties the table in place, keeping its capacity.
func (t *U8) Reset() {
	for i := range t.used {
		t.used[i] = false
	}
	t.n = 0
}

func (t *U8) grow() {
	keys, vals, used := t.keys, t.vals, t.used
	t.init(2 * len(keys))
	t.n = 0
	for i, u := range used {
		if u {
			t.Set(keys[i], vals[i])
		}
	}
}

// I32 maps uint64 keys to int32 values (the sim package's block → pooled
// line index table).
type I32 struct {
	keys  []uint64
	vals  []int32
	used  []bool
	n     int
	shift uint
}

// NewI32 returns an empty table.
func NewI32() *I32 {
	t := &I32{}
	t.init(minCap)
	return t
}

func (t *I32) init(capacity int) {
	t.keys = make([]uint64, capacity)
	t.vals = make([]int32, capacity)
	t.used = make([]bool, capacity)
	t.shift = 64
	for c := capacity; c > 1; c >>= 1 {
		t.shift--
	}
}

func (t *I32) idx(k uint64) uint64 { return (k * fib) >> t.shift }

// Len returns the number of live entries.
func (t *I32) Len() int { return t.n }

// Get returns the value for k (zero when absent) and whether it exists.
func (t *I32) Get(k uint64) (int32, bool) {
	mask := uint64(len(t.keys) - 1)
	for i := t.idx(k); ; i = (i + 1) & mask {
		if !t.used[i] {
			return 0, false
		}
		if t.keys[i] == k {
			return t.vals[i], true
		}
	}
}

// Set inserts or overwrites k's value.
func (t *I32) Set(k uint64, v int32) {
	if 4*(t.n+1) >= 3*len(t.keys) {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	for i := t.idx(k); ; i = (i + 1) & mask {
		if !t.used[i] {
			t.used[i], t.keys[i], t.vals[i] = true, k, v
			t.n++
			return
		}
		if t.keys[i] == k {
			t.vals[i] = v
			return
		}
	}
}

// Delete removes k if present, backward-shifting the probe chain so no
// tombstones accumulate.
func (t *I32) Delete(k uint64) {
	mask := uint64(len(t.keys) - 1)
	i := t.idx(k)
	for {
		if !t.used[i] {
			return
		}
		if t.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		if !t.used[j] {
			break
		}
		if h := t.idx(t.keys[j]); (j-h)&mask >= (j-i)&mask {
			t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
			i = j
		}
	}
	t.used[i] = false
	t.n--
}

func (t *I32) grow() {
	keys, vals, used := t.keys, t.vals, t.used
	t.init(2 * len(keys))
	t.n = 0
	for i, u := range used {
		if u {
			t.Set(keys[i], vals[i])
		}
	}
}
