// Package oamap provides small open-addressed hash tables keyed by
// uint64, used on the simulator's hot paths in place of Go maps: the sim
// package's in-flight line table and the prefetch engines' pointer-scan
// counters sit on the per-access path, where the runtime map's hashing
// and bucket chasing dominated profiles. Linear probing with
// backward-shift deletion keeps probes short without tombstones, and the
// backing arrays are reused across grow cycles, so steady-state
// operation allocates nothing.
//
// The tables are not a general map replacement: values are tiny (uint8
// counters, int32 indices), iteration order is unspecified, and the
// tables are single-goroutine like the rest of the simulator.
package oamap

// fib is the 64-bit Fibonacci hashing multiplier; block addresses are
// near-sequential, and the multiply spreads them across the high bits the
// index uses.
const fib = 0x9E3779B97F4A7C15

const minCap = 16

// sizeFor returns the power-of-two capacity whose 3/4 load bound fits n.
func sizeFor(n int) int {
	c := minCap
	for 4*n >= 3*c {
		c <<= 1
	}
	return c
}

// U8 maps uint64 keys to uint8 values (the prefetch engines' pointer
// counters and issued-block sets). Slots are a single array of structs,
// so a probe touches one cache line, not three parallel arrays.
type U8 struct {
	slots []u8Slot
	n     int
	shift uint
}

type u8Slot struct {
	key  uint64
	val  uint8
	used bool
}

// NewU8 returns an empty table.
func NewU8() *U8 {
	t := &U8{}
	t.init(minCap)
	return t
}

func (t *U8) init(capacity int) {
	t.slots = make([]u8Slot, capacity)
	t.shift = 64
	for c := capacity; c > 1; c >>= 1 {
		t.shift--
	}
}

func (t *U8) idx(k uint64) uint64 { return (k * fib) >> t.shift }

// Len returns the number of live entries.
func (t *U8) Len() int { return t.n }

// Get returns the value for k (zero when absent) and whether it exists.
func (t *U8) Get(k uint64) (uint8, bool) {
	mask := uint64(len(t.slots) - 1)
	for i := t.idx(k); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			return 0, false
		}
		if s.key == k {
			return s.val, true
		}
	}
}

// Set inserts or overwrites k's value.
func (t *U8) Set(k uint64, v uint8) {
	if 4*(t.n+1) >= 3*len(t.slots) {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := t.idx(k); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			*s = u8Slot{key: k, val: v, used: true}
			t.n++
			return
		}
		if s.key == k {
			s.val = v
			return
		}
	}
}

// Delete removes k if present, backward-shifting the probe chain so no
// tombstones accumulate.
func (t *U8) Delete(k uint64) {
	mask := uint64(len(t.slots) - 1)
	i := t.idx(k)
	for {
		if !t.slots[i].used {
			return
		}
		if t.slots[i].key == k {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		if !t.slots[j].used {
			break
		}
		if h := t.idx(t.slots[j].key); (j-h)&mask >= (j-i)&mask {
			t.slots[i].key, t.slots[i].val = t.slots[j].key, t.slots[j].val
			i = j
		}
	}
	t.slots[i].used = false
	t.n--
}

// Reset empties the table in place, keeping its capacity. clear zeroes
// the slot array wholesale — a single memclr, far cheaper than a
// per-slot flag loop when Reset runs once per simulated cell.
func (t *U8) Reset() {
	clear(t.slots)
	t.n = 0
}

func (t *U8) grow() {
	old := t.slots
	t.init(2 * len(old))
	t.n = 0
	for i := range old {
		if old[i].used {
			t.Set(old[i].key, old[i].val)
		}
	}
}

// U64 maps uint64 keys to uint64 values (the attribution ledger's
// region → last-missing-PC table, written on every demand L2 miss). Slots
// are a single array of structs, so a probe touches one cache line, not
// three parallel arrays.
type U64 struct {
	slots []u64Slot
	n     int
	shift uint
}

type u64Slot struct {
	key  uint64
	val  uint64
	used bool
}

// NewU64 returns an empty table.
func NewU64() *U64 {
	t := &U64{}
	t.init(minCap)
	return t
}

// NewU64Sized returns an empty table pre-sized to hold about n entries
// without growing (one allocation up front instead of log n rehashes).
func NewU64Sized(n int) *U64 {
	t := &U64{}
	t.init(sizeFor(n))
	return t
}

func (t *U64) init(capacity int) {
	t.slots = make([]u64Slot, capacity)
	t.shift = 64
	for c := capacity; c > 1; c >>= 1 {
		t.shift--
	}
}

func (t *U64) idx(k uint64) uint64 { return (k * fib) >> t.shift }

// Len returns the number of live entries.
func (t *U64) Len() int { return t.n }

// Get returns the value for k (zero when absent) and whether it exists.
func (t *U64) Get(k uint64) (uint64, bool) {
	mask := uint64(len(t.slots) - 1)
	for i := t.idx(k); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			return 0, false
		}
		if s.key == k {
			return s.val, true
		}
	}
}

// Set inserts or overwrites k's value.
func (t *U64) Set(k uint64, v uint64) {
	if 4*(t.n+1) >= 3*len(t.slots) {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := t.idx(k); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			*s = u64Slot{key: k, val: v, used: true}
			t.n++
			return
		}
		if s.key == k {
			s.val = v
			return
		}
	}
}

// Delete removes k if present, backward-shifting the probe chain so no
// tombstones accumulate.
func (t *U64) Delete(k uint64) {
	mask := uint64(len(t.slots) - 1)
	i := t.idx(k)
	for {
		if !t.slots[i].used {
			return
		}
		if t.slots[i].key == k {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		if !t.slots[j].used {
			break
		}
		if h := t.idx(t.slots[j].key); (j-h)&mask >= (j-i)&mask {
			t.slots[i].key, t.slots[i].val = t.slots[j].key, t.slots[j].val
			i = j
		}
	}
	t.slots[i].used = false
	t.n--
}

// Reset empties the table in place, keeping its capacity. clear zeroes
// the slot array wholesale — a single memclr, far cheaper than a
// per-slot flag loop when Reset runs once per simulated cell.
func (t *U64) Reset() {
	clear(t.slots)
	t.n = 0
}

func (t *U64) grow() {
	old := t.slots
	t.init(2 * len(old))
	t.n = 0
	for i := range old {
		if old[i].used {
			t.Set(old[i].key, old[i].val)
		}
	}
}

// I32 maps uint64 keys to int32 values (the sim package's block → pooled
// line index table). Like U64, slots are a single array of structs so a
// probe touches one cache line.
type I32 struct {
	slots []i32Slot
	n     int
	shift uint
}

type i32Slot struct {
	key  uint64
	val  int32
	used bool
}

// NewI32 returns an empty table.
func NewI32() *I32 {
	t := &I32{}
	t.init(minCap)
	return t
}

// NewI32Sized returns an empty table pre-sized to hold about n entries
// without growing (one allocation up front instead of log n rehashes).
func NewI32Sized(n int) *I32 {
	t := &I32{}
	t.init(sizeFor(n))
	return t
}

func (t *I32) init(capacity int) {
	t.slots = make([]i32Slot, capacity)
	t.shift = 64
	for c := capacity; c > 1; c >>= 1 {
		t.shift--
	}
}

func (t *I32) idx(k uint64) uint64 { return (k * fib) >> t.shift }

// Len returns the number of live entries.
func (t *I32) Len() int { return t.n }

// Get returns the value for k (zero when absent) and whether it exists.
func (t *I32) Get(k uint64) (int32, bool) {
	mask := uint64(len(t.slots) - 1)
	for i := t.idx(k); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			return 0, false
		}
		if s.key == k {
			return s.val, true
		}
	}
}

// Set inserts or overwrites k's value.
func (t *I32) Set(k uint64, v int32) {
	if 4*(t.n+1) >= 3*len(t.slots) {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := t.idx(k); ; i = (i + 1) & mask {
		s := &t.slots[i]
		if !s.used {
			*s = i32Slot{key: k, val: v, used: true}
			t.n++
			return
		}
		if s.key == k {
			s.val = v
			return
		}
	}
}

// Delete removes k if present, backward-shifting the probe chain so no
// tombstones accumulate.
func (t *I32) Delete(k uint64) {
	mask := uint64(len(t.slots) - 1)
	i := t.idx(k)
	for {
		if !t.slots[i].used {
			return
		}
		if t.slots[i].key == k {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		if !t.slots[j].used {
			break
		}
		if h := t.idx(t.slots[j].key); (j-h)&mask >= (j-i)&mask {
			t.slots[i].key, t.slots[i].val = t.slots[j].key, t.slots[j].val
			i = j
		}
	}
	t.slots[i].used = false
	t.n--
}

// Reset empties the table in place, keeping its capacity. clear zeroes
// the slot array wholesale — a single memclr, far cheaper than a
// per-slot flag loop when Reset runs once per simulated cell.
func (t *I32) Reset() {
	clear(t.slots)
	t.n = 0
}

func (t *I32) grow() {
	old := t.slots
	t.init(2 * len(old))
	t.n = 0
	for i := range old {
		if old[i].used {
			t.Set(old[i].key, old[i].val)
		}
	}
}
