package compiler

import (
	"fmt"

	"grp/internal/isa"
	"grp/internal/lang"
	"grp/internal/mem"
)

// Layout assigns base addresses to a program's arrays.
type Layout struct {
	Addr map[string]uint64
}

// Place allocates every array of p in m: heap arrays through the simulated
// malloc (so they fall inside the pointer scanner's base-and-bounds range),
// non-heap arrays in the globals segment.
func Place(p *lang.Program, m *mem.Memory) *Layout {
	// placeSkew staggers consecutive objects by 17 cache blocks so equal
	// subscripts of different arrays do not all land in the same cache
	// set, as real linkers and allocators do.
	const placeSkew = 17 * 64
	l := &Layout{Addr: map[string]uint64{}}
	globals := mem.GlobalBase
	for _, a := range p.Arrays {
		if a.Heap {
			l.Addr[a.Name] = m.Alloc(uint64(a.Bytes()), 64)
			m.Alloc(placeSkew, 64)
			continue
		}
		base := (globals + 63) &^ 63
		l.Addr[a.Name] = base
		globals = base + uint64(a.Bytes()) + placeSkew
	}
	return l
}

// register pool boundaries: persistent scalars grow up from firstScalarReg,
// expression temporaries grow down from lastTempReg.
const (
	firstScalarReg = 1
	lastTempReg    = isa.NumRegs - 1
	numTempRegs    = 12

	// prefiLookaheadIdx is how many index elements ahead of the loop a
	// PREFI targets (two 64-byte blocks of 4-byte indices).
	prefiLookaheadIdx = 32
)

// CodegenOptions selects optional backend behaviors.
type CodegenOptions struct {
	// SoftwarePrefetch inserts Mowry-style PREF instructions ahead of
	// spatial loads instead of relying on hardware prefetching. The paper
	// discusses this approach's limits in Section 2; it is implemented as
	// the comparison foil. Pointer-based references are not prefetched
	// (the compiler cannot compute their addresses in advance, exactly
	// the limitation the paper cites).
	SoftwarePrefetch bool
	// SWPrefetchIters is the lookahead distance in loop iterations
	// (default 16).
	SWPrefetchIters int64
}

type codegen struct {
	prog   *lang.Program
	an     *Annotations
	layout *Layout
	opts   CodegenOptions

	out       []isa.Instr
	scalarReg map[string]uint8
	nextReg   uint8
	tmpTop    uint8 // next temp register to hand out (counts down)

	labels  map[string]int
	fixups  []fixup
	nlabels int
}

type fixup struct {
	instr int
	label string
}

// Compile lowers an analyzed program to the ISA. The layout must come from
// Place on the same program.
func Compile(p *lang.Program, layout *Layout, an *Annotations) (*isa.Program, error) {
	return CompileWithOptions(p, layout, an, CodegenOptions{})
}

// CompileWithOptions is Compile with backend options.
func CompileWithOptions(p *lang.Program, layout *Layout, an *Annotations, opts CodegenOptions) (*isa.Program, error) {
	if opts.SWPrefetchIters <= 0 {
		opts.SWPrefetchIters = 16
	}
	g := &codegen{
		prog:      p,
		an:        an,
		layout:    layout,
		opts:      opts,
		scalarReg: map[string]uint8{},
		nextReg:   firstScalarReg,
		tmpTop:    lastTempReg,
		labels:    map[string]int{},
	}
	for _, s := range p.Scalars {
		if _, err := g.scalar(s); err != nil {
			return nil, err
		}
	}
	if err := g.stmts(p.Body); err != nil {
		return nil, err
	}
	g.emit(isa.Instr{Op: isa.OpHalt})
	for _, f := range g.fixups {
		t, ok := g.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("compiler: %s: unresolved label %q", p.Name, f.label)
		}
		g.out[f.instr].Target = t
	}
	ip := &isa.Program{Name: p.Name, Instrs: g.out}
	if err := ip.Validate(); err != nil {
		return nil, err
	}
	return ip, nil
}

// CompileWorkload is the convenience entry: place, analyze, compile.
func CompileWorkload(p *lang.Program, m *mem.Memory, policy Policy) (*isa.Program, *Layout, *Annotations, error) {
	return CompileWorkloadOpts(p, m, policy, CodegenOptions{})
}

// CompileWorkloadOpts is CompileWorkload with backend options.
func CompileWorkloadOpts(p *lang.Program, m *mem.Memory, policy Policy, opts CodegenOptions) (*isa.Program, *Layout, *Annotations, error) {
	layout := Place(p, m)
	an, err := Analyze(p, policy)
	if err != nil {
		return nil, nil, nil, err
	}
	ip, err := CompileWithOptions(p, layout, an, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	return ip, layout, an, nil
}

// ------------------------------------------------------------- registers --

func (g *codegen) scalar(name string) (uint8, error) {
	if r, ok := g.scalarReg[name]; ok {
		return r, nil
	}
	if g.nextReg > lastTempReg-numTempRegs {
		return 0, fmt.Errorf("compiler: %s: out of scalar registers (%d scalars)", g.prog.Name, len(g.scalarReg))
	}
	r := g.nextReg
	g.nextReg++
	g.scalarReg[name] = r
	return r, nil
}

func (g *codegen) tmp() (uint8, error) {
	if g.tmpTop <= lastTempReg-numTempRegs {
		return 0, fmt.Errorf("compiler: %s: expression too deep (out of temporaries)", g.prog.Name)
	}
	r := g.tmpTop
	g.tmpTop--
	return r, nil
}

func (g *codegen) tmpMark() uint8        { return g.tmpTop }
func (g *codegen) tmpRelease(mark uint8) { g.tmpTop = mark }
func (g *codegen) isTemp(r uint8) bool   { return r > lastTempReg-numTempRegs }

// ------------------------------------------------------------- emission --

func (g *codegen) emit(in isa.Instr) { g.out = append(g.out, in) }

func (g *codegen) newLabel(prefix string) string {
	g.nlabels++
	return fmt.Sprintf("%s%d", prefix, g.nlabels)
}

func (g *codegen) place(label string) { g.labels[label] = len(g.out) }

func (g *codegen) branch(op isa.Op, rs1, rs2 uint8, label string) {
	g.fixups = append(g.fixups, fixup{len(g.out), label})
	g.emit(isa.Instr{Op: op, Rs1: rs1, Rs2: rs2})
}

// ------------------------------------------------------------ statements --

func (g *codegen) stmts(ss []lang.Stmt) error {
	for _, s := range ss {
		var err error
		switch n := s.(type) {
		case *lang.For:
			err = g.forStmt(n)
		case *lang.While:
			err = g.whileStmt(n)
		case *lang.If:
			err = g.ifStmt(n)
		case *lang.Assign:
			err = g.assign(n)
		default:
			err = fmt.Errorf("compiler: %s: unknown statement %T", g.prog.Name, s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) forStmt(n *lang.For) error {
	rv, err := g.scalar(n.Var)
	if err != nil {
		return err
	}
	// The loop bound lives in a dedicated persistent register.
	rhi, err := g.scalar(fmt.Sprintf("$hi.%p", n))
	if err != nil {
		return err
	}
	mark := g.tmpMark()
	rlo, err := g.expr(n.Lo)
	if err != nil {
		return err
	}
	g.emit(isa.Instr{Op: isa.OpMov, Rd: rv, Rs1: rlo})
	g.tmpRelease(mark)
	rh, err := g.expr(n.Hi)
	if err != nil {
		return err
	}
	g.emit(isa.Instr{Op: isa.OpMov, Rd: rhi, Rs1: rh})
	g.tmpRelease(mark)

	if g.an != nil && g.an.SetBound[n] {
		// trip = (hi - lo) / step, conveyed to the prefetch engine.
		rt, err := g.tmp()
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.OpSub, Rd: rt, Rs1: rhi, Rs2: rv})
		if n.Step > 1 {
			if n.Step&(n.Step-1) == 0 {
				g.emit(isa.Instr{Op: isa.OpShri, Rd: rt, Rs1: rt, Imm: log2(n.Step)})
			} else {
				rs, err := g.tmp()
				if err != nil {
					return err
				}
				g.emit(isa.Instr{Op: isa.OpLi, Rd: rs, Imm: n.Step})
				g.emit(isa.Instr{Op: isa.OpDiv, Rd: rt, Rs1: rt, Rs2: rs})
			}
		}
		g.emit(isa.Instr{Op: isa.OpSetBound, Rs1: rt})
		g.tmpRelease(mark)
	}

	body := g.newLabel("for")
	end := g.newLabel("endfor")
	g.branch(isa.OpBge, rv, rhi, end)
	g.place(body)
	if err := g.stmts(n.Body); err != nil {
		return err
	}
	g.emit(isa.Instr{Op: isa.OpAddi, Rd: rv, Rs1: rv, Imm: n.Step})
	g.branch(isa.OpBlt, rv, rhi, body)
	g.place(end)
	return nil
}

func (g *codegen) whileStmt(n *lang.While) error {
	top := g.newLabel("while")
	end := g.newLabel("endwhile")
	g.place(top)
	mark := g.tmpMark()
	rc, err := g.expr(n.Cond)
	if err != nil {
		return err
	}
	g.branch(isa.OpBeq, rc, 0, end)
	g.tmpRelease(mark)
	if err := g.stmts(n.Body); err != nil {
		return err
	}
	g.branch(isa.OpJmp, 0, 0, top)
	g.place(end)
	return nil
}

func (g *codegen) ifStmt(n *lang.If) error {
	els := g.newLabel("else")
	end := g.newLabel("endif")
	mark := g.tmpMark()
	rc, err := g.expr(n.Cond)
	if err != nil {
		return err
	}
	g.branch(isa.OpBeq, rc, 0, els)
	g.tmpRelease(mark)
	if err := g.stmts(n.Then); err != nil {
		return err
	}
	if len(n.Else) > 0 {
		g.branch(isa.OpJmp, 0, 0, end)
	}
	g.place(els)
	if err := g.stmts(n.Else); err != nil {
		return err
	}
	g.place(end)
	return nil
}

func (g *codegen) assign(n *lang.Assign) error {
	mark := g.tmpMark()
	defer g.tmpRelease(mark)
	switch d := n.Dst.(type) {
	case *lang.Scalar:
		rd, err := g.scalar(d.Name)
		if err != nil {
			return err
		}
		rs, err := g.expr(n.Src)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.OpMov, Rd: rd, Rs1: rs})
		return nil
	default:
		rv, err := g.expr(n.Src)
		if err != nil {
			return err
		}
		// Keep the value register alive across address computation: if it
		// is a temp, it stays allocated until the statement's release.
		ra, disp, size, err := g.addressOf(n.Dst)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: storeOp(size), Rs1: ra, Rs2: rv, Imm: disp})
		return nil
	}
}

// -------------------------------------------------------------- expressions --

// expr evaluates e into a register. Temporaries used remain allocated until
// the caller releases its mark.
func (g *codegen) expr(e lang.Expr) (uint8, error) {
	switch n := e.(type) {
	case *lang.Const:
		r, err := g.tmp()
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.OpLi, Rd: r, Imm: n.V})
		return r, nil
	case *lang.Scalar:
		return g.scalar(n.Name)
	case *lang.Bin:
		return g.binExpr(n)
	case *lang.Index, *lang.PtrIndex, *lang.FieldRef, *lang.Deref:
		return g.loadRef(e)
	case *lang.AddrOf:
		ix := &lang.Index{Arr: n.Arr, Idx: n.Idx}
		ra, disp, _, err := g.indexAddress(ix)
		if err != nil {
			return 0, err
		}
		if disp != 0 {
			g.emit(isa.Instr{Op: isa.OpAddi, Rd: ra, Rs1: ra, Imm: disp})
		}
		return ra, nil
	default:
		return 0, fmt.Errorf("compiler: %s: unknown expression %T", g.prog.Name, e)
	}
}

func binOpFor(op lang.BinOp) (isa.Op, bool) {
	switch op {
	case lang.Add:
		return isa.OpAdd, true
	case lang.Sub:
		return isa.OpSub, true
	case lang.Mul:
		return isa.OpMul, true
	case lang.Div:
		return isa.OpDiv, true
	case lang.Rem:
		return isa.OpRem, true
	case lang.And:
		return isa.OpAnd, true
	case lang.Or:
		return isa.OpOr, true
	case lang.Xor:
		return isa.OpXor, true
	case lang.Shl:
		return isa.OpShl, true
	case lang.Shr:
		return isa.OpShr, true
	case lang.Lt:
		return isa.OpSlt, true
	}
	return 0, false
}

func (g *codegen) binExpr(n *lang.Bin) (uint8, error) {
	// Allocate the result register first so every temporary consumed by
	// the operands can be released once the operation is emitted; this
	// keeps register pressure proportional to tree depth.
	rd, err := g.tmp()
	if err != nil {
		return 0, err
	}
	mark := g.tmpMark()
	defer g.tmpRelease(mark)
	rl, err := g.expr(n.L)
	if err != nil {
		return 0, err
	}
	rr, err := g.expr(n.R)
	if err != nil {
		return 0, err
	}
	if op, ok := binOpFor(n.Op); ok {
		g.emit(isa.Instr{Op: op, Rd: rd, Rs1: rl, Rs2: rr})
		return rd, nil
	}
	switch n.Op {
	case lang.Eq:
		rt, err := g.tmp()
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.OpSlt, Rd: rd, Rs1: rl, Rs2: rr}) // l<r
		g.emit(isa.Instr{Op: isa.OpSlt, Rd: rt, Rs1: rr, Rs2: rl}) // r<l
		g.emit(isa.Instr{Op: isa.OpOr, Rd: rd, Rs1: rd, Rs2: rt})  // l!=r
		g.emit(isa.Instr{Op: isa.OpXori, Rd: rd, Rs1: rd, Imm: 1}) // l==r
		return rd, nil
	case lang.Ne:
		rt, err := g.tmp()
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.OpSlt, Rd: rd, Rs1: rl, Rs2: rr})
		g.emit(isa.Instr{Op: isa.OpSlt, Rd: rt, Rs1: rr, Rs2: rl})
		g.emit(isa.Instr{Op: isa.OpOr, Rd: rd, Rs1: rd, Rs2: rt})
		return rd, nil
	case lang.Ge:
		g.emit(isa.Instr{Op: isa.OpSlt, Rd: rd, Rs1: rl, Rs2: rr})
		g.emit(isa.Instr{Op: isa.OpXori, Rd: rd, Rs1: rd, Imm: 1})
		return rd, nil
	}
	return 0, fmt.Errorf("compiler: %s: unknown operator %d", g.prog.Name, n.Op)
}

// loadRef emits the load for a memory reference, attaching its hints, and
// any PREFI the reference's indirect annotation calls for.
func (g *codegen) loadRef(e lang.Expr) (uint8, error) {
	var h *HintInfo
	if g.an != nil {
		h = g.an.Hints[e]
	}
	if h != nil && h.Indirect != nil {
		if err := g.emitPrefi(h.Indirect); err != nil {
			return 0, err
		}
	}
	rd, err := g.tmp()
	if err != nil {
		return 0, err
	}
	mark := g.tmpMark()
	defer g.tmpRelease(mark)
	ra, disp, size, err := g.addressOf(e)
	if err != nil {
		return 0, err
	}
	if g.opts.SoftwarePrefetch && h != nil && h.StrideBytes != 0 {
		// PREF the address this reference will touch SWPrefetchIters
		// iterations from now. The address register is still live, so the
		// prefetch costs exactly one extra instruction plus a memory port.
		g.emit(isa.Instr{Op: isa.OpPref, Rs1: ra,
			Imm: disp + h.StrideBytes*g.opts.SWPrefetchIters})
	}
	in := isa.Instr{Op: loadOp(size), Rd: rd, Rs1: ra, Imm: disp, Coeff: isa.FixedRegion}
	if h != nil {
		in.Hint = h.Hint()
		in.Coeff = h.Coeff
	}
	g.emit(in)
	return rd, nil
}

// addressOf computes the address of an lvalue/reference as base register +
// displacement, plus the access size.
func (g *codegen) addressOf(e lang.Expr) (reg uint8, disp int64, size int, err error) {
	switch n := e.(type) {
	case *lang.Index:
		return g.indexAddress(n)
	case *lang.PtrIndex:
		rp, err := g.expr(n.Ptr)
		if err != nil {
			return 0, 0, 0, err
		}
		ra, err := g.scaledAdd(rp, n.Idx, n.Elem.Size())
		if err != nil {
			return 0, 0, 0, err
		}
		return ra, 0, int(n.Elem.Size()), nil
	case *lang.FieldRef:
		rp, err := g.expr(n.Ptr)
		if err != nil {
			return 0, 0, 0, err
		}
		f := n.Struct.FieldByName(n.Field)
		return rp, f.Offset, int(f.Type.Size()), nil
	case *lang.Deref:
		rp, err := g.expr(n.Ptr)
		if err != nil {
			return 0, 0, 0, err
		}
		return rp, 0, int(n.Elem.Size()), nil
	}
	return 0, 0, 0, fmt.Errorf("compiler: %s: not an address expression: %T", g.prog.Name, e)
}

// indexAddress computes the address of arr[idx...] with constant subscripts
// folded into the displacement.
func (g *codegen) indexAddress(n *lang.Index) (reg uint8, disp int64, size int, err error) {
	base, ok := g.layout.Addr[n.Arr.Name]
	if !ok {
		return 0, 0, 0, fmt.Errorf("compiler: %s: array %q not placed", g.prog.Name, n.Arr.Name)
	}
	elem := n.Arr.Elem.Size()
	ra, err := g.tmp()
	if err != nil {
		return 0, 0, 0, err
	}
	g.emit(isa.Instr{Op: isa.OpLi, Rd: ra, Imm: int64(base)})
	var cdisp int64
	for d, sub := range n.Idx {
		scale := n.Arr.Stride(d) * elem
		if c, isC := sub.(*lang.Const); isC {
			cdisp += c.V * scale
			continue
		}
		ra, err = g.scaledAddInto(ra, sub, scale)
		if err != nil {
			return 0, 0, 0, err
		}
	}
	return ra, cdisp, int(elem), nil
}

// scaledAdd returns a register holding rp + sub*scale.
func (g *codegen) scaledAdd(rp uint8, sub lang.Expr, scale int64) (uint8, error) {
	rd, err := g.tmp()
	if err != nil {
		return 0, err
	}
	g.emit(isa.Instr{Op: isa.OpMov, Rd: rd, Rs1: rp})
	return g.scaledAddInto(rd, sub, scale)
}

// scaledAddInto adds sub*scale into ra (which must be a writable temp).
// Temporaries consumed by the computation are released before returning.
func (g *codegen) scaledAddInto(ra uint8, sub lang.Expr, scale int64) (uint8, error) {
	if !g.isTemp(ra) {
		rd, err := g.tmp()
		if err != nil {
			return 0, err
		}
		g.emit(isa.Instr{Op: isa.OpMov, Rd: rd, Rs1: ra})
		ra = rd
	}
	mark := g.tmpMark()
	defer g.tmpRelease(mark)
	ri, err := g.expr(sub)
	if err != nil {
		return 0, err
	}
	if scale == 1 {
		g.emit(isa.Instr{Op: isa.OpAdd, Rd: ra, Rs1: ra, Rs2: ri})
		return ra, nil
	}
	rs, err := g.tmp()
	if err != nil {
		return 0, err
	}
	if scale > 0 && scale&(scale-1) == 0 {
		g.emit(isa.Instr{Op: isa.OpShli, Rd: rs, Rs1: ri, Imm: log2(scale)})
	} else {
		g.emit(isa.Instr{Op: isa.OpMuli, Rd: rs, Rs1: ri, Imm: scale})
	}
	g.emit(isa.Instr{Op: isa.OpAdd, Rd: ra, Rs1: ra, Rs2: rs})
	return ra, nil
}

// emitPrefi lowers an indirect annotation into a (possibly guarded) PREFI:
// rs1 = &b[i], rs2 = effective base of a, imm = scale shift (Sec. 3.3.3).
func (g *codegen) emitPrefi(info *IndirectInfo) error {
	mark := g.tmpMark()
	defer g.tmpRelease(mark)

	var skip string
	if info.Guard != "" {
		rg, err := g.scalar(info.Guard)
		if err != nil {
			return err
		}
		rt, err := g.tmp()
		if err != nil {
			return err
		}
		// Issue one PREFI per block of the indirection array: 16 4-byte
		// indices per 64-byte block.
		g.emit(isa.Instr{Op: isa.OpAndi, Rd: rt, Rs1: rg, Imm: 15})
		skip = g.newLabel("noprefi")
		g.branch(isa.OpBne, rt, 0, skip)
	}

	// Schedule the PREFI ahead of the demand stream: prefetch the index
	// block two blocks (32 4-byte indices) beyond the current position, so
	// the generated data prefetches have time to cover the memory latency
	// before the loop reaches them.
	idx := make([]lang.Expr, len(info.Inner.Idx))
	copy(idx, info.Inner.Idx)
	last := len(idx) - 1
	idx[last] = lang.B(lang.Add, idx[last], lang.C(prefiLookaheadIdx))
	ridx, err := g.expr(&lang.AddrOf{Arr: info.Inner.Arr, Idx: idx})
	if err != nil {
		return err
	}
	base, ok := g.layout.Addr[info.Base.Name]
	if !ok {
		return fmt.Errorf("compiler: %s: array %q not placed", g.prog.Name, info.Base.Name)
	}
	rbase, err := g.tmp()
	if err != nil {
		return err
	}
	g.emit(isa.Instr{Op: isa.OpLi, Rd: rbase, Imm: int64(base)})
	if c, isC := info.BaseOffset.(*lang.Const); !isC || c.V != 0 {
		roff, err := g.expr(info.BaseOffset)
		if err != nil {
			return err
		}
		g.emit(isa.Instr{Op: isa.OpAdd, Rd: rbase, Rs1: rbase, Rs2: roff})
	}
	g.emit(isa.Instr{Op: isa.OpPrefIndirect, Rs1: ridx, Rs2: rbase, Imm: int64(info.Shift)})
	if skip != "" {
		g.place(skip)
	}
	return nil
}

func loadOp(size int) isa.Op {
	switch size {
	case 1:
		return isa.OpLd1
	case 4:
		return isa.OpLd4
	default:
		return isa.OpLd
	}
}

func storeOp(size int) isa.Op {
	switch size {
	case 1:
		return isa.OpSt1
	case 4:
		return isa.OpSt4
	default:
		return isa.OpSt
	}
}

func log2(v int64) int64 {
	var n int64
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
