package compiler

import (
	"fmt"
	"sort"

	"grp/internal/isa"
	"grp/internal/lang"
)

// Policy selects the spatial-marking aggressiveness (paper Section 5.4).
type Policy int

// Policies.
const (
	// PolicyDefault marks a reference spatial when its reuse lies in the
	// innermost enclosing loop, or when a computable reuse distance is
	// below the L2 capacity.
	PolicyDefault Policy = iota
	// PolicyConservative marks a reference spatial only when its reuse
	// lies in the innermost enclosing loop.
	PolicyConservative
	// PolicyAggressive marks a reference spatial even when its reuse
	// distance exceeds the L2 capacity or is unknown.
	PolicyAggressive
)

func (p Policy) String() string {
	switch p {
	case PolicyConservative:
		return "conservative"
	case PolicyAggressive:
		return "aggressive"
	default:
		return "default"
	}
}

// Analysis tunables; these mirror the simulated hardware (Section 5.1).
const (
	// SpatialStrideMax is the largest byte stride treated as having
	// spatial locality (one cache block).
	SpatialStrideMax = 64
	// L2Capacity bounds the reuse distance the compiler will mark
	// (Section 4.1: "we use the level 2 cache size as our upper bound").
	L2Capacity = 1 << 20
	// InductionStepMax is the largest pointer-induction step treated as
	// spatial ("if constant c is small", Section 4.2).
	InductionStepMax = 64
)

// HintInfo is the annotation the analysis attaches to one memory
// reference.
type HintInfo struct {
	Spatial   bool
	Pointer   bool
	Recursive bool
	// Scope records why the reference is spatial: "innermost", "outer",
	// or "" when not spatial; diagnostics only.
	Scope string
	// Coeff is the 3-bit variable-region-size coefficient
	// (isa.FixedRegion when the reference uses fixed-size regions).
	Coeff uint8
	// StrideBytes is the reference's byte stride per iteration of its
	// innermost loop, when the reference is spatial there (0 otherwise).
	// The software-prefetching backend uses it to compute lookahead
	// distances.
	StrideBytes int64
	// Indirect is set on indirect array references a[s*b(i)+e].
	Indirect *IndirectInfo
}

// Hint renders the annotation as ISA hint bits.
func (h *HintInfo) Hint() isa.Hint {
	var v isa.Hint
	if h.Spatial {
		v |= isa.HintSpatial
	}
	if h.Pointer {
		v |= isa.HintPointer
	}
	if h.Recursive {
		v |= isa.HintRecursive
	}
	return v
}

// IndirectInfo describes an indirect array reference a[s*b(i)+e] for which
// the compiler emits a PREFI instruction (Section 4.3): the indexing
// reference b(i), the data array a, the byte offset of the effective base
// (the reference's address with the indirect term zeroed), and
// log2(s · stride · elemsize), the scaling shift the hardware applies.
type IndirectInfo struct {
	Inner *lang.Index
	Base  *lang.Array
	// BaseOffset is a source-language expression for the byte offset of
	// the effective base address within Base.
	BaseOffset lang.Expr
	Shift      uint
	// Guard, when non-nil, is the loop variable to guard PREFI emission on
	// ((var & 15) == 0), so one instruction covers a block of indices.
	Guard string
}

// Annotations is the analysis result consumed by code generation.
type Annotations struct {
	Policy Policy
	// Hints maps memory-reference expression nodes to their annotations.
	Hints map[lang.Expr]*HintInfo
	// SetBound lists loops that need a SETBOUND instruction at entry for
	// variable-size region prefetching.
	SetBound map[*lang.For]bool
}

// hintFor returns (creating if needed) the annotation for ref.
func (an *Annotations) hintFor(ref lang.Expr) *HintInfo {
	h := an.Hints[ref]
	if h == nil {
		h = &HintInfo{Coeff: isa.FixedRegion}
		an.Hints[ref] = h
	}
	return h
}

// ----------------------------------------------------------- loop tree --

type loopInfo struct {
	forStmt   *lang.For
	whileStmt *lang.While
	parent    *loopInfo
	children  []*loopInfo
	depth     int   // 1 = outermost
	trip      int64 // iteration count, -1 unknown
	assigned  map[string]bool
	// indPtr maps recognized induction-pointer scalars to their byte step.
	indPtr map[string]int64
	// spatialScalars are scalars assigned from spatially marked loads in
	// this loop (Figure 7's propagation phase).
	spatialScalars map[string]bool
	refs           []*refSite // refs whose innermost loop is this one
}

func (l *loopInfo) vars() []string {
	var vs []string
	for c := l; c != nil; c = c.parent {
		if c.forStmt != nil {
			vs = append(vs, c.forStmt.Var)
		}
	}
	return vs
}

func (l *loopInfo) root() *loopInfo {
	c := l
	for c.parent != nil {
		c = c.parent
	}
	return c
}

// innermostFor returns the innermost enclosing counted loop (possibly l).
func (l *loopInfo) innermostFor() *loopInfo {
	for c := l; c != nil; c = c.parent {
		if c.forStmt != nil {
			return c
		}
	}
	return nil
}

type refSite struct {
	e     lang.Expr
	loop  *loopInfo
	store bool
}

// analyzer carries state across passes.
type analyzer struct {
	prog   *lang.Program
	policy Policy
	an     *Annotations

	loops []*loopInfo // all loops, outer before inner
	refs  []*refSite  // all reference sites in loops
	// scalarDefs maps scalar name -> the refs assigned into it, per loop.
	scalarLoads map[*loopInfo]map[string][]lang.Expr
}

// Analyze runs every hint analysis over the program and returns the
// annotations. The program must Validate.
func Analyze(p *lang.Program, policy Policy) (*Annotations, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := &analyzer{
		prog:   p,
		policy: policy,
		an: &Annotations{
			Policy:   policy,
			Hints:    map[lang.Expr]*HintInfo{},
			SetBound: map[*lang.For]bool{},
		},
		scalarLoads: map[*loopInfo]map[string][]lang.Expr{},
	}
	a.buildLoopTree(p.Body, nil)
	a.recognizeInductionPointers()
	a.generateSpatialHints() // Figure 7
	a.generatePointerHints() // Figure 8
	a.detectIndirect()       // Section 4.3
	a.variableRegionSizes()  // Section 4.4
	return a.an, nil
}

// ----------------------------------------------------- tree construction --

func (a *analyzer) buildLoopTree(ss []lang.Stmt, parent *loopInfo) {
	for _, s := range ss {
		switch n := s.(type) {
		case *lang.For:
			li := a.newLoop(parent)
			li.forStmt = n
			li.trip = tripCount(n)
			a.collectStmts(n.Body, li)
		case *lang.While:
			li := a.newLoop(parent)
			li.whileStmt = n
			li.trip = -1
			a.collectExpr(n.Cond, li, false)
			a.collectStmts(n.Body, li)
		case *lang.If:
			a.collectExpr(n.Cond, parent, false)
			a.buildLoopTree(n.Then, parent)
			a.buildLoopTree(n.Else, parent)
		case *lang.Assign:
			a.collectAssign(n, parent)
		}
	}
}

func (a *analyzer) newLoop(parent *loopInfo) *loopInfo {
	li := &loopInfo{
		parent:         parent,
		depth:          1,
		assigned:       map[string]bool{},
		indPtr:         map[string]int64{},
		spatialScalars: map[string]bool{},
	}
	if parent != nil {
		li.depth = parent.depth + 1
		parent.children = append(parent.children, li)
	}
	a.loops = append(a.loops, li)
	return li
}

// collectStmts records refs and assignments inside loop li.
func (a *analyzer) collectStmts(ss []lang.Stmt, li *loopInfo) {
	for _, s := range ss {
		switch n := s.(type) {
		case *lang.For:
			inner := a.newLoop(li)
			inner.forStmt = n
			inner.trip = tripCount(n)
			a.markAssigned(li, n.Var)
			a.collectStmts(n.Body, inner)
		case *lang.While:
			inner := a.newLoop(li)
			inner.whileStmt = n
			inner.trip = -1
			a.collectExpr(n.Cond, inner, false)
			a.collectStmts(n.Body, inner)
		case *lang.If:
			a.collectExpr(n.Cond, li, false)
			a.collectStmts(n.Then, li)
			a.collectStmts(n.Else, li)
		case *lang.Assign:
			a.collectAssign(n, li)
		}
	}
}

func (a *analyzer) collectAssign(n *lang.Assign, li *loopInfo) {
	// Destination.
	switch d := n.Dst.(type) {
	case *lang.Scalar:
		if li != nil {
			a.markAssigned(li, d.Name)
			if ld, ok := memRef(n.Src); ok {
				m := a.scalarLoads[li]
				if m == nil {
					m = map[string][]lang.Expr{}
					a.scalarLoads[li] = m
				}
				m[d.Name] = append(m[d.Name], ld)
			}
		}
	default:
		a.collectExpr(n.Dst, li, true)
	}
	a.collectExpr(n.Src, li, false)
}

func (a *analyzer) markAssigned(li *loopInfo, name string) {
	for c := li; c != nil; c = c.parent {
		c.assigned[name] = true
	}
}

// collectExpr registers all memory references within e.
func (a *analyzer) collectExpr(e lang.Expr, li *loopInfo, store bool) {
	if e == nil {
		return
	}
	switch n := e.(type) {
	case *lang.Const, *lang.Scalar:
	case *lang.Bin:
		a.collectExpr(n.L, li, false)
		a.collectExpr(n.R, li, false)
	case *lang.Index:
		a.addRef(n, li, store)
		for _, ix := range n.Idx {
			a.collectExpr(ix, li, false)
		}
	case *lang.AddrOf:
		for _, ix := range n.Idx {
			a.collectExpr(ix, li, false)
		}
	case *lang.PtrIndex:
		a.addRef(n, li, store)
		a.collectExpr(n.Ptr, li, false)
		a.collectExpr(n.Idx, li, false)
	case *lang.FieldRef:
		a.addRef(n, li, store)
		a.collectExpr(n.Ptr, li, false)
	case *lang.Deref:
		a.addRef(n, li, store)
		a.collectExpr(n.Ptr, li, false)
	}
}

func (a *analyzer) addRef(e lang.Expr, li *loopInfo, store bool) {
	if li == nil {
		return // the analysis marks only references enclosed in loops
	}
	r := &refSite{e: e, loop: li, store: store}
	li.refs = append(li.refs, r)
	a.refs = append(a.refs, r)
}

// memRef returns e if it is a memory-reference node.
func memRef(e lang.Expr) (lang.Expr, bool) {
	switch e.(type) {
	case *lang.Index, *lang.PtrIndex, *lang.FieldRef, *lang.Deref:
		return e, true
	}
	return nil, false
}

func tripCount(f *lang.For) int64 {
	lo, okLo := f.Lo.(*lang.Const)
	hi, okHi := f.Hi.(*lang.Const)
	if !okLo || !okHi || f.Step <= 0 {
		return -1
	}
	n := hi.V - lo.V
	if n <= 0 {
		return 0
	}
	return (n + f.Step - 1) / f.Step
}

// ------------------------------------- induction pointer recognition (4.2) --

// recognizeInductionPointers finds scalars updated p = p ± c once per loop,
// used as pointers, and records their byte step; it also notes recursive
// pointer updates p = p->f for Figure 8.
func (a *analyzer) recognizeInductionPointers() {
	for _, li := range a.loops {
		body := a.loopBody(li)
		scan(body, func(s lang.Stmt) {
			as, ok := s.(*lang.Assign)
			if !ok {
				return
			}
			dst, ok := as.Dst.(*lang.Scalar)
			if !ok {
				return
			}
			// p = p + c (or p - c): pointer induction.
			if b, ok := as.Src.(*lang.Bin); ok && (b.Op == lang.Add || b.Op == lang.Sub) {
				if l, ok := b.L.(*lang.Scalar); ok && l.Name == dst.Name {
					if c, ok := b.R.(*lang.Const); ok {
						step := c.V
						if b.Op == lang.Sub {
							step = -step
						}
						li.indPtr[dst.Name] = step
					}
				}
			}
			// p = p->f where f has type *struct(p): recursive update.
			if fr, ok := as.Src.(*lang.FieldRef); ok {
				if base, ok := fr.Ptr.(*lang.Scalar); ok && base.Name == dst.Name {
					f := fr.Struct.FieldByName(fr.Field)
					if pt, ok := f.Type.(lang.PtrT); ok {
						if st, ok := pt.Elem.(*lang.StructT); ok && st == fr.Struct {
							h := a.an.hintFor(fr)
							h.Recursive = true
						}
					}
				}
			}
		})
	}
}

// loopBody returns the loop's statement list.
func (a *analyzer) loopBody(li *loopInfo) []lang.Stmt {
	if li.forStmt != nil {
		return li.forStmt.Body
	}
	return li.whileStmt.Body
}

// scan visits every statement in ss, without descending into nested loops
// (each loop is visited through its own loopInfo).
func scan(ss []lang.Stmt, f func(lang.Stmt)) {
	for _, s := range ss {
		f(s)
		switch n := s.(type) {
		case *lang.If:
			scan(n.Then, f)
			scan(n.Else, f)
		}
	}
}

// -------------------------------------------- spatial hints (Figure 7) --

func (a *analyzer) generateSpatialHints() {
	for _, r := range a.refs {
		switch n := r.e.(type) {
		case *lang.Index:
			a.spatialForIndex(r, n)
		case *lang.Deref:
			a.spatialForPointerUse(r, n.Ptr)
		case *lang.FieldRef:
			a.spatialForPointerUse(r, n.Ptr)
		case *lang.PtrIndex:
			a.spatialForPtrIndex(r, n)
		}
	}
	a.propagateSpatial()
}

// env builds the affine environment for a reference in loop li.
func (a *analyzer) env(li *loopInfo) affineEnv {
	ind := map[string]bool{}
	for c := li; c != nil; c = c.parent {
		if c.forStmt != nil {
			ind[c.forStmt.Var] = true
		}
	}
	root := li.root()
	return affineEnv{
		induction: ind,
		invariant: func(name string) bool { return !root.assigned[name] },
	}
}

// spatialForIndex implements the array half of Figure 7: dependence-based
// spatial-reuse detection with reuse-distance estimation.
func (a *analyzer) spatialForIndex(r *refSite, ix *lang.Index) {
	env := a.env(r.loop)
	off := byteOffset(ix, env)
	if !off.ok {
		return // non-affine; possibly an indirect reference (Section 4.3)
	}
	// Walk enclosing counted loops from innermost outward. The innermost
	// loop with a small nonzero stride carries the spatial reuse; when
	// that loop is not the innermost enclosing one (transpose-style
	// access), the reuse distance and policy decide whether to mark.
	first := true
	for li := r.loop.innermostFor(); li != nil; li = li.parent.innermostForOrNil() {
		v := li.forStmt.Var
		s := off.stride(v) * li.forStmt.Step
		if s < 0 {
			s = -s
		}
		isInnermost := first
		first = false
		if s == 0 || s > SpatialStrideMax {
			continue
		}
		if isInnermost {
			h := a.an.hintFor(ix)
			h.Spatial = true
			h.Scope = "innermost"
			h.StrideBytes = s
			return
		}
		// Spatial reuse carried by an outer loop: decide by policy and
		// reuse distance (bytes touched per iteration of li).
		switch a.policy {
		case PolicyConservative:
			return
		case PolicyAggressive:
			h := a.an.hintFor(ix)
			h.Spatial = true
			h.Scope = "outer"
			return
		default:
			if d := a.reuseDistance(r, li); d >= 0 && d <= L2Capacity {
				h := a.an.hintFor(ix)
				h.Spatial = true
				h.Scope = "outer"
			}
			return
		}
	}
}

// innermostForOrNil is a nil-safe helper.
func (l *loopInfo) innermostForOrNil() *loopInfo {
	if l == nil {
		return nil
	}
	return l.innermostFor()
}

// reuseDistance estimates the bytes touched by one iteration of loop li
// (the loop carrying the spatial reuse), i.e. the volume between
// consecutive touches of the same cache block. -1 means unknown.
func (a *analyzer) reuseDistance(_ *refSite, li *loopInfo) int64 {
	inside := func(l *loopInfo) bool {
		for c := l; c != nil; c = c.parent {
			if c == li {
				return true
			}
		}
		return false
	}
	var total int64
	for _, r := range a.refs {
		if !inside(r.loop) {
			continue
		}
		b := a.refFootprint(r, li)
		if b < 0 {
			return -1
		}
		total += b
		if total > 4*L2Capacity {
			return total // already beyond any threshold; stop growing
		}
	}
	return total
}

// refFootprint estimates the bytes ref r touches during one iteration of
// enclosing loop outer. -1 means unknown.
func (a *analyzer) refFootprint(r *refSite, outer *loopInfo) int64 {
	elem := refElemSize(r.e)
	env := a.env(r.loop)
	var off affine
	if ix, ok := r.e.(*lang.Index); ok {
		off = byteOffset(ix, env)
	} else {
		// Pointer-based refs: assume they advance with their loop.
		off = affine{ok: false}
	}
	elems := int64(1)
	minStride := int64(1 << 30)
	for li := r.loop; li != nil && li != outer; li = li.parent {
		if li.forStmt == nil {
			return -1 // while loop with unknown trip count
		}
		v := li.forStmt.Var
		var s int64
		if off.ok {
			s = off.stride(v) * li.forStmt.Step
		} else {
			s = elem // pointer walk: assume element-sized steps
		}
		if s < 0 {
			s = -s
		}
		if s == 0 {
			continue // invariant in this loop
		}
		if li.trip < 0 {
			return -1
		}
		elems *= li.trip
		if s < minStride {
			minStride = s
		}
	}
	if minStride > SpatialStrideMax {
		minStride = SpatialStrideMax // distinct blocks dominate
	}
	if minStride < elem {
		minStride = elem
	}
	if minStride == 1<<30 {
		minStride = elem
	}
	return elems * minStride
}

func refElemSize(e lang.Expr) int64 {
	switch n := e.(type) {
	case *lang.Index:
		return n.Arr.Elem.Size()
	case *lang.PtrIndex:
		return n.Elem.Size()
	case *lang.FieldRef:
		return n.Struct.FieldByName(n.Field).Type.Size()
	case *lang.Deref:
		return n.Elem.Size()
	}
	return 8
}

// spatialForPointerUse marks *p and p->f spatial when p is a recognized
// loop induction pointer with a small constant step (Figure 5 and the
// first phase of Figure 7).
func (a *analyzer) spatialForPointerUse(r *refSite, ptr lang.Expr) {
	sc, ok := ptr.(*lang.Scalar)
	if !ok {
		return
	}
	for li := r.loop; li != nil; li = li.parent {
		if step, ok := li.indPtr[sc.Name]; ok {
			if step < 0 {
				step = -step
			}
			if step > 0 && step <= InductionStepMax {
				h := a.an.hintFor(r.e)
				h.Spatial = true
				h.Scope = "innermost"
			}
			return
		}
	}
}

// spatialForPtrIndex handles buf[i][j]-style accesses through a loaded
// pointer (paper Figure 4): the access is spatial when the subscript is
// affine with a small stride in the innermost loop and the pointer itself
// does not change with that loop.
func (a *analyzer) spatialForPtrIndex(r *refSite, pi *lang.PtrIndex) {
	inner := r.loop.innermostFor()
	if inner == nil {
		return
	}
	env := a.env(r.loop)
	off := affineOf(pi.Idx, env).scale(pi.Elem.Size())
	if !off.ok {
		return
	}
	v := inner.forStmt.Var
	s := off.stride(v) * inner.forStmt.Step
	if s < 0 {
		s = -s
	}
	if s == 0 || s > SpatialStrideMax {
		return
	}
	if usesVar(pi.Ptr, v) {
		return // the base pointer moves with the loop; not a simple stream
	}
	h := a.an.hintFor(pi)
	h.Spatial = true
	h.Scope = "innermost"
	h.StrideBytes = s
	// Also handle induction-pointer bases p[i] via the pointer rule.
	a.spatialForPointerUse(r, pi.Ptr)
}

// propagateSpatial is the second phase of Figure 7: uses of scalars loaded
// from spatially marked references become spatial, iterating to fixpoint.
func (a *analyzer) propagateSpatial() {
	for {
		changed := false
		for _, li := range a.loops {
			loads := a.scalarLoads[li]
			for name, srcs := range loads {
				if li.spatialScalars[name] {
					continue
				}
				for _, src := range srcs {
					if h := a.an.Hints[src]; h != nil && h.Spatial {
						li.spatialScalars[name] = true
						changed = true
						break
					}
				}
			}
		}
		for _, r := range a.refs {
			var ptr lang.Expr
			switch n := r.e.(type) {
			case *lang.FieldRef:
				ptr = n.Ptr
			case *lang.Deref:
				ptr = n.Ptr
			case *lang.PtrIndex:
				ptr = n.Ptr
			default:
				continue
			}
			sc, ok := ptr.(*lang.Scalar)
			if !ok {
				continue
			}
			marked := false
			for li := r.loop; li != nil; li = li.parent {
				if li.spatialScalars[sc.Name] {
					marked = true
					break
				}
			}
			if !marked {
				continue
			}
			h := a.an.hintFor(r.e)
			if !h.Spatial {
				h.Spatial = true
				h.Scope = "propagated"
				// Propagated locality is speculative — the pointer target's
				// neighborhood, not a proven affine stream — so the
				// compiler requests the minimum region size rather than a
				// full 4 KB region (cf. the paper's sphinx discussion in
				// Section 5.2: "the compiler cannot guarantee that there
				// is spatial locality, so it chooses small prefetch
				// regions").
				h.Coeff = 0
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// ---------------------------------------------- pointer hints (Figure 8) --

func (a *analyzer) generatePointerHints() {
	// Field accesses: mark pointer when a pointer field of the same
	// structure is accessed in the same loop.
	for _, li := range a.loops {
		// Which struct types have a pointer field accessed in this loop?
		ptrStructs := map[*lang.StructT]bool{}
		for _, r := range li.refs {
			fr, ok := r.e.(*lang.FieldRef)
			if !ok {
				continue
			}
			f := fr.Struct.FieldByName(fr.Field)
			if _, isPtr := f.Type.(lang.PtrT); isPtr {
				ptrStructs[fr.Struct] = true
			}
		}
		if len(ptrStructs) == 0 {
			continue
		}
		for _, r := range li.refs {
			fr, ok := r.e.(*lang.FieldRef)
			if !ok || r.store {
				continue
			}
			if ptrStructs[fr.Struct] {
				a.an.hintFor(fr).Pointer = true
			}
		}
	}
	// Spatial references to heap arrays of pointers are marked pointer
	// (the buf[i] case of Figure 4 / Section 4.5).
	for _, r := range a.refs {
		ix, ok := r.e.(*lang.Index)
		if !ok || r.store {
			continue
		}
		h := a.an.Hints[ix]
		if h == nil || !h.Spatial {
			continue
		}
		if _, isPtr := ix.Arr.Elem.(lang.PtrT); isPtr && ix.Arr.Heap {
			h.Pointer = true
		}
	}
}

// -------------------------------------------- indirect references (4.3) --

func (a *analyzer) detectIndirect() {
	for _, r := range a.refs {
		ix, ok := r.e.(*lang.Index)
		if !ok {
			continue
		}
		env := a.env(r.loop)
		if byteOffset(ix, env).ok {
			continue // affine: plain spatial analysis applies
		}
		// Find the one subscript containing an inner array reference of
		// the form s*b(i)+e with everything else affine.
		var info *IndirectInfo
		fail := false
		for d, sub := range ix.Idx {
			inner, scale, ok2 := matchIndirect(sub, env)
			if !ok2 {
				if !affineOf(sub, env).ok {
					fail = true
					break
				}
				continue
			}
			if info != nil {
				fail = true // two indirect dimensions; give up
				break
			}
			// The indexing reference must itself have spatial reuse.
			hInner := a.an.Hints[inner]
			if hInner == nil || !hInner.Spatial {
				fail = true
				break
			}
			if inner.Arr.Elem.Size() != 4 {
				fail = true // hardware assumes 4-byte index elements
				break
			}
			byteScale := scale * ix.Arr.Stride(d) * ix.Arr.Elem.Size()
			if byteScale <= 0 || byteScale&(byteScale-1) != 0 {
				fail = true // non-power-of-two scaling; no PREFI encoding
				break
			}
			shift := uint(0)
			for s := byteScale; s > 1; s >>= 1 {
				shift++
			}
			info = &IndirectInfo{
				Inner:      inner,
				Base:       ix.Arr,
				BaseOffset: baseOffsetExpr(ix, d),
				Shift:      shift,
				Guard:      guardVar(inner, env),
			}
		}
		if info != nil && !fail {
			a.an.hintFor(ix).Indirect = info
		}
	}
}

// matchIndirect matches sub against s*b(i)+e and returns the inner
// reference and s. Only a single inner Index is accepted.
func matchIndirect(sub lang.Expr, env affineEnv) (*lang.Index, int64, bool) {
	switch n := sub.(type) {
	case *lang.Index:
		return n, 1, true
	case *lang.Bin:
		switch n.Op {
		case lang.Add, lang.Sub:
			li, ls, lok := matchIndirect(n.L, env)
			ri, rs, rok := matchIndirect(n.R, env)
			switch {
			case lok && !rok && affineOf(n.R, env).ok:
				return li, ls, true
			case rok && !lok && affineOf(n.L, env).ok && n.Op == lang.Add:
				return ri, rs, true
			}
			return nil, 0, false
		case lang.Mul:
			if c, ok := n.L.(*lang.Const); ok {
				if i, s, ok2 := matchIndirect(n.R, env); ok2 {
					return i, s * c.V, true
				}
			}
			if c, ok := n.R.(*lang.Const); ok {
				if i, s, ok2 := matchIndirect(n.L, env); ok2 {
					return i, s * c.V, true
				}
			}
			return nil, 0, false
		case lang.Shl:
			if c, ok := n.R.(*lang.Const); ok && c.V >= 0 && c.V < 32 {
				if i, s, ok2 := matchIndirect(n.L, env); ok2 {
					return i, s << uint(c.V), true
				}
			}
			return nil, 0, false
		}
	}
	return nil, 0, false
}

// baseOffsetExpr builds a source-level expression for the byte offset of
// the reference's base address: the full subscript expression with the
// indirect dimension's subscript replaced by zero.
func baseOffsetExpr(ix *lang.Index, indirectDim int) lang.Expr {
	elem := ix.Arr.Elem.Size()
	var total lang.Expr = lang.C(0)
	for d, sub := range ix.Idx {
		if d == indirectDim {
			continue
		}
		term := lang.B(lang.Mul, sub, lang.C(ix.Arr.Stride(d)*elem))
		total = lang.B(lang.Add, total, term)
	}
	return total
}

// guardVar returns the loop variable to guard PREFI on when the inner
// reference's flattened subscript is exactly that variable.
func guardVar(inner *lang.Index, env affineEnv) string {
	if len(inner.Idx) != 1 {
		return ""
	}
	a := affineOf(inner.Idx[0], env)
	if !a.ok || a.symbolic || a.konst != 0 || len(a.coef) != 1 {
		return ""
	}
	for v, c := range a.coef {
		if c == 1 {
			return v
		}
	}
	return ""
}

// -------------------------------------- variable region sizes (4.4) --

// variableRegionSizes encodes, for spatial references in singly nested
// loops, a 3-bit coefficient x with 2^x closest to the reference's byte
// stride, and schedules a SETBOUND at loop entry.
func (a *analyzer) variableRegionSizes() {
	for _, li := range a.loops {
		if li.forStmt == nil || len(li.children) != 0 {
			// Only leaf counted loops: their trip count fully describes
			// the spatial run of the references inside. SETBOUND is
			// re-executed at each loop entry, so leaf loops inside nests
			// work like the paper's singly nested case.
			continue
		}
		env := a.env(li)
		v := li.forStmt.Var
		emitted := false
		for _, r := range li.refs {
			var off affine
			switch n := r.e.(type) {
			case *lang.Index:
				off = byteOffset(n, env)
			case *lang.PtrIndex:
				off = affineOf(n.Idx, env).scale(n.Elem.Size())
			default:
				continue
			}
			h := a.an.Hints[r.e]
			if h == nil || !h.Spatial || !off.ok {
				continue
			}
			bs := off.stride(v) * li.forStmt.Step
			if bs < 0 {
				bs = -bs
			}
			if bs == 0 {
				continue
			}
			if a.contiguousAcrossOuter(li, off, bs) {
				// Consecutive leaf-loop footprints abut (a dense nest like
				// a[i][j]); bounding the region to one footprint would just
				// split a long stream, so keep the fixed region size. This
				// mirrors the paper's restriction of size hints to singly
				// nested loops.
				continue
			}
			h.Coeff = encodeCoeff(bs)
			emitted = true
		}
		if emitted {
			a.an.SetBound[li.forStmt] = true
		}
	}
}

// contiguousAcrossOuter reports whether consecutive executions of leaf
// loop li touch abutting memory: the reference's stride in some enclosing
// loop variable is no more than twice the leaf loop's footprint
// (trip · bs). Unknown trips are treated as non-contiguous.
func (a *analyzer) contiguousAcrossOuter(li *loopInfo, off affine, bs int64) bool {
	if li.trip < 0 {
		return false
	}
	foot := li.trip * bs
	for l := li.parent; l != nil; l = l.parent {
		if l.forStmt == nil {
			continue
		}
		s := off.stride(l.forStmt.Var) * l.forStmt.Step
		if s < 0 {
			s = -s
		}
		if s != 0 && s <= 2*foot {
			return true
		}
	}
	return false
}

// encodeCoeff returns x in [1, 6] with 2^x closest to byte stride bs
// (Sec. 4.4); encoding 7 means fixed-size and 0 is reserved for
// minimum-size (propagated) regions.
func encodeCoeff(bs int64) uint8 {
	best := uint8(1)
	bestDiff := int64(1<<62 - 1)
	for x := uint8(1); x < 7; x++ {
		d := int64(1)<<x - bs
		if d < 0 {
			d = -d
		}
		if d < bestDiff {
			bestDiff = d
			best = x
		}
	}
	return best
}

// ------------------------------------------------------------- reporting --

// Describe renders the annotations human-readably (cmd/grphints).
func (an *Annotations) Describe() string {
	type row struct{ kind, detail string }
	var rows []row
	for e, h := range an.Hints {
		if !h.Spatial && !h.Pointer && !h.Recursive && h.Indirect == nil {
			continue
		}
		rows = append(rows, row{refName(e), h.describe()})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].kind != rows[j].kind {
			return rows[i].kind < rows[j].kind
		}
		return rows[i].detail < rows[j].detail
	})
	s := ""
	for _, r := range rows {
		s += fmt.Sprintf("%-28s %s\n", r.kind, r.detail)
	}
	return s
}

func (h *HintInfo) describe() string {
	s := ""
	add := func(x string) {
		if s != "" {
			s += ","
		}
		s += x
	}
	if h.Spatial {
		add("spatial(" + h.Scope + ")")
		if h.Coeff != isa.FixedRegion {
			add(fmt.Sprintf("size=2^%d", h.Coeff))
		}
	}
	if h.Pointer {
		add("pointer")
	}
	if h.Recursive {
		add("recursive")
	}
	if h.Indirect != nil {
		add("indirect(base=" + h.Indirect.Base.Name + ",idx=" + h.Indirect.Inner.Arr.Name + ")")
	}
	return s
}

func refName(e lang.Expr) string {
	switch n := e.(type) {
	case *lang.Index:
		return n.Arr.Name + subscriptString(len(n.Idx))
	case *lang.PtrIndex:
		return "ptr[" + "]"
	case *lang.FieldRef:
		return exprBase(n.Ptr) + "->" + n.Field
	case *lang.Deref:
		return "*" + exprBase(n.Ptr)
	}
	return "?"
}

func exprBase(e lang.Expr) string {
	if s, ok := e.(*lang.Scalar); ok {
		return s.Name
	}
	return "expr"
}

func subscriptString(n int) string {
	s := ""
	for i := 0; i < n; i++ {
		s += "[]"
	}
	return s
}
