package compiler

import "grp/internal/lang"

// usesVar reports whether expression e reads scalar v.
func usesVar(e lang.Expr, v string) bool {
	switch n := e.(type) {
	case nil:
		return false
	case *lang.Const:
		return false
	case *lang.Scalar:
		return n.Name == v
	case *lang.Bin:
		return usesVar(n.L, v) || usesVar(n.R, v)
	case *lang.Index:
		for _, ix := range n.Idx {
			if usesVar(ix, v) {
				return true
			}
		}
		return false
	case *lang.AddrOf:
		for _, ix := range n.Idx {
			if usesVar(ix, v) {
				return true
			}
		}
		return false
	case *lang.PtrIndex:
		return usesVar(n.Ptr, v) || usesVar(n.Idx, v)
	case *lang.FieldRef:
		return usesVar(n.Ptr, v)
	case *lang.Deref:
		return usesVar(n.Ptr, v)
	}
	return true // unknown node: assume it might
}
