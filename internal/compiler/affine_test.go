package compiler

import (
	"testing"

	"grp/internal/lang"
)

func env(inducts ...string) affineEnv {
	m := map[string]bool{}
	for _, v := range inducts {
		m[v] = true
	}
	return affineEnv{
		induction: m,
		invariant: func(name string) bool { return name == "inv" },
	}
}

func TestAffineConstAndVar(t *testing.T) {
	a := affineOf(lang.C(5), env("i"))
	if !a.ok || !a.isConst() || a.konst != 5 {
		t.Errorf("const affine = %+v", a)
	}
	b := affineOf(lang.S("i"), env("i"))
	if !b.ok || b.stride("i") != 1 {
		t.Errorf("var affine = %+v", b)
	}
}

func TestAffineArithmetic(t *testing.T) {
	// 3*i + 2*j - 7
	e := lang.B(lang.Sub,
		lang.B(lang.Add,
			lang.B(lang.Mul, lang.C(3), lang.S("i")),
			lang.B(lang.Mul, lang.S("j"), lang.C(2))),
		lang.C(7))
	a := affineOf(e, env("i", "j"))
	if !a.ok || a.stride("i") != 3 || a.stride("j") != 2 || a.konst != -7 {
		t.Errorf("affine = %+v", a)
	}
}

func TestAffineShift(t *testing.T) {
	e := lang.B(lang.Shl, lang.S("i"), lang.C(3))
	a := affineOf(e, env("i"))
	if !a.ok || a.stride("i") != 8 {
		t.Errorf("i<<3 affine = %+v", a)
	}
}

func TestAffineSymbolicInvariant(t *testing.T) {
	// i + inv: affine with a symbolic constant (paper's buf[i][a*j+b]).
	e := lang.B(lang.Add, lang.S("i"), lang.S("inv"))
	a := affineOf(e, env("i"))
	if !a.ok || !a.symbolic || a.stride("i") != 1 {
		t.Errorf("symbolic affine = %+v", a)
	}
	// i * inv is not affine (unknown stride).
	e2 := lang.B(lang.Mul, lang.S("i"), lang.S("inv"))
	if affineOf(e2, env("i")).ok {
		t.Error("i*symbolic should not be affine")
	}
}

func TestAffineNonAffine(t *testing.T) {
	cases := []lang.Expr{
		lang.B(lang.Mul, lang.S("i"), lang.S("j")),
		lang.B(lang.Div, lang.S("i"), lang.C(2)),
		lang.S("unknown"),
		lang.Ix(&lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{4}}, lang.C(0)),
	}
	for i, e := range cases {
		if affineOf(e, env("i", "j")).ok {
			t.Errorf("case %d should not be affine", i)
		}
	}
}

func TestByteOffset(t *testing.T) {
	arr := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{10, 20}}
	// a[i][2*j+1]: stride(i) = 20*8 = 160, stride(j) = 16, const = 8.
	ix := lang.Ix(arr,
		lang.S("i"),
		lang.B(lang.Add, lang.B(lang.Mul, lang.C(2), lang.S("j")), lang.C(1)))
	off := byteOffset(ix, env("i", "j"))
	if !off.ok || off.stride("i") != 160 || off.stride("j") != 16 || off.konst != 8 {
		t.Errorf("byteOffset = %+v", off)
	}
}

func TestByteOffsetNonAffine(t *testing.T) {
	arr := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{10}}
	inner := &lang.Array{Name: "b", Elem: lang.I32, Dims: []int64{10}}
	ix := lang.Ix(arr, lang.Ix(inner, lang.S("i")))
	if byteOffset(ix, env("i")).ok {
		t.Error("indirect subscript should not be affine")
	}
}

func TestEncodeCoeff(t *testing.T) {
	cases := map[int64]uint8{
		1: 1, 2: 1, 4: 2, 8: 3, 16: 4, 32: 5, 64: 6, 100: 6, 1000: 6,
		6: 3, // closest power of two to 6 is 8? |8-6|=2, |4-6|=2 -> first found (4 -> x=2)
	}
	for bs, want := range cases {
		if bs == 6 {
			// Tie between 4 and 8; either encoding is acceptable.
			got := encodeCoeff(bs)
			if got != 2 && got != 3 {
				t.Errorf("encodeCoeff(6) = %d, want 2 or 3", got)
			}
			continue
		}
		if got := encodeCoeff(bs); got != want {
			t.Errorf("encodeCoeff(%d) = %d, want %d", bs, got, want)
		}
	}
}
