package compiler

import (
	"fmt"

	"grp/internal/lang"
	"grp/internal/mem"
)

// Interp executes a lang program directly over simulated memory, using the
// same layout the compiler targets. It is the reference semantics for
// differential testing: compiled code run on the CPU model must leave
// memory and scalars in the same state the interpreter computes.
type Interp struct {
	prog    *lang.Program
	lay     *Layout
	mem     *mem.Memory
	scalars map[string]uint64
	steps   int
	maxStep int
}

// NewInterp builds an interpreter. maxSteps bounds execution (0 = 64M).
func NewInterp(p *lang.Program, lay *Layout, m *mem.Memory, maxSteps int) *Interp {
	if maxSteps <= 0 {
		maxSteps = 64 << 20
	}
	return &Interp{
		prog: p, lay: lay, mem: m,
		scalars: make(map[string]uint64),
		maxStep: maxSteps,
	}
}

// Run executes the program body. It returns an error on runaway execution
// or malformed constructs.
func (ip *Interp) Run() error {
	if err := ip.prog.Validate(); err != nil {
		return err
	}
	return ip.stmts(ip.prog.Body)
}

// Scalar returns a scalar's final value.
func (ip *Interp) Scalar(name string) uint64 { return ip.scalars[name] }

// Steps returns how many interpreter steps Run consumed; the conformance
// harness uses it to derive a simulated-instruction budget for the same
// program.
func (ip *Interp) Steps() int { return ip.steps }

func (ip *Interp) tick() error {
	ip.steps++
	if ip.steps > ip.maxStep {
		return fmt.Errorf("compiler: interpreter exceeded %d steps in %s", ip.maxStep, ip.prog.Name)
	}
	return nil
}

func (ip *Interp) stmts(ss []lang.Stmt) error {
	for _, s := range ss {
		if err := ip.tick(); err != nil {
			return err
		}
		switch n := s.(type) {
		case *lang.For:
			lo, err := ip.eval(n.Lo)
			if err != nil {
				return err
			}
			hi, err := ip.eval(n.Hi)
			if err != nil {
				return err
			}
			// Semantics match the generated code exactly: the loop
			// variable is live after the loop, holding the first value
			// >= hi (or lo when the loop never entered), and body writes
			// to it take effect before the increment.
			v := int64(lo)
			for {
				ip.scalars[n.Var] = uint64(v)
				if v >= int64(hi) {
					break
				}
				if err := ip.stmts(n.Body); err != nil {
					return err
				}
				if err := ip.tick(); err != nil {
					return err
				}
				v = int64(ip.scalars[n.Var]) + n.Step
			}
		case *lang.While:
			for {
				c, err := ip.eval(n.Cond)
				if err != nil {
					return err
				}
				if c == 0 {
					break
				}
				if err := ip.stmts(n.Body); err != nil {
					return err
				}
				if err := ip.tick(); err != nil {
					return err
				}
			}
		case *lang.If:
			c, err := ip.eval(n.Cond)
			if err != nil {
				return err
			}
			if c != 0 {
				if err := ip.stmts(n.Then); err != nil {
					return err
				}
			} else if err := ip.stmts(n.Else); err != nil {
				return err
			}
		case *lang.Assign:
			v, err := ip.eval(n.Src)
			if err != nil {
				return err
			}
			if err := ip.assign(n.Dst, v); err != nil {
				return err
			}
		default:
			return fmt.Errorf("compiler: interp: unknown statement %T", s)
		}
	}
	return nil
}

func (ip *Interp) assign(dst lang.LValue, v uint64) error {
	if sc, ok := dst.(*lang.Scalar); ok {
		ip.scalars[sc.Name] = v
		return nil
	}
	addr, size, err := ip.address(dst)
	if err != nil {
		return err
	}
	ip.mem.Write(addr, size, v)
	return nil
}

// address resolves a memory reference to (address, access size).
func (ip *Interp) address(e lang.Expr) (uint64, int, error) {
	switch n := e.(type) {
	case *lang.Index:
		base, ok := ip.lay.Addr[n.Arr.Name]
		if !ok {
			return 0, 0, fmt.Errorf("compiler: interp: array %q not placed", n.Arr.Name)
		}
		elem := n.Arr.Elem.Size()
		off := int64(0)
		for d, sub := range n.Idx {
			v, err := ip.eval(sub)
			if err != nil {
				return 0, 0, err
			}
			off += int64(v) * n.Arr.Stride(d) * elem
		}
		return base + uint64(off), int(elem), nil
	case *lang.PtrIndex:
		p, err := ip.eval(n.Ptr)
		if err != nil {
			return 0, 0, err
		}
		i, err := ip.eval(n.Idx)
		if err != nil {
			return 0, 0, err
		}
		return p + uint64(int64(i)*n.Elem.Size()), int(n.Elem.Size()), nil
	case *lang.FieldRef:
		p, err := ip.eval(n.Ptr)
		if err != nil {
			return 0, 0, err
		}
		f := n.Struct.FieldByName(n.Field)
		return p + uint64(f.Offset), int(f.Type.Size()), nil
	case *lang.Deref:
		p, err := ip.eval(n.Ptr)
		if err != nil {
			return 0, 0, err
		}
		return p, int(n.Elem.Size()), nil
	}
	return 0, 0, fmt.Errorf("compiler: interp: not an address expression %T", e)
}

func (ip *Interp) eval(e lang.Expr) (uint64, error) {
	switch n := e.(type) {
	case *lang.Const:
		return uint64(n.V), nil
	case *lang.Scalar:
		return ip.scalars[n.Name], nil
	case *lang.Bin:
		l, err := ip.eval(n.L)
		if err != nil {
			return 0, err
		}
		r, err := ip.eval(n.R)
		if err != nil {
			return 0, err
		}
		switch n.Op {
		case lang.Add:
			return l + r, nil
		case lang.Sub:
			return l - r, nil
		case lang.Mul:
			return l * r, nil
		case lang.Div:
			if r == 0 {
				return 0, nil
			}
			return uint64(int64(l) / int64(r)), nil
		case lang.Rem:
			if r == 0 {
				return 0, nil
			}
			return uint64(int64(l) % int64(r)), nil
		case lang.And:
			return l & r, nil
		case lang.Or:
			return l | r, nil
		case lang.Xor:
			return l ^ r, nil
		case lang.Shl:
			return l << (r & 63), nil
		case lang.Shr:
			return l >> (r & 63), nil
		case lang.Lt:
			if int64(l) < int64(r) {
				return 1, nil
			}
			return 0, nil
		case lang.Eq:
			if l == r {
				return 1, nil
			}
			return 0, nil
		case lang.Ne:
			if l != r {
				return 1, nil
			}
			return 0, nil
		case lang.Ge:
			if int64(l) >= int64(r) {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("compiler: interp: unknown operator %d", n.Op)
	case *lang.AddrOf:
		base, ok := ip.lay.Addr[n.Arr.Name]
		if !ok {
			return 0, fmt.Errorf("compiler: interp: array %q not placed", n.Arr.Name)
		}
		elem := n.Arr.Elem.Size()
		off := int64(0)
		for d, sub := range n.Idx {
			v, err := ip.eval(sub)
			if err != nil {
				return 0, err
			}
			off += int64(v) * n.Arr.Stride(d) * elem
		}
		return base + uint64(off), nil
	case *lang.Index, *lang.PtrIndex, *lang.FieldRef, *lang.Deref:
		addr, size, err := ip.address(e)
		if err != nil {
			return 0, err
		}
		return ip.mem.Read(addr, size), nil
	}
	return 0, fmt.Errorf("compiler: interp: unknown expression %T", e)
}
