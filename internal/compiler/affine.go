// Package compiler implements the paper's Section 4 analyses over the
// lang AST — induction-variable recognition, dependence-based spatial
// locality analysis with reuse-distance estimation (Figure 7), pointer and
// recursive-pointer idiom analysis (Figure 8), indirect-array detection
// (Section 4.3), and variable-region-size encoding (Section 4.4) — plus
// code generation lowering annotated programs to the hint-carrying ISA.
package compiler

import "grp/internal/lang"

// affine is a linear form Σ coef[v]·v + konst over loop induction
// variables, with a flag for additional loop-invariant symbolic terms
// (which shift the base address but do not affect strides, like the a and
// b of buf[i][a*j+b] in the paper's Figure 4 discussion).
type affine struct {
	coef     map[string]int64
	konst    int64
	symbolic bool // an invariant unknown contributes to the constant part
	ok       bool
}

func affConst(v int64) affine { return affine{konst: v, ok: true} }

func affVar(v string) affine {
	return affine{coef: map[string]int64{v: 1}, ok: true}
}

func (a affine) isConst() bool { return a.ok && len(a.coef) == 0 && !a.symbolic }

// stride returns the coefficient of variable v.
func (a affine) stride(v string) int64 { return a.coef[v] }

func (a affine) add(b affine) affine {
	if !a.ok || !b.ok {
		return affine{}
	}
	r := affine{coef: map[string]int64{}, konst: a.konst + b.konst, symbolic: a.symbolic || b.symbolic, ok: true}
	for k, v := range a.coef {
		r.coef[k] += v
	}
	for k, v := range b.coef {
		r.coef[k] += v
	}
	for k, v := range r.coef {
		if v == 0 {
			delete(r.coef, k)
		}
	}
	return r
}

func (a affine) neg() affine {
	if !a.ok {
		return a
	}
	r := affine{coef: map[string]int64{}, konst: -a.konst, symbolic: a.symbolic, ok: true}
	for k, v := range a.coef {
		r.coef[k] = -v
	}
	return r
}

func (a affine) scale(s int64) affine {
	if !a.ok {
		return a
	}
	if s == 0 {
		return affConst(0)
	}
	r := affine{coef: map[string]int64{}, konst: a.konst * s, symbolic: a.symbolic, ok: true}
	for k, v := range a.coef {
		r.coef[k] = v * s
	}
	return r
}

// affineEnv supplies the variable classification the analysis needs:
// induction variables (loop counters and recognized pointer inductions) and
// invariance of other scalars with respect to the reference's loop nest.
type affineEnv struct {
	// induction maps induction-variable names to true.
	induction map[string]bool
	// invariant reports whether a non-induction scalar is loop-invariant
	// in the enclosing nest.
	invariant func(name string) bool
}

// affineOf computes the affine form of e. Non-affine constructs (products
// of variables, loads, etc.) yield ok == false.
func affineOf(e lang.Expr, env affineEnv) affine {
	switch n := e.(type) {
	case *lang.Const:
		return affConst(n.V)
	case *lang.Scalar:
		if env.induction[n.Name] {
			return affVar(n.Name)
		}
		if env.invariant != nil && env.invariant(n.Name) {
			return affine{symbolic: true, ok: true}
		}
		return affine{}
	case *lang.Bin:
		l := affineOf(n.L, env)
		r := affineOf(n.R, env)
		switch n.Op {
		case lang.Add:
			return l.add(r)
		case lang.Sub:
			return l.add(r.neg())
		case lang.Mul:
			if l.isConst() {
				return r.scale(l.konst)
			}
			if r.isConst() {
				return l.scale(r.konst)
			}
			return affine{}
		case lang.Shl:
			if r.isConst() && r.konst >= 0 && r.konst < 63 {
				return l.scale(1 << uint(r.konst))
			}
			return affine{}
		default:
			return affine{}
		}
	default:
		return affine{}
	}
}

// byteOffset computes the affine byte offset of an Index reference:
// Σ_d affine(idx_d) · stride_d · elemSize. ok is false when any subscript
// is non-affine.
func byteOffset(ix *lang.Index, env affineEnv) affine {
	elem := ix.Arr.Elem.Size()
	total := affConst(0)
	for d, sub := range ix.Idx {
		a := affineOf(sub, env)
		if !a.ok {
			return affine{}
		}
		total = total.add(a.scale(ix.Arr.Stride(d) * elem))
	}
	return total
}
