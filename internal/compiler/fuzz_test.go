package compiler

import (
	"math/rand"
	"testing"

	"grp/internal/lang"
	"grp/internal/mem"
)

// progGen generates random structured programs over a fixed set of arrays
// and scalars. Loops are bounded and every generated program terminates,
// so the differential test (compiled vs. interpreted) can run to
// completion.
type progGen struct {
	r       *rand.Rand
	arrays  []*lang.Array
	scalars []string
	// loopVarsInUse guards against nested loops reusing an enclosing
	// loop's variable, which would reset the outer counter and (in both
	// implementations, identically) never terminate.
	loopVarsInUse map[string]bool
}

func newProgGen(seed int64) *progGen {
	return &progGen{
		r:             rand.New(rand.NewSource(seed)),
		loopVarsInUse: map[string]bool{},
		arrays: []*lang.Array{
			{Name: "a", Elem: lang.I64, Dims: []int64{32}},
			{Name: "b", Elem: lang.I64, Dims: []int64{8, 8}},
			{Name: "w", Elem: lang.I32, Dims: []int64{64}},
		},
		scalars: []string{"i", "j", "k", "s", "t", "u"},
	}
}

// expr generates a random arithmetic expression; memLoads controls whether
// array loads may appear.
func (g *progGen) expr(depth int, memLoads bool) lang.Expr {
	if depth <= 0 || g.r.Intn(3) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return lang.C(int64(g.r.Intn(64)))
		default:
			return lang.S(g.scalars[g.r.Intn(len(g.scalars))])
		}
	}
	if memLoads && g.r.Intn(4) == 0 {
		return g.indexExpr(depth - 1)
	}
	ops := []lang.BinOp{lang.Add, lang.Sub, lang.Mul, lang.And, lang.Or,
		lang.Xor, lang.Lt, lang.Eq, lang.Ne, lang.Ge}
	return lang.B(ops[g.r.Intn(len(ops))], g.expr(depth-1, memLoads), g.expr(depth-1, memLoads))
}

// indexExpr generates an in-bounds array reference: subscripts are masked
// with And so any scalar value stays a legal index.
func (g *progGen) indexExpr(depth int) *lang.Index {
	arr := g.arrays[g.r.Intn(len(g.arrays))]
	idx := make([]lang.Expr, len(arr.Dims))
	for d := range arr.Dims {
		idx[d] = lang.B(lang.And, g.expr(depth, false), lang.C(arr.Dims[d]-1))
	}
	return lang.Ix(arr, idx...)
}

func (g *progGen) stmt(depth int) lang.Stmt {
	switch g.r.Intn(6) {
	case 0, 1:
		// Scalar assignment.
		return &lang.Assign{
			Dst: lang.S(g.scalars[3+g.r.Intn(3)]), // s, t, u only (never loop vars)
			Src: g.expr(depth, true),
		}
	case 2:
		// Array store.
		return &lang.Assign{Dst: g.indexExpr(1), Src: g.expr(depth, true)}
	case 3:
		// If statement.
		return &lang.If{
			Cond: g.expr(1, false),
			Then: g.stmts(depth-1, 2),
			Else: g.stmts(depth-1, 1),
		}
	default:
		// Bounded counted loop over a free loop variable; fall back to a
		// scalar assignment when all three are in use by enclosing loops.
		var v string
		for _, cand := range []string{"i", "j", "k"} {
			if !g.loopVarsInUse[cand] {
				v = cand
				break
			}
		}
		if v == "" {
			return &lang.Assign{Dst: lang.S("s"), Src: g.expr(depth, true)}
		}
		lo := int64(g.r.Intn(4))
		hi := lo + int64(1+g.r.Intn(12))
		g.loopVarsInUse[v] = true
		body := g.stmts(depth-1, 2)
		g.loopVarsInUse[v] = false
		return &lang.For{
			Var: v, Lo: lang.C(lo), Hi: lang.C(hi), Step: int64(1 + g.r.Intn(2)),
			Body: body,
		}
	}
}

func (g *progGen) stmts(depth, n int) []lang.Stmt {
	if depth <= 0 {
		return []lang.Stmt{&lang.Assign{Dst: lang.S("s"), Src: g.expr(1, false)}}
	}
	var out []lang.Stmt
	for i := 0; i < 1+g.r.Intn(n); i++ {
		out = append(out, g.stmt(depth))
	}
	return out
}

func (g *progGen) program(name string) *lang.Program {
	return &lang.Program{
		Name:    name,
		Arrays:  g.arrays,
		Scalars: g.scalars,
		Body:    g.stmts(3, 3),
	}
}

// TestFuzzCompilerVsInterpreter generates random structured programs and
// checks that the compiled binary running on the out-of-order core leaves
// memory identical to the reference interpreter. This exercises loops,
// conditionals, nested subscripts, masked indexing, multi-dimensional
// arrays, 4-byte accesses, and the whole codegen register allocator.
func TestFuzzCompilerVsInterpreter(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		g := newProgGen(1000 + seed)
		p := g.program("fuzz")
		if err := p.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced invalid program: %v", seed, err)
		}
		initFn := func(m *mem.Memory, lay *Layout) {
			r := rand.New(rand.NewSource(seed))
			for _, a := range p.Arrays {
				base := lay.Addr[a.Name]
				for off := int64(0); off < a.Bytes(); off += 8 {
					m.Write64(base+uint64(off), uint64(r.Int63n(1<<32)))
				}
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d panicked: %v", seed, r)
				}
			}()
			runBoth(t, p, initFn, nil)
		}()
		if t.Failed() {
			t.Fatalf("seed %d produced divergence", seed)
		}
	}
}

// TestFuzzAnalysisNeverCrashes runs every analysis policy over a larger
// corpus of random programs; the analyses must be total.
func TestFuzzAnalysisNeverCrashes(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		g := newProgGen(5000 + seed)
		p := g.program("afuzz")
		for _, pol := range []Policy{PolicyDefault, PolicyConservative, PolicyAggressive} {
			if _, err := Analyze(p, pol); err != nil {
				t.Fatalf("seed %d policy %v: %v", seed, pol, err)
			}
		}
	}
}
