package compiler

import (
	"testing"

	"grp/internal/mem"
	"grp/internal/progen"
)

// genInit adapts a progen workload initializer to runBoth's layout-based
// signature.
func genInit(w *progen.Workload) func(m *mem.Memory, lay *Layout) {
	return func(m *mem.Memory, lay *Layout) {
		w.Init(m, func(name string) uint64 { return lay.Addr[name] })
	}
}

// TestFuzzCompilerVsInterpreter generates random structured programs and
// checks that the compiled binary running on the out-of-order core leaves
// memory identical to the reference interpreter. The arithmetic grammar
// exercises loops, conditionals, nested subscripts, masked indexing,
// multi-dimensional arrays, 4-byte accesses, and the whole codegen
// register allocator.
func TestFuzzCompilerVsInterpreter(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		w := progen.Generate(1000+seed, progen.Config{Arith: true})
		if err := w.Prog.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced invalid program: %v", seed, err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d panicked: %v", seed, r)
				}
			}()
			runBoth(t, w.Prog, genInit(w), nil)
		}()
		if t.Failed() {
			t.Fatalf("seed %d produced divergence", seed)
		}
	}
}

// TestFuzzCompilerVsInterpreterFull runs the differential check over the
// full grammar — pointer chasing, tree search, a[b[i]] indirection, heap
// row sweeps, and stores through all of them — so PREFI emission and the
// hint paths are exercised end to end, not just scalar arithmetic.
func TestFuzzCompilerVsInterpreterFull(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		w := progen.Generate(3000+seed, progen.Config{})
		if err := w.Prog.Validate(); err != nil {
			t.Fatalf("seed %d: generator produced invalid program: %v", seed, err)
		}
		runBoth(t, w.Prog, genInit(w), nil)
		if t.Failed() {
			t.Fatalf("seed %d produced divergence", seed)
		}
	}
}

// TestFuzzAnalysisNeverCrashes runs every analysis policy over a larger
// corpus of full-grammar random programs; the analyses must be total.
func TestFuzzAnalysisNeverCrashes(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		w := progen.Generate(5000+seed, progen.Config{})
		for _, pol := range []Policy{PolicyDefault, PolicyConservative, PolicyAggressive} {
			if _, err := Analyze(w.Prog, pol); err != nil {
				t.Fatalf("seed %d policy %v: %v", seed, pol, err)
			}
		}
	}
}
