package compiler

import (
	"math/rand"
	"testing"

	"grp/internal/cpu"
	"grp/internal/isa"
	"grp/internal/lang"
	"grp/internal/mem"
)

// perfectMem is a trivial MemoryTiming for functional codegen tests.
type perfectMem struct {
	bounds    []uint64
	indirects int
	swprefs   int
}

func (pm *perfectMem) Load(_, _ uint64, _ isa.Hint, _ uint8, now uint64) uint64 { return now + 1 }
func (pm *perfectMem) Store(_, _ uint64, now uint64) uint64                     { return now + 1 }
func (pm *perfectMem) SetBound(v uint64)                                        { pm.bounds = append(pm.bounds, v) }
func (pm *perfectMem) Indirect(_, _ uint64, _ uint)                             { pm.indirects++ }
func (pm *perfectMem) SoftwarePrefetch(_, _ uint64)                             { pm.swprefs++ }

// runBoth compiles and runs p on the CPU model and on the reference
// interpreter over independent memories, then compares the named scalars
// and the contents of every array.
func runBoth(t *testing.T, p *lang.Program, init func(m *mem.Memory, lay *Layout), checkScalars []string) {
	t.Helper()

	// Interpreter run.
	mi := mem.New()
	layI := Place(p, mi)
	if init != nil {
		init(mi, layI)
	}
	interp := NewInterp(p, layI, mi, 0)
	if err := interp.Run(); err != nil {
		t.Fatalf("interp: %v", err)
	}

	// Compiled run.
	mc := mem.New()
	prog, layC, _, err := CompileWorkload(p, mc, PolicyDefault)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if init != nil {
		init(mc, layC)
	}
	core, err := cpu.New(cpu.Default(), mc, &perfectMem{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(prog)
	if err != nil {
		t.Fatalf("cpu run: %v", err)
	}
	if !res.Halted {
		t.Fatalf("compiled program did not halt (%d instrs)", res.Instrs)
	}

	// Compare scalars (the compiled program keeps scalars in registers;
	// read them back through the register map exposed via a fresh
	// compile... simplest is comparing through memory plus named scalars
	// stored by the program; here we compare array contents and any
	// scalars the caller persisted to memory).
	_ = checkScalars

	for _, a := range p.Arrays {
		baseI, baseC := layI.Addr[a.Name], layC.Addr[a.Name]
		for off := int64(0); off < a.Bytes(); off += 8 {
			vi := mi.Read64(baseI + uint64(off))
			vc := mc.Read64(baseC + uint64(off))
			if vi != vc {
				t.Fatalf("array %s byte %d: interp %#x vs compiled %#x", a.Name, off, vi, vc)
			}
		}
	}
}

func TestCodegenArraySum(t *testing.T) {
	a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{64}}
	out := &lang.Array{Name: "out", Elem: lang.I64, Dims: []int64{1}}
	p := &lang.Program{
		Name: "sum", Arrays: []*lang.Array{a, out}, Scalars: []string{"i", "s"},
		Body: []lang.Stmt{
			&lang.Assign{Dst: lang.S("s"), Src: lang.C(0)},
			&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(64), Step: 1, Body: []lang.Stmt{
				&lang.Assign{Dst: lang.S("s"), Src: lang.B(lang.Add, lang.S("s"), lang.Ix(a, lang.S("i")))},
			}},
			&lang.Assign{Dst: lang.Ix(out, lang.C(0)), Src: lang.S("s")},
		},
	}
	runBoth(t, p, func(m *mem.Memory, lay *Layout) {
		for i := int64(0); i < 64; i++ {
			m.Write64(lay.Addr["a"]+uint64(i*8), uint64(i*i+1))
		}
	}, nil)
}

func TestCodegenMultiDim(t *testing.T) {
	a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{8, 8, 8}}
	b := &lang.Array{Name: "b", Elem: lang.I64, Dims: []int64{8, 8, 8}}
	kv, jv, iv := lang.S("k"), lang.S("j"), lang.S("i")
	p := &lang.Program{
		Name: "md", Arrays: []*lang.Array{a, b}, Scalars: []string{"k", "j", "i"},
		Body: []lang.Stmt{
			&lang.For{Var: "k", Lo: lang.C(0), Hi: lang.C(8), Step: 1, Body: []lang.Stmt{
				&lang.For{Var: "j", Lo: lang.C(0), Hi: lang.C(8), Step: 1, Body: []lang.Stmt{
					&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(8), Step: 1, Body: []lang.Stmt{
						&lang.Assign{Dst: lang.Ix(b, kv, jv, iv), Src: lang.B(lang.Mul,
							lang.Ix(a, kv, jv, iv),
							lang.B(lang.Add, kv, lang.B(lang.Add, jv, iv)))},
					}},
				}},
			}},
		},
	}
	runBoth(t, p, func(m *mem.Memory, lay *Layout) {
		for i := int64(0); i < 8*8*8; i++ {
			m.Write64(lay.Addr["a"]+uint64(i*8), uint64(i*31+7))
		}
	}, nil)
}

func TestCodegenPointerWalk(t *testing.T) {
	st := lang.NewStruct("n", lang.Field{Name: "v", Type: lang.I64})
	st.Append("next", lang.PtrT{Elem: st})
	head := &lang.Array{Name: "head", Elem: lang.PtrT{Elem: st}, Dims: []int64{1}, Heap: true}
	out := &lang.Array{Name: "out", Elem: lang.I64, Dims: []int64{1}}
	p := &lang.Program{
		Name: "walk", Arrays: []*lang.Array{head, out}, Scalars: []string{"p", "s"},
		Body: []lang.Stmt{
			&lang.Assign{Dst: lang.S("p"), Src: lang.Ix(head, lang.C(0))},
			&lang.Assign{Dst: lang.S("s"), Src: lang.C(0)},
			&lang.While{Cond: lang.B(lang.Ne, lang.S("p"), lang.C(0)), Body: []lang.Stmt{
				&lang.Assign{Dst: lang.S("s"), Src: lang.B(lang.Add, lang.S("s"),
					&lang.FieldRef{Ptr: lang.S("p"), Struct: st, Field: "v"})},
				&lang.Assign{Dst: lang.S("p"),
					Src: &lang.FieldRef{Ptr: lang.S("p"), Struct: st, Field: "next"}},
			}},
			&lang.Assign{Dst: lang.Ix(out, lang.C(0)), Src: lang.S("s")},
		},
	}
	runBoth(t, p, func(m *mem.Memory, lay *Layout) {
		// Ten nodes; the same allocation sequence happens in both runs, so
		// node addresses agree between interpreter and compiled layouts.
		var prev uint64
		var first uint64
		for i := 0; i < 10; i++ {
			n := m.Alloc(16, 8)
			m.Write64(n, uint64(100+i))
			if prev != 0 {
				m.Write64(prev+8, n)
			} else {
				first = n
			}
			prev = n
		}
		m.Write64(prev+8, 0)
		m.Write64(lay.Addr["head"], first)
	}, nil)
}

func TestCodegenIfElse(t *testing.T) {
	a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{100}}
	b := &lang.Array{Name: "b", Elem: lang.I64, Dims: []int64{100}}
	p := &lang.Program{
		Name: "ifelse", Arrays: []*lang.Array{a, b}, Scalars: []string{"i", "v"},
		Body: []lang.Stmt{
			&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(100), Step: 1, Body: []lang.Stmt{
				&lang.Assign{Dst: lang.S("v"), Src: lang.Ix(a, lang.S("i"))},
				&lang.If{
					Cond: lang.B(lang.Lt, lang.S("v"), lang.C(50)),
					Then: []lang.Stmt{&lang.Assign{Dst: lang.Ix(b, lang.S("i")), Src: lang.C(1)}},
					Else: []lang.Stmt{&lang.Assign{Dst: lang.Ix(b, lang.S("i")), Src: lang.B(lang.Mul, lang.S("v"), lang.C(3))}},
				},
			}},
		},
	}
	runBoth(t, p, func(m *mem.Memory, lay *Layout) {
		for i := int64(0); i < 100; i++ {
			m.Write64(lay.Addr["a"]+uint64(i*8), uint64(i%97))
		}
	}, nil)
}

func TestCodegenByteAndWordAccess(t *testing.T) {
	src := &lang.Array{Name: "src", Elem: lang.I8, Dims: []int64{256}}
	w := &lang.Array{Name: "w", Elem: lang.I32, Dims: []int64{256}}
	p := &lang.Program{
		Name: "bytes", Arrays: []*lang.Array{src, w}, Scalars: []string{"i", "t"},
		Body: []lang.Stmt{
			&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(256), Step: 1, Body: []lang.Stmt{
				&lang.Assign{Dst: lang.S("t"), Src: lang.Ix(src, lang.S("i"))},
				&lang.Assign{Dst: lang.Ix(w, lang.S("i")),
					Src: lang.B(lang.Add, lang.B(lang.Shl, lang.S("t"), lang.C(4)), lang.S("i"))},
			}},
		},
	}
	runBoth(t, p, func(m *mem.Memory, lay *Layout) {
		for i := int64(0); i < 256; i++ {
			m.Write(lay.Addr["src"]+uint64(i), 1, uint64(i*13))
		}
	}, nil)
}

func TestCodegenSetBoundEmitted(t *testing.T) {
	a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{4096}}
	p := &lang.Program{
		Name: "sb", Arrays: []*lang.Array{a}, Scalars: []string{"i", "s"},
		Body: []lang.Stmt{&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(16), Step: 1,
			Body: []lang.Stmt{&lang.Assign{Dst: lang.S("s"), Src: lang.Ix(a, lang.S("i"))}}}},
	}
	m := mem.New()
	prog, _, _, err := CompileWorkload(p, m, PolicyDefault)
	if err != nil {
		t.Fatal(err)
	}
	pm := &perfectMem{}
	core, err := cpu.New(cpu.Default(), m, pm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(prog); err != nil {
		t.Fatal(err)
	}
	if len(pm.bounds) != 1 || pm.bounds[0] != 16 {
		t.Errorf("SETBOUND values = %v, want [16]", pm.bounds)
	}
}

func TestCodegenPrefiGuarded(t *testing.T) {
	b := &lang.Array{Name: "b", Elem: lang.I32, Dims: []int64{256}}
	a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{4096}}
	p := &lang.Program{
		Name: "prefi", Arrays: []*lang.Array{b, a}, Scalars: []string{"i", "s"},
		Body: []lang.Stmt{&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(256), Step: 1,
			Body: []lang.Stmt{&lang.Assign{Dst: lang.S("s"),
				Src: lang.Ix(a, lang.Ix(b, lang.S("i")))}}}},
	}
	m := mem.New()
	prog, _, _, err := CompileWorkload(p, m, PolicyDefault)
	if err != nil {
		t.Fatal(err)
	}
	pm := &perfectMem{}
	core, err := cpu.New(cpu.Default(), m, pm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(prog); err != nil {
		t.Fatal(err)
	}
	// Guarded on (i & 15) == 0: 256/16 = 16 executions.
	if pm.indirects != 16 {
		t.Errorf("PREFI executed %d times, want 16", pm.indirects)
	}
}

func TestPlaceNoOverlap(t *testing.T) {
	a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{100}}
	b := &lang.Array{Name: "b", Elem: lang.I64, Dims: []int64{100}}
	h := &lang.Array{Name: "h", Elem: lang.I64, Dims: []int64{100}, Heap: true}
	p := &lang.Program{Name: "place", Arrays: []*lang.Array{a, b, h}}
	m := mem.New()
	lay := Place(p, m)
	if lay.Addr["a"]+800 > lay.Addr["b"] {
		t.Errorf("globals overlap: a=%#x b=%#x", lay.Addr["a"], lay.Addr["b"])
	}
	if !m.InHeap(lay.Addr["h"]) {
		t.Errorf("heap array not in heap: %#x", lay.Addr["h"])
	}
	if m.InHeap(lay.Addr["a"]) {
		t.Errorf("global array in heap: %#x", lay.Addr["a"])
	}
}

// TestQuickCodegenExpressions: random arithmetic expressions over two
// scalars compile to code computing the same value as the interpreter.
func TestQuickCodegenExpressions(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var build func(depth int) lang.Expr
	build = func(depth int) lang.Expr {
		if depth == 0 || r.Intn(3) == 0 {
			switch r.Intn(3) {
			case 0:
				return lang.C(int64(r.Intn(2048) - 1024))
			case 1:
				return lang.S("x")
			default:
				return lang.S("y")
			}
		}
		ops := []lang.BinOp{lang.Add, lang.Sub, lang.Mul, lang.And, lang.Or,
			lang.Xor, lang.Lt, lang.Eq, lang.Ne, lang.Ge}
		return lang.B(ops[r.Intn(len(ops))], build(depth-1), build(depth-1))
	}
	out := &lang.Array{Name: "out", Elem: lang.I64, Dims: []int64{1}}
	for trial := 0; trial < 60; trial++ {
		e := build(3)
		p := &lang.Program{
			Name: "expr", Arrays: []*lang.Array{out}, Scalars: []string{"x", "y"},
			Body: []lang.Stmt{
				&lang.Assign{Dst: lang.S("x"), Src: lang.C(int64(r.Intn(5000) - 2500))},
				&lang.Assign{Dst: lang.S("y"), Src: lang.C(int64(r.Intn(5000) - 2500))},
				&lang.Assign{Dst: lang.Ix(out, lang.C(0)), Src: e},
			},
		}
		runBoth(t, p, nil, nil)
	}
}
