package compiler

import (
	"testing"

	"grp/internal/isa"
	"grp/internal/lang"
)

// analyzeOne runs the analysis and returns the annotation for ref.
func analyzeOne(t *testing.T, p *lang.Program, pol Policy, ref lang.Expr) *HintInfo {
	t.Helper()
	an, err := Analyze(p, pol)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	h := an.Hints[ref]
	if h == nil {
		return &HintInfo{Coeff: isa.FixedRegion}
	}
	return h
}

// --- Table 2 representative patterns -------------------------------------

// TestTable2Spatial: the canonical spatial reference, a[i] in a loop over i
// (paper Table 2 row "spatial").
func TestTable2Spatial(t *testing.T) {
	a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{1024}}
	ref := lang.Ix(a, lang.S("i"))
	p := &lang.Program{
		Name: "t2spatial", Arrays: []*lang.Array{a}, Scalars: []string{"i", "s"},
		Body: []lang.Stmt{&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(1024), Step: 1,
			Body: []lang.Stmt{&lang.Assign{Dst: lang.S("s"), Src: ref}}}},
	}
	h := analyzeOne(t, p, PolicyDefault, ref)
	if !h.Spatial || h.Scope != "innermost" {
		t.Errorf("a[i] should be spatial(innermost): %+v", h)
	}
	if h.Pointer || h.Recursive {
		t.Errorf("a[i] should not get pointer hints: %+v", h)
	}
}

// TestTable2Size: a spatial reference in a leaf counted loop gets a size
// coefficient and the loop gets SETBOUND (paper Table 2 row "size").
func TestTable2Size(t *testing.T) {
	a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{4096}}
	ref := lang.Ix(a, lang.S("i"))
	loop := &lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(16), Step: 1,
		Body: []lang.Stmt{&lang.Assign{Dst: lang.S("s"), Src: ref}}}
	p := &lang.Program{
		Name: "t2size", Arrays: []*lang.Array{a}, Scalars: []string{"i", "s"},
		Body: []lang.Stmt{loop},
	}
	an, err := Analyze(p, PolicyDefault)
	if err != nil {
		t.Fatal(err)
	}
	h := an.Hints[ref]
	if h == nil || !h.Spatial || h.Coeff == isa.FixedRegion {
		t.Fatalf("leaf-loop spatial ref should carry a size coefficient: %+v", h)
	}
	if h.Coeff != 3 { // byte stride 8 → 2^3
		t.Errorf("coeff = %d, want 3", h.Coeff)
	}
	if !an.SetBound[loop] {
		t.Error("loop should be marked for SETBOUND")
	}
}

// TestTable2Indirect: a[b[i]] gets an indirect annotation (paper Table 2
// row "indirect").
func TestTable2Indirect(t *testing.T) {
	b := &lang.Array{Name: "b", Elem: lang.I32, Dims: []int64{1024}}
	a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{4096}}
	inner := lang.Ix(b, lang.S("i"))
	ref := lang.Ix(a, inner)
	p := &lang.Program{
		Name: "t2ind", Arrays: []*lang.Array{b, a}, Scalars: []string{"i", "s"},
		Body: []lang.Stmt{&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(1024), Step: 1,
			Body: []lang.Stmt{&lang.Assign{Dst: lang.S("s"), Src: ref}}}},
	}
	h := analyzeOne(t, p, PolicyDefault, ref)
	if h.Indirect == nil {
		t.Fatalf("a[b[i]] should be indirect: %+v", h)
	}
	if h.Indirect.Inner != inner || h.Indirect.Base != a {
		t.Errorf("indirect info wrong: %+v", h.Indirect)
	}
	if h.Indirect.Shift != 3 { // scale 1 × elem 8 = 8 = 2^3
		t.Errorf("shift = %d, want 3", h.Indirect.Shift)
	}
	if h.Indirect.Guard != "i" {
		t.Errorf("guard = %q, want i", h.Indirect.Guard)
	}
}

// TestTable2Pointer: a field access whose structure has a pointer field
// accessed in the same loop gets the pointer hint (paper Table 2 row
// "pointer", Figure 8).
func TestTable2Pointer(t *testing.T) {
	st := lang.NewStruct("s", lang.Field{Name: "data", Type: lang.I64})
	st.Append("link", lang.PtrT{Elem: lang.I64})
	dataRef := &lang.FieldRef{Ptr: lang.S("p"), Struct: st, Field: "data"}
	linkRef := &lang.FieldRef{Ptr: lang.S("p"), Struct: st, Field: "link"}
	p := &lang.Program{
		Name: "t2ptr", Scalars: []string{"p", "s", "q"},
		Body: []lang.Stmt{&lang.While{Cond: lang.B(lang.Ne, lang.S("p"), lang.C(0)),
			Body: []lang.Stmt{
				&lang.Assign{Dst: lang.S("s"), Src: dataRef},
				&lang.Assign{Dst: lang.S("q"), Src: linkRef},
				&lang.Assign{Dst: lang.S("p"), Src: lang.C(0)},
			}}},
	}
	h := analyzeOne(t, p, PolicyDefault, dataRef)
	if !h.Pointer {
		t.Errorf("field access should be pointer-hinted: %+v", h)
	}
	if h.Recursive {
		t.Errorf("non-recurrent access should not be recursive: %+v", h)
	}
}

// TestTable2Recursive: p = p->next where next points to the same struct
// type gets the recursive hint (paper Table 2 row "recursive pointer",
// Figure 6).
func TestTable2Recursive(t *testing.T) {
	st := lang.NewStruct("t", lang.Field{Name: "f", Type: lang.I64})
	st.Append("next", lang.PtrT{Elem: st})
	nextRef := &lang.FieldRef{Ptr: lang.S("a"), Struct: st, Field: "next"}
	fRef := &lang.FieldRef{Ptr: lang.S("a"), Struct: st, Field: "f"}
	p := &lang.Program{
		Name: "t2rec", Scalars: []string{"a", "s"},
		Body: []lang.Stmt{&lang.While{Cond: lang.B(lang.Ne, lang.S("a"), lang.C(0)),
			Body: []lang.Stmt{
				&lang.Assign{Dst: lang.S("s"), Src: fRef},
				&lang.Assign{Dst: lang.S("a"), Src: nextRef},
			}}},
	}
	h := analyzeOne(t, p, PolicyDefault, nextRef)
	if !h.Recursive {
		t.Errorf("p=p->next load should be recursive: %+v", h)
	}
	hf := analyzeOne(t, p, PolicyDefault, fRef)
	if !hf.Pointer {
		t.Errorf("sibling field access should be pointer-hinted: %+v", hf)
	}
}

// TestInductionPointerSpatial: *p with p += c in a loop is spatial (paper
// Figure 5).
func TestInductionPointerSpatial(t *testing.T) {
	ref := &lang.Deref{Ptr: lang.S("p"), Elem: lang.I64}
	p := &lang.Program{
		Name: "indptr", Scalars: []string{"p", "s", "end"},
		Body: []lang.Stmt{&lang.While{Cond: lang.B(lang.Lt, lang.S("p"), lang.S("end")),
			Body: []lang.Stmt{
				&lang.Assign{Dst: lang.S("s"), Src: ref},
				&lang.Assign{Dst: lang.S("p"), Src: lang.B(lang.Add, lang.S("p"), lang.C(16))},
			}}},
	}
	h := analyzeOne(t, p, PolicyDefault, ref)
	if !h.Spatial {
		t.Errorf("*p with small induction step should be spatial: %+v", h)
	}
}

// TestInductionPointerLargeStepNotSpatial: a big stride defeats the hint.
func TestInductionPointerLargeStepNotSpatial(t *testing.T) {
	ref := &lang.Deref{Ptr: lang.S("p"), Elem: lang.I64}
	p := &lang.Program{
		Name: "indptrbig", Scalars: []string{"p", "s", "end"},
		Body: []lang.Stmt{&lang.While{Cond: lang.B(lang.Lt, lang.S("p"), lang.S("end")),
			Body: []lang.Stmt{
				&lang.Assign{Dst: lang.S("s"), Src: ref},
				&lang.Assign{Dst: lang.S("p"), Src: lang.B(lang.Add, lang.S("p"), lang.C(4096))},
			}}},
	}
	if h := analyzeOne(t, p, PolicyDefault, ref); h.Spatial {
		t.Errorf("*p with 4 KB steps should not be spatial: %+v", h)
	}
}

// TestHeapPointerArray: buf[i] over a heap array of pointers is both
// spatial and pointer (paper Figure 4 / Section 4.5).
func TestHeapPointerArray(t *testing.T) {
	buf := &lang.Array{Name: "buf", Elem: lang.PtrT{Elem: lang.I64}, Dims: []int64{512}, Heap: true}
	ref := lang.Ix(buf, lang.S("i"))
	p := &lang.Program{
		Name: "heaparr", Arrays: []*lang.Array{buf}, Scalars: []string{"i", "s"},
		Body: []lang.Stmt{&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(512), Step: 1,
			Body: []lang.Stmt{&lang.Assign{Dst: lang.S("s"), Src: ref}}}},
	}
	h := analyzeOne(t, p, PolicyDefault, ref)
	if !h.Spatial || !h.Pointer {
		t.Errorf("heap pointer array should be spatial+pointer: %+v", h)
	}
}

// TestSpatialPropagation: uses of a scalar loaded from a spatial reference
// become spatial with the minimal region coefficient (Figure 7 phase 2).
func TestSpatialPropagation(t *testing.T) {
	st := lang.NewStruct("node", lang.Field{Name: "v", Type: lang.I64})
	buf := &lang.Array{Name: "buf", Elem: lang.PtrT{Elem: st}, Dims: []int64{512}, Heap: true}
	use := &lang.FieldRef{Ptr: lang.S("q"), Struct: st, Field: "v"}
	p := &lang.Program{
		Name: "prop", Arrays: []*lang.Array{buf}, Scalars: []string{"i", "q", "s"},
		Body: []lang.Stmt{&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(512), Step: 1,
			Body: []lang.Stmt{
				&lang.Assign{Dst: lang.S("q"), Src: lang.Ix(buf, lang.S("i"))},
				&lang.Assign{Dst: lang.S("s"), Src: use},
			}}},
	}
	h := analyzeOne(t, p, PolicyDefault, use)
	if !h.Spatial || h.Scope != "propagated" {
		t.Errorf("q->v should be propagated-spatial: %+v", h)
	}
	if h.Coeff != 0 {
		t.Errorf("propagated hint should request the minimum region, coeff=%d", h.Coeff)
	}
}

// --- policies -------------------------------------------------------------

// transposeProgram walks a[j][i] with j innermost: spatial reuse carried by
// the outer i loop, distance = n·64 bytes.
func transposeProgram(n int64) (*lang.Program, *lang.Index) {
	a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{n, n}}
	ref := lang.Ix(a, lang.S("j"), lang.S("i"))
	p := &lang.Program{
		Name: "transpose", Arrays: []*lang.Array{a}, Scalars: []string{"i", "j", "s"},
		Body: []lang.Stmt{&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(n), Step: 1,
			Body: []lang.Stmt{&lang.For{Var: "j", Lo: lang.C(0), Hi: lang.C(n), Step: 1,
				Body: []lang.Stmt{&lang.Assign{Dst: lang.S("s"), Src: ref}}}}}},
	}
	return p, ref
}

func TestPolicyTransposeSmall(t *testing.T) {
	// Distance 512·64 = 32 KB < L2: default and aggressive mark, the
	// conservative policy (innermost only) does not.
	p, ref := transposeProgram(512)
	if h := analyzeOne(t, p, PolicyDefault, ref); !h.Spatial || h.Scope != "outer" {
		t.Errorf("default should mark small transpose: %+v", h)
	}
	if h := analyzeOne(t, p, PolicyAggressive, ref); !h.Spatial {
		t.Errorf("aggressive should mark small transpose: %+v", h)
	}
	if h := analyzeOne(t, p, PolicyConservative, ref); h.Spatial {
		t.Errorf("conservative should not mark transpose: %+v", h)
	}
}

func TestPolicyTransposeHuge(t *testing.T) {
	// Distance 65536·64 = 4 MB > L2: only the aggressive policy marks.
	p, ref := transposeProgram(65536)
	if h := analyzeOne(t, p, PolicyDefault, ref); h.Spatial {
		t.Errorf("default should reject a > L2 reuse distance: %+v", h)
	}
	if h := analyzeOne(t, p, PolicyAggressive, ref); !h.Spatial {
		t.Errorf("aggressive should mark regardless of distance: %+v", h)
	}
}

func TestPolicyUnknownBound(t *testing.T) {
	// Symbolic loop bound: reuse distance unknown; default falls back to
	// conservative, aggressive still marks (Section 4.1).
	a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{1 << 16, 64}}
	ref := lang.Ix(a, lang.S("j"), lang.S("i"))
	p := &lang.Program{
		Name: "symbound", Arrays: []*lang.Array{a}, Scalars: []string{"i", "j", "s", "nv"},
		Body: []lang.Stmt{&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(64), Step: 1,
			Body: []lang.Stmt{&lang.For{Var: "j", Lo: lang.C(0), Hi: lang.S("nv"), Step: 1,
				Body: []lang.Stmt{&lang.Assign{Dst: lang.S("s"), Src: ref}}}}}},
	}
	if h := analyzeOne(t, p, PolicyDefault, ref); h.Spatial {
		t.Errorf("default should reject unknown distance: %+v", h)
	}
	if h := analyzeOne(t, p, PolicyAggressive, ref); !h.Spatial {
		t.Errorf("aggressive should mark unknown distance: %+v", h)
	}
}

// TestContiguousNestKeepsFixedRegions: a dense a[i][j] nest must not get
// a variable-size coefficient (contiguity check).
func TestContiguousNestKeepsFixedRegions(t *testing.T) {
	a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{256, 256}}
	ref := lang.Ix(a, lang.S("i"), lang.S("j"))
	p := &lang.Program{
		Name: "dense", Arrays: []*lang.Array{a}, Scalars: []string{"i", "j", "s"},
		Body: []lang.Stmt{&lang.For{Var: "i", Lo: lang.C(0), Hi: lang.C(256), Step: 1,
			Body: []lang.Stmt{&lang.For{Var: "j", Lo: lang.C(0), Hi: lang.C(256), Step: 1,
				Body: []lang.Stmt{&lang.Assign{Dst: lang.S("s"), Src: ref}}}}}},
	}
	h := analyzeOne(t, p, PolicyDefault, ref)
	if !h.Spatial {
		t.Fatalf("dense ref should be spatial: %+v", h)
	}
	if h.Coeff != isa.FixedRegion {
		t.Errorf("dense nest should keep fixed regions, coeff=%d", h.Coeff)
	}
}

// TestScatteredBurstsGetVariableRegions: short bursts at strided bases do
// get a coefficient (the bzip2 pattern of Table 4).
func TestScatteredBurstsGetVariableRegions(t *testing.T) {
	a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{1 << 16}}
	ref := lang.Ix(a, lang.S("j"))
	p := &lang.Program{
		Name: "bursts", Arrays: []*lang.Array{a}, Scalars: []string{"g", "j", "s"},
		Body: []lang.Stmt{&lang.For{Var: "g", Lo: lang.C(0), Hi: lang.C(512), Step: 1,
			Body: []lang.Stmt{&lang.For{Var: "j",
				Lo:   lang.B(lang.Mul, lang.S("g"), lang.C(128)),
				Hi:   lang.B(lang.Add, lang.B(lang.Mul, lang.S("g"), lang.C(128)), lang.C(8)),
				Step: 1,
				Body: []lang.Stmt{&lang.Assign{Dst: lang.S("s"), Src: ref}}}}}},
	}
	h := analyzeOne(t, p, PolicyDefault, ref)
	if !h.Spatial {
		t.Fatalf("burst ref should be spatial: %+v", h)
	}
	if h.Coeff == isa.FixedRegion || h.Coeff == 0 {
		t.Errorf("scattered bursts should carry a real size coefficient, got %d", h.Coeff)
	}
}

// TestMarksOnlyLoopRefs: references outside loops are never marked.
func TestMarksOnlyLoopRefs(t *testing.T) {
	a := &lang.Array{Name: "a", Elem: lang.I64, Dims: []int64{64}}
	ref := lang.Ix(a, lang.C(3))
	p := &lang.Program{
		Name: "noloop", Arrays: []*lang.Array{a}, Scalars: []string{"s"},
		Body: []lang.Stmt{&lang.Assign{Dst: lang.S("s"), Src: ref}},
	}
	an, err := Analyze(p, PolicyAggressive)
	if err != nil {
		t.Fatal(err)
	}
	if h := an.Hints[ref]; h != nil && (h.Spatial || h.Pointer) {
		t.Errorf("out-of-loop ref should be unmarked: %+v", h)
	}
}

func TestDescribeRendering(t *testing.T) {
	st := lang.NewStruct("t", lang.Field{Name: "f", Type: lang.I64})
	st.Append("next", lang.PtrT{Elem: st})
	nextRef := &lang.FieldRef{Ptr: lang.S("a"), Struct: st, Field: "next"}
	p := &lang.Program{
		Name: "desc", Scalars: []string{"a"},
		Body: []lang.Stmt{&lang.While{Cond: lang.B(lang.Ne, lang.S("a"), lang.C(0)),
			Body: []lang.Stmt{&lang.Assign{Dst: lang.S("a"), Src: nextRef}}}},
	}
	an, err := Analyze(p, PolicyDefault)
	if err != nil {
		t.Fatal(err)
	}
	s := an.Describe()
	if s == "" {
		t.Error("Describe should render the recursive hint")
	}
}
