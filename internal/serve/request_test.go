package serve

import (
	"errors"
	"strings"
	"testing"
)

func TestDecodeSweepRequestDefaults(t *testing.T) {
	req, err := DecodeSweepRequest([]byte(`{"spec": "schemes=base × kernels=mcf"}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Factor != "small" || req.Policy != "default" || req.Tenant != "anon" || req.Weight != 1 {
		t.Fatalf("defaults not applied: %+v", req)
	}
	if req.DryRun {
		t.Fatal("dry_run defaulted true")
	}
}

func TestDecodeSweepRequestRejections(t *testing.T) {
	cases := []struct {
		name  string
		body  string
		field string // expected RequestError.Field ("" = any)
	}{
		{"empty body", ``, ""},
		{"not json", `schemes=base`, ""},
		{"json array", `[1,2,3]`, ""},
		{"missing spec", `{}`, "spec"},
		{"empty spec", `{"spec": ""}`, "spec"},
		{"unknown field", `{"spec": "schemes=base × kernels=mcf", "bogus": 1}`, ""},
		{"trailing garbage", `{"spec": "schemes=base × kernels=mcf"} extra`, ""},
		{"bad factor", `{"spec": "schemes=base × kernels=mcf", "factor": "huge"}`, "factor"},
		{"bad policy", `{"spec": "schemes=base × kernels=mcf", "policy": "yolo"}`, "policy"},
		{"weight too big", `{"spec": "schemes=base × kernels=mcf", "weight": 99}`, "weight"},
		{"weight negative", `{"spec": "schemes=base × kernels=mcf", "weight": -1}`, "weight"},
		{"bad spec grammar", `{"spec": "flux=warp × kernels=mcf"}`, "spec"},
		{"unknown bench", `{"spec": "schemes=base × kernels=nope"}`, "spec"},
		{"wrong spec type", `{"spec": 42}`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeSweepRequest([]byte(tc.body))
			if err == nil {
				t.Fatalf("body %q decoded without error", tc.body)
			}
			var re *RequestError
			if !errors.As(err, &re) {
				t.Fatalf("error is %T, want *RequestError: %v", err, err)
			}
			if tc.field != "" && re.Field != tc.field {
				t.Errorf("error field = %q, want %q (%v)", re.Field, tc.field, err)
			}
			if re.Msg == "" {
				t.Error("RequestError with empty message")
			}
		})
	}
}

func TestDecodeSweepRequestGridMatchesSpec(t *testing.T) {
	req, err := DecodeSweepRequest([]byte(
		`{"spec": "schemes=base,srp × kernels=mcf,art", "factor": "test", "weight": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	g, err := req.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cells) != 4 {
		t.Fatalf("grid has %d cells, want 4", len(g.Cells))
	}
	if req.Weight != 3 {
		t.Fatalf("weight = %d, want 3", req.Weight)
	}
}

// FuzzSweepRequestDecode: arbitrary bytes must produce either a valid
// request or a structured *RequestError — never a panic, and never an
// error of another type (the HTTP layer turns only RequestError into a
// clean 400).
func FuzzSweepRequestDecode(f *testing.F) {
	seeds := []string{
		`{"spec": "schemes=base × kernels=mcf"}`,
		`{"spec": "schemes=base,srp,grp/var × kernels=all × l2.size=512K,1M"}`,
		`{"spec": "schemes=base × kernels=mcf", "factor": "test", "policy": "aggressive", "tenant": "t", "weight": 16}`,
		`{"spec": "schemes=base × kernels=mcf", "dry_run": true}`,
		`{"spec": ""}`,
		`{"spec": 3.14}`,
		`{"spec": "schemes=base × kernels=mcf", "weight": -7}`,
		`{"spec": "×××"}`,
		`[]`,
		`null`,
		`{"spec": "schemes=base × kernels=mcf"}{"spec": "x"}`,
		"\x00\xff\xfe",
		strings.Repeat(`{"spec":`, 100),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeSweepRequest(data)
		if err != nil {
			var re *RequestError
			if !errors.As(err, &re) {
				t.Fatalf("non-RequestError %T from %q: %v", err, data, err)
			}
			if re.Msg == "" {
				t.Fatalf("empty error message from %q", data)
			}
			return
		}
		// A successful decode promises a schedulable request: the grid
		// expands and every knob is in range.
		if req.Spec == "" || req.Weight < 1 || req.Weight > maxWeight {
			t.Fatalf("decoded request is invalid: %+v", req)
		}
		if _, gerr := req.Grid(); gerr != nil {
			t.Fatalf("decoded request has an inexpansible grid: %v", gerr)
		}
	})
}
