package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	"grp/internal/campaign"
	"grp/internal/compiler"
	"grp/internal/core"
	"grp/internal/workloads"
)

// maxRequestBody bounds a sweep submission. Specs are short strings; a
// megabyte of JSON is either a bug or an attack.
const maxRequestBody = 1 << 20

// SweepRequest is the JSON body of POST /v1/sweeps: the same sweep-spec
// grammar grpsweep takes on the command line, plus the multi-tenant
// scheduling knobs.
type SweepRequest struct {
	// Spec is the sweep grammar, e.g.
	// "schemes=base,grp/var × kernels=mcf,art × l2.size=512K,1M".
	Spec string `json:"spec"`
	// Factor is the workload scale: test, small (default), full.
	Factor string `json:"factor,omitempty"`
	// Policy is the compiler spatial policy: default, conservative,
	// aggressive.
	Policy string `json:"policy,omitempty"`
	// Tenant names the submitting client for fairness accounting and
	// the sweep listing; empty means "anon".
	Tenant string `json:"tenant,omitempty"`
	// Weight is the sweep's weighted-round-robin share, 1..16
	// (default 1): a weight-2 sweep is offered twice as many worker
	// slots per scheduling rotation as a weight-1 one.
	Weight int `json:"weight,omitempty"`
	// DryRun asks for the expansion summary (cell count, axes,
	// estimated cache hit rate) without admitting the sweep.
	DryRun bool `json:"dry_run,omitempty"`
}

// maxWeight bounds a tenant's WRR share so one client cannot starve the
// rest by self-declaring an enormous weight.
const maxWeight = 16

// RequestError is a structured 400: which field was wrong and why. The
// decoder returns it for every malformed submission, so clients get a
// machine-readable reason instead of a stack trace — and the fuzz
// harness can assert no input escapes this shape.
type RequestError struct {
	Field string `json:"field,omitempty"`
	Msg   string `json:"error"`
}

// Error implements error.
func (e *RequestError) Error() string {
	if e.Field == "" {
		return e.Msg
	}
	return fmt.Sprintf("%s: %s", e.Field, e.Msg)
}

func badRequest(field, format string, args ...interface{}) *RequestError {
	return &RequestError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// DecodeSweepRequest parses and validates a sweep-submission body. Any
// failure — malformed JSON, unknown fields, a bad spec, out-of-range
// knobs — is a *RequestError; it never panics on arbitrary input.
// Validation includes expanding the spec so a rejected submission never
// reaches the scheduler. The defaults (factor small, policy default,
// weight 1) are applied in place.
func DecodeSweepRequest(data []byte) (*SweepRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var req SweepRequest
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest("", "decoding request body: %v", err)
	}
	// Trailing garbage after the JSON value is a malformed request, not
	// an ignorable suffix.
	if dec.More() {
		return nil, badRequest("", "trailing data after request body")
	}
	if req.Spec == "" {
		return nil, badRequest("spec", "required (sweep grammar, e.g. %q)", "schemes=base,grp/var × kernels=mcf")
	}
	if req.Factor == "" {
		req.Factor = "small"
	}
	if req.Policy == "" {
		req.Policy = "default"
	}
	if req.Tenant == "" {
		req.Tenant = "anon"
	}
	if req.Weight == 0 {
		req.Weight = 1
	}
	if req.Weight < 1 || req.Weight > maxWeight {
		return nil, badRequest("weight", "%d out of range [1, %d]", req.Weight, maxWeight)
	}
	if _, err := parseFactor(req.Factor); err != nil {
		return nil, badRequest("factor", "%v", err)
	}
	if _, err := parsePolicy(req.Policy); err != nil {
		return nil, badRequest("policy", "%v", err)
	}
	if _, err := req.Grid(); err != nil {
		return nil, badRequest("spec", "%v", err)
	}
	return &req, nil
}

// Options resolves the request's base simulation options.
func (r *SweepRequest) Options() (core.Options, error) {
	f, err := parseFactor(r.Factor)
	if err != nil {
		return core.Options{}, err
	}
	p, err := parsePolicy(r.Policy)
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{Factor: f, Policy: p}, nil
}

// Grid expands the request's spec against its resolved options.
func (r *SweepRequest) Grid() (*campaign.Grid, error) {
	base, err := r.Options()
	if err != nil {
		return nil, err
	}
	return campaign.ParseSpec(r.Spec, base)
}

func parseFactor(s string) (workloads.Factor, error) {
	switch s {
	case "test":
		return workloads.Test, nil
	case "small":
		return workloads.Small, nil
	case "full":
		return workloads.Full, nil
	}
	return 0, fmt.Errorf("unknown factor %q (want test, small, full)", s)
}

func parsePolicy(s string) (compiler.Policy, error) {
	switch s {
	case "default":
		return compiler.PolicyDefault, nil
	case "conservative":
		return compiler.PolicyConservative, nil
	case "aggressive":
		return compiler.PolicyAggressive, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want default, conservative, aggressive)", s)
}
