package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"grp/internal/campaign"
)

// newTestServer builds a started server plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Warnf == nil {
		cfg.Warnf = t.Logf
	}
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

func postSweep(t *testing.T, base, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// waitFinished polls a sweep's status until it finishes.
func waitFinished(t *testing.T, base, id string) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st SweepStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Finished {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("sweep did not finish in time")
	return SweepStatus{}
}

func fetchArtifact(t *testing.T, base, id, format string) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/sweeps/%s/artifact?format=%s", base, id, format))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact fetch: %s: %s", resp.Status, data)
	}
	return data
}

// localArtifact runs the same sweep on a fresh local engine — the
// grpsweep CLI path — and renders it through campaign.WriteArtifact.
func localArtifact(t *testing.T, body, format string) []byte {
	t.Helper()
	req, err := DecodeSweepRequest([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	grid, err := req.Grid()
	if err != nil {
		t.Fatal(err)
	}
	eng := campaign.New(campaign.Config{Backend: campaign.NewMemBackend(), KeepGoing: true})
	rep, err := eng.RunReport(context.Background(), grid.Jobs())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := campaign.WriteArtifact(&buf, format, &campaign.Artifact{
		Spec: req.Spec, Factor: req.Factor, Policy: req.Policy,
		Grid: grid, Results: rep.Results, Failures: rep.Failures,
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

const (
	specA = `{"spec": "schemes=base,srp × kernels=mcf,art", "factor": "test", "tenant": "alice"}`
	specB = `{"spec": "schemes=srp,grp/var × kernels=mcf,art", "factor": "test", "tenant": "bob"}`
)

// TestConcurrentClientsDedupExactlyOnce is the tentpole acceptance test:
// two clients submit overlapping sweeps (srp/mcf and srp/art appear in
// both) concurrently; every unique cell must simulate exactly once —
// verified by the engine's run counter — and each client's artifact must
// be byte-identical to a solo local run of its sweep.
func TestConcurrentClientsDedupExactlyOnce(t *testing.T) {
	s, ts := newTestServer(t, Config{Mem: true, Workers: 4})

	var wg sync.WaitGroup
	ids := make([]string, 2)
	for i, body := range []string{specA, specB} {
		wg.Add(1)
		go func(i int, body string) {
			defer wg.Done()
			resp, data := postSweep(t, ts.URL, body)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("client %d: status %s: %s", i, resp.Status, data)
				return
			}
			var st SweepStatus
			if err := json.Unmarshal(data, &st); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}(i, body)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for _, id := range ids {
		waitFinished(t, ts.URL, id)
	}

	// 4 + 4 cells with 2 shared: 6 unique simulations, no more, no less.
	if sims := s.eng.Simulations(); sims != 6 {
		t.Errorf("engine ran %d simulations, want exactly 6 (8 submitted cells, 2 shared)", sims)
	}
	cs := s.eng.CacheStats()
	if cs.Deduped+cs.Hits != 2 {
		t.Errorf("dedup(%d) + cache hits(%d) should cover the 2 shared cells", cs.Deduped, cs.Hits)
	}

	// Byte-identical artifacts, all formats, both sweeps.
	for i, body := range []string{specA, specB} {
		for _, format := range campaign.ArtifactFormats {
			got := fetchArtifact(t, ts.URL, ids[i], format)
			want := localArtifact(t, body, format)
			if !bytes.Equal(got, want) {
				t.Errorf("sweep %d %s artifact differs from solo run:\nserved:\n%s\nlocal:\n%s",
					i, format, got, want)
			}
		}
	}
}

// TestIdempotentResubmission: an identical submission joins the existing
// sweep (200, same ID) instead of creating a duplicate.
func TestIdempotentResubmission(t *testing.T) {
	_, ts := newTestServer(t, Config{Mem: true, Workers: 2})
	resp1, data1 := postSweep(t, ts.URL, specA)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %s: %s", resp1.Status, data1)
	}
	resp2, data2 := postSweep(t, ts.URL, specA)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmission: %s, want 200", resp2.Status)
	}
	var st1, st2 SweepStatus
	json.Unmarshal(data1, &st1)
	json.Unmarshal(data2, &st2)
	if st1.ID != st2.ID {
		t.Fatalf("resubmission created a new sweep: %s vs %s", st1.ID, st2.ID)
	}
}

// TestSubmitValidation: malformed submissions get structured 400s.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Mem: true, Workers: 1})
	for _, body := range []string{``, `{`, `{"spec": ""}`, `{"spec": "schemes=base × kernels=mcf", "weight": 99}`} {
		resp, data := postSweep(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %s, want 400", body, resp.Status)
			continue
		}
		var re RequestError
		if err := json.Unmarshal(data, &re); err != nil || re.Msg == "" {
			t.Errorf("body %q: unstructured 400 response %q", body, data)
		}
	}
}

// TestBackpressure429: a submission larger than the admission queue is
// rejected with 429 and a Retry-After header; a smaller one passes.
func TestBackpressure429(t *testing.T) {
	_, ts := newTestServer(t, Config{Mem: true, Workers: 1, MaxQueue: 2})
	resp, data := postSweep(t, ts.URL, specA) // 4 cells > queue of 2
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized submit: %s, want 429: %s", resp.Status, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	resp, data = postSweep(t, ts.URL, `{"spec": "schemes=base × kernels=mcf,art", "factor": "test"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("within-capacity submit: %s: %s", resp.Status, data)
	}
	// The rejected sweep must not linger: it is evicted from the
	// registry (not listed) and a resubmission is judged afresh — another
	// clean 429, never a stale "existing sweep" answer for work that was
	// never admitted.
	var st SweepStatus
	json.Unmarshal(data, &st)
	waitFinished(t, ts.URL, st.ID)
	lresp, err := http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list struct {
		Sweeps []SweepStatus `json:"sweeps"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Sweeps) != 1 || list.Sweeps[0].ID != st.ID {
		t.Fatalf("rejected sweep lingers in the registry: %+v", list.Sweeps)
	}
	resp, _ = postSweep(t, ts.URL, specA)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("resubmitted oversized sweep: %s, want a fresh 429", resp.Status)
	}
}

// TestEventStreamAndCursor: the NDJSON stream carries every completion
// exactly once in seq order, and a cursor resumes mid-stream.
func TestEventStreamAndCursor(t *testing.T) {
	_, ts := newTestServer(t, Config{Mem: true, Workers: 4})
	resp, data := postSweep(t, ts.URL, specA)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("%s: %s", resp.Status, data)
	}
	var st SweepStatus
	json.Unmarshal(data, &st)

	// Stream from the start while the sweep runs: the server must hold
	// the stream open until the last cell and then end it.
	sresp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	var events []CellEvent
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		var ev CellEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("streamed %d events, want 4", len(events))
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Total != 4 || ev.Done != i+1 {
			t.Fatalf("event %d progress %d/%d", i, ev.Done, ev.Total)
		}
	}

	// Resume from a mid-stream cursor: exactly the tail, same contents.
	tresp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID + "/events?cursor=2")
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	tail, err := io.ReadAll(tresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(tail)), "\n")
	if len(lines) != 2 {
		t.Fatalf("cursor=2 returned %d events, want 2: %q", len(lines), tail)
	}
	var ev CellEvent
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil || ev.Seq != 2 {
		t.Fatalf("cursor=2 first event = %q (seq %d), want seq 2", lines[0], ev.Seq)
	}

	// SSE negotiation.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/sweeps/"+st.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	eresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer eresp.Body.Close()
	sse, _ := io.ReadAll(eresp.Body)
	if ct := eresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE content type %q", ct)
	}
	if !strings.Contains(string(sse), "data: {") || !strings.Contains(string(sse), "id: 0") {
		t.Errorf("SSE framing looks wrong:\n%s", sse)
	}
}

// TestArtifactBeforeFinish: asking for an artifact mid-flight is a 409
// with the sweep's status attached, not a partial render.
func TestArtifactBeforeFinish(t *testing.T) {
	s, ts := newTestServer(t, Config{Mem: true, Workers: 1})
	// Inject a sweep that never finishes: registered, nothing scheduled.
	req, _ := DecodeSweepRequest([]byte(specA))
	grid, _ := req.Grid()
	jobs := grid.Jobs()
	keys, _ := s.eng.Keys(jobs)
	sw := newSweep("stuck000", *req, grid, jobs, keys)
	s.mu.Lock()
	s.sweeps[sw.id] = sw
	s.order = append(s.order, sw.id)
	s.mu.Unlock()

	resp, err := http.Get(ts.URL + "/v1/sweeps/stuck000/artifact")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mid-flight artifact: %s, want 409", resp.Status)
	}
}

// TestDryRunEndpoint: dry_run sizes the grid without admitting anything,
// and reflects the store's warmth after a real run.
func TestDryRunEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Mem: true, Workers: 2})
	dry := `{"spec": "schemes=base,srp × kernels=mcf,art", "factor": "test", "dry_run": true}`
	resp, data := postSweep(t, ts.URL, dry)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dry run: %s: %s", resp.Status, data)
	}
	var d campaign.DryRun
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Cells != 4 || d.Cached != 0 {
		t.Fatalf("cold dry run = %+v, want 4 cells, 0 cached", d)
	}
	if sims := s.eng.Simulations(); sims != 0 {
		t.Fatalf("dry run simulated %d cells", sims)
	}

	// Warm the store with the real sweep, then dry-run again.
	resp, data = postSweep(t, ts.URL, specA)
	var st SweepStatus
	json.Unmarshal(data, &st)
	waitFinished(t, ts.URL, st.ID)
	_, data = postSweep(t, ts.URL, dry)
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Cached != 4 || d.HitRate != 1 {
		t.Fatalf("warm dry run = %+v, want 4 cached, hit rate 1", d)
	}
}

// TestRestartResume: a server that drains mid-sweep leaves the remainder
// journaled; a new server over the same cache directory resumes it
// unprompted and the final artifact is byte-identical to a solo run.
func TestRestartResume(t *testing.T) {
	dir := t.TempDir()
	body := `{"spec": "schemes=base,srp,grp/var × kernels=mcf,art", "factor": "test", "tenant": "crash"}`

	s1 := New(Config{CacheDir: dir, Workers: 1, Warnf: t.Logf})
	s1.Start()
	ts1 := httptest.NewServer(s1.Handler())
	resp, data := postSweep(t, ts1.URL, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("%s: %s", resp.Status, data)
	}
	var st SweepStatus
	json.Unmarshal(data, &st)
	// Drain immediately: with one worker, at most a cell or two is in
	// flight; the rest stays queued and journaled-undone.
	ts1.Close()
	s1.Drain()

	// A fresh process over the same cache directory picks the sweep up
	// from its journal without a resubmission.
	s2 := New(Config{CacheDir: dir, Workers: 4, Warnf: t.Logf})
	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Drain() }()

	final := waitFinished(t, ts2.URL, st.ID)
	if final.Failed != 0 {
		t.Fatalf("resumed sweep failed cells: %+v", final)
	}
	for _, format := range campaign.ArtifactFormats {
		got := fetchArtifact(t, ts2.URL, st.ID, format)
		want := localArtifact(t, body, format)
		if !bytes.Equal(got, want) {
			t.Errorf("resumed %s artifact differs from solo run:\n%s\nwant:\n%s", format, got, want)
		}
	}
	// Finished: the submit record is gone, so a third start resumes
	// nothing.
	s3 := New(Config{CacheDir: dir, Workers: 1, Warnf: t.Logf})
	s3.Start()
	defer s3.Drain()
	s3.mu.Lock()
	n := len(s3.sweeps)
	s3.mu.Unlock()
	if n != 0 {
		t.Fatalf("finished sweep resubmitted on restart (%d sweeps)", n)
	}
}

// TestMetricsEndpoint: build identity, fleet counters, scheduler load,
// and per-sweep progress all appear in Prometheus text form.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Mem: true, Workers: 2})
	resp, data := postSweep(t, ts.URL, specA)
	var st SweepStatus
	json.Unmarshal(data, &st)
	waitFinished(t, ts.URL, st.ID)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		"grpserve_build_info{version=",
		"grpserve_cells_done 4",
		"grpserve_cells_total 4",
		"grpserve_queue_depth 0",
		"grpserve_simulations_total 4",
		fmt.Sprintf("grpserve_sweep_cells_done{sweep=%q,tenant=\"alice\",total=\"4\"} 4", st.ID),
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}
	_ = resp
}

// TestHealthz: liveness endpoint reports load.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Mem: true, Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || !h.OK {
		t.Fatalf("healthz = %v, err %v", h, err)
	}
}
